package nocmem

import (
	"os"
	"testing"

	"nocmem/internal/trace"
)

func quickCfg() Config {
	cfg := Baseline16()
	cfg.Run.WarmupCycles = 5_000
	cfg.Run.MeasureCycles = 20_000
	cfg.S1.UpdatePeriod = 2_000
	return cfg
}

func TestWorkloadsAccessors(t *testing.T) {
	if got := len(Workloads()); got != 18 {
		t.Fatalf("%d workloads", got)
	}
	w, err := GetWorkload(7)
	if err != nil || w.Category != MemIntensive {
		t.Fatalf("GetWorkload(7) = %+v, %v", w, err)
	}
	if _, err := GetWorkload(0); err == nil {
		t.Fatal("workload 0 accepted")
	}
	if len(Apps()) < 28 {
		t.Fatal("missing application profiles")
	}
	if _, err := LookupApp("mcf"); err != nil {
		t.Fatal(err)
	}
	if _, err := LookupApp("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunWorkloadOnSmallSystem(t *testing.T) {
	cfg := quickCfg()
	w, err := GetWorkload(7)
	if err != nil {
		t.Fatal(err)
	}
	half, err := w.Halve()
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunWorkload(cfg, half)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ActiveTiles()) != 16 {
		t.Fatalf("%d active tiles", len(r.ActiveTiles()))
	}
	ws, err := WeightedSpeedup(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if ws <= 0 || ws > 16 {
		t.Errorf("weighted speedup %.2f out of (0, 16]", ws)
	}
}

func TestRunWorkloadRejectsOversize(t *testing.T) {
	cfg := quickCfg()        // 16 tiles
	w, err := GetWorkload(7) // 32 applications
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWorkload(cfg, w); err == nil {
		t.Fatal("32 applications accepted on a 16-tile mesh")
	}
}

func TestAloneIPCCached(t *testing.T) {
	cfg := quickCfg()
	app, err := LookupApp("sjeng")
	if err != nil {
		t.Fatal(err)
	}
	v1, err := AloneIPC(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	// Second call must hit the cache and return the identical value even
	// if schemes are toggled (alone runs are always unprioritized).
	v2, err := AloneIPC(cfg.WithSchemes(true, true), app)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("alone IPC not cached/scheme-independent: %v vs %v", v1, v2)
	}
	if v1 <= 0 {
		t.Errorf("alone IPC %v", v1)
	}
}

func TestSpeedupForProducesAllVariants(t *testing.T) {
	cfg := quickCfg()
	w, err := GetWorkload(13)
	if err != nil {
		t.Fatal(err)
	}
	half, err := w.Halve()
	if err != nil {
		t.Fatal(err)
	}
	row, err := SpeedupFor(cfg, half)
	if err != nil {
		t.Fatal(err)
	}
	if row.Base == nil || row.S1 == nil || row.S1S2 == nil {
		t.Fatal("missing variant results")
	}
	if row.BaseWS <= 0 || row.NormS1 <= 0 || row.NormS1S2 <= 0 {
		t.Errorf("speedups %+v", row)
	}
	// Normalized values should stay within a plausible band.
	for _, v := range []float64{row.NormS1, row.NormS1S2} {
		if v < 0.8 || v > 1.3 {
			t.Errorf("normalized speedup %v implausible", v)
		}
	}
}

func TestRunTracesRoundTrip(t *testing.T) {
	cfg := quickCfg()
	app, err := LookupApp("sphinx3")
	if err != nil {
		t.Fatal(err)
	}
	// Record a short trace via the library path and replay it.
	dir := t.TempDir()
	path := dir + "/app.trace"
	if err := recordTrace(path, app, 0, cfg); err != nil {
		t.Fatal(err)
	}
	ft, err := OpenTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTraces(cfg, []*trace.FileTrace{ft, nil}, []string{"sphinx3-replay"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ActiveTiles()) != 1 || r.Apps[0].Name != "sphinx3-replay" {
		t.Fatalf("active tiles %v name %q", r.ActiveTiles(), r.Apps[0].Name)
	}
	if r.IPC[0] <= 0 {
		t.Errorf("replayed IPC %v", r.IPC[0])
	}
}

// recordTrace captures a short synthetic stream to a file.
func recordTrace(path string, app Profile, coreID int, cfg Config) error {
	g, err := trace.NewGenerator(app, coreID, cfg.L1.LineBytes, cfg.Run.Seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.Record(f, g, 200_000); err != nil {
		return err
	}
	return f.Close()
}
