# Developer entry points. `make ci` is the gate run before every commit:
# vet, build, the full test suite under the race detector, and a smoke run
# of the perf harness (micro-benchmarks only; the full harness writing
# BENCH_1.json is `make bench`).

GO ?= go

.PHONY: all build vet test race bench bench-smoke ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full perf-regression harness: micro-benchmarks + sequential-vs-parallel
# figure sweep, written to BENCH_1.json for before/after comparison.
bench:
	$(GO) run ./cmd/bench

# Quick harness pass with small windows; micro numbers only, to stdout.
bench-smoke:
	$(GO) run ./cmd/bench -quick -skip-sweep -out -

ci: vet build race bench-smoke
