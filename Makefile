# Developer entry points. `make ci` is the gate run before every commit:
# vet, build, the checkpoint fork-equivalence oracle under the race detector
# (fast fail), the full test suite under the race detector (which includes
# the skewed-hotspot and barrier stress oracles), the shard-scaling smoke
# gate (a 2-worker stealing run must reproduce the sequential stepper byte
# for byte on the skewed corner-hotspot workload), the analytic-model smoke
# gate (closed-form estimates cross-checked against short simulated runs,
# plus the golden-scenario and divergence-oracle unit tests), the simulation
# daemon's smoke gate (one simulated run, one sub-50ms store hit, one
# closed-form estimate through a real HTTP round trip), the distributed
# smoke gate (a coordinator leasing a sweep to two worker processes, one
# SIGKILLed while holding leases — the merged output must be byte-identical
# to direct execution), and a smoke run of the perf harness
# (micro-benchmarks plus the sharded-vs-sequential and bursty
# dense/event/sharded byte-equality gates, regression-gated; the full
# harness writing BENCH_8.json is `make bench`).

GO ?= go

.PHONY: all build vet test race fork-race bench bench-smoke shard-scaling-smoke estimate-smoke simd-smoke dist-smoke profile ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -timeout 30m ./...

# The checkpoint correctness oracles on their own, under the race detector:
# warmup-then-fork must reproduce the straight-through run byte for byte
# under every stepper, and a checkpoint must survive a serialize-restore-
# serialize round trip unchanged. Runs ahead of the full `race` suite (which
# also includes them) so snapshot-format breakage fails CI within a minute.
fork-race:
	$(GO) test -race -run 'TestCheckpointForkEquivalence|TestCheckpointRoundTrip' ./internal/sim

# Full perf-regression harness: micro-benchmarks, dense-vs-event stepper
# comparison (including the bursty router-timed-wake scenario and its
# byte-equality gate), the sharded-stepper sweep (with its sequential
# byte-equality gate), the checkpoint-fork warmup-amortization point, and
# the sequential-vs-parallel figure sweep, and the analytic-model divergence
# record, written to BENCH_8.json for before/after comparison.
bench:
	$(GO) run ./cmd/bench

# Quick harness pass with small windows, gated against the committed PR-1
# report: fails if any micro benchmark allocates more per op than recorded
# there, if the 32-core cycle loop runs more than 20% slower, or if a
# sharded run fails to reproduce the sequential result byte for byte.
bench-smoke:
	$(GO) run ./cmd/bench -quick -skip-sweep -out - -check BENCH_1.json

# The shard-scaling determinism gate on its own: sharded runs of the skewed
# corner-hotspot workload (2 workers stealing, 4 workers no-steal) must
# reproduce the sequential event stepper byte for byte.
shard-scaling-smoke:
	$(GO) run ./cmd/bench -scaling-smoke

# The analytic-model gate: cross-check the closed-form estimator against
# short simulated runs of the profile-driven stepper scenarios (fatal beyond
# the loose oracle band or on a structurally dead tile), then run the golden
# calibration scenarios and the divergence-oracle mutation test.
estimate-smoke:
	$(GO) run ./cmd/bench -estimate-smoke
	$(GO) test -run 'TestGolden|TestOracle' ./internal/analytic

# The simulation daemon's end-to-end smoke gate: build cmd/nocsimd, boot it
# in-process on a temp store and a real TCP port, and drive it through the
# client library — a fresh run must simulate, an identical request must be
# served from the on-disk store in under 50ms without re-simulating, and an
# estimate request must answer from the closed-form model.
simd-smoke:
	$(GO) build ./cmd/nocsimd
	$(GO) run ./cmd/nocsimd -selftest

# The distributed fault-tolerance gate: boot an in-process coordinator,
# spawn two real worker processes that join it over HTTP, SIGKILL one while
# it holds two leases, and require the sweep to finish with every merged
# summary byte-identical to direct single-process execution, at least one
# lease recovered by expiry, and zero duplicate-completion byte mismatches.
dist-smoke:
	$(GO) build ./cmd/nocsimd
	$(GO) run ./cmd/nocsimd -dist-smoke

# Profile the harness itself: a quick pass with CPU and heap profiles written
# next to the repo, ready for `go tool pprof cpu.pprof`. See ARCHITECTURE.md
# ("Profiling workflow") for how to read the output.
profile:
	$(GO) run ./cmd/bench -quick -skip-sweep -shards "" -out /dev/null \
		-cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof; inspect with: $(GO) tool pprof cpu.pprof"

ci: vet build fork-race race shard-scaling-smoke estimate-smoke simd-smoke dist-smoke bench-smoke
