package nocmem_test

import (
	"fmt"
	"log"
	"os"

	"nocmem"
)

// Running one of the paper's Table 2 workloads under the baseline network,
// Scheme-1, and Scheme-1+2, and reading the headline metric.
func ExampleSpeedupFor() {
	cfg := nocmem.Baseline32()
	w, err := nocmem.GetWorkload(7) // memory intensive
	if err != nil {
		log.Fatal(err)
	}
	row, err := nocmem.SpeedupFor(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normalized WS: scheme-1 %.4f, scheme-1+2 %.4f\n", row.NormS1, row.NormS1S2)
}

// Building a custom system: a 16-core mesh with the two schemes enabled and
// a shorter measurement window.
func ExampleRunApps() {
	cfg := nocmem.Baseline16().WithSchemes(true, true)
	cfg.Run.MeasureCycles = 200_000

	mcf, err := nocmem.LookupApp("mcf")
	if err != nil {
		log.Fatal(err)
	}
	apps := []nocmem.Profile{mcf, mcf, mcf, mcf} // remaining tiles stay idle
	res, err := nocmem.RunApps(cfg, apps)
	if err != nil {
		log.Fatal(err)
	}
	for _, tile := range res.ActiveTiles() {
		h := res.Collector.RoundTrip[tile]
		fmt.Printf("tile %d: IPC %.3f, off-chip p99 %d cycles\n", tile, res.IPC[tile], h.Percentile(99))
	}
}

// Inspecting the five-leg latency anatomy of Figure 2/4 for one application.
func ExampleResult_breakdown() {
	cfg := nocmem.Baseline32()
	w, _ := nocmem.GetWorkload(2)
	res, err := nocmem.RunWorkload(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	tile := res.ActiveTiles()[0]
	for _, row := range res.Collector.Breakdown[tile].Rows() {
		fmt.Printf("%4d-%4d: %v\n", row.Lo, row.Hi, row.Avg)
	}
}

// Recording a synthetic stream to a trace file and replaying it.
func ExampleRunTraces() {
	ft, err := nocmem.OpenTrace("milc.trace") // written by cmd/tracegen
	if err != nil {
		log.Fatal(err)
	}
	cfg := nocmem.Baseline16()
	res, err := nocmem.RunTraces(cfg, []*nocmem.FileTrace{ft}, []string{"milc-replay"})
	if err != nil {
		log.Fatal(err)
	}
	res.WriteJSON(os.Stdout)
}
