module nocmem

go 1.22
