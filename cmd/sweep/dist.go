package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"runtime"

	"nocmem"
	"nocmem/internal/sim"
	"nocmem/internal/simd"
	"nocmem/internal/simdclient"
	"nocmem/internal/stats"
)

// The distributed sweep path: instead of simulating in-process, every run the
// table needs — per point the scheme run, the schemes-off base run, and the
// alone runs of the workload's applications on that point's substrate — is
// submitted as one job to a coordinator daemon, which leases the points to
// workers. The rows are then recomputed from the returned sim.Summary JSON
// with the same stats.WeightedSpeedup call over the same tile order and the
// same raw scheme counters the in-process path uses, so the printed table is
// byte-identical to a local `sweep` run in the same fork mode — regardless of
// worker count, completion order, duplicated completions, or worker deaths
// mid-sweep.

type distOptions struct {
	coordinator string // external coordinator base URL ("" = boot one in-process)
	workers     int    // in-process workers to contribute
	jobs        int    // simulation parallelism budget across local workers
	fork        bool   // warmup forking on workers (must match the mode being compared against)
	verbose     bool
}

func runDistributedSweep(o distOptions, points []point, w nocmem.Workload) {
	logf := func(string, ...any) {}
	if o.verbose {
		logf = log.Printf
	}

	base := o.coordinator
	var shutdown func()
	if base == "" {
		var err error
		if base, shutdown, err = bootLocalCoordinator(o, logf); err != nil {
			log.Fatal(err)
		}
	} else if o.workers > 0 {
		shutdown = bootLocalWorkers(base, o, logf)
	}
	if shutdown != nil {
		defer shutdown()
	}

	profs, err := w.Profiles()
	if err != nil {
		log.Fatal(err)
	}

	// Assemble the job: dedup by store key client-side (identical substrates
	// across sweep points share base and alone runs), remembering which keys
	// each row needs.
	var specs []simd.RunSpec
	seen := map[string]bool{}
	add := func(sp simd.RunSpec) string {
		rp, err := simd.ResolveSpec(sp)
		if err != nil {
			log.Fatal(err)
		}
		if !seen[rp.Key] {
			seen[rp.Key] = true
			specs = append(specs, sp)
		}
		return rp.Key
	}
	schemeKeys := make([]string, len(points))
	baseKeys := make([]string, len(points))
	aloneKeys := make([]map[string]string, len(points))
	for i, pt := range points {
		schemeKeys[i] = add(simd.RunSpec{Config: pt.cfg, Workload: w.ID})
		baseCfg := pt.cfg.WithSchemes(false, false)
		baseKeys[i] = add(simd.RunSpec{Config: baseCfg, Workload: w.ID})
		alone := map[string]string{}
		for _, p := range profs {
			if _, ok := alone[p.Name]; !ok {
				alone[p.Name] = add(simd.RunSpec{Config: baseCfg, Apps: []string{p.Name}})
			}
		}
		aloneKeys[i] = alone
	}

	ctx := context.Background()
	cl := simdclient.New(base)
	defer cl.Close()
	sub, err := cl.Submit(ctx, simd.RunRequest{Points: specs})
	if err != nil {
		log.Fatal(err)
	}
	logf("submitted %d unique runs for %d sweep points as job %s", len(specs), len(points), sub.ID)
	var onEvent func(simd.Event)
	if o.verbose {
		onEvent = func(e simd.Event) { log.Print(e.Msg) }
	}
	js, err := cl.Wait(ctx, sub.ID, onEvent)
	if err != nil {
		log.Fatal(err)
	}
	if e := js.Err(); e != "" {
		log.Fatalf("distributed sweep failed: %s", e)
	}

	byKey := make(map[string]sim.Summary, len(js.Results))
	for _, pr := range js.Results {
		var s sim.Summary
		if err := json.Unmarshal(pr.Summary, &s); err != nil {
			log.Fatalf("result %s: %v", pr.Key, err)
		}
		byKey[pr.Key] = s
	}

	rows := make([]row, len(points))
	for i := range points {
		alone := make(map[string]float64, len(aloneKeys[i]))
		for name, key := range aloneKeys[i] {
			s := byKey[key]
			if len(s.Apps) == 0 || s.Apps[0].IPC <= 0 {
				log.Fatalf("alone run of %s returned no usable IPC", name)
			}
			alone[name] = s.Apps[0].IPC
		}
		baseWS, err := summaryWS(byKey[baseKeys[i]], alone)
		if err != nil {
			log.Fatal(err)
		}
		ws, err := summaryWS(byKey[schemeKeys[i]], alone)
		if err != nil {
			log.Fatal(err)
		}
		s := byKey[schemeKeys[i]]
		rows[i] = row{
			norm:   ws / baseWS,
			netAvg: s.NetAvgLatency,
			s1Pct:  100 * float64(s.S1Tagged) / float64(s.S1Checked+1),
			s2Pct:  100 * float64(s.S2Tagged) / float64(s.S2Checked+1),
		}
	}
	printRows(points, nil, rows)

	if o.verbose {
		st, err := cl.Stats(ctx)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("provenance: %d leases granted, %d expired, %d re-leased; %d worker completions, %d duplicates absorbed",
			st.Runner.LeasesGranted, st.Runner.LeasesExpired, st.Runner.LeasesRelayed,
			st.Runner.RemoteCompletions, st.Runner.DuplicateCompletions)
		if st.Dist != nil {
			for _, ws := range st.Dist.Workers {
				log.Printf("provenance: worker %s: %d granted, %d completed", ws.ID, ws.Granted, ws.Completed)
			}
		}
	}
}

// summaryWS recomputes weighted speedup from a run's summary: the same
// stats.WeightedSpeedup over the same active-tile order the in-process path
// uses, with shared IPCs from the summary and alone IPCs from the alone-run
// summaries. JSON round-trips float64 exactly, so the result is bit-equal to
// the local computation.
func summaryWS(s sim.Summary, alone map[string]float64) (float64, error) {
	shared := make([]float64, 0, len(s.Apps))
	al := make([]float64, 0, len(s.Apps))
	for _, a := range s.Apps {
		ipc, ok := alone[a.App]
		if !ok {
			return 0, fmt.Errorf("no alone run for %s", a.App)
		}
		shared = append(shared, a.IPC)
		al = append(al, ipc)
	}
	return stats.WeightedSpeedup(shared, al)
}

// bootLocalCoordinator starts an in-process coordinator daemon on a loopback
// port plus o.workers in-process workers, dividing the simulation
// parallelism budget between them. The store lives in a temp dir for the
// life of the sweep — distribution here buys process-fault isolation and the
// exact execution semantics of a real cluster, not cross-run caching.
func bootLocalCoordinator(o distOptions, logf func(string, ...any)) (string, func(), error) {
	if o.workers <= 0 {
		return "", nil, fmt.Errorf("distributed sweep without -coordinator needs -workers >= 1")
	}
	dir, err := os.MkdirTemp("", "sweep-dist-*")
	if err != nil {
		return "", nil, err
	}
	srv, err := simd.New(simd.Options{
		StoreDir:    dir,
		ShareWarmup: o.fork,
		Logf:        logf,
		Distributed: true,
	})
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	logf("coordinator on %s (store %s)", base, dir)
	stopWorkers := bootLocalWorkers(base, o, logf)
	return base, func() {
		stopWorkers()
		hs.Close()
		os.RemoveAll(dir)
	}, nil
}

// bootLocalWorkers joins o.workers in-process workers to the coordinator at
// base and returns a stop function.
func bootLocalWorkers(base string, o distOptions, logf func(string, ...any)) func() {
	total := o.jobs
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	per := total / o.workers
	if per < 1 {
		per = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < o.workers; i++ {
		c := simdclient.New(base)
		name := fmt.Sprintf("local%d", i)
		go func() {
			defer c.Close()
			simdclient.RunWorker(ctx, c, simdclient.WorkerOptions{
				Name:        name,
				Parallelism: per,
				ShareWarmup: o.fork,
				Logf: func(format string, args ...any) {
					logf(name+": "+format, args...)
				},
			})
		}()
	}
	return cancel
}
