// Command sweep runs parameter sensitivity sweeps beyond the paper's own
// (Figure 16/17) studies: any of the Scheme-1 threshold factor, Scheme-2
// history window, mesh size, memory controllers, router pipeline, VC count,
// and buffer depth, on a chosen workload.
//
// Usage:
//
//	sweep -what threshold -workload 7
//	sweep -what history -workload 1
//	sweep -what vcs -workload 8
//	sweep -what vcs -workload 8 -estimate            # closed-form, no simulation
//	sweep -what buffers -workload 7 -prune-estimate 0.005
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"nocmem"
	"nocmem/internal/config"
	"nocmem/internal/par"
)

// point is one sweep point: a label for the table and the full configuration
// to evaluate (simulated or estimated).
type point struct {
	label string
	cfg   nocmem.Config
}

// row is one printed sweep-table line. Both the in-process path and the
// distributed path (dist.go) fill the same struct and print through
// printRows, so their tables are byte-identical by construction.
type row struct {
	norm, netAvg, s1Pct, s2Pct float64
}

// printRows renders the sweep table; skipped may be nil.
func printRows(points []point, skipped []bool, rows []row) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "point\tnormalized WS\tnet avg\ts1 tag%%\ts2 tag%%\n")
	for i, pt := range points {
		if skipped != nil && skipped[i] {
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\n", pt.label)
			continue
		}
		r := rows[i]
		fmt.Fprintf(tw, "%s\t%.4f\t%.1f\t%.1f\t%.1f\n", pt.label, r.norm, r.netAvg, r.s1Pct, r.s2Pct)
	}
	tw.Flush()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	var (
		what    = flag.String("what", "threshold", "sweep: threshold | history | mcs | pipeline | vcs | buffers | starvation | antistarvation | bypass | routing | policy")
		wid     = flag.Int("workload", 7, "Table 2 workload id (1-18)")
		warmup  = flag.Int64("warmup", 100_000, "warmup cycles")
		measure = flag.Int64("measure", 300_000, "measurement cycles")
		jobs    = flag.Int("j", 0, "max concurrent sweep points (0 = all CPUs, 1 = sequential)")
		shards  = flag.Int("shards", 1, "worker goroutines per simulation (results are identical at any count)")
		steal   = flag.String("steal", "on", "intra-cycle work stealing in sharded runs: on|off (bisection escape hatch)")
		fork    = flag.Bool("fork", false, "share one baseline warmup checkpoint across compatible sweep points (faster; scheme points then warm up under the baseline policy)")
		est     = flag.Bool("estimate", false, "answer the whole sweep from the closed-form analytic model instead of simulating")
		prune   = flag.Float64("prune-estimate", 0, "skip sweep points whose estimated |normalized WS delta| vs the first point is below this threshold (0 = run everything)")
		verbose = flag.Bool("v", false, "print cache/warmup provenance counters after the sweep (simulated vs cached runs, shared warmups, forks)")
		coord   = flag.String("coordinator", "", "run the sweep distributed: submit all points to the coordinator daemon at this base URL (start one with nocsimd -coordinator; join workers with nocsimd -join)")
		workers = flag.Int("workers", 0, "with -coordinator: also contribute this many in-process workers; without it: boot a local coordinator plus this many in-process workers (distributed execution without external daemons)")
	)
	flag.Parse()
	if *steal != "on" && *steal != "off" {
		log.Fatalf("bad -steal value %q (want on or off)", *steal)
	}
	if *est && *prune != 0 {
		log.Fatal("-estimate and -prune-estimate are mutually exclusive: -estimate never simulates, so there is nothing to prune")
	}
	if *prune < 0 {
		log.Fatalf("bad -prune-estimate threshold %g (want >= 0)", *prune)
	}
	distributed := *coord != "" || *workers > 0
	if distributed && (*est || *prune != 0) {
		log.Fatal("-coordinator/-workers are mutually exclusive with -estimate and -prune-estimate: estimates answer locally in microseconds, there is nothing to distribute")
	}
	if *workers < 0 {
		log.Fatalf("bad -workers count %d (want >= 0)", *workers)
	}
	nocmem.SetParallelism(*jobs)
	nocmem.SetShareWarmup(*fork)

	w, err := nocmem.GetWorkload(*wid)
	if err != nil {
		log.Fatal(err)
	}
	base := nocmem.Baseline32()
	base.Run.WarmupCycles = *warmup
	base.Run.MeasureCycles = *measure
	base.Run.Shards = *shards
	base.Run.NoSteal = *steal == "off"
	base.S1.UpdatePeriod = *measure / 15

	var points []point
	switch *what {
	case "threshold":
		for _, f := range []float64{0.8, 0.9, 1.0, 1.1, 1.2, 1.4} {
			c := base.WithSchemes(true, true)
			c.S1.ThresholdFactor = f
			points = append(points, point{fmt.Sprintf("%.1fx", f), c})
		}
	case "history":
		for _, T := range []int64{500, 1000, 2000, 4000, 8000} {
			c := base.WithSchemes(true, true)
			c.S2.HistoryWindow = T
			points = append(points, point{fmt.Sprintf("T=%d", T), c})
		}
	case "mcs":
		for _, n := range []int{2, 4} {
			c := base.WithSchemes(true, true)
			c.DRAM.Controllers = n
			points = append(points, point{fmt.Sprintf("%d MCs", n), c})
		}
	case "pipeline":
		for _, p := range []config.RouterPipeline{config.Pipeline5, config.Pipeline2} {
			c := base.WithSchemes(true, true)
			c.NoC.Pipeline = p
			points = append(points, point{fmt.Sprintf("%d-stage", p), c})
		}
	case "vcs":
		for _, v := range []int{2, 4, 8} {
			c := base.WithSchemes(true, true)
			c.NoC.VCsPerPort = v
			points = append(points, point{fmt.Sprintf("%d VCs", v), c})
		}
	case "buffers":
		for _, b := range []int{3, 5, 8, 16} {
			c := base.WithSchemes(true, true)
			c.NoC.BufferDepth = b
			points = append(points, point{fmt.Sprintf("%d flits", b), c})
		}
	case "starvation":
		for _, s := range []int64{100, 500, 1000, 5000} {
			c := base.WithSchemes(true, true)
			c.NoC.StarvationWindow = s
			points = append(points, point{fmt.Sprintf("window=%d", s), c})
		}
	case "antistarvation":
		age := base.WithSchemes(true, true)
		batch := base.WithSchemes(true, true)
		batch.NoC.StarvationMode = config.Batching
		points = append(points, point{"age-window", age}, point{"batching", batch})
	case "bypass":
		on := base.WithSchemes(true, true)
		off := base.WithSchemes(true, true)
		off.NoC.EnableBypass = false
		points = append(points, point{"bypass on", on}, point{"bypass off", off})
	case "routing":
		xy := base.WithSchemes(true, true)
		wf := base.WithSchemes(true, true)
		wf.NoC.Routing = config.RoutingWestFirst
		points = append(points, point{"x-y", xy}, point{"west-first", wf})
	case "policy":
		s12 := base.WithSchemes(true, true)
		appNet := base
		appNet.AppAwareNet = true
		appMem := base
		appMem.DRAM.Sched = config.AppAwareMem
		fcfs := base
		fcfs.DRAM.Sched = config.FCFS
		points = append(points,
			point{"scheme-1+2", s12},
			point{"app-aware net", appNet},
			point{"app-aware mem", appMem},
			point{"fcfs memory", fcfs},
		)
	default:
		log.Fatalf("unknown sweep %q", *what)
	}

	fmt.Printf("sweep %s on %s (%s)\n", *what, w.Name(), w.Category)

	if *est {
		runEstimatedSweep(points, w)
		return
	}

	if distributed {
		runDistributedSweep(distOptions{
			coordinator: *coord,
			workers:     *workers,
			jobs:        *jobs,
			fork:        *fork,
			verbose:     *verbose,
		}, points, w)
		return
	}

	// -prune-estimate skips cycle-accurate points whose estimated normalized
	// WS sits within threshold of the first point's estimate: the model says
	// the knob does not move the headline number there, so the expensive
	// simulation buys nothing. Point 0 always runs (it anchors the deltas),
	// and every pruned point is logged so nothing disappears silently.
	skipped := make([]bool, len(points))
	var profiles []nocmem.Profile
	if *prune > 0 {
		var err error
		if profiles, err = w.Profiles(); err != nil {
			log.Fatal(err)
		}
		norms := make([]float64, len(points))
		for i, pt := range points {
			n, err := estimatedNorm(pt.cfg, profiles)
			if err != nil {
				log.Fatal(err)
			}
			norms[i] = n
		}
		for i := 1; i < len(points); i++ {
			if delta := norms[i] - norms[0]; math.Abs(delta) < *prune {
				skipped[i] = true
				log.Printf("pruned %s: estimated normalized WS %.4f, delta %+.4f vs %s below threshold %g",
					points[i].label, norms[i], delta, points[0].label, *prune)
			}
		}
	}

	// Every sweep point is an independent pair of simulations, so points run
	// concurrently on a bounded pool; rows are printed afterwards in sweep
	// order. Each point's goroutine holds its pool slot for its whole body,
	// so a point waiting on another point's memoized alone run never blocks
	// the owner from progressing.
	rows := make([]row, len(points))
	g := par.NewGroup(nocmem.Parallelism())
	for i, pt := range points {
		if skipped[i] {
			continue
		}
		g.Go(func() error {
			// The base run differs when the sweep changes the substrate
			// (MCs, pipeline, VCs, buffers), so recompute it per point.
			baseRun, err := nocmem.RunWorkload(pt.cfg.WithSchemes(false, false), w)
			if err != nil {
				return err
			}
			baseWS, err := nocmem.WeightedSpeedup(pt.cfg, baseRun)
			if err != nil {
				return err
			}
			res, err := nocmem.RunWorkload(pt.cfg, w)
			if err != nil {
				return err
			}
			ws, err := nocmem.WeightedSpeedup(pt.cfg, res)
			if err != nil {
				return err
			}
			rows[i] = row{
				norm:   ws / baseWS,
				netAvg: res.Net.AvgLatency(),
				s1Pct:  100 * float64(res.S1Tagged) / float64(res.S1Checked+1),
				s2Pct:  100 * float64(res.S2Tagged) / float64(res.S2Checked+1),
			}
			if *prune > 0 {
				// Divergence oracle: when the model is trusted to prune, check
				// it against every point that did simulate, so a broken run
				// (or a drifting model) announces itself instead of silently
				// steering the sweep.
				rep, err := nocmem.CrossCheckRun(pt.cfg, profiles, res, nocmem.EstimateOracleBand)
				if err != nil {
					return err
				}
				if !rep.InBand() {
					log.Printf("divergence at %s: max leg error %.0f%% (band %.0f%%)",
						pt.label, 100*rep.MaxLegErr, 100*rep.Band)
					for _, f := range rep.Flags {
						log.Printf("divergence at %s: %s %s %s: %s", pt.label, f.Kind, f.Tile, f.App, f.Detail)
					}
				}
			}
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		log.Fatal(err)
	}

	printRows(points, skipped, rows)

	if *verbose {
		st := nocmem.Stats()
		log.Printf("provenance: %d run requests — %d simulated, %d served by the alone cache", st.Runs, st.Executed, st.CacheHits)
		log.Printf("provenance: %d warmup windows executed, %d runs forked from shared warm checkpoints", st.Warmups, st.Forked)
		if st.SnapshotMemHits+st.SnapshotDiskHits+st.SnapshotEvictions > 0 {
			log.Printf("provenance: snapshots: %d memory hits, %d disk hits, %d evictions",
				st.SnapshotMemHits, st.SnapshotDiskHits, st.SnapshotEvictions)
		}
	}
}

// estimatedNorm is the model's normalized weighted speedup for one sweep
// point: estimated WS under cfg over estimated WS with both schemes off on
// the same substrate. Both sides come from the model, so its absolute bias
// divides out.
func estimatedNorm(cfg nocmem.Config, apps []nocmem.Profile) (float64, error) {
	ws, err := nocmem.EstimatedWeightedSpeedup(cfg, apps)
	if err != nil {
		return 0, err
	}
	baseWS, err := nocmem.EstimatedWeightedSpeedup(cfg.WithSchemes(false, false), apps)
	if err != nil {
		return 0, err
	}
	return ws / baseWS, nil
}

// runEstimatedSweep prints the sweep table straight from the closed-form
// model, one estimate per point, without simulating a single cycle.
func runEstimatedSweep(points []point, w nocmem.Workload) {
	apps, err := w.Profiles()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimated (closed-form model, no simulated cycles)")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "point\tnormalized WS\tnet avg\ts1 tag%%\ts2 tag%%\n")
	for _, pt := range points {
		e, err := nocmem.EstimateApps(pt.cfg, apps)
		if err != nil {
			log.Fatal(err)
		}
		norm, err := estimatedNorm(pt.cfg, apps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.4f\t%.1f\t%.1f\t%.1f\n",
			pt.label, norm, e.NetLatency, 100*e.S1TaggedFrac, 100*e.S2TaggedFrac)
	}
	tw.Flush()
}
