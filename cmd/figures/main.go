// Command figures regenerates the data behind every table and figure of the
// paper's evaluation section.
//
// Usage:
//
//	figures -exp fig11                 # one experiment to stdout
//	figures -exp all -out results/     # everything, one file per experiment
//	figures -exp fig4 -measure 1000000 # longer measurement window
//
// Experiments: table1 table2 fig4 fig5 fig6 fig9 fig11 fig12 fig13 fig14
// fig15 fig16a fig16b fig16c fig17 all.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nocmem/internal/config"
	"nocmem/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		which   = flag.String("exp", "all", "experiment id (table1, table2, fig4..fig17, all)")
		outDir  = flag.String("out", "", "directory for per-experiment .tsv files (default: stdout)")
		warmup  = flag.Int64("warmup", 100_000, "warmup cycles")
		measure = flag.Int64("measure", 300_000, "measurement cycles")
		seed    = flag.Int64("seed", 1, "workload seed")
		push    = flag.Int64("push", 20_000, "scheme-1 threshold push period (cycles)")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	runner := exp.NewRunner(exp.Options{
		WarmupCycles:        *warmup,
		MeasureCycles:       *measure,
		Seed:                *seed,
		ThresholdPushPeriod: *push,
	})
	if !*quiet {
		runner.Progress = func(format string, args ...any) { log.Printf(format, args...) }
	}
	cfg := config.Baseline32()

	all := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig9", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16a", "fig16b", "fig16c", "fig17"}
	ids := strings.Split(*which, ",")
	if *which == "all" {
		ids = all
	}

	allWorkloads := func() []int {
		out := make([]int, 18)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}()

	for _, id := range ids {
		w, closeFn, err := output(*outDir, id)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		switch id {
		case "table1":
			exp.Table1(w, cfg)
		case "table2":
			exp.Table2(w)
		case "fig4":
			err = runner.Fig4(w, cfg)
		case "fig5":
			err = runner.Fig5(w, cfg)
		case "fig6":
			err = runner.Fig6(w, cfg)
		case "fig9":
			err = runner.Fig9(w, cfg)
		case "fig11":
			err = runner.Fig11(w, cfg, allWorkloads)
		case "fig12":
			err = runner.Fig12(w, cfg)
		case "fig13":
			err = runner.Fig13(w, cfg)
		case "fig14":
			err = runner.Fig14(w, cfg)
		case "fig15":
			err = runner.Fig15(w, allWorkloads)
		case "fig16a":
			err = runner.Fig16a(w, cfg, []float64{1.0, 1.2, 1.4})
		case "fig16b":
			err = runner.Fig16b(w, cfg, []int64{1000, 2000, 4000})
		case "fig16c":
			err = runner.Fig16c(w, cfg)
		case "fig17":
			err = runner.Fig17(w, cfg)
		default:
			err = fmt.Errorf("unknown experiment %q (want one of %s)", id, strings.Join(all, " "))
		}
		closeFn()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		if !*quiet {
			log.Printf("%s done in %.1fs", id, time.Since(start).Seconds())
		}
	}
}

// output returns the writer for one experiment.
func output(dir, id string) (io.Writer, func(), error) {
	if dir == "" {
		return os.Stdout, func() {}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(filepath.Join(dir, id+".tsv"))
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
