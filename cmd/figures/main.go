// Command figures regenerates the data behind every table and figure of the
// paper's evaluation section.
//
// Usage:
//
//	figures -exp fig11                 # one experiment to stdout
//	figures -exp all -out results/     # everything, one file per experiment
//	figures -exp fig4 -measure 1000000 # longer measurement window
//
// Experiments: table1 table2 fig4 fig5 fig6 fig9 fig11 fig12 fig13 fig14
// fig15 fig16a fig16b fig16c fig17 all.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nocmem/internal/config"
	"nocmem/internal/exp"
	"nocmem/internal/par"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	var (
		which   = flag.String("exp", "all", "experiment id (table1, table2, fig4..fig17, all)")
		outDir  = flag.String("out", "", "directory for per-experiment .tsv files (default: stdout)")
		warmup  = flag.Int64("warmup", 100_000, "warmup cycles")
		measure = flag.Int64("measure", 300_000, "measurement cycles")
		seed    = flag.Int64("seed", 1, "workload seed")
		push    = flag.Int64("push", 20_000, "scheme-1 threshold push period (cycles)")
		jobs    = flag.Int("j", 0, "max concurrent simulations (0 = all CPUs, 1 = sequential)")
		quiet   = flag.Bool("q", false, "suppress progress output")
		fork    = flag.Bool("fork", false, "share one baseline warmup checkpoint across compatible runs (faster; scheme runs then warm up under the baseline policy)")
	)
	flag.Parse()

	runner := exp.NewRunner(exp.Options{
		WarmupCycles:        *warmup,
		MeasureCycles:       *measure,
		Seed:                *seed,
		ThresholdPushPeriod: *push,
		Parallelism:         *jobs,
		ShareWarmup:         *fork,
	})
	if !*quiet {
		runner.SetProgress(func(format string, args ...any) { log.Printf(format, args...) })
	}
	cfg := config.Baseline32()

	all := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig9", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16a", "fig16b", "fig16c", "fig17"}
	ids := strings.Split(*which, ",")
	if *which == "all" {
		ids = all
	}

	allWorkloads := func() []int {
		out := make([]int, 18)
		for i := range out {
			out[i] = i + 1
		}
		return out
	}()

	runExp := func(id string, w io.Writer) error {
		switch id {
		case "table1":
			exp.Table1(w, cfg)
			return nil
		case "table2":
			exp.Table2(w)
			return nil
		case "fig4":
			return runner.Fig4(w, cfg)
		case "fig5":
			return runner.Fig5(w, cfg)
		case "fig6":
			return runner.Fig6(w, cfg)
		case "fig9":
			return runner.Fig9(w, cfg)
		case "fig11":
			return runner.Fig11(w, cfg, allWorkloads)
		case "fig12":
			return runner.Fig12(w, cfg)
		case "fig13":
			return runner.Fig13(w, cfg)
		case "fig14":
			return runner.Fig14(w, cfg)
		case "fig15":
			return runner.Fig15(w, allWorkloads)
		case "fig16a":
			return runner.Fig16a(w, cfg, []float64{1.0, 1.2, 1.4})
		case "fig16b":
			return runner.Fig16b(w, cfg, []int64{1000, 2000, 4000})
		case "fig16c":
			return runner.Fig16c(w, cfg)
		case "fig17":
			return runner.Fig17(w, cfg)
		default:
			return fmt.Errorf("unknown experiment %q (want one of %s)", id, strings.Join(all, " "))
		}
	}

	emit := func(id string, buf *bytes.Buffer, took time.Duration) {
		w, closeFn, err := output(*outDir, id)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := w.Write(buf.Bytes()); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		closeFn()
		if !*quiet {
			log.Printf("%s done in %.1fs", id, took.Seconds())
		}
	}

	if runner.Parallelism() > 1 && len(ids) > 1 {
		// Render every experiment concurrently into its own buffer; the
		// shared runner's worker pool bounds the actual simulations, and
		// its singleflight cache dedups runs shared across experiments.
		// Outputs are emitted afterwards in the requested order, so the
		// bytes written are identical to a sequential invocation.
		bufs := make([]bytes.Buffer, len(ids))
		tooks := make([]time.Duration, len(ids))
		g := par.NewGroup(len(ids))
		for i, id := range ids {
			g.Go(func() error {
				start := time.Now()
				if err := runExp(id, &bufs[i]); err != nil {
					return fmt.Errorf("%s: %v", id, err)
				}
				tooks[i] = time.Since(start)
				return nil
			})
		}
		if err := g.Wait(); err != nil {
			log.Fatal(err)
		}
		for i, id := range ids {
			emit(id, &bufs[i], tooks[i])
		}
		return
	}

	for _, id := range ids {
		var buf bytes.Buffer
		start := time.Now()
		if err := runExp(id, &buf); err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		emit(id, &buf, time.Since(start))
	}
}

// output returns the writer for one experiment.
func output(dir, id string) (io.Writer, func(), error) {
	if dir == "" {
		return os.Stdout, func() {}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	f, err := os.Create(filepath.Join(dir, id+".tsv"))
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}
