// Command tracegen records synthetic application instruction streams into
// trace files that the simulator (and nocsim -traces) can replay, and
// inspects existing traces.
//
// Usage:
//
//	tracegen -app milc -n 2000000 -o milc.trace
//	tracegen -inspect milc.trace
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nocmem/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")
	var (
		app     = flag.String("app", "", "application profile to record (see Table 2 names)")
		n       = flag.Int64("n", 1_000_000, "instructions to record")
		out     = flag.String("o", "", "output trace file")
		core    = flag.Int("core", 0, "core id (selects the address region and RNG stream)")
		seed    = flag.Int64("seed", 1, "generator seed")
		inspect = flag.String("inspect", "", "print a summary of an existing trace file")
	)
	flag.Parse()

	if *inspect != "" {
		ft, err := trace.OpenFile(*inspect)
		if err != nil {
			log.Fatal(err)
		}
		hot, warm := ft.PrewarmLines()
		var mem, stores int64
		for i := int64(0); i < ft.Records(); i++ {
			in := ft.Next()
			if in.IsMem {
				mem++
				if in.IsStore {
					stores++
				}
			}
		}
		fmt.Printf("%s: %d records, %d memory ops (%.1f%%), %d stores (%.1f%% of mem), prewarm %d hot + %d warm lines\n",
			*inspect, ft.Records(), mem, 100*float64(mem)/float64(ft.Records()),
			stores, 100*float64(stores)/float64(mem), len(hot), len(warm))
		return
	}

	if *app == "" || *out == "" {
		log.Fatal("need -app and -o (or -inspect)")
	}
	p, err := trace.Lookup(*app)
	if err != nil {
		log.Fatal(err)
	}
	g, err := trace.NewGenerator(p, *core, 64, *seed)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := trace.Record(f, g, *n); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(*out)
	fmt.Printf("recorded %d instructions of %s (core %d) to %s (%d bytes)\n", *n, *app, *core, *out, st.Size())
}
