// Command plot renders the .tsv files produced by cmd/figures as terminal
// charts (bar charts, sparklines) or as standalone SVG figures.
//
// Usage:
//
//	plot results/fig11.tsv                      # bars of a chosen column
//	plot -col 4 results/fig11.tsv               # pick the column (0-based)
//	plot -spark results/fig14.tsv               # sparkline per numeric column
//	plot -svg fig11.svg results/fig11.tsv       # grouped SVG bar chart
//	plot -svg fig14.svg -line results/fig14.tsv # SVG line chart (x = col 0)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"nocmem/internal/ascii"
	"nocmem/internal/svg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("plot: ")
	var (
		col      = flag.Int("col", -1, "value column to plot (default: last numeric column)")
		spark    = flag.Bool("spark", false, "render each numeric column as a sparkline")
		width    = flag.Int("width", 50, "bar width in characters")
		baseline = flag.Float64("baseline", 0, "draw a marker at this value (e.g. 1.0 for normalized speedups)")
		svgOut   = flag.String("svg", "", "write an SVG figure to this file instead of terminal output")
		line     = flag.Bool("line", false, "with -svg: line chart with column 0 as the x axis")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: plot [flags] <file.tsv>")
	}
	header, rows, err := readTSV(flag.Arg(0))
	if err != nil {
		log.Fatal(err)
	}
	if len(rows) == 0 {
		log.Fatal("no data rows")
	}

	if *svgOut != "" {
		if err := writeSVG(*svgOut, flag.Arg(0), header, rows, *line, *baseline); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", *svgOut)
		return
	}

	if *spark {
		for c := 1; c < len(header); c++ {
			vals, ok := column(rows, c)
			if !ok {
				continue
			}
			lo, hi := minMax(vals)
			fmt.Printf("%-12s %s  [%.3g .. %.3g]\n", header[c], ascii.Spark(vals), lo, hi)
		}
		return
	}

	c := *col
	if c < 0 {
		for k := len(header) - 1; k >= 1; k-- {
			if _, ok := column(rows, k); ok {
				c = k
				break
			}
		}
	}
	vals, ok := column(rows, c)
	if !ok {
		log.Fatalf("column %d is not numeric", c)
	}
	labels := make([]string, len(rows))
	for i, r := range rows {
		labels[i] = r[0]
	}
	fmt.Printf("%s — %s\n", flag.Arg(0), header[c])
	b := ascii.Bar{Width: *width, Baseline: *baseline}
	if err := b.Render(os.Stdout, labels, vals); err != nil {
		log.Fatal(err)
	}
}

// writeSVG renders the table as a grouped bar chart, or as a line chart with
// column 0 as the x axis when line is set.
func writeSVG(path, title string, header []string, rows [][]string, line bool, baseline float64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if line {
		xs, ok := column(rows, 0)
		if !ok {
			return fmt.Errorf("column 0 is not numeric; a line chart needs a numeric x axis")
		}
		var series []svg.Series
		for c := 1; c < len(header); c++ {
			ys, ok := column(rows, c)
			if !ok {
				continue
			}
			series = append(series, svg.Series{Name: header[c], X: xs, Y: ys})
		}
		chart := svg.Chart{Title: title, XLabel: header[0], Series: series}
		if err := chart.Render(f); err != nil {
			return err
		}
		return f.Close()
	}
	var names []string
	var cols [][]float64
	for c := 1; c < len(header); c++ {
		vals, ok := column(rows, c)
		if !ok {
			continue
		}
		names = append(names, header[c])
		cols = append(cols, vals)
	}
	if len(cols) == 0 {
		return fmt.Errorf("no numeric columns")
	}
	labels := make([]string, len(rows))
	values := make([][]float64, len(rows))
	for i, r := range rows {
		labels[i] = r[0]
		values[i] = make([]float64, len(cols))
		for c := range cols {
			values[i][c] = cols[c][i]
		}
	}
	chart := svg.BarChart{Title: title, Labels: labels, Series: names, Values: values, Baseline: baseline}
	if err := chart.Render(f); err != nil {
		return err
	}
	return f.Close()
}

// readTSV loads a cmd/figures output file: '#' comment lines, then a header
// row, then data rows.
func readTSV(path string) (header []string, rows [][]string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\n")
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if header == nil {
			header = fields
			continue
		}
		rows = append(rows, fields)
	}
	return header, rows, sc.Err()
}

// column extracts a numeric column; ok is false if any cell fails to parse.
func column(rows [][]string, c int) ([]float64, bool) {
	out := make([]float64, 0, len(rows))
	for _, r := range rows {
		if c >= len(r) {
			return nil, false
		}
		v, err := strconv.ParseFloat(r[c], 64)
		if err != nil {
			return nil, false
		}
		out = append(out, v)
	}
	return out, true
}

func minMax(vs []float64) (lo, hi float64) {
	lo, hi = vs[0], vs[0]
	for _, v := range vs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
