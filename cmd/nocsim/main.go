// Command nocsim runs one multiprogrammed workload on the simulated 32-core
// NoC multicore and reports the paper's headline metrics under the baseline,
// Scheme-1, and Scheme-1+2.
//
// Usage:
//
//	nocsim -workload 7                  # Table 2 workload id (1-18)
//	nocsim -workload 7 -cores 16        # 16-core 4x4 system
//	nocsim -workload 1 -measure 1000000 # longer window
//	nocsim -workload 7 -estimate        # closed-form estimate, no simulation
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"nocmem"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("nocsim: ")
	var (
		wid      = flag.Int("workload", 1, "Table 2 workload id (1-18)")
		cores    = flag.Int("cores", 32, "core count: 32 (4x8) or 16 (4x4)")
		warmup   = flag.Int64("warmup", 100_000, "warmup cycles")
		measure  = flag.Int64("measure", 300_000, "measurement cycles")
		seed     = flag.Int64("seed", 1, "workload seed")
		verbose  = flag.Bool("v", false, "per-application details")
		jsonOut  = flag.String("json", "", "write the scheme-1+2 run's summary as JSON to this file ('-' = stdout)")
		jobs     = flag.Int("j", 0, "max concurrent simulations (0 = all CPUs, 1 = sequential)")
		shards   = flag.Int("shards", 1, "worker goroutines per simulation (results are identical at any count)")
		steal    = flag.String("steal", "on", "intra-cycle work stealing in sharded runs: on|off (bisection escape hatch)")
		fork     = flag.Bool("fork", false, "share one baseline warmup checkpoint across the base/S1/S1+S2 runs (faster; scheme runs then warm up under the baseline policy)")
		estimate = flag.Bool("estimate", false, "answer from the closed-form analytic model instead of simulating (microseconds, approximate)")
	)
	flag.Parse()
	if *steal != "on" && *steal != "off" {
		log.Fatalf("bad -steal value %q (want on or off)", *steal)
	}
	nocmem.SetParallelism(*jobs)
	nocmem.SetShareWarmup(*fork)

	var cfg nocmem.Config
	switch *cores {
	case 32:
		cfg = nocmem.Baseline32()
	case 16:
		cfg = nocmem.Baseline16()
	default:
		log.Fatalf("unsupported core count %d (want 32 or 16)", *cores)
	}
	cfg.Run.WarmupCycles = *warmup
	cfg.Run.MeasureCycles = *measure
	cfg.Run.Seed = *seed
	cfg.Run.Shards = *shards
	cfg.Run.NoSteal = *steal == "off"
	cfg.S1.UpdatePeriod = *measure / 15

	w, err := nocmem.GetWorkload(*wid)
	if err != nil {
		log.Fatal(err)
	}
	if *cores == 16 {
		if w, err = w.Halve(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%s (%s) on %d cores, %d + %d cycles\n", w.Name(), w.Category, *cores, *warmup, *measure)

	if *estimate {
		runEstimate(cfg, w, *jsonOut, *verbose)
		return
	}

	row, err := nocmem.SpeedupFor(cfg, w)
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "system\tweighted speedup\tnormalized\tavg off-chip latency\tnet avg latency\n")
	for _, v := range []struct {
		name string
		ws   float64
		norm float64
		res  *nocmem.Result
	}{
		{"base", row.BaseWS, 1.0, row.Base},
		{"scheme-1", row.S1WS, row.NormS1, row.S1},
		{"scheme-1+2", row.S1S2WS, row.NormS1S2, row.S1S2},
	} {
		var lat float64
		var n int
		for _, tile := range v.res.ActiveTiles() {
			if h := v.res.Collector.RoundTrip[tile]; h.Count() > 0 {
				lat += h.Mean()
				n++
			}
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\t%.0f\t%.1f\n", v.name, v.ws, v.norm, lat/float64(n), v.res.Net.AvgLatency())
	}
	tw.Flush()

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		if err := row.S1S2.WriteJSON(out); err != nil {
			log.Fatal(err)
		}
	}

	s1, s12 := row.S1, row.S1S2
	fmt.Printf("\nscheme-1 tagged %d of %d responses (%.1f%%); tagged return path %.0f vs normal %.0f cycles\n",
		s1.S1Tagged, s1.S1Checked, 100*float64(s1.S1Tagged)/float64(s1.S1Checked+1),
		s1.Collector.RetHigh.Mean(), s1.Collector.RetNormal.Mean())
	fmt.Printf("scheme-2 tagged %d of %d requests (%.1f%%)\n",
		s12.S2Tagged, s12.S2Checked, 100*float64(s12.S2Tagged)/float64(s12.S2Checked+1))

	if *verbose {
		fmt.Println()
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "tile\tapp\tIPC(base)\tIPC(s1+2)\tMPKI\tavg lat\tp99 lat\n")
		for _, tile := range row.Base.ActiveTiles() {
			h := row.Base.Collector.RoundTrip[tile]
			fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.3f\t%.1f\t%.0f\t%d\n",
				tile, row.Base.Apps[tile].Name, row.Base.IPC[tile], row.S1S2.IPC[tile],
				row.Base.MPKI(tile), h.Mean(), h.Percentile(99))
		}
		tw.Flush()
	}
}

// runEstimate prints the headline table from the closed-form analytic model:
// no cycles are simulated, so it answers in microseconds at the model's
// calibrated accuracy (see internal/analytic).
func runEstimate(cfg nocmem.Config, w nocmem.Workload, jsonOut string, verbose bool) {
	apps, err := w.Profiles()
	if err != nil {
		log.Fatal(err)
	}

	type variant struct {
		name   string
		cfg    nocmem.Config
		est    *nocmem.Estimate
		ws     float64
		baseWS float64
	}
	variants := []variant{
		{name: "base", cfg: cfg.WithSchemes(false, false)},
		{name: "scheme-1", cfg: cfg.WithSchemes(true, false)},
		{name: "scheme-1+2", cfg: cfg.WithSchemes(true, true)},
	}
	for i := range variants {
		v := &variants[i]
		if v.est, err = nocmem.EstimateApps(v.cfg, apps); err != nil {
			log.Fatal(err)
		}
		if v.ws, err = nocmem.EstimatedWeightedSpeedup(v.cfg, apps); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("estimated (closed-form model, no simulated cycles)")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "system\tweighted speedup\tnormalized\tavg off-chip latency\tnet avg latency\n")
	for _, v := range variants {
		var lat float64
		for _, a := range v.est.Apps {
			lat += a.Total
		}
		if n := len(v.est.Apps); n > 0 {
			lat /= float64(n)
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\t%.0f\t%.1f\n",
			v.name, v.ws, v.ws/variants[0].ws, lat, v.est.NetLatency)
	}
	tw.Flush()

	s1, s12 := variants[1].est, variants[2].est
	fmt.Printf("\nscheme-1 estimated to tag %.1f%% of responses; scheme-2 %.1f%% of requests\n",
		100*s1.S1TaggedFrac, 100*s12.S2TaggedFrac)

	if jsonOut != "" {
		out := os.Stdout
		if jsonOut != "-" {
			f, err := os.Create(jsonOut)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s12.Summary()); err != nil {
			log.Fatal(err)
		}
	}

	if verbose {
		fmt.Println()
		tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "tile\tapp\tIPC(base)\tIPC(s1+2)\tMLP\tavg lat\n")
		for i, a := range variants[0].est.Apps {
			fmt.Fprintf(tw, "%s\t%s\t%.3f\t%.3f\t%.1f\t%.0f\n",
				a.Tile, a.App, a.IPC, s12.Apps[i].IPC, a.MLP, a.Total)
		}
		tw.Flush()
	}
}
