// Command bench is the perf-regression harness. It measures, in-process via
// testing.Benchmark:
//
//   - the simulator's hot-path micro-benchmarks (ns per simulated cycle and
//     allocs per cycle for the 32- and 16-core systems, and per network tick
//     of a loaded mesh),
//   - the event-driven stepper against the dense reference stepper on an
//     idle-heavy (alone run), a mixed, a saturated and a bursty workload
//     (alternating hot/idle phases over a heterogeneously clocked mesh —
//     the router-timed-wake case, gated by its own dense/event/sharded
//     byte-equality check),
//   - the sharded parallel stepper at 1, 2 and 4 workers on the saturated
//     workload (after gating that the sharded run reproduces the sequential
//     one byte for byte),
//   - the shard_scaling campaign: 1/2/4/8 workers x balanced/skewed/bursty
//     workloads x 8x8 and 16x16 meshes, each point gated byte-identical to
//     the sequential stepper first, with runtime.NumCPU recorded so speedup
//     ratios are only marked valid when the host actually has the cores, and
//   - the warmup-amortization speedup of checkpoint forking (eight policy
//     configurations forked from one warmed snapshot vs eight cold runs),
//   - the wall time of a Figure-11 style sweep (three workloads, three
//     systems each, plus alone runs) executed sequentially and on the
//     runner's parallel worker pool,
//   - the analytic model's divergence against the simulator (relative error
//     per latency leg on the profile-driven stepper scenarios, via
//     internal/analytic's CrossCheck oracle),
//
// and writes everything as JSON for before/after comparison across commits.
//
// Usage:
//
//	bench                     # full harness -> BENCH_8.json
//	bench -out -              # JSON to stdout
//	bench -quick              # smaller op counts (CI smoke)
//	bench -skip-sweep         # micro + stepper benchmarks only
//	bench -shards 1,2,4       # worker counts for the sharded-stepper sweep
//	bench -steal=off          # disable intra-cycle work stealing (bisection)
//	bench -scaling-smoke      # shard-scaling byte-equality gate only (CI)
//	bench -estimate-smoke     # analytic-model cross-check gate only (CI)
//	bench -check BENCH_1.json # fail on regression vs a stored report
//	bench -cpuprofile cpu.out # write a CPU profile of the whole run
//	bench -memprofile mem.out # write a heap profile at exit
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"testing"
	"time"

	"nocmem/internal/analytic"
	"nocmem/internal/config"
	"nocmem/internal/exp"
	"nocmem/internal/forkrun"
	"nocmem/internal/noc"
	"nocmem/internal/sim"
	"nocmem/internal/stats"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

type microResult struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// stepperResult compares the event-driven scheduler against the dense
// reference stepper on one workload. Their results are byte-identical (see
// internal/sim's TestEventDenseEquivalence); this measures only speed.
type stepperResult struct {
	Name     string  `json:"name"`
	DenseNs  float64 `json:"dense_ns_per_cycle"`
	EventNs  float64 `json:"event_ns_per_cycle"`
	Speedup  float64 `json:"speedup"`
	DenseOps int     `json:"dense_ops"`
	EventOps int     `json:"event_ops"`
}

// shardResult is one point of the sharded-stepper sweep: ns per simulated
// cycle of the saturated 32-tile workload stepped by Workers goroutines over
// cost-balanced chunks. Speedup is relative to the sequential (1-worker) run
// of the same sweep. Valid records whether the ratio measures parallelism at
// all: when the host has fewer cores than workers (Cores records
// runtime.NumCPU) the workers are time-sliced and the ratio only shows
// barrier overhead, so it must not be read as a parallelization regression
// (or win).
type shardResult struct {
	Name    string  `json:"name"`
	Shards  int     `json:"shards"`
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_cycle"`
	Ops     int     `json:"ops"`
	Speedup float64 `json:"speedup"`
	Cores   int     `json:"cores"`
	Valid   bool    `json:"valid"`
	Note    string  `json:"note,omitempty"`
}

// scalingResult is one point of the shard_scaling campaign: ns per simulated
// cycle of one workload shape on one mesh size at one worker count. Speedup
// is relative to the campaign's sequential run of the same (workload, mesh)
// pair; Valid is per-host honesty — true only when the host has at least as
// many cores (runtime.NumCPU, recorded in Cores) as workers, so a flagged
// ratio is never mistaken for a measured one.
type scalingResult struct {
	Name    string  `json:"name"`
	Mesh    string  `json:"mesh"`
	Workers int     `json:"workers"`
	Steal   bool    `json:"steal"`
	NsPerOp float64 `json:"ns_per_cycle"`
	Ops     int     `json:"ops"`
	Speedup float64 `json:"speedup,omitempty"`
	Cores   int     `json:"cores"`
	Valid   bool    `json:"valid"`
	Note    string  `json:"note,omitempty"`
}

type sweepResult struct {
	Name        string  `json:"name"`
	Parallelism int     `json:"parallelism"`
	Seconds     float64 `json:"seconds"`
}

// forkResult measures warmup amortization via checkpoint forking: the same
// N policy configurations run cold (each paying the full warmup) and forked
// (one warmup checkpoint restored N times — see internal/forkrun). Both
// sides run sequentially, so Speedup measures the amortization alone, not
// parallelism. The ideal is (N*(W+M)) / (W+N*M) simulated cycles.
type forkResult struct {
	Name          string  `json:"name"`
	Configs       int     `json:"configs"`
	WarmupCycles  int64   `json:"warmup_cycles"`
	MeasureCycles int64   `json:"measure_cycles"`
	ColdSeconds   float64 `json:"cold_seconds"`
	ForkSeconds   float64 `json:"fork_seconds"`
	Speedup       float64 `json:"speedup"`
	IdealSpeedup  float64 `json:"ideal_speedup"`
}

// drainResult compares DRAM controller Tick executions between the dense
// reference and the event stepper on one scenario. The dense loop ticks
// every controller every cycle; the event stepper executes only event
// deadlines, and when the whole system is quiescent with nothing but
// controller-internal work pending it replays the controllers' timelines in
// closed form (FastForwarded counts the Ticks absorbed that way). Results
// are gated byte-identical before the counters are compared.
type drainResult struct {
	Name          string `json:"name"`
	Cycles        int64  `json:"cycles"`
	DenseTicks    int64  `json:"dense_dram_ticks"`
	EventTicks    int64  `json:"event_dram_ticks"`
	FastForwarded int64  `json:"event_fast_forwarded"`
	TickedCycles  int64  `json:"event_ticked_cycles"`
}

// estimateResult is one point of the analytic-model divergence record: the
// closed-form estimate (internal/analytic) of one stepper scenario checked
// against the simulated run. LegRelErr holds the off-chip-weighted relative
// error of the five latency legs (L1->L2, L2->MC, memory, MC->L2, L2->L1);
// InBand reports whether every leg sits within the calibrated band the golden
// tests pin. A scenario beyond the much looser oracle band (or with a
// structural dead-tile flag) fails the harness outright — that is simulator
// or model breakage, not drift.
type estimateResult struct {
	Name        string                 `json:"name"`
	LegRelErr   [stats.NumLegs]float64 `json:"leg_rel_err"`
	TotalRelErr float64                `json:"total_rel_err"`
	NetRelErr   float64                `json:"net_rel_err"`
	MaxLegErr   float64                `json:"max_leg_err"`
	Band        float64                `json:"band"`
	InBand      bool                   `json:"within_calibrated_band"`
}

type report struct {
	GoVersion  string          `json:"go_version"`
	NumCPU     int             `json:"num_cpu"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Baseline   []microResult   `json:"baseline"`
	Micro      []microResult   `json:"micro"`
	Stepper    []stepperResult `json:"stepper,omitempty"`
	Drain      []drainResult   `json:"dram_drain,omitempty"`
	Shards     []shardResult   `json:"shards,omitempty"`
	// ShardScaling is the multi-core measurement campaign: worker counts
	// 1/2/4/8 x balanced/skewed/bursty workloads x 8x8 and 16x16 meshes.
	ShardScaling []scalingResult `json:"shard_scaling,omitempty"`
	Fork         *forkResult     `json:"fork_amortization,omitempty"`
	// Estimate records the analytic model's divergence per scenario so drift
	// across commits is visible in before/after report diffs.
	Estimate []estimateResult `json:"estimate,omitempty"`
	Sweep    []sweepResult    `json:"sweep,omitempty"`
	// SweepSpeedup is sequential seconds / parallel seconds. It only
	// measures parallelism when the worker pool actually has more than one
	// worker; SweepSpeedupValid records whether it does, so a ~1.0 ratio on
	// a single-CPU host is not misread as a parallelization regression.
	SweepSpeedup      float64 `json:"sweep_speedup,omitempty"`
	SweepSpeedupValid bool    `json:"sweep_speedup_valid"`
	SweepSpeedupNote  string  `json:"sweep_speedup_note,omitempty"`
}

// baseline is the fixed "before" reference: the same micro-benchmarks
// measured at the previous PR (BENCH_1.json: dense stepper after the
// allocation diet and free lists) on a single-CPU Xeon @ 2.70GHz container.
var baseline = []microResult{
	{Name: "sim_cycle_32core", Ops: 42_744, NsPerOp: 27552.93, BytesPerOp: 225, AllocsPerOp: 1},
	{Name: "sim_cycle_16core", Ops: 85_467, NsPerOp: 13896.34, BytesPerOp: 121, AllocsPerOp: 0},
	{Name: "network_tick_4x8", Ops: 209_212, NsPerOp: 5559.83, BytesPerOp: 0, AllocsPerOp: 0},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		out          = flag.String("out", "BENCH_8.json", "output file ('-' = stdout)")
		quick        = flag.Bool("quick", false, "smaller op counts (CI smoke run)")
		skipSweep    = flag.Bool("skip-sweep", false, "skip the runner-pool sweep")
		shards       = flag.String("shards", "1,2,4", "comma-separated worker counts for the sharded-stepper sweep ('' = skip)")
		steal        = flag.String("steal", "on", "intra-cycle work stealing in sharded runs: on|off (bisection escape hatch)")
		scalingSmoke = flag.Bool("scaling-smoke", false, "run only the shard-scaling byte-equality gate, then exit (CI)")
		estSmoke     = flag.Bool("estimate-smoke", false, "run only the analytic-model cross-check gate, then exit (CI)")
		check        = flag.String("check", "", "stored report to gate against (fail on alloc or >20% ns/op regression)")
		minSpeedup   = flag.Float64("min-stepper-speedup", 0.95, "fail when any stepper scenario's event-vs-dense speedup drops below this (0 = off)")
		cpuProfile   = flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
		memProfile   = flag.String("memprofile", "", "write a heap profile at exit to this file")
	)
	flag.Parse()
	var noSteal bool
	switch *steal {
	case "on":
	case "off":
		noSteal = true
	default:
		log.Fatalf("bad -steal value %q (want on or off)", *steal)
	}
	if *scalingSmoke {
		scalingEqualityGate(true)
		log.Printf("shard-scaling smoke gate passed")
		return
	}
	if *estSmoke {
		estimateCrossChecks(true)
		log.Printf("estimate smoke gate passed")
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	rep := report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Baseline:   baseline,
	}

	for _, m := range []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"sim_cycle_32core", simCycleBench(config.Baseline32(), 7, false)},
		{"sim_cycle_16core", simCycleBench(config.Baseline16(), 7, true)},
		{"network_tick_4x8", networkTickBench()},
	} {
		log.Printf("running %s...", m.name)
		r := testing.Benchmark(m.fn)
		if r.N == 0 {
			log.Fatalf("%s produced no iterations", m.name)
		}
		rep.Micro = append(rep.Micro, microResult{
			Name:        m.name,
			Ops:         r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	burstyEqualityGate(*quick)
	rep.Stepper = stepperBenches(*quick)
	if *minSpeedup > 0 {
		floor := *minSpeedup
		if *quick {
			// Quick windows under-amortize the event stepper's fixed costs
			// (activateAll resweeps, wake re-arming) against the saturated
			// scenario, where everything is active and event ≈ dense by
			// design: ~0.93 was typical on quick runs before this gate
			// existed. Derate so the smoke gate only trips on real
			// regressions, while full runs hold the strict floor.
			floor *= 0.88
		}
		warm := stepperWarm(*quick)
		wls := stepperWorkloads()
		for i := range rep.Stepper {
			s := &rep.Stepper[i]
			// Wall-clock ratios on a shared host are noisy; a single low
			// sample is usually a scheduling artifact, not a regression.
			// Re-measure up to twice, keeping the best run, and fail only
			// when the shortfall persists.
			for retry := 1; s.Speedup < floor && retry <= 2; retry++ {
				log.Printf("stepper %s: speedup %.3f below the %.2f floor; re-measuring (attempt %d/2)...",
					s.Name, s.Speedup, floor, retry)
				for _, wl := range wls {
					if wl.name == s.Name {
						if m := measureStepper(wl, warm); m.Speedup > s.Speedup {
							*s = m
						}
						break
					}
				}
			}
			if s.Speedup < floor {
				log.Fatalf("stepper %s: event/dense speedup %.3f below the %.2f floor (event %.1f ns/cycle vs dense %.1f)",
					s.Name, s.Speedup, floor, s.EventNs, s.DenseNs)
			}
		}
		log.Printf("all stepper speedups >= %.2f", floor)
	}
	rep.Drain = drainTickGate(*quick)

	if *shards != "" {
		counts, err := parseShardCounts(*shards)
		if err != nil {
			log.Fatal(err)
		}
		shardEqualityGate(counts, *quick, noSteal)
		rep.Shards = shardBenches(counts, *quick, noSteal)
	}

	// The shard_scaling campaign (1/2/4/8 workers x three workload shapes x
	// two mesh sizes) is a measurement pass, not a smoke gate — the CI gate
	// is `bench -scaling-smoke` (make shard-scaling-smoke).
	if !*skipSweep {
		scalingEqualityGate(*quick)
		rep.ShardScaling = scalingBenches(*quick, noSteal)
	}

	rep.Fork = forkAmortization(*quick)

	rep.Estimate = estimateCrossChecks(*quick)

	if !*skipSweep {
		runSweep(&rep, *quick)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		log.Printf("wrote %s", *out)
	}
	if *check != "" {
		if err := checkAgainst(*check, rep); err != nil {
			log.Fatal(err)
		}
		log.Printf("no regression vs %s", *check)
	}
}

// stepperWorkload is one dense-vs-event comparison point. Profile-named
// workloads leave srcs nil; synthetic ones (bursty) provide a factory so
// each run gets fresh, deterministic source state.
type stepperWorkload struct {
	name string
	cfg  config.Config
	apps []trace.Profile
	srcs func() []trace.AppSource
}

func (wl stepperWorkload) newSim() (*sim.Simulator, error) {
	if wl.srcs != nil {
		return sim.NewFromSources(wl.cfg, wl.srcs(), wl.apps)
	}
	return sim.New(wl.cfg, wl.apps)
}

// stepperWorkloads returns the dense-vs-event comparison points: idle-heavy
// (one compute-bound namd alone on 32 tiles — 31 idle tiles and a mostly
// quiet mesh, the alone-run shape the paper's normalization baseline needs
// in bulk), mixed (half-loaded 16-tile system), saturated (all 32 tiles
// running the most memory-intensive workload), and bursty (alternating
// hot/idle phases, the router-timed-wake case).
func stepperWorkloads() []stepperWorkload {
	alone := make([]trace.Profile, config.Baseline32().Mesh.Nodes())
	alone[0] = trace.MustLookup("namd")

	w1, err := workload.Get(1)
	if err != nil {
		log.Fatal(err)
	}
	half, err := w1.Halve()
	if err != nil {
		log.Fatal(err)
	}
	mixed, err := half.Profiles()
	if err != nil {
		log.Fatal(err)
	}

	w7, err := workload.Get(7)
	if err != nil {
		log.Fatal(err)
	}
	saturated, err := w7.Profiles()
	if err != nil {
		log.Fatal(err)
	}

	burstyCfg, burstyApps, burstySrcs := burstyWorkload()

	return []stepperWorkload{
		{name: "idle_heavy_alone_namd_32", cfg: config.Baseline32(), apps: alone},
		{name: "mixed_w1_half_16", cfg: config.Baseline16(), apps: mixed},
		{name: "saturated_w7_32", cfg: config.Baseline32(), apps: saturated},
		{name: "bursty_hot_idle_32", cfg: burstyCfg, apps: burstyApps, srcs: burstySrcs},
	}
}

// burstySource emits alternating phases: a burst of cold memory misses that
// hard-stalls the core against off-chip latency (the mesh and DRAM go hot),
// then a stretch of non-memory instructions (the mesh drains while the core
// computes). This is the load shape where routers used to busy-tick — every
// burst leaves in-flight arrivals and pending credit returns rippling
// through the mesh — and where BENCH_2's idle-heavy scenario showed nothing.
type burstySource struct {
	burst, gap int // phase lengths, in instructions
	storeEvery int // every Nth burst access is a store (1 = all stores)
	hotLeft    int
	gapLeft    int
	addr       uint64
	stride     uint64
}

func (b *burstySource) Next() trace.Instr {
	if b.hotLeft > 0 {
		b.hotLeft--
		if b.hotLeft == 0 {
			b.gapLeft = b.gap
		}
		a := b.addr
		b.addr += b.stride
		return trace.Instr{IsMem: true, IsStore: b.hotLeft%b.storeEvery == 0, Addr: a}
	}
	b.gapLeft--
	if b.gapLeft <= 0 {
		b.hotLeft = b.burst
	}
	return trace.Instr{}
}

func (b *burstySource) PrewarmLines() (hot, warm []uint64) { return nil, nil }

// burstyWorkload builds the bursty comparison point: six bursty cores spread
// over the 32-tile mesh (the rest idle), with three routers running below
// the mesh clock so their div-aligned wakes are exercised on a hot path.
func burstyWorkload() (config.Config, []trace.Profile, func() []trace.AppSource) {
	cfg := config.Baseline32()
	cfg.NoC.ClockDivisors = map[int]int{10: 2, 13: 2, 19: 4}
	nodes := cfg.Mesh.Nodes()
	apps := make([]trace.Profile, nodes)
	hot := []int{2, 5, 11, 20, 26, 29}
	for _, tile := range hot {
		apps[tile] = trace.Profile{Name: "bursty"}
	}
	srcs := func() []trace.AppSource {
		out := make([]trace.AppSource, nodes)
		for i, tile := range hot {
			out[tile] = &burstySource{
				burst:      200,
				gap:        8_000,
				storeEvery: 5,
				hotLeft:    200,
				addr:       uint64(i+1) << 30,
				stride:     64 * 512,
			}
		}
		return out
	}
	return cfg, apps, srcs
}

// burstyEqualityGate runs a short bursty window under the dense reference,
// the event stepper and the 2-shard parallel stepper and dies unless all
// three produce byte-identical results — the harness-level determinism gate
// for router timed wakes, run on every `make bench-smoke` pass.
func burstyEqualityGate(quick bool) {
	cfg, apps, srcs := burstyWorkload()
	cfg.Run.WarmupCycles, cfg.Run.MeasureCycles = 5_000, 15_000
	if quick {
		cfg.Run.WarmupCycles, cfg.Run.MeasureCycles = 2_000, 6_000
	}
	runJSON := func(dense bool, shards int) []byte {
		c := cfg
		c.Run.Shards = shards
		s, err := sim.NewFromSources(c, srcs(), apps)
		if err != nil {
			log.Fatal(err)
		}
		s.SetDenseStepping(dense)
		var buf bytes.Buffer
		if err := s.Run().WriteJSON(&buf); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}
	log.Printf("bursty equality gate: dense vs event vs sharded...")
	ref := runJSON(true, 1)
	for _, mode := range []struct {
		name   string
		shards int
	}{{"event", 1}, {"sharded_2", 2}} {
		if got := runJSON(false, mode.shards); !bytes.Equal(ref, got) {
			log.Fatalf("bursty %s run does not reproduce the dense result:\n--- dense ---\n%s\n--- %s ---\n%s",
				mode.name, ref, mode.name, got)
		}
	}
}

// drainWorkload builds the write-drain comparison point: one core issuing
// long all-store streams with LSQSize 1, so exactly one read-for-ownership
// is outstanding at a time while evicted dirty lines pile writebacks into
// the memory controllers. Between completions the controllers have nothing
// but internal deadlines (drain issues, refreshes, idleness samples), so the
// event stepper executes orders of magnitude fewer controller Ticks than the
// dense per-cycle sweep while producing byte-identical results.
func drainWorkload() (config.Config, []trace.Profile, func() []trace.AppSource) {
	cfg := config.Baseline32()
	cfg.CPU.LSQSize = 1
	nodes := cfg.Mesh.Nodes()
	apps := make([]trace.Profile, nodes)
	apps[2] = trace.Profile{Name: "store_burst"}
	srcs := func() []trace.AppSource {
		out := make([]trace.AppSource, nodes)
		out[2] = &burstySource{
			burst:      2_000,
			gap:        500,
			storeEvery: 1,
			hotLeft:    2_000,
			addr:       1 << 30,
			stride:     64 * 512,
		}
		return out
	}
	return cfg, apps, srcs
}

// drainCompare runs one scenario under the dense reference and the event
// stepper, dies unless the results are byte-identical, and returns the DRAM
// Tick counters of both sides.
func drainCompare(name string, cfg config.Config, apps []trace.Profile, srcs func() []trace.AppSource) drainResult {
	run := func(dense bool) ([]byte, *sim.Simulator) {
		s, err := sim.NewFromSources(cfg, srcs(), apps)
		if err != nil {
			log.Fatal(err)
		}
		s.SetDenseStepping(dense)
		var buf bytes.Buffer
		if err := s.Run().WriteJSON(&buf); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes(), s
	}
	refJSON, refSim := run(true)
	gotJSON, evSim := run(false)
	if !bytes.Equal(refJSON, gotJSON) {
		log.Fatalf("%s event run does not reproduce the dense result:\n--- dense ---\n%s\n--- event ---\n%s", name, refJSON, gotJSON)
	}
	denseTicks, _ := refSim.DebugDRAMTicks()
	eventTicks, ff := evSim.DebugDRAMTicks()
	if eventTicks >= denseTicks {
		log.Fatalf("%s: event stepper executed %d DRAM ticks, dense reference %d — nothing was elided", name, eventTicks, denseTicks)
	}
	return drainResult{
		Name:          name,
		Cycles:        cfg.Run.WarmupCycles + cfg.Run.MeasureCycles,
		DenseTicks:    denseTicks,
		EventTicks:    eventTicks,
		FastForwarded: ff,
		TickedCycles:  evSim.DebugTickedCycles(),
	}
}

// drainTickGate compares DRAM controller Tick executions between the dense
// reference and the event stepper on two scenarios, gating each
// byte-identical first:
//
//   - store_drain_1x32: the write-drain workload above. The event stepper
//     must execute strictly fewer controller Ticks than the dense per-cycle
//     sweep (exact NextWake deadlines elide the quiet stretches between
//     completions). The closed-form fast-forward cannot engage here — a
//     running core never sleeps through its compute phases, and its miss
//     round trips keep the mesh lit the rest of the time, so no globally
//     quiescent window ever opens.
//
//   - idle_mesh_32: the same mesh with no applications at all. Every tile
//     and controller is quiescent from cycle zero, but each controller still
//     samples idleness every ~100 cycles; without the drain fast-forward
//     those samples would cap every jump and force an executed cycle per
//     sample per controller. The gate asserts FastForwarded > 0: the whole
//     run must collapse to a handful of executed cycles with the sampling
//     Ticks replayed in closed form.
func drainTickGate(quick bool) []drainResult {
	warm, measure := int64(5_000), int64(20_000)
	if quick {
		warm, measure = 2_000, 8_000
	}
	log.Printf("dram drain gate: dense vs event tick counts...")

	cfg, apps, srcs := drainWorkload()
	cfg.Run.WarmupCycles, cfg.Run.MeasureCycles = warm, measure
	store := drainCompare("store_drain_1x32", cfg, apps, srcs)

	idleCfg := config.Baseline32()
	idleCfg.Run.WarmupCycles, idleCfg.Run.MeasureCycles = warm, measure
	nodes := idleCfg.Mesh.Nodes()
	idleApps := make([]trace.Profile, nodes)
	idleSrcs := func() []trace.AppSource { return make([]trace.AppSource, nodes) }
	idle := drainCompare("idle_mesh_32", idleCfg, idleApps, idleSrcs)
	if idle.FastForwarded == 0 {
		log.Fatalf("idle mesh fast-forwarded no DRAM ticks (dense %d, event %d) — the write-drain/idle replay never engaged",
			idle.DenseTicks, idle.EventTicks)
	}

	return []drainResult{store, idle}
}

// stepperWarm returns the per-measurement warmup window.
func stepperWarm(quick bool) int64 {
	if quick {
		return 5_000
	}
	return 20_000
}

// measureStepper measures ns per simulated cycle under both steppers for one
// comparison workload.
func measureStepper(wl stepperWorkload, warm int64) stepperResult {
	res := stepperResult{Name: wl.name}
	for _, dense := range []bool{true, false} {
		mode := "event"
		if dense {
			mode = "dense"
		}
		log.Printf("running stepper %s (%s)...", wl.name, mode)
		r := testing.Benchmark(func(b *testing.B) {
			s, err := wl.newSim()
			if err != nil {
				b.Fatal(err)
			}
			s.SetDenseStepping(dense)
			s.Step(warm)
			b.ResetTimer()
			s.Step(int64(b.N))
		})
		if r.N == 0 {
			log.Fatalf("stepper %s (%s) produced no iterations", wl.name, mode)
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		if dense {
			res.DenseNs, res.DenseOps = ns, r.N
		} else {
			res.EventNs, res.EventOps = ns, r.N
		}
	}
	res.Speedup = res.DenseNs / res.EventNs
	return res
}

// stepperBenches measures every comparison workload once.
func stepperBenches(quick bool) []stepperResult {
	warm := stepperWarm(quick)
	var out []stepperResult
	for _, wl := range stepperWorkloads() {
		out = append(out, measureStepper(wl, warm))
	}
	return out
}

// estimateCrossChecks runs the analytic model's divergence oracle on every
// profile-driven stepper scenario: simulate, predict the same configuration
// in closed form, and record the per-leg relative error. The synthetic
// bursty scenario is skipped — its hand-built sources have no workload
// profile the model could read. Scenarios beyond the calibrated band are
// logged (drift worth investigating, and visible in the JSON diff); a
// scenario beyond the far looser oracle band, or with a structural dead-tile
// flag, kills the harness — at that distance the divergence means breakage,
// not calibration drift.
func estimateCrossChecks(quick bool) []estimateResult {
	warm, measure := int64(50_000), int64(150_000)
	if quick {
		warm, measure = 20_000, 60_000
	}
	var out []estimateResult
	for _, wl := range stepperWorkloads() {
		if wl.srcs != nil {
			continue
		}
		cfg := wl.cfg
		cfg.Run.WarmupCycles, cfg.Run.MeasureCycles = warm, measure
		log.Printf("estimate cross-check %s...", wl.name)
		s, err := sim.New(cfg, wl.apps)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := analytic.CrossCheck(cfg, wl.apps, s.Run().Summary(), analytic.CalibratedBand)
		if err != nil {
			log.Fatal(err)
		}
		res := estimateResult{
			Name:        wl.name,
			TotalRelErr: rep.Total.RelErr,
			NetRelErr:   rep.Net.RelErr,
			MaxLegErr:   rep.MaxLegErr,
			Band:        rep.Band,
			InBand:      rep.InBand(),
		}
		for i, l := range rep.Legs {
			res.LegRelErr[i] = l.RelErr
		}
		for _, f := range rep.Flags {
			if f.Kind == "dead-tile" {
				log.Fatalf("estimate %s: %s %s: %s", wl.name, f.Tile, f.App, f.Detail)
			}
		}
		if rep.MaxLegErr > analytic.OracleBand {
			log.Fatalf("estimate %s: max leg error %.0f%% beyond the %.0f%% oracle band — model or simulator is broken, not drifting",
				wl.name, 100*rep.MaxLegErr, 100*analytic.OracleBand)
		}
		if !res.InBand {
			log.Printf("estimate %s: outside the %.0f%% calibrated band (recorded, not fatal)",
				wl.name, 100*rep.Band)
			for _, f := range rep.Flags {
				log.Printf("estimate %s: %s: %s", wl.name, f.Kind, f.Detail)
			}
		}
		out = append(out, res)
	}
	return out
}

func parseShardCounts(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || k < 1 {
			return nil, fmt.Errorf("bad -shards value %q", part)
		}
		counts = append(counts, k)
	}
	return counts, nil
}

// saturatedWorkload returns the heaviest comparison point (all 32 tiles on
// the most memory-intensive workload) for the sharded sweep.
func saturatedWorkload() (config.Config, []trace.Profile) {
	w7, err := workload.Get(7)
	if err != nil {
		log.Fatal(err)
	}
	apps, err := w7.Profiles()
	if err != nil {
		log.Fatal(err)
	}
	return config.Baseline32(), apps
}

// shardEqualityGate runs a short measured window sequentially and with each
// sharded worker count and dies unless every sharded run reproduces the
// sequential result byte for byte. This is the harness-level determinism
// gate (make bench-smoke runs it on every CI pass); the full three-way
// oracle lives in internal/sim's TestEventDenseEquivalence.
func shardEqualityGate(counts []int, quick, noSteal bool) {
	cfg, apps := saturatedWorkload()
	cfg.Run.WarmupCycles, cfg.Run.MeasureCycles = 5_000, 15_000
	if quick {
		cfg.Run.WarmupCycles, cfg.Run.MeasureCycles = 2_000, 6_000
	}
	runJSON := func(k int) []byte {
		c := cfg
		c.Run.Shards = k
		c.Run.NoSteal = noSteal
		s, err := sim.New(c, apps)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Run().WriteJSON(&buf); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}
	ref := runJSON(1)
	for _, k := range counts {
		if k == 1 {
			continue
		}
		log.Printf("shard equality gate: %d shards vs sequential...", k)
		if got := runJSON(k); !bytes.Equal(ref, got) {
			log.Fatalf("sharded run (%d shards) does not reproduce the sequential result:\n--- sequential ---\n%s\n--- %d shards ---\n%s", k, ref, k, got)
		}
	}
}

// shardBenches measures ns per simulated cycle of the saturated workload
// under the event stepper at each worker count. Validity is per-host: a
// ratio is real only when the host has at least as many cores as workers.
func shardBenches(counts []int, quick, noSteal bool) []shardResult {
	cfg, apps := saturatedWorkload()
	warm := int64(20_000)
	if quick {
		warm = 5_000
	}
	cores := runtime.NumCPU()
	var out []shardResult
	for _, k := range counts {
		c := cfg
		c.Run.Shards = k
		c.Run.NoSteal = noSteal
		log.Printf("running sharded stepper saturated_w7_32 (%d workers)...", k)
		r := testing.Benchmark(func(b *testing.B) {
			s, err := sim.New(c, apps)
			if err != nil {
				b.Fatal(err)
			}
			s.Step(warm)
			b.ResetTimer()
			s.Step(int64(b.N))
		})
		if r.N == 0 {
			log.Fatalf("sharded stepper (%d workers) produced no iterations", k)
		}
		res := shardResult{
			Name:    "saturated_w7_32",
			Shards:  k,
			Workers: k,
			NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
			Ops:     r.N,
			Cores:   cores,
		}
		if len(out) > 0 && out[0].Workers == 1 {
			res.Speedup = out[0].NsPerOp / res.NsPerOp
		}
		switch {
		case k == 1:
			res.Note = "single worker: sequential reference point"
		case cores >= k:
			res.Valid = true
		default:
			res.Note = fmt.Sprintf("NumCPU=%d < %d workers: time-sliced, ratio does not measure parallelism", cores, k)
		}
		out = append(out, res)
	}
	return out
}

// scalingWorkload is one (workload shape, mesh size) point of the
// shard_scaling campaign.
type scalingWorkload struct {
	name string
	mesh string
	cfg  config.Config
	apps []trace.Profile
	srcs func() []trace.AppSource
}

// scalingMesh widens the 32-tile baseline machine to w x h tiles, keeping
// every cache/DRAM/CPU parameter; the memory controllers move to the new
// mesh's corner tiles automatically.
func scalingMesh(w, h int) config.Config {
	cfg := config.Baseline32()
	cfg.Mesh.Width, cfg.Mesh.Height = w, h
	return cfg
}

// scalingWorkloads builds the campaign's workload matrix: three load shapes
// (balanced — uniform activity, so the static cost model is already right;
// skewed — every access aimed at memory controller 0's corner, so naive
// rectangular splits starve three quadrants; bursty — alternating hot/idle
// phases that stress repartitioning) on 8x8 and 16x16 meshes.
func scalingWorkloads() []scalingWorkload {
	var out []scalingWorkload
	for _, m := range []struct {
		name string
		w, h int
	}{{"8x8", 8, 8}, {"16x16", 16, 16}} {
		cfg := scalingMesh(m.w, m.h)
		nodes := cfg.Mesh.Nodes()

		// balanced: the same memory-bound trace on every other tile.
		balApps := make([]trace.Profile, nodes)
		p := trace.MustLookup("mcf")
		for i := 0; i < nodes; i += 2 {
			balApps[i] = p
		}
		out = append(out, scalingWorkload{name: "balanced", mesh: m.name, cfg: cfg, apps: balApps})

		// skewed: a quarter of the tiles issue continuous accesses whose
		// stride (64 lines x 512) keeps every request on DRAM controller 0
		// and L2 bank 0 — both at tile 0's corner of the mesh.
		skApps := make([]trace.Profile, nodes)
		var skTiles []int
		for i := 0; i < nodes; i += 4 {
			skApps[i] = trace.Profile{Name: "hotspot"}
			skTiles = append(skTiles, i)
		}
		skSrcs := func() []trace.AppSource {
			srcs := make([]trace.AppSource, nodes)
			for j, tile := range skTiles {
				srcs[tile] = &burstySource{
					burst:      400,
					gap:        100,
					storeEvery: 5,
					hotLeft:    400,
					addr:       uint64(j+1) << 30,
					stride:     64 * 512,
				}
			}
			return srcs
		}
		out = append(out, scalingWorkload{name: "skewed", mesh: m.name, cfg: cfg, apps: skApps, srcs: skSrcs})

		// bursty: hot/idle phase alternation on scattered tiles.
		buApps := make([]trace.Profile, nodes)
		var buTiles []int
		for i := 3; i < nodes; i += 7 {
			buApps[i] = trace.Profile{Name: "bursty"}
			buTiles = append(buTiles, i)
		}
		buSrcs := func() []trace.AppSource {
			srcs := make([]trace.AppSource, nodes)
			for j, tile := range buTiles {
				srcs[tile] = &burstySource{
					burst:      200,
					gap:        8_000,
					storeEvery: 5,
					hotLeft:    200,
					addr:       uint64(j+1) << 28,
					stride:     64,
				}
			}
			return srcs
		}
		out = append(out, scalingWorkload{name: "bursty", mesh: m.name, cfg: cfg, apps: buApps, srcs: buSrcs})
	}
	return out
}

// scalingNew builds a simulator for one campaign workload.
func scalingNew(wl scalingWorkload, cfg config.Config) (*sim.Simulator, error) {
	if wl.srcs != nil {
		return sim.NewFromSources(cfg, wl.srcs(), wl.apps)
	}
	return sim.New(cfg, wl.apps)
}

// scalingEqualityGate pins the campaign's determinism claim at the harness
// level: on the skewed 8x8 workload (the shape most sensitive to partition
// placement and stealing order) the sharded stepper must reproduce the
// sequential event run byte for byte at 2, 4 and 8 workers, with stealing
// both on and off. Quick mode (the make ci shard-scaling-smoke gate) trims
// to 2 workers stealing on plus 4 workers stealing off.
func scalingEqualityGate(quick bool) {
	var wl scalingWorkload
	for _, w := range scalingWorkloads() {
		if w.name == "skewed" && w.mesh == "8x8" {
			wl = w
		}
	}
	cfg := wl.cfg
	cfg.Run.WarmupCycles, cfg.Run.MeasureCycles = 2_000, 8_000
	if quick {
		cfg.Run.WarmupCycles, cfg.Run.MeasureCycles = 1_000, 3_000
	}
	runJSON := func(workers int, noSteal bool) []byte {
		c := cfg
		c.Run.Shards = workers
		c.Run.NoSteal = noSteal
		s, err := scalingNew(wl, c)
		if err != nil {
			log.Fatal(err)
		}
		var buf bytes.Buffer
		if err := s.Run().WriteJSON(&buf); err != nil {
			log.Fatal(err)
		}
		return buf.Bytes()
	}
	log.Printf("shard-scaling equality gate: skewed 8x8, sequential vs sharded...")
	ref := runJSON(1, false)
	points := []struct {
		workers int
		noSteal bool
	}{{2, false}, {4, true}}
	if !quick {
		points = append(points, struct {
			workers int
			noSteal bool
		}{4, false}, struct {
			workers int
			noSteal bool
		}{8, false}, struct {
			workers int
			noSteal bool
		}{8, true}, struct {
			workers int
			noSteal bool
		}{2, true})
	}
	for _, pt := range points {
		if got := runJSON(pt.workers, pt.noSteal); !bytes.Equal(ref, got) {
			log.Fatalf("skewed 8x8 sharded run (workers=%d steal=%v) does not reproduce the sequential result:\n--- sequential ---\n%s\n--- sharded ---\n%s",
				pt.workers, !pt.noSteal, ref, got)
		}
	}
}

// scalingBenches runs the shard_scaling campaign: ns per simulated cycle at
// 1/2/4/8 workers for every workload x mesh point, each worker count's
// speedup taken against the same point's sequential run. Ratios are marked
// valid only when the host machine has at least as many cores as workers —
// on a smaller host the numbers are still recorded (barrier and stealing
// overhead are visible in them) but flagged so nobody reads a time-sliced
// ratio as a parallel speedup.
func scalingBenches(quick, noSteal bool) []scalingResult {
	warm := int64(5_000)
	if quick {
		warm = 1_000
	}
	cores := runtime.NumCPU()
	var out []scalingResult
	for _, wl := range scalingWorkloads() {
		var seqNs float64
		for _, workers := range []int{1, 2, 4, 8} {
			c := wl.cfg
			c.Run.Shards = workers
			c.Run.NoSteal = noSteal
			log.Printf("shard_scaling %s_%s (%d workers, steal=%v)...", wl.name, wl.mesh, workers, !noSteal)
			r := testing.Benchmark(func(b *testing.B) {
				s, err := scalingNew(wl, c)
				if err != nil {
					b.Fatal(err)
				}
				s.Step(warm)
				b.ResetTimer()
				s.Step(int64(b.N))
			})
			if r.N == 0 {
				log.Fatalf("shard_scaling %s_%s (%d workers) produced no iterations", wl.name, wl.mesh, workers)
			}
			res := scalingResult{
				Name:    wl.name + "_" + wl.mesh,
				Mesh:    wl.mesh,
				Workers: workers,
				Steal:   !noSteal && workers > 1,
				NsPerOp: float64(r.T.Nanoseconds()) / float64(r.N),
				Ops:     r.N,
				Cores:   cores,
			}
			switch {
			case workers == 1:
				seqNs = res.NsPerOp
				res.Note = "sequential reference point"
			case cores >= workers:
				res.Speedup = seqNs / res.NsPerOp
				res.Valid = true
			default:
				res.Speedup = seqNs / res.NsPerOp
				res.Note = fmt.Sprintf("NumCPU=%d < %d workers: time-sliced, ratio does not measure parallelism", cores, workers)
			}
			out = append(out, res)
		}
	}
	return out
}

// forkVariants returns the eight policy configurations of the amortization
// point: every one differs from the others only in dimensions the snapshot
// format tolerates (config.SnapshotKey), so all eight fork from one warmed
// checkpoint.
func forkVariants(base config.Config) []config.Config {
	relaxed := base.WithSchemes(true, false)
	relaxed.S1.ThresholdFactor = 1.0
	appNet := base
	appNet.AppAwareNet = true
	fcfs := base
	fcfs.DRAM.Sched = config.FCFS
	appMem := base
	appMem.DRAM.Sched = config.AppAwareMem
	return []config.Config{
		base,
		base.WithSchemes(true, false),
		base.WithSchemes(false, true),
		base.WithSchemes(true, true),
		relaxed,
		appNet,
		fcfs,
		appMem,
	}
}

// forkAmortization times an 8-configuration policy sweep on the 16-core
// system twice — cold, then forked from one shared warmup checkpoint — and
// reports the wall-clock reduction.
func forkAmortization(quick bool) *forkResult {
	base := config.Baseline16()
	base.Run.WarmupCycles, base.Run.MeasureCycles = 30_000, 5_000
	if quick {
		base.Run.WarmupCycles, base.Run.MeasureCycles = 10_000, 2_000
	}
	base.S1.UpdatePeriod = base.Run.MeasureCycles / 2
	w, err := workload.Get(7)
	if err != nil {
		log.Fatal(err)
	}
	if w, err = w.Halve(); err != nil {
		log.Fatal(err)
	}
	apps, err := w.Profiles()
	if err != nil {
		log.Fatal(err)
	}
	padded := make([]trace.Profile, base.Mesh.Nodes())
	copy(padded, apps)
	variants := forkVariants(base)

	log.Printf("running fork amortization (%d configs, cold)...", len(variants))
	coldStart := time.Now()
	for _, cfg := range variants {
		s, err := sim.New(cfg, padded)
		if err != nil {
			log.Fatal(err)
		}
		s.Run()
	}
	cold := time.Since(coldStart).Seconds()

	log.Printf("running fork amortization (%d configs, forked)...", len(variants))
	var cache forkrun.Cache
	forkStart := time.Now()
	for _, cfg := range variants {
		if _, err := cache.Run(cfg, padded); err != nil {
			log.Fatal(err)
		}
	}
	forked := time.Since(forkStart).Seconds()
	if n := cache.Snapshots(); n != 1 {
		log.Fatalf("fork amortization executed %d warmups, want 1 shared", n)
	}

	wc, mc := base.Run.WarmupCycles, base.Run.MeasureCycles
	n := int64(len(variants))
	return &forkResult{
		Name:          "policy_sweep_w7_half_16",
		Configs:       len(variants),
		WarmupCycles:  wc,
		MeasureCycles: mc,
		ColdSeconds:   cold,
		ForkSeconds:   forked,
		Speedup:       cold / forked,
		IdealSpeedup:  float64(n*(wc+mc)) / float64(wc+n*mc),
	}
}

func runSweep(rep *report, quick bool) {
	opts := exp.Options{
		WarmupCycles:        20_000,
		MeasureCycles:       60_000,
		Seed:                1,
		ThresholdPushPeriod: 5_000,
	}
	if quick {
		opts.WarmupCycles, opts.MeasureCycles = 5_000, 15_000
		opts.ThresholdPushPeriod = 2_000
	}
	var wls []workload.Workload
	for _, id := range []int{1, 7, 13} {
		w, err := workload.Get(id)
		if err != nil {
			log.Fatal(err)
		}
		wls = append(wls, w)
	}
	var rows [2][]exp.SpeedupRow
	workers := 1
	for i, par := range []int{1, 0} { // 0 = GOMAXPROCS
		o := opts
		o.Parallelism = par
		r := exp.NewRunner(o)
		name := "fig11_sweep_sequential"
		if par != 1 {
			name = "fig11_sweep_parallel"
			workers = r.Parallelism()
		}
		log.Printf("running %s (workers=%d)...", name, r.Parallelism())
		start := time.Now()
		rr, err := r.Speedups(config.Baseline32(), wls)
		if err != nil {
			log.Fatal(err)
		}
		rows[i] = rr
		rep.Sweep = append(rep.Sweep, sweepResult{
			Name:        name,
			Parallelism: r.Parallelism(),
			Seconds:     time.Since(start).Seconds(),
		})
	}
	for i := range rows[0] { // parallel must reproduce sequential exactly
		if rows[0][i].NormS1S2 != rows[1][i].NormS1S2 || rows[0][i].NormS1 != rows[1][i].NormS1 {
			log.Fatalf("sequential/parallel mismatch on %s: %v vs %v",
				rows[0][i].Workload.Name(), rows[0][i], rows[1][i])
		}
	}
	if workers > 1 {
		rep.SweepSpeedup = rep.Sweep[0].Seconds / rep.Sweep[1].Seconds
		rep.SweepSpeedupValid = true
	} else {
		rep.SweepSpeedupNote = "single worker (1 CPU): wall-clock ratio does not measure parallelism"
	}
}

// checkAgainst gates the fresh report on a stored one: any micro benchmark
// allocating more per op than before fails, as does the 32-core cycle loop
// running more than 20% slower. ns/op on shared CI hosts is noisy, hence the
// slack; allocs per op are deterministic, hence none.
func checkAgainst(path string, fresh report) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var stored report
	if err := json.Unmarshal(data, &stored); err != nil {
		return err
	}
	prev := make(map[string]microResult, len(stored.Micro))
	for _, m := range stored.Micro {
		prev[m.Name] = m
	}
	for _, m := range fresh.Micro {
		p, ok := prev[m.Name]
		if !ok {
			continue
		}
		if m.AllocsPerOp > p.AllocsPerOp {
			return fmt.Errorf("%s allocates %d/op, was %d/op in %s", m.Name, m.AllocsPerOp, p.AllocsPerOp, path)
		}
		if m.Name == "sim_cycle_32core" && m.NsPerOp > 1.2*p.NsPerOp {
			return fmt.Errorf("%s at %.0f ns/op, >20%% over %.0f ns/op in %s", m.Name, m.NsPerOp, p.NsPerOp, path)
		}
	}
	return nil
}

// simCycleBench returns a benchmark body where one op is one simulated cycle
// of the fully loaded system (mirrors BenchmarkSimCycle32Core).
func simCycleBench(cfg config.Config, wid int, halve bool) func(b *testing.B) {
	w, err := workload.Get(wid)
	if err != nil {
		log.Fatal(err)
	}
	if halve {
		if w, err = w.Halve(); err != nil {
			log.Fatal(err)
		}
	}
	apps, err := w.Profiles()
	if err != nil {
		log.Fatal(err)
	}
	return func(b *testing.B) {
		s, err := sim.New(cfg, apps)
		if err != nil {
			b.Fatal(err)
		}
		s.Step(20_000)
		b.ReportAllocs()
		b.ResetTimer()
		s.Step(int64(b.N))
	}
}

// networkTickBench returns a benchmark body where one op is one tick of a
// loaded 4x8 mesh (mirrors internal/noc's BenchmarkNetworkTick).
func networkTickBench() func(b *testing.B) {
	return func(b *testing.B) {
		cfg := config.Baseline32()
		n, err := noc.New(cfg.Mesh, cfg.NoC)
		if err != nil {
			b.Fatal(err)
		}
		var pool noc.PacketPool
		for i := 0; i < n.Nodes(); i++ {
			n.SetSink(i, func(p *noc.Packet, at int64) { pool.Put(p) })
		}
		nodes := n.Nodes()
		inject := func(now int64) {
			for src := 0; src < nodes; src++ {
				if (now+int64(src))%16 != 0 {
					continue
				}
				dst := nodes - 1 - src
				if dst == src {
					dst = (src + 1) % nodes
				}
				p := pool.Get()
				p.Src, p.Dst, p.NumFlits = src, dst, 1
				p.VNet, p.Priority = noc.VNetRequest, noc.Normal
				if src%4 == 0 {
					p.NumFlits = 5
					p.VNet = noc.VNetResponse
				}
				if err := n.Inject(p, now); err != nil {
					b.Fatal(err)
				}
			}
		}
		var now int64
		for ; now < 4_000; now++ {
			inject(now)
			n.Tick(now)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inject(now)
			n.Tick(now)
			now++
		}
	}
}
