// Command bench is the perf-regression harness. It measures, in-process via
// testing.Benchmark:
//
//   - the simulator's hot-path micro-benchmarks (ns per simulated cycle and
//     allocs per cycle for the 32- and 16-core systems, and per network tick
//     of a loaded mesh), and
//   - the wall time of a Figure-11 style sweep (three workloads, three
//     systems each, plus alone runs) executed sequentially and on the
//     runner's parallel worker pool,
//
// and writes everything as JSON for before/after comparison across commits.
//
// Usage:
//
//	bench                     # full harness -> BENCH_1.json
//	bench -out -              # JSON to stdout
//	bench -quick              # smaller op counts (CI smoke)
//	bench -skip-sweep         # micro-benchmarks only
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"
	"runtime"
	"testing"
	"time"

	"nocmem/internal/config"
	"nocmem/internal/exp"
	"nocmem/internal/noc"
	"nocmem/internal/sim"
	"nocmem/internal/workload"
)

type microResult struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type sweepResult struct {
	Name        string  `json:"name"`
	Parallelism int     `json:"parallelism"`
	Seconds     float64 `json:"seconds"`
}

type report struct {
	GoVersion  string        `json:"go_version"`
	NumCPU     int           `json:"num_cpu"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Baseline   []microResult `json:"baseline"`
	Micro      []microResult `json:"micro"`
	Sweep      []sweepResult `json:"sweep,omitempty"`
	// SweepSpeedup is sequential seconds / parallel seconds. On a
	// single-CPU host this hovers around 1.0 by construction.
	SweepSpeedup float64 `json:"sweep_speedup,omitempty"`
}

// baseline is the fixed "before" reference: the same micro-benchmarks
// measured at the growth seed (commit ba88191, before the allocation diet
// and free lists), via `go test -bench SimCycle -benchmem -benchtime
// 100000x` on a single-CPU Xeon @ 2.70GHz container.
var baseline = []microResult{
	{Name: "sim_cycle_32core", Ops: 100_000, NsPerOp: 45375, BytesPerOp: 4520, AllocsPerOp: 105},
	{Name: "sim_cycle_16core", Ops: 100_000, NsPerOp: 36336, BytesPerOp: 2393, AllocsPerOp: 56},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bench: ")
	var (
		out       = flag.String("out", "BENCH_1.json", "output file ('-' = stdout)")
		quick     = flag.Bool("quick", false, "smaller op counts (CI smoke run)")
		skipSweep = flag.Bool("skip-sweep", false, "micro-benchmarks only")
	)
	flag.Parse()

	rep := report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Baseline:   baseline,
	}

	for _, m := range []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"sim_cycle_32core", simCycleBench(config.Baseline32(), 7, false)},
		{"sim_cycle_16core", simCycleBench(config.Baseline16(), 7, true)},
		{"network_tick_4x8", networkTickBench()},
	} {
		log.Printf("running %s...", m.name)
		r := testing.Benchmark(m.fn)
		if r.N == 0 {
			log.Fatalf("%s produced no iterations", m.name)
		}
		rep.Micro = append(rep.Micro, microResult{
			Name:        m.name,
			Ops:         r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	if !*skipSweep {
		opts := exp.Options{
			WarmupCycles:        20_000,
			MeasureCycles:       60_000,
			Seed:                1,
			ThresholdPushPeriod: 5_000,
		}
		if *quick {
			opts.WarmupCycles, opts.MeasureCycles = 5_000, 15_000
			opts.ThresholdPushPeriod = 2_000
		}
		var wls []workload.Workload
		for _, id := range []int{1, 7, 13} {
			w, err := workload.Get(id)
			if err != nil {
				log.Fatal(err)
			}
			wls = append(wls, w)
		}
		var rows [2][]exp.SpeedupRow
		for i, par := range []int{1, 0} { // 0 = GOMAXPROCS
			o := opts
			o.Parallelism = par
			r := exp.NewRunner(o)
			name := "fig11_sweep_sequential"
			if par != 1 {
				name = "fig11_sweep_parallel"
			}
			log.Printf("running %s (workers=%d)...", name, r.Parallelism())
			start := time.Now()
			rr, err := r.Speedups(config.Baseline32(), wls)
			if err != nil {
				log.Fatal(err)
			}
			rows[i] = rr
			rep.Sweep = append(rep.Sweep, sweepResult{
				Name:        name,
				Parallelism: r.Parallelism(),
				Seconds:     time.Since(start).Seconds(),
			})
		}
		for i := range rows[0] { // parallel must reproduce sequential exactly
			if rows[0][i].NormS1S2 != rows[1][i].NormS1S2 || rows[0][i].NormS1 != rows[1][i].NormS1 {
				log.Fatalf("sequential/parallel mismatch on %s: %v vs %v",
					rows[0][i].Workload.Name(), rows[0][i], rows[1][i])
			}
		}
		rep.SweepSpeedup = rep.Sweep[0].Seconds / rep.Sweep[1].Seconds
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
	if *out != "-" {
		log.Printf("wrote %s", *out)
	}
}

// simCycleBench returns a benchmark body where one op is one simulated cycle
// of the fully loaded system (mirrors BenchmarkSimCycle32Core).
func simCycleBench(cfg config.Config, wid int, halve bool) func(b *testing.B) {
	w, err := workload.Get(wid)
	if err != nil {
		log.Fatal(err)
	}
	if halve {
		if w, err = w.Halve(); err != nil {
			log.Fatal(err)
		}
	}
	apps, err := w.Profiles()
	if err != nil {
		log.Fatal(err)
	}
	return func(b *testing.B) {
		s, err := sim.New(cfg, apps)
		if err != nil {
			b.Fatal(err)
		}
		s.Step(20_000)
		b.ReportAllocs()
		b.ResetTimer()
		s.Step(int64(b.N))
	}
}

// networkTickBench returns a benchmark body where one op is one tick of a
// loaded 4x8 mesh (mirrors internal/noc's BenchmarkNetworkTick).
func networkTickBench() func(b *testing.B) {
	return func(b *testing.B) {
		cfg := config.Baseline32()
		n, err := noc.New(cfg.Mesh, cfg.NoC)
		if err != nil {
			b.Fatal(err)
		}
		var pool noc.PacketPool
		for i := 0; i < n.Nodes(); i++ {
			n.SetSink(i, func(p *noc.Packet, at int64) { pool.Put(p) })
		}
		nodes := n.Nodes()
		inject := func(now int64) {
			for src := 0; src < nodes; src++ {
				if (now+int64(src))%16 != 0 {
					continue
				}
				dst := nodes - 1 - src
				if dst == src {
					dst = (src + 1) % nodes
				}
				p := pool.Get()
				p.Src, p.Dst, p.NumFlits = src, dst, 1
				p.VNet, p.Priority = noc.VNetRequest, noc.Normal
				if src%4 == 0 {
					p.NumFlits = 5
					p.VNet = noc.VNetResponse
				}
				if err := n.Inject(p, now); err != nil {
					b.Fatal(err)
				}
			}
		}
		var now int64
		for ; now < 4_000; now++ {
			inject(now)
			n.Tick(now)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inject(now)
			n.Tick(now)
			now++
		}
	}
}
