package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"nocmem/internal/config"
	"nocmem/internal/simd"
	"nocmem/internal/simdclient"
)

// runSelftest is the `make simd-smoke` gate: build and start a real daemon
// on a temp store and a real TCP port, then drive it through the client
// library — one simulated run, one identical request that must be a store
// hit served in under 50ms without touching the simulator, and one
// closed-form estimate. Fails loudly on any miscount.
func runSelftest() error {
	dir, err := os.MkdirTemp("", "nocsimd-selftest-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	srv, err := simd.New(simd.Options{StoreDir: dir, ShareWarmup: true, Logf: log.Printf})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cl := simdclient.New("http://" + ln.Addr().String())
	defer cl.Close()
	if err := cl.Health(ctx); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	cfg := config.Baseline16()
	cfg.Run.WarmupCycles = 4_000
	cfg.Run.MeasureCycles = 8_000
	cfg.S1.UpdatePeriod = 2_000
	point := simd.RunSpec{Config: cfg, Apps: []string{"mcf", "lbm", "milc", "mcf"}}

	// 1. Fresh run: simulated.
	js, err := cl.Run(ctx, simd.RunRequest{Points: []simd.RunSpec{point}})
	if err != nil {
		return err
	}
	if e := js.Err(); e != "" {
		return fmt.Errorf("run failed: %s", e)
	}
	if got := js.Results[0].Source; got != simd.SourceSim {
		return fmt.Errorf("first request source %q, want %q", got, simd.SourceSim)
	}
	first := js.Results[0].Summary

	// 2. Identical request: a store hit, served fast and without another
	// simulation. Take the best of three polls so a GC pause or scheduler
	// hiccup cannot flake the gate.
	best := time.Duration(1 << 62)
	var hit *simd.JobStatus
	for i := 0; i < 3; i++ {
		t0 := time.Now()
		hit, err = cl.Run(ctx, simd.RunRequest{Points: []simd.RunSpec{point}})
		if err != nil {
			return err
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	if got := hit.Results[0].Source; got != simd.SourceStore {
		return fmt.Errorf("repeat request source %q, want %q", got, simd.SourceStore)
	}
	if !bytes.Equal(first, hit.Results[0].Summary) {
		return fmt.Errorf("store hit returned different bytes than the original run")
	}
	if best >= 50*time.Millisecond {
		return fmt.Errorf("cache hit took %s, want < 50ms", best)
	}
	st, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	if st.Runner.Executed != 1 {
		return fmt.Errorf("%d simulations executed, want exactly 1 (hits must not re-simulate)", st.Runner.Executed)
	}
	if st.Store.ResultHits < 3 {
		return fmt.Errorf("store served %d hits, want >= 3", st.Store.ResultHits)
	}

	// 3. Estimate: closed-form, no simulation.
	est := point
	est.Estimate = true
	js, err = cl.Run(ctx, simd.RunRequest{Points: []simd.RunSpec{est}})
	if err != nil {
		return err
	}
	if e := js.Err(); e != "" {
		return fmt.Errorf("estimate failed: %s", e)
	}
	if got := js.Results[0].Source; got != simd.SourceEstimate {
		return fmt.Errorf("estimate source %q, want %q", got, simd.SourceEstimate)
	}
	if st2, err := cl.Stats(ctx); err != nil {
		return err
	} else if st2.Runner.Executed != 1 {
		return fmt.Errorf("estimate executed a simulation (%d total)", st2.Runner.Executed)
	}

	dctx, dcancel := context.WithTimeout(ctx, time.Minute)
	defer dcancel()
	if err := srv.Drain(dctx); err != nil {
		return err
	}
	log.Printf("selftest: run simulated once, hit served from store in %s, estimate in closed form", best)
	return nil
}
