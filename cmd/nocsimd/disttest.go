package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"time"

	"nocmem/internal/config"
	"nocmem/internal/exp"
	"nocmem/internal/simd"
	"nocmem/internal/simdclient"
)

// runDistSmoke is the `make dist-smoke` gate: a real coordinator daemon plus
// two real worker *processes* (this binary re-executed with -join), a small
// sweep grid, and a SIGKILL of one worker while it holds unfinished leases.
// The sweep must still complete — the dead worker's leases expire and are
// re-executed by the survivor — and every merged result must be
// byte-identical to a direct single-process execution of the same grid.
func runDistSmoke(jobs int) error {
	dir, err := os.MkdirTemp("", "nocsimd-dist-smoke-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// Short lease TTL: the killed worker's points must come back within the
	// smoke's patience, not a production-grade two minutes.
	srv, err := simd.New(simd.Options{
		StoreDir:    dir,
		ShareWarmup: true,
		Logf:        log.Printf,
		Distributed: true,
		LeaseTTL:    2 * time.Second,
		LeaseBatch:  2,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// Real worker processes: -j 1 and a lease batch of 2 means each worker
	// executes one point while holding a second untouched lease, so a
	// SIGKILL while Outstanding >= 2 is guaranteed to strand at least one
	// lease that only expiry can recover.
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	spawn := func(name string) (*exec.Cmd, error) {
		cmd := exec.Command(exe, "-join", base, "-worker-name", name, "-j", "1", "-lease-batch", "2")
		cmd.Stdout = os.Stderr
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("spawning worker %s: %w", name, err)
		}
		return cmd, nil
	}
	workers := map[string]*exec.Cmd{}
	for _, name := range []string{"smokeA", "smokeB"} {
		cmd, err := spawn(name)
		if err != nil {
			return err
		}
		workers[name] = cmd
		defer func() {
			cmd.Process.Kill()
			cmd.Wait()
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	cl := simdclient.New(base)
	defer cl.Close()

	points := smokeGrid()
	sub, err := cl.Submit(ctx, simd.RunRequest{Points: points})
	if err != nil {
		return err
	}
	log.Printf("submitted %d points as job %s", len(points), sub.ID)

	// Kill whichever worker first holds two unfinished leases.
	victim := ""
	for victim == "" {
		st, err := cl.Stats(ctx)
		if err != nil {
			return err
		}
		if st.Dist != nil {
			for _, w := range st.Dist.Workers {
				if w.Outstanding >= 2 {
					victim = w.ID
					break
				}
			}
			if victim == "" && st.Dist.Pending == 0 && st.Dist.Leased == 0 && st.Runner.RemoteCompletions >= int64(len(points)) {
				return fmt.Errorf("sweep finished before any worker held 2 leases — grid too small to exercise the kill")
			}
		}
		if victim == "" {
			time.Sleep(10 * time.Millisecond)
		}
	}
	name := victim[:strings.IndexByte(victim, '#')]
	cmd := workers[name]
	if cmd == nil {
		return fmt.Errorf("victim %s maps to no spawned worker", victim)
	}
	if err := cmd.Process.Kill(); err != nil {
		return err
	}
	cmd.Wait()
	log.Printf("killed worker %s (SIGKILL) while it held leases", victim)

	js, err := cl.Wait(ctx, sub.ID, func(e simd.Event) { log.Printf("job: %s", e.Msg) })
	if err != nil {
		return err
	}
	if e := js.Err(); e != "" {
		return fmt.Errorf("sweep failed after worker kill: %s", e)
	}
	if js.Status != simd.StatusDone {
		return fmt.Errorf("job status %q, want %q", js.Status, simd.StatusDone)
	}

	st, err := cl.Stats(ctx)
	if err != nil {
		return err
	}
	if st.Runner.LeasesExpired < 1 {
		return fmt.Errorf("no lease expired despite killing a worker holding %d+ leases", 2)
	}
	if st.Dist == nil || st.Dist.Mismatches != 0 {
		return fmt.Errorf("duplicate-completion byte mismatches: %+v", st.Dist)
	}

	// Byte-identity: every merged result must equal a direct single-process
	// execution (same fork mode as the workers).
	direct := exp.NewRunner(exp.Options{Parallelism: jobs, ShareWarmup: true})
	for i, sp := range points {
		rp, err := simd.ResolveSpec(sp)
		if err != nil {
			return err
		}
		want, err := simd.ExecuteSpec(direct, rp)
		if err != nil {
			return err
		}
		got, err := cl.Result(ctx, rp.Key)
		if err != nil {
			return fmt.Errorf("fetching merged result %d (%s): %w", i, rp.Label, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("point %d (%s): merged bytes differ from direct execution (%d vs %d bytes)", i, rp.Label, len(got), len(want))
		}
	}
	log.Printf("all %d merged results byte-identical to direct execution (%d leases expired, %d duplicates absorbed)",
		len(points), st.Runner.LeasesExpired, st.Runner.DuplicateCompletions)
	return nil
}

// smokeGrid is the dist-smoke sweep: six small points over the scheme knobs.
func smokeGrid() []simd.RunSpec {
	cfg := config.Baseline16()
	cfg.Run.WarmupCycles = 4_000
	cfg.Run.MeasureCycles = 8_000
	cfg.S1.UpdatePeriod = 2_000
	apps := []string{"mcf", "lbm", "milc", "mcf"}
	var points []simd.RunSpec
	for _, s := range [][2]bool{{false, false}, {true, false}, {false, true}} {
		points = append(points, simd.RunSpec{Config: cfg.WithSchemes(s[0], s[1]), Apps: apps})
	}
	for _, f := range []float64{0.8, 1.0, 1.2} {
		c := cfg.WithSchemes(true, true)
		c.S1.ThresholdFactor = f
		points = append(points, simd.RunSpec{Config: c, Apps: apps})
	}
	return points
}
