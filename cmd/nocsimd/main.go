// Command nocsimd is the simulation-as-a-service daemon: a long-running
// HTTP/JSON server that accepts run and sweep requests, coalesces identical
// requests across clients (singleflight by config key), executes them on a
// bounded worker pool through the shared experiment runner, and backs both
// result summaries and golden warm checkpoints with an on-disk store — so
// the dedup and warmup amortization that cmd/sweep gets within one process
// survive across clients and restarts.
//
// Usage:
//
//	nocsimd -store /var/lib/nocsim -addr :8347
//	curl -s localhost:8347/healthz
//	curl -s -X POST localhost:8347/run -d '{"points":[{"workload":7,"config":{...}}]}'
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-flight
// jobs run to completion (landing in the store), then the process exits.
// See docs/ARCHITECTURE.md ("Simulation service") and docs/SERVICE.md.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nocmem/internal/config"
	"nocmem/internal/simd"
	"nocmem/internal/simdclient"
)

func main() {
	log.SetFlags(log.Ltime)
	log.SetPrefix("nocsimd: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8347", "listen address")
		store    = flag.String("store", "nocsimd-store", "on-disk store directory (results + warm checkpoints)")
		jobs     = flag.Int("j", 0, "max concurrently executing simulations (0 = all CPUs)")
		fork     = flag.Bool("fork", true, "share one baseline warmup checkpoint across compatible configs (persisted in the store)")
		drainFor = flag.Duration("drain-timeout", 10*time.Minute, "how long a SIGTERM drain waits for in-flight jobs")
		selftest = flag.Bool("selftest", false, "run the in-process smoke test (make simd-smoke) and exit")
		printCfg = flag.Int("print-config", 0, "print the 16- or 32-core baseline config as JSON (for use in /run requests) and exit")

		coord      = flag.Bool("coordinator", false, "run as a distributed-sweep coordinator: lease simulation points of submitted jobs to joined workers instead of executing them locally")
		leaseTTL   = flag.Duration("lease-ttl", 2*time.Minute, "coordinator: re-lease a point whose worker has not completed it within this TTL")
		leaseBatch = flag.Int("lease-batch", 4, "coordinator: max points handed out per lease grant; worker mode: points requested per lease poll (0 = parallelism)")
		join       = flag.String("join", "", "worker mode: join the coordinator daemon at this base URL (e.g. http://10.0.0.1:8347), execute leased points, exit on SIGINT/SIGTERM")
		workerName = flag.String("worker-name", "", "worker mode: label on the coordinator's /statsz (default hostname-pid)")
		distSmoke  = flag.Bool("dist-smoke", false, "run the distributed smoke test (make dist-smoke): coordinator + two worker processes, one killed mid-sweep, byte-identical merged output")
	)
	flag.Parse()

	if *printCfg != 0 {
		var cfg config.Config
		switch *printCfg {
		case 16:
			cfg = config.Baseline16()
		case 32:
			cfg = config.Baseline32()
		default:
			log.Fatalf("-print-config %d: want 16 or 32", *printCfg)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cfg); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *selftest {
		if err := runSelftest(); err != nil {
			log.Fatalf("selftest: %v", err)
		}
		log.Print("selftest: PASS")
		return
	}

	if *distSmoke {
		if err := runDistSmoke(*jobs); err != nil {
			log.Fatalf("dist-smoke: %v", err)
		}
		log.Print("dist-smoke: PASS")
		return
	}

	if *join != "" {
		if err := runWorkerMode(*join, *workerName, *jobs, *leaseBatch, *fork); err != nil {
			log.Fatal(err)
		}
		return
	}

	srv, err := simd.New(simd.Options{
		StoreDir:    *store,
		Parallelism: *jobs,
		ShareWarmup: *fork,
		Logf:        log.Printf,
		Distributed: *coord,
		LeaseTTL:    *leaseTTL,
		LeaseBatch:  *leaseBatch,
	})
	if err != nil {
		log.Fatal(err)
	}
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	if *coord {
		log.Printf("serving on %s as coordinator (store %s, fork=%v, lease ttl %s)", *addr, *store, *fork, *leaseTTL)
	} else {
		log.Printf("serving on %s (store %s, fork=%v)", *addr, *store, *fork)
	}

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("signal received, draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := hs.Shutdown(dctx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(dctx); err != nil {
		log.Fatal(err)
	}
	st := srv.Stats()
	log.Printf("drained clean: %d jobs, %d points, %d simulations executed, %d warmups",
		st.Jobs, st.Points, st.Runner.Executed, st.Runner.Warmups)
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		log.Printf("listener: %v", err)
	}
}

// runWorkerMode joins a coordinator and executes leased sweep points until
// SIGINT/SIGTERM. A worker holds no listener and no store of its own — the
// coordinator owns the merged results; the worker only computes.
func runWorkerMode(base, name string, jobs, batch int, fork bool) error {
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := simdclient.New(base)
	defer c.Close()
	log.Printf("joining coordinator %s as %q (fork=%v)", base, name, fork)
	err := simdclient.RunWorker(ctx, c, simdclient.WorkerOptions{
		Name:        name,
		Parallelism: jobs,
		MaxBatch:    batch,
		ShareWarmup: fork,
		Logf:        log.Printf,
	})
	if err != nil {
		return fmt.Errorf("worker: %w", err)
	}
	log.Print("worker: signal received, exiting")
	return nil
}
