// Package nocmem is a cycle-level simulator of NoC-based multicores that
// reproduces "Addressing End-to-End Memory Access Latency in NoC-Based
// Multicores" (Sharifi, Kultursay, Kandemir, Das — MICRO 2012).
//
// The package is the public facade over the internal substrates: it builds
// fully-wired systems (out-of-order cores, private L1s, shared S-NUCA L2,
// mesh NoC, DRAM controllers), runs the paper's multiprogrammed workloads
// under the baseline or under the two prioritization schemes, and computes
// the paper's metrics (normalized weighted speedup, latency distributions,
// per-leg delay breakdowns, bank idleness).
//
// Quick start:
//
//	cfg := nocmem.Baseline32()
//	w, _ := nocmem.GetWorkload(7)
//	row, err := nocmem.SpeedupFor(cfg, w)   // base vs S1 vs S1+S2
//	fmt.Println(row.NormS1, row.NormS1S2)
package nocmem

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nocmem/internal/config"
	"nocmem/internal/exp"
	"nocmem/internal/forkrun"
	"nocmem/internal/par"
	"nocmem/internal/sim"
	"nocmem/internal/stats"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

// Re-exported configuration types. See the config package for field
// documentation.
type (
	// Config is the full system configuration.
	Config = config.Config
	// Result is the measurement bundle of one simulation run.
	Result = sim.Result
	// Workload is one multiprogrammed mix from Table 2.
	Workload = workload.Workload
	// Profile describes one synthetic application.
	Profile = trace.Profile
	// FileTrace is a recorded instruction trace opened for replay.
	FileTrace = trace.FileTrace
)

// Category re-exports the workload categories.
const (
	Mixed           = workload.Mixed
	MemIntensive    = workload.MemIntensive
	MemNonIntensive = workload.MemNonIntensive
)

// Baseline32 returns the paper's Table 1 configuration (32 cores, 4x8 mesh,
// 4 memory controllers).
func Baseline32() Config { return config.Baseline32() }

// Baseline16 returns the 16-core 4x4 configuration of Figure 15.
func Baseline16() Config { return config.Baseline16() }

// Workloads returns the 18 workloads of Table 2.
func Workloads() []Workload { return workload.All() }

// GetWorkload returns workload id (1..18).
func GetWorkload(id int) (Workload, error) { return workload.Get(id) }

// LookupApp returns the built-in synthetic profile for a SPEC CPU2006
// application name.
func LookupApp(name string) (Profile, error) { return trace.Lookup(name) }

// Apps returns every built-in application profile.
func Apps() []Profile { return trace.Profiles() }

// NewSimulator builds a simulator with one application per tile (empty
// profiles leave tiles idle).
func NewSimulator(cfg Config, apps []Profile) (*sim.Simulator, error) {
	return sim.New(cfg, apps)
}

// OpenTrace loads a recorded instruction trace (written by cmd/tracegen or
// trace.Record) for replay.
func OpenTrace(path string) (*trace.FileTrace, error) { return trace.OpenFile(path) }

// RunTraces runs recorded traces, one per tile in order (nil entries leave
// tiles idle); names label the tiles in the results.
func RunTraces(cfg Config, traces []*trace.FileTrace, names []string) (*Result, error) {
	nodes := cfg.Mesh.Nodes()
	if len(traces) > nodes {
		return nil, fmt.Errorf("nocmem: %d traces for %d tiles", len(traces), nodes)
	}
	srcs := make([]trace.AppSource, nodes)
	apps := make([]Profile, nodes)
	for i, t := range traces {
		if t == nil {
			continue
		}
		srcs[i] = t
		name := fmt.Sprintf("trace-%d", i)
		if i < len(names) && names[i] != "" {
			name = names[i]
		}
		apps[i] = Profile{Name: name}
	}
	s, err := sim.NewFromSources(cfg, srcs, apps)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// RunWorkload runs one workload on cfg and returns its measurements. The
// workload must have at most as many applications as the mesh has tiles;
// remaining tiles stay idle.
func RunWorkload(cfg Config, w Workload) (*Result, error) {
	apps, err := w.Profiles()
	if err != nil {
		return nil, err
	}
	return RunApps(cfg, apps)
}

// RunApps runs an explicit application placement (padded with idle tiles).
func RunApps(cfg Config, apps []Profile) (*Result, error) {
	nodes := cfg.Mesh.Nodes()
	if len(apps) > nodes {
		return nil, fmt.Errorf("nocmem: %d applications for %d tiles", len(apps), nodes)
	}
	facadeRuns.Add(1)
	padded := make([]Profile, nodes)
	copy(padded, apps)
	if ShareWarmup() {
		return forkCache.Run(cfg, padded)
	}
	s, err := sim.New(cfg, padded)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// forkCache holds the warmup snapshots shared across the facade's runs while
// warmup sharing is on. Keyed by the policy-free configuration prefix, the
// placement, the warmup length and the shard count (see internal/forkrun),
// so configurations differing only in Scheme-1/2 or the application-aware
// baselines fork from one warmed checkpoint.
var (
	forkMu      sync.Mutex
	shareWarmup bool
	forkCache   forkrun.Cache
)

// SetShareWarmup toggles warmup sharing for the package-level run helpers
// (RunApps, RunWorkload, SpeedupFor, AloneIPC): each group of compatible
// configurations executes its warmup once under the unprioritized baseline,
// checkpoints, and forks every measurement run from the snapshot. Runs
// measuring a scheme then warm up under the baseline policy instead of their
// own, so results can differ slightly from cold runs — an explicit opt-in
// for sweeps that prefer wall-clock over exactness of the warm state.
func SetShareWarmup(on bool) {
	forkMu.Lock()
	shareWarmup = on
	forkMu.Unlock()
}

// ShareWarmup reports whether warmup sharing is on.
func ShareWarmup() bool {
	forkMu.Lock()
	defer forkMu.Unlock()
	return shareWarmup
}

// parallelism is the worker-pool width of the facade's parallel helpers
// (SpeedupFor and the alone-IPC prefetching). Default: GOMAXPROCS.
var (
	parMu       sync.Mutex
	parallelism = runtime.GOMAXPROCS(0)
)

// SetParallelism bounds how many simulations the package-level helpers run
// concurrently. n <= 0 restores the default (GOMAXPROCS); n == 1 forces
// fully sequential execution. Each simulation is an independent
// deterministic cycle loop, so results are identical at any setting.
func SetParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	parMu.Lock()
	parallelism = n
	parMu.Unlock()
}

// Parallelism returns the current worker-pool width.
func Parallelism() int {
	parMu.Lock()
	defer parMu.Unlock()
	return parallelism
}

// RunStats reports the cache and warmup provenance of the package-level run
// helpers, in the same shape the simulation daemon's /statsz uses for its
// runner (exp.Stats): how many simulations executed, how many requests the
// alone-IPC cache absorbed, and — when warmup sharing is on — how many runs
// forked from a shared warm checkpoint instead of re-executing the warmup.
// Surfaced by sweep -v.
type RunStats = exp.Stats

// Stats returns the facade's provenance counters, accumulated since process
// start across every package-level run helper.
func Stats() RunStats {
	fs := forkCache.Stats()
	executed := facadeRuns.Load()
	hits := aloneHits.Load()
	return RunStats{
		Runs:              executed + hits,
		Executed:          executed,
		CacheHits:         hits,
		Forked:            fs.Forked,
		Warmups:           fs.Warmups,
		SnapshotMemHits:   fs.MemHits,
		SnapshotDiskHits:  fs.DiskHits,
		SnapshotEvictions: fs.Evictions,
	}
}

// facadeRuns counts simulations executed through RunApps; aloneHits counts
// AloneIPC requests served from the memoized alone cache.
var facadeRuns, aloneHits atomic.Int64

// aloneCache memoizes alone-run IPCs per (config, application); the alone
// IPC of an application is independent of its co-runners and of the
// schemes (alone runs always use the unprioritized baseline, matching the
// paper's IPC_alone definition). Entries are singleflight slots so
// concurrent callers of the same (config, app) share one simulation.
var aloneCache sync.Map // string -> *aloneEntry

type aloneEntry struct {
	done chan struct{}
	ipc  float64
	err  error
}

func aloneKey(cfg Config, name string) string {
	return cfg.WithSchemes(false, false).Key() + "|" + name
}

// AloneIPC returns the application's IPC when it runs alone on the system
// (tile 0), used as the denominator of weighted speedup. Results are
// memoized per configuration; concurrent callers of the same point wait
// for (and share) the first caller's run.
func AloneIPC(cfg Config, app Profile) (float64, error) {
	key := aloneKey(cfg, app.Name)
	e := &aloneEntry{done: make(chan struct{})}
	if prev, loaded := aloneCache.LoadOrStore(key, e); loaded {
		pe := prev.(*aloneEntry)
		<-pe.done
		aloneHits.Add(1)
		return pe.ipc, pe.err
	}
	defer close(e.done)
	r, err := RunApps(cfg.WithSchemes(false, false), []Profile{app})
	if err != nil {
		e.err = err
		return 0, err
	}
	ipc := r.IPC[0]
	if ipc <= 0 {
		e.err = fmt.Errorf("nocmem: alone IPC of %s is %v", app.Name, ipc)
		return 0, e.err
	}
	e.ipc = ipc
	return ipc, nil
}

// WeightedSpeedup computes WS = sum IPC_shared/IPC_alone for a finished run.
func WeightedSpeedup(cfg Config, r *Result) (float64, error) {
	var shared, alone []float64
	for _, tile := range r.ActiveTiles() {
		a, err := AloneIPC(cfg, r.Apps[tile])
		if err != nil {
			return 0, err
		}
		shared = append(shared, r.IPC[tile])
		alone = append(alone, a)
	}
	return stats.WeightedSpeedup(shared, alone)
}

// Fairness returns the unfairness (max per-app slowdown vs running alone)
// and the harmonic speedup of a finished run — the fairness-oriented
// companions to weighted speedup.
func Fairness(cfg Config, r *Result) (maxSlowdown, harmonic float64, err error) {
	var shared, alone []float64
	for _, tile := range r.ActiveTiles() {
		a, err := AloneIPC(cfg, r.Apps[tile])
		if err != nil {
			return 0, 0, err
		}
		shared = append(shared, r.IPC[tile])
		alone = append(alone, a)
	}
	if maxSlowdown, err = stats.MaxSlowdown(shared, alone); err != nil {
		return 0, 0, err
	}
	if harmonic, err = stats.HarmonicSpeedup(shared, alone); err != nil {
		return 0, 0, err
	}
	return maxSlowdown, harmonic, nil
}

// SpeedupRow holds the Figure 11 data point of one workload: the weighted
// speedups of the three systems and the normalized values the paper plots.
type SpeedupRow struct {
	Workload Workload

	BaseWS, S1WS, S1S2WS float64

	// NormS1 and NormS1S2 are normalized to the unprioritized base.
	NormS1, NormS1S2 float64

	// Results retains the three runs (base, S1, S1+S2) for deeper
	// inspection (latency CDFs, bank idleness, ...).
	Base, S1, S1S2 *Result
}

// SpeedupFor runs one workload under base, Scheme-1, and Scheme-1+2, and
// returns the normalized weighted speedups of Figure 11. The three shared
// runs and the workload's alone runs are independent simulations; when
// SetParallelism allows, they execute concurrently on a bounded pool.
func SpeedupFor(cfg Config, w Workload) (SpeedupRow, error) {
	row := SpeedupRow{Workload: w}
	type variant struct {
		s1, s2 bool
		ws     *float64
		res    **Result
	}
	variants := []variant{
		{false, false, &row.BaseWS, &row.Base},
		{true, false, &row.S1WS, &row.S1},
		{true, true, &row.S1S2WS, &row.S1S2},
	}
	if workers := Parallelism(); workers > 1 {
		results := make([]*Result, len(variants))
		g := par.NewGroup(workers)
		for i, v := range variants {
			g.Go(func() error {
				r, err := RunWorkload(cfg.WithSchemes(v.s1, v.s2), w)
				results[i] = r
				return err
			})
		}
		// Warm the alone-IPC cache concurrently. Dedupe by name so no two
		// tasks of this group contend on the same singleflight slot (a
		// waiter would hold a pool slot its owner might still need).
		if apps, err := w.Profiles(); err == nil {
			seen := make(map[string]bool)
			for _, a := range apps {
				if a.Name == "" || seen[a.Name] {
					continue
				}
				seen[a.Name] = true
				g.Go(func() error {
					_, err := AloneIPC(cfg, a)
					return err
				})
			}
		}
		if err := g.Wait(); err != nil {
			return row, err
		}
		for i, v := range variants {
			ws, err := WeightedSpeedup(cfg, results[i]) // alone IPCs now cached
			if err != nil {
				return row, err
			}
			*v.ws = ws
			*v.res = results[i]
		}
	} else {
		for _, v := range variants {
			r, err := RunWorkload(cfg.WithSchemes(v.s1, v.s2), w)
			if err != nil {
				return row, err
			}
			ws, err := WeightedSpeedup(cfg, r)
			if err != nil {
				return row, err
			}
			*v.ws = ws
			*v.res = r
		}
	}
	var err error
	if row.NormS1, err = stats.NormalizedSpeedup(row.S1WS, row.BaseWS); err != nil {
		return row, err
	}
	if row.NormS1S2, err = stats.NormalizedSpeedup(row.S1S2WS, row.BaseWS); err != nil {
		return row, err
	}
	return row, nil
}
