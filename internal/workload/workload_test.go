package workload

import (
	"testing"

	"nocmem/internal/trace"
)

func TestTable2Shape(t *testing.T) {
	ws := All()
	if len(ws) != 18 {
		t.Fatalf("%d workloads, want 18", len(ws))
	}
	counts := map[Category]int{}
	for i, w := range ws {
		if w.ID != i+1 {
			t.Errorf("workload %d has id %d", i, w.ID)
		}
		if got := w.Size(); got != 32 {
			t.Errorf("%s has %d applications, want 32", w.Name(), got)
		}
		counts[w.Category]++
	}
	if counts[Mixed] != 6 || counts[MemIntensive] != 6 || counts[MemNonIntensive] != 6 {
		t.Errorf("category counts %v, want 6 each", counts)
	}
}

func TestAllApplicationsResolve(t *testing.T) {
	for _, w := range All() {
		ps, err := w.Profiles()
		if err != nil {
			t.Fatalf("%s: %v", w.Name(), err)
		}
		if len(ps) != 32 {
			t.Fatalf("%s expanded to %d profiles", w.Name(), len(ps))
		}
	}
}

func TestCategoryConsistency(t *testing.T) {
	for _, w := range All() {
		ps, err := w.Profiles()
		if err != nil {
			t.Fatal(err)
		}
		intensive := 0
		for _, p := range ps {
			if p.MemoryIntensive() {
				intensive++
			}
		}
		switch w.Category {
		case Mixed:
			if intensive != 16 {
				t.Errorf("%s: %d intensive apps, want exactly 16 (half)", w.Name(), intensive)
			}
		case MemIntensive:
			if intensive != 32 {
				t.Errorf("%s: %d intensive apps, want 32", w.Name(), intensive)
			}
		case MemNonIntensive:
			if intensive != 0 {
				t.Errorf("%s: %d intensive apps, want 0", w.Name(), intensive)
			}
		}
	}
}

func TestHalve(t *testing.T) {
	for _, w := range All() {
		h, err := w.Halve()
		if err != nil {
			t.Fatal(err)
		}
		if got := h.Size(); got != 16 {
			t.Errorf("%s halved to %d applications, want 16", w.Name(), got)
		}
		ps, err := h.Profiles()
		if err != nil {
			t.Fatal(err)
		}
		if w.Category == Mixed {
			intensive := 0
			for _, p := range ps {
				if p.MemoryIntensive() {
					intensive++
				}
			}
			if intensive != 8 {
				t.Errorf("%s halved has %d intensive apps, want 8", w.Name(), intensive)
			}
		}
	}
}

func TestGet(t *testing.T) {
	w, err := Get(7)
	if err != nil || w.ID != 7 || w.Category != MemIntensive {
		t.Errorf("Get(7) = %+v, %v", w, err)
	}
	if _, err := Get(0); err == nil {
		t.Error("id 0 accepted")
	}
	if _, err := Get(19); err == nil {
		t.Error("id 19 accepted")
	}
}

func TestByCategory(t *testing.T) {
	for _, c := range []Category{Mixed, MemIntensive, MemNonIntensive} {
		ws := ByCategory(c)
		if len(ws) != 6 {
			t.Errorf("%v has %d workloads", c, len(ws))
		}
		for _, w := range ws {
			if w.Category != c {
				t.Errorf("%s in wrong category", w.Name())
			}
		}
	}
}

func TestCategoryStrings(t *testing.T) {
	if Mixed.String() != "mixed" || MemIntensive.String() != "mem-intensive" ||
		MemNonIntensive.String() != "mem-non-intensive" {
		t.Error("category labels wrong")
	}
}

func TestProfilesPreserveTableOrder(t *testing.T) {
	w, _ := Get(1)
	ps, _ := w.Profiles()
	if ps[0].Name != "mcf" || ps[1].Name != "mcf" || ps[2].Name != "mcf" || ps[3].Name != "lbm" {
		t.Errorf("expansion order broken: %s %s %s %s", ps[0].Name, ps[1].Name, ps[2].Name, ps[3].Name)
	}
}

func TestUnknownApplicationRejected(t *testing.T) {
	w := Workload{ID: 99, Apps: []AppCount{{"quake", 32}}}
	if _, err := w.Profiles(); err == nil {
		t.Error("unknown application accepted")
	}
	if _, err := w.Halve(); err == nil {
		t.Error("halve of invalid workload accepted")
	}
	_ = trace.Profiles() // keep the import honest
}
