// Package workload encodes Table 2 of the paper: the 18 multiprogrammed
// SPEC CPU2006 workloads used in the 32-core experiments, grouped into
// mixed (w1-w6), memory-intensive (w7-w12) and memory-non-intensive
// (w13-w18) categories, plus the halving rule used for the 16-core system.
package workload

import (
	"fmt"

	"nocmem/internal/trace"
)

// Category is a workload's memory-intensity class.
type Category int

const (
	Mixed Category = iota
	MemIntensive
	MemNonIntensive
)

// String implements fmt.Stringer.
func (c Category) String() string {
	switch c {
	case Mixed:
		return "mixed"
	case MemIntensive:
		return "mem-intensive"
	case MemNonIntensive:
		return "mem-non-intensive"
	}
	return "unknown"
}

// AppCount is one application and its number of copies in a workload.
type AppCount struct {
	Name  string
	Count int
}

// Workload is one multiprogrammed mix.
type Workload struct {
	ID       int // 1-based, as in Table 2
	Category Category
	Apps     []AppCount
}

// Name returns the paper's workload label, e.g. "workload-7".
func (w Workload) Name() string { return fmt.Sprintf("workload-%d", w.ID) }

// Size returns the total number of application copies.
func (w Workload) Size() int {
	n := 0
	for _, a := range w.Apps {
		n += a.Count
	}
	return n
}

// Profiles expands the workload into per-core profiles in table order.
func (w Workload) Profiles() ([]trace.Profile, error) {
	out := make([]trace.Profile, 0, w.Size())
	for _, a := range w.Apps {
		p, err := trace.Lookup(a.Name)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name(), err)
		}
		for i := 0; i < a.Count; i++ {
			out = append(out, p)
		}
	}
	return out, nil
}

// Halve returns the 16-core variant of Section 4.2: the first half of the
// applications; for mixed workloads, the first half of the memory-intensive
// and the first half of the memory-non-intensive applications.
func (w Workload) Halve() (Workload, error) {
	ps, err := w.Profiles()
	if err != nil {
		return Workload{}, err
	}
	target := len(ps) / 2
	var picked []trace.Profile
	if w.Category == Mixed {
		var intensive, rest []trace.Profile
		for _, p := range ps {
			if p.MemoryIntensive() {
				intensive = append(intensive, p)
			} else {
				rest = append(rest, p)
			}
		}
		picked = append(picked, firstN(intensive, target/2)...)
		picked = append(picked, firstN(rest, target-target/2)...)
	} else {
		picked = firstN(ps, target)
	}
	half := Workload{ID: w.ID, Category: w.Category}
	for _, p := range picked {
		if n := len(half.Apps); n > 0 && half.Apps[n-1].Name == p.Name {
			half.Apps[n-1].Count++
		} else {
			half.Apps = append(half.Apps, AppCount{Name: p.Name, Count: 1})
		}
	}
	return half, nil
}

func firstN(ps []trace.Profile, n int) []trace.Profile {
	if n > len(ps) {
		n = len(ps)
	}
	return ps[:n]
}

// table2 is the verbatim content of Table 2.
var table2 = []Workload{
	{ID: 1, Category: Mixed, Apps: []AppCount{
		{"mcf", 3}, {"lbm", 2}, {"xalancbmk", 1}, {"milc", 2}, {"libquantum", 1}, {"leslie3d", 5},
		{"GemsFDTD", 1}, {"soplex", 1}, {"omnetpp", 2}, {"perlbench", 1}, {"astar", 1}, {"wrf", 1},
		{"tonto", 1}, {"sjeng", 1}, {"namd", 1}, {"hmmer", 1}, {"h264ref", 1}, {"gamess", 1},
		{"calculix", 1}, {"bzip2", 3}, {"bwaves", 1},
	}},
	{ID: 2, Category: Mixed, Apps: []AppCount{
		{"mcf", 4}, {"lbm", 2}, {"xalancbmk", 2}, {"milc", 3}, {"libquantum", 2}, {"GemsFDTD", 1},
		{"soplex", 2}, {"perlbench", 2}, {"astar", 3}, {"wrf", 3}, {"povray", 1}, {"namd", 3},
		{"hmmer", 1}, {"h264ref", 1}, {"gcc", 1}, {"dealII", 1},
	}},
	{ID: 3, Category: Mixed, Apps: []AppCount{
		{"mcf", 4}, {"lbm", 1}, {"milc", 2}, {"libquantum", 5}, {"leslie3d", 2}, {"sphinx3", 1},
		{"GemsFDTD", 1}, {"omnetpp", 1}, {"astar", 2}, {"zeusmp", 2}, {"wrf", 2}, {"tonto", 1},
		{"sjeng", 1}, {"h264ref", 1}, {"gobmk", 1}, {"gcc", 1}, {"gamess", 1}, {"dealII", 1},
		{"calculix", 1}, {"bwaves", 1},
	}},
	{ID: 4, Category: Mixed, Apps: []AppCount{
		{"mcf", 1}, {"lbm", 2}, {"xalancbmk", 3}, {"milc", 2}, {"leslie3d", 1}, {"sphinx3", 3},
		{"GemsFDTD", 1}, {"soplex", 3}, {"omnetpp", 1}, {"astar", 2}, {"zeusmp", 1}, {"wrf", 1},
		{"tonto", 1}, {"sjeng", 1}, {"h264ref", 2}, {"gcc", 1}, {"gamess", 3}, {"bzip2", 2},
		{"bwaves", 1},
	}},
	{ID: 5, Category: Mixed, Apps: []AppCount{
		{"mcf", 4}, {"lbm", 2}, {"xalancbmk", 3}, {"milc", 1}, {"leslie3d", 1}, {"sphinx3", 1},
		{"soplex", 4}, {"astar", 2}, {"zeusmp", 2}, {"wrf", 1}, {"sjeng", 1}, {"povray", 2},
		{"namd", 1}, {"hmmer", 1}, {"h264ref", 2}, {"gromacs", 1}, {"gcc", 1}, {"calculix", 1},
		{"bwaves", 1},
	}},
	{ID: 6, Category: Mixed, Apps: []AppCount{
		{"mcf", 2}, {"xalancbmk", 2}, {"milc", 1}, {"libquantum", 1}, {"leslie3d", 2}, {"sphinx3", 3},
		{"GemsFDTD", 3}, {"soplex", 2}, {"omnetpp", 1}, {"perlbench", 2}, {"wrf", 1}, {"tonto", 2},
		{"hmmer", 1}, {"gromacs", 1}, {"gobmk", 1}, {"gcc", 1}, {"gamess", 1}, {"dealII", 2},
		{"bzip2", 3},
	}},
	{ID: 7, Category: MemIntensive, Apps: []AppCount{
		{"mcf", 1}, {"lbm", 5}, {"xalancbmk", 5}, {"milc", 1}, {"libquantum", 5}, {"leslie3d", 4},
		{"sphinx3", 3}, {"GemsFDTD", 6}, {"soplex", 2},
	}},
	{ID: 8, Category: MemIntensive, Apps: []AppCount{
		{"mcf", 3}, {"lbm", 2}, {"xalancbmk", 4}, {"milc", 3}, {"libquantum", 8}, {"leslie3d", 3},
		{"sphinx3", 4}, {"GemsFDTD", 5},
	}},
	{ID: 9, Category: MemIntensive, Apps: []AppCount{
		{"mcf", 4}, {"lbm", 5}, {"xalancbmk", 4}, {"milc", 3}, {"libquantum", 4}, {"leslie3d", 2},
		{"sphinx3", 6}, {"GemsFDTD", 2}, {"soplex", 2},
	}},
	{ID: 10, Category: MemIntensive, Apps: []AppCount{
		{"mcf", 4}, {"lbm", 3}, {"xalancbmk", 3}, {"milc", 2}, {"libquantum", 4}, {"leslie3d", 3},
		{"sphinx3", 4}, {"GemsFDTD", 8}, {"soplex", 1},
	}},
	{ID: 11, Category: MemIntensive, Apps: []AppCount{
		{"mcf", 3}, {"lbm", 6}, {"xalancbmk", 2}, {"milc", 5}, {"libquantum", 1}, {"leslie3d", 2},
		{"sphinx3", 4}, {"GemsFDTD", 4}, {"soplex", 5},
	}},
	{ID: 12, Category: MemIntensive, Apps: []AppCount{
		{"mcf", 2}, {"lbm", 3}, {"xalancbmk", 3}, {"milc", 6}, {"libquantum", 5}, {"leslie3d", 4},
		{"sphinx3", 4}, {"GemsFDTD", 5},
	}},
	{ID: 13, Category: MemNonIntensive, Apps: []AppCount{
		{"perlbench", 1}, {"astar", 3}, {"zeusmp", 2}, {"wrf", 2}, {"sjeng", 3}, {"povray", 2},
		{"hmmer", 1}, {"gromacs", 2}, {"gcc", 1}, {"gamess", 2}, {"dealII", 2}, {"calculix", 5},
		{"bzip2", 2}, {"bwaves", 4},
	}},
	{ID: 14, Category: MemNonIntensive, Apps: []AppCount{
		{"omnetpp", 3}, {"perlbench", 1}, {"zeusmp", 2}, {"tonto", 1}, {"sjeng", 1}, {"povray", 2},
		{"namd", 2}, {"hmmer", 4}, {"h264ref", 3}, {"gromacs", 2}, {"gobmk", 3}, {"gamess", 3},
		{"bzip2", 1}, {"bwaves", 4},
	}},
	{ID: 15, Category: MemNonIntensive, Apps: []AppCount{
		{"omnetpp", 2}, {"perlbench", 2}, {"astar", 1}, {"zeusmp", 3}, {"sjeng", 1}, {"povray", 1},
		{"namd", 1}, {"hmmer", 2}, {"h264ref", 1}, {"gromacs", 2}, {"gobmk", 3}, {"gcc", 2},
		{"gamess", 1}, {"dealII", 4}, {"calculix", 2}, {"bzip2", 2}, {"bwaves", 2},
	}},
	{ID: 16, Category: MemNonIntensive, Apps: []AppCount{
		{"omnetpp", 3}, {"perlbench", 3}, {"astar", 2}, {"zeusmp", 1}, {"wrf", 2}, {"sjeng", 3},
		{"povray", 3}, {"namd", 1}, {"hmmer", 2}, {"h264ref", 1}, {"gobmk", 1}, {"gcc", 4},
		{"gamess", 2}, {"dealII", 2}, {"bzip2", 1}, {"bwaves", 1},
	}},
	{ID: 17, Category: MemNonIntensive, Apps: []AppCount{
		{"omnetpp", 2}, {"perlbench", 2}, {"astar", 1}, {"zeusmp", 2}, {"wrf", 1}, {"tonto", 2},
		{"sjeng", 1}, {"povray", 2}, {"namd", 1}, {"hmmer", 4}, {"h264ref", 1}, {"gobmk", 2},
		{"gcc", 2}, {"gamess", 1}, {"dealII", 3}, {"calculix", 2}, {"bzip2", 3},
	}},
	{ID: 18, Category: MemNonIntensive, Apps: []AppCount{
		{"omnetpp", 2}, {"perlbench", 4}, {"zeusmp", 2}, {"wrf", 2}, {"tonto", 2}, {"sjeng", 2},
		{"namd", 1}, {"hmmer", 2}, {"h264ref", 1}, {"gromacs", 2}, {"gobmk", 2}, {"gcc", 4},
		{"gamess", 2}, {"calculix", 2}, {"bzip2", 1}, {"bwaves", 1},
	}},
}

// All returns the 18 workloads of Table 2.
func All() []Workload {
	out := make([]Workload, len(table2))
	copy(out, table2)
	return out
}

// Get returns workload id (1-18).
func Get(id int) (Workload, error) {
	if id < 1 || id > len(table2) {
		return Workload{}, fmt.Errorf("workload: id %d out of range 1..%d", id, len(table2))
	}
	return table2[id-1], nil
}

// ByCategory returns the workloads of one category in id order.
func ByCategory(c Category) []Workload {
	var out []Workload
	for _, w := range table2 {
		if w.Category == c {
			out = append(out, w)
		}
	}
	return out
}
