// Package simdclient is the Go client of the nocsimd simulation daemon
// (internal/simd): submit run/sweep jobs, poll their progress events, and
// fetch stored result summaries.
package simdclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"nocmem/internal/simd"
)

// Client talks to one daemon. Safe for concurrent use.
type Client struct {
	base string
	hc   *http.Client
	// Poll is the initial job-status polling interval of Wait (default
	// 10ms — the daemon is usually local). Wait backs off exponentially
	// from Poll up to PollMax while a job produces no new events, and
	// snaps back to Poll when one arrives, so a quiet multi-minute sweep
	// doesn't hammer the daemon at startup rates.
	Poll time.Duration
	// PollMax caps the backed-off polling interval (default 1s).
	PollMax time.Duration
}

// New returns a client for the daemon at base (e.g. "http://127.0.0.1:8347").
// Requests carry a 30s default timeout (see SetRequestTimeout) so a hung or
// half-dead daemon surfaces as an error instead of blocking a caller that
// passed no deadline of its own forever.
func New(base string) *Client {
	return &Client{
		base:    base,
		hc:      &http.Client{Timeout: 30 * time.Second},
		Poll:    10 * time.Millisecond,
		PollMax: time.Second,
	}
}

// SetRequestTimeout overrides the per-request timeout (0 disables it —
// requests then run until the caller's context cancels them).
func (c *Client) SetRequestTimeout(d time.Duration) { c.hc.Timeout = d }

// SetTransport swaps the underlying HTTP transport. Tests inject unreliable
// transports (dropped, delayed, duplicated RPCs) here.
func (c *Client) SetTransport(rt http.RoundTripper) { c.hc.Transport = rt }

// Close releases idle connections.
func (c *Client) Close() { c.hc.CloseIdleConnections() }

// apiError decodes the daemon's {"error": ...} body.
func apiError(resp *http.Response, body []byte) error {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Errorf("simdclient: %s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("simdclient: %s", resp.Status)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp, data)
	}
	if out == nil {
		return nil
	}
	if raw, ok := out.(*[]byte); ok {
		*raw = data
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health checks GET /healthz.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// Stats fetches the daemon's /statsz counters.
func (c *Client) Stats(ctx context.Context) (simd.StatsSnapshot, error) {
	var s simd.StatsSnapshot
	err := c.do(ctx, http.MethodGet, "/statsz", nil, &s)
	return s, err
}

// Submit posts a job and returns its id and per-point store keys.
func (c *Client) Submit(ctx context.Context, req simd.RunRequest) (*simd.SubmitResponse, error) {
	var resp simd.SubmitResponse
	if err := c.do(ctx, http.MethodPost, "/run", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Job polls one job, returning events past cursor.
func (c *Client) Job(ctx context.Context, id string, cursor int) (*simd.JobStatus, error) {
	var js simd.JobStatus
	path := fmt.Sprintf("/jobs/%s?cursor=%d", url.PathEscape(id), cursor)
	if err := c.do(ctx, http.MethodGet, path, nil, &js); err != nil {
		return nil, err
	}
	return &js, nil
}

// Wait polls a job until it reaches a terminal state, forwarding each new
// progress event to onEvent (may be nil). Polling backs off exponentially
// from Poll to PollMax while the job is quiet and resets on fresh events;
// ctx cancellation is honored between every poll.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(simd.Event)) (*simd.JobStatus, error) {
	cursor := 0
	interval := c.Poll
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	max := c.PollMax
	if max < interval {
		max = interval
	}
	delay := interval
	for {
		js, err := c.Job(ctx, id, cursor)
		if err != nil {
			return nil, err
		}
		if onEvent != nil {
			for _, e := range js.Events {
				onEvent(e)
			}
		}
		if len(js.Events) > 0 {
			delay = interval
		}
		cursor = js.NextCursor
		if js.Done() {
			return js, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > max {
			delay = max
		}
	}
}

// Run submits a job and waits for it to finish.
func (c *Client) Run(ctx context.Context, req simd.RunRequest) (*simd.JobStatus, error) {
	resp, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	return c.Wait(ctx, resp.ID, nil)
}

// --- Distributed-sweep worker RPCs (coordinator mode) ---

// RegisterWorker announces a worker to a coordinator daemon and returns its
// assigned id plus lease parameters.
func (c *Client) RegisterWorker(ctx context.Context, name string) (*simd.RegisterResponse, error) {
	var resp simd.RegisterResponse
	if err := c.do(ctx, http.MethodPost, "/dist/register", simd.RegisterRequest{Name: name}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Lease asks the coordinator for up to max points to execute.
func (c *Client) Lease(ctx context.Context, worker string, max int) (*simd.LeaseResponse, error) {
	var resp simd.LeaseResponse
	if err := c.do(ctx, http.MethodPost, "/dist/lease", simd.LeaseRequest{Worker: worker, Max: max}, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Complete reports one executed point (or its failure) back to the
// coordinator and returns the coordinator's classification of the report.
func (c *Client) Complete(ctx context.Context, req simd.CompleteRequest) (string, error) {
	var resp simd.CompleteResponse
	if err := c.do(ctx, http.MethodPost, "/dist/complete", req, &resp); err != nil {
		return "", err
	}
	return resp.Status, nil
}

// Result fetches the stored summary JSON for a run key, byte for byte as
// the daemon persisted it.
func (c *Client) Result(ctx context.Context, key string) ([]byte, error) {
	var raw []byte
	if err := c.do(ctx, http.MethodGet, "/results/"+url.PathEscape(key), nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}
