// Regression tests for the client-hang bugfixes: a hung daemon must surface
// as a timeout (not block forever), the caller's context must be honored on
// every poll, and Wait must back off instead of hammering a quiet daemon at
// the initial polling rate.
package simdclient_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"nocmem/internal/simd"
	"nocmem/internal/simdclient"
)

// hungServer accepts requests and never answers until the client goes away.
func hungServer() *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
}

// TestRequestTimeoutOnHungServer: the regression for the timeout-less
// http.Client — a daemon that accepts and never responds must fail the
// request after the configured timeout, even when the caller passed no
// context deadline at all.
func TestRequestTimeoutOnHungServer(t *testing.T) {
	srv := hungServer()
	defer srv.Close()
	c := simdclient.New(srv.URL)
	defer c.Close()
	c.SetRequestTimeout(50 * time.Millisecond)

	t0 := time.Now()
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("Health against a hung daemon returned nil error")
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("Health took %s against a hung daemon, want ~50ms", d)
	}
}

// TestContextHonoredMidRequest: a context that expires while a request is in
// flight must cancel it promptly — the 30s default request timeout is the
// backstop, not the only way out.
func TestContextHonoredMidRequest(t *testing.T) {
	srv := hungServer()
	defer srv.Close()
	c := simdclient.New(srv.URL)
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	t0 := time.Now()
	if _, err := c.Job(ctx, "j1", 0); err == nil {
		t.Fatal("Job with an expired context returned nil error")
	}
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("Job held on for %s past its context, want ~50ms", d)
	}
}

// TestWaitBacksOff: the regression for the fixed 10ms poll — a job that
// stays quiet for a while must be polled at an exponentially decaying rate
// (bounded by PollMax), not hammered at the initial interval.
func TestWaitBacksOff(t *testing.T) {
	var polls atomic.Int64
	start := time.Now()
	const quiet = 300 * time.Millisecond
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		polls.Add(1)
		js := simd.JobStatus{ID: "j1", Status: simd.StatusRunning}
		if time.Since(start) > quiet {
			js.Status = simd.StatusDone
		}
		json.NewEncoder(w).Encode(js)
	}))
	defer srv.Close()

	c := simdclient.New(srv.URL)
	defer c.Close()
	c.Poll = time.Millisecond
	c.PollMax = 50 * time.Millisecond

	js, err := c.Wait(context.Background(), "j1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !js.Done() {
		t.Fatalf("Wait returned non-terminal status %q", js.Status)
	}
	// A fixed 1ms poll would make ~300 requests over the quiet window; the
	// backoff (1,2,4,...,50,50ms) keeps it around a dozen.
	if n := polls.Load(); n > 40 {
		t.Errorf("%d polls over a %s quiet job, want the backoff to keep it under 40", n, quiet)
	} else {
		t.Logf("%d polls over %s of quiet", n, quiet)
	}
}
