package simdclient

import (
	"context"
	"time"

	"nocmem/internal/exp"
	"nocmem/internal/par"
	"nocmem/internal/simd"
)

// WorkerOptions configures a distributed-sweep worker loop.
type WorkerOptions struct {
	// Name labels the worker on the coordinator (default "worker"); the
	// coordinator derives a unique id from it.
	Name string
	// Parallelism bounds concurrently executing simulations on this worker
	// (0 = GOMAXPROCS).
	Parallelism int
	// MaxBatch caps how many points one lease call asks for (0 = the
	// worker's parallelism — keep every local core busy, hoard nothing, so
	// a dying worker strands at most one batch behind its lease TTL).
	MaxBatch int
	// ShareWarmup enables warmup forking on the worker's local runner.
	// Must match the mode of whatever output the distributed run is being
	// compared against: forked and cold runs are both deterministic but
	// produce different (equally valid) statistics.
	ShareWarmup bool
	// Logf receives worker diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// RunWorker joins a coordinator daemon and executes leased sweep points
// until ctx is cancelled: register, poll for lease batches, simulate each
// point on a local exp.Runner, and report completions. Every fault mode is
// survivable by design — a completion that cannot be delivered is simply
// dropped (the lease expires and the point is re-executed elsewhere), and
// because results are a deterministic function of the key, whichever
// completion the coordinator accepts first carries the same bytes this
// worker computed.
//
// Returns nil when ctx is cancelled (normal shutdown); any other return is a
// registration failure that retries exhausted.
func RunWorker(ctx context.Context, c *Client, opts WorkerOptions) error {
	if opts.Name == "" {
		opts.Name = "worker"
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	runner := exp.NewRunner(exp.Options{
		Parallelism: opts.Parallelism,
		ShareWarmup: opts.ShareWarmup,
	})
	maxBatch := opts.MaxBatch
	if maxBatch <= 0 {
		maxBatch = runner.Parallelism()
	}

	// Register, retrying while the coordinator is still coming up.
	var reg *simd.RegisterResponse
	for delay := 25 * time.Millisecond; ; {
		var err error
		if reg, err = c.RegisterWorker(ctx, opts.Name); err == nil {
			break
		}
		if ctxDone(ctx) {
			return nil
		}
		opts.Logf("register: %v (retrying in %s)", err, delay)
		if !sleepCtx(ctx, delay) {
			return nil
		}
		if delay *= 2; delay > 2*time.Second {
			delay = 2 * time.Second
		}
	}
	opts.Logf("joined as %s (lease ttl %dms)", reg.WorkerID, reg.LeaseTTLMS)
	idle := time.Duration(reg.PollMS) * time.Millisecond
	if idle <= 0 {
		idle = 100 * time.Millisecond
	}

	for {
		lr, err := c.Lease(ctx, reg.WorkerID, maxBatch)
		if err != nil {
			if ctxDone(ctx) {
				return nil
			}
			opts.Logf("lease: %v", err)
			if !sleepCtx(ctx, idle) {
				return nil
			}
			continue
		}
		if len(lr.Leases) == 0 {
			wait := idle
			if lr.RetryMS > 0 {
				wait = time.Duration(lr.RetryMS) * time.Millisecond
			}
			if !sleepCtx(ctx, wait) {
				return nil
			}
			continue
		}
		g := par.NewGroup(runner.Parallelism())
		for _, l := range lr.Leases {
			g.Go(func() error {
				executeLease(ctx, c, runner, reg.WorkerID, l, opts.Logf)
				return nil
			})
		}
		g.Wait()
		if ctxDone(ctx) {
			return nil
		}
	}
}

// executeLease simulates one leased point and reports the outcome, retrying
// delivery a few times before giving up and letting the lease expire.
func executeLease(ctx context.Context, c *Client, runner *exp.Runner, workerID string, l simd.Lease, logf func(string, ...any)) {
	req := simd.CompleteRequest{Worker: workerID, LeaseID: l.ID, Key: l.Key}
	rp, err := simd.ResolveSpec(l.Spec)
	if err == nil {
		start := time.Now()
		var data []byte
		if data, err = simd.ExecuteSpec(runner, rp); err == nil {
			req.Summary = data
			logf("point %s done in %s", rp.Label, time.Since(start).Round(time.Millisecond))
		}
	}
	if err != nil {
		req.Err = err.Error()
		logf("point %s: %v", l.Key, err)
	}

	delay := 25 * time.Millisecond
	for attempt := 1; ; attempt++ {
		status, err := c.Complete(ctx, req)
		if err == nil {
			if status == simd.CompleteDuplicate {
				logf("point %s: completion was a duplicate (another worker got there first)", l.Key)
			}
			return
		}
		if ctxDone(ctx) || attempt >= 5 {
			// Give up: the coordinator (or the network) is gone. The lease
			// expires and the point re-runs elsewhere with identical bytes.
			logf("complete %s: dropped after %d attempt(s): %v", l.Key, attempt, err)
			return
		}
		logf("complete %s: %v (retrying in %s)", l.Key, err, delay)
		if !sleepCtx(ctx, delay) {
			return
		}
		if delay *= 2; delay > time.Second {
			delay = time.Second
		}
	}
}

func ctxDone(ctx context.Context) bool { return ctx.Err() != nil }

// sleepCtx waits d, returning false if ctx was cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}
