package analytic_test

import (
	"fmt"
	"testing"

	"nocmem/internal/analytic"
	"nocmem/internal/config"
	"nocmem/internal/sim"
	"nocmem/internal/stats"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

// scenario is one golden calibration point: a configuration plus per-tile
// profiles, simulated cycle-accurately and compared against the model.
type scenario struct {
	name string
	cfg  config.Config
	apps []trace.Profile
}

// pad extends apps with idle tiles to the mesh size.
func pad(cfg config.Config, apps []trace.Profile) []trace.Profile {
	out := make([]trace.Profile, cfg.Mesh.Nodes())
	copy(out, apps)
	return out
}

func mustProfiles(t testing.TB, id int, halve bool) []trace.Profile {
	t.Helper()
	w, err := workload.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if halve {
		if w, err = w.Halve(); err != nil {
			t.Fatal(err)
		}
	}
	ps, err := w.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

// shortRun scales the measurement protocol down to test length.
func shortRun(cfg config.Config, warm, measure int64) config.Config {
	cfg.Run.WarmupCycles = warm
	cfg.Run.MeasureCycles = measure
	cfg.S1.UpdatePeriod = measure / 15
	return cfg
}

// mesh256 is the 16x16 geometry point: 256 tiles, 4 corner MCs, a moderate
// mix of 16 apps scattered one per row on distinct columns (7 is coprime
// with 16). Scattering matters: stacking the apps in one column funnels all
// XY-routed responses through that column's vertical links and saturates
// them — a hotspot regime the steady-state model deliberately does not
// carry (see ARCHITECTURE.md, "known-bad regimes").
func mesh256() (config.Config, []trace.Profile) {
	cfg := config.Baseline32()
	cfg.Mesh = config.Mesh{Width: 16, Height: 16}
	apps := make([]trace.Profile, cfg.Mesh.Nodes())
	names := []string{"omnetpp", "sphinx3", "astar", "xalancbmk"}
	for y := 0; y < cfg.Mesh.Height; y++ {
		apps[y*cfg.Mesh.Width+(y*7)%cfg.Mesh.Width] = trace.MustLookup(names[y%len(names)])
	}
	return cfg, apps
}

func goldenScenarios(t testing.TB) []scenario {
	base := config.Baseline32()
	w7 := mustProfiles(t, 7, false)
	w1h := mustProfiles(t, 1, true)
	cfg256, apps256 := mesh256()
	return []scenario{
		{
			name: "alone_namd_32",
			cfg:  shortRun(base, 50_000, 200_000),
			apps: pad(base, []trace.Profile{trace.MustLookup("namd")}),
		},
		{
			name: "alone_mcf_32",
			cfg:  shortRun(base, 50_000, 200_000),
			apps: pad(base, []trace.Profile{trace.MustLookup("mcf")}),
		},
		{
			name: "saturated_w7_32",
			cfg:  shortRun(base, 100_000, 200_000),
			apps: pad(base, w7),
		},
		{
			name: "saturated_w7_32_s1",
			cfg:  shortRun(base.WithSchemes(true, false), 100_000, 200_000),
			apps: pad(base, w7),
		},
		{
			name: "saturated_w7_32_s1s2",
			cfg:  shortRun(base.WithSchemes(true, true), 100_000, 200_000),
			apps: pad(base, w7),
		},
		{
			name: "mixed_w1_half_16",
			cfg:  shortRun(config.Baseline16(), 100_000, 200_000),
			apps: pad(config.Baseline16(), w1h),
		},
		{
			name: "mesh_16x16_sparse",
			cfg:  shortRun(cfg256, 50_000, 120_000),
			apps: apps256,
		},
	}
}

// TestGoldenCrossCheck pins the calibrated band: on every canonical
// scenario the model's aggregate per-leg latencies stay within
// CalibratedBand of the cycle-accurate simulator, and the oracle raises no
// structural flags. Run with -v to see the per-leg comparison (the
// calibration workflow: tune calib.go until the table is inside the band).
func TestGoldenCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("golden cross-check simulates full scenarios")
	}
	for _, sc := range goldenScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			s, err := sim.New(sc.cfg, sc.apps)
			if err != nil {
				t.Fatal(err)
			}
			sum := s.Run().Summary()
			est, err := analytic.Predict(sc.cfg, sc.apps)
			if err != nil {
				t.Fatal(err)
			}
			rep := est.CrossCheck(sum, analytic.CalibratedBand)
			logReport(t, rep)
			if len(sum.MCs) > 0 {
				mc := sum.MCs[0]
				t.Logf("diag: model rowhit %.2f q %.1f svc %.1f util %.2f s1 %.2f s2 %.2f | sim rowhit %.2f q %.1f s1 %.2f s2 %.2f",
					est.RowHitRate, est.MCQueueDelay, est.MCServiceTime, est.LinkUtilization,
					est.S1TaggedFrac, est.S2TaggedFrac, mc.RowHitRate, mc.AvgQueue, sum.S1TaggedFrac, sum.S2TaggedFrac)
				var ipcM, ipcS float64
				for _, a := range est.Apps {
					ipcM += a.IPC
				}
				for _, a := range sum.Apps {
					ipcS += a.IPC
				}
				t.Logf("diag: model sumIPC %.2f | sim sumIPC %.2f", ipcM, ipcS)
			}
			if rep.MaxLegErr > analytic.CalibratedBand {
				t.Errorf("max per-leg error %.0f%% exceeds the %.0f%% calibrated band",
					100*rep.MaxLegErr, 100*analytic.CalibratedBand)
			}
			for _, f := range rep.Flags {
				if f.Kind == "dead-tile" {
					t.Errorf("oracle flagged a healthy run: %s %s: %s", f.Tile, f.App, f.Detail)
				}
			}
		})
	}
}

func logReport(t *testing.T, rep *analytic.Report) {
	t.Helper()
	for l := stats.Leg(0); l < stats.NumLegs; l++ {
		e := rep.Legs[l]
		t.Logf("%-9s model %8.1f  sim %8.1f  err %5.1f%%", l, e.Model, e.Sim, 100*e.RelErr)
	}
	t.Logf("%-9s model %8.1f  sim %8.1f  err %5.1f%%", "total", rep.Total.Model, rep.Total.Sim, 100*rep.Total.RelErr)
	t.Logf("%-9s model %8.1f  sim %8.1f  err %5.1f%%", "net", rep.Net.Model, rep.Net.Sim, 100*rep.Net.RelErr)
	for _, f := range rep.Flags {
		t.Logf("flag: %s %s %s: %s", f.Kind, f.Tile, f.App, f.Detail)
	}
}

// TestEstimateSummaryShape checks the -estimate rendering contract: the
// summary carries the Estimated marker, the simulator's field population
// (apps, MCs, percentile ordering), and zero simulated cycles are needed.
func TestEstimateSummaryShape(t *testing.T) {
	cfg := config.Baseline32()
	apps := pad(cfg, mustProfiles(t, 7, false))
	e, err := analytic.Predict(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	sum := e.Summary()
	if !sum.Estimated {
		t.Error("summary not marked estimated")
	}
	if len(sum.Apps) != 32 {
		t.Fatalf("%d apps, want 32", len(sum.Apps))
	}
	if len(sum.MCs) != cfg.DRAM.Controllers {
		t.Fatalf("%d MCs, want %d", len(sum.MCs), cfg.DRAM.Controllers)
	}
	for _, a := range sum.Apps {
		if a.IPC <= 0 || a.IPC > float64(cfg.CPU.Width) {
			t.Errorf("%s: IPC %v out of range", a.App, a.IPC)
		}
		if a.MeanLatency <= 0 {
			t.Errorf("%s: non-positive latency", a.App)
		}
		if !(a.P50Latency <= a.P90Latency && a.P90Latency <= a.P99Latency) {
			t.Errorf("%s: percentiles not ordered: %d/%d/%d", a.App, a.P50Latency, a.P90Latency, a.P99Latency)
		}
		var total float64
		for _, v := range a.Legs {
			if v <= 0 {
				t.Errorf("%s: non-positive leg in %v", a.App, a.Legs)
			}
			total += v
		}
		if d := total - a.MeanLatency; d > 1e-6 || d < -1e-6 {
			t.Errorf("%s: legs sum %v != mean latency %v", a.App, total, a.MeanLatency)
		}
	}
}

// TestPredictDeterministic: the fixed point must be reproducible.
func TestPredictDeterministic(t *testing.T) {
	cfg := config.Baseline32()
	apps := pad(cfg, mustProfiles(t, 3, false))
	a, err := analytic.Predict(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := analytic.Predict(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", a.Apps) != fmt.Sprintf("%+v", b.Apps) {
		t.Error("Predict is not deterministic")
	}
}

// TestPredictRejectsInvalid: config validation must run before any math.
func TestPredictRejectsInvalid(t *testing.T) {
	cfg := config.Baseline32()
	cfg.DRAM.Controllers = 3
	if _, err := analytic.Predict(cfg, nil); err == nil {
		t.Error("invalid config accepted")
	}
	cfg = config.Baseline32()
	if _, err := analytic.Predict(cfg, make([]trace.Profile, 100)); err == nil {
		t.Error("too many apps accepted")
	}
}

// TestPredictIdle: an empty workload yields an empty, finite estimate.
func TestPredictIdle(t *testing.T) {
	cfg := config.Baseline32()
	e, err := analytic.Predict(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Apps) != 0 || e.NetLatency != 0 {
		t.Errorf("idle estimate not empty: %+v", e)
	}
}
