package analytic

import (
	"fmt"
	"math"

	"nocmem/internal/config"
	"nocmem/internal/sim"
	"nocmem/internal/stats"
	"nocmem/internal/trace"
)

// Band constants for CrossCheck. The calibrated band is what the golden
// tests pin the model to on the canonical scenarios; the oracle band is
// looser — it is a tripwire for simulator bugs (silently dead tiles, mangled
// latency accounting), not a model-accuracy gate, so it must not fire on
// ordinary model error in untuned corners of the config space.
const (
	// CalibratedBand is the per-leg relative error the model holds on the
	// golden scenarios.
	CalibratedBand = 0.25
	// OracleBand is the divergence beyond which CrossCheck flags a leg as
	// suspicious in sweeps and benchmarks.
	OracleBand = 0.60
)

// LegError compares one latency component between model and simulator.
type LegError struct {
	Model  float64 `json:"model"`
	Sim    float64 `json:"sim"`
	RelErr float64 `json:"rel_err"`
}

// Flag is one suspicious divergence found by CrossCheck.
type Flag struct {
	Kind   string `json:"kind"` // "dead-tile", "leg", "total", "net"
	Tile   string `json:"tile,omitempty"`
	App    string `json:"app,omitempty"`
	Detail string `json:"detail"`
}

// Report is the outcome of one model-vs-simulator cross-check.
type Report struct {
	// Legs holds the off-chip-weighted aggregate per-leg comparison.
	Legs  [stats.NumLegs]LegError `json:"legs"`
	Total LegError                `json:"total"`
	Net   LegError                `json:"net"`

	MaxLegErr float64 `json:"max_leg_err"`
	Band      float64 `json:"band"`
	Flags     []Flag  `json:"flags,omitempty"`
}

// InBand reports whether every aggregate leg error is within the band and no
// structural flag fired.
func (r *Report) InBand() bool {
	return r.MaxLegErr <= r.Band && len(r.Flags) == 0
}

// relErr is a bounded symmetric relative error: |a-b| over the larger
// magnitude, so it lives in [0, 1] and treats model-high and model-low
// divergence alike. Near-zero pairs compare equal.
func relErr(a, b float64) float64 {
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1e-9)
	if den < 1 { // both under a cycle: noise
		return 0
	}
	return math.Abs(a-b) / den
}

// CrossCheck predicts the configuration's behavior and compares it against a
// simulated summary, flagging divergence beyond band (use OracleBand for
// bug-tripwire checks, CalibratedBand for model-accuracy gates). apps is the
// same tile->profile layout the simulation ran.
func CrossCheck(cfg config.Config, apps []trace.Profile, s sim.Summary, band float64) (*Report, error) {
	e, err := Predict(cfg, apps)
	if err != nil {
		return nil, err
	}
	return e.CrossCheck(s, band), nil
}

// CrossCheck compares an existing estimate against a simulated summary.
func (e *Estimate) CrossCheck(s sim.Summary, band float64) *Report {
	r := &Report{Band: band}

	// Aggregate per-leg latencies, weighted by off-chip traffic on each
	// side (sim by measured counts, model by predicted rates).
	var simW, modW float64
	var simLegs, modLegs [stats.NumLegs]float64
	var simTotal, modTotal float64
	simApps := make(map[string]sim.AppSummary, len(s.Apps))
	for _, a := range s.Apps {
		simApps[a.Tile] = a
		w := float64(a.OffChip)
		simW += w
		for l, v := range a.Legs {
			simLegs[l] += w * v
			simTotal += w * v
		}
	}
	for _, a := range e.Apps {
		w := a.OffChipRate
		modW += w
		for l, v := range a.Legs {
			modLegs[l] += w * v
			modTotal += w * v
		}
	}
	for l := range r.Legs {
		var sv, mv float64
		if simW > 0 {
			sv = simLegs[l] / simW
		}
		if modW > 0 {
			mv = modLegs[l] / modW
		}
		le := LegError{Model: mv, Sim: sv, RelErr: relErr(mv, sv)}
		r.Legs[l] = le
		if le.RelErr > r.MaxLegErr {
			r.MaxLegErr = le.RelErr
		}
		if le.RelErr > band {
			r.Flags = append(r.Flags, Flag{
				Kind:   "leg",
				Detail: fmt.Sprintf("%s: model %.0f vs sim %.0f cycles (%.0f%% apart)", stats.Leg(l), mv, sv, 100*le.RelErr),
			})
		}
	}
	var sv, mv float64
	if simW > 0 {
		sv = simTotal / simW
	}
	if modW > 0 {
		mv = modTotal / modW
	}
	r.Total = LegError{Model: mv, Sim: sv, RelErr: relErr(mv, sv)}
	r.Net = LegError{Model: e.NetLatency, Sim: s.NetAvgLatency, RelErr: relErr(e.NetLatency, s.NetAvgLatency)}
	if r.Net.RelErr > band && s.NetDelivered > 0 {
		r.Flags = append(r.Flags, Flag{
			Kind:   "net",
			Detail: fmt.Sprintf("network: model %.1f vs sim %.1f cycles (%.0f%% apart)", r.Net.Model, r.Net.Sim, 100*r.Net.RelErr),
		})
	}

	// Structural checks per app: a tile the model expects to make visible
	// progress but the simulator reports as silent is the signature of a
	// truncation-style bug (tiles that never tick), not model error.
	minCycles := float64(e.Cfg.Run.MeasureCycles)
	for _, a := range e.Apps {
		sa, ok := simApps[a.Tile]
		if !ok {
			r.Flags = append(r.Flags, Flag{
				Kind: "dead-tile", Tile: a.Tile, App: a.App,
				Detail: "tile missing from simulated summary",
			})
			continue
		}
		wantOffChip := a.OffChipRate * minCycles
		if a.IPC > 0.01 && sa.IPC == 0 {
			r.Flags = append(r.Flags, Flag{
				Kind: "dead-tile", Tile: a.Tile, App: a.App,
				Detail: fmt.Sprintf("model IPC %.2f but simulated IPC 0", a.IPC),
			})
			continue
		}
		if wantOffChip >= 50 && sa.OffChip == 0 {
			r.Flags = append(r.Flags, Flag{
				Kind: "dead-tile", Tile: a.Tile, App: a.App,
				Detail: fmt.Sprintf("model expects ~%.0f off-chip accesses, simulator recorded 0", wantOffChip),
			})
		}
	}
	return r
}
