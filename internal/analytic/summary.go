package analytic

import (
	"math"

	"nocmem/internal/sim"
)

// Summary renders the estimate in the exact JSON shape the simulator emits,
// with Estimated set so downstream tooling can tell the two apart. Counters
// are the model's rates scaled by the configured measurement window, and the
// latency percentiles come from the model's shifted-exponential round-trip
// approximation: the deterministic part of the trip is the shift, the
// queueing part the exponential tail.
func (e *Estimate) Summary() sim.Summary {
	cfg := e.Cfg
	cycles := cfg.Run.MeasureCycles
	s := sim.Summary{
		Cycles:         cycles,
		Estimated:      true,
		Scheme1Enabled: cfg.S1.Enabled,
		Scheme2Enabled: cfg.S2.Enabled,
		NetAvgLatency:  e.NetLatency,
		NetDelivered:   int64(e.pktRate * float64(cycles)),
		S1TaggedFrac:   e.S1TaggedFrac,
		S2TaggedFrac:   e.S2TaggedFrac,
	}

	var lamRead, lamWrite float64
	for _, a := range e.Apps {
		lamRead += a.OffChipRate
		lamWrite += a.OffChipRate * a.prof.StoreFrac

		// Shifted-exponential percentiles: the queueing share of the
		// trip is the tail scale, floored so percentiles never
		// collapse below the mean.
		q := math.Max(e.MCQueueDelay, 0.1*a.Total)
		base := a.Total - q
		pct := func(p float64) int64 {
			return int64(base + q*math.Log(1/(1-p/100)))
		}
		s.Apps = append(s.Apps, sim.AppSummary{
			Tile:        a.Tile,
			App:         a.App,
			IPC:         a.IPC,
			MLP:         a.MLP,
			MPKI:        a.prof.MPKI,
			OffChip:     int64(a.OffChipRate * float64(cycles)),
			L2Hits:      int64(a.L2HitRate * float64(cycles)),
			MeanLatency: a.Total,
			P50Latency:  pct(50),
			P90Latency:  pct(90),
			P99Latency:  pct(99),
			Legs:        a.Legs,
		})
	}

	ctls := float64(cfg.DRAM.Controllers)
	banks := float64(cfg.DRAM.BanksPerCtl)
	burst := float64(cfg.DRAM.TBurst * cfg.DRAM.BusMultiplier)
	rhoBank := math.Min((lamRead+lamWrite)/(ctls*banks)*e.MCServiceTime, 1)
	idle := make([]float64, cfg.DRAM.BanksPerCtl)
	for i := range idle {
		idle[i] = 1 - rhoBank
	}
	for i := 0; i < cfg.DRAM.Controllers; i++ {
		perCtlReq := (lamRead + lamWrite) / ctls
		s.MCs = append(s.MCs, sim.MCSummary{
			Reads:      int64(lamRead / ctls * float64(cycles)),
			Writes:     int64(lamWrite / ctls * float64(cycles)),
			RowHitRate: e.RowHitRate,
			// Little's law over the visible residence time.
			AvgQueue:     perCtlReq * (float64(cfg.DRAM.CtlLatency) + e.MCQueueDelay + e.MCServiceTime),
			BusBusy:      int64(perCtlReq * burst * float64(cycles)),
			BankIdleness: append([]float64(nil), idle...),
		})
	}
	return s
}
