package analytic

// Calibration holds the model's free constants. The structural terms of the
// model (hop counts, pipeline depths, DRAM timings) come straight from
// config.Config; these constants absorb the second-order effects a
// closed-form model cannot carry (VC arbitration conflicts, MSHR pressure,
// refresh, write-drain bursts). They were fitted once against the simulator
// on the canonical golden scenarios (TestGoldenCrossCheck) and are pinned by
// the <=25% per-leg band asserted there; retune them only together with
// those tests.
type Calibration struct {
	// Fixed-point iteration.
	MaxIterations int
	Tolerance     float64 // IPC convergence threshold
	Damping       float64 // new-iterate weight in (0, 1]

	// Network.
	HopService       float64 // mean link-serialization time of a packet, cycles
	ReqQueueWeight   float64 // per-hop wait weight, request vnet (adds MSHR/writeback pressure)
	RespQueueWeight  float64 // per-hop wait weight, response vnet
	HotChannelFactor float64 // center-channel load vs mean-link load (XY mesh)
	MaxUtilization   float64 // saturation clamp for every rho
	S1HighShare      float64 // share of S1-tagged traffic acting high-class
	S2HighShare      float64 // share of S2-tagged traffic acting high-class
	NetFixed         float64 // per-packet constant (inject + eject), cycles
	SelfInjBurst     float64 // injection serialization per outstanding own miss, cycles
	// S2Relief scales down the L2->MC per-hop wait by the Scheme-2 tagged
	// fraction: steering tagged requests toward idle banks relieves
	// head-of-line blocking on the controller approach links, which a
	// work-conserving single-queue model cannot show.
	S2Relief float64

	// L2 bank pipeline.
	L2QueueWeight float64
	// Inbox clump wait: saturating at L2FrontEndMax cycles with scale
	// L2FrontEndScale in per-bank arrivals/cycle.
	L2FrontEndMax   float64
	L2FrontEndScale float64
	// Warm (L2-hit) round trips expose only this share of contention.
	WarmQueueShare float64
	// S1TailScale sets the exponential tail of the so-far delay as a
	// fraction of the memory leg.
	S1TailScale float64

	// DRAM.
	BankQueueWeight float64 // scales the M/D/1 bank wait
	RowInterference float64 // row-closure sensitivity to interfering traffic
	MemFixed        float64 // per-request constant at the MC, cycles

	// Per-leg fixed offsets (injection/ejection, MSHR handling), cycles.
	Leg1Fixed float64
	Leg2Fixed float64
	Leg4Fixed float64
	Leg5Fixed float64
	WarmFixed float64

	// Core.
	BaseCPI float64 // non-memory CPI beyond 1/Width
	// MLPBoost corrects the window-occupancy MLP estimate upward: the
	// simulator overlaps misses beyond plain window share (stalled-window
	// drain keeps MSHRs fuller than the issue-rate product implies).
	MLPBoost float64
}

// DefaultCalibration is the constant set fitted against the cycle-accurate
// simulator; see TestGoldenCrossCheck for the scenarios it is pinned on.
var DefaultCalibration = Calibration{
	MaxIterations: 200,
	Tolerance:     1e-6,
	Damping:       0.5,

	HopService:       3,
	ReqQueueWeight:   2.3,
	RespQueueWeight:  0.8,
	HotChannelFactor: 2.0,
	MaxUtilization:   0.95,
	S1HighShare:      1.0,
	S2HighShare:      1.0,
	NetFixed:         4,
	SelfInjBurst:     0.7,
	S2Relief:         0.8,

	L2QueueWeight:   1.0,
	L2FrontEndMax:   40,
	L2FrontEndScale: 0.02,
	WarmQueueShare:  0.2,
	S1TailScale:     0.6,

	BankQueueWeight: 1.0,
	RowInterference: 1.0,
	MemFixed:        0,

	Leg1Fixed: 4,
	Leg2Fixed: 4,
	Leg4Fixed: 3,
	Leg5Fixed: 3,
	WarmFixed: 8,

	BaseCPI:  0.05,
	MLPBoost: 1.8,
}
