// Package analytic is the closed-form companion of the cycle-accurate
// simulator: a queueing-network estimator that maps a config.Config plus the
// workload's intensity profiles to per-application IPC and the five per-leg
// latencies of Figure 2 — in microseconds instead of seconds, without
// executing a single simulated cycle.
//
// The model follows Mandal et al. ("Analytical Performance Models for NoCs
// with Multiple Priority Traffic Classes"): mesh routers are priority queues
// whose high class is the Scheme-1/2-tagged traffic, and each DRAM bank is an
// M/D/1 server with a row-hit/row-miss service split (the parallelism-aware
// DRAM treatment of Yun et al.). A damped fixed-point iteration couples the
// per-app IPC to the queueing delays its own traffic induces:
//
//	IPC -> miss arrival rates -> link/bank utilization -> queueing delays
//	    -> per-leg latency -> effective stall per instruction -> IPC
//
// Accuracy is calibrated against the simulator on the canonical scenarios
// (alone, saturated, mixed, schemes on/off, 8x8 and 16x16 meshes) and pinned
// by the golden tests in this package; see calib.go for the constants and
// ARCHITECTURE.md for assumptions and known-bad regimes.
package analytic

import (
	"fmt"
	"math"

	"nocmem/internal/config"
	"nocmem/internal/stats"
	"nocmem/internal/trace"
)

// AppEstimate is the model's prediction for one application.
type AppEstimate struct {
	Tile string
	App  string

	IPC float64
	MLP float64 // average outstanding L1 misses (Little's law)

	// Legs are the predicted per-leg delays of an off-chip access, in CPU
	// cycles — the same five paths sim.AppSummary.Legs reports.
	Legs  [stats.NumLegs]float64
	Total float64 // sum of Legs: mean end-to-end off-chip latency

	WarmLatency float64 // mean L1-miss/L2-hit round trip

	OffChipRate float64 // off-chip demand reads per cycle
	L2HitRate   float64 // L2-hit demand accesses per cycle

	tile int
	prof trace.Profile
}

// Estimate is the closed-form prediction for one full configuration.
type Estimate struct {
	Cfg  config.Config
	Apps []AppEstimate

	// MCQueueDelay is the mean DRAM bank queueing delay per request beyond
	// the fixed controller latency, in CPU cycles.
	MCQueueDelay float64
	// MCServiceTime is the mean DRAM access time (row-hit/miss weighted
	// plus burst), in CPU cycles.
	MCServiceTime float64
	RowHitRate    float64

	// NetLatency is the packet-weighted mean network traversal latency,
	// mirroring sim's Net.AvgLatency.
	NetLatency float64
	// LinkUtilization is the mean directed-link flit utilization.
	LinkUtilization float64

	S1TaggedFrac float64
	S2TaggedFrac float64

	Iterations int

	pktRate float64 // network packets injected per cycle
}

// Predict runs the fixed-point model. apps[i] is the profile on tile i
// (missing or empty-name entries leave the tile idle), exactly as
// sim.New/nocmem.RunApps lay out applications.
func Predict(cfg config.Config, apps []trace.Profile) (*Estimate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("analytic: %w", err)
	}
	nodes := cfg.Mesh.Nodes()
	if len(apps) > nodes {
		return nil, fmt.Errorf("analytic: %d applications for %d tiles", len(apps), nodes)
	}
	for i, p := range apps {
		if p.Name == "" {
			continue
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("analytic: tile %d: %w", i, err)
		}
	}

	e := &Estimate{Cfg: cfg}
	for i, p := range apps {
		if p.Name == "" {
			continue
		}
		e.Apps = append(e.Apps, AppEstimate{
			Tile: fmt.Sprintf("%d (%d,%d)", i, i%cfg.Mesh.Width, i/cfg.Mesh.Width),
			App:  p.Name,
			tile: i,
			prof: p,
		})
	}
	if len(e.Apps) == 0 {
		return e, nil
	}

	m := newModel(cfg, e.Apps)
	m.solve(e)
	return e, nil
}

// model carries the geometry and derived constants of one prediction.
type model struct {
	cfg config.Config
	c   Calibration

	hopLat   float64   // per-hop header pipeline latency, CPU cycles
	h1       []float64 // per app: mean hops tile -> uniform L2 bank
	h2       float64   // mean hops uniform tile -> owning MC corner
	links    float64   // directed mesh links
	respFl   float64   // flits of a data-bearing message
	banks    float64   // total DRAM banks
	ctls     float64   // memory controllers
	interlvd float64   // per-controller lines sharing one bank consecutively
}

func newModel(cfg config.Config, apps []AppEstimate) *model {
	m := &model{
		cfg:      cfg,
		c:        DefaultCalibration,
		hopLat:   float64(cfg.NoC.Pipeline),
		respFl:   float64(cfg.ResponseFlits()),
		banks:    float64(cfg.DRAM.Controllers * cfg.DRAM.BanksPerCtl),
		ctls:     float64(cfg.DRAM.Controllers),
		interlvd: float64(cfg.DRAM.BankInterleaveLines),
	}
	w, h := cfg.Mesh.Width, cfg.Mesh.Height
	m.links = float64(2*(w-1)*h + 2*(h-1)*w)

	// Mean XY hop counts. The S-NUCA interleave spreads lines uniformly
	// over all tiles, and the controller interleave spreads off-chip lines
	// uniformly over the corner MCs, so both are exact expectations.
	hop := func(a, b int) float64 {
		ax, ay := a%w, a/w
		bx, by := b%w, b/w
		return math.Abs(float64(ax-bx)) + math.Abs(float64(ay-by))
	}
	nodes := cfg.Mesh.Nodes()
	m.h1 = make([]float64, len(apps))
	for ai, a := range apps {
		var sum float64
		for d := 0; d < nodes; d++ {
			sum += hop(a.tile, d)
		}
		m.h1[ai] = sum / float64(nodes)
	}
	var sum float64
	for t := 0; t < nodes; t++ {
		for _, mc := range cfg.MCNodes() {
			sum += hop(t, mc)
		}
	}
	m.h2 = sum / float64(nodes*len(cfg.MCNodes()))
	return m
}

// solve runs the damped fixed-point iteration to convergence.
func (m *model) solve(e *Estimate) {
	cfg := m.cfg
	apps := e.Apps
	mult := float64(cfg.DRAM.BusMultiplier)

	// Per-instruction rates are fixed by the profiles; only IPC iterates.
	mpi := make([]float64, len(apps)) // off-chip misses / instruction
	wpi := make([]float64, len(apps)) // L2 hits / instruction
	for i, a := range apps {
		mpi[i] = a.prof.MPKI / 1000
		wpi[i] = a.prof.WarmAPKI / 1000
		apps[i].IPC = 1 // starting guess
	}

	var it int
	for it = 0; it < m.c.MaxIterations; it++ {
		// --- Arrival rates from the current IPC guesses ---
		var lamRead, lamWrite, lamWarm float64 // per cycle, system-wide
		miss := make([]float64, len(apps))
		warm := make([]float64, len(apps))
		for i, a := range apps {
			miss[i] = a.IPC * mpi[i]
			warm[i] = a.IPC * wpi[i]
			lamRead += miss[i]
			lamWarm += warm[i]
			lamWrite += miss[i] * a.prof.StoreFrac
		}

		// --- Network: link utilization and per-hop queueing ---
		// Flit-hops per cycle over all directed links. Demand traffic:
		// request (1 flit) tile->bank, request bank->MC, response (R
		// flits) MC->bank, response bank->tile; warm traffic: request +
		// response tile<->bank; writebacks ride the request vnet with R
		// flits (L1->L2 at the store rate of all misses, L2->MC at the
		// off-chip store rate).
		var flitHops float64
		h1bar := 0.0
		for i := range apps {
			h1 := m.h1[i]
			h1bar += h1 * (miss[i] + warm[i])
			flitHops += miss[i] * (h1 + m.h2 + m.respFl*(m.h2+h1))
			flitHops += warm[i] * (h1 + m.respFl*h1)
			wb := (miss[i] + warm[i]) * a0(apps[i].prof.StoreFrac)
			flitHops += wb * m.respFl * h1                                 // L1 dirty evictions
			flitHops += miss[i] * apps[i].prof.StoreFrac * m.respFl * m.h2 // DRAM writes
		}
		if t := lamRead + lamWarm; t > 0 {
			h1bar /= t
		}
		util := flitHops / m.links
		uEff := math.Min(m.c.HotChannelFactor*util, m.c.MaxUtilization)

		// Priority classes (Mandal et al.): the tagged traffic is the
		// high class, split per virtual network — Scheme-2 tags requests,
		// Scheme-1 tags responses, so each vnet carries only its own
		// high-class share. Estimate the tagged fractions from the
		// current latency state, then split the per-hop M/G/1 wait.
		s1Frac, s2Frac := m.taggedFractions(apps, miss)
		reqHigh := 0.0
		respHigh := 0.0
		if cfg.S2.Enabled {
			reqHigh += m.c.S2HighShare * s2Frac
		}
		if cfg.S1.Enabled {
			respHigh += m.c.S1HighShare * s1Frac
		}
		if cfg.AppAwareNet {
			reqHigh += 0.5
			respHigh += 0.5
		}
		// Mean serialization of a packet on a link, flit cycles. The
		// request virtual network also absorbs MSHR backpressure and the
		// multi-flit writeback traffic, so its queueing weight is fitted
		// separately (and higher) than the response network's.
		sBar := m.c.HopService
		mix := func(qw, tagFrac, highShare float64, tagged bool) float64 {
			rhoH := uEff * math.Min(highShare, 0.9)
			wHigh := qw * sBar * uEff / (1 - rhoH)
			wLow := qw * sBar * uEff / ((1 - rhoH) * (1 - uEff))
			if cfg.AppAwareNet {
				return 0.5*wHigh + 0.5*wLow
			}
			if !tagged {
				return wLow
			}
			return tagFrac*wHigh + (1-tagFrac)*wLow
		}
		wReq := mix(m.c.ReqQueueWeight, s2Frac, reqHigh, cfg.S2.Enabled)
		wResp := mix(m.c.RespQueueWeight, s1Frac, respHigh, cfg.S1.Enabled)
		// Scheme-2 spreads requests toward idle banks, which thins the
		// head-of-line blocking on the controller approach links; the
		// simulator's mean L2->MC leg drops accordingly. Applied to that
		// leg only (the L1->L2 leg does not approach the controllers).
		wReqMC := wReq
		if cfg.S2.Enabled {
			wReqMC = wReq * (1 - m.c.S2Relief*s2Frac)
		}

		// --- L2 bank acceptance (one request per cycle per bank) ---
		// Demand requests, fills, and writebacks all pass the pipeline.
		l2Arr := (2*lamRead + lamWarm + (lamRead+lamWarm)*storeBar(apps, miss, warm)) / float64(cfg.Mesh.Nodes())
		l2Arr = math.Min(l2Arr, m.c.MaxUtilization)
		wL2 := l2Arr / (2 * (1 - l2Arr)) * m.c.L2QueueWeight
		// The L1->L2 leg is stamped at inbox dispatch, so it absorbs the
		// bank front-end contention of MLP-clumped arrivals. The wait is
		// burst-dominated: it saturates once the banks see steady clumped
		// traffic instead of growing with the mean arrival rate.
		wFrontEnd := m.c.L2FrontEndMax * (1 - math.Exp(-l2Arr/m.c.L2FrontEndScale))

		// --- DRAM banks: M/D/1 with row-hit/miss service split ---
		pHit := m.rowHitRate(apps, miss, lamRead+lamWrite)
		accessHit := float64(cfg.DRAM.TCAS) * mult
		accessIdle := float64(cfg.DRAM.TActivate+cfg.DRAM.TCAS) * mult
		accessConf := float64(cfg.DRAM.TPrecharge+cfg.DRAM.TActivate+cfg.DRAM.TCAS) * mult
		burst := float64(cfg.DRAM.TBurst) * mult

		lamBank := (lamRead + lamWrite) / m.banks
		// Open-page steady state: a row miss finds the previous row still
		// open (conflict: precharge + activate) unless the bank sat
		// untouched across a refresh, which closes it (idle: activate
		// only). The idle probability is the chance of fewer than one
		// arrival per refresh period at the bank.
		pIdle := 0.0
		if cfg.DRAM.RefreshPeriod > 0 {
			pIdle = math.Exp(-lamBank * float64(cfg.DRAM.RefreshPeriod))
		}
		accessMiss := pIdle*accessIdle + (1-pIdle)*accessConf
		sAccess := pHit*accessHit + (1-pHit)*accessMiss
		occ := sAccess + burst
		rhoBank := math.Min(lamBank*occ, m.c.MaxUtilization)
		wqBank := m.c.BankQueueWeight * rhoBank * occ / (2 * (1 - rhoBank))
		// Shared channel bus per controller.
		rhoBus := math.Min((lamRead+lamWrite)/m.ctls*burst, m.c.MaxUtilization)
		wqBus := rhoBus * burst / (2 * (1 - rhoBus))
		// The queue wait runs concurrently with the fixed controller
		// readiness latency; only the excess is visible.
		ctl := float64(cfg.DRAM.CtlLatency)
		memWait := ctl + softExcess(wqBank+wqBus, ctl)
		memLeg := memWait + sAccess + burst + m.c.MemFixed

		// --- Per-leg latencies and the IPC update ---
		maxDelta := 0.0
		for i := range apps {
			h1 := m.h1[i]
			legs := [stats.NumLegs]float64{
				stats.LegL1ToL2: float64(cfg.L1.Latency) + h1*(m.hopLat+wReq) + wFrontEnd + m.c.Leg1Fixed,
				stats.LegL2ToMC: float64(cfg.L2.Latency) + wL2 + m.h2*(m.hopLat+wReqMC) + m.c.Leg2Fixed,
				stats.LegMemory: memLeg,
				stats.LegMCToL2: m.h2*(m.hopLat+wResp) + (m.respFl - 1) + m.c.Leg4Fixed,
				stats.LegL2ToL1: float64(cfg.L2.Latency) + wL2 + h1*(m.hopLat+wResp) + (m.respFl - 1) + m.c.Leg5Fixed,
			}
			total := 0.0
			for _, v := range legs {
				total += v
			}
			// Warm round trips overlap queueing much better than
			// off-chip misses (short, pipelined, no DRAM leg), so only
			// a fraction of the contention delay is exposed.
			warmLat := float64(cfg.L1.Latency) + float64(cfg.L2.Latency) +
				h1*2*m.hopLat + (m.respFl - 1) + m.c.WarmFixed +
				m.c.WarmQueueShare*(h1*(wReq+wResp)+2*wL2+wFrontEnd)

			p := apps[i].prof
			wEff := math.Min(float64(cfg.CPU.WindowSize), float64(cfg.CPU.LSQSize)/p.MemFrac)
			mlpMem := clamp(m.c.MLPBoost*wEff*mpi[i], 1, float64(cfg.CPU.MaxOutMiss))
			mlpWarm := clamp(m.c.MLPBoost*wEff*wpi[i], 1, float64(cfg.CPU.MaxOutMiss))
			// A burst of mlpMem misses serializes at the core's single
			// injection port; the mean request waits behind half of it.
			legs[stats.LegL1ToL2] += m.c.SelfInjBurst * (mlpMem - 1)
			total += m.c.SelfInjBurst * (mlpMem - 1)
			cpi := 1/float64(cfg.CPU.Width) + m.c.BaseCPI +
				mpi[i]*total/mlpMem + wpi[i]*warmLat/mlpWarm
			ipc := math.Min(float64(cfg.CPU.Width), 1/cpi)

			next := (1-m.c.Damping)*apps[i].IPC + m.c.Damping*ipc
			if d := math.Abs(next - apps[i].IPC); d > maxDelta {
				maxDelta = d
			}
			apps[i].IPC = next
			apps[i].Legs = legs
			apps[i].Total = total
			apps[i].WarmLatency = warmLat
			apps[i].OffChipRate = apps[i].IPC * mpi[i]
			apps[i].L2HitRate = apps[i].IPC * wpi[i]
			apps[i].MLP = math.Min(
				apps[i].IPC*(mpi[i]*total+wpi[i]*warmLat),
				float64(cfg.CPU.MaxOutMiss))
		}

		e.MCQueueDelay = wqBank + wqBus
		e.MCServiceTime = sAccess + burst
		e.RowHitRate = pHit
		e.LinkUtilization = util
		e.S1TaggedFrac = 0
		e.S2TaggedFrac = 0
		if cfg.S1.Enabled {
			e.S1TaggedFrac = s1Frac
		}
		if cfg.S2.Enabled {
			e.S2TaggedFrac = s2Frac
		}
		e.NetLatency, e.pktRate = m.netLatency(apps, miss, warm, wReq, wResp)

		if maxDelta < m.c.Tolerance {
			it++
			break
		}
	}
	e.Iterations = it
}

// taggedFractions estimates which share of traffic the schemes expedite.
//
// Scheme-1 tags a response when its so-far delay at the MC exceeds
// ThresholdFactor x the app's average round trip. Approximating the so-far
// delay as a deterministic base plus an exponential queueing tail, the tail
// probability is exp(-(tau-B)/Q).
//
// Scheme-2 tags a request when the injecting L2 tile sent fewer than
// IdleThreshold requests to the target bank within HistoryWindow. The
// history tables live at the L2 tiles and S-NUCA spreads every app's lines
// across all of them, so one (tile, bank) pair sees the whole mesh's miss
// traffic thinned by nodes x banks — a Poisson count gives the idle
// probability. A streaming burst revisits the same pair while its bank
// mapping holds, and only the first request of each revisit run finds the
// pair idle.
func (m *model) taggedFractions(apps []AppEstimate, miss []float64) (s1, s2 float64) {
	var wSum, tagged1, tagged2 float64
	var lamMiss float64
	for i := range apps {
		lamMiss += miss[i]
	}
	nodes := float64(m.cfg.Mesh.Nodes())
	pairMu := lamMiss * float64(m.cfg.S2.HistoryWindow) / (nodes * m.banks)
	pairIdle := poissonCDF(m.cfg.S2.IdleThreshold-1, pairMu)
	for i, a := range apps {
		if miss[i] <= 0 {
			continue
		}
		// The queueing tail scale is a fraction of the memory leg (the
		// rest of the trip is near-deterministic).
		q := math.Max(m.c.S1TailScale*a.Legs[stats.LegMemory], 1)
		// So-far delay is measured after DRAM; its mean is close to the
		// full round trip minus the return legs. Threshold compares
		// against the full-trip average.
		tau := m.cfg.S1.ThresholdFactor * a.Total
		soFarMean := a.Total - a.Legs[stats.LegMCToL2] - a.Legs[stats.LegL2ToL1]
		var p1 float64
		if tau <= soFarMean {
			p1 = 1
		} else {
			p1 = math.Exp(-(tau - soFarMean) / q)
		}
		// A streaming burst returns to the same (tile, bank) pair every
		// Nodes lines while its bank mapping holds, so the app's own
		// predecessor suppresses the tag — but only if that revisit
		// lands inside the lookback window.
		ownMu := miss[i] * float64(m.cfg.S2.HistoryWindow) / nodes *
			clamp(float64(a.prof.RowBurst)/nodes, 0, 1)
		p2 := pairIdle * math.Exp(-ownMu)
		tagged1 += miss[i] * p1
		tagged2 += miss[i] * p2
		wSum += miss[i]
	}
	if wSum == 0 {
		return 0, 0
	}
	return tagged1 / wSum, tagged2 / wSum
}

// rowHitRate predicts the FR-FCFS row-buffer hit rate: each app's streaming
// burst leaves a run of same-row accesses at one bank (the intrinsic hit
// run), eroded by interfering row closures from the other apps' traffic to
// the same bank.
func (m *model) rowHitRate(apps []AppEstimate, miss []float64, lamTotal float64) float64 {
	var wSum, hit float64
	for i, a := range apps {
		if miss[i] <= 0 {
			continue
		}
		// Consecutive lines rotate controllers first, so a RowBurst-line
		// stream leaves runs of RowBurst/ctls same-bank lines, capped by
		// the bank-interleave granularity.
		perCtl := math.Max(1, float64(a.prof.RowBurst)/m.ctls)
		run := math.Min(perCtl, m.interlvd)
		intrinsic := (run - 1) / run
		// Two same-run accesses at a bank are separated by the app's
		// stream round-robin and the controller rotation; any interfering
		// access in that gap (other apps, or the app's own other
		// streams) opens a different row and kills the hit.
		streams := math.Max(float64(a.prof.Streams), 1)
		gap := streams * m.ctls / math.Max(miss[i], 1e-9)
		interferers := math.Max(lamTotal-miss[i]/streams, 0) / m.banks
		survive := math.Exp(-m.c.RowInterference * interferers * gap)
		p := intrinsic * survive
		hit += miss[i] * p
		wSum += miss[i]
	}
	if wSum == 0 {
		return 0
	}
	return hit / wSum
}

// netLatency returns the packet-weighted mean network traversal time and the
// total packet injection rate.
func (m *model) netLatency(apps []AppEstimate, miss, warm []float64, wReq, wResp float64) (float64, float64) {
	var pkts, lat float64
	for i := range apps {
		h1 := m.h1[i]
		// request, req to MC, response, response to L1 / warm pair
		add := func(rate, hops, flits, w float64) {
			if rate <= 0 {
				return
			}
			pkts += rate
			lat += rate * (hops*(m.hopLat+w) + (flits - 1) + m.c.NetFixed)
		}
		add(miss[i], h1, 1, wReq)
		add(miss[i], m.h2, 1, wReq)
		add(miss[i], m.h2, m.respFl, wResp)
		add(miss[i], h1, m.respFl, wResp)
		add(warm[i], h1, 1, wReq)
		add(warm[i], h1, m.respFl, wResp)
		wb := (miss[i] + warm[i]) * apps[i].prof.StoreFrac
		add(wb, h1, m.respFl, wReq)
		add(miss[i]*apps[i].prof.StoreFrac, m.h2, m.respFl, wReq)
	}
	if pkts == 0 {
		return 0, 0
	}
	return lat / pkts, pkts
}

// storeBar is the miss-weighted mean store fraction, used for the writeback
// arrival estimate at the L2 banks.
func storeBar(apps []AppEstimate, miss, warm []float64) float64 {
	var w, s float64
	for i, a := range apps {
		t := miss[i] + warm[i]
		w += t
		s += t * a.prof.StoreFrac
	}
	if w == 0 {
		return 0
	}
	return s / w
}

// softExcess returns how much of wait is expected to exceed the overlap
// window, treating the wait as exponentially distributed: E[max(0, W-c)] =
// wait * exp(-c/wait).
func softExcess(wait, c float64) float64 {
	if wait <= 0 {
		return 0
	}
	return wait * math.Exp(-c/wait)
}

// poissonCDF returns P(N <= k) for N ~ Poisson(mu).
func poissonCDF(k int, mu float64) float64 {
	if k < 0 {
		return 0
	}
	term := math.Exp(-mu)
	sum := term
	for i := 1; i <= k; i++ {
		term *= mu / float64(i)
		sum += term
	}
	return math.Min(sum, 1)
}

func clamp(v, lo, hi float64) float64 { return math.Max(lo, math.Min(v, hi)) }

// a0 keeps a store fraction non-negative (profiles allow 0).
func a0(v float64) float64 { return math.Max(v, 0) }
