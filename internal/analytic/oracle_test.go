package analytic_test

import (
	"testing"

	"nocmem/internal/analytic"
	"nocmem/internal/sim"
)

// TestOracleFlagsTruncatedTiles is the divergence oracle's mutation test: it
// re-introduces the old allMask(64) active-set truncation (tiles >= 64 never
// tick) behind the DebugTruncateActiveWords test hook and asserts the
// model-vs-sim cross-check flags the silently dead tiles, while the same
// scenario run cleanly raises no such flag. The oracle must separate "the
// simulator silently lost tiles" from ordinary model error, so the truncated
// run is checked at the loose OracleBand.
func TestOracleFlagsTruncatedTiles(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle mutation test simulates a 16x16 mesh")
	}
	cfg, apps := mesh256()
	cfg = shortRun(cfg, 20_000, 60_000)

	run := func(truncate bool) *analytic.Report {
		t.Helper()
		s, err := sim.New(cfg, apps)
		if err != nil {
			t.Fatal(err)
		}
		if truncate {
			s.DebugTruncateActiveWords(1)
		}
		rep, err := analytic.CrossCheck(cfg, apps, s.Run().Summary(), analytic.OracleBand)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	clean := run(false)
	for _, f := range clean.Flags {
		if f.Kind == "dead-tile" {
			t.Errorf("oracle flagged a healthy run: %s %s: %s", f.Tile, f.App, f.Detail)
		}
	}

	bad := run(true)
	var dead int
	for _, f := range bad.Flags {
		if f.Kind == "dead-tile" {
			t.Logf("flagged: %s %s: %s", f.Tile, f.App, f.Detail)
			dead++
		}
	}
	// mesh256 scatters one app per row; rows 4..15 live on tiles >= 64 and
	// stop ticking under the truncation.
	if dead < 10 {
		t.Fatalf("oracle found %d dead tiles, want >= 10 (flags: %+v)", dead, bad.Flags)
	}
	if bad.InBand() {
		t.Error("truncated run still reports InBand")
	}
}
