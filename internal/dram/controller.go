package dram

import (
	"fmt"

	"nocmem/internal/config"
)

// Request is one memory access handed to a controller.
type Request struct {
	Addr    uint64
	IsWrite bool
	Payload any // opaque transaction handle owned by the caller

	// Sensitive marks requests of latency-sensitive applications; only
	// the AppAwareMem scheduling policy consults it.
	Sensitive bool

	// Filled in by the controller.
	Bank        int
	Row         int64
	EnqueuedAt  int64 // cycle the request entered the controller
	ScheduledAt int64 // cycle the bank started serving it
	DoneAt      int64 // cycle service (including data transfer) finished
}

// QueueDelay returns the cycles the request waited before service.
func (r *Request) QueueDelay() int64 { return r.ScheduledAt - r.EnqueuedAt }

// ServiceDelay returns the cycles the DRAM spent serving the request.
func (r *Request) ServiceDelay() int64 { return r.DoneAt - r.ScheduledAt }

// TotalDelay returns the full memory delay (queueing + service), which is
// what the paper's "Mem" leg measures and what the MC adds to a response's
// age field.
func (r *Request) TotalDelay() int64 { return r.DoneAt - r.EnqueuedAt }

// Stats counts controller events since the last reset.
type Stats struct {
	Reads        int64
	Writes       int64
	RowHits      int64
	RowMisses    int64 // closed-row activations
	RowConflicts int64 // wrong-row precharge+activate
	QueueWait    int64 // accumulated queueing cycles
	Refreshes    int64
	BusBusy      int64 // cycles the shared channel bus carried data
	QueueDepth   int64 // sum of per-sample pending-request counts
	QueueSamples int64
}

// RowHitRate returns the fraction of accesses served from an open row.
func (s Stats) RowHitRate() float64 {
	total := s.RowHits + s.RowMisses + s.RowConflicts
	if total == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(total)
}

// AvgQueueDepth returns the average number of pending requests per sample
// across the whole controller.
func (s Stats) AvgQueueDepth() float64 {
	if s.QueueSamples == 0 {
		return 0
	}
	return float64(s.QueueDepth) / float64(s.QueueSamples)
}

type bank struct {
	openRow   int64 // -1 = closed (precharged)
	busyUntil int64 // bank occupied through this cycle (exclusive)
	reads     []*Request
	writes    []*Request
	inFlight  *Request

	idleSamples int64
	idleHits    int64
}

func (b *bank) pending() int { return len(b.reads) + len(b.writes) }

// Controller models one memory channel: a set of DRAM banks behind a shared
// data bus, scheduled with FR-FCFS (row hits first, then oldest), plus
// periodic refresh. Completion is reported through a callback so the caller
// (the simulator's MC node) can inject the response into the network.
type Controller struct {
	id    int
	cfg   config.DRAM
	banks []bank

	busFreeAt   int64
	nextRefresh int64

	// starveLimit forces oldest-first scheduling for any request that has
	// waited this long, bounding FR-FCFS starvation.
	starveLimit int64

	onComplete func(*Request, int64)
	stats      Stats

	sampleEvery int64
	nextSample  int64
	idleSeries  func(cycle int64, avgIdle float64)

	// ticks counts Tick invocations; ffTicks counts the subset made by
	// FastForward. The split lets benchmarks show how much controller work
	// the write-drain fast-forward absorbs without executing global cycles.
	ticks   int64
	ffTicks int64
}

// NewController builds a channel controller. onComplete is invoked from Tick
// for every finished request (reads and writes alike), with the current
// cycle.
func NewController(cfg config.DRAM, id int, onComplete func(*Request, int64)) *Controller {
	c := &Controller{
		id:          id,
		cfg:         cfg,
		banks:       make([]bank, cfg.BanksPerCtl),
		starveLimit: cfg.StarveLimit,
		onComplete:  onComplete,
		sampleEvery: 100,
	}
	if c.starveLimit == 0 {
		c.starveLimit = 1_500
	}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	if cfg.RefreshPeriod > 0 {
		c.nextRefresh = cfg.RefreshPeriod
	}
	return c
}

// ID returns the controller's channel index.
func (c *Controller) ID() int { return c.id }

// SetIdleSeries registers a sink receiving the controller-average idleness
// sample at every monitoring interval (used by Figure 14).
func (c *Controller) SetIdleSeries(f func(cycle int64, avgIdle float64)) { c.idleSeries = f }

// Enqueue accepts a request at the given cycle. The bank and row are decoded
// by the caller via AddrMap and must be pre-filled in Bank/Row. The request
// becomes schedulable after the fixed controller latency.
func (c *Controller) Enqueue(r *Request, now int64) error {
	if r.Bank < 0 || r.Bank >= len(c.banks) {
		return fmt.Errorf("dram: controller %d has no bank %d", c.id, r.Bank)
	}
	b := &c.banks[r.Bank]
	if c.cfg.QueueCap > 0 && b.pending() >= c.cfg.QueueCap {
		return fmt.Errorf("dram: controller %d bank %d queue full", c.id, r.Bank)
	}
	r.EnqueuedAt = now
	if r.IsWrite {
		b.writes = append(b.writes, r)
	} else {
		b.reads = append(b.reads, r)
	}
	return nil
}

// QueueLen returns the number of waiting (unscheduled) requests at a bank.
func (c *Controller) QueueLen(bankIdx int) int { return c.banks[bankIdx].pending() }

// PendingAll returns the total number of waiting requests across banks.
func (c *Controller) PendingAll() int {
	n := 0
	for i := range c.banks {
		n += c.banks[i].pending()
		if c.banks[i].inFlight != nil {
			n++
		}
	}
	return n
}

// memCycles converts memory-controller cycles to CPU cycles.
func (c *Controller) memCycles(n int) int64 { return int64(n) * int64(c.cfg.BusMultiplier) }

// Tick advances the controller by one CPU cycle: finishes in-flight
// requests, refreshes if due, schedules newly-ready requests with FR-FCFS,
// and samples bank idleness.
func (c *Controller) Tick(now int64) {
	c.ticks++
	if c.nextRefresh > 0 && now >= c.nextRefresh {
		c.refresh(now)
		c.nextRefresh = now + c.cfg.RefreshPeriod
	}

	for i := range c.banks {
		b := &c.banks[i]
		if b.inFlight != nil && now >= b.inFlight.DoneAt {
			done := b.inFlight
			b.inFlight = nil
			c.onComplete(done, now)
		}
	}

	for i := range c.banks {
		c.schedule(i, now)
	}

	if now >= c.nextSample {
		c.sampleIdleness(now)
		c.nextSample = now + c.sampleEvery
	}
}

// NextWake returns the earliest cycle at which the controller can have any
// effect, assuming nothing new is enqueued, so that the simulator may skip
// its ticks until then. Every per-cycle decision in Tick is governed by an
// exact timer: a completion fires at DoneAt; a bank with waiters issues the
// moment it is free and a request is past the controller latency (the shared
// bus delays only the transfer, not the issue, and the starvation and
// write-drain rules change which request is picked, never when); refresh and
// idleness sampling are periodic. Queues are FIFO by arrival (picks preserve
// order), so the head entries carry the earliest readiness times. ok is
// false when the controller has work this very cycle and must keep ticking.
func (c *Controller) NextWake(now int64) (wake int64, ok bool) {
	wake = c.nextSample
	if c.nextRefresh > 0 && c.nextRefresh < wake {
		wake = c.nextRefresh
	}
	for i := range c.banks {
		b := &c.banks[i]
		if b.inFlight != nil {
			// Completion; any waiters are reconsidered that same cycle.
			if b.inFlight.DoneAt < wake {
				wake = b.inFlight.DoneAt
			}
			continue
		}
		if b.pending() == 0 {
			continue
		}
		// Idle bank with waiters: next issue is when the bank frees
		// (post-refresh occupancy) or the earliest request becomes ready.
		next := b.busyUntil
		if next <= now {
			next = int64(1)<<62 - 1
			if len(b.reads) > 0 {
				next = b.reads[0].EnqueuedAt + int64(c.cfg.CtlLatency)
			}
			if len(b.writes) > 0 {
				if t := b.writes[0].EnqueuedAt + int64(c.cfg.CtlLatency); t < next {
					next = t
				}
			}
		}
		if next <= now {
			return 0, false // issuable right now; keep ticking
		}
		if next < wake {
			wake = next
		}
	}
	if wake <= now {
		return 0, false
	}
	return wake, true
}

// FastForwardable reports whether the controller's remaining work is pure
// write drain (or pure idleness): no read queued or in flight at any bank.
// Writes complete without external effect — the MC node merely recycles the
// request, no response packet is born — so a writes-only controller can have
// its timeline replayed in isolation. Any read disqualifies, because its
// completion injects a packet that must happen during a real network cycle.
func (c *Controller) FastForwardable() bool {
	for i := range c.banks {
		b := &c.banks[i]
		if len(b.reads) > 0 {
			return false
		}
		if b.inFlight != nil && !b.inFlight.IsWrite {
			return false
		}
	}
	return true
}

// FastForward applies every internally-timed controller event strictly after
// now and strictly before the given horizon, by ticking at exactly the cycles
// the event scheduler would have executed (the NextWake chain: write-drain
// issues and completions, refreshes, idleness samples). The drain tail is
// thereby folded into one call — byte-identical to per-cycle stepping by the
// NextWake exactness contract — and the return value is the first deadline at
// or past the horizon, ready to be re-armed as the controller's next wake.
// The caller must ensure nothing is enqueued over the window (the simulator
// only fast-forwards when every other component is provably quiescent until
// before) and should check FastForwardable first.
func (c *Controller) FastForward(now, before int64) int64 {
	cur := now
	for {
		t, ok := c.NextWake(cur)
		if !ok {
			// Work became issuable at cur itself. Unreachable after a Tick
			// (each bank issues or stays busy), but a correct resume point.
			return cur + 1
		}
		if t >= before {
			return t
		}
		c.Tick(t)
		c.ffTicks++
		cur = t
	}
}

// DebugTicks returns how many times Tick ran in total and how many of those
// runs the write-drain fast-forward absorbed.
func (c *Controller) DebugTicks() (total, fastForwarded int64) {
	return c.ticks, c.ffTicks
}

// frfcfsPick returns the scheduling choice within one queue under the
// configured policy. For FR-FCFS: the oldest row-buffer hit, or the oldest
// ready request when there is no hit or when the oldest request has starved
// past the limit. For FCFS: strictly the oldest ready request. For
// AppAwareMem: FR-FCFS restricted to latency-sensitive requests when any is
// ready, else FR-FCFS over the rest; the starvation cap spans both classes.
// Returns -1 when nothing is ready.
func (c *Controller) frfcfsPick(q []*Request, openRow, now int64) int {
	ready := func(r *Request) bool { return now >= r.EnqueuedAt+int64(c.cfg.CtlLatency) }
	pick, oldest := -1, -1
	pickSens, oldestSens := -1, -1
	for j, r := range q {
		if !ready(r) {
			continue
		}
		if oldest == -1 {
			oldest = j
		}
		if r.Row == openRow && pick == -1 {
			pick = j
		}
		if r.Sensitive {
			if oldestSens == -1 {
				oldestSens = j
			}
			if r.Row == openRow && pickSens == -1 {
				pickSens = j
			}
		}
	}
	if oldest == -1 {
		return -1
	}
	if now-q[oldest].EnqueuedAt > c.starveLimit {
		return oldest
	}
	switch c.cfg.Sched {
	case config.FCFS:
		return oldest
	case config.AppAwareMem:
		if pickSens != -1 {
			return pickSens
		}
		if oldestSens != -1 {
			return oldestSens
		}
	}
	if pick == -1 {
		pick = oldest
	}
	return pick
}

// schedule picks the next request for bank i if the bank is free. Reads have
// priority; writes drain opportunistically when no read is ready, or
// forcibly once the write queue passes the high watermark.
func (c *Controller) schedule(i int, now int64) {
	b := &c.banks[i]
	if b.inFlight != nil || now < b.busyUntil || b.pending() == 0 {
		return
	}

	var q *[]*Request
	pick := -1
	if len(b.writes) >= c.cfg.WriteDrainHigh {
		if pick = c.frfcfsPick(b.writes, b.openRow, now); pick >= 0 {
			q = &b.writes
		}
	}
	if pick < 0 {
		if pick = c.frfcfsPick(b.reads, b.openRow, now); pick >= 0 {
			q = &b.reads
		}
	}
	if pick < 0 {
		if pick = c.frfcfsPick(b.writes, b.openRow, now); pick >= 0 {
			q = &b.writes
		}
	}
	if pick < 0 {
		return
	}

	r := (*q)[pick]
	*q = append((*q)[:pick], (*q)[pick+1:]...)

	var access int64
	switch {
	case b.openRow == r.Row:
		access = c.memCycles(c.cfg.TCAS)
		c.stats.RowHits++
	case b.openRow == -1:
		access = c.memCycles(c.cfg.TActivate + c.cfg.TCAS)
		c.stats.RowMisses++
	default:
		access = c.memCycles(c.cfg.TPrecharge + c.cfg.TActivate + c.cfg.TCAS)
		c.stats.RowConflicts++
	}
	b.openRow = r.Row

	// The data transfer must also win the shared channel bus.
	transferStart := now + access
	if transferStart < c.busFreeAt {
		transferStart = c.busFreeAt
	}
	transferEnd := transferStart + c.memCycles(c.cfg.TBurst)
	c.busFreeAt = transferEnd
	c.stats.BusBusy += c.memCycles(c.cfg.TBurst)

	r.ScheduledAt = now
	r.DoneAt = transferEnd
	b.busyUntil = transferEnd
	b.inFlight = r

	c.stats.QueueWait += r.QueueDelay()
	if r.IsWrite {
		c.stats.Writes++
	} else {
		c.stats.Reads++
	}
}

// refresh closes every row and occupies every bank for the refresh duration.
func (c *Controller) refresh(now int64) {
	dur := c.memCycles(c.cfg.RefreshCycles)
	for i := range c.banks {
		b := &c.banks[i]
		start := now
		if b.busyUntil > start {
			start = b.busyUntil
		}
		if b.inFlight != nil && b.inFlight.DoneAt > start {
			start = b.inFlight.DoneAt
		}
		b.busyUntil = start + dur
		b.openRow = -1
	}
	c.stats.Refreshes++
}

// sampleIdleness records, for each bank, whether it is idle right now
// (empty queue and nothing in flight) — the paper's idleness metric.
func (c *Controller) sampleIdleness(now int64) {
	var idle int
	for i := range c.banks {
		b := &c.banks[i]
		b.idleSamples++
		c.stats.QueueDepth += int64(b.pending())
		c.stats.QueueSamples++
		if b.pending() == 0 && b.inFlight == nil {
			b.idleHits++
			idle++
		}
	}
	if c.idleSeries != nil {
		c.idleSeries(now, float64(idle)/float64(len(c.banks)))
	}
}

// Idleness returns the fraction of monitoring samples at which each bank was
// idle (Figure 6 / Figure 13).
func (c *Controller) Idleness() []float64 {
	out := make([]float64, len(c.banks))
	for i := range c.banks {
		b := &c.banks[i]
		if b.idleSamples > 0 {
			out[i] = float64(b.idleHits) / float64(b.idleSamples)
		}
	}
	return out
}

// Stats returns a copy of the event counters.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes event counters and idleness samples (warmup boundary).
func (c *Controller) ResetStats() {
	c.stats = Stats{}
	for i := range c.banks {
		c.banks[i].idleSamples = 0
		c.banks[i].idleHits = 0
	}
}
