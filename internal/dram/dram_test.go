package dram

import (
	"testing"
	"testing/quick"

	"nocmem/internal/config"
)

func testDRAM() config.DRAM {
	return config.Baseline32().DRAM
}

func TestAddrMapFields(t *testing.T) {
	m, err := NewAddrMap(64, 4, 16, 8<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Controllers() != 4 || m.Banks() != 16 {
		t.Fatalf("controllers=%d banks=%d", m.Controllers(), m.Banks())
	}
	// Consecutive lines rotate across controllers.
	for i := uint64(0); i < 8; i++ {
		if got, want := m.Controller(i*64), int(i%4); got != want {
			t.Errorf("line %d controller %d, want %d", i, got, want)
		}
	}
	// Within a controller, the first BankInterleaveLines per-controller
	// lines share bank 0 and row 0; the next chunk moves to bank 1.
	base := uint64(0)
	for i := uint64(0); i < 16; i++ { // per-controller lines 0..15 (ctl 0)
		addr := base + i*64*4
		if got := m.Bank(addr); got != 0 {
			t.Fatalf("per-ctl line %d bank %d, want 0", i, got)
		}
		if got := m.Row(addr); got != 0 {
			t.Fatalf("per-ctl line %d row %d, want 0", i, got)
		}
	}
	if got := m.Bank(16 * 64 * 4); got != 1 {
		t.Errorf("17th per-ctl line bank %d, want 1", got)
	}
	// Row advances after all banks' column segments are exhausted:
	// 16 banks x 128 columns of per-controller lines.
	rowSpan := uint64(16*128) * 64 * 4
	if got := m.Row(rowSpan); got != 1 {
		t.Errorf("row at span %d = %d, want 1", rowSpan, got)
	}
}

func TestAddrMapGlobalBankUnique(t *testing.T) {
	m, err := NewAddrMap(64, 4, 16, 8<<10, 16)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a uint32) bool {
		addr := uint64(a) * 64
		gb := m.GlobalBank(addr)
		return gb == m.Controller(addr)*16+m.Bank(addr) && gb >= 0 && gb < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrMapValidation(t *testing.T) {
	cases := []struct{ line, ctl, banks, row, il int }{
		{63, 4, 16, 8192, 16},  // non-pow2 line
		{64, 3, 16, 8192, 16},  // non-pow2 controllers
		{64, 4, 12, 8192, 16},  // non-pow2 banks
		{64, 4, 16, 100, 16},   // non-pow2 row
		{64, 4, 16, 32, 16},    // row < line
		{64, 4, 16, 8192, 0},   // zero interleave
		{64, 4, 16, 8192, 256}, // interleave > row lines
	}
	for i, c := range cases {
		if _, err := NewAddrMap(c.line, c.ctl, c.banks, c.row, c.il); err == nil {
			t.Errorf("case %d: invalid map accepted", i)
		}
	}
}

// collectCtl builds a controller recording completion order.
func collectCtl(cfg config.DRAM, order *[]*Request) *Controller {
	return NewController(cfg, 0, func(r *Request, now int64) { *order = append(*order, r) })
}

// mkReq builds a read request pre-decoded for bank/row.
func mkReq(bank int, row int64) *Request {
	return &Request{Bank: bank, Row: row}
}

func run(c *Controller, from, to int64) {
	for now := from; now < to; now++ {
		c.Tick(now)
	}
}

func TestFRFCFSPrefersRowHits(t *testing.T) {
	cfg := testDRAM()
	var order []*Request
	c := collectCtl(cfg, &order)
	a1, b, a2 := mkReq(0, 7), mkReq(0, 9), mkReq(0, 7)
	for _, r := range []*Request{a1, b, a2} {
		if err := c.Enqueue(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	run(c, 0, 2000)
	if len(order) != 3 {
		t.Fatalf("served %d of 3", len(order))
	}
	// After a1 opens row 7, a2 (same row) should be served before b.
	if order[0] != a1 || order[1] != a2 || order[2] != b {
		t.Errorf("service order [a1 b a2] -> got %v, want row hit a2 second", order)
	}
	st := c.Stats()
	if st.RowHits != 1 {
		t.Errorf("row hits %d, want 1", st.RowHits)
	}
}

func TestFRFCFSStarvationCap(t *testing.T) {
	cfg := testDRAM()
	cfg.StarveLimit = 500
	var order []*Request
	c := collectCtl(cfg, &order)
	victim := mkReq(0, 99)
	if err := c.Enqueue(mkReq(0, 1), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(victim, 0); err != nil {
		t.Fatal(err)
	}
	// Keep feeding row-1 hits; the row-99 request must still be served
	// within the starvation limit plus a couple of service times.
	now := int64(0)
	servedVictim := int64(-1)
	for ; now < 5000; now++ {
		if now%40 == 0 {
			if err := c.Enqueue(mkReq(0, 1), now); err != nil {
				t.Fatal(err)
			}
		}
		c.Tick(now)
		if servedVictim < 0 && victim.ScheduledAt > 0 {
			servedVictim = victim.ScheduledAt
			break
		}
	}
	if servedVictim < 0 {
		t.Fatal("starved request never served")
	}
	if servedVictim > cfg.StarveLimit+300 {
		t.Errorf("starved request served at %d, want <= %d", servedVictim, cfg.StarveLimit+300)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := testDRAM()
	var order []*Request
	c := collectCtl(cfg, &order)
	first, hit, conflict := mkReq(0, 1), mkReq(0, 1), mkReq(0, 2)
	if err := c.Enqueue(first, 0); err != nil {
		t.Fatal(err)
	}
	run(c, 0, 1000)
	start := int64(1000)
	if err := c.Enqueue(hit, start); err != nil {
		t.Fatal(err)
	}
	run(c, start, 2000)
	start2 := int64(2000)
	if err := c.Enqueue(conflict, start2); err != nil {
		t.Fatal(err)
	}
	run(c, start2, 3000)
	hitLat := hit.DoneAt - hit.EnqueuedAt
	confLat := conflict.DoneAt - conflict.EnqueuedAt
	if hitLat >= confLat {
		t.Errorf("row hit latency %d >= conflict latency %d", hitLat, confLat)
	}
	mult := int64(cfg.BusMultiplier)
	wantHit := int64(cfg.CtlLatency) + mult*int64(cfg.TCAS+cfg.TBurst)
	if hitLat != wantHit {
		t.Errorf("row-hit latency %d, want %d", hitLat, wantHit)
	}
	wantConf := int64(cfg.CtlLatency) + mult*int64(cfg.TPrecharge+cfg.TActivate+cfg.TCAS+cfg.TBurst)
	if confLat != wantConf {
		t.Errorf("conflict latency %d, want %d", confLat, wantConf)
	}
}

func TestSharedBusSerializesTransfers(t *testing.T) {
	cfg := testDRAM()
	var order []*Request
	c := collectCtl(cfg, &order)
	// Two requests to different banks, same rows previously closed: bank
	// access overlaps but the data transfers must not.
	r1, r2 := mkReq(0, 1), mkReq(1, 1)
	if err := c.Enqueue(r1, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(r2, 0); err != nil {
		t.Fatal(err)
	}
	run(c, 0, 2000)
	if len(order) != 2 {
		t.Fatalf("served %d of 2", len(order))
	}
	burst := int64(cfg.BusMultiplier * cfg.TBurst)
	d := order[1].DoneAt - order[0].DoneAt
	if d < burst {
		t.Errorf("transfers finished %d cycles apart, want >= %d (bus serialization)", d, burst)
	}
}

func TestWriteDrainPolicy(t *testing.T) {
	cfg := testDRAM()
	var order []*Request
	c := collectCtl(cfg, &order)
	w := &Request{Bank: 0, Row: 5, IsWrite: true}
	rd := mkReq(0, 6)
	if err := c.Enqueue(w, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(rd, 0); err != nil {
		t.Fatal(err)
	}
	run(c, 0, 2000)
	if len(order) != 2 || order[0] != rd {
		t.Fatalf("read should precede parked write; got order %v", order)
	}
	// With the write queue past the high watermark, writes go first.
	var order2 []*Request
	c2 := collectCtl(cfg, &order2)
	for i := 0; i < cfg.WriteDrainHigh; i++ {
		if err := c2.Enqueue(&Request{Bank: 0, Row: int64(i), IsWrite: true}, 0); err != nil {
			t.Fatal(err)
		}
	}
	rd2 := mkReq(0, 999)
	if err := c2.Enqueue(rd2, 0); err != nil {
		t.Fatal(err)
	}
	run(c2, 0, 500)
	if len(order2) == 0 || !order2[0].IsWrite {
		t.Fatal("forced write drain should serve a write first")
	}
}

func TestRefreshClosesRows(t *testing.T) {
	cfg := testDRAM()
	cfg.RefreshPeriod = 1000
	cfg.RefreshCycles = 20
	var order []*Request
	c := collectCtl(cfg, &order)
	r1 := mkReq(0, 3)
	if err := c.Enqueue(r1, 0); err != nil {
		t.Fatal(err)
	}
	run(c, 0, 999)
	// After the refresh at cycle 1000 the row is closed again: the next
	// access to the same row is a row miss, not a hit.
	r2 := mkReq(0, 3)
	if err := c.Enqueue(r2, 1100); err != nil {
		t.Fatal(err)
	}
	run(c, 1100, 2500)
	st := c.Stats()
	if st.RowHits != 0 {
		t.Errorf("row hits %d after refresh, want 0", st.RowHits)
	}
	if st.Refreshes == 0 {
		t.Error("no refresh happened")
	}
}

func TestIdlenessMonitoring(t *testing.T) {
	cfg := testDRAM()
	var order []*Request
	c := collectCtl(cfg, &order)
	// Keep bank 0 loaded for the whole window; leave bank 1 idle.
	for now := int64(0); now < 10000; now++ {
		if now%30 == 0 {
			if err := c.Enqueue(mkReq(0, now/30%4), now); err != nil {
				t.Fatal(err)
			}
		}
		c.Tick(now)
	}
	idle := c.Idleness()
	if idle[0] > 0.5 {
		t.Errorf("loaded bank idleness %.2f, want <= 0.5", idle[0])
	}
	if idle[1] < 0.95 {
		t.Errorf("idle bank idleness %.2f, want >= 0.95", idle[1])
	}
}

func TestQueueCap(t *testing.T) {
	cfg := testDRAM()
	cfg.QueueCap = 2
	c := NewController(cfg, 0, func(*Request, int64) {})
	if err := c.Enqueue(mkReq(0, 1), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(mkReq(0, 2), 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(mkReq(0, 3), 0); err == nil {
		t.Fatal("third enqueue should exceed the cap")
	}
	if err := c.Enqueue(&Request{Bank: 99}, 0); err == nil {
		t.Fatal("out-of-range bank accepted")
	}
}

func TestRequestDelaysTelescope(t *testing.T) {
	cfg := testDRAM()
	var order []*Request
	c := collectCtl(cfg, &order)
	r := mkReq(3, 17)
	if err := c.Enqueue(r, 5); err != nil {
		t.Fatal(err)
	}
	run(c, 5, 1000)
	if r.QueueDelay()+r.ServiceDelay() != r.TotalDelay() {
		t.Errorf("queue %d + service %d != total %d", r.QueueDelay(), r.ServiceDelay(), r.TotalDelay())
	}
	if r.TotalDelay() <= 0 {
		t.Error("non-positive total delay")
	}
}

func TestDerivedStats(t *testing.T) {
	s := Stats{RowHits: 30, RowMisses: 10, RowConflicts: 60, QueueDepth: 500, QueueSamples: 100}
	if got := s.RowHitRate(); got != 0.3 {
		t.Errorf("row hit rate %v", got)
	}
	if got := s.AvgQueueDepth(); got != 5 {
		t.Errorf("avg queue depth %v", got)
	}
	var zero Stats
	if zero.RowHitRate() != 0 || zero.AvgQueueDepth() != 0 {
		t.Error("zero stats must not divide by zero")
	}
}

func TestBusBusyAccounting(t *testing.T) {
	cfg := testDRAM()
	var order []*Request
	c := collectCtl(cfg, &order)
	for i := 0; i < 4; i++ {
		if err := c.Enqueue(mkReq(i, 1), 0); err != nil {
			t.Fatal(err)
		}
	}
	run(c, 0, 2000)
	want := int64(4 * cfg.TBurst * cfg.BusMultiplier)
	if got := c.Stats().BusBusy; got != want {
		t.Errorf("bus busy %d cycles, want %d", got, want)
	}
}

func TestAppAwareSchedulerPrefersSensitive(t *testing.T) {
	cfg := testDRAM()
	cfg.Sched = config.AppAwareMem
	var order []*Request
	c := collectCtl(cfg, &order)
	normal := mkReq(0, 1)
	sens := &Request{Bank: 0, Row: 2, Sensitive: true}
	if err := c.Enqueue(normal, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(sens, 0); err != nil {
		t.Fatal(err)
	}
	run(c, 0, 2000)
	if len(order) != 2 || order[0] != sens {
		t.Fatalf("sensitive request not served first")
	}
}

func TestFCFSIgnoresRowHits(t *testing.T) {
	cfg := testDRAM()
	cfg.Sched = config.FCFS
	var order []*Request
	c := collectCtl(cfg, &order)
	a1, b, a2 := mkReq(0, 7), mkReq(0, 9), mkReq(0, 7)
	for _, r := range []*Request{a1, b, a2} {
		if err := c.Enqueue(r, 0); err != nil {
			t.Fatal(err)
		}
	}
	run(c, 0, 2000)
	if len(order) != 3 || order[0] != a1 || order[1] != b || order[2] != a2 {
		t.Fatalf("FCFS must serve strictly in order")
	}
}
