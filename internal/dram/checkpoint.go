package dram

import "nocmem/internal/snapshot"

// Encode serializes the controller: bus and refresh timers, counters, and
// every bank's row/occupancy state and request queues in ascending bank
// order. payload writes one request's opaque Payload handle (the simulator
// interns its transaction pointers there).
func (c *Controller) Encode(w *snapshot.Writer, payload func(any)) {
	w.I64(c.busFreeAt)
	w.I64(c.nextRefresh)
	w.I64(c.nextSample)
	st := c.stats
	w.I64(st.Reads)
	w.I64(st.Writes)
	w.I64(st.RowHits)
	w.I64(st.RowMisses)
	w.I64(st.RowConflicts)
	w.I64(st.QueueWait)
	w.I64(st.Refreshes)
	w.I64(st.BusBusy)
	w.I64(st.QueueDepth)
	w.I64(st.QueueSamples)
	w.Len(len(c.banks))
	for i := range c.banks {
		b := &c.banks[i]
		w.I64(b.openRow)
		w.I64(b.busyUntil)
		w.I64(b.idleSamples)
		w.I64(b.idleHits)
		encodeQueue(w, b.reads, payload)
		encodeQueue(w, b.writes, payload)
		w.Bool(b.inFlight != nil)
		if b.inFlight != nil {
			encodeRequest(w, b.inFlight, payload)
		}
	}
}

func encodeQueue(w *snapshot.Writer, q []*Request, payload func(any)) {
	w.Len(len(q))
	for _, r := range q {
		encodeRequest(w, r, payload)
	}
}

func encodeRequest(w *snapshot.Writer, r *Request, payload func(any)) {
	w.U64(r.Addr)
	w.Bool(r.IsWrite)
	w.Bool(r.Sensitive)
	w.Int(r.Bank)
	w.I64(r.Row)
	w.I64(r.EnqueuedAt)
	w.I64(r.ScheduledAt)
	w.I64(r.DoneAt)
	payload(r.Payload)
}

// Decode restores the controller state in place. payload reads one
// request's Payload handle.
func (c *Controller) Decode(r *snapshot.Reader, payload func() any) {
	c.busFreeAt = r.I64()
	c.nextRefresh = r.I64()
	c.nextSample = r.I64()
	c.stats.Reads = r.I64()
	c.stats.Writes = r.I64()
	c.stats.RowHits = r.I64()
	c.stats.RowMisses = r.I64()
	c.stats.RowConflicts = r.I64()
	c.stats.QueueWait = r.I64()
	c.stats.Refreshes = r.I64()
	c.stats.BusBusy = r.I64()
	c.stats.QueueDepth = r.I64()
	c.stats.QueueSamples = r.I64()
	n := r.Len(8)
	if r.Err() != nil {
		return
	}
	if n != len(c.banks) {
		r.Fail("bank count mismatch: snapshot %d, config %d", n, len(c.banks))
		return
	}
	if c.nextRefresh < 0 || c.nextSample < 0 {
		r.Fail("negative controller timer")
		return
	}
	for i := range c.banks {
		b := &c.banks[i]
		b.openRow = r.I64()
		b.busyUntil = r.I64()
		b.idleSamples = r.I64()
		b.idleHits = r.I64()
		b.reads = decodeQueue(r, c, i, b.reads, payload)
		b.writes = decodeQueue(r, c, i, b.writes, payload)
		b.inFlight = nil
		if r.Bool() {
			b.inFlight = decodeRequest(r, c, i, payload)
		}
		if r.Err() != nil {
			return
		}
	}
}

func decodeQueue(r *snapshot.Reader, c *Controller, bank int, old []*Request, payload func() any) []*Request {
	n := r.Len(8)
	if r.Err() != nil {
		return nil
	}
	q := old[:0]
	for i := 0; i < n; i++ {
		req := decodeRequest(r, c, bank, payload)
		if r.Err() != nil {
			return nil
		}
		q = append(q, req)
	}
	return q
}

func decodeRequest(r *snapshot.Reader, c *Controller, bank int, payload func() any) *Request {
	req := &Request{}
	req.Addr = r.U64()
	req.IsWrite = r.Bool()
	req.Sensitive = r.Bool()
	req.Bank = r.Int()
	req.Row = r.I64()
	req.EnqueuedAt = r.I64()
	req.ScheduledAt = r.I64()
	req.DoneAt = r.I64()
	req.Payload = payload()
	if r.Err() == nil && req.Bank != bank {
		r.Fail("request for bank %d queued at bank %d", req.Bank, bank)
	}
	return req
}
