// Package dram models the off-chip memory system: memory controllers with
// per-bank queues, an FR-FCFS scheduler, open-page DRAM banks with
// activate/precharge/CAS timing, a shared data bus per channel, refresh,
// and the bank-idleness monitoring that motivates Scheme-2.
package dram

import "fmt"

// AddrMap decodes a physical address into (controller, bank, row) using the
// cache-line interleaving of Section 4.1: consecutive lines of a page rotate
// across the memory controllers (avoiding hot spots). Within a controller,
// banks interleave at a coarser granularity (interleaveLines consecutive
// per-controller lines stay in one bank), and the remaining column bits sit
// below the row bits, so streaming patterns earn row-buffer hits while still
// spreading across banks:
//
//	addr = [row | colHigh | bank | colLow | controller | line offset]
type AddrMap struct {
	lineShift   uint
	ctlBits     uint
	colLowBits  uint
	bankBits    uint
	colHighBits uint
}

// NewAddrMap builds the decoder. Controllers and banks must be powers of
// two; rowBytes is the row-buffer size of one bank; interleaveLines is the
// bank-interleave granularity in per-controller lines and must divide the
// row's line count.
func NewAddrMap(lineBytes, controllers, banks, rowBytes, interleaveLines int) (AddrMap, error) {
	switch {
	case lineBytes <= 0 || lineBytes&(lineBytes-1) != 0:
		return AddrMap{}, fmt.Errorf("dram: line size %d must be a power of two", lineBytes)
	case controllers <= 0 || controllers&(controllers-1) != 0:
		return AddrMap{}, fmt.Errorf("dram: controller count %d must be a power of two", controllers)
	case banks <= 0 || banks&(banks-1) != 0:
		return AddrMap{}, fmt.Errorf("dram: bank count %d must be a power of two", banks)
	case rowBytes < lineBytes || rowBytes&(rowBytes-1) != 0:
		return AddrMap{}, fmt.Errorf("dram: row size %d must be a power of two >= line size", rowBytes)
	case interleaveLines <= 0 || interleaveLines&(interleaveLines-1) != 0:
		return AddrMap{}, fmt.Errorf("dram: bank interleave %d lines must be a power of two", interleaveLines)
	case interleaveLines > rowBytes/lineBytes:
		return AddrMap{}, fmt.Errorf("dram: bank interleave %d lines exceeds the row's %d lines",
			interleaveLines, rowBytes/lineBytes)
	}
	colBits := log2(uint64(rowBytes / lineBytes))
	colLow := log2(uint64(interleaveLines))
	return AddrMap{
		lineShift:   log2(uint64(lineBytes)),
		ctlBits:     log2(uint64(controllers)),
		colLowBits:  colLow,
		bankBits:    log2(uint64(banks)),
		colHighBits: colBits - colLow,
	}, nil
}

func log2(v uint64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// Controller returns the memory-controller index owning addr.
func (m AddrMap) Controller(addr uint64) int {
	return int((addr >> m.lineShift) & ((1 << m.ctlBits) - 1))
}

// Bank returns the bank index within the owning controller.
func (m AddrMap) Bank(addr uint64) int {
	return int((addr >> (m.lineShift + m.ctlBits + m.colLowBits)) & ((1 << m.bankBits) - 1))
}

// Row returns the DRAM row index within the bank.
func (m AddrMap) Row(addr uint64) int64 {
	return int64(addr >> (m.lineShift + m.ctlBits + m.colLowBits + m.bankBits + m.colHighBits))
}

// Controllers returns the number of memory controllers in the map.
func (m AddrMap) Controllers() int { return 1 << m.ctlBits }

// Banks returns the number of banks per controller.
func (m AddrMap) Banks() int { return 1 << m.bankBits }

// GlobalBank returns a system-unique bank identifier, used as the key of the
// Scheme-2 bank history tables.
func (m AddrMap) GlobalBank(addr uint64) int {
	return m.Controller(addr)*m.Banks() + m.Bank(addr)
}
