package dram

import (
	"testing"

	"nocmem/internal/config"
)

// completion is one onComplete invocation, in order.
type completion struct {
	addr  uint64
	write bool
	at    int64
}

// ffPair is a controller plus the twin that serves as its ticked reference.
type ffPair struct {
	fast, ref   *Controller
	fastC, refC []completion
}

func newFFPair(cfg config.DRAM) *ffPair {
	p := &ffPair{}
	p.fast = NewController(cfg, 0, func(r *Request, now int64) {
		p.fastC = append(p.fastC, completion{r.Addr, r.IsWrite, now})
	})
	p.ref = NewController(cfg, 0, func(r *Request, now int64) {
		p.refC = append(p.refC, completion{r.Addr, r.IsWrite, now})
	})
	return p
}

// enqueue files the same request into both controllers.
func (p *ffPair) enqueue(t *testing.T, addr uint64, write bool, bank int, row, now int64) {
	t.Helper()
	for _, c := range []*Controller{p.fast, p.ref} {
		r := &Request{Addr: addr, IsWrite: write, Bank: bank, Row: row}
		if err := c.Enqueue(r, now); err != nil {
			t.Fatal(err)
		}
	}
}

// compare checks that both controllers reached the same externally-visible
// and internal timing state: completion log, event counters, bus and per-bank
// row/occupancy state, and queue depths.
func (p *ffPair) compare(t *testing.T) {
	t.Helper()
	if len(p.fastC) != len(p.refC) {
		t.Fatalf("fast-forward produced %d completions, ticked reference %d", len(p.fastC), len(p.refC))
	}
	for i := range p.fastC {
		if p.fastC[i] != p.refC[i] {
			t.Fatalf("completion %d: fast-forward %+v, reference %+v", i, p.fastC[i], p.refC[i])
		}
	}
	if p.fast.stats != p.ref.stats {
		t.Fatalf("stats diverged:\nfast-forward %+v\nreference    %+v", p.fast.stats, p.ref.stats)
	}
	if p.fast.busFreeAt != p.ref.busFreeAt || p.fast.nextRefresh != p.ref.nextRefresh ||
		p.fast.nextSample != p.ref.nextSample {
		t.Fatalf("timers diverged: bus %d/%d refresh %d/%d sample %d/%d",
			p.fast.busFreeAt, p.ref.busFreeAt, p.fast.nextRefresh, p.ref.nextRefresh,
			p.fast.nextSample, p.ref.nextSample)
	}
	for i := range p.fast.banks {
		f, r := &p.fast.banks[i], &p.ref.banks[i]
		if f.openRow != r.openRow || f.busyUntil != r.busyUntil ||
			len(f.reads) != len(r.reads) || len(f.writes) != len(r.writes) ||
			(f.inFlight == nil) != (r.inFlight == nil) {
			t.Fatalf("bank %d diverged: fast-forward %+v, reference %+v", i, f, r)
		}
	}
}

// run fast-forwards one controller over (now, before) and ticks the twin
// every cycle of the same window, then compares.
func (p *ffPair) run(t *testing.T, now, before int64) {
	t.Helper()
	if !p.fast.FastForwardable() {
		t.Fatal("controller not FastForwardable")
	}
	resume := p.fast.FastForward(now, before)
	if resume < before {
		t.Fatalf("FastForward resume wake %d is before the horizon %d", resume, before)
	}
	for c := now + 1; c < before; c++ {
		p.ref.Tick(c)
	}
	p.compare(t)
}

// TestFastForwardWriteDrain pins the fast-forwarded drain timeline against
// the per-cycle reference across the WriteDrainHigh watermark, row-locality
// extremes, bank interleavings, refresh interference and pure idleness.
func TestFastForwardWriteDrain(t *testing.T) {
	base := config.Baseline32().DRAM
	cases := []struct {
		name   string
		cfg    func() config.DRAM
		fill   func(t *testing.T, p *ffPair)
		window int64
	}{
		{
			// Below the watermark writes drain opportunistically (no reads
			// around to beat them); the analytical walk must issue them at
			// the same cycles.
			name: "below_watermark_row_hits",
			cfg:  func() config.DRAM { return base },
			fill: func(t *testing.T, p *ffPair) {
				for i := 0; i < 8; i++ {
					p.enqueue(t, uint64(i)*64, true, 0, 7, 0)
				}
			},
			window: 6_000,
		},
		{
			// Past the watermark the forced-drain branch picks writes first;
			// same-row traffic exercises the pure row-hit service time.
			name: "above_watermark_row_hits",
			cfg:  func() config.DRAM { return base },
			fill: func(t *testing.T, p *ffPair) {
				for i := 0; i < base.WriteDrainHigh+8; i++ {
					p.enqueue(t, uint64(i)*64, true, 0, 3, 0)
				}
			},
			window: 10_000,
		},
		{
			// Alternating rows in one bank: every access is a row conflict
			// (precharge+activate+CAS), the slowest drain timeline.
			name: "row_conflicts",
			cfg:  func() config.DRAM { return base },
			fill: func(t *testing.T, p *ffPair) {
				for i := 0; i < 24; i++ {
					p.enqueue(t, uint64(i)*64, true, 0, int64(i%2), 0)
				}
			},
			window: 20_000,
		},
		{
			// Writes spread over four banks: drains proceed in parallel but
			// serialize on the shared data bus, so bank issue times couple
			// through busFreeAt.
			name: "bank_interleaved_bus_contention",
			cfg:  func() config.DRAM { return base },
			fill: func(t *testing.T, p *ffPair) {
				for i := 0; i < 40; i++ {
					p.enqueue(t, uint64(i)*64, true, i%4, int64(i%3), 0)
				}
			},
			window: 15_000,
		},
		{
			// A refresh lands mid-drain: rows close, banks stall for the
			// refresh duration, then draining resumes.
			name: "refresh_mid_drain",
			cfg: func() config.DRAM {
				c := base
				c.RefreshPeriod = 500
				c.RefreshCycles = 20
				return c
			},
			fill: func(t *testing.T, p *ffPair) {
				for i := 0; i < 20; i++ {
					p.enqueue(t, uint64(i)*64, true, i%2, 1, 0)
				}
			},
			window: 12_000,
		},
		{
			// Nothing queued at all: only idleness samples (and refreshes)
			// fire; stats and sample timers must advance identically.
			name: "idle_only",
			cfg: func() config.DRAM {
				c := base
				c.RefreshPeriod = 1_000
				c.RefreshCycles = 10
				return c
			},
			fill:   func(t *testing.T, p *ffPair) {},
			window: 5_000,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := newFFPair(tc.cfg())
			tc.fill(t, p)
			// Align both controllers with one real tick at cycle 0, as the
			// simulator would have before the quiescent window opens.
			p.fast.Tick(0)
			p.ref.Tick(0)
			p.run(t, 0, tc.window)
		})
	}
}

// TestFastForwardableRejectsReads proves the gate: any queued or in-flight
// read disqualifies the controller, while pure writes pass.
func TestFastForwardableRejectsReads(t *testing.T) {
	cfg := config.Baseline32().DRAM
	c := NewController(cfg, 0, func(*Request, int64) {})
	if !c.FastForwardable() {
		t.Fatal("empty controller must be fast-forwardable")
	}
	if err := c.Enqueue(&Request{Addr: 0, IsWrite: true, Bank: 0, Row: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if !c.FastForwardable() {
		t.Fatal("writes-only controller must be fast-forwardable")
	}
	if err := c.Enqueue(&Request{Addr: 64, Bank: 1, Row: 0}, 0); err != nil {
		t.Fatal(err)
	}
	if c.FastForwardable() {
		t.Fatal("queued read must disqualify fast-forward")
	}
	// Serve the read so it moves in flight: still disqualified until done.
	for cyc := int64(1); c.banks[1].inFlight == nil && cyc < 1_000; cyc++ {
		c.Tick(cyc)
	}
	if c.banks[1].inFlight == nil {
		t.Fatal("read never issued")
	}
	if c.FastForwardable() {
		t.Fatal("in-flight read must disqualify fast-forward")
	}
}

// TestFastForwardCountsTicks proves the Tick/fast-forward counter split: the
// replayed drain executes far fewer ticks than the window spans, and the
// split attributes them to FastForward.
func TestFastForwardCountsTicks(t *testing.T) {
	cfg := config.Baseline32().DRAM
	c := NewController(cfg, 0, func(*Request, int64) {})
	for i := 0; i < 16; i++ {
		if err := c.Enqueue(&Request{Addr: uint64(i) * 64, IsWrite: true, Bank: 0, Row: 0}, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Tick(0)
	const window = 10_000
	c.FastForward(0, window)
	total, ff := c.DebugTicks()
	if total != ff+1 {
		t.Fatalf("tick split: total=%d ff=%d, want total = ff+1", total, ff)
	}
	if ff >= window/2 {
		t.Fatalf("fast-forward executed %d ticks over a %d-cycle window; expected sparse event ticks", ff, window)
	}
	if ff == 0 {
		t.Fatal("fast-forward executed no ticks despite a pending drain")
	}
}

