package bitset

import (
	"math/bits"
	"testing"
)

func TestSetBasics(t *testing.T) {
	s := New(256)
	if len(s) != 4 {
		t.Fatalf("256-element set has %d words, want 4", len(s))
	}
	if !s.Empty() || s.Count() != 0 {
		t.Fatal("fresh set not empty")
	}
	// Exercise both sides of every word boundary — exactly the indices the
	// old uint64 masks silently dropped.
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 200, 255} {
		if s.Has(i) {
			t.Fatalf("Has(%d) before Add", i)
		}
		s.Add(i)
		if !s.Has(i) {
			t.Fatalf("Has(%d) false after Add", i)
		}
	}
	if s.Empty() || s.Count() != 9 {
		t.Fatalf("Count = %d, want 9", s.Count())
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 8 {
		t.Fatal("Remove(64) did not stick")
	}
	s.Add(64)
	s.Add(64) // idempotent
	if s.Count() != 9 {
		t.Fatalf("double Add changed Count to %d", s.Count())
	}
	s.Clear()
	if !s.Empty() {
		t.Fatal("Clear left elements behind")
	}
}

func TestSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(64) on a 64-capacity set did not panic")
		}
	}()
	New(64).Add(64)
}

// TestIterationMatchesMembership pins the word-snapshot iteration idiom used
// by the schedulers.
func TestIterationMatchesMembership(t *testing.T) {
	s := New(130)
	want := []int{3, 63, 64, 100, 129}
	for _, i := range want {
		s.Add(i)
	}
	var got []int
	for wi := range s {
		w := s[wi]
		for w != 0 {
			got = append(got, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
}
