// Package bitset provides a small fixed-capacity bit set backed by []uint64,
// used for the simulator's per-class active sets. It replaces the bare uint64
// masks that silently saturated at 64 components: allMask(k) returned all-ones
// for k >= 64, so meshes beyond 64 tiles ran with truncated active sets and
// produced wrong results without any error. A Set carries as many words as its
// capacity needs and panics on out-of-range indices instead of wrapping.
//
// The hot loops that consume these sets iterate word by word at the call site
// (snapshot one word, then bits.TrailingZeros64 over it) so membership changes
// made while iterating a word — a component removing itself, for example —
// keep the same snapshot semantics the single-word masks had.
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a bit set over [0, 64*len(s)). The zero value has capacity 0;
// construct with New.
type Set []uint64

// New returns a set with capacity for n elements, all absent.
func New(n int) Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative capacity %d", n))
	}
	return make(Set, (n+63)/64)
}

// Add inserts i.
func (s Set) Add(i int) { s[i>>6] |= 1 << uint(i&63) }

// Remove deletes i.
func (s Set) Remove(i int) { s[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is present.
func (s Set) Has(i int) bool { return s[i>>6]&(1<<uint(i&63)) != 0 }

// Empty reports whether no element is present.
func (s Set) Empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes every element.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Count returns the number of elements present.
func (s Set) Count() int {
	n := 0
	for _, w := range s {
		n += bits.OnesCount64(w)
	}
	return n
}
