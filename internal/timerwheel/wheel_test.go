package timerwheel

import (
	"math/rand"
	"sort"
	"testing"
)

// refHeap is the reference model: a plain sorted list delivering entries in
// (at, seq) order with exact cancellation. Everything the wheel does must
// match it operation for operation.
type refEntry struct {
	at  int64
	seq uint64
	val int
}

type refHeap struct {
	pending []refEntry
}

func (h *refHeap) push(at int64, seq uint64, val int, base int64) {
	if at < base {
		at = base
	}
	h.pending = append(h.pending, refEntry{at, seq, val})
}

func (h *refHeap) cancel(seq uint64) {
	for i, e := range h.pending {
		if e.seq == seq {
			h.pending = append(h.pending[:i], h.pending[i+1:]...)
			return
		}
	}
}

func (h *refHeap) min() (int64, bool) {
	ok := false
	var at int64
	for _, e := range h.pending {
		if !ok || e.at < at {
			at, ok = e.at, true
		}
	}
	return at, ok
}

func (h *refHeap) popDue(now int64) []refEntry {
	var due []refEntry
	kept := h.pending[:0]
	for _, e := range h.pending {
		if e.at <= now {
			due = append(due, e)
		} else {
			kept = append(kept, e)
		}
	}
	h.pending = kept
	sort.Slice(due, func(i, j int) bool {
		if due[i].at != due[j].at {
			return due[i].at < due[j].at
		}
		return due[i].seq < due[j].seq
	})
	return due
}

// TestWheelPropertyVsReferenceHeap drives random push/cancel/advance
// sequences through the wheel and the reference model simultaneously and
// requires identical Min values and identical pop order at every step. The
// deadline distribution is weighted toward the short horizons the simulator
// generates but regularly lands beyond every wheel level (including the
// overflow heap) and directly on window boundaries.
func TestWheelPropertyVsReferenceHeap(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7, 8} {
		seed := seed
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			w := New[int]()
			ref := &refHeap{}
			var now int64
			var base int64 // mirrors the wheel base: last PopDue now + 1
			handles := make(map[uint64]bool) // pending, cancelable

			for op := 0; op < 20_000; op++ {
				switch r := rng.Intn(100); {
				case r < 55: // push
					var d int64
					switch rng.Intn(10) {
					case 0, 1, 2, 3: // short horizon (level 0)
						d = rng.Int63n(64)
					case 4, 5, 6: // level 1
						d = 64 + rng.Int63n(4096-64)
					case 7, 8: // level 2
						d = 4096 + rng.Int63n(262144-4096)
					default: // overflow
						d = 262144 + rng.Int63n(1 << 22)
					}
					if rng.Intn(8) == 0 {
						// Land exactly on a rollover boundary relative to now.
						d = []int64{0, 1, 63, 64, 4095, 4096, 262143, 262144}[rng.Intn(8)]
					}
					at := now + d
					if rng.Intn(16) == 0 {
						at = now - rng.Int63n(10) // past deadline: clamps to base
					}
					h := w.Push(at, op)
					ref.push(at, h, op, base)
					handles[h] = true
				case r < 65: // cancel a random pending handle
					for h := range handles {
						w.Cancel(h)
						ref.cancel(h)
						delete(handles, h)
						break
					}
				default: // advance time and pop everything due
					now += rng.Int63n(300)
					if rng.Intn(10) == 0 {
						now += rng.Int63n(1 << 19) // long jump across levels
					}
					got := w.PopDue(now, nil)
					want := ref.popDue(now)
					base = now + 1
					if len(got) != len(want) {
						t.Fatalf("op %d: PopDue(%d) returned %d entries, reference %d",
							op, now, len(got), len(want))
					}
					for i := range got {
						if got[i].At != want[i].at || got[i].Val != want[i].val {
							t.Fatalf("op %d: PopDue(%d)[%d] = (at=%d val=%d), reference (at=%d val=%d)",
								op, now, i, got[i].At, got[i].Val, want[i].at, want[i].val)
						}
						delete(handles, want[i].seq)
					}
				}
				if wAt, wOK := w.Min(); true {
					rAt, rOK := ref.min()
					if wOK != rOK || (wOK && wAt != rAt) {
						t.Fatalf("op %d: Min = (%d,%v), reference (%d,%v)", op, wAt, wOK, rAt, rOK)
					}
				}
				if w.Len() != len(ref.pending) {
					t.Fatalf("op %d: Len = %d, reference %d", op, w.Len(), len(ref.pending))
				}
			}
		})
	}
}

// TestWheelLevelRollover pins behavior at the exact wheel-level boundaries:
// entries at distance 63/64 (level 0/1 edge), 4095/4096 (level 1/2 edge) and
// 262143/262144 (in-wheel/overflow edge) from a mid-window base must all pop
// in deadline order, including when one advance crosses several windows.
func TestWheelLevelRollover(t *testing.T) {
	for _, base := range []int64{0, 1, 63, 64, 100, 4095, 4097, 262200} {
		w := New[int]()
		// Establish a mid-window base without delivering anything.
		w.PopDue(base-1, nil)
		deadlines := []int64{
			base, base + 1, base + 63, base + 64, base + 65,
			base + 4095, base + 4096, base + 4097,
			base + 262143, base + 262144, base + 262145,
		}
		for i, at := range deadlines {
			w.Push(at, i)
		}
		if at, ok := w.Min(); !ok || at != base {
			t.Fatalf("base %d: Min = (%d,%v), want (%d,true)", base, at, ok, base)
		}
		// One giant advance across every level boundary at once.
		got := w.PopDue(base+262145, nil)
		if len(got) != len(deadlines) {
			t.Fatalf("base %d: popped %d of %d entries", base, len(got), len(deadlines))
		}
		for i, d := range got {
			if d.At != deadlines[i] || d.Val != i {
				t.Fatalf("base %d: pop[%d] = (at=%d val=%d), want (at=%d val=%d)",
					base, i, d.At, d.Val, deadlines[i], i)
			}
		}
		if w.Len() != 0 {
			t.Fatalf("base %d: %d entries left after full drain", base, w.Len())
		}
	}
}

// TestWheelRolloverStepwise crosses the level-0 and level-1 boundaries one
// tick at a time, popping at every step — the cadence the simulator's
// executed-cycle loop produces — so cascade-on-boundary can't hide behind
// bulk advances.
func TestWheelRolloverStepwise(t *testing.T) {
	w := New[int]()
	ref := &refHeap{}
	var seq int
	for at := int64(1); at < 130; at += 3 {
		h := w.Push(at, seq)
		ref.push(at, h, seq, 0)
		seq++
	}
	for at := int64(4090); at < 4105; at++ {
		h := w.Push(at, seq)
		ref.push(at, h, seq, 0)
		seq++
	}
	for now := int64(0); now < 4200; now++ {
		got := w.PopDue(now, nil)
		want := ref.popDue(now)
		if len(got) != len(want) {
			t.Fatalf("now %d: popped %d, reference %d", now, len(got), len(want))
		}
		for i := range got {
			if got[i].At != want[i].at || got[i].Val != want[i].val {
				t.Fatalf("now %d: pop[%d] mismatch", now, i)
			}
		}
	}
	if w.Len() != 0 {
		t.Fatalf("%d entries left", w.Len())
	}
}

// TestWheelReset proves Reset drops everything and the wheel is reusable
// from cycle 0, the activateAll/applyEventMode contract.
func TestWheelReset(t *testing.T) {
	w := New[int]()
	w.Push(10, 1)
	w.Push(500, 2)
	w.Push(1_000_000, 3)
	w.PopDue(200, nil)
	w.Reset()
	if w.Len() != 0 {
		t.Fatalf("Len = %d after Reset", w.Len())
	}
	if _, ok := w.Min(); ok {
		t.Fatal("Min reported an entry after Reset")
	}
	w.Push(5, 9)
	got := w.PopDue(5, nil)
	if len(got) != 1 || got[0].At != 5 || got[0].Val != 9 {
		t.Fatalf("post-Reset pop = %v", got)
	}
}
