// Package timerwheel provides a hierarchical timing wheel for the event
// schedulers in internal/sim and internal/noc. The wake traffic there is
// dominated by short horizons — DRAM completions a few hundred cycles out,
// idleness samples every 100 cycles, router arrivals a handful of cycles
// ahead — where a binary heap pays O(log n) sifts (and their branchy element
// swaps) on every push and pop. The wheel makes push, cancel and pop O(1)
// amortized over that short range and keeps a small (at, seq) min-heap only
// as an overflow level for far-future deadlines (refresh periods, policy
// pushes), which are rare enough that their log factor never shows.
//
// Layout: numLevels levels of numSlots slots each, slot width numSlots^L
// cycles, so the in-wheel horizon is numSlots^numLevels cycles from the
// current base. Slots are indexed by the deadline's absolute time (level L
// uses bits [slotBits*L, slotBits*(L+1)) of the cycle number), so an entry's
// slot never changes while the base advances within a window; crossing a
// window boundary cascades the corresponding higher-level slot down. A
// per-level occupancy bitmap makes "earliest occupied slot" a couple of bit
// operations.
//
// The base tracks delivered time: it advances only up to deadlines PopDue has
// delivered (never past the caller's now), so a later Push may target any
// still-future cycle. Min is a read-only scan — one bitmap probe per level
// plus at most one slot's entries — rather than a cascade, for the same
// reason.
//
// Delivery order is globally (at, seq) — deadline, then push order — exactly
// the order a stable min-heap would produce. Cascading between levels can
// physically reorder same-deadline entries, so each delivered slot (which
// holds exactly one tick's live entries) is sorted by seq; slots are tiny, so
// this costs nothing measurable.
//
// The wheel is not safe for concurrent use; in the simulator each shard owns
// its wheels outright. PopDue visitors must not call back into the wheel
// being drained (the schedulers never do — due wakes only set active bits).
package timerwheel

import (
	"math/bits"
	"slices"
)

const (
	slotBits  = 6
	numSlots  = 1 << slotBits // 64 slots per level
	slotMask  = numSlots - 1
	numLevels = 3
	// span is the in-wheel horizon: deadlines at least this far beyond the
	// base live in the overflow heap until the base catches up.
	span = int64(1) << (slotBits * numLevels)
)

// Due is one delivered entry: the deadline it was pushed with and its value.
type Due[T any] struct {
	At  int64
	Val T
}

type entry[T any] struct {
	at  int64
	seq uint64
	val T
}

// Wheel is a hierarchical timing wheel over int64 cycle deadlines.
// The zero base is cycle 0; deadlines before the base clamp up to it
// (a late push becomes due immediately, never lost).
type Wheel[T any] struct {
	base int64  // all live entries have at >= base
	seq  uint64 // monotonic push counter; also the cancel handle
	n    int    // stored entries, including canceled-but-unreaped ones

	slots [numLevels][numSlots][]entry[T]
	occ   [numLevels]uint64 // per-level slot occupancy bitmaps

	// ovf holds entries with at-base >= span: a min-heap on (at, seq).
	ovf []entry[T]

	// canceled marks live handles whose entries must be dropped instead of
	// delivered; entries are reaped lazily when their slot is next touched.
	// Nil until the first Cancel — the simulator never cancels, so the hot
	// path never allocates or consults it.
	canceled map[uint64]struct{}

	scratch []entry[T] // delivery buffer, reused across PopDue calls
}

// New returns an empty wheel based at cycle 0.
func New[T any]() *Wheel[T] { return &Wheel[T]{} }

// Len returns the number of pending (non-canceled) entries.
func (w *Wheel[T]) Len() int { return w.n - len(w.canceled) }

// Push schedules v at cycle at (clamped up to the wheel base if in the past)
// and returns a handle usable with Cancel until the entry is delivered.
func (w *Wheel[T]) Push(at int64, v T) uint64 {
	if at < w.base {
		at = w.base
	}
	w.seq++
	w.place(entry[T]{at: at, seq: w.seq, val: v})
	w.n++
	return w.seq
}

// Cancel drops the entry behind a handle returned by Push. The handle must
// still be pending: canceling an already-delivered (or already-canceled)
// handle corrupts the count. The schedulers never cancel — wakes there are
// allowed to be spurious — so this exists for callers that need exactness.
func (w *Wheel[T]) Cancel(handle uint64) {
	if w.canceled == nil {
		w.canceled = make(map[uint64]struct{})
	}
	w.canceled[handle] = struct{}{}
}

// Reset discards every entry and rebases the wheel at cycle 0. Slot and
// buffer capacity is kept so a reset wheel re-fills without allocating.
func (w *Wheel[T]) Reset() {
	for l := 0; l < numLevels; l++ {
		for occ := w.occ[l]; occ != 0; occ &= occ - 1 {
			s := bits.TrailingZeros64(occ)
			clearEntries(w.slots[l][s])
			w.slots[l][s] = w.slots[l][s][:0]
		}
		w.occ[l] = 0
	}
	clearEntries(w.ovf)
	w.ovf = w.ovf[:0]
	w.canceled = nil
	w.n = 0
	w.base = 0
}

// place files an entry at the level matching its distance from the base,
// dropping it if canceled (cascades route stale entries through here, which
// is where they die). Precondition for live entries: e.at >= w.base.
func (w *Wheel[T]) place(e entry[T]) {
	if len(w.canceled) != 0 {
		if _, dead := w.canceled[e.seq]; dead {
			delete(w.canceled, e.seq)
			w.n--
			return
		}
	}
	d := e.at - w.base
	if d >= span {
		w.ovfPush(e)
		return
	}
	l := 0
	for d >= int64(numSlots)<<(slotBits*l) {
		l++
	}
	s := int(e.at>>(slotBits*l)) & slotMask
	w.slots[l][s] = append(w.slots[l][s], e)
	w.occ[l] |= 1 << s
}

// advanceTo moves the base forward to nb, cascading every higher-level slot
// whose window the move crosses and refilling from the overflow heap.
// Precondition: no live entry has at < nb (callers only advance past
// delivered deadlines or provably-empty time).
func (w *Wheel[T]) advanceTo(nb int64) {
	old := w.base
	if nb <= old {
		return
	}
	w.base = nb
	for l := 1; l < numLevels; l++ {
		shift := uint(slotBits * l)
		oldw, neww := old>>shift, nb>>shift
		if oldw == neww {
			break // higher-level windows are unchanged too
		}
		if neww-oldw >= numSlots {
			// Every slot's window lies in (oldw, oldw+numSlots] <= neww.
			for occ := w.occ[l]; occ != 0; occ &= occ - 1 {
				w.flush(l, bits.TrailingZeros64(occ))
			}
			continue
		}
		for occ := w.occ[l]; occ != 0; occ &= occ - 1 {
			s := bits.TrailingZeros64(occ)
			// The slot's window is the unique w in (oldw, oldw+numSlots]
			// congruent to s mod numSlots.
			d := (int64(s) - oldw) & slotMask
			if d == 0 {
				d = numSlots
			}
			if oldw+d <= neww {
				w.flush(l, s)
			}
		}
	}
	for len(w.ovf) > 0 && w.ovf[0].at-nb < span {
		w.place(w.ovfPop())
	}
}

// flush re-files every entry of a higher-level slot. Live entries always move
// to a strictly lower level (their window has become current), so place never
// appends back into the slot being drained.
func (w *Wheel[T]) flush(l, s int) {
	es := w.slots[l][s]
	w.occ[l] &^= 1 << s
	for _, e := range es {
		w.place(e)
	}
	clearEntries(es)
	w.slots[l][s] = es[:0]
}

// reap drops canceled entries from a slot in place and returns the survivors.
func (w *Wheel[T]) reap(l, s int) []entry[T] {
	es := w.slots[l][s]
	kept := es[:0]
	for _, e := range es {
		if _, dead := w.canceled[e.seq]; dead {
			delete(w.canceled, e.seq)
			w.n--
		} else {
			kept = append(kept, e)
		}
	}
	clearEntries(es[len(kept):])
	w.slots[l][s] = kept
	return kept
}

// Min returns the earliest pending deadline; ok is false when empty. It never
// advances the base: per level it probes the occupancy bitmap for the
// earliest-window slot and takes that slot's minimum (sufficient, since any
// other slot's window starts after this one ends), plus the overflow head.
func (w *Wheel[T]) Min() (at int64, ok bool) {
	best := int64(1)<<62 - 1
	any := false

	// Level 0: slots hold exactly one tick each, at offsets 0..63 from the
	// base; the earliest occupied slot in circular order is the level min.
	// Slots emptied by reaping are retried so a canceled entry can't hide
	// a later live one.
	for w.occ[0] != 0 {
		cur := int(w.base) & slotMask
		rot := bits.RotateLeft64(w.occ[0], -cur)
		s := (cur + bits.TrailingZeros64(rot)) & slotMask
		es := w.slots[0][s]
		if len(w.canceled) != 0 {
			es = w.reap(0, s)
		}
		if len(es) == 0 {
			w.occ[0] &^= 1 << s
			continue
		}
		best, any = es[0].at, true
		break
	}

	for l := 1; l < numLevels; l++ {
		shift := uint(slotBits * l)
		cur := int(w.base>>shift) & slotMask
		for w.occ[l] != 0 {
			// Slot windows sit at offsets 1..64 after the base's window
			// (offset 0 would have cascaded), so rotate past cur itself.
			rot := bits.RotateLeft64(w.occ[l], -(cur + 1))
			s := (cur + 1 + bits.TrailingZeros64(rot)) & slotMask
			es := w.slots[l][s]
			if len(w.canceled) != 0 {
				es = w.reap(l, s)
			}
			if len(es) == 0 {
				w.occ[l] &^= 1 << s
				continue
			}
			for _, e := range es {
				if e.at < best {
					best, any = e.at, true
				}
			}
			break
		}
	}

	for len(w.ovf) > 0 {
		if _, dead := w.canceled[w.ovf[0].seq]; dead {
			e := w.ovfPop()
			delete(w.canceled, e.seq)
			w.n--
			continue
		}
		if w.ovf[0].at < best {
			best, any = w.ovf[0].at, true
		}
		break
	}
	return best, any
}

// PopDue appends every entry with deadline <= now to out in (at, seq) order
// and returns the extended slice. The base ends at now+1 — never further, so
// subsequent pushes may target any cycle past now.
func (w *Wheel[T]) PopDue(now int64, out []Due[T]) []Due[T] {
	for {
		at, ok := w.Min()
		if !ok || at > now {
			break
		}
		// Advancing to the due deadline cascades its window down, so every
		// at-deadline entry now sits in the level-0 slot for that tick.
		w.advanceTo(at)
		s := int(at) & slotMask
		es := w.slots[0][s]
		if len(w.canceled) != 0 {
			es = w.reap(0, s)
		}
		w.scratch = append(w.scratch[:0], es...)
		clearEntries(es)
		w.slots[0][s] = es[:0]
		w.occ[0] &^= 1 << s
		w.n -= len(w.scratch)
		// Cascading can disorder same-tick entries; restore push order.
		slices.SortFunc(w.scratch, func(a, b entry[T]) int {
			switch {
			case a.seq < b.seq:
				return -1
			case a.seq > b.seq:
				return 1
			}
			return 0
		})
		for _, e := range w.scratch {
			out = append(out, Due[T]{At: e.at, Val: e.val})
		}
		clearEntries(w.scratch)
	}
	if w.base <= now {
		w.advanceTo(now + 1)
	}
	return out
}

// clearEntries zeroes a drained slice so stale values don't pin T's pointers.
func clearEntries[T any](es []entry[T]) {
	for i := range es {
		es[i] = entry[T]{}
	}
}

// Overflow min-heap on (at, seq).

func ovfLess[T any](a, b entry[T]) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

func (w *Wheel[T]) ovfPush(e entry[T]) {
	w.ovf = append(w.ovf, e)
	for i := len(w.ovf) - 1; i > 0; {
		p := (i - 1) / 2
		if !ovfLess(w.ovf[i], w.ovf[p]) {
			break
		}
		w.ovf[p], w.ovf[i] = w.ovf[i], w.ovf[p]
		i = p
	}
}

func (w *Wheel[T]) ovfPop() entry[T] {
	e := w.ovf[0]
	last := len(w.ovf) - 1
	w.ovf[0] = w.ovf[last]
	w.ovf[last] = entry[T]{}
	w.ovf = w.ovf[:last]
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < len(w.ovf) && ovfLess(w.ovf[l], w.ovf[small]) {
			small = l
		}
		if r := 2*i + 2; r < len(w.ovf) && ovfLess(w.ovf[r], w.ovf[small]) {
			small = r
		}
		if small == i {
			return e
		}
		w.ovf[i], w.ovf[small] = w.ovf[small], w.ovf[i]
		i = small
	}
}
