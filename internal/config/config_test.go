package config

import (
	"strings"
	"testing"
)

func TestBaselinePresetsValid(t *testing.T) {
	for name, cfg := range map[string]Config{
		"baseline32":      Baseline32(),
		"baseline16":      Baseline16(),
		"schemes-on":      Baseline32().WithSchemes(true, true),
		"2-stage routers": func() Config { c := Baseline32(); c.NoC.Pipeline = Pipeline2; return c }(),
		"sharded":         func() Config { c := Baseline32(); c.Run.Shards = 4; return c }(),
		"16x16 mesh":      func() Config { c := Baseline32(); c.Mesh = Mesh{Width: 16, Height: 16}; return c }(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestBaseline32MatchesTable1(t *testing.T) {
	c := Baseline32()
	if c.Mesh.Width != 8 || c.Mesh.Height != 4 || c.Mesh.Nodes() != 32 {
		t.Errorf("mesh %dx%d", c.Mesh.Width, c.Mesh.Height)
	}
	if c.L1.SizeBytes != 32<<10 || c.L1.Ways != 1 || c.L1.Latency != 3 || c.L1.LineBytes != 64 {
		t.Errorf("L1 %+v", c.L1)
	}
	if c.L2.SizeBytes != 512<<10 || c.L2.Latency != 10 {
		t.Errorf("L2 %+v", c.L2)
	}
	if c.DRAM.Controllers != 4 || c.DRAM.BanksPerCtl != 16 || c.DRAM.BusMultiplier != 5 {
		t.Errorf("DRAM %+v", c.DRAM)
	}
	if c.CPU.WindowSize != 128 || c.CPU.LSQSize != 64 {
		t.Errorf("CPU %+v", c.CPU)
	}
	if c.NoC.Pipeline != Pipeline5 || c.NoC.FlitBits != 128 || c.NoC.BufferDepth != 5 || c.NoC.VCsPerPort != 4 {
		t.Errorf("NoC %+v", c.NoC)
	}
	if c.S1.ThresholdFactor != 1.2 {
		t.Errorf("scheme-1 threshold factor %v", c.S1.ThresholdFactor)
	}
	if c.S2.HistoryWindow != 2000 || c.S2.IdleThreshold != 1 {
		t.Errorf("scheme-2 defaults %+v", c.S2)
	}
}

func TestValidationRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"tiny mesh", func(c *Config) { c.Mesh.Width = 1 }},
		{"huge mesh", func(c *Config) { c.Mesh.Width = 64; c.Mesh.Height = 64 }},
		{"odd VCs", func(c *Config) { c.NoC.VCsPerPort = 3 }},
		{"zero buffers", func(c *Config) { c.NoC.BufferDepth = 0 }},
		{"narrow flits", func(c *Config) { c.NoC.FlitBits = 32 }},
		{"bad pipeline", func(c *Config) { c.NoC.Pipeline = 3 }},
		{"negative starvation", func(c *Config) { c.NoC.StarvationWindow = -1 }},
		{"bad L1 line", func(c *Config) { c.L1.LineBytes = 48 }},
		{"L1/L2 line mismatch", func(c *Config) { c.L1.LineBytes = 128 }},
		{"L2 zero ways", func(c *Config) { c.L2.Ways = 0 }},
		{"3 controllers", func(c *Config) { c.DRAM.Controllers = 3 }},
		{"non-pow2 banks", func(c *Config) { c.DRAM.BanksPerCtl = 12 }},
		{"zero bus mult", func(c *Config) { c.DRAM.BusMultiplier = 0 }},
		{"tiny row", func(c *Config) { c.DRAM.RowBytes = 32 }},
		{"zero CAS", func(c *Config) { c.DRAM.TCAS = 0 }},
		{"bad interleave", func(c *Config) { c.DRAM.BankInterleaveLines = 12 }},
		{"interleave too big", func(c *Config) { c.DRAM.BankInterleaveLines = 1 << 20 }},
		{"zero drain", func(c *Config) { c.DRAM.WriteDrainHigh = 0 }},
		{"negative starve", func(c *Config) { c.DRAM.StarveLimit = -1 }},
		{"zero window", func(c *Config) { c.CPU.WindowSize = 0 }},
		{"LSQ > window", func(c *Config) { c.CPU.LSQSize = c.CPU.WindowSize + 1 }},
		{"zero MSHR limit", func(c *Config) { c.CPU.MaxOutMiss = 0 }},
		{"S1 zero factor", func(c *Config) { c.S1.Enabled = true; c.S1.ThresholdFactor = 0 }},
		{"S1 zero period", func(c *Config) { c.S1.Enabled = true; c.S1.UpdatePeriod = 0 }},
		{"S2 zero window", func(c *Config) { c.S2.Enabled = true; c.S2.HistoryWindow = 0 }},
		{"S2 zero threshold", func(c *Config) { c.S2.Enabled = true; c.S2.IdleThreshold = 0 }},
		{"no measurement", func(c *Config) { c.Run.MeasureCycles = 0 }},
		{"negative shards", func(c *Config) { c.Run.Shards = -2 }},
		{"too many shards", func(c *Config) { c.Run.Shards = 128 }},
		{"shards > tiles", func(c *Config) { c.Mesh = Mesh{Width: 2, Height: 2}; c.Run.Shards = 8 }},
	}
	for _, tc := range cases {
		cfg := Baseline32()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

// TestValidateVCsPerVNet pins the divisibility rule: the router splits
// VCsPerPort across NumVNets virtual networks by integer division, so any
// remainder would silently strand trailing VCs on every port.
func TestValidateVCsPerVNet(t *testing.T) {
	cases := []struct {
		vcs int
		ok  bool
	}{
		{0, false},
		{1, false},
		{2, true},
		{3, false},
		{4, true},
		{5, false},
		{6, true},
		{7, false},
		{8, true},
		{-2, false},
	}
	for _, tc := range cases {
		cfg := Baseline32()
		cfg.NoC.VCsPerPort = tc.vcs
		err := cfg.Validate()
		if tc.ok && err != nil {
			t.Errorf("VCsPerPort=%d: rejected valid config: %v", tc.vcs, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("VCsPerPort=%d: accepted %d VCs not divisible by %d vnets",
				tc.vcs, tc.vcs, NumVNets)
		}
	}
}

// TestValidateCheckpointFields covers the checkpoint/resume configuration
// surface. Snapshots are partition-agnostic — the stepping layout (Shards,
// NoSteal) is free to differ between save and restore — so no cross-config
// agreement is enforced here; see TestCheckpointForkEquivalence's
// cross-worker-count modes in internal/sim.
func TestValidateCheckpointFields(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Run)
		wantErr string // substring of the expected error; "" = must validate
	}{
		{"disabled", func(r *Run) {}, ""},
		{"checkpoint at warmup boundary", func(r *Run) {
			r.CheckpointAt = r.WarmupCycles
		}, ""},
		{"checkpoint mid-measurement", func(r *Run) {
			r.CheckpointAt = r.WarmupCycles + r.MeasureCycles/2
		}, ""},
		{"checkpoint at end of window", func(r *Run) {
			r.CheckpointAt = r.WarmupCycles + r.MeasureCycles
		}, ""},
		{"resume at checkpoint", func(r *Run) {
			r.CheckpointAt = r.WarmupCycles
			r.ResumeFrom = r.WarmupCycles
		}, ""},
		{"resume without checkpoint", func(r *Run) {
			r.ResumeFrom = r.WarmupCycles
		}, ""},
		{"negative checkpoint cycle", func(r *Run) {
			r.CheckpointAt = -1
		}, "CheckpointAt"},
		{"negative resume cycle", func(r *Run) {
			r.ResumeFrom = -200_000
		}, "ResumeFrom"},
		{"checkpoint past run window", func(r *Run) {
			r.CheckpointAt = r.WarmupCycles + r.MeasureCycles + 1
		}, "past"},
		{"resume past checkpoint", func(r *Run) {
			r.CheckpointAt = r.WarmupCycles
			r.ResumeFrom = r.WarmupCycles + 1
		}, "resumes past"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Baseline32()
			tc.mutate(&cfg.Run)
			err := cfg.Validate()
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("valid config rejected: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatal("invalid config accepted")
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateShards pins the worker-count rules: any positive count up to
// min(64, tiles) is legal (contiguous cost-balanced ranges replaced the old
// rectangular quadrant split, so power-of-two is no longer required), zero
// selects the sequential stepper, and negative or oversized counts are
// configuration errors.
func TestValidateShards(t *testing.T) {
	cases := []struct {
		name    string
		w, h, k int
		wantErr string // substring of the expected error; "" = must validate
	}{
		{"sequential", 8, 4, 0, ""},
		{"single worker", 8, 4, 1, ""},
		{"pow2 workers", 8, 4, 4, ""},
		{"non-pow2 workers", 8, 4, 3, ""},
		{"non-pow2 workers large", 16, 16, 7, ""},
		{"workers equal tiles", 2, 2, 4, ""},
		{"cap", 16, 16, 64, ""},
		{"negative", 8, 4, -2, "positive"},
		{"above cap", 16, 16, 65, "max 64"},
		{"more workers than tiles", 2, 2, 5, "exceeds the 4 mesh tiles"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Baseline32()
			cfg.Mesh = Mesh{Width: tc.w, Height: tc.h}
			cfg.Run.Shards = tc.k
			err := cfg.Validate()
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("Shards=%d on %dx%d rejected: %v", tc.k, tc.w, tc.h, err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("Shards=%d on %dx%d accepted", tc.k, tc.w, tc.h)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestMCNodesCorners(t *testing.T) {
	c := Baseline32()
	got := c.MCNodes()
	want := []int{0, 7, 24, 31} // four corners of the 8x4 mesh
	if len(got) != 4 {
		t.Fatalf("%d MC nodes", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("MC %d at tile %d, want %d", i, got[i], want[i])
		}
	}
	c16 := Baseline16()
	got16 := c16.MCNodes()
	if len(got16) != 2 || got16[0] != 0 || got16[1] != 15 {
		t.Errorf("16-core MCs at %v, want opposite corners [0 15]", got16)
	}
}

func TestFlitCounts(t *testing.T) {
	c := Baseline32()
	if got := c.RequestFlits(); got != 1 {
		t.Errorf("request flits %d", got)
	}
	if got := c.ResponseFlits(); got != 5 { // header + 512/128
		t.Errorf("response flits %d", got)
	}
	c.NoC.FlitBits = 256
	if got := c.ResponseFlits(); got != 3 {
		t.Errorf("response flits at 256-bit %d", got)
	}
}

func TestWithSchemes(t *testing.T) {
	c := Baseline32().WithSchemes(true, false)
	if !c.S1.Enabled || c.S2.Enabled {
		t.Error("WithSchemes toggles wrong")
	}
	if Baseline32().S1.Enabled {
		t.Error("WithSchemes mutated the preset")
	}
}

func TestCacheSets(t *testing.T) {
	c := Baseline32()
	if got := c.L1.Sets(); got != 512 {
		t.Errorf("L1 sets %d", got)
	}
	if got := c.L2.Sets(); got != 1024 {
		t.Errorf("L2 sets %d", got)
	}
}
