package config

import (
	"reflect"
	"testing"
)

func TestKeyEqualConfigsEqualKeys(t *testing.T) {
	a, b := Baseline32(), Baseline32()
	if a.Key() != b.Key() {
		t.Fatalf("equal configs produced different keys:\n%s\n%s", a.Key(), b.Key())
	}
	a.NoC.ClockDivisors = map[int]int{3: 2, 7: 4}
	b.NoC.ClockDivisors = map[int]int{7: 4, 3: 2}
	if a.Key() != b.Key() {
		t.Fatal("clock-divisor insertion order leaked into the key")
	}
	if Baseline32().Key() == Baseline16().Key() {
		t.Fatal("Baseline32 and Baseline16 share a key")
	}
}

// TestKeyDistinguishesEveryField walks the whole Config struct with
// reflection, perturbs each leaf field one at a time, and requires the key to
// change. This also guards future fields: adding a Config field without
// extending Key fails here.
func TestKeyDistinguishesEveryField(t *testing.T) {
	base := Baseline32()
	baseKey := base.Key()
	seen := map[string]string{} // perturbed key -> field path, for collision reporting

	var walk func(v reflect.Value, path string, root *Config)
	walk = func(v reflect.Value, path string, root *Config) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(v.Field(i), path+"."+v.Type().Field(i).Name, root)
			}
		case reflect.Map:
			// ClockDivisors: adding an entry must change the key.
			old := v.Interface().(map[int]int)
			v.Set(reflect.ValueOf(map[int]int{1: 3}))
			check(t, root, path+"[+entry]", baseKey, seen)
			v.Set(reflect.ValueOf(old))
		case reflect.Bool:
			v.SetBool(!v.Bool())
			check(t, root, path, baseKey, seen)
			v.SetBool(!v.Bool())
		case reflect.Int, reflect.Int64:
			old := v.Int()
			v.SetInt(old + 1)
			check(t, root, path, baseKey, seen)
			v.SetInt(old)
		case reflect.Float64:
			old := v.Float()
			v.SetFloat(old + 0.125)
			check(t, root, path, baseKey, seen)
			v.SetFloat(old)
		default:
			t.Fatalf("config field %s has kind %s the key test cannot perturb; teach it and Key about it", path, v.Kind())
		}
	}
	walk(reflect.ValueOf(&base).Elem(), "Config", &base)
}

func check(t *testing.T, c *Config, path, baseKey string, seen map[string]string) {
	t.Helper()
	k := c.Key()
	if k == baseKey {
		t.Errorf("perturbing %s did not change the key", path)
		return
	}
	if prev, ok := seen[k]; ok {
		t.Errorf("perturbing %s collides with perturbing %s", path, prev)
	}
	seen[k] = path
}
