package config

import (
	"sort"
	"strconv"
)

// Key returns a deterministic, cheap cache key for the configuration: an
// explicit field-by-field encoding, so two equal configs always produce the
// same key and any field change produces a different one. It replaces the
// former fmt.Sprintf("%+v", cfg) key of the experiment runner, which
// allocated heavily on every cache lookup (reflection plus a multi-hundred
// byte string per call) and sat on the hot path of the run cache.
//
// The encoding writes every field in declaration order separated by ','.
// ClockDivisors, the only map, is flattened in ascending router-id order so
// iteration order cannot leak into the key.
func (c Config) Key() string {
	// One config encodes to ~190 bytes today; 256 avoids regrowth.
	b := make([]byte, 0, 256)
	appendInt := func(v int64) {
		b = strconv.AppendInt(b, v, 10)
		b = append(b, ',')
	}
	appendBool := func(v bool) {
		if v {
			b = append(b, '1', ',')
		} else {
			b = append(b, '0', ',')
		}
	}
	appendFloat := func(v float64) {
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
		b = append(b, ',')
	}

	appendInt(int64(c.Mesh.Width))
	appendInt(int64(c.Mesh.Height))

	appendInt(int64(c.NoC.Pipeline))
	appendInt(int64(c.NoC.VCsPerPort))
	appendInt(int64(c.NoC.BufferDepth))
	appendInt(int64(c.NoC.FlitBits))
	appendInt(int64(c.NoC.Routing))
	appendInt(int64(c.NoC.StarvationMode))
	appendInt(c.NoC.StarvationWindow)
	appendInt(c.NoC.BatchInterval)
	appendBool(c.NoC.EnableBypass)
	if len(c.NoC.ClockDivisors) > 0 {
		ids := make([]int, 0, len(c.NoC.ClockDivisors))
		for id := range c.NoC.ClockDivisors {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			b = append(b, 'd')
			appendInt(int64(id))
			appendInt(int64(c.NoC.ClockDivisors[id]))
		}
	}
	b = append(b, ';')

	for _, cc := range [2]Cache{c.L1, c.L2} {
		appendInt(int64(cc.SizeBytes))
		appendInt(int64(cc.LineBytes))
		appendInt(int64(cc.Ways))
		appendInt(cc.Latency)
		appendInt(int64(cc.MSHRs))
		appendBool(cc.LIPInsertion)
		b = append(b, ';')
	}

	appendInt(int64(c.DRAM.Controllers))
	appendInt(int64(c.DRAM.BanksPerCtl))
	appendInt(int64(c.DRAM.BusMultiplier))
	appendInt(int64(c.DRAM.TActivate))
	appendInt(int64(c.DRAM.TPrecharge))
	appendInt(int64(c.DRAM.TCAS))
	appendInt(int64(c.DRAM.TBurst))
	appendInt(int64(c.DRAM.CtlLatency))
	appendInt(int64(c.DRAM.RowBytes))
	appendInt(int64(c.DRAM.BankInterleaveLines))
	appendInt(int64(c.DRAM.WriteDrainHigh))
	appendInt(c.DRAM.StarveLimit)
	appendInt(c.DRAM.RefreshPeriod)
	appendInt(int64(c.DRAM.RefreshCycles))
	appendInt(int64(c.DRAM.QueueCap))
	appendInt(int64(c.DRAM.Sched))
	b = append(b, ';')

	appendInt(int64(c.CPU.WindowSize))
	appendInt(int64(c.CPU.LSQSize))
	appendInt(int64(c.CPU.Width))
	appendInt(c.CPU.NonMemLat)
	appendInt(c.CPU.L1HitExtra)
	appendInt(int64(c.CPU.MaxOutMiss))
	appendInt(c.CPU.CommitExtra)
	b = append(b, ';')

	appendBool(c.S1.Enabled)
	appendFloat(c.S1.ThresholdFactor)
	appendInt(c.S1.UpdatePeriod)
	appendInt(c.S1.InitialThreshold)
	b = append(b, ';')

	appendBool(c.S2.Enabled)
	appendInt(c.S2.HistoryWindow)
	appendInt(int64(c.S2.IdleThreshold))
	b = append(b, ';')

	appendInt(c.Run.WarmupCycles)
	appendInt(c.Run.MeasureCycles)
	appendInt(c.Run.Seed)
	appendInt(int64(c.Run.Shards))
	appendBool(c.Run.NoSteal)
	appendInt(c.Run.CheckpointAt)
	appendInt(c.Run.ResumeFrom)
	appendBool(c.AppAwareNet)

	return string(b)
}

// SnapshotKey returns the structural compatibility key of a checkpoint: the
// Key of the configuration with everything a snapshot does not depend on
// zeroed out. Two configurations with equal SnapshotKeys describe the same
// machine state layout (geometry, cache shapes, DRAM organization, trace
// seed), so a warmup snapshot taken under one restores into the other. Run
// windows, the stepping layout (worker count and stealing mode — snapshots
// are partition-agnostic, so a sequential warmup restores into a sharded
// run and vice versa) and the prioritization/scheduling policies — pure
// decision logic with separately-carried state — are deliberately excluded,
// which is what lets one baseline warmup snapshot fork into Scheme-1/
// Scheme-2/app-aware measurement configurations.
func (c Config) SnapshotKey() string {
	c.Run.WarmupCycles = 0
	c.Run.MeasureCycles = 0
	c.Run.Shards = 0
	c.Run.NoSteal = false
	c.Run.CheckpointAt = 0
	c.Run.ResumeFrom = 0
	c.S1 = Scheme1{}
	c.S2 = Scheme2{}
	c.DRAM.Sched = FRFCFS
	c.AppAwareNet = false
	return c.Key()
}
