// Package config defines the configuration tree for the whole simulated
// system: mesh geometry, router microarchitecture, cache hierarchy, DRAM
// timing, the two prioritization schemes, and run lengths.
//
// The zero value is not usable; start from one of the presets (Baseline32,
// Baseline16) and override fields as needed, then call Validate.
package config

import (
	"errors"
	"fmt"
)

// AntiStarvation selects how the prioritized network bounds the wait of
// normal-priority messages (Section 3.3 of the paper).
type AntiStarvation int

const (
	// AgeWindow is the paper's default: a high-priority flit beats a
	// normal one only while the normal flit's age does not exceed the
	// high-priority flit's age by more than StarvationWindow cycles.
	AgeWindow AntiStarvation = iota
	// Batching divides time into BatchInterval-cycle batches; packets
	// from older batches always rank above newer ones, and priority only
	// breaks ties within a batch. The paper notes this requires a
	// synchronized global clock across the cores.
	Batching
)

// RoutingAlgo selects the mesh routing algorithm.
type RoutingAlgo int

const (
	// RoutingXY is deterministic dimension-order routing (Table 1).
	RoutingXY RoutingAlgo = iota
	// RoutingWestFirst is the west-first turn model: packets complete all
	// westward hops first, then route adaptively among the remaining
	// productive directions by downstream credit availability. Deadlock
	// free (no turn into west ever occurs after another direction).
	RoutingWestFirst
)

// MemSched selects the memory-controller scheduling policy.
type MemSched int

const (
	// FRFCFS is first-ready, first-come-first-served (row hits first),
	// the baseline scheduler of Table 1.
	FRFCFS MemSched = iota
	// FCFS serves strictly oldest-first, ignoring the row buffer.
	FCFS
	// AppAwareMem prefers requests of latency-sensitive (low-MPKI)
	// applications at the banks, modelling application-aware memory
	// schedulers the paper cites (Section 2.3); within a class it is
	// FR-FCFS.
	AppAwareMem
)

// RouterPipeline selects the depth of the router pipeline.
type RouterPipeline int

const (
	// Pipeline5 is the baseline five-stage router (BW, RC, VA, SA, ST).
	Pipeline5 RouterPipeline = 5
	// Pipeline2 is the aggressive two-stage router used in the
	// sensitivity study of Figure 17 (setup, ST) for all flits.
	Pipeline2 RouterPipeline = 2
)

// Mesh describes the 2D mesh topology.
type Mesh struct {
	Width  int // number of columns (x dimension)
	Height int // number of rows (y dimension)
}

// Nodes returns the total number of tiles in the mesh.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// MaxMeshTiles is the largest mesh Validate accepts. The simulator's data
// structures scale past this; the cap just keeps obviously absurd configs
// (typos like 1000x1000) from allocating gigabytes before failing elsewhere.
const MaxMeshTiles = 1024

// NumVNets is the number of virtual networks the NoC multiplexes over each
// physical link (requests and responses; protocol deadlock freedom requires
// keeping them on disjoint VCs). The router splits VCsPerPort evenly across
// the virtual networks by integer division, so Validate rejects any
// VCsPerPort not divisible by NumVNets — a non-divisible value would
// silently strand the trailing VCs on every port. Mirrored by a
// compile-time assertion against noc.NumVNets.
const NumVNets = 2

// NoC holds the network-on-chip parameters (Table 1, "NoC parameters").
type NoC struct {
	Pipeline RouterPipeline

	// VCsPerPort is the number of virtual channels per input port.
	// The VCs are split evenly across the NumVNets virtual networks
	// (requests and responses), so this must be a positive multiple of
	// NumVNets; Validate rejects anything else.
	VCsPerPort int

	// BufferDepth is the per-VC buffer capacity in flits.
	BufferDepth int

	// FlitBits is the flit width in bits; a 64-byte cache line plus a
	// header therefore occupies 1 + 512/FlitBits flits.
	FlitBits int

	// Routing picks the mesh routing algorithm.
	Routing RoutingAlgo

	// StarvationMode picks the anti-starvation mechanism.
	StarvationMode AntiStarvation

	// StarvationWindow is the AgeWindow bound: a high-priority flit
	// loses arbitration against a normal flit whose age exceeds the
	// high-priority flit's age by more than this many cycles.
	StarvationWindow int64

	// BatchInterval is the batch length in cycles for the Batching mode.
	BatchInterval int64

	// EnableBypass lets high-priority headers collapse BW/RC/VA/SA into a
	// single setup stage when they win arbitration (pipeline bypassing).
	EnableBypass bool

	// ClockDivisors slows individual routers: router id -> divisor k
	// means that router advances its pipeline once every k cycles
	// (frequency f/k). Unlisted routers run at full speed. The age field
	// remains correct without a global clock because Equation 1 lets each
	// router convert its local residence time to common cycles.
	ClockDivisors map[int]int
}

// Cache holds the parameters of one cache level.
type Cache struct {
	SizeBytes int
	LineBytes int
	Ways      int // 1 = direct mapped
	Latency   int64
	MSHRs     int

	// LIPInsertion selects streaming-resistant LRU insertion (new fills
	// enter at the LRU position, promoted on re-reference). Enabled for
	// the shared L2 so that no-reuse streams cannot flush the reused
	// working sets during the (scaled-down) simulation windows.
	LIPInsertion bool
}

// Sets returns the number of sets of the cache.
func (c Cache) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// DRAM holds the memory-system parameters (Table 1, "Memory Configuration").
// All t* timings are in memory-controller cycles; BusMultiplier converts them
// to CPU cycles.
type DRAM struct {
	Controllers   int // memory channels, placed at mesh corners
	BanksPerCtl   int
	BusMultiplier int // CPU cycles per memory-controller cycle

	TActivate  int // row activation (tRCD)
	TPrecharge int // precharge (tRP)
	TCAS       int // column access (tCL / tCWL)
	TBurst     int // data transfer occupancy of the shared bus
	CtlLatency int // fixed controller processing latency, in CPU cycles

	RowBytes int // row-buffer size per bank

	// BankInterleaveLines is the bank-interleave granularity within a
	// controller, in cache lines: this many consecutive per-controller
	// lines share a bank (and a row segment) before rotating to the next
	// bank. Must be a power of two dividing RowBytes/LineBytes.
	BankInterleaveLines int

	// WriteDrainHigh forces writes ahead of reads at a bank once that
	// many writebacks are parked there; otherwise writes are served only
	// when the bank has no ready read (read-priority with opportunistic
	// write drain).
	WriteDrainHigh int

	// StarveLimit caps FR-FCFS reordering: a request that has waited this
	// many CPU cycles is scheduled ahead of younger row-buffer hits.
	StarveLimit int64

	// RefreshPeriod is the interval between refresh events in CPU cycles
	// (0 disables refresh); RefreshCycles is how long every bank of the
	// controller stays busy per refresh, in memory cycles.
	RefreshPeriod int64
	RefreshCycles int

	// QueueCap caps pending requests per bank (0 = unbounded). The paper
	// observes queue buildup, so the default is unbounded.
	QueueCap int

	// Sched selects the memory scheduling policy (default FR-FCFS).
	Sched MemSched
}

// CPU holds the out-of-order core parameters.
type CPU struct {
	WindowSize  int // instruction window / ROB entries
	LSQSize     int // max in-flight memory instructions
	Width       int // fetch/commit width per cycle
	NonMemLat   int64
	L1HitExtra  int64 // unused beyond L1 latency; kept for clarity
	MaxOutMiss  int   // L1 MSHRs (bounds MLP)
	CommitExtra int64
}

// Scheme1 configures the latency-balancing response prioritization.
type Scheme1 struct {
	Enabled bool

	// ThresholdFactor multiplies the application's dynamic average
	// round-trip delay to obtain the lateness threshold (default 1.2).
	ThresholdFactor float64

	// UpdatePeriod is how often cores push fresh thresholds to the memory
	// controllers, in cycles. The paper uses 1 ms; scaled down here to
	// match shorter simulations.
	UpdatePeriod int64

	// InitialThreshold seeds the threshold before any round trip has
	// completed (in cycles).
	InitialThreshold int64
}

// Scheme2 configures the bank-load-balancing request prioritization.
type Scheme2 struct {
	Enabled bool

	// HistoryWindow is T: the lookback window, in cycles, of the per-node
	// bank history tables (default 2000).
	HistoryWindow int64

	// IdleThreshold is th: a request is prioritized if fewer than this
	// many requests were sent to its bank during the window (default 1).
	IdleThreshold int
}

// Run holds the measurement protocol.
type Run struct {
	WarmupCycles  int64
	MeasureCycles int64
	Seed          int64

	// Shards is the number of worker goroutines stepping the mesh in
	// parallel in event mode. 0 or 1 means the sequential single-goroutine
	// stepper. Must be positive and at most min(64, Mesh.Nodes()). The
	// tiles are split into contiguous chunks balanced by a per-tile
	// activity cost model, and idle workers steal leftover chunks within a
	// cycle unless NoSteal is set. Results are byte-identical for every
	// value; only wall-clock time changes.
	Shards int

	// NoSteal disables intra-cycle work-stealing between the shard
	// workers, pinning every chunk to its owning worker — a bisection
	// escape hatch (-steal=off on the CLIs). No effect on results.
	NoSteal bool

	// CheckpointAt names the cycle (measured from the start of the run,
	// warmup included) at which sim.RunWithCheckpoint serializes the full
	// simulator state. 0 disables checkpointing. Typically set to
	// WarmupCycles so one warmed-up snapshot forks many measurement
	// configurations.
	CheckpointAt int64

	// ResumeFrom asserts the cycle a restored snapshot was taken at;
	// sim.Restore rejects a snapshot from any other cycle. 0 skips the
	// check. It must not lie past CheckpointAt when both are set (a run
	// cannot resume after the point it is asked to checkpoint at).
	ResumeFrom int64
}

// Config is the complete system configuration.
type Config struct {
	Mesh Mesh
	NoC  NoC
	L1   Cache
	L2   Cache // per-bank; one bank per tile (S-NUCA)
	DRAM DRAM
	CPU  CPU
	S1   Scheme1
	S2   Scheme2
	Run  Run

	// AppAwareNet enables the application-aware network prioritization
	// baseline (Das et al.-style): every packet of the less
	// memory-intensive half of the applications is injected with high
	// priority. Mutually composable with (but normally compared against)
	// the paper's Scheme-1/2.
	AppAwareNet bool
}

// Baseline32 returns the paper's baseline configuration (Table 1): a 32-core
// 4x8 mesh with 4 memory controllers at the corners. Run lengths are scaled
// down ~100x relative to the paper (see DESIGN.md).
func Baseline32() Config {
	return Config{
		Mesh: Mesh{Width: 8, Height: 4},
		NoC: NoC{
			Pipeline: Pipeline5,
			// Table 1: 4 virtual channels per port, split between the
			// two virtual networks (requests, responses).
			VCsPerPort:       4,
			BufferDepth:      5,
			FlitBits:         128,
			StarvationMode:   AgeWindow,
			StarvationWindow: 1000,
			BatchInterval:    2000,
			EnableBypass:     true,
		},
		L1: Cache{
			SizeBytes: 32 << 10,
			LineBytes: 64,
			Ways:      1, // direct mapped
			Latency:   3,
			MSHRs:     32,
		},
		L2: Cache{
			SizeBytes:    512 << 10,
			LineBytes:    64,
			Ways:         8,
			Latency:      10,
			MSHRs:        16,
			LIPInsertion: true,
		},
		DRAM: DRAM{
			Controllers:   4,
			BanksPerCtl:   16,
			BusMultiplier: 5,
			// Timings in memory-bus cycles, following Table 1 and the
			// GEMS Ruby memory model the paper simulates: a row
			// conflict occupies its bank for tRP+tRCD+tCL = 22 cycles
			// (Table 1's bank busy time), while the shared channel
			// bus is busy only ~2 cycles per line (Ruby's
			// BASIC_BUS_BUSY_TIME), making the system bank-limited
			// rather than channel-limited.
			TActivate:           8,
			TPrecharge:          8,
			TCAS:                6,
			TBurst:              2,
			CtlLatency:          20,
			RowBytes:            8 << 10,
			BankInterleaveLines: 16,
			WriteDrainHigh:      32,
			StarveLimit:         1_500,
			RefreshPeriod:       312_000,
			RefreshCycles:       44,
		},
		CPU: CPU{
			WindowSize: 128,
			LSQSize:    64,
			Width:      4,
			NonMemLat:  1,
			MaxOutMiss: 16,
		},
		S1: Scheme1{
			Enabled:          false,
			ThresholdFactor:  1.2,
			UpdatePeriod:     50_000,
			InitialThreshold: 300,
		},
		S2: Scheme2{
			Enabled:       false,
			HistoryWindow: 2000,
			IdleThreshold: 1,
		},
		Run: Run{
			WarmupCycles:  200_000,
			MeasureCycles: 1_000_000,
			Seed:          1,
		},
	}
}

// Baseline16 returns the 16-core 4x4 configuration used in Figure 15: two
// memory controllers on opposite corners, all other parameters as in Table 1.
func Baseline16() Config {
	c := Baseline32()
	c.Mesh = Mesh{Width: 4, Height: 4}
	c.DRAM.Controllers = 2
	return c
}

// WithSchemes returns a copy of c with the two schemes toggled.
func (c Config) WithSchemes(s1, s2 bool) Config {
	c.S1.Enabled = s1
	c.S2.Enabled = s2
	return c
}

// ResponseFlits returns the number of flits of a data-bearing message
// (header + cache line).
func (c Config) ResponseFlits() int {
	return 1 + (c.L2.LineBytes*8+c.NoC.FlitBits-1)/c.NoC.FlitBits
}

// RequestFlits returns the number of flits of an address-only message.
func (c Config) RequestFlits() int { return 1 }

// Validate reports the first problem found in the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Mesh.Width < 2 || c.Mesh.Height < 2:
		return fmt.Errorf("config: mesh %dx%d too small (min 2x2)", c.Mesh.Width, c.Mesh.Height)
	case c.Mesh.Nodes() > MaxMeshTiles:
		return fmt.Errorf("config: mesh %dx%d has %d tiles (max %d)",
			c.Mesh.Width, c.Mesh.Height, c.Mesh.Nodes(), MaxMeshTiles)
	case c.NoC.VCsPerPort < NumVNets || c.NoC.VCsPerPort%NumVNets != 0:
		return fmt.Errorf("config: VCsPerPort %d must be a positive multiple of the %d virtual networks (VCs are split evenly per vnet; a remainder would strand trailing VCs)",
			c.NoC.VCsPerPort, NumVNets)
	case c.NoC.BufferDepth < 1:
		return errors.New("config: BufferDepth must be >= 1")
	case c.NoC.FlitBits < 64:
		return fmt.Errorf("config: FlitBits %d too small for a header", c.NoC.FlitBits)
	case c.NoC.Pipeline != Pipeline5 && c.NoC.Pipeline != Pipeline2:
		return fmt.Errorf("config: unsupported router pipeline %d", c.NoC.Pipeline)
	case c.NoC.StarvationWindow < 0:
		return errors.New("config: StarvationWindow must be >= 0")
	case c.NoC.StarvationMode != AgeWindow && c.NoC.StarvationMode != Batching:
		return fmt.Errorf("config: unknown anti-starvation mode %d", c.NoC.StarvationMode)
	case c.NoC.StarvationMode == Batching && c.NoC.BatchInterval <= 0:
		return errors.New("config: BatchInterval must be > 0 for batching")
	case c.NoC.Routing != RoutingXY && c.NoC.Routing != RoutingWestFirst:
		return fmt.Errorf("config: unknown routing algorithm %d", c.NoC.Routing)
	}
	for id, div := range c.NoC.ClockDivisors {
		if id < 0 || id >= c.Mesh.Nodes() {
			return fmt.Errorf("config: clock divisor for nonexistent router %d", id)
		}
		if div < 1 {
			return fmt.Errorf("config: router %d clock divisor %d must be >= 1", id, div)
		}
	}
	for _, cc := range []struct {
		name string
		c    Cache
	}{{"L1", c.L1}, {"L2", c.L2}} {
		if err := validateCache(cc.name, cc.c); err != nil {
			return err
		}
	}
	if c.L1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("config: L1 line %dB != L2 line %dB", c.L1.LineBytes, c.L2.LineBytes)
	}
	switch {
	case c.DRAM.Controllers != 2 && c.DRAM.Controllers != 4:
		return fmt.Errorf("config: %d memory controllers unsupported (2 or 4, placed at corners)", c.DRAM.Controllers)
	case c.DRAM.BanksPerCtl < 1 || c.DRAM.BanksPerCtl&(c.DRAM.BanksPerCtl-1) != 0:
		return fmt.Errorf("config: BanksPerCtl %d must be a power of two", c.DRAM.BanksPerCtl)
	case c.DRAM.BusMultiplier < 1:
		return errors.New("config: BusMultiplier must be >= 1")
	case c.DRAM.RowBytes < c.L2.LineBytes || c.DRAM.RowBytes&(c.DRAM.RowBytes-1) != 0:
		return fmt.Errorf("config: RowBytes %d must be a power of two >= line size", c.DRAM.RowBytes)
	case c.DRAM.TActivate <= 0 || c.DRAM.TPrecharge <= 0 || c.DRAM.TCAS <= 0 || c.DRAM.TBurst <= 0:
		return errors.New("config: DRAM timing parameters must be positive")
	case c.DRAM.BankInterleaveLines <= 0 || c.DRAM.BankInterleaveLines&(c.DRAM.BankInterleaveLines-1) != 0:
		return fmt.Errorf("config: BankInterleaveLines %d must be a power of two", c.DRAM.BankInterleaveLines)
	case c.DRAM.BankInterleaveLines > c.DRAM.RowBytes/c.L2.LineBytes:
		return fmt.Errorf("config: BankInterleaveLines %d exceeds the %d lines of a row",
			c.DRAM.BankInterleaveLines, c.DRAM.RowBytes/c.L2.LineBytes)
	case c.DRAM.WriteDrainHigh < 1:
		return errors.New("config: WriteDrainHigh must be >= 1")
	case c.DRAM.StarveLimit < 0:
		return errors.New("config: StarveLimit must be >= 0")
	case c.DRAM.Sched != FRFCFS && c.DRAM.Sched != FCFS && c.DRAM.Sched != AppAwareMem:
		return fmt.Errorf("config: unknown memory scheduler %d", c.DRAM.Sched)
	}
	switch {
	case c.CPU.WindowSize < 1 || c.CPU.Width < 1:
		return errors.New("config: CPU window and width must be >= 1")
	case c.CPU.LSQSize < 1 || c.CPU.LSQSize > c.CPU.WindowSize:
		return fmt.Errorf("config: LSQSize %d must be in [1, WindowSize]", c.CPU.LSQSize)
	case c.CPU.MaxOutMiss < 1:
		return errors.New("config: MaxOutMiss must be >= 1")
	}
	if c.S1.Enabled {
		switch {
		case c.S1.ThresholdFactor <= 0:
			return errors.New("config: Scheme-1 ThresholdFactor must be > 0")
		case c.S1.UpdatePeriod <= 0:
			return errors.New("config: Scheme-1 UpdatePeriod must be > 0")
		}
	}
	if c.S2.Enabled {
		switch {
		case c.S2.HistoryWindow <= 0:
			return errors.New("config: Scheme-2 HistoryWindow must be > 0")
		case c.S2.IdleThreshold < 1:
			return errors.New("config: Scheme-2 IdleThreshold must be >= 1")
		}
	}
	if c.Run.MeasureCycles <= 0 || c.Run.WarmupCycles < 0 {
		return errors.New("config: run lengths invalid")
	}
	switch {
	case c.Run.CheckpointAt < 0:
		return fmt.Errorf("config: CheckpointAt %d must be >= 0", c.Run.CheckpointAt)
	case c.Run.ResumeFrom < 0:
		return fmt.Errorf("config: ResumeFrom %d must be >= 0", c.Run.ResumeFrom)
	case c.Run.CheckpointAt > c.Run.WarmupCycles+c.Run.MeasureCycles:
		return fmt.Errorf("config: CheckpointAt %d lies past the %d-cycle run window",
			c.Run.CheckpointAt, c.Run.WarmupCycles+c.Run.MeasureCycles)
	case c.Run.CheckpointAt != 0 && c.Run.ResumeFrom > c.Run.CheckpointAt:
		return fmt.Errorf("config: ResumeFrom %d resumes past CheckpointAt %d",
			c.Run.ResumeFrom, c.Run.CheckpointAt)
	}
	if k := c.Run.Shards; k != 0 {
		switch {
		case k < 0:
			return fmt.Errorf("config: Shards %d must be positive (0 selects the sequential stepper)", k)
		case k > 64:
			return fmt.Errorf("config: Shards %d too large (max 64)", k)
		case k > c.Mesh.Nodes():
			return fmt.Errorf("config: Shards %d exceeds the %d mesh tiles", k, c.Mesh.Nodes())
		}
	}
	return nil
}

func validateCache(name string, c Cache) error {
	switch {
	case c.LineBytes < 8 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("config: %s line size %d must be a power of two >= 8", name, c.LineBytes)
	case c.Ways < 1:
		return fmt.Errorf("config: %s ways must be >= 1", name)
	case c.SizeBytes < c.LineBytes*c.Ways:
		return fmt.Errorf("config: %s size %dB smaller than one set", name, c.SizeBytes)
	case c.SizeBytes%(c.LineBytes*c.Ways) != 0:
		return fmt.Errorf("config: %s size %dB not divisible into sets of %d ways", name, c.SizeBytes, c.Ways)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("config: %s set count %d must be a power of two", name, c.Sets())
	case c.Latency < 1:
		return fmt.Errorf("config: %s latency must be >= 1", name)
	case c.MSHRs < 1:
		return fmt.Errorf("config: %s MSHRs must be >= 1", name)
	}
	return nil
}

// MCNodes returns the tile indices (y*Width+x) hosting the memory
// controllers: the four mesh corners for 4 controllers, or two opposite
// corners for 2.
func (c Config) MCNodes() []int {
	w, h := c.Mesh.Width, c.Mesh.Height
	corner := func(x, y int) int { return y*w + x }
	if c.DRAM.Controllers == 2 {
		return []int{corner(0, 0), corner(w-1, h-1)}
	}
	return []int{corner(0, 0), corner(w-1, 0), corner(0, h-1), corner(w-1, h-1)}
}
