package par

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBarrierSerialOncePerRound drives one serial-section counter through a
// few rounds: the serial function must run exactly once per round, and every
// worker must observe its effects after release (the happens-before edge the
// sharded stepper's cycle bookkeeping depends on).
func TestBarrierSerialOncePerRound(t *testing.T) {
	const workers, rounds = 4, 1_000
	b := NewBarrier(workers)
	serialRuns := 0 // written only inside the serial section
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 1; r <= rounds; r++ {
				b.Wait(func() { serialRuns++ })
				// Plain read: the sense flip must order it after the
				// serial increment, or the race detector fires.
				if serialRuns != r {
					t.Errorf("round %d: saw %d serial runs", r, serialRuns)
					return
				}
				b.Wait(nil)
			}
		}()
	}
	wg.Wait()
	if serialRuns != rounds {
		t.Fatalf("serial section ran %d times, want %d", serialRuns, rounds)
	}
}

// TestBarrierStress is the lost-wakeup hunt: 10k rounds with randomized
// per-worker arrival skew (each worker burns a different amount of work
// before arriving, reshuffled every round), so arrivals hit the barrier in
// every possible interleaving — including the last arriver racing a slow
// releaser from the previous round. A single missed release deadlocks the
// test (caught by the package timeout); a double release corrupts the
// per-round phase counter check. Runs under -race in make ci, which verifies
// the sense flip publishes the serial section's writes.
func TestBarrierStress(t *testing.T) {
	const workers, rounds = 8, 10_000
	b := NewBarrier(workers)
	var phase atomic.Int64 // advanced only in the serial section
	var spun [workers]int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) * 7919))
			for r := 0; r < rounds; r++ {
				// Randomized skew: between 0 and ~2µs of busy work.
				for n := rng.Intn(200); n > 0; n-- {
					spun[w]++
				}
				b.Wait(func() { phase.Add(1) })
				if got := phase.Load(); got != int64(r+1) {
					t.Errorf("worker %d round %d: phase %d", w, r, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := phase.Load(); got != rounds {
		t.Fatalf("completed %d rounds, want %d", got, rounds)
	}
}

// TestBarrierSingleWorker pins the degenerate configuration the sequential
// fallback uses: with n=1 every Wait is its own last arriver, runs the
// serial section, and never blocks.
func TestBarrierSingleWorker(t *testing.T) {
	b := NewBarrier(1)
	runs := 0
	for i := 0; i < 100; i++ {
		b.Wait(func() { runs++ })
	}
	if runs != 100 {
		t.Fatalf("serial section ran %d times, want 100", runs)
	}
}

func TestBarrierRejectsZeroWorkers(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}
