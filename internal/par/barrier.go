package par

import (
	"runtime"
	"sync/atomic"
)

// Barrier is a sense-reversing spin barrier for a fixed set of workers that
// rendezvous many times per millisecond — the per-cycle synchronization
// primitive of the sharded simulator stepper. A channel-based barrier costs
// two scheduler round trips per worker per wait; this one is a single
// atomic add on the arrival path and a bounded spin on the release path,
// escalating to runtime.Gosched so oversubscribed hosts (fewer cores than
// workers) degrade to cooperative scheduling instead of burning a
// timeslice.
//
// The last arriver may run a serial section while the other workers wait:
// worker writes made before Wait are visible to the serial section, and
// serial-section writes are visible to every worker after release (the
// arrival add and the sense flip are the happens-before edges, built on
// sync/atomic so the race detector sees them too).
type Barrier struct {
	n       int32
	arrived atomic.Int32
	sense   atomic.Uint32
}

// NewBarrier returns a barrier for n workers. Every one of the n workers
// must call Wait for any of them to pass it.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("par: barrier needs at least one worker")
	}
	return &Barrier{n: int32(n)}
}

// spinBudget bounds the busy-wait before a blocked worker starts yielding
// its timeslice. Crossing a phase takes a few hundred nanoseconds when the
// peers are actually running, so a short spin catches the common case; on a
// host with fewer cores than workers the release can only happen after the
// spinner yields, hence the escalation.
const spinBudget = 256

// Wait blocks until all n workers arrived. The last arriver runs serial
// (when non-nil) before releasing the others; exactly one worker runs it
// per round, with the barrier fully quiesced around it.
func (b *Barrier) Wait(serial func()) {
	s := b.sense.Load()
	if b.arrived.Add(1) == b.n {
		if serial != nil {
			serial()
		}
		// Reset before flipping the sense: nobody passes the barrier until
		// the flip, so the next round's arrivals count from zero.
		b.arrived.Store(0)
		b.sense.Add(1)
		return
	}
	for spins := 0; b.sense.Load() == s; spins++ {
		if spins > spinBudget {
			runtime.Gosched()
		}
	}
}
