// Package par provides a minimal bounded parallel task group, the shared
// concurrency primitive of the experiment engine: a Group runs tasks on at
// most N goroutines and reports the first error. It is the stdlib-only
// equivalent of errgroup.Group with a SetLimit.
package par

import (
	"runtime"
	"sync"
)

// Group runs tasks concurrently, at most limit at a time.
type Group struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewGroup returns a group running at most limit tasks concurrently.
// limit <= 0 selects GOMAXPROCS.
func NewGroup(limit int) *Group {
	if limit <= 0 {
		limit = runtime.GOMAXPROCS(0)
	}
	return &Group{sem: make(chan struct{}, limit)}
}

// Go schedules one task. The task starts as soon as a worker slot frees.
func (g *Group) Go(fn func() error) {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.sem <- struct{}{}
		defer func() { <-g.sem }()
		if err := fn(); err != nil {
			g.mu.Lock()
			if g.err == nil {
				g.err = err
			}
			g.mu.Unlock()
		}
	}()
}

// Wait blocks until every scheduled task finished and returns the first
// error any of them reported.
func (g *Group) Wait() error {
	g.wg.Wait()
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}
