package par

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestGroupRunsEverything(t *testing.T) {
	g := NewGroup(4)
	var n atomic.Int64
	for i := 0; i < 100; i++ {
		g.Go(func() error { n.Add(1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d of 100 tasks", n.Load())
	}
}

func TestGroupBoundsConcurrency(t *testing.T) {
	const limit = 3
	g := NewGroup(limit)
	var cur, peak atomic.Int64
	var mu sync.Mutex
	for i := 0; i < 50; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			mu.Lock()
			if c > peak.Load() {
				peak.Store(c)
			}
			mu.Unlock()
			defer cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > limit {
		t.Fatalf("observed %d concurrent tasks, limit %d", peak.Load(), limit)
	}
}

func TestGroupFirstError(t *testing.T) {
	g := NewGroup(2)
	want := errors.New("boom")
	g.Go(func() error { return nil })
	g.Go(func() error { return want })
	g.Go(func() error { return errors.New("later") })
	if err := g.Wait(); err == nil {
		t.Fatal("no error reported")
	}
}

func TestGroupDefaultLimit(t *testing.T) {
	g := NewGroup(0)
	done := false
	g.Go(func() error { done = true; return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("task did not run")
	}
}
