package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 10)
	for _, v := range []int64{5, 15, 15, 95, 1000, -3} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	b := h.Buckets()
	if b[0] != 2 || b[1] != 2 || b[9] != 2 { // -3 clamps to 0; 95 and 1000 clamp to the last bucket
		t.Errorf("buckets %v", b)
	}
	wantMean := float64(5+15+15+95+1000+0) / 6
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Errorf("mean %.2f, want %.2f", h.Mean(), wantMean)
	}
}

func TestHistogramCDFPDF(t *testing.T) {
	h := NewHistogram(10, 5)
	for i := int64(0); i < 50; i++ {
		h.Add(i)
	}
	pdf := h.PDF()
	var sum float64
	for _, p := range pdf {
		sum += p.Y
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PDF sums to %.6f", sum)
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1].Y != 1 {
		t.Errorf("CDF ends at %.6f", cdf[len(cdf)-1].Y)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Y < cdf[i-1].Y {
			t.Fatalf("CDF decreases at %d", i)
		}
	}
	// Uniform over [0,50): each of the 5 buckets holds 20%.
	for i, p := range pdf {
		if math.Abs(p.Y-0.2) > 1e-9 {
			t.Errorf("bucket %d PDF %.3f, want 0.2", i, p.Y)
		}
	}
}

func TestHistogramCDFMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(7, 40)
		for _, v := range vals {
			h.Add(int64(v))
		}
		cdf := h.CDF()
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Y < cdf[i-1].Y {
				return false
			}
		}
		return len(vals) == 0 || cdf[len(cdf)-1].Y == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1, 1000)
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(50); p < 49 || p > 51 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(99); p < 98 || p > 100 {
		t.Errorf("p99 = %d", p)
	}
	if NewHistogram(1, 10).Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestFractionAbove(t *testing.T) {
	h := NewHistogram(10, 10)
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	if f := h.FractionAbove(60); math.Abs(f-0.4) > 1e-9 {
		t.Errorf("fraction above 60 = %.3f, want 0.4", f)
	}
}

func TestRunningMean(t *testing.T) {
	var m RunningMean
	if m.Mean() != 0 {
		t.Error("empty mean nonzero")
	}
	m.Add(2)
	m.Add(4)
	if m.Mean() != 3 || m.N() != 2 {
		t.Errorf("mean %.1f n %d", m.Mean(), m.N())
	}
	m.Reset()
	if m.N() != 0 {
		t.Error("reset failed")
	}
}

func TestQuantiles(t *testing.T) {
	var vals []int64
	for i := int64(1); i <= 100; i++ {
		vals = append(vals, i)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	qs := Quantiles(vals, 0.5, 0.9, 1.0)
	if qs[0] != 50 || qs[1] != 90 || qs[2] != 100 {
		t.Errorf("quantiles %v", qs)
	}
	if Quantiles(nil, 0.5) != nil {
		t.Error("empty input should return nil")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown(100, 10)
	b.Add([NumLegs]int64{10, 20, 100, 15, 5})  // total 150 -> bucket [100,200)
	b.Add([NumLegs]int64{20, 30, 120, 20, 10}) // total 200 -> bucket [200,300)
	b.Add([NumLegs]int64{10, 10, 100, 20, 10}) // total 150 -> bucket [100,200)
	rows := b.Rows()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Lo != 100 || rows[0].Count != 2 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[0].Avg[LegMemory] != 100 {
		t.Errorf("avg mem leg %.1f", rows[0].Avg[LegMemory])
	}
	if b.Count() != 3 {
		t.Errorf("count %d", b.Count())
	}
	overall := b.OverallAvg()
	var sum float64
	for _, v := range overall {
		sum += v
	}
	if math.Abs(sum-(150+200+150)/3.0) > 1e-9 {
		t.Errorf("overall leg sum %.2f", sum)
	}
}

func TestLegNames(t *testing.T) {
	want := []string{"L1 to L2", "L2 to Mem", "Mem", "Mem to L2", "L2 to L1"}
	for l := Leg(0); l < NumLegs; l++ {
		if l.String() != want[l] {
			t.Errorf("leg %d = %q, want %q", l, l.String(), want[l])
		}
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if err != nil || ws != 1.5 {
		t.Errorf("ws = %.2f err %v", ws, err)
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero alone IPC accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	_, _ = WeightedSpeedup([]float64{1}, []float64{1, 2})
}

func TestNormalizedSpeedup(t *testing.T) {
	v, err := NormalizedSpeedup(11, 10)
	if err != nil || math.Abs(v-1.1) > 1e-12 {
		t.Errorf("normalized %.3f err %v", v, err)
	}
	if _, err := NormalizedSpeedup(1, 0); err == nil {
		t.Error("zero base accepted")
	}
}

func TestMaxSlowdown(t *testing.T) {
	ms, err := MaxSlowdown([]float64{1, 0.5}, []float64{2, 2})
	if err != nil || ms != 4 {
		t.Errorf("max slowdown %.2f err %v", ms, err)
	}
	if _, err := MaxSlowdown([]float64{0}, []float64{1}); err == nil {
		t.Error("zero shared IPC accepted")
	}
}

func TestHarmonicSpeedup(t *testing.T) {
	hs, err := HarmonicSpeedup([]float64{1, 1}, []float64{2, 2})
	if err != nil || hs != 0.5 {
		t.Errorf("harmonic speedup %.2f err %v", hs, err)
	}
	if _, err := HarmonicSpeedup(nil, nil); err == nil {
		t.Error("empty harmonic speedup accepted")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean %.3f err %v", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty geomean accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative geomean accepted")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(100)
	s.Add(10, 1)
	s.Add(50, 3)
	s.Add(250, 5)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Cycle != 0 || pts[0].Avg != 2 || pts[0].N != 2 {
		t.Errorf("point 0 = %+v", pts[0])
	}
	if pts[1].Cycle != 200 || pts[1].Avg != 5 {
		t.Errorf("point 1 = %+v", pts[1])
	}
	if s.Interval() != 100 {
		t.Error("interval wrong")
	}
}
