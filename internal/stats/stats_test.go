package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(10, 10)
	for _, v := range []int64{5, 15, 15, 95, 1000, -3} {
		h.Add(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
	b := h.Buckets()
	if b[0] != 2 || b[1] != 2 || b[9] != 2 { // -3 clamps to 0; 95 and 1000 clamp to the last bucket
		t.Errorf("buckets %v", b)
	}
	wantMean := float64(5+15+15+95+1000+0) / 6
	if math.Abs(h.Mean()-wantMean) > 1e-9 {
		t.Errorf("mean %.2f, want %.2f", h.Mean(), wantMean)
	}
}

func TestHistogramCDFPDF(t *testing.T) {
	h := NewHistogram(10, 5)
	for i := int64(0); i < 50; i++ {
		h.Add(i)
	}
	pdf := h.PDF()
	var sum float64
	for _, p := range pdf {
		sum += p.Y
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("PDF sums to %.6f", sum)
	}
	cdf := h.CDF()
	if cdf[len(cdf)-1].Y != 1 {
		t.Errorf("CDF ends at %.6f", cdf[len(cdf)-1].Y)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].Y < cdf[i-1].Y {
			t.Fatalf("CDF decreases at %d", i)
		}
	}
	// Uniform over [0,50): each of the 5 buckets holds 20%.
	for i, p := range pdf {
		if math.Abs(p.Y-0.2) > 1e-9 {
			t.Errorf("bucket %d PDF %.3f, want 0.2", i, p.Y)
		}
	}
}

func TestHistogramCDFMonotoneProperty(t *testing.T) {
	f := func(vals []uint16) bool {
		h := NewHistogram(7, 40)
		for _, v := range vals {
			h.Add(int64(v))
		}
		cdf := h.CDF()
		for i := 1; i < len(cdf); i++ {
			if cdf[i].Y < cdf[i-1].Y {
				return false
			}
		}
		return len(vals) == 0 || cdf[len(cdf)-1].Y == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramPercentile(t *testing.T) {
	h := NewHistogram(1, 1000)
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	if p := h.Percentile(50); p < 49 || p > 51 {
		t.Errorf("p50 = %d", p)
	}
	if p := h.Percentile(99); p < 98 || p > 100 {
		t.Errorf("p99 = %d", p)
	}
	if NewHistogram(1, 10).Percentile(50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Out-of-domain p clamps into (0, 100]: p <= 0 resolves to the lowest
	// sample's bucket, p > 100 behaves exactly like p = 100 (it must not
	// fall through to the max-bucket bound of 1000).
	cases := []struct {
		p    float64
		want int64
	}{
		{p: 0, want: 1},     // first sample (value 0) lives in bucket [0,1)
		{p: -5, want: 1},    // same clamp as p -> 0+
		{p: 100, want: 100}, // last sample is 99: bucket [99,100)
		{p: 150, want: 100}, // clamped to p = 100, not len(buckets)*width
	}
	for _, c := range cases {
		if got := h.Percentile(c.p); got != c.want {
			t.Errorf("percentile(%v) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestFractionAbove(t *testing.T) {
	// Uniform over [0, 100) with width-10 buckets: bucket k holds
	// [10k, 10k+10). A bucket counts as "above x" only when its whole
	// range lies strictly above x, so the bucket whose lower bound equals
	// x must NOT count (it contains the sample v == x).
	h := NewHistogram(10, 10)
	for i := int64(0); i < 100; i++ {
		h.Add(i)
	}
	cases := []struct {
		x    int64
		want float64
	}{
		{x: 59, want: 0.4}, // buckets 6..9 lie wholly above 59
		{x: 60, want: 0.3}, // bucket 6 contains 60 itself: excluded
		{x: 61, want: 0.3}, // bucket 6 straddles 61: excluded
		{x: 0, want: 0.9},  // bucket 0 contains 0: excluded
		{x: 89, want: 0.1},
		{x: 90, want: 0},
		{x: 91, want: 0},
		{x: 100, want: 0},
	}
	for _, c := range cases {
		if f := h.FractionAbove(c.x); math.Abs(f-c.want) > 1e-9 {
			t.Errorf("fraction above %d = %.3f, want %.3f", c.x, f, c.want)
		}
	}
}

func TestRunningMean(t *testing.T) {
	var m RunningMean
	if m.Mean() != 0 {
		t.Error("empty mean nonzero")
	}
	m.Add(2)
	m.Add(4)
	if m.Mean() != 3 || m.N() != 2 {
		t.Errorf("mean %.1f n %d", m.Mean(), m.N())
	}
	m.Reset()
	if m.N() != 0 {
		t.Error("reset failed")
	}
}

func TestQuantiles(t *testing.T) {
	var vals []int64
	for i := int64(1); i <= 100; i++ {
		vals = append(vals, i)
	}
	rand.New(rand.NewSource(1)).Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	qs := Quantiles(vals, 0.5, 0.9, 1.0)
	if qs[0] != 50 || qs[1] != 90 || qs[2] != 100 {
		t.Errorf("quantiles %v", qs)
	}
	if Quantiles(nil, 0.5) != nil {
		t.Error("empty input should return nil")
	}
}

func TestBreakdown(t *testing.T) {
	b := NewBreakdown(100, 10)
	b.Add([NumLegs]int64{10, 20, 100, 15, 5})  // total 150 -> bucket [100,200)
	b.Add([NumLegs]int64{20, 30, 120, 20, 10}) // total 200 -> bucket [200,300)
	b.Add([NumLegs]int64{10, 10, 100, 20, 10}) // total 150 -> bucket [100,200)
	rows := b.Rows()
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Lo != 100 || rows[0].Count != 2 {
		t.Errorf("row 0 = %+v", rows[0])
	}
	if rows[0].Avg[LegMemory] != 100 {
		t.Errorf("avg mem leg %.1f", rows[0].Avg[LegMemory])
	}
	if b.Count() != 3 {
		t.Errorf("count %d", b.Count())
	}
	overall := b.OverallAvg()
	var sum float64
	for _, v := range overall {
		sum += v
	}
	if math.Abs(sum-(150+200+150)/3.0) > 1e-9 {
		t.Errorf("overall leg sum %.2f", sum)
	}
}

func TestLegNames(t *testing.T) {
	want := []string{"L1 to L2", "L2 to Mem", "Mem", "Mem to L2", "L2 to L1"}
	for l := Leg(0); l < NumLegs; l++ {
		if l.String() != want[l] {
			t.Errorf("leg %d = %q, want %q", l, l.String(), want[l])
		}
	}
}

func TestWeightedSpeedup(t *testing.T) {
	ws, err := WeightedSpeedup([]float64{1, 2}, []float64{2, 2})
	if err != nil || ws != 1.5 {
		t.Errorf("ws = %.2f err %v", ws, err)
	}
	if _, err := WeightedSpeedup([]float64{1}, []float64{0}); err == nil {
		t.Error("zero alone IPC accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	_, _ = WeightedSpeedup([]float64{1}, []float64{1, 2})
}

func TestNormalizedSpeedup(t *testing.T) {
	v, err := NormalizedSpeedup(11, 10)
	if err != nil || math.Abs(v-1.1) > 1e-12 {
		t.Errorf("normalized %.3f err %v", v, err)
	}
	if _, err := NormalizedSpeedup(1, 0); err == nil {
		t.Error("zero base accepted")
	}
}

func TestMaxSlowdown(t *testing.T) {
	ms, err := MaxSlowdown([]float64{1, 0.5}, []float64{2, 2})
	if err != nil || ms != 4 {
		t.Errorf("max slowdown %.2f err %v", ms, err)
	}
	if _, err := MaxSlowdown([]float64{0}, []float64{1}); err == nil {
		t.Error("zero shared IPC accepted")
	}
}

func TestHarmonicSpeedup(t *testing.T) {
	hs, err := HarmonicSpeedup([]float64{1, 1}, []float64{2, 2})
	if err != nil || hs != 0.5 {
		t.Errorf("harmonic speedup %.2f err %v", hs, err)
	}
	if _, err := HarmonicSpeedup(nil, nil); err == nil {
		t.Error("empty harmonic speedup accepted")
	}
}

func TestGeoMean(t *testing.T) {
	g, err := GeoMean([]float64{1, 4})
	if err != nil || math.Abs(g-2) > 1e-12 {
		t.Errorf("geomean %.3f err %v", g, err)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty geomean accepted")
	}
	if _, err := GeoMean([]float64{1, -1}); err == nil {
		t.Error("negative geomean accepted")
	}
}

func TestGeoMeanLongSweeps(t *testing.T) {
	// A running product of 10k values around 1e3 overflows float64 after
	// ~100 entries (and underflows around 1e-3); the log-domain form must
	// return the true geometric mean for both.
	rng := rand.New(rand.NewSource(42))
	cases := []struct {
		name   string
		center float64
	}{
		{name: "large", center: 1e3},
		{name: "small", center: 1e-3},
	}
	for _, c := range cases {
		vs := make([]float64, 10_000)
		var logSum float64
		for i := range vs {
			v := c.center * (0.5 + rng.Float64()) // within [0.5x, 1.5x)
			vs[i] = v
			logSum += math.Log(v)
		}
		want := math.Exp(logSum / float64(len(vs)))
		got, err := GeoMean(vs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.IsInf(got, 0) || got == 0 {
			t.Fatalf("%s: geomean over/underflowed to %v", c.name, got)
		}
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("%s: geomean %v, want %v", c.name, got, want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries(100)
	s.Add(10, 1)
	s.Add(50, 3)
	s.Add(250, 5)
	pts := s.Points()
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].Cycle != 0 || pts[0].Avg != 2 || pts[0].N != 2 {
		t.Errorf("point 0 = %+v", pts[0])
	}
	if pts[1].Cycle != 200 || pts[1].Avg != 5 {
		t.Errorf("point 1 = %+v", pts[1])
	}
	if s.Interval() != 100 {
		t.Error("interval wrong")
	}
}
