// Package stats provides the measurement primitives used throughout the
// simulator: latency histograms with CDF/PDF extraction, running means,
// per-leg delay breakdowns (the five paths of Figure 2 in the paper),
// weighted speedup, and interval time series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a fixed-width bucket histogram over [0, BucketWidth*len).
// Values beyond the last bucket are clamped into it. The zero value is not
// usable; construct with NewHistogram.
type Histogram struct {
	width   int64
	buckets []int64
	count   int64
	sum     int64
	min     int64
	max     int64
}

// NewHistogram returns a histogram with n buckets of the given width
// (in cycles).
func NewHistogram(width int64, n int) *Histogram {
	if width <= 0 || n <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram shape width=%d n=%d", width, n))
	}
	return &Histogram{width: width, buckets: make([]int64, n), min: math.MaxInt64}
}

// Add records one sample. Negative samples are clamped to zero.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	i := v / h.width
	if i >= int64(len(h.buckets)) {
		i = int64(len(h.buckets)) - 1
	}
	h.buckets[i]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds the samples of o (same width and bucket count) into h.
// All fields are integer counters, so merging shard-local histograms in any
// order yields the exact same state as sequential accumulation.
func (h *Histogram) Merge(o *Histogram) {
	if h.width != o.width || len(h.buckets) != len(o.buckets) {
		panic(fmt.Sprintf("stats: merging mismatched histograms (width %d/%d, buckets %d/%d)",
			h.width, o.width, len(h.buckets), len(o.buckets)))
	}
	if o.count == 0 {
		return
	}
	for i, b := range o.buckets {
		h.buckets[i] += b
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the arithmetic mean of the samples (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min returns the smallest sample (0 if empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() int64 { return h.max }

// Buckets returns a copy of the raw bucket counts.
func (h *Histogram) Buckets() []int64 {
	out := make([]int64, len(h.buckets))
	copy(out, h.buckets)
	return out
}

// BucketWidth returns the bucket width in cycles.
func (h *Histogram) BucketWidth() int64 { return h.width }

// Point is one (x, y) sample of a distribution curve.
type Point struct {
	X int64   // bucket upper bound (cycles)
	Y float64 // fraction
}

// PDF returns the probability density per bucket: fraction of samples whose
// value falls in each bucket, keyed by the bucket's upper bound.
func (h *Histogram) PDF() []Point {
	out := make([]Point, len(h.buckets))
	for i, b := range h.buckets {
		var f float64
		if h.count > 0 {
			f = float64(b) / float64(h.count)
		}
		out[i] = Point{X: int64(i+1) * h.width, Y: f}
	}
	return out
}

// CDF returns the cumulative distribution: for each bucket upper bound x,
// the fraction of samples <= x. The final point has Y == 1 for non-empty
// histograms.
func (h *Histogram) CDF() []Point {
	out := make([]Point, len(h.buckets))
	var cum int64
	for i, b := range h.buckets {
		cum += b
		var f float64
		if h.count > 0 {
			f = float64(cum) / float64(h.count)
		}
		out[i] = Point{X: int64(i+1) * h.width, Y: f}
	}
	return out
}

// Percentile returns the upper bound of the bucket containing the p-th
// percentile sample (p in (0, 100]). Returns 0 for an empty histogram.
func (h *Histogram) Percentile(p float64) int64 {
	if h.count == 0 {
		return 0
	}
	// Clamp p into the documented domain (0, 100]: p <= 0 resolves to the
	// smallest sample's bucket, p > 100 to the same bucket as p = 100
	// (instead of silently falling through to the max-bucket bound).
	if p <= 0 {
		p = math.SmallestNonzeroFloat64
	}
	if p > 100 {
		p = 100
	}
	target := int64(math.Ceil(float64(h.count) * p / 100))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, b := range h.buckets {
		cum += b
		if cum >= target {
			return int64(i+1) * h.width
		}
	}
	return int64(len(h.buckets)) * h.width
}

// FractionAbove returns the fraction of samples strictly greater than x,
// resolved at bucket granularity (samples in the bucket containing x are
// counted as above only if the whole bucket lies above x).
func (h *Histogram) FractionAbove(x int64) float64 {
	if h.count == 0 {
		return 0
	}
	var above int64
	for i, b := range h.buckets {
		if int64(i)*h.width > x {
			above += b
		}
	}
	return float64(above) / float64(h.count)
}

// RunningMean is an incrementally-updated arithmetic mean.
// The zero value is an empty mean ready for use.
type RunningMean struct {
	n   int64
	sum float64
}

// Add records one sample.
func (r *RunningMean) Add(v float64) { r.n++; r.sum += v }

// N returns the number of samples recorded.
func (r *RunningMean) N() int64 { return r.n }

// Mean returns the current mean (0 if empty).
func (r *RunningMean) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	return r.sum / float64(r.n)
}

// Reset discards all samples.
func (r *RunningMean) Reset() { r.n, r.sum = 0, 0 }

// Merge folds the samples of o into r. The simulator only feeds RunningMean
// integer-valued samples well below 2^53, so the float64 sums are exact and
// the merge is order-independent.
func (r *RunningMean) Merge(o RunningMean) { r.n += o.n; r.sum += o.sum }

// Quantiles computes exact quantiles of a raw sample slice (sorted copy).
// qs entries are in (0,1]. Returns nil for empty input.
func Quantiles(samples []int64, qs ...float64) []int64 {
	if len(samples) == 0 {
		return nil
	}
	s := make([]int64, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := make([]int64, len(qs))
	for i, q := range qs {
		idx := int(math.Ceil(q*float64(len(s)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(s) {
			idx = len(s) - 1
		}
		out[i] = s[idx]
	}
	return out
}
