package stats

// Series accumulates a time series of interval averages: samples Added
// during interval k (cycles [k*Interval, (k+1)*Interval)) are averaged into
// point k. Used for Figure 14 (bank idleness over time).
type Series struct {
	interval int64
	sums     []float64
	counts   []int64
}

// NewSeries returns a series with the given interval length in cycles.
func NewSeries(interval int64) *Series {
	if interval <= 0 {
		panic("stats: series interval must be positive")
	}
	return &Series{interval: interval}
}

// Add records a sample observed at the given cycle.
func (s *Series) Add(cycle int64, v float64) {
	if cycle < 0 {
		cycle = 0
	}
	k := int(cycle / s.interval)
	for len(s.sums) <= k {
		s.sums = append(s.sums, 0)
		s.counts = append(s.counts, 0)
	}
	s.sums[k] += v
	s.counts[k]++
}

// Interval returns the interval length in cycles.
func (s *Series) Interval() int64 { return s.interval }

// SeriesPoint is one interval average.
type SeriesPoint struct {
	Cycle int64 // interval start
	Avg   float64
	N     int64
}

// Points returns the interval averages in time order, skipping empty
// intervals.
func (s *Series) Points() []SeriesPoint {
	var out []SeriesPoint
	for k, c := range s.counts {
		if c == 0 {
			continue
		}
		out = append(out, SeriesPoint{Cycle: int64(k) * s.interval, Avg: s.sums[k] / float64(c), N: c})
	}
	return out
}
