package stats

// Leg identifies one of the five components of an off-chip round trip
// (Figure 2 in the paper).
type Leg int

const (
	LegL1ToL2 Leg = iota // path 1: network, L1 to L2 bank
	LegL2ToMC            // path 2: network, L2 bank to memory controller
	LegMemory            // path 3: MC queueing + DRAM service
	LegMCToL2            // path 4: network, MC back to L2 bank
	LegL2ToL1            // path 5: network, L2 bank back to L1
	NumLegs
)

// String returns the label the paper uses for the leg.
func (l Leg) String() string {
	switch l {
	case LegL1ToL2:
		return "L1 to L2"
	case LegL2ToMC:
		return "L2 to Mem"
	case LegMemory:
		return "Mem"
	case LegMCToL2:
		return "Mem to L2"
	case LegL2ToL1:
		return "L2 to L1"
	}
	return "unknown"
}

// Breakdown accumulates per-leg delays of off-chip accesses grouped by
// total-delay range, reproducing Figure 4: each range (bucket) reports the
// average contribution of each leg for the accesses whose total round-trip
// delay fell in that range.
type Breakdown struct {
	width   int64
	sums    [][NumLegs]int64
	counts  []int64
	overall [NumLegs]int64
	total   int64
}

// NewBreakdown returns a breakdown with n total-delay ranges of the given
// width in cycles.
func NewBreakdown(width int64, n int) *Breakdown {
	if width <= 0 || n <= 0 {
		panic("stats: invalid breakdown shape")
	}
	return &Breakdown{width: width, sums: make([][NumLegs]int64, n), counts: make([]int64, n)}
}

// Add records one off-chip access with the given per-leg delays.
func (b *Breakdown) Add(legs [NumLegs]int64) {
	var total int64
	for _, v := range legs {
		total += v
	}
	i := total / b.width
	if i >= int64(len(b.counts)) {
		i = int64(len(b.counts)) - 1
	}
	if i < 0 {
		i = 0
	}
	b.counts[i]++
	b.total++
	for l, v := range legs {
		b.sums[i][l] += v
		b.overall[l] += v
	}
}

// Merge folds the accesses of o (same width and range count) into b.
// Purely integer counters, so the result is exact regardless of merge order.
func (b *Breakdown) Merge(o *Breakdown) {
	if b.width != o.width || len(b.counts) != len(o.counts) {
		panic("stats: merging mismatched breakdowns")
	}
	for i, c := range o.counts {
		b.counts[i] += c
		for l := Leg(0); l < NumLegs; l++ {
			b.sums[i][l] += o.sums[i][l]
		}
	}
	b.total += o.total
	for l := Leg(0); l < NumLegs; l++ {
		b.overall[l] += o.overall[l]
	}
}

// Row is the average per-leg delay of one total-delay range.
type Row struct {
	Lo, Hi int64 // range of total delays covered, [Lo, Hi)
	Count  int64
	Avg    [NumLegs]float64
}

// Rows returns one row per non-empty range, in increasing delay order.
func (b *Breakdown) Rows() []Row {
	var out []Row
	for i, c := range b.counts {
		if c == 0 {
			continue
		}
		r := Row{Lo: int64(i) * b.width, Hi: int64(i+1) * b.width, Count: c}
		for l := Leg(0); l < NumLegs; l++ {
			r.Avg[l] = float64(b.sums[i][l]) / float64(c)
		}
		out = append(out, r)
	}
	return out
}

// Count returns the number of accesses recorded.
func (b *Breakdown) Count() int64 { return b.total }

// OverallAvg returns the average per-leg delay across all accesses.
func (b *Breakdown) OverallAvg() [NumLegs]float64 {
	var out [NumLegs]float64
	if b.total == 0 {
		return out
	}
	for l := Leg(0); l < NumLegs; l++ {
		out[l] = float64(b.overall[l]) / float64(b.total)
	}
	return out
}
