package stats

import "nocmem/internal/snapshot"

// Encode serializes the histogram. The shape (width, bucket count) is part
// of the image so Decode can reject snapshots taken under a different
// configuration.
func (h *Histogram) Encode(w *snapshot.Writer) {
	w.I64(h.width)
	w.I64s(h.buckets)
	w.I64(h.count)
	w.I64(h.sum)
	w.I64(h.min)
	w.I64(h.max)
}

// Decode restores the histogram in place. The encoded shape must match h's.
func (h *Histogram) Decode(r *snapshot.Reader) {
	width := r.I64()
	buckets := r.I64s()
	if r.Err() != nil {
		return
	}
	if width != h.width || len(buckets) != len(h.buckets) {
		r.Fail("histogram shape mismatch: snapshot %dx%d, config %dx%d",
			width, len(buckets), h.width, len(h.buckets))
		return
	}
	copy(h.buckets, buckets)
	h.count = r.I64()
	h.sum = r.I64()
	h.min = r.I64()
	h.max = r.I64()
	for _, b := range h.buckets {
		if b < 0 {
			r.Fail("negative histogram bucket")
			return
		}
	}
	if h.count < 0 {
		r.Fail("negative histogram count")
	}
}

// Encode serializes the running mean.
func (m *RunningMean) Encode(w *snapshot.Writer) {
	w.I64(m.n)
	w.F64(m.sum)
}

// Decode restores the running mean in place.
func (m *RunningMean) Decode(r *snapshot.Reader) {
	m.n = r.I64()
	m.sum = r.F64()
	if m.n < 0 {
		r.Fail("negative running-mean count")
	}
}

// Encode serializes the breakdown.
func (b *Breakdown) Encode(w *snapshot.Writer) {
	w.I64(b.width)
	w.Len(len(b.counts))
	for i := range b.counts {
		w.I64(b.counts[i])
		for l := 0; l < int(NumLegs); l++ {
			w.I64(b.sums[i][l])
		}
	}
	for l := 0; l < int(NumLegs); l++ {
		w.I64(b.overall[l])
	}
	w.I64(b.total)
}

// Decode restores the breakdown in place. The encoded shape must match b's.
func (b *Breakdown) Decode(r *snapshot.Reader) {
	width := r.I64()
	n := r.Len(8 * (1 + int(NumLegs)))
	if r.Err() != nil {
		return
	}
	if width != b.width || n != len(b.counts) {
		r.Fail("breakdown shape mismatch: snapshot %dx%d, config %dx%d",
			width, n, b.width, len(b.counts))
		return
	}
	for i := 0; i < n; i++ {
		b.counts[i] = r.I64()
		for l := 0; l < int(NumLegs); l++ {
			b.sums[i][l] = r.I64()
		}
	}
	for l := 0; l < int(NumLegs); l++ {
		b.overall[l] = r.I64()
	}
	b.total = r.I64()
}

// Encode serializes the series.
func (s *Series) Encode(w *snapshot.Writer) {
	w.I64(s.interval)
	w.F64s(s.sums)
	w.I64s(s.counts)
}

// Decode restores the series in place, keeping its configured interval.
func (s *Series) Decode(r *snapshot.Reader) {
	interval := r.I64()
	sums := r.F64s()
	counts := r.I64s()
	if r.Err() != nil {
		return
	}
	if interval != s.interval {
		r.Fail("series interval mismatch: snapshot %d, config %d", interval, s.interval)
		return
	}
	if len(sums) != len(counts) {
		r.Fail("series arrays disagree: %d sums, %d counts", len(sums), len(counts))
		return
	}
	s.sums = sums
	s.counts = counts
}
