package stats

import (
	"fmt"
	"math"
)

// WeightedSpeedup computes the weighted speedup metric of Section 4.1:
//
//	WS = sum_i IPC_i(shared) / IPC_i(alone)
//
// It panics if the slices differ in length and returns an error if any alone
// IPC is non-positive (which would make the metric undefined).
func WeightedSpeedup(shared, alone []float64) (float64, error) {
	if len(shared) != len(alone) {
		panic(fmt.Sprintf("stats: weighted speedup over %d shared vs %d alone IPCs", len(shared), len(alone)))
	}
	var ws float64
	for i := range shared {
		if alone[i] <= 0 {
			return 0, fmt.Errorf("stats: application %d has alone IPC %v", i, alone[i])
		}
		ws += shared[i] / alone[i]
	}
	return ws, nil
}

// NormalizedSpeedup returns ws/base, the normalized weighted speedup the
// paper's Figure 11 reports (1.0 = no change over the unprioritized base).
func NormalizedSpeedup(ws, base float64) (float64, error) {
	if base <= 0 {
		return 0, fmt.Errorf("stats: base weighted speedup %v", base)
	}
	return ws / base, nil
}

// MaxSlowdown returns max_i IPC_i(alone)/IPC_i(shared), the unfairness
// metric commonly reported alongside weighted speedup.
func MaxSlowdown(shared, alone []float64) (float64, error) {
	if len(shared) != len(alone) {
		panic(fmt.Sprintf("stats: max slowdown over %d shared vs %d alone IPCs", len(shared), len(alone)))
	}
	var worst float64
	for i := range shared {
		if shared[i] <= 0 {
			return 0, fmt.Errorf("stats: application %d has shared IPC %v", i, shared[i])
		}
		if s := alone[i] / shared[i]; s > worst {
			worst = s
		}
	}
	return worst, nil
}

// HarmonicSpeedup returns n / sum_i IPC_i(alone)/IPC_i(shared), which
// balances fairness and throughput.
func HarmonicSpeedup(shared, alone []float64) (float64, error) {
	if len(shared) != len(alone) {
		panic(fmt.Sprintf("stats: harmonic speedup over %d shared vs %d alone IPCs", len(shared), len(alone)))
	}
	if len(shared) == 0 {
		return 0, fmt.Errorf("stats: harmonic speedup of zero applications")
	}
	var sum float64
	for i := range shared {
		if shared[i] <= 0 {
			return 0, fmt.Errorf("stats: application %d has shared IPC %v", i, shared[i])
		}
		sum += alone[i] / shared[i]
	}
	return float64(len(shared)) / sum, nil
}

// GeoMean returns the geometric mean of positive values; it returns an error
// if any value is non-positive or the slice is empty.
func GeoMean(vs []float64) (float64, error) {
	if len(vs) == 0 {
		return 0, fmt.Errorf("stats: geomean of empty slice")
	}
	// Accumulate in the log domain: a running product of thousands of
	// values around 1e3 (or 1e-3) overflows to +Inf (or underflows to 0)
	// long before float64 loses precision on the sum of logs.
	var sum float64
	for i, v := range vs {
		if v <= 0 {
			return 0, fmt.Errorf("stats: geomean input %d is %v", i, v)
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vs))), nil
}
