// Package ascii renders minimal terminal charts for the figure tools: a
// horizontal bar chart for per-category comparisons (Figures 6, 11, 13) and
// a sparkline for time series (Figure 14).
package ascii

import (
	"fmt"
	"io"
	"strings"
)

// Bar renders one horizontal bar chart. Values must be non-negative; the
// longest bar spans width characters. An optional baseline draws a marker
// column (e.g. 1.0 for normalized speedups) when it falls inside the range.
type Bar struct {
	Width    int     // bar span in characters (default 50)
	Baseline float64 // draw a marker at this value if > 0
}

// Render writes one row per label.
func (b Bar) Render(w io.Writer, labels []string, values []float64) error {
	if len(labels) != len(values) {
		return fmt.Errorf("ascii: %d labels for %d values", len(labels), len(values))
	}
	width := b.Width
	if width <= 0 {
		width = 50
	}
	var max float64
	labelW := 0
	for i, v := range values {
		if v < 0 {
			return fmt.Errorf("ascii: negative value %v", v)
		}
		if v > max {
			max = v
		}
		if len(labels[i]) > labelW {
			labelW = len(labels[i])
		}
	}
	if max == 0 {
		max = 1
	}
	baseCol := -1
	if b.Baseline > 0 && b.Baseline <= max {
		baseCol = int(b.Baseline / max * float64(width))
	}
	for i, v := range values {
		n := int(v / max * float64(width))
		bar := strings.Repeat("#", n) + strings.Repeat(" ", width-n)
		if baseCol >= 0 && baseCol < len(bar) {
			mark := byte('|')
			if bar[baseCol] == '#' {
				mark = '+'
			}
			bar = bar[:baseCol] + string(mark) + bar[baseCol+1:]
		}
		if _, err := fmt.Fprintf(w, "%-*s %s %.4g\n", labelW, labels[i], bar, v); err != nil {
			return err
		}
	}
	return nil
}

// sparkRunes are the eight block heights of a sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark returns a one-line sparkline of the series scaled to [min, max].
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	min, max := values[0], values[0]
	for _, v := range values {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var sb strings.Builder
	for _, v := range values {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}
