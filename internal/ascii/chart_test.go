package ascii

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"
)

func TestBarRender(t *testing.T) {
	var buf bytes.Buffer
	b := Bar{Width: 10}
	if err := b.Render(&buf, []string{"a", "bb"}, []float64{5, 10}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines", len(lines))
	}
	if got := strings.Count(lines[0], "#"); got != 5 {
		t.Errorf("first bar %d chars, want 5: %q", got, lines[0])
	}
	if got := strings.Count(lines[1], "#"); got != 10 {
		t.Errorf("second bar %d chars, want 10: %q", got, lines[1])
	}
	if !strings.HasPrefix(lines[1], "bb ") || !strings.HasPrefix(lines[0], "a  ") {
		t.Errorf("labels misaligned:\n%s", buf.String())
	}
}

func TestBarBaselineMarker(t *testing.T) {
	var buf bytes.Buffer
	b := Bar{Width: 10, Baseline: 1.0}
	if err := b.Render(&buf, []string{"x"}, []float64{2.0}); err != nil {
		t.Fatal(err)
	}
	// Baseline at half the max: a '+' (marker over bar) at column 5.
	if !strings.Contains(buf.String(), "+") {
		t.Errorf("no baseline marker in %q", buf.String())
	}
}

func TestBarErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (Bar{}).Render(&buf, []string{"a"}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := (Bar{}).Render(&buf, []string{"a"}, []float64{-1}); err == nil {
		t.Error("negative value accepted")
	}
	if err := (Bar{}).Render(&buf, nil, nil); err != nil {
		t.Errorf("empty chart should render fine: %v", err)
	}
}

func TestBarAllZero(t *testing.T) {
	var buf bytes.Buffer
	if err := (Bar{Width: 5}).Render(&buf, []string{"z"}, []float64{0}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#") {
		t.Error("zero value drew a bar")
	}
}

func TestSpark(t *testing.T) {
	s := Spark([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(s) != 4 {
		t.Fatalf("sparkline length %d", utf8.RuneCountInString(s))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline %q does not span the range", s)
	}
	if Spark(nil) != "" {
		t.Error("empty input should give empty sparkline")
	}
	flat := Spark([]float64{2, 2, 2})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series rendered %q", flat)
		}
	}
}
