package sim

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"nocmem/internal/bitset"
	"nocmem/internal/noc"
	"nocmem/internal/par"
	"nocmem/internal/timerwheel"
)

// Sharded stepping splits the tile range into contiguous cost-balanced
// chunks (see partition.go), stepped by Run.Shards worker goroutines. A
// cycle runs in two phases separated by barriers:
//
//	barrier (serial: policy tick, quiescence fast-forward, cycle advance,
//	         repartition trigger, work-cursor reset)
//	phaseFront: MC ticks, node front-ends, network tick   — per chunk
//	barrier (serial: work-cursor reset)
//	phaseBack: boundary drain, cores, sleep bookkeeping   — per chunk
//
// Everything a chunk mutates during a phase is owned by it: its tiles, its
// controllers, its routers (see noc.netShard), its wake wheels, collector
// and pools. The only cross-chunk traffic is router-boundary flits and
// credits, which travel through fixed-order SPSC queues drained in phaseBack
// (noc.DrainShard), and the Scheme-1/2 counters, which are atomic adds.
// Because every boundary item is future-dated and the merge order is fixed,
// the results are *partition-independent*: byte-identical to the sequential
// stepper for any chunk layout and any worker count — the equivalence tests
// enforce this, and the sequential path remains the reference semantics
// (same pattern as NOCMEM_DENSE_STEP).
//
// Partition independence is also what makes intra-cycle work-stealing safe.
// The mesh is over-decomposed into more chunks than workers (stealChunksX
// per worker); each worker owns a queue of chunks, claims them with an
// atomic fetch-add cursor, and when its own queue runs dry scans the other
// workers' queues and claims their leftovers. A chunk's phase therefore
// executes exactly once per cycle — by *some* worker — and since all of the
// phase's effects target chunk-owned state, it does not matter which worker
// that is. The barrier between the phases (and between cycles) establishes
// the happens-before edge when a chunk migrates between workers.

// simShard owns a disjoint contiguous range of tiles and their hosted
// memory controllers, mirroring the noc partition with the same shard ids.
// It is the unit of work-stealing: a shard's phase is executed by exactly
// one worker per cycle, not necessarily the same one each cycle.
type simShard struct {
	id int
	s  *Simulator

	nodes []*node   // owned tiles, ascending id
	mcs   []*mcNode // owned controllers, ascending idx

	// Event-driven scheduler state, shard-local (see sched.go): active sets
	// index by global node id / controller idx, but only owned members'
	// bits are ever set. Timed wakes live in two timing wheels keyed by the
	// component index — separate wheels so quietTarget can read the
	// controller horizon alone when deciding a DRAM write-drain
	// fast-forward. Wakes are never cancelled; stale ones cause a harmless
	// spurious tick.
	nodeActive bitset.Set
	mcActive   bitset.Set
	nodeWakes  *timerwheel.Wheel[int32]
	mcWakes    *timerwheel.Wheel[int32]
	wakeBuf    []timerwheel.Due[int32] // reused PopDue delivery buffer

	// col accumulates measurements for events executed by this shard; a
	// tile-indexed entry may be written by a foreign shard's collector copy
	// (e.g. SoFar at the MC), so results() merges all shards elementwise.
	col *Collector

	// Packet/message free lists: protocol messages are born at an inject
	// site and die at exactly one consumption point (see recycle). Objects
	// may migrate between shards (allocated here, recycled there) — they
	// are zeroed on recycle, so pools mix freely.
	pkts    noc.PacketPool
	msgFree []*message
}

// nodeSweep returns the node active-set words a phase sweep must visit.
// Normally that is the whole set; with the DebugTruncateActiveWords test
// hook armed it is a truncated prefix, reproducing the pre-fix allMask(64)
// bug (tiles beyond the first 64*words never tick) for the divergence-oracle
// mutation tests.
func (sh *simShard) nodeSweep() bitset.Set {
	if t := sh.s.truncActiveWords; t > 0 && t < len(sh.nodeActive) {
		return sh.nodeActive[:t]
	}
	return sh.nodeActive
}

// drainWakes activates components whose timed wakes are due.
func (sh *simShard) drainWakes(now int64) {
	sh.wakeBuf = sh.nodeWakes.PopDue(now, sh.wakeBuf[:0])
	for _, d := range sh.wakeBuf {
		sh.nodeActive.Add(int(d.Val))
	}
	sh.wakeBuf = sh.mcWakes.PopDue(now, sh.wakeBuf[:0])
	for _, d := range sh.wakeBuf {
		sh.mcActive.Add(int(d.Val))
	}
}

// send builds a pooled packet carrying a pooled protocol message and injects
// it at the executing tile's router. Every send has exactly one matching
// recycle at the packet's consumption point.
func (sh *simShard) send(now int64, src, dst, flits int, vn noc.VNet, pri noc.Priority, age int64, kind msgKind, t *Txn, line uint64) {
	var m *message
	if l := len(sh.msgFree); l > 0 {
		m = sh.msgFree[l-1]
		sh.msgFree[l-1] = nil
		sh.msgFree = sh.msgFree[:l-1]
	} else {
		m = &message{}
	}
	m.kind, m.txn, m.line = kind, t, line
	p := sh.pkts.Get()
	p.Src, p.Dst, p.NumFlits = src, dst, flits
	p.VNet, p.Priority, p.Age = vn, pri, age
	p.Payload = m
	if err := sh.s.net.Inject(p, now); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
}

// recycle retires a fully-consumed packet and its message. The caller must
// be the packet's final reader.
func (sh *simShard) recycle(p *noc.Packet) {
	if m, ok := p.Payload.(*message); ok {
		*m = message{}
		sh.msgFree = append(sh.msgFree, m)
	}
	sh.pkts.Put(p)
}

// phaseFront runs the first half of one cycle for this shard, in the dense
// stepper's canonical order: due wakes, MC ticks, node front-ends (core
// stall catch-up, inbox dispatch, L2 bank), then the shard's routers.
// Active components tick in ascending index order, exactly like the
// sequential stepper restricted to this shard's members.
func (sh *simShard) phaseFront(now int64) {
	sh.drainWakes(now)
	for wi := range sh.mcActive {
		w := sh.mcActive[wi]
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			sh.s.mcs[i].ctl.Tick(now)
		}
	}
	for wi, w := range sh.nodeSweep() {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			n := sh.s.nodes[i]
			n.execs++
			n.catchUpCore(now)
			n.dispatchInbox(now)
			n.tickL2(now)
		}
	}
	sh.s.net.TickShard(sh.id, now)
}

// phaseBack runs the second half of one cycle: merge cross-shard boundary
// traffic (deterministic fixed order, see noc.DrainShard), tick the cores,
// then retire quiescent components from the active sets.
func (sh *simShard) phaseBack(now int64) {
	sh.s.net.DrainShard(sh.id)
	for wi, w := range sh.nodeSweep() {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			sh.s.nodes[i].tickCore(now)
		}
	}
	for wi, w := range sh.nodeSweep() {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			sh.s.nodes[i].trySleep(now)
		}
	}
	for wi := range sh.mcActive {
		w := sh.mcActive[wi]
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			sh.s.mcs[i].trySleep(now)
		}
	}
}

// workQueue is one worker's claimable list of chunk (shard) ids for the
// current phase. The cursor is an atomic fetch-add: the owner claims from
// it, and — with stealing on — so does any other worker that ran dry, each
// claim yielding a distinct chunk. Cursors reset in the barrier serial
// sections, which also provide the happens-before edge between a chunk's
// executions on different workers. The padding keeps each queue's cursor on
// its own cache line so cross-worker claims don't false-share.
type workQueue struct {
	chunks []int32
	next   atomic.Int32
	_      [60]byte
}

// claim returns the next unclaimed chunk index in q, or -1 when exhausted.
// Losing claimers overshoot the cursor harmlessly: it resets every phase and
// gains at most one overshoot per worker per phase.
func (q *workQueue) claim() int {
	i := int(q.next.Add(1)) - 1
	if i >= len(q.chunks) {
		return -1
	}
	return int(q.chunks[i])
}

// runPhase executes one phase of one cycle from worker w's perspective:
// drain the worker's own chunk queue, then — when stealing — scan the other
// workers' queues for leftovers. Which worker executes a chunk is
// timing-dependent and irrelevant; *that* each chunk executes exactly once
// is guaranteed by the atomic claim.
func (s *Simulator) runPhase(w int, now int64, front bool) {
	for c := s.queues[w].claim(); c >= 0; c = s.queues[w].claim() {
		s.runChunk(c, now, front)
	}
	if !s.steal {
		return
	}
	for d := 1; d < len(s.queues); d++ {
		v := &s.queues[(w+d)%len(s.queues)]
		for c := v.claim(); c >= 0; c = v.claim() {
			s.runChunk(c, now, front)
		}
	}
}

func (s *Simulator) runChunk(c int, now int64, front bool) {
	if front {
		s.shards[c].phaseFront(now)
	} else {
		s.shards[c].phaseBack(now)
	}
}

// resetCursors re-arms every worker queue for the next phase. Runs only in
// barrier serial sections.
func (s *Simulator) resetCursors() {
	for i := range s.queues {
		s.queues[i].next.Store(0)
	}
}

// stepPar is the coordination state of one parallel Step call. Every field
// is written only in the barrier's serial section (or before the workers
// start) and read by workers after the barrier, so access needs no further
// synchronization.
type stepPar struct {
	bar    *par.Barrier
	end    int64
	stop   bool  // workers return: done, or a repartition is pending
	repart bool  // stopped to rebuild the partition; stepSharded resumes
	skip   bool  // this round fast-forwarded; no phases to run
	cycle  int64 // the cycle the phases execute
}

// stepSharded advances the system to end with Run.Shards worker goroutines.
// The calling goroutine doubles as worker 0. When the serial section decides
// the partition has gone stale (repartEvery), the workers quiesce, the
// chunks are rebuilt from measured activity at this — provably drained —
// cycle boundary, and a fresh worker set resumes. Repartitioning changes
// wall-clock time only, never results.
func (s *Simulator) stepSharded(end int64) {
	if s.repartNext == 0 && s.repartEvery > 0 {
		s.repartNext = s.now + s.repartEvery
	}
	for {
		s.par = stepPar{bar: par.NewBarrier(s.workers), end: end}
		var wg sync.WaitGroup
		for w := 1; w < s.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				s.shardWorker(w)
			}(w)
		}
		s.shardWorker(0)
		wg.Wait()
		if !s.par.repart {
			return
		}
		s.repartition()
	}
}

// shardWorker is the per-worker cycle loop. All workers observe the same
// serial-section decisions each round, so they take identical branches and
// exit together.
func (s *Simulator) shardWorker(w int) {
	for {
		s.par.bar.Wait(s.cycleSerial)
		if s.par.stop {
			return
		}
		if s.par.skip {
			continue
		}
		c := s.par.cycle
		s.runPhase(w, c, true)
		s.par.bar.Wait(s.resetCursors)
		s.runPhase(w, c, false)
	}
}

// cycleSerial is the per-cycle serial section, run by the barrier's last
// arriver while the other workers spin: policy tick, the global quiescence
// fast-forward decision, the repartition trigger, and the cycle advance.
// Identical in effect to the head of the sequential stepEvent loop.
func (s *Simulator) cycleSerial() {
	now := s.now
	if now >= s.par.end {
		s.par.stop = true
		return
	}
	if s.repartEvery > 0 && now >= s.repartNext {
		// Between cycles every boundary queue is drained — the same
		// invariant that makes this a legal checkpoint boundary makes it the
		// only safe repartition point. Park the workers; stepSharded
		// rebuilds and respawns.
		s.repartNext = now + s.repartEvery
		s.par.stop, s.par.repart = true, true
		return
	}
	if now >= s.polNext {
		s.pol.Tick(now)
		s.polNext = s.pol.NextWake()
	}
	if next, quiet := s.quietTarget(now, s.par.end); quiet {
		s.now = next
		s.par.skip = true
		return
	}
	s.par.skip = false
	s.par.cycle = now
	s.ticked++
	s.resetCursors()
	// s.now advances before the phases run; within the cycle every code path
	// receives the executing cycle as a parameter (node.issue reads it from
	// lastCoreTick), so nothing observes the early advance.
	s.now = now + 1
}
