package sim

import (
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"nocmem/internal/bitset"
	"nocmem/internal/noc"
	"nocmem/internal/timerwheel"
)

// Sharded stepping splits the mesh into rectangular tile groups, each ticked
// by its own worker goroutine. A cycle runs in two phases separated by
// barriers:
//
//	barrier (serial: policy tick, quiescence fast-forward, cycle advance)
//	phaseFront: MC ticks, node front-ends, network tick   — per shard
//	barrier
//	phaseBack: boundary drain, cores, sleep bookkeeping   — per shard
//
// Everything a shard mutates during a phase is owned by it: its tiles, its
// controllers, its routers (see noc.netShard), its wake heap, collector and
// pools. The only cross-shard traffic is router-boundary flits and credits,
// which travel through fixed-order SPSC queues drained in phaseBack
// (noc.DrainShard), and the Scheme-1/2 counters, which are atomic adds.
// Because every boundary item is future-dated and the merge order is fixed,
// the sharded run is byte-identical to the sequential one for any worker
// count — the equivalence tests enforce this, and the sequential path
// remains the reference semantics (same pattern as NOCMEM_DENSE_STEP).

// simShard owns a disjoint subset of tiles and their hosted memory
// controllers, mirroring the noc partition with the same shard ids.
type simShard struct {
	id int
	s  *Simulator

	nodes []*node   // owned tiles, ascending id
	mcs   []*mcNode // owned controllers, ascending idx

	// Event-driven scheduler state, shard-local (see sched.go): active sets
	// index by global node id / controller idx, but only owned members'
	// bits are ever set. Timed wakes live in two timing wheels keyed by the
	// component index — separate wheels so quietTarget can read the
	// controller horizon alone when deciding a DRAM write-drain
	// fast-forward. Wakes are never cancelled; stale ones cause a harmless
	// spurious tick.
	nodeActive bitset.Set
	mcActive   bitset.Set
	nodeWakes  *timerwheel.Wheel[int32]
	mcWakes    *timerwheel.Wheel[int32]
	wakeBuf    []timerwheel.Due[int32] // reused PopDue delivery buffer

	// col accumulates measurements for events executed by this shard; a
	// tile-indexed entry may be written by a foreign shard's collector copy
	// (e.g. SoFar at the MC), so results() merges all shards elementwise.
	col *Collector

	// Packet/message free lists: protocol messages are born at an inject
	// site and die at exactly one consumption point (see recycle). Objects
	// may migrate between shards (allocated here, recycled there) — they
	// are zeroed on recycle, so pools mix freely.
	pkts    noc.PacketPool
	msgFree []*message
}

// drainWakes activates components whose timed wakes are due.
func (sh *simShard) drainWakes(now int64) {
	sh.wakeBuf = sh.nodeWakes.PopDue(now, sh.wakeBuf[:0])
	for _, d := range sh.wakeBuf {
		sh.nodeActive.Add(int(d.Val))
	}
	sh.wakeBuf = sh.mcWakes.PopDue(now, sh.wakeBuf[:0])
	for _, d := range sh.wakeBuf {
		sh.mcActive.Add(int(d.Val))
	}
}

// send builds a pooled packet carrying a pooled protocol message and injects
// it at the executing tile's router. Every send has exactly one matching
// recycle at the packet's consumption point.
func (sh *simShard) send(now int64, src, dst, flits int, vn noc.VNet, pri noc.Priority, age int64, kind msgKind, t *Txn, line uint64) {
	var m *message
	if l := len(sh.msgFree); l > 0 {
		m = sh.msgFree[l-1]
		sh.msgFree[l-1] = nil
		sh.msgFree = sh.msgFree[:l-1]
	} else {
		m = &message{}
	}
	m.kind, m.txn, m.line = kind, t, line
	p := sh.pkts.Get()
	p.Src, p.Dst, p.NumFlits = src, dst, flits
	p.VNet, p.Priority, p.Age = vn, pri, age
	p.Payload = m
	if err := sh.s.net.Inject(p, now); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
}

// recycle retires a fully-consumed packet and its message. The caller must
// be the packet's final reader.
func (sh *simShard) recycle(p *noc.Packet) {
	if m, ok := p.Payload.(*message); ok {
		*m = message{}
		sh.msgFree = append(sh.msgFree, m)
	}
	sh.pkts.Put(p)
}

// phaseFront runs the first half of one cycle for this shard, in the dense
// stepper's canonical order: due wakes, MC ticks, node front-ends (core
// stall catch-up, inbox dispatch, L2 bank), then the shard's routers.
// Active components tick in ascending index order, exactly like the
// sequential stepper restricted to this shard's members.
func (sh *simShard) phaseFront(now int64) {
	sh.drainWakes(now)
	for wi := range sh.mcActive {
		w := sh.mcActive[wi]
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			sh.s.mcs[i].ctl.Tick(now)
		}
	}
	for wi := range sh.nodeActive {
		w := sh.nodeActive[wi]
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			n := sh.s.nodes[i]
			n.catchUpCore(now)
			n.dispatchInbox(now)
			n.tickL2(now)
		}
	}
	sh.s.net.TickShard(sh.id, now)
}

// phaseBack runs the second half of one cycle: merge cross-shard boundary
// traffic (deterministic fixed order, see noc.DrainShard), tick the cores,
// then retire quiescent components from the active sets.
func (sh *simShard) phaseBack(now int64) {
	sh.s.net.DrainShard(sh.id)
	for wi := range sh.nodeActive {
		w := sh.nodeActive[wi]
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			sh.s.nodes[i].tickCore(now)
		}
	}
	for wi := range sh.nodeActive {
		w := sh.nodeActive[wi]
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			sh.s.nodes[i].trySleep(now)
		}
	}
	for wi := range sh.mcActive {
		w := sh.mcActive[wi]
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			sh.s.mcs[i].trySleep(now)
		}
	}
}

// barrier is a sense-reversing spin barrier whose last arriver runs an
// optional serial section before releasing the others. Built on sync/atomic
// so the race detector sees the happens-before edges: worker writes before
// arrival are visible to the serial section, and serial-section writes are
// visible to every worker after release.
type barrier struct {
	n       int32
	arrived int32
	sense   uint32
}

func (b *barrier) wait(serial func()) {
	s := atomic.LoadUint32(&b.sense)
	if atomic.AddInt32(&b.arrived, 1) == b.n {
		if serial != nil {
			serial()
		}
		// Reset before flipping the sense: nobody passes the barrier until
		// the flip, so the next round's arrivals count from zero.
		atomic.StoreInt32(&b.arrived, 0)
		atomic.AddUint32(&b.sense, 1)
	} else {
		for spins := 0; atomic.LoadUint32(&b.sense) == s; spins++ {
			if spins > 256 {
				runtime.Gosched()
			}
		}
	}
}

// stepPar is the coordination state of one parallel Step call. Every field
// is written only in the barrier's serial section (or before the workers
// start) and read by workers after the barrier, so access needs no further
// synchronization.
type stepPar struct {
	bar   barrier
	end   int64
	stop  bool  // all work done: workers return
	skip  bool  // this round fast-forwarded; no phases to run
	cycle int64 // the cycle the phases execute
}

// stepSharded advances the system to end with one worker per shard. The
// calling goroutine doubles as shard 0's worker.
func (s *Simulator) stepSharded(end int64) {
	s.par = stepPar{bar: barrier{n: int32(len(s.shards))}, end: end}
	var wg sync.WaitGroup
	for _, sh := range s.shards[1:] {
		wg.Add(1)
		go func(sh *simShard) {
			defer wg.Done()
			s.shardWorker(sh)
		}(sh)
	}
	s.shardWorker(s.shards[0])
	wg.Wait()
}

// shardWorker is the per-shard cycle loop. All workers observe the same
// serial-section decisions each round, so they take identical branches and
// exit together.
func (s *Simulator) shardWorker(sh *simShard) {
	for {
		s.par.bar.wait(s.cycleSerial)
		if s.par.stop {
			return
		}
		if s.par.skip {
			continue
		}
		c := s.par.cycle
		sh.phaseFront(c)
		s.par.bar.wait(nil)
		sh.phaseBack(c)
	}
}

// cycleSerial is the per-cycle serial section, run by the barrier's last
// arriver while the other workers spin: policy tick, the global quiescence
// fast-forward decision, and the cycle advance. Identical in effect to the
// head of the sequential stepEvent loop.
func (s *Simulator) cycleSerial() {
	now := s.now
	if now >= s.par.end {
		s.par.stop = true
		return
	}
	if now >= s.polNext {
		s.pol.Tick(now)
		s.polNext = s.pol.NextWake()
	}
	if next, quiet := s.quietTarget(now, s.par.end); quiet {
		s.now = next
		s.par.skip = true
		return
	}
	s.par.skip = false
	s.par.cycle = now
	s.ticked++
	// s.now advances before the phases run; within the cycle every code path
	// receives the executing cycle as a parameter (node.issue reads it from
	// lastCoreTick), so nothing observes the early advance.
	s.now = now + 1
}
