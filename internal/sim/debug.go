package sim

import "nocmem/internal/trace"

// DebugWarmResidency reports the fraction of all applications' warm lines
// currently present in the L2, for diagnosing working-set decay in tests.
func (s *Simulator) DebugWarmResidency() float64 {
	var present, total int
	for i, n := range s.nodes {
		if n.core == nil {
			continue
		}
		gen, err := trace.NewGenerator(s.apps[i], i, s.cfg.L1.LineBytes, s.cfg.Run.Seed)
		if err != nil {
			panic(err)
		}
		_, warm := gen.PrewarmLines()
		for _, line := range warm {
			total++
			if s.nodes[s.snuca.Bank(line)].l2.Contains(s.snuca.Local(line)) {
				present++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(present) / float64(total)
}
