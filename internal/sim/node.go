package sim

import (
	"fmt"
	"math/bits"

	"nocmem/internal/cache"
	"nocmem/internal/cpu"
	"nocmem/internal/noc"
)

// inItem is a packet delivered to a tile, available from cycle at.
type inItem struct {
	pkt *noc.Packet
	at  int64
}

// action is node-local scheduled work, carried as plain data so it
// serializes for checkpointing: either a delayed L1->L2 request send
// (txn != nil) or a hit/store completion of a core ROB slot (txn == nil).
type action struct {
	at   int64
	slot int32
	txn  *Txn
	line uint64
}

// l2Job is a request occupying the L2 bank pipeline, finishing at done.
type l2Job struct {
	it   inItem
	done int64
}

// node is one mesh tile: core + private L1 + one bank of the shared L2.
type node struct {
	id int
	s  *Simulator
	sh *simShard // owning shard (stepping, pools, collector)

	core *cpu.Core // nil on tiles without an application
	l1   *cache.Cache
	// l1m waiters are core ROB slot indices (noWaiter for stores, whose
	// fill needs no core notification).
	l1m *cache.MSHRTable[int32]

	l2 *cache.Cache
	// l2m waiters are the demand transactions coalesced onto the fetch.
	l2m *cache.MSHRTable[*Txn]

	// txnSeq numbers this tile's demand transactions; combined with the
	// tile id it yields process-wide unique Txn IDs without any shared
	// counter.
	txnSeq uint64

	// dir is the bank's slice of the sparse directory embedded in the
	// inclusive L2: global line address -> bitmask of tiles whose L1 may
	// hold the line. Clean L1 evictions are silent, so the mask
	// over-approximates (standard for sparse directories). Meshes of up to
	// 64 tiles pack the mask into one word; larger ones use dirWide, with
	// retired mask slices recycled through dirFree.
	dir     map[uint64]uint64
	dirWide map[uint64][]uint64
	dirFree [][]uint64

	inbox   []inItem // delivered packets not yet dispatched
	l2Queue []inItem // requests waiting for the L2 bank port
	l2Busy  []l2Job  // requests inside the L2 pipeline
	delayed []action // L1-side scheduled work (hit completion, miss injection)

	// lastCoreTick is the last cycle tickCore ran; the gap to the current
	// cycle is the span of elided hard-stall core ticks replayed in closed
	// form (see sched.go and cpu.CatchUpStall).
	lastCoreTick int64

	// execs counts executed front-end ticks, feeding the partition cost
	// model (partition.go). Pure measurement: never read on a simulated
	// path, not checkpointed.
	execs int64
}

func newNode(id int, s *Simulator) *node {
	cfg := s.cfg
	n := &node{
		id: id,
		s:  s,

		lastCoreTick: -1,

		l1:  cache.New(cfg.L1.SizeBytes, cfg.L1.LineBytes, cfg.L1.Ways),
		l1m: cache.NewMSHRTable[int32](cfg.L1.MSHRs),
		l2:  cache.New(cfg.L2.SizeBytes, cfg.L2.LineBytes, cfg.L2.Ways),
		l2m: cache.NewMSHRTable[*Txn](cfg.L2.MSHRs),
	}
	n.l1.SetLIPInsertion(cfg.L1.LIPInsertion)
	n.l2.SetLIPInsertion(cfg.L2.LIPInsertion)
	if cfg.Mesh.Nodes() <= 64 {
		n.dir = make(map[uint64]uint64)
	} else {
		n.dirWide = make(map[uint64][]uint64)
	}
	return n
}

// dirAdd records that the given tile's L1 received a copy of the line.
func (n *node) dirAdd(line uint64, tile int) {
	if n.dir != nil {
		n.dir[line] |= 1 << uint(tile)
		return
	}
	mask, ok := n.dirWide[line]
	if !ok {
		if l := len(n.dirFree); l > 0 {
			mask = n.dirFree[l-1]
			n.dirFree[l-1] = nil
			n.dirFree = n.dirFree[:l-1]
		} else {
			mask = make([]uint64, (n.s.cfg.Mesh.Nodes()+63)/64)
		}
		n.dirWide[line] = mask
	}
	mask[tile/64] |= 1 << uint(tile%64)
}

// sendInv dispatches one inclusion-enforcing L1 invalidation.
func (n *node) sendInv(line uint64, tile int, now int64) {
	n.sh.send(now, n.id, tile, n.s.cfg.RequestFlits(),
		noc.VNetRequest, noc.Normal, 0, msgInvL2toL1, nil, line)
	n.sh.col.Invalidations++
}

// backInvalidate enforces inclusion: when the L2 evicts a line, every L1
// that may hold a copy receives a 1-flit invalidation, in ascending tile
// order on both directory representations.
func (n *node) backInvalidate(line uint64, now int64) {
	if n.dir != nil {
		mask, ok := n.dir[line]
		if !ok {
			return
		}
		delete(n.dir, line)
		for tile := 0; mask != 0; tile++ {
			if mask&1 != 0 {
				n.sendInv(line, tile, now)
			}
			mask >>= 1
		}
		return
	}
	mask, ok := n.dirWide[line]
	if !ok {
		return
	}
	delete(n.dirWide, line)
	for wi, w := range mask {
		mask[wi] = 0
		for w != 0 {
			n.sendInv(line, wi*64+bits.TrailingZeros64(w), now)
			w &= w - 1
		}
	}
	n.dirFree = append(n.dirFree, mask)
}

// deliver is the tile's network sink. A sleeping tile schedules a timed wake
// for the packet's availability cycle; an active one picks it up through its
// regular trySleep bookkeeping. (Ejection times per tile are nondecreasing,
// so the inbox stays sorted by at.)
func (n *node) deliver(p *noc.Packet, at int64) {
	n.inbox = append(n.inbox, inItem{pkt: p, at: at})
	if !n.s.dense && !n.sh.nodeActive.Has(n.id) {
		n.sh.nodeWakes.Push(at, int32(n.id))
	}
}

// dispatchInbox routes delivered packets to the L2 bank, the memory
// controller, or the L1 fill path.
func (n *node) dispatchInbox(now int64) {
	taken := 0
	for taken < len(n.inbox) && n.inbox[taken].at <= now {
		it := n.inbox[taken]
		taken++
		m := it.pkt.Payload.(*message)
		switch m.kind {
		case msgReqL1toL2, msgWBL1toL2, msgRespMCtoL2:
			if m.txn != nil && m.kind == msgReqL1toL2 {
				m.txn.ReqAtL2 = it.at
				m.txn.AgeAtL2 = it.pkt.Age
			}
			n.l2Queue = append(n.l2Queue, it)
		case msgReqL2toMC, msgWBL2toMC:
			mc := n.s.mcAt[n.id]
			if mc == nil {
				panic(fmt.Sprintf("sim: tile %d received %v but hosts no memory controller", n.id, m.kind))
			}
			mc.accept(it, now)
			n.sh.recycle(it.pkt)
		case msgRespL2toL1:
			n.fillL1(it, now)
			n.sh.recycle(it.pkt)
		case msgInvL2toL1:
			// Inclusive-L2 back-invalidation: drop the L1 copy; a
			// dirty copy goes straight to memory (its L2 home is gone).
			if n.l1.Invalidate(m.line) {
				n.sh.send(now, n.id, n.s.mcTileOf(m.line), n.s.cfg.ResponseFlits(),
					noc.VNetRequest, noc.Normal, 0, msgWBL2toMC, nil, m.line)
			}
			n.sh.recycle(it.pkt)
		default:
			panic(fmt.Sprintf("sim: tile %d cannot handle message kind %v", n.id, m.kind))
		}
	}
	if taken > 0 {
		// Compact in place, keeping the inbox's capacity (see the same
		// pattern on the router arrival queues).
		rest := copy(n.inbox, n.inbox[taken:])
		n.inbox = n.inbox[:rest]
	}
}

// tickL2 advances the bank pipeline: finish due jobs, then accept one new
// request per cycle.
func (n *node) tickL2(now int64) {
	// Finish jobs in completion order (the pipeline preserves it).
	// finishL2 may re-append a job on MSHR exhaustion, but always with
	// done = now+1, so the scan below never reaches re-appended work and
	// the queue can be compacted in place afterwards.
	finished := 0
	for finished < len(n.l2Busy) && n.l2Busy[finished].done <= now {
		job := n.l2Busy[finished]
		finished++
		n.finishL2(job.it, now)
	}
	if finished > 0 {
		n.l2Busy = n.l2Busy[:copy(n.l2Busy, n.l2Busy[finished:])]
	}
	if len(n.l2Queue) > 0 && n.l2Queue[0].at <= now {
		it := n.l2Queue[0]
		n.l2Queue = n.l2Queue[:copy(n.l2Queue, n.l2Queue[1:])]
		n.l2Busy = append(n.l2Busy, l2Job{it: it, done: now + n.s.cfg.L2.Latency})
	}
}

// finishL2 applies one request after its bank access latency elapsed.
func (n *node) finishL2(it inItem, now int64) {
	m := it.pkt.Payload.(*message)
	switch m.kind {
	case msgReqL1toL2:
		t := m.txn
		if n.l2.Access(n.s.snuca.Local(m.line), false) {
			n.dirAdd(m.line, t.Core)
			n.respondToCore(t, t.AgeAtL2+(now-t.ReqAtL2), n.s.pol.BasePriority(t.Core), now)
			n.sh.recycle(it.pkt)
			return
		}
		n.missToMemory(it, now)

	case msgWBL1toL2:
		if !n.l2.WritebackHit(n.s.snuca.Local(m.line)) {
			// The line raced an L2 eviction (its back-invalidation is
			// in flight toward us): forward the data to memory.
			n.sh.send(now, n.id, n.s.mcTileOf(m.line), n.s.cfg.ResponseFlits(),
				noc.VNetRequest, noc.Normal, 0, msgWBL2toMC, nil, m.line)
		}
		n.sh.recycle(it.pkt)

	case msgRespMCtoL2:
		t := m.txn
		if v, evicted := n.l2.Fill(n.s.snuca.Local(m.line), false); evicted {
			victim := n.s.snuca.Global(v.Addr, n.id)
			n.backInvalidate(victim, now)
			if v.Dirty {
				n.sh.send(now, n.id, n.s.mcTileOf(victim), n.s.cfg.ResponseFlits(),
					noc.VNetRequest, noc.Normal, 0, msgWBL2toMC, nil, victim)
			}
		}
		mshr, ok := n.l2m.Complete(m.line)
		if !ok {
			panic(fmt.Sprintf("sim: L2 bank %d fill for line %#x without an MSHR", n.id, m.line))
		}
		for _, wt := range mshr.Waiters {
			n.dirAdd(m.line, wt.Core)
			wt.RespAtL2 = it.at
			wt.MemDone = t.MemDone
			wt.SoFarAtMC = t.SoFarAtMC
			wt.OffChip = true
			wt.RespPriority = it.pkt.Priority
			// The response keeps its priority on the L2->L1 leg
			// (Figure 8: both return paths are expedited).
			n.respondToCore(wt, it.pkt.Age+(now-it.at), it.pkt.Priority, now)
		}
		n.l2m.Release(mshr)
		n.sh.recycle(it.pkt)

	default:
		panic(fmt.Sprintf("sim: L2 bank %d cannot finish %v", n.id, m.kind))
	}
}

// missToMemory turns an L2 demand miss into an off-chip request, retrying
// next cycle when the bank's MSHRs are exhausted. It owns the request
// packet: recycled on every path except the retry, which keeps it queued.
func (n *node) missToMemory(it inItem, now int64) {
	m := it.pkt.Payload.(*message)
	t := m.txn
	primary, ok := n.l2m.Allocate(m.line, t.Store, t)
	if !ok {
		n.l2Busy = append(n.l2Busy, l2Job{it: it, done: now + 1})
		return
	}
	if !primary {
		n.sh.recycle(it.pkt)
		return // coalesced onto an in-flight fetch
	}
	bank := n.s.amap.GlobalBank(m.line)
	pri := n.s.pol.RequestPriority(n.id, bank, t.Core, now) // Scheme-2 + app-aware hook
	n.sh.send(now, n.id, n.s.mcTileOf(m.line), n.s.cfg.RequestFlits(),
		noc.VNetRequest, pri, t.AgeAtL2+(now-t.ReqAtL2), msgReqL2toMC, t, m.line)
	n.sh.recycle(it.pkt)
}

// respondToCore sends the data response for one transaction back to its
// requesting tile.
func (n *node) respondToCore(t *Txn, age int64, pri noc.Priority, now int64) {
	n.sh.send(now, n.id, t.Core, n.s.cfg.ResponseFlits(),
		noc.VNetResponse, pri, age, msgRespL2toL1, t, t.Line)
}

// fillL1 completes a demand transaction at the requesting tile.
func (n *node) fillL1(it inItem, now int64) {
	m := it.pkt.Payload.(*message)
	t := m.txn
	mshr, ok := n.l1m.Complete(m.line)
	if !ok {
		panic(fmt.Sprintf("sim: tile %d L1 fill for line %#x without an MSHR", n.id, m.line))
	}
	if v, evicted := n.l1.Fill(m.line, mshr.Dirty); evicted && v.Dirty {
		n.sh.send(now, n.id, n.s.snuca.Bank(v.Addr), n.s.cfg.ResponseFlits(),
			noc.VNetRequest, noc.Normal, 0, msgWBL1toL2, nil, v.Addr)
	}
	for _, w := range mshr.Waiters {
		if w != noWaiter {
			n.core.Complete(int(w), now)
		}
	}
	n.l1m.Release(mshr)
	t.Done = now
	n.sh.col.done(t)
	if t.OffChip {
		n.s.pol.RoundTripDone(t.Core, t.Total()) // Scheme-1 feedback
	}
}

// noWaiter marks an L1 MSHR waiter needing no core notification on fill
// (stores, which complete against the store buffer instead).
const noWaiter = int32(-1)

// issue is the core's path into the memory hierarchy (cpu.IssueFunc).
//
// Stores complete against the store buffer after the L1 latency and never
// block the instruction window; the line fetch they trigger on a miss still
// runs to completion (write-allocate) and marks the line dirty.
func (n *node) issue(addr uint64, isWrite bool, slot int) bool {
	// issue only runs inside this tile's core.Tick, so the executing cycle
	// is lastCoreTick (set at the top of tickCore). Under sharded stepping
	// s.now is advanced before the phases run and must not be read here.
	now := n.lastCoreTick
	line := n.l1.LineAddr(addr)
	waiter := int32(slot)
	if isWrite {
		waiter = noWaiter
	}
	done := func() { // store-buffer / L1-hit completion of the ROB slot
		n.delayed = append(n.delayed, action{at: now + n.s.cfg.L1.Latency, slot: int32(slot)})
	}
	if n.l1m.Pending(line) {
		// Must coalesce (the line is already being fetched); the lookup
		// below would otherwise miss-count it.
		_, _ = n.l1m.Allocate(line, isWrite, waiter)
		if isWrite {
			done()
		}
		return true
	}
	if n.l1.Access(addr, isWrite) {
		done()
		return true
	}
	primary, ok := n.l1m.Allocate(line, isWrite, waiter)
	if !ok {
		return false // MSHRs exhausted; core stalls
	}
	if isWrite {
		done()
	}
	if !primary {
		panic("sim: primary L1 miss raced a pending entry")
	}
	n.txnSeq++
	t := &Txn{ID: uint64(n.id+1)<<32 | n.txnSeq, Core: n.id, Line: line, Store: isWrite, Birth: now}
	// The request leaves for the L2 bank after the L1 lookup latency.
	n.delayed = append(n.delayed, action{at: now + n.s.cfg.L1.Latency, txn: t, line: line})
	return true
}

// sendL1Request fires a delayed miss request (the txn != nil action form).
func (n *node) sendL1Request(t *Txn, line uint64, at int64) {
	n.sh.send(at, n.id, n.s.snuca.Bank(line), n.s.cfg.RequestFlits(),
		noc.VNetRequest, n.s.pol.BasePriority(n.id), 0, msgReqL1toL2, t, line)
}

// catchUpCore replays elided hard-stall cycles in closed form (the node only
// sleeps past a core when cpu.SleepUntil certified the stall; see sched.go).
// It must run before any of the waking cycle's own effects: an arriving fill
// decrements the in-flight count, and the elided cycles' outstanding-
// instruction integral must still observe the old value.
func (n *node) catchUpCore(now int64) {
	if n.core != nil && now > n.lastCoreTick+1 {
		n.core.CatchUpStall(now - n.lastCoreTick - 1)
	}
	n.lastCoreTick = now - 1
}

// tickCore runs delayed L1 work and the core itself.
func (n *node) tickCore(now int64) {
	n.lastCoreTick = now
	if len(n.delayed) > 0 {
		kept := n.delayed[:0]
		for _, a := range n.delayed {
			switch {
			case a.at > now:
				kept = append(kept, a)
			case a.txn != nil:
				n.sendL1Request(a.txn, a.line, now)
			default:
				n.core.Complete(int(a.slot), now)
			}
		}
		n.delayed = kept
	}
	if n.core != nil {
		n.core.Tick(now)
	}
}
