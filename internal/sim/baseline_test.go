package sim

import (
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

// mixedHalf returns the halved mixed workload-1 for a 16-tile system.
func mixedHalf(t *testing.T) []trace.Profile {
	t.Helper()
	w, err := workload.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := w.Halve()
	if err != nil {
		t.Fatal(err)
	}
	apps, err := half.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	return apps
}

// TestAppAwareNetFavorsLightApps verifies the comparison baseline: with
// application-aware prioritization, the less memory-intensive applications'
// off-chip latencies improve relative to the unprioritized network.
func TestAppAwareNetFavorsLightApps(t *testing.T) {
	cfg := smallConfig()
	cfg.Run.MeasureCycles = 60_000
	apps := mixedHalf(t)

	run := func(aware bool) *Result {
		c := cfg
		c.AppAwareNet = aware
		s, err := New(c, apps)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run()
	}
	base, aware := run(false), run(true)

	lightLat := func(r *Result) (sum float64, n int) {
		for _, tile := range r.ActiveTiles() {
			if r.Apps[tile].MemoryIntensive() {
				continue
			}
			if h := r.Collector.RoundTrip[tile]; h.Count() > 0 {
				sum += h.Mean()
				n++
			}
		}
		return sum, n
	}
	b, nb := lightLat(base)
	a, na := lightLat(aware)
	if nb == 0 || na == 0 {
		t.Fatal("no light applications measured")
	}
	if a/float64(na) > b/float64(nb)*1.02 {
		t.Errorf("app-aware light-app latency %.0f worse than base %.0f", a/float64(na), b/float64(nb))
	}
}

// TestFCFSLosesRowHits verifies the FCFS memory-scheduler baseline: ignoring
// the row buffer must reduce the row-hit count on streaming-heavy load.
func TestFCFSLosesRowHits(t *testing.T) {
	cfg := smallConfig()
	apps := fillApps(cfg, "libquantum", 8) // heavy streaming: many row hits available

	rowHits := func(sched config.MemSched) int64 {
		c := cfg
		c.DRAM.Sched = sched
		s, err := New(c, apps)
		if err != nil {
			t.Fatal(err)
		}
		r := s.Run()
		var hits int64
		for _, d := range r.DRAM {
			hits += d.RowHits
		}
		return hits
	}
	fr, fc := rowHits(config.FRFCFS), rowHits(config.FCFS)
	if fr == 0 {
		t.Fatal("FR-FCFS found no row hits on a streaming workload")
	}
	if fc >= fr {
		t.Errorf("FCFS row hits %d >= FR-FCFS %d", fc, fr)
	}
}

// TestAppAwareMemScheduler verifies the plumbing: sensitive requests exist
// and the system still completes everything.
func TestAppAwareMemScheduler(t *testing.T) {
	cfg := smallConfig()
	cfg.DRAM.Sched = config.AppAwareMem
	apps := mixedHalf(t)
	s, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	var done int64
	for _, tile := range r.ActiveTiles() {
		done += r.Collector.OffChip[tile]
		if r.IPC[tile] <= 0 {
			t.Errorf("tile %d stalled under app-aware memory scheduling", tile)
		}
	}
	if done == 0 {
		t.Fatal("no off-chip transactions completed")
	}
}

// TestBatchingModeRuns exercises the batching anti-starvation mode on a full
// system.
func TestBatchingModeRuns(t *testing.T) {
	cfg := smallConfig().WithSchemes(true, true)
	cfg.NoC.StarvationMode = config.Batching
	cfg.NoC.BatchInterval = 1000
	s, err := New(cfg, fillApps(cfg, "mcf", 8))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	for _, tile := range r.ActiveTiles() {
		if r.IPC[tile] <= 0 {
			t.Errorf("tile %d stalled under batching arbitration", tile)
		}
	}
}

// TestInclusiveBackInvalidation verifies the directory: when the L2 evicts a
// line, sharer L1s are invalidated over the network and dirty copies are
// written back to memory.
func TestInclusiveBackInvalidation(t *testing.T) {
	cfg := smallConfig()
	// Small pointer-chasing working sets with heavy cold streaming force
	// L2 evictions of lines some L1 still caches.
	apps := fillApps(cfg, "mcf", 16)
	s, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Collector.Invalidations == 0 {
		t.Fatal("no back-invalidations sent despite L2 pressure")
	}
	// The system must remain live and conservative under the extra
	// message class.
	for _, tile := range r.ActiveTiles() {
		if r.IPC[tile] <= 0 {
			t.Errorf("tile %d stalled", tile)
		}
	}
}
