package sim

import (
	"encoding/json"
	"fmt"
	"io"
)

// AppSummary condenses one application's measurements.
type AppSummary struct {
	Tile string  `json:"tile"`
	App  string  `json:"app"`
	IPC  float64 `json:"ipc"`
	MLP  float64 `json:"mlp"`
	MPKI float64 `json:"mpki"`

	OffChip     int64   `json:"offchip_accesses"`
	L2Hits      int64   `json:"l2_hits"`
	MeanLatency float64 `json:"mean_latency"`
	P50Latency  int64   `json:"p50_latency"`
	P90Latency  int64   `json:"p90_latency"`
	P99Latency  int64   `json:"p99_latency"`

	// Per-leg average delays of off-chip accesses (Figure 2's paths).
	Legs [5]float64 `json:"legs"`
}

// MCSummary condenses one memory controller's measurements.
type MCSummary struct {
	Reads        int64     `json:"reads"`
	Writes       int64     `json:"writes"`
	RowHitRate   float64   `json:"row_hit_rate"`
	AvgQueue     float64   `json:"avg_queue_depth"`
	BusBusy      int64     `json:"bus_busy_cycles"`
	BankIdleness []float64 `json:"bank_idleness"`
}

// Summary is a JSON-friendly digest of a Result.
type Summary struct {
	Cycles int64 `json:"cycles"`

	// Estimated marks a summary produced by the closed-form model
	// (internal/analytic) rather than the cycle-accurate simulator.
	// omitempty keeps simulator output byte-identical to earlier versions.
	Estimated bool `json:"estimated,omitempty"`

	Scheme1Enabled bool `json:"scheme1"`
	Scheme2Enabled bool `json:"scheme2"`

	Apps []AppSummary `json:"apps"`
	MCs  []MCSummary  `json:"memory_controllers"`

	NetAvgLatency float64 `json:"net_avg_latency"`
	NetDelivered  int64   `json:"net_delivered"`

	S1TaggedFrac float64 `json:"s1_tagged_frac"`
	S2TaggedFrac float64 `json:"s2_tagged_frac"`

	// Raw scheme counters behind the tagged fractions. Downstream consumers
	// that recompute derived ratios (the distributed sweep's table path)
	// need the integers, not the rounded fractions, to reproduce a local
	// run's output byte for byte. omitempty keeps summaries of runs that
	// never exercised a scheme identical to earlier versions.
	S1Tagged  int64 `json:"s1_tagged,omitempty"`
	S1Checked int64 `json:"s1_checked,omitempty"`
	S2Tagged  int64 `json:"s2_tagged,omitempty"`
	S2Checked int64 `json:"s2_checked,omitempty"`
}

// Summary digests the result for serialization.
func (r *Result) Summary() Summary {
	s := Summary{
		Cycles:         r.Cycles,
		Scheme1Enabled: r.Cfg.S1.Enabled,
		Scheme2Enabled: r.Cfg.S2.Enabled,
		NetAvgLatency:  r.Net.AvgLatency(),
		NetDelivered:   r.Net.Delivered,
		S1Tagged:       r.S1Tagged,
		S1Checked:      r.S1Checked,
		S2Tagged:       r.S2Tagged,
		S2Checked:      r.S2Checked,
	}
	if r.S1Checked > 0 {
		s.S1TaggedFrac = float64(r.S1Tagged) / float64(r.S1Checked)
	}
	if r.S2Checked > 0 {
		s.S2TaggedFrac = float64(r.S2Tagged) / float64(r.S2Checked)
	}
	for _, tile := range r.ActiveTiles() {
		h := r.Collector.RoundTrip[tile]
		a := AppSummary{
			Tile:    tileName(tile, r.Cfg.Mesh.Width),
			App:     r.Apps[tile].Name,
			IPC:     r.IPC[tile],
			MLP:     r.CoreStats[tile].MLP(),
			MPKI:    r.MPKI(tile),
			OffChip: r.Collector.OffChip[tile],
			L2Hits:  r.Collector.L2Hits[tile],
		}
		if h.Count() > 0 {
			a.MeanLatency = h.Mean()
			a.P50Latency = h.Percentile(50)
			a.P90Latency = h.Percentile(90)
			a.P99Latency = h.Percentile(99)
		}
		for l, v := range r.Collector.Breakdown[tile].OverallAvg() {
			a.Legs[l] = v
		}
		s.Apps = append(s.Apps, a)
	}
	for i, d := range r.DRAM {
		s.MCs = append(s.MCs, MCSummary{
			Reads:        d.Reads,
			Writes:       d.Writes,
			RowHitRate:   d.RowHitRate(),
			AvgQueue:     d.AvgQueueDepth(),
			BusBusy:      d.BusBusy,
			BankIdleness: r.BankIdleness[i],
		})
	}
	return s
}

// WriteJSON serializes the summary with indentation.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Summary())
}

func tileName(tile, width int) string {
	return fmt.Sprintf("%d (%d,%d)", tile, tile%width, tile/width)
}
