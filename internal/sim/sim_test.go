package sim

import (
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/trace"
)

// smallConfig returns a quick 4x4 system for tests.
func smallConfig() config.Config {
	cfg := config.Baseline16()
	cfg.Run.WarmupCycles = 5_000
	cfg.Run.MeasureCycles = 20_000
	return cfg
}

// fillApps assigns the same profile to the first n tiles.
func fillApps(cfg config.Config, name string, n int) []trace.Profile {
	apps := make([]trace.Profile, cfg.Mesh.Nodes())
	p := trace.MustLookup(name)
	for i := 0; i < n && i < len(apps); i++ {
		apps[i] = p
	}
	return apps
}

func TestSmokeRunBaseline(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg, fillApps(cfg, "milc", 8))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	for _, tile := range r.ActiveTiles() {
		if r.IPC[tile] <= 0 {
			t.Errorf("tile %d IPC = %v, want > 0", tile, r.IPC[tile])
		}
		if r.Collector.OffChip[tile] == 0 {
			t.Errorf("tile %d completed no off-chip accesses", tile)
		}
	}
	if r.Net.Delivered == 0 {
		t.Fatal("network delivered no packets")
	}
}

func TestSmokeRunWithSchemes(t *testing.T) {
	cfg := smallConfig().WithSchemes(true, true)
	cfg.S1.UpdatePeriod = 2_000
	s, err := New(cfg, fillApps(cfg, "mcf", 12))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.S1Checked == 0 {
		t.Error("scheme-1 classified no responses")
	}
	if r.S2Checked == 0 {
		t.Error("scheme-2 classified no requests")
	}
	if r.S1Tagged == 0 {
		t.Error("scheme-1 tagged no responses as late")
	}
	if r.S1Tagged >= r.S1Checked {
		t.Errorf("scheme-1 tagged everything (%d/%d); threshold is not selective", r.S1Tagged, r.S1Checked)
	}
}

// TestLegsTelescope verifies that per-leg delays sum to the end-to-end
// latency for every off-chip access.
func TestLegsTelescope(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg, fillApps(cfg, "lbm", 4))
	if err != nil {
		t.Fatal(err)
	}
	// Intercept completions via the collector's breakdown: the breakdown
	// groups by the sum of legs, while the round-trip histogram uses
	// Done-Birth; equality of their totals is the telescoping property.
	r := s.Run()
	for _, tile := range r.ActiveTiles() {
		bd := r.Collector.Breakdown[tile]
		ht := r.Collector.RoundTrip[tile]
		if bd.Count() != ht.Count() {
			t.Fatalf("tile %d: breakdown has %d accesses, histogram %d", tile, bd.Count(), ht.Count())
		}
		var bdMean float64
		for _, avg := range bd.OverallAvg() {
			bdMean += avg
		}
		if diff := bdMean - ht.Mean(); diff > 1 || diff < -1 {
			t.Errorf("tile %d: mean of leg sums %.1f != mean round trip %.1f", tile, bdMean, ht.Mean())
		}
	}
}
