package sim

import (
	"bytes"
	"testing"

	"nocmem/internal/trace"
)

// TestTraceReplayMatchesGenerator records a synthetic stream to a trace and
// verifies that replaying it through the full system reproduces the directly
// generated run exactly (the replay is instruction-identical until the trace
// wraps, and these runs stay within one pass).
func TestTraceReplayMatchesGenerator(t *testing.T) {
	cfg := smallConfig()
	apps := fillApps(cfg, "milc", 4)

	direct, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	rd := direct.Run()

	srcs := make([]trace.AppSource, cfg.Mesh.Nodes())
	for i := 0; i < 4; i++ {
		gen, err := trace.NewGenerator(apps[i], i, cfg.L1.LineBytes, cfg.Run.Seed)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		// Enough instructions that the trace never wraps in this run.
		if err := trace.Record(&buf, gen, 400_000); err != nil {
			t.Fatal(err)
		}
		ft, err := trace.Parse(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		srcs[i] = ft
	}
	replay, err := NewFromSources(cfg, srcs, apps)
	if err != nil {
		t.Fatal(err)
	}
	rr := replay.Run()

	for i := 0; i < 4; i++ {
		if rd.IPC[i] != rr.IPC[i] {
			t.Errorf("tile %d: direct IPC %v != replay IPC %v", i, rd.IPC[i], rr.IPC[i])
		}
		if srcs[i].(*trace.FileTrace).Loops() != 0 {
			t.Errorf("tile %d: trace wrapped; comparison invalid", i)
		}
	}
}

func TestNewFromSourcesValidation(t *testing.T) {
	cfg := smallConfig()
	n := cfg.Mesh.Nodes()
	if _, err := NewFromSources(cfg, make([]trace.AppSource, n-1), make([]trace.Profile, n)); err == nil {
		t.Error("length mismatch accepted")
	}
	// Metadata without a source (and vice versa) is rejected.
	srcs := make([]trace.AppSource, n)
	apps := make([]trace.Profile, n)
	apps[0].Name = "ghost"
	if _, err := NewFromSources(cfg, srcs, apps); err == nil {
		t.Error("metadata without source accepted")
	}
}
