package sim

import (
	"math"
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

// TestMessageConservation checks that every demand transaction completes:
// off-chip completions plus L2 hits equal the L1 primary misses, and the
// network delivers everything it accepted.
func TestMessageConservation(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg, fillApps(cfg, "milc", 8))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.Net.InFlight > 200 {
		t.Errorf("suspiciously many packets in flight at the end: %d", r.Net.InFlight)
	}
	var done, offchip, l2hits int64
	for _, tile := range r.ActiveTiles() {
		offchip += r.Collector.OffChip[tile]
		l2hits += r.Collector.L2Hits[tile]
	}
	done = offchip + l2hits
	if done == 0 {
		t.Fatal("no transactions completed")
	}
	// All completed off-chip transactions came back through DRAM reads.
	var reads int64
	for _, d := range r.DRAM {
		reads += d.Reads
	}
	if offchip > reads+int64(cfg.Mesh.Nodes()*cfg.L2.MSHRs) {
		t.Errorf("%d off-chip completions but only %d DRAM reads", offchip, reads)
	}
}

// TestDeterminism verifies identical configs and seeds give identical
// results.
func TestDeterminism(t *testing.T) {
	cfg := smallConfig().WithSchemes(true, true)
	run := func() []float64 {
		s, err := New(cfg, fillApps(cfg, "mcf", 10))
		if err != nil {
			t.Fatal(err)
		}
		return s.Run().IPC
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tile %d IPC %v vs %v: simulation not deterministic", i, a[i], b[i])
		}
	}
}

// TestSeedChangesResults verifies the seed actually perturbs the runs.
func TestSeedChangesResults(t *testing.T) {
	cfg := smallConfig()
	s1, _ := New(cfg, fillApps(cfg, "mcf", 10))
	r1 := s1.Run()
	cfg.Run.Seed = 99
	s2, _ := New(cfg, fillApps(cfg, "mcf", 10))
	r2 := s2.Run()
	same := true
	for i := range r1.IPC {
		if r1.IPC[i] != r2.IPC[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical IPCs")
	}
}

// TestAloneMPKIMatchesProfile runs applications alone and checks the
// measured off-chip MPKI lands near the profile target.
func TestAloneMPKIMatchesProfile(t *testing.T) {
	cfg := config.Baseline32()
	cfg.Run.WarmupCycles = 30_000
	cfg.Run.MeasureCycles = 150_000
	for _, name := range []string{"mcf", "libquantum", "sphinx3"} {
		p := trace.MustLookup(name)
		apps := make([]trace.Profile, cfg.Mesh.Nodes())
		apps[0] = p
		s, err := New(cfg, apps)
		if err != nil {
			t.Fatal(err)
		}
		r := s.Run()
		got := r.MPKI(0)
		if math.Abs(got-p.MPKI) > 0.35*p.MPKI+1 {
			t.Errorf("%s alone MPKI %.1f, want ~%.1f", name, got, p.MPKI)
		}
	}
}

// TestSharedSlowerThanImplicitAlone sanity-checks contention: per-app IPC in
// a full system is below the compute width and above zero.
func TestSharedIPCRange(t *testing.T) {
	cfg := smallConfig()
	w, err := workload.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	half, err := w.Halve()
	if err != nil {
		t.Fatal(err)
	}
	apps, err := half.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	for _, tile := range r.ActiveTiles() {
		if r.IPC[tile] <= 0 || r.IPC[tile] > float64(cfg.CPU.Width) {
			t.Errorf("tile %d IPC %.3f out of (0, %d]", tile, r.IPC[tile], cfg.CPU.Width)
		}
	}
}

// TestScheme1AcceleratesTaggedReturns verifies the core claim of Scheme-1 at
// the mechanism level: tagged (late) responses traverse the return path
// faster than untagged ones despite being sent during congested episodes.
func TestScheme1AcceleratesTaggedReturns(t *testing.T) {
	cfg := config.Baseline32().WithSchemes(true, false)
	cfg.Run.WarmupCycles = 50_000
	cfg.Run.MeasureCycles = 200_000
	cfg.S1.UpdatePeriod = 10_000
	w, err := workload.Get(8)
	if err != nil {
		t.Fatal(err)
	}
	apps, err := w.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	if r.S1Tagged == 0 {
		t.Fatal("scheme-1 tagged nothing")
	}
	high, norm := r.Collector.RetHigh, r.Collector.RetNormal
	if high.N() == 0 || norm.N() == 0 {
		t.Fatal("missing return-path samples")
	}
	if high.Mean() >= norm.Mean()*1.02 {
		t.Errorf("tagged return path %.1f not faster than normal %.1f", high.Mean(), norm.Mean())
	}
}

// TestScheme2ReducesBankIdleness reproduces the claim behind Figure 13 at
// test scale: with Scheme-2 on, average bank idleness must not increase.
func TestScheme2ReducesBankIdleness(t *testing.T) {
	base := config.Baseline32()
	base.Run.WarmupCycles = 50_000
	base.Run.MeasureCycles = 200_000
	w, err := workload.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	apps, err := w.Profiles()
	if err != nil {
		t.Fatal(err)
	}
	avgIdle := func(cfg config.Config) float64 {
		s, err := New(cfg, apps)
		if err != nil {
			t.Fatal(err)
		}
		r := s.Run()
		var sum float64
		var n int
		for _, banks := range r.BankIdleness {
			for _, v := range banks {
				sum += v
				n++
			}
		}
		return sum / float64(n)
	}
	idleBase := avgIdle(base)
	idleS2 := avgIdle(base.WithSchemes(false, true))
	if idleBase <= 0 || idleBase >= 1 {
		t.Fatalf("base idleness %.2f implausible", idleBase)
	}
	if idleS2 > idleBase+0.02 {
		t.Errorf("scheme-2 idleness %.3f above base %.3f", idleS2, idleBase)
	}
}

// TestSoFarBelowRoundTrip checks the Figure 9 relationship: the so-far delay
// observed right after the MC is below the final round-trip delay, and both
// distributions have the expected ordering of means.
func TestSoFarBelowRoundTrip(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg, fillApps(cfg, "lbm", 8))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	for _, tile := range r.ActiveTiles() {
		sf, rt := r.Collector.SoFar[tile], r.Collector.RoundTrip[tile]
		if sf.Count() == 0 {
			continue
		}
		if sf.Mean() >= rt.Mean() {
			t.Errorf("tile %d: so-far mean %.1f >= round-trip mean %.1f", tile, sf.Mean(), rt.Mean())
		}
	}
}

// TestIdleTilesStayIdle ensures tiles without applications never retire
// instructions yet still serve their L2 banks.
func TestIdleTilesStayIdle(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg, fillApps(cfg, "milc", 4))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	for i := 4; i < cfg.Mesh.Nodes(); i++ {
		if r.IPC[i] != 0 || r.CoreStats[i].Retired != 0 {
			t.Errorf("idle tile %d retired instructions", i)
		}
	}
	// The S-NUCA spreads lines over all banks, so idle tiles see traffic.
	busy := 0
	for i := 4; i < cfg.Mesh.Nodes(); i++ {
		if r.L2[i].Hits+r.L2[i].Misses > 0 {
			busy++
		}
	}
	if busy == 0 {
		t.Error("no idle tile served L2 traffic; S-NUCA broken")
	}
}

// TestTwoStageRouterFasterBase verifies the Figure 17 substrate: the 2-stage
// router lowers baseline network latency.
func TestTwoStageRouterFasterBase(t *testing.T) {
	run := func(p config.RouterPipeline) float64 {
		cfg := smallConfig()
		cfg.NoC.Pipeline = p
		s, err := New(cfg, fillApps(cfg, "milc", 8))
		if err != nil {
			t.Fatal(err)
		}
		return s.Run().Net.AvgLatency()
	}
	l5, l2 := run(config.Pipeline5), run(config.Pipeline2)
	if l2 >= l5 {
		t.Errorf("2-stage avg network latency %.1f not below 5-stage %.1f", l2, l5)
	}
}

// TestMeasurementWindowIsolation verifies warmup activity does not leak into
// measured counters.
func TestMeasurementWindowIsolation(t *testing.T) {
	cfg := smallConfig()
	cfg.Run.MeasureCycles = 1_000 // tiny window
	s, err := New(cfg, fillApps(cfg, "milc", 8))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	for _, tile := range r.ActiveTiles() {
		if r.CoreStats[tile].Cycles != 1_000 {
			t.Fatalf("tile %d measured %d cycles, want 1000", tile, r.CoreStats[tile].Cycles)
		}
		if r.CoreStats[tile].Retired > 4_000 {
			t.Fatalf("tile %d retired %d instructions in 1000 cycles", tile, r.CoreStats[tile].Retired)
		}
	}
}
