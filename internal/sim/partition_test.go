package sim

import (
	"math/rand"
	"testing"
)

// checkPartition validates the structural invariants every caller relies on:
// exactly k strictly-increasing exclusive ends covering [0, n), i.e. k
// non-empty contiguous ranges.
func checkPartition(t *testing.T, costs []int64, k int, ends []int) {
	t.Helper()
	if len(ends) != k {
		t.Fatalf("linearPartition(%v, %d) returned %d ranges: %v", costs, k, len(ends), ends)
	}
	prev := 0
	for i, end := range ends {
		if end <= prev {
			t.Fatalf("linearPartition(%v, %d): range %d is empty or decreasing: %v", costs, k, i, ends)
		}
		prev = end
	}
	if prev != len(costs) {
		t.Fatalf("linearPartition(%v, %d) covers [0,%d), want [0,%d)", costs, k, prev, len(costs))
	}
}

// maxRangeSum returns the largest per-range cost sum of a partition.
func maxRangeSum(costs []int64, ends []int) int64 {
	var max, sum int64
	start := 0
	for _, end := range ends {
		sum = 0
		for _, c := range costs[start:end] {
			sum += c
		}
		if sum > max {
			max = sum
		}
		start = end
	}
	return max
}

func TestLinearPartition(t *testing.T) {
	cases := []struct {
		name    string
		costs   []int64
		k       int
		want    []int // nil = only check invariants + optimality bound
		wantMax int64 // 0 = skip the max-sum check
	}{
		{"single range", []int64{3, 1, 4}, 1, []int{3}, 8},
		{"uniform even split", []int64{1, 1, 1, 1, 1, 1, 1, 1}, 4, []int{2, 4, 6, 8}, 2},
		{"k equals n", []int64{5, 2, 9}, 3, []int{1, 2, 3}, 9},
		{"k clamped to n", []int64{5, 2}, 7, []int{1, 2}, 5},
		{"hotspot head", []int64{100, 1, 1, 1, 1, 1, 1, 1}, 4, nil, 100},
		{"hotspot tail", []int64{1, 1, 1, 1, 1, 1, 1, 100}, 4, nil, 100},
		{"two hotspots", []int64{50, 1, 1, 1, 1, 1, 1, 50}, 2, []int{4, 8}, 54},
		{"zeros between spikes", []int64{0, 0, 10, 0, 0, 10, 0, 0}, 4, nil, 10},
		{"all zeros", []int64{0, 0, 0, 0}, 3, nil, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := linearPartition(tc.costs, tc.k)
			k := tc.k
			if k > len(tc.costs) {
				k = len(tc.costs)
			}
			checkPartition(t, tc.costs, k, got)
			if tc.want != nil {
				for i := range tc.want {
					if got[i] != tc.want[i] {
						t.Fatalf("linearPartition(%v, %d) = %v, want %v", tc.costs, tc.k, got, tc.want)
					}
				}
			}
			if tc.wantMax > 0 {
				if m := maxRangeSum(tc.costs, got); m > tc.wantMax {
					t.Fatalf("max range sum %d exceeds optimum %d: %v", m, tc.wantMax, got)
				}
			}
		})
	}
}

// TestLinearPartitionRandomized checks, over random cost vectors, that the
// result is (a) structurally valid, (b) deterministic, and (c) never worse
// than the trivial even-width split it replaced — the minimum bar for a
// balancer to be worth running.
func TestLinearPartitionRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		k := 1 + rng.Intn(8)
		if k > n {
			k = n
		}
		costs := make([]int64, n)
		for i := range costs {
			// Heavy-tailed: most tiles near-idle, a few hot.
			if rng.Intn(4) == 0 {
				costs[i] = int64(rng.Intn(1000))
			} else {
				costs[i] = int64(rng.Intn(3))
			}
		}
		got := linearPartition(costs, k)
		checkPartition(t, costs, k, got)

		again := linearPartition(costs, k)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("non-deterministic: %v then %v for %v k=%d", got, again, costs, k)
			}
		}

		even := make([]int, k)
		for i := 0; i < k; i++ {
			even[i] = (n*(i+1) + k - 1) / k
		}
		// Even-width ends can repeat when k is close to n; dedup forward to
		// keep the comparison partition valid.
		for i := 1; i < k; i++ {
			if even[i] <= even[i-1] {
				even[i] = even[i-1] + 1
			}
		}
		if gm, em := maxRangeSum(costs, got), maxRangeSum(costs, even); gm > em {
			t.Fatalf("balanced split (max %d) worse than even split (max %d) for %v k=%d: %v",
				gm, em, costs, k, got)
		}
	}
}
