package sim

import (
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/workload"
)

// BenchmarkFullSystem32 measures the simulator's own speed on the paper's
// baseline 32-core system under workload-7 (memory intensive, worst case for
// the router hot path). b.N counts simulated cycles.
func BenchmarkFullSystem32(b *testing.B) {
	cfg := config.Baseline32()
	w, err := workload.Get(7)
	if err != nil {
		b.Fatal(err)
	}
	apps, err := w.Profiles()
	if err != nil {
		b.Fatal(err)
	}
	s, err := New(cfg, apps)
	if err != nil {
		b.Fatal(err)
	}
	s.Step(20_000) // warm the system into steady state
	b.ResetTimer()
	s.Step(int64(b.N))
}
