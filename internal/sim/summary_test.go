package sim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSummaryJSON(t *testing.T) {
	cfg := smallConfig().WithSchemes(true, true)
	s, err := New(cfg, fillApps(cfg, "milc", 4))
	if err != nil {
		t.Fatal(err)
	}
	r := s.Run()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(back.Apps) != 4 {
		t.Fatalf("%d app summaries", len(back.Apps))
	}
	if len(back.MCs) != cfg.DRAM.Controllers {
		t.Fatalf("%d MC summaries", len(back.MCs))
	}
	for _, a := range back.Apps {
		if a.App != "milc" || a.IPC <= 0 || a.MLP <= 0 {
			t.Errorf("app summary %+v", a)
		}
		var legSum float64
		for _, l := range a.Legs {
			legSum += l
		}
		if a.OffChip > 0 && (legSum < float64(a.MeanLatency)*0.99 || legSum > float64(a.MeanLatency)*1.01) {
			t.Errorf("legs sum %.1f vs mean latency %.1f", legSum, a.MeanLatency)
		}
	}
	if !back.Scheme1Enabled || !back.Scheme2Enabled {
		t.Error("scheme flags lost")
	}
	if back.S1TaggedFrac <= 0 || back.S1TaggedFrac >= 1 {
		t.Errorf("s1 tagged fraction %v", back.S1TaggedFrac)
	}
}
