package sim

import (
	"fmt"

	"nocmem/internal/dram"
	"nocmem/internal/noc"
)

// mcPayload rides on a dram.Request through the controller.
type mcPayload struct {
	txn     *Txn
	age     int64 // so-far delay at controller arrival
	arrival int64
	respDst int // L2 bank tile awaiting the data
}

// mcNode hosts one memory controller on a corner tile.
type mcNode struct {
	tile int
	idx  int // controller index: position in Simulator.mcs and the active set
	s    *Simulator
	sh   *simShard // owning shard (same as the hosting tile's)
	ctl  *dram.Controller

	// reqFree recycles dram.Request+mcPayload pairs: the controller drops
	// a request before invoking the completion callback, so complete is
	// the final owner and can return it here. Single-goroutine.
	reqFree []*dram.Request
}

func newMCNode(tile, ctlIdx int, s *Simulator) *mcNode {
	m := &mcNode{tile: tile, idx: ctlIdx, s: s}
	m.ctl = dram.NewController(s.cfg.DRAM, ctlIdx, m.complete)
	return m
}

// getReq takes a zeroed request (with an attached zeroed payload) from the
// free list, or allocates a fresh pair.
func (m *mcNode) getReq() *dram.Request {
	if l := len(m.reqFree); l > 0 {
		r := m.reqFree[l-1]
		m.reqFree[l-1] = nil
		m.reqFree = m.reqFree[:l-1]
		pl := r.Payload.(*mcPayload)
		*pl = mcPayload{}
		*r = dram.Request{Payload: pl}
		return r
	}
	return &dram.Request{Payload: &mcPayload{}}
}

// accept turns a delivered packet into a DRAM request.
func (m *mcNode) accept(it inItem, now int64) {
	p := it.pkt
	msg := p.Payload.(*message)
	r := m.getReq()
	pl := r.Payload.(*mcPayload)
	pl.txn, pl.age, pl.arrival, pl.respDst = msg.txn, p.Age, it.at, p.Src
	r.Addr = msg.line
	r.IsWrite = msg.kind == msgWBL2toMC
	r.Bank = m.s.amap.Bank(msg.line)
	r.Row = m.s.amap.Row(msg.line)
	if msg.txn != nil {
		r.Sensitive = m.s.pol.BasePriority(msg.txn.Core) == noc.High
	}
	if msg.txn != nil {
		msg.txn.ReqAtMC = it.at
	}
	if err := m.ctl.Enqueue(r, now); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
	// Re-activate a sleeping controller: accept runs during the node phase,
	// after this cycle's MC phase, so the controller first considers the
	// request next cycle — exactly as under dense stepping.
	m.sh.mcActive.Add(m.idx)
}

// complete is the controller's completion callback: reads become response
// packets; the so-far delay is extended with the whole memory holding time
// and Scheme-1 classifies the message right here, "right after the memory
// controller" (Section 3.1).
func (m *mcNode) complete(r *dram.Request, now int64) {
	if r.IsWrite {
		m.reqFree = append(m.reqFree, r)
		return
	}
	p := r.Payload.(*mcPayload)
	t := p.txn
	age := p.age + (now - p.arrival)
	t.MemDone = now
	t.SoFarAtMC = age
	m.sh.col.soFar(t.Core, age)
	pri := m.s.pol.ResponsePriority(t.Core, age) // Scheme-1 hook
	t.RespPriority = pri
	m.sh.send(now, m.tile, p.respDst, m.s.cfg.ResponseFlits(),
		noc.VNetResponse, pri, age, msgRespMCtoL2, t, t.Line)
	m.reqFree = append(m.reqFree, r)
}
