package sim

import (
	"fmt"

	"nocmem/internal/dram"
	"nocmem/internal/noc"
)

// mcPayload rides on a dram.Request through the controller.
type mcPayload struct {
	txn     *Txn
	age     int64 // so-far delay at controller arrival
	arrival int64
	respDst int // L2 bank tile awaiting the data
}

// mcNode hosts one memory controller on a corner tile.
type mcNode struct {
	tile int
	s    *Simulator
	ctl  *dram.Controller
}

func newMCNode(tile, ctlIdx int, s *Simulator) *mcNode {
	m := &mcNode{tile: tile, s: s}
	m.ctl = dram.NewController(s.cfg.DRAM, ctlIdx, m.complete)
	return m
}

// accept turns a delivered packet into a DRAM request.
func (m *mcNode) accept(it inItem, now int64) {
	p := it.pkt
	msg := p.Payload.(*message)
	r := &dram.Request{
		Addr:    msg.line,
		IsWrite: msg.kind == msgWBL2toMC,
		Bank:    m.s.amap.Bank(msg.line),
		Row:     m.s.amap.Row(msg.line),
		Payload: &mcPayload{txn: msg.txn, age: p.Age, arrival: it.at, respDst: p.Src},
	}
	if msg.txn != nil {
		r.Sensitive = m.s.pol.BasePriority(msg.txn.Core) == noc.High
	}
	if msg.txn != nil {
		msg.txn.ReqAtMC = it.at
	}
	if err := m.ctl.Enqueue(r, now); err != nil {
		panic(fmt.Sprintf("sim: %v", err))
	}
}

// complete is the controller's completion callback: reads become response
// packets; the so-far delay is extended with the whole memory holding time
// and Scheme-1 classifies the message right here, "right after the memory
// controller" (Section 3.1).
func (m *mcNode) complete(r *dram.Request, now int64) {
	if r.IsWrite {
		return
	}
	p := r.Payload.(*mcPayload)
	t := p.txn
	age := p.age + (now - p.arrival)
	t.MemDone = now
	t.SoFarAtMC = age
	m.s.col.soFar(t.Core, age)
	pri := m.s.pol.ResponsePriority(t.Core, age) // Scheme-1 hook
	t.RespPriority = pri
	m.s.inject(&noc.Packet{
		Src: m.tile, Dst: p.respDst, NumFlits: m.s.cfg.ResponseFlits(),
		VNet: noc.VNetResponse, Priority: pri,
		Age:     age,
		Payload: &message{kind: msgRespMCtoL2, txn: t, line: t.Line},
	}, now)
}
