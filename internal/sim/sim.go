package sim

import (
	"fmt"

	"nocmem/internal/bitset"
	"nocmem/internal/cache"
	"nocmem/internal/config"
	"nocmem/internal/core"
	"nocmem/internal/cpu"
	"nocmem/internal/dram"
	"nocmem/internal/noc"
	"nocmem/internal/stats"
	"nocmem/internal/timerwheel"
	"nocmem/internal/trace"
)

// Simulator is one fully-wired instance of the target system.
type Simulator struct {
	cfg  config.Config
	apps []trace.Profile

	net     *noc.Network
	pol     *core.Policy
	nodes   []*node
	mcs     []*mcNode
	mcAt    []*mcNode // tile -> hosted controller; nil on non-MC tiles
	mcTiles []int     // cfg.MCNodes(), cached: the accessor builds a fresh slice

	amap  dram.AddrMap
	snuca cache.SNUCA

	now int64

	// shards partition the tiles into contiguous cost-balanced chunks for
	// stepping (shard.go, partition.go); always at least one. The scheduler
	// state (active sets, wake wheels), measurement collectors and object
	// pools live on the shards so worker goroutines never contend.
	// Run.Shards <= 1 keeps the single sequential shard; with more workers
	// and stealing on, the mesh is over-decomposed into more chunks than
	// workers so idle workers can steal leftovers.
	shards  []*simShard
	workers int         // parallel worker goroutines; 1 = sequential
	steal   bool        // intra-cycle work stealing between workers
	queues  []workQueue // per-worker chunk claim queues, len == workers

	// Adaptive repartitioning: every repartEvery cycles the serial section
	// parks the workers and rebuilds the chunks from the activity measured
	// since costBase was snapshotted. 0 disables (static partition).
	repartEvery int64
	repartNext  int64
	costBase    []int64 // per-tile cumulative activity at the last build

	// Event-driven scheduler state (see sched.go): dense selects the
	// reference stepper instead, polNext is the next cycle the policy has
	// work, and ticked counts executed (not fast-forwarded) cycles.
	dense   bool
	polNext int64
	ticked  int64

	// truncActiveWords, when positive, truncates every shard's node
	// active-set sweep to its first N 64-bit words — a test-only fault
	// injection reproducing the historical allMask(64) bug. See
	// DebugTruncateActiveWords.
	truncActiveWords int

	// par coordinates the parallel shard workers of one Step call.
	par stepPar

	idleSeries []*stats.Series
}

// New builds a simulator running the built-in synthetic applications. apps
// assigns one application per tile in order; a zero-value profile (empty
// name) leaves the tile's core idle, which is how alone runs are expressed.
func New(cfg config.Config, apps []trace.Profile) (*Simulator, error) {
	if len(apps) != cfg.Mesh.Nodes() {
		return nil, fmt.Errorf("sim: %d applications for %d tiles", len(apps), cfg.Mesh.Nodes())
	}
	srcs := make([]trace.AppSource, len(apps))
	for i, a := range apps {
		if a.Name == "" {
			continue
		}
		gen, err := trace.NewGenerator(a, i, cfg.L1.LineBytes, cfg.Run.Seed)
		if err != nil {
			return nil, err
		}
		srcs[i] = gen
	}
	return NewFromSources(cfg, srcs, apps)
}

// NewFromSources builds a simulator over explicit instruction sources (e.g.
// recorded trace files); nil sources leave tiles idle. apps carries the
// per-tile metadata (name for reporting, MPKI for the application-aware
// baseline) and may hold zero values when unknown.
func NewFromSources(cfg config.Config, srcs []trace.AppSource, apps []trace.Profile) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes := cfg.Mesh.Nodes()
	if nodes&(nodes-1) != 0 {
		return nil, fmt.Errorf("sim: S-NUCA needs a power-of-two tile count, got %d", nodes)
	}
	if len(srcs) != nodes || len(apps) != nodes {
		return nil, fmt.Errorf("sim: %d sources / %d app entries for %d tiles", len(srcs), len(apps), nodes)
	}
	for i, src := range srcs {
		if (src == nil) != (apps[i].Name == "") {
			return nil, fmt.Errorf("sim: tile %d source/metadata mismatch", i)
		}
	}
	net, err := noc.New(cfg.Mesh, cfg.NoC)
	if err != nil {
		return nil, err
	}
	amap, err := dram.NewAddrMap(cfg.L2.LineBytes, cfg.DRAM.Controllers, cfg.DRAM.BanksPerCtl,
		cfg.DRAM.RowBytes, cfg.DRAM.BankInterleaveLines)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		cfg:   cfg,
		apps:  apps,
		net:   net,
		pol:   core.NewPolicy(cfg),
		amap:  amap,
		snuca: cache.NewSNUCA(nodes, cfg.L2.LineBytes),
		mcAt:  make([]*mcNode, nodes),
	}
	s.nodes = make([]*node, nodes)
	for i := range s.nodes {
		n := newNode(i, s)
		s.nodes[i] = n
		net.SetSink(i, n.deliver)
		if srcs[i] != nil {
			n.core = cpu.New(i, cfg.CPU, srcs[i], n.issue)
		}
	}
	for i, src := range srcs {
		if src != nil {
			s.prewarm(src, s.nodes[i])
		}
	}
	if cfg.AppAwareNet || cfg.DRAM.Sched == config.AppAwareMem {
		mpki := make([]float64, nodes)
		active := make([]bool, nodes)
		for i, a := range apps {
			mpki[i] = a.MPKI
			active[i] = a.Name != ""
		}
		s.pol.App = core.NewAppAware(mpki, active)
	}
	s.mcTiles = cfg.MCNodes()
	for ctlIdx, tile := range s.mcTiles {
		mc := newMCNode(tile, ctlIdx, s)
		series := stats.NewSeries(10_000)
		mc.ctl.SetIdleSeries(func(cycle int64, avg float64) { series.Add(cycle, avg) })
		s.idleSeries = append(s.idleSeries, series)
		s.mcs = append(s.mcs, mc)
		s.mcAt[tile] = mc
	}
	s.buildShards()
	s.SetDenseStepping(denseFromEnv())
	return s, nil
}

// stealChunksPerWorker over-decomposes the mesh when stealing is on: more
// chunks than workers is what gives an idle worker something to take. Higher
// values balance finer but pay more per-chunk overhead (boundary queues,
// collector merges); 4 keeps the steal granularity near a quarter of a
// worker's load.
const stealChunksPerWorker = 4

// defaultRepartEvery is the adaptive repartition period in simulated cycles:
// long enough to amortize the worker restart and gather a meaningful
// activity sample, short enough to track phase changes in the workload.
const defaultRepartEvery = 50_000

// buildShards derives the stepping layout from Run.Shards at construction:
// worker count, stealing mode, repartition cadence, and the initial
// cost-balanced partition from the static per-tile cost model.
func (s *Simulator) buildShards() {
	w := s.cfg.Run.Shards
	if w < 1 {
		w = 1
	}
	if w > len(s.nodes) {
		w = len(s.nodes)
	}
	s.workers = w
	s.steal = w > 1 && !s.cfg.Run.NoSteal
	if w > 1 {
		s.repartEvery = defaultRepartEvery
	}
	s.rebuildPartition(s.staticCosts())
	s.costBase = s.tileActivity()
}

// rebuildPartition splits the tiles into contiguous chunks balancing the
// given per-tile costs, mirrors the partition onto the network, hands every
// node and memory controller its owning chunk, and groups the chunks into
// per-worker claim queues (themselves cost-balanced). Measurement state and
// object pools carry over from any previous partition, so rebuilding
// mid-run is invisible in the results.
func (s *Simulator) rebuildPartition(costs []int64) {
	nodes := len(s.nodes)
	chunks := s.workers
	if s.steal {
		chunks = s.workers * stealChunksPerWorker
		if chunks > nodes {
			chunks = nodes
		}
	}
	ends := linearPartition(costs, chunks)
	shardOf := make([]int, nodes)
	start := 0
	for si, end := range ends {
		for i := start; i < end; i++ {
			shardOf[i] = si
		}
		start = end
	}
	s.net.SetPartition(shardOf)

	// Carry accumulated measurements and pooled objects into the new
	// layout: the merged collector lands on chunk 0 (results() merges
	// elementwise, so placement is immaterial), pools are pure capacity.
	var carryCol *Collector
	var carryPkts noc.PacketPool
	var carryMsgs []*message
	if len(s.shards) > 0 {
		carryCol = s.collector()
		for _, sh := range s.shards {
			carryPkts.Absorb(&sh.pkts)
			carryMsgs = append(carryMsgs, sh.msgFree...)
		}
	}

	s.shards = make([]*simShard, len(ends))
	for i := range s.shards {
		s.shards[i] = &simShard{
			id:         i,
			s:          s,
			nodeActive: bitset.New(nodes),
			mcActive:   bitset.New(len(s.mcs)),
			nodeWakes:  timerwheel.New[int32](),
			mcWakes:    timerwheel.New[int32](),
			col:        newCollector(nodes),
		}
	}
	if carryCol != nil {
		s.shards[0].col = carryCol
		for _, sh := range s.shards[1:] {
			sh.col.measuring = carryCol.measuring
		}
		s.shards[0].pkts = carryPkts
		s.shards[0].msgFree = carryMsgs
	}
	for i, n := range s.nodes {
		sh := s.shards[shardOf[i]]
		n.sh = sh
		sh.nodes = append(sh.nodes, n)
	}
	for _, mc := range s.mcs {
		sh := s.shards[shardOf[mc.tile]]
		mc.sh = sh
		sh.mcs = append(sh.mcs, mc)
	}

	// Group the chunks into one contiguous claim queue per worker, balanced
	// on the same costs so the no-steal path is load-balanced too.
	chunkCost := make([]int64, len(ends))
	start = 0
	for si, end := range ends {
		var sum int64
		for i := start; i < end; i++ {
			sum += costs[i]
		}
		chunkCost[si] = sum
		start = end
	}
	wEnds := linearPartition(chunkCost, s.workers)
	s.queues = make([]workQueue, s.workers)
	start = 0
	for wi, end := range wEnds {
		for c := start; c < end; c++ {
			s.queues[wi].chunks = append(s.queues[wi].chunks, int32(c))
		}
		start = end
	}
}

// repartition rebuilds the chunk layout from the activity measured since the
// last build. Called between Step rounds with every queue drained (the
// serial section stopped the workers at a cycle boundary); activateAll
// re-arms the fresh shards' scheduler state — spurious ticks of quiescent
// components are no-ops, so results are unchanged.
func (s *Simulator) repartition() {
	s.rebuildPartition(s.measuredCosts())
	s.costBase = s.tileActivity()
	if !s.dense {
		s.activateAll()
	}
}

// prewarm functionally installs an application's resident working sets:
// hot lines into its L1 and home L2 banks, warm lines into the L2. This is
// the usual fast functional warming that precedes detailed simulation; the
// timed warmup then only has to settle queues and schedulers, not stream
// megabytes through a crawling cold-start system.
func (s *Simulator) prewarm(src trace.AppSource, n *node) {
	hot, warm := src.PrewarmLines()
	for _, line := range warm {
		bank := s.nodes[s.snuca.Bank(line)].l2
		bank.Fill(s.snuca.Local(line), false)
		bank.Access(s.snuca.Local(line), false) // promote past the LIP insertion point
	}
	for _, line := range hot {
		home := s.nodes[s.snuca.Bank(line)]
		home.l2.Fill(s.snuca.Local(line), false)
		home.l2.Access(s.snuca.Local(line), false)
		home.dirAdd(line, n.id)
		n.l1.Fill(line, false)
	}
	n.l1.ResetStats()
	for _, nd := range s.nodes {
		nd.l2.ResetStats()
	}
}

// Now returns the current cycle.
func (s *Simulator) Now() int64 { return s.now }

// Config returns the configuration the simulator was built with.
func (s *Simulator) Config() config.Config { return s.cfg }

// mcTileOf returns the tile hosting the memory controller owning addr.
func (s *Simulator) mcTileOf(addr uint64) int {
	return s.mcTiles[s.amap.Controller(addr)]
}

// Step advances the whole system by the given number of cycles, with the
// event-driven scheduler by default or the dense reference stepper when
// selected (SetDenseStepping, NOCMEM_DENSE_STEP). Both produce identical
// results; see sched.go.
func (s *Simulator) Step(cycles int64) {
	if s.dense {
		s.stepDense(cycles)
		return
	}
	s.stepEvent(cycles)
}

// resetStats clears every counter at the warmup/measurement boundary while
// preserving learned state (cache contents, scheme thresholds, open rows).
func (s *Simulator) resetStats() {
	s.flushCoreStats()
	for _, sh := range s.shards {
		sh.col = newCollector(len(s.nodes))
		sh.col.measuring = true
	}
	s.net.ResetStats()
	for _, n := range s.nodes {
		n.l1.ResetStats()
		n.l2.ResetStats()
		if n.core != nil {
			n.core.ResetStats()
		}
	}
	for i, mc := range s.mcs {
		mc.ctl.ResetStats()
		series := stats.NewSeries(10_000)
		s.idleSeries[i] = series
		mc.ctl.SetIdleSeries(func(cycle int64, avg float64) { series.Add(cycle, avg) })
	}
	if s.pol.S1 != nil {
		s.pol.S1.Tagged, s.pol.S1.Checked = 0, 0
	}
	if s.pol.S2 != nil {
		s.pol.S2.Tagged, s.pol.S2.Checked = 0, 0
	}
}

// Run executes the configured warmup and measurement window and returns the
// results. On a simulator positioned past cycle 0 (a Restore), the
// already-elapsed prefix of the window is skipped; see RunWithCheckpoint.
func (s *Simulator) Run() *Result {
	res, _ := s.RunWithCheckpoint(nil) // cannot fail without a sink
	return res
}

// Result is everything measured in one simulation window.
type Result struct {
	Cfg    config.Config
	Apps   []trace.Profile
	Cycles int64

	IPC       []float64 // per tile; 0 on idle tiles
	CoreStats []cpu.Stats
	L1        []cache.Stats
	L2        []cache.Stats

	Collector *Collector

	BankIdleness [][]float64     // [controller][bank]
	IdleSeries   []*stats.Series // [controller]
	DRAM         []dram.Stats
	Net          noc.Stats

	S1Tagged, S1Checked int64
	S2Tagged, S2Checked int64
	S1Thresholds        []int64
}

// collector returns the merged measurements: the single shard's collector
// directly, or an elementwise merge in shard order. Every merged quantity is
// either an integer counter or a float64 sum of integer-valued samples well
// below 2^53, so the merge is exact and the result is independent of the
// shard count.
func (s *Simulator) collector() *Collector {
	if len(s.shards) == 1 {
		return s.shards[0].col
	}
	col := newCollector(len(s.nodes))
	col.measuring = s.shards[0].col.measuring
	for _, sh := range s.shards {
		col.Merge(sh.col)
	}
	return col
}

func (s *Simulator) results() *Result {
	s.flushCoreStats()
	r := &Result{
		Cfg:        s.cfg,
		Apps:       s.apps,
		Cycles:     s.cfg.Run.MeasureCycles,
		IPC:        make([]float64, len(s.nodes)),
		CoreStats:  make([]cpu.Stats, len(s.nodes)),
		L1:         make([]cache.Stats, len(s.nodes)),
		L2:         make([]cache.Stats, len(s.nodes)),
		Collector:  s.collector(),
		IdleSeries: s.idleSeries,
		Net:        s.net.Stats(),
	}
	for i, n := range s.nodes {
		r.L1[i] = n.l1.Stats()
		r.L2[i] = n.l2.Stats()
		if n.core != nil {
			r.CoreStats[i] = n.core.Stats()
			r.IPC[i] = r.CoreStats[i].IPC()
		}
	}
	for _, mc := range s.mcs {
		r.BankIdleness = append(r.BankIdleness, mc.ctl.Idleness())
		r.DRAM = append(r.DRAM, mc.ctl.Stats())
	}
	if s.pol.S1 != nil {
		r.S1Tagged, r.S1Checked = s.pol.S1.Tagged, s.pol.S1.Checked
		for i := range s.nodes {
			r.S1Thresholds = append(r.S1Thresholds, s.pol.S1.Threshold(i))
		}
	}
	if s.pol.S2 != nil {
		r.S2Tagged, r.S2Checked = s.pol.S2.Tagged, s.pol.S2.Checked
	}
	return r
}

// MPKI returns the measured off-chip misses per kilo-instruction of a tile.
func (r *Result) MPKI(tile int) float64 {
	retired := r.CoreStats[tile].Retired
	if retired == 0 {
		return 0
	}
	return float64(r.Collector.OffChip[tile]) * 1000 / float64(retired)
}

// ActiveTiles returns the tiles running an application.
func (r *Result) ActiveTiles() []int {
	var out []int
	for i, a := range r.Apps {
		if a.Name != "" {
			out = append(out, i)
		}
	}
	return out
}
