package sim

import (
	"nocmem/internal/noc"
	"nocmem/internal/stats"
)

// Histogram shapes. Round-trip latencies rarely exceed 10k cycles even under
// heavy congestion; values beyond clamp into the last bucket.
const (
	histBucket  = 25
	histBuckets = 400
	bdBucket    = 100
	bdBuckets   = 100
)

// Collector accumulates the per-core measurements during the measurement
// window.
type Collector struct {
	measuring bool

	RoundTrip []*stats.Histogram // per tile: end-to-end off-chip latency
	SoFar     []*stats.Histogram // per tile: so-far delay right after the MC
	Breakdown []*stats.Breakdown // per tile: per-leg averages by delay range

	OffChip  []int64 // off-chip demand transactions completed
	L2Hits   []int64 // demand transactions served by the L2
	AvgDelay []stats.RunningMean

	// Return-path (MemDone..Done) latency split by the response priority
	// Scheme-1 assigned, quantifying how much tagged messages gain.
	RetHigh   stats.RunningMean
	RetNormal stats.RunningMean

	// Invalidations counts inclusive-L2 back-invalidations sent.
	Invalidations int64
}

// newCollector builds a collector for n tiles.
func newCollector(n int) *Collector {
	c := &Collector{
		RoundTrip: make([]*stats.Histogram, n),
		SoFar:     make([]*stats.Histogram, n),
		Breakdown: make([]*stats.Breakdown, n),
		OffChip:   make([]int64, n),
		L2Hits:    make([]int64, n),
		AvgDelay:  make([]stats.RunningMean, n),
	}
	for i := 0; i < n; i++ {
		c.RoundTrip[i] = stats.NewHistogram(histBucket, histBuckets)
		c.SoFar[i] = stats.NewHistogram(histBucket, histBuckets)
		c.Breakdown[i] = stats.NewBreakdown(bdBucket, bdBuckets)
	}
	return c
}

// done records a completed demand transaction.
func (c *Collector) done(t *Txn) {
	if !c.measuring {
		return
	}
	if !t.OffChip {
		c.L2Hits[t.Core]++
		return
	}
	c.OffChip[t.Core]++
	c.RoundTrip[t.Core].Add(t.Total())
	c.AvgDelay[t.Core].Add(float64(t.Total()))
	c.Breakdown[t.Core].Add(t.Legs())
	ret := float64(t.Done - t.MemDone)
	if t.RespPriority == noc.High {
		c.RetHigh.Add(ret)
	} else {
		c.RetNormal.Add(ret)
	}
}

// Merge folds another collector of the same shape into this one. Every
// merged quantity is an integer counter or a float64 sum of integer-valued
// samples far below 2^53, so the merge is exact and the combined result is
// independent of the number of shards the measurements were split across.
func (c *Collector) Merge(o *Collector) {
	for i := range c.RoundTrip {
		c.RoundTrip[i].Merge(o.RoundTrip[i])
		c.SoFar[i].Merge(o.SoFar[i])
		c.Breakdown[i].Merge(o.Breakdown[i])
		c.OffChip[i] += o.OffChip[i]
		c.L2Hits[i] += o.L2Hits[i]
		c.AvgDelay[i].Merge(o.AvgDelay[i])
	}
	c.RetHigh.Merge(o.RetHigh)
	c.RetNormal.Merge(o.RetNormal)
	c.Invalidations += o.Invalidations
}

// soFar records the so-far delay of a response at MC injection time.
func (c *Collector) soFar(coreID int, age int64) {
	if !c.measuring {
		return
	}
	c.SoFar[coreID].Add(age)
}
