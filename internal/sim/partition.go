package sim

// Cost-model shard partitioning. The parallel stepper splits the tile range
// into contiguous chunks whose per-tile costs balance, instead of fixed
// rectangular quadrants: a skewed workload (all traffic aimed at one MC
// corner, the regime the paper's hotspot traffic creates) concentrates almost
// all work in a few tiles, and an even geometric split leaves most workers
// idle every cycle.
//
// Costs are estimates, not semantics: the results are partition-independent
// by the boundary-queue construction (see shard.go), so a bad estimate only
// wastes wall-clock time. The initial build uses static weights (a tile with
// a core or a memory controller is busier than an empty one); at repartition
// points the weights refresh from the activity counters the previous window
// actually measured.

// Static per-tile cost weights: every tile pays for its router, an
// application core dominates an idle tile, and an MC tile also runs the DRAM
// controller plus the ejection/injection traffic of every request it serves.
const (
	costRouter     = 1
	costActiveCore = 4
	costMCTile     = 8
)

// Measured-activity weights (see tileActivity): executed node front-end and
// controller ticks cover more work per invocation than a router tick.
const (
	actNodeWeight = 2
	actMCWeight   = 2
)

// staticCosts estimates per-tile stepping cost from the configuration alone.
func (s *Simulator) staticCosts() []int64 {
	costs := make([]int64, len(s.nodes))
	for i, n := range s.nodes {
		c := int64(costRouter)
		if n.core != nil {
			c += costActiveCore
		}
		if s.mcAt[i] != nil {
			c += costMCTile
		}
		costs[i] = c
	}
	return costs
}

// tileActivity returns the cumulative executed-tick activity of every tile
// since construction: node front-end executions, router pipeline executions,
// and in-cycle controller ticks (fast-forwarded replays excluded — they cost
// no stepping time). Monotone counters; repartitioning differences them
// against the snapshot taken at the previous partition build.
func (s *Simulator) tileActivity() []int64 {
	act := make([]int64, len(s.nodes))
	for i, n := range s.nodes {
		a := actNodeWeight * n.execs
		_, rexecs := s.net.DebugRouterTicks(i)
		a += rexecs
		if mc := s.mcAt[i]; mc != nil {
			total, ff := mc.ctl.DebugTicks()
			a += actMCWeight * (total - ff)
		}
		act[i] = a
	}
	return act
}

// measuredCosts converts the activity delta since the last partition build
// into per-tile costs. The +1 floor keeps every range non-empty partitionable
// and stops a fully idle stretch from collapsing the model to zeros.
func (s *Simulator) measuredCosts() []int64 {
	act := s.tileActivity()
	costs := make([]int64, len(act))
	for i := range act {
		d := act[i] - s.costBase[i]
		if d < 0 { // counters are monotone; guard anyway
			d = 0
		}
		costs[i] = 1 + d
	}
	return costs
}

// linearPartition splits costs into exactly k contiguous non-empty ranges
// minimizing the maximum range sum, and returns the exclusive end index of
// each range (the last is len(costs)). k is clamped to [1, len(costs)].
// Deterministic: a pure function of its inputs.
//
// Binary search on the max-sum cap with a greedy feasibility check — O(n log
// sum) — then splits oversized ranges until exactly k remain (splitting never
// increases the max, and every cost is >= 0 so empty padding ranges are never
// needed while k <= n).
func linearPartition(costs []int64, k int) []int {
	n := len(costs)
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	var lo, hi int64
	for _, c := range costs {
		if c > lo {
			lo = c
		}
		hi += c
	}
	// fit returns the greedy range ends under the given max-sum limit, or nil
	// when more than k ranges would be needed.
	fit := func(limit int64) []int {
		ends := make([]int, 0, k)
		var sum int64
		for i, c := range costs {
			if sum+c > limit && sum > 0 {
				if len(ends) == k-1 {
					return nil
				}
				ends = append(ends, i)
				sum = 0
			}
			sum += c
		}
		return append(ends, n)
	}
	best := fit(hi)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if e := fit(mid); e != nil {
			best, hi = e, mid
		} else {
			lo = mid + 1
		}
	}
	// Exactly k ranges: repeatedly halve the widest range (ties: lowest
	// index) until the count matches. Only reached when the cost mass
	// concentrates in fewer than k greedy ranges.
	for len(best) < k {
		widest, width, start := -1, 0, 0
		for i, end := range best {
			if w := end - start; w > width {
				widest, width = i, w
			}
			start = end
		}
		start = 0
		if widest > 0 {
			start = best[widest-1]
		}
		mid := start + width/2
		best = append(best, 0)
		copy(best[widest+1:], best[widest:])
		best[widest] = mid
	}
	return best
}
