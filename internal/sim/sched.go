package sim

import (
	"fmt"
	"math"
	"math/bits"
	"os"
)

// The event-driven scheduler replaces the dense per-cycle sweep over every
// component with active sets plus a min-heap of timed wakes:
//
//   - A component (node, memory controller, router) is *active* while it may
//     change state this cycle; active components are ticked exactly like the
//     dense loop, in the same canonical order.
//   - A component with only future-dated work sleeps and registers a timed
//     wake for its earliest deadline; external events (packet delivery, a
//     request enqueue, a flit hand-off) re-activate their target directly.
//   - When every set is empty, no packet is in flight and the policy has no
//     push due, the simulator fast-forwards now to the earliest timed wake
//     in O(1) instead of sweeping O(tiles) empty cycles.
//
// The single invariant that makes this byte-identical to the dense stepper:
// effects happen only when due, wakes may be spurious but never missing. A
// spurious tick of a quiescent component is a no-op by construction (every
// tick body checks its own deadlines), so the active sets may safely
// over-approximate. The one component whose dense tick is *not* a no-op
// while quiescent is the core — a hard-stalled core still counts stall
// cycles — so its elided ticks are replayed in closed form (see
// cpu.CatchUpStall) when it next runs.

// wakeKind identifies the component class of a timed wake.
type wakeKind uint8

const (
	wakeNode wakeKind = iota
	wakeMC
)

// wake is one scheduled activation: component idx of the given kind has a
// deadline at cycle at. Entries are never cancelled; stale ones cause a
// harmless spurious tick.
type wake struct {
	at   int64
	kind wakeKind
	idx  int32
}

// pushWake schedules a component activation (min-heap on at, sift-up).
func (s *Simulator) pushWake(at int64, kind wakeKind, idx int) {
	s.wakes = append(s.wakes, wake{at: at, kind: kind, idx: int32(idx)})
	i := len(s.wakes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s.wakes[p].at <= s.wakes[i].at {
			break
		}
		s.wakes[p], s.wakes[i] = s.wakes[i], s.wakes[p]
		i = p
	}
}

// popWake removes and returns the earliest wake (sift-down).
func (s *Simulator) popWake() wake {
	w := s.wakes[0]
	last := len(s.wakes) - 1
	s.wakes[0] = s.wakes[last]
	s.wakes = s.wakes[:last]
	for i := 0; ; {
		small := i
		if l := 2*i + 1; l < len(s.wakes) && s.wakes[l].at < s.wakes[small].at {
			small = l
		}
		if r := 2*i + 2; r < len(s.wakes) && s.wakes[r].at < s.wakes[small].at {
			small = r
		}
		if small == i {
			break
		}
		s.wakes[i], s.wakes[small] = s.wakes[small], s.wakes[i]
		i = small
	}
	return w
}

// allMask returns a bitmask with the low k bits set (k <= 64).
func allMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(k) - 1
}

// activateAll marks every component active and re-arms the policy timer;
// called at construction and when switching from dense to event-driven
// stepping, after which the sets shrink back to the truly busy components.
func (s *Simulator) activateAll() {
	s.nodeActive = allMask(len(s.nodes))
	s.mcActive = allMask(len(s.mcs))
	s.polNext = s.pol.NextWake()
}

// SetDenseStepping switches between the event-driven scheduler (default) and
// the dense reference stepper that ticks every component every cycle. Both
// produce byte-identical results; the dense stepper is retained as the
// equivalence oracle for tests and can be forced for a whole process with
// NOCMEM_DENSE_STEP=1. Safe to call between Step calls at any time.
func (s *Simulator) SetDenseStepping(dense bool) {
	s.dense = dense
	s.net.SetEventDriven(!dense)
	if !dense {
		s.activateAll()
	}
}

// denseStepEnv is the debug escape hatch honored at construction.
const denseStepEnv = "NOCMEM_DENSE_STEP"

func denseFromEnv() bool {
	v := os.Getenv(denseStepEnv)
	return v != "" && v != "0"
}

// stepDense is the retained dense reference loop: every component, every
// cycle, in canonical order.
func (s *Simulator) stepDense(cycles int64) {
	for c := int64(0); c < cycles; c++ {
		now := s.now
		s.pol.Tick(now)
		for _, mc := range s.mcs {
			mc.ctl.Tick(now)
		}
		for _, n := range s.nodes {
			n.dispatchInbox(now)
			n.tickL2(now)
		}
		s.net.Tick(now)
		for _, n := range s.nodes {
			n.tickCore(now)
		}
		s.now++
	}
}

// stepEvent is the event-driven scheduler. Within an executed cycle the
// phase order is identical to stepDense (policy, MCs, node front-ends,
// network, cores), and active components of each class are ticked in
// ascending index order, so the state evolution matches the dense loop
// exactly on the components that have work; the rest provably have none.
func (s *Simulator) stepEvent(cycles int64) {
	end := s.now + cycles
	for s.now < end {
		now := s.now

		// Activate components whose timed wakes are due.
		for len(s.wakes) > 0 && s.wakes[0].at <= now {
			w := s.popWake()
			switch w.kind {
			case wakeNode:
				s.nodeActive |= 1 << uint(w.idx)
			case wakeMC:
				s.mcActive |= 1 << uint(w.idx)
			}
		}
		if now >= s.polNext {
			s.pol.Tick(now)
			s.polNext = s.pol.NextWake()
		}

		// Quiescence fast-forward: with no active component and nothing in
		// flight, jump straight to the next deadline.
		if s.nodeActive == 0 && s.mcActive == 0 && s.net.RoutersQuiet() {
			next := end
			if len(s.wakes) > 0 && s.wakes[0].at < next {
				next = s.wakes[0].at
			}
			if s.polNext < next {
				next = s.polNext
			}
			if next <= now { // cannot happen (all deadlines are future); guard anyway
				next = now + 1
			}
			s.now = next
			continue
		}

		for m := s.mcActive; m != 0; {
			i := bits.TrailingZeros64(m)
			m &^= 1 << uint(i)
			s.mcs[i].ctl.Tick(now)
		}
		for m := s.nodeActive; m != 0; {
			i := bits.TrailingZeros64(m)
			m &^= 1 << uint(i)
			n := s.nodes[i]
			n.catchUpCore(now)
			n.dispatchInbox(now)
			n.tickL2(now)
		}
		s.net.Tick(now)
		for m := s.nodeActive; m != 0; {
			i := bits.TrailingZeros64(m)
			m &^= 1 << uint(i)
			s.nodes[i].tickCore(now)
		}

		// Retire quiescent components from the active sets.
		for m := s.nodeActive; m != 0; {
			i := bits.TrailingZeros64(m)
			m &^= 1 << uint(i)
			s.nodes[i].trySleep(now)
		}
		for m := s.mcActive; m != 0; {
			i := bits.TrailingZeros64(m)
			m &^= 1 << uint(i)
			s.mcs[i].trySleep(now)
		}

		s.ticked++
		s.now++
	}
}

// flushCoreStats replays, in closed form, the stall cycles of every sleeping
// hard-stalled core up to the current cycle, so that reading or resetting
// statistics observes exactly what the dense loop would have counted. Called
// at the warmup/measurement boundary and before collecting results.
func (s *Simulator) flushCoreStats() {
	last := s.now - 1
	for _, n := range s.nodes {
		if n.core != nil && last > n.lastCoreTick {
			n.core.CatchUpStall(last - n.lastCoreTick)
			n.lastCoreTick = last
		}
	}
}

// trySleep retires the node from the active set when it has no work this
// cycle, registering a timed wake for its earliest future deadline. The
// queues consulted are all sorted by deadline (deliveries, L2 pipeline jobs
// and delayed L1 actions are appended with nondecreasing times), so the head
// entry is the earliest. A node with a runnable core never sleeps; a node
// whose core is hard-stalled may, because the elided core ticks are
// closed-form (see tickCore).
func (n *node) trySleep(now int64) {
	if len(n.l2Queue) > 0 {
		return
	}
	wakeAt := int64(math.MaxInt64)
	if len(n.inbox) > 0 {
		if at := n.inbox[0].at; at <= now {
			return
		} else if at < wakeAt {
			wakeAt = at
		}
	}
	if len(n.l2Busy) > 0 {
		if d := n.l2Busy[0].done; d <= now {
			return
		} else if d < wakeAt {
			wakeAt = d
		}
	}
	if len(n.delayed) > 0 {
		if at := n.delayed[0].at; at <= now {
			return
		} else if at < wakeAt {
			wakeAt = at
		}
	}
	if n.core != nil {
		cw, ok := n.core.SleepUntil(now)
		if !ok {
			return
		}
		if cw < wakeAt {
			wakeAt = cw
		}
	}
	if wakeAt <= now+1 {
		return // due next cycle: staying active beats a heap round trip
	}
	n.s.nodeActive &^= 1 << uint(n.id)
	if wakeAt != math.MaxInt64 {
		n.s.pushWake(wakeAt, wakeNode, n.id)
	}
}

// trySleep retires the memory controller from the active set when the DRAM
// model reports an exact next deadline (completion, refresh, or idleness
// sample) and nothing is waiting to be scheduled.
func (m *mcNode) trySleep(now int64) {
	wakeAt, ok := m.ctl.NextWake(now)
	if !ok || wakeAt <= now+1 {
		return
	}
	m.s.mcActive &^= 1 << uint(m.idx)
	m.s.pushWake(wakeAt, wakeMC, m.idx)
}

// DebugTickedCycles returns the number of cycles the event-driven scheduler
// actually executed (as opposed to fast-forwarded over); used by tests to
// prove quiescent stretches are skipped.
func (s *Simulator) DebugTickedCycles() int64 { return s.ticked }

// QuiesceCheck verifies that no work is pending anywhere outside the cores:
// the network holds no packet, every tile's inbox, L2 pipeline and delayed
// queues are empty, and every memory controller is drained. With the
// event-driven scheduler this doubles as a lost-wakeup detector — a message
// stranded by a missing wake stays visibly parked in one of these queues.
func (s *Simulator) QuiesceCheck() error {
	if err := s.net.Quiesce(); err != nil {
		return err
	}
	for _, n := range s.nodes {
		if k := len(n.inbox) + len(n.l2Queue) + len(n.l2Busy) + len(n.delayed); k != 0 {
			return fmt.Errorf("sim: tile %d holds %d undone items (inbox=%d l2Queue=%d l2Busy=%d delayed=%d)",
				n.id, k, len(n.inbox), len(n.l2Queue), len(n.l2Busy), len(n.delayed))
		}
	}
	for _, mc := range s.mcs {
		if p := mc.ctl.PendingAll(); p != 0 {
			return fmt.Errorf("sim: memory controller at tile %d still holds %d requests", mc.tile, p)
		}
	}
	return nil
}
