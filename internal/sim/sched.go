package sim

import (
	"fmt"
	"math"
	"os"
)

// The event-driven scheduler replaces the dense per-cycle sweep over every
// component with active sets plus a min-heap of timed wakes:
//
//   - A component (node, memory controller, router) is *active* while it may
//     change state this cycle; active components are ticked exactly like the
//     dense loop, in the same canonical order.
//   - A component with only future-dated work sleeps and registers a timed
//     wake for its earliest deadline; external events (packet delivery, a
//     request enqueue, a flit hand-off) re-activate their target directly.
//   - When every set is empty, no packet is in flight and the policy has no
//     push due, the simulator fast-forwards now to the earliest timed wake
//     in O(1) instead of sweeping O(tiles) empty cycles.
//
// The single invariant that makes this byte-identical to the dense stepper:
// effects happen only when due, wakes may be spurious but never missing. A
// spurious tick of a quiescent component is a no-op by construction (every
// tick body checks its own deadlines), so the active sets may safely
// over-approximate. The one component whose dense tick is *not* a no-op
// while quiescent is the core — a hard-stalled core still counts stall
// cycles — so its elided ticks are replayed in closed form (see
// cpu.CatchUpStall) when it next runs.
//
// Active sets are bitset.Set values ([]uint64), sized to the component
// count. They used to be bare uint64 masks whose all-active initializer
// silently saturated at 64 components, so meshes beyond 64 tiles ran with
// truncated active sets and produced wrong results with no error; the typed
// set instead panics on out-of-range indices and scales to any mesh
// config.Validate accepts.
//
// The scheduler state lives on simShard (shard.go): with Run.Shards > 1 the
// mesh is partitioned and one worker goroutine steps each shard, with the
// single-shard sequential loop below as the reference semantics.

// activateAll marks every component active and re-arms the policy timer;
// called at construction and when switching from dense to event-driven
// stepping, after which the sets shrink back to the truly busy components.
func (s *Simulator) activateAll() {
	for _, sh := range s.shards {
		sh.nodeActive.Clear()
		sh.mcActive.Clear()
		// Pending wakes are redundant while everything is active — each
		// sleeper re-derives its exact deadline through trySleep — so the
		// wheels restart empty rather than carrying stale entries.
		sh.nodeWakes.Reset()
		sh.mcWakes.Reset()
		for _, n := range sh.nodes {
			sh.nodeActive.Add(n.id)
		}
		for _, m := range sh.mcs {
			sh.mcActive.Add(m.idx)
		}
	}
	s.polNext = s.pol.NextWake()
}

// SetDenseStepping switches between the event-driven scheduler (default) and
// the dense reference stepper that ticks every component every cycle. Both
// produce byte-identical results; the dense stepper is retained as the
// equivalence oracle for tests and can be forced for a whole process with
// NOCMEM_DENSE_STEP=1. Safe to call between Step calls at any time.
func (s *Simulator) SetDenseStepping(dense bool) {
	s.dense = dense
	s.net.SetEventDriven(!dense)
	if !dense {
		s.activateAll()
	}
}

// denseStepEnv is the debug escape hatch honored at construction.
const denseStepEnv = "NOCMEM_DENSE_STEP"

func denseFromEnv() bool {
	v := os.Getenv(denseStepEnv)
	return v != "" && v != "0"
}

// stepDense is the retained dense reference loop: every component, every
// cycle, in canonical order.
func (s *Simulator) stepDense(cycles int64) {
	for c := int64(0); c < cycles; c++ {
		now := s.now
		s.pol.Tick(now)
		for _, mc := range s.mcs {
			mc.ctl.Tick(now)
		}
		for _, n := range s.nodes {
			n.dispatchInbox(now)
			n.tickL2(now)
		}
		s.net.Tick(now)
		for _, n := range s.nodes {
			n.tickCore(now)
		}
		s.now++
	}
}

// quietTarget reports whether the whole system is quiescent at now — no
// active component, no packet in flight, no wake or policy push due — and if
// so, the cycle to fast-forward to: the earliest future deadline, capped at
// end. A due wake (head at <= now) means the cycle must execute; phaseFront
// (and TickShard, for router wakes) drains it into the active sets. Routers
// contribute their own wake horizon: a router waiting only on future-dated
// arrivals or credit returns no longer blocks fast-forward, it merely bounds
// how far it may jump.
func (s *Simulator) quietTarget(now, end int64) (int64, bool) {
	routerNext, quiet := s.net.QuietTarget(now)
	if !quiet {
		return 0, false
	}
	next := end
	if routerNext < next {
		next = routerNext
	}
	mcNext := int64(math.MaxInt64)
	for _, sh := range s.shards {
		if !sh.nodeActive.Empty() || !sh.mcActive.Empty() {
			return 0, false
		}
		if at, ok := sh.nodeWakes.Min(); ok {
			if at <= now {
				return 0, false
			} else if at < next {
				next = at
			}
		}
		if at, ok := sh.mcWakes.Min(); ok {
			if at <= now {
				return 0, false
			} else if at < mcNext {
				mcNext = at
			}
		}
	}
	if s.polNext < next {
		next = s.polNext
	}
	if mcNext < next {
		// The only deadlines before next are memory-controller-internal. A
		// controller's exact wake is at most one sample period out
		// (dram.Controller samples idleness every 100 cycles), so a long
		// write-drain or idle tail would otherwise cap every jump at ~100
		// cycles. When every controller's remaining work is externally
		// inert — draining writes or pure idleness — replay their timelines
		// up to next right here instead of executing cycles for them.
		if !s.tryDrainFastForward(now, next) {
			next = mcNext
		}
	}
	if next <= now { // cannot happen (all deadlines are future); guard anyway
		next = now + 1
	}
	return next, true
}

// tryDrainFastForward advances every memory controller through its internal
// events in (now, next) — write-drain issues/completions, refreshes, idleness
// samples — without executing simulator cycles, re-arming each controller's
// timed wake at its first deadline >= next. Only legal when the rest of the
// system is quiescent until next (nothing can enqueue mid-window) and every
// controller is FastForwardable (no read anywhere: write completions recycle
// the request without any external effect, so the replay is invisible outside
// the controller). Runs in the serial section under sharded stepping, so
// touching foreign shards' wheels is safe. Reports false, changing nothing,
// when some controller holds a read.
func (s *Simulator) tryDrainFastForward(now, next int64) bool {
	for _, mc := range s.mcs {
		if !mc.ctl.FastForwardable() {
			return false
		}
	}
	for _, sh := range s.shards {
		sh.mcWakes.Reset()
	}
	for _, mc := range s.mcs {
		at := mc.ctl.FastForward(now, next)
		mc.sh.mcWakes.Push(at, int32(mc.idx))
	}
	return true
}

// stepEvent is the event-driven scheduler. Within an executed cycle the
// phase order is identical to stepDense (policy, MCs, node front-ends,
// network, cores), and active components of each class are ticked in
// ascending index order, so the state evolution matches the dense loop
// exactly on the components that have work; the rest provably have none.
// With more than one shard the cycle runs under the parallel driver
// (shard.go) — byte-identical by the boundary-queue construction.
func (s *Simulator) stepEvent(cycles int64) {
	end := s.now + cycles
	if s.workers > 1 {
		s.stepSharded(end)
		return
	}
	sh := s.shards[0]
	for s.now < end {
		now := s.now
		if now >= s.polNext {
			s.pol.Tick(now)
			s.polNext = s.pol.NextWake()
		}
		if next, quiet := s.quietTarget(now, end); quiet {
			s.now = next
			continue
		}
		sh.phaseFront(now)
		sh.phaseBack(now)
		s.ticked++
		s.now++
	}
}

// flushCoreStats replays, in closed form, the stall cycles of every sleeping
// hard-stalled core up to the current cycle, so that reading or resetting
// statistics observes exactly what the dense loop would have counted. Called
// at the warmup/measurement boundary and before collecting results.
func (s *Simulator) flushCoreStats() {
	last := s.now - 1
	for _, n := range s.nodes {
		if n.core != nil && last > n.lastCoreTick {
			n.core.CatchUpStall(last - n.lastCoreTick)
			n.lastCoreTick = last
		}
	}
}

// trySleep retires the node from the active set when it has no work this
// cycle, registering a timed wake for its earliest future deadline. The
// queues consulted are all sorted by deadline (deliveries, L2 pipeline jobs
// and delayed L1 actions are appended with nondecreasing times), so the head
// entry is the earliest. A node with a runnable core never sleeps; a node
// whose core is hard-stalled may, because the elided core ticks are
// closed-form (see tickCore).
func (n *node) trySleep(now int64) {
	if len(n.l2Queue) > 0 {
		return
	}
	wakeAt := int64(math.MaxInt64)
	if len(n.inbox) > 0 {
		if at := n.inbox[0].at; at <= now {
			return
		} else if at < wakeAt {
			wakeAt = at
		}
	}
	if len(n.l2Busy) > 0 {
		if d := n.l2Busy[0].done; d <= now {
			return
		} else if d < wakeAt {
			wakeAt = d
		}
	}
	if len(n.delayed) > 0 {
		if at := n.delayed[0].at; at <= now {
			return
		} else if at < wakeAt {
			wakeAt = at
		}
	}
	if n.core != nil {
		cw, ok := n.core.SleepUntil(now)
		if !ok {
			return
		}
		if cw < wakeAt {
			wakeAt = cw
		}
	}
	if wakeAt <= now+1 {
		return // due next cycle: staying active beats a heap round trip
	}
	n.sh.nodeActive.Remove(n.id)
	if wakeAt != math.MaxInt64 {
		n.sh.nodeWakes.Push(wakeAt, int32(n.id))
	}
}

// trySleep retires the memory controller from the active set when the DRAM
// model reports an exact next deadline (completion, refresh, or idleness
// sample) and nothing is waiting to be scheduled.
func (m *mcNode) trySleep(now int64) {
	wakeAt, ok := m.ctl.NextWake(now)
	if !ok || wakeAt <= now+1 {
		return
	}
	m.sh.mcActive.Remove(m.idx)
	m.sh.mcWakes.Push(wakeAt, int32(m.idx))
}

// DebugTruncateActiveWords arms a fault-injection hook for the divergence
// oracle's mutation tests: every shard's node sweep only visits the first
// `words` 64-bit words of its active set, so tiles with id >= 64*words never
// tick — the exact symptom of the old allMask(64) truncation bug this
// repository once shipped. Their work stays queued (the active bits remain
// set), which also suppresses quiescence fast-forwarding; the run still
// terminates because Step executes a fixed cycle budget. 0 disables the
// hook. Never use outside tests.
func (s *Simulator) DebugTruncateActiveWords(words int) { s.truncActiveWords = words }

// DebugTickedCycles returns the number of cycles the event-driven scheduler
// actually executed (as opposed to fast-forwarded over); used by tests to
// prove quiescent stretches are skipped.
func (s *Simulator) DebugTickedCycles() int64 { return s.ticked }

// DebugDRAMTicks sums the controllers' Tick invocations: total, and the
// subset absorbed by the write-drain fast-forward (executed without a
// surrounding simulator cycle). Tests and benchmarks use the split to prove
// drain tails are replayed instead of stepped.
func (s *Simulator) DebugDRAMTicks() (total, fastForwarded int64) {
	for _, mc := range s.mcs {
		t, ff := mc.ctl.DebugTicks()
		total += t
		fastForwarded += ff
	}
	return total, fastForwarded
}

// QuiesceCheck verifies that no work is pending anywhere outside the cores:
// the network holds no packet, every tile's inbox, L2 pipeline and delayed
// queues are empty, and every memory controller is drained. With the
// event-driven scheduler this doubles as a lost-wakeup detector — a message
// stranded by a missing wake stays visibly parked in one of these queues.
func (s *Simulator) QuiesceCheck() error {
	if err := s.net.Quiesce(); err != nil {
		return err
	}
	for _, n := range s.nodes {
		if k := len(n.inbox) + len(n.l2Queue) + len(n.l2Busy) + len(n.delayed); k != 0 {
			return fmt.Errorf("sim: tile %d holds %d undone items (inbox=%d l2Queue=%d l2Busy=%d delayed=%d)",
				n.id, k, len(n.inbox), len(n.l2Queue), len(n.l2Busy), len(n.delayed))
		}
	}
	for _, mc := range s.mcs {
		if p := mc.ctl.PendingAll(); p != 0 {
			return fmt.Errorf("sim: memory controller at tile %d still holds %d requests", mc.tile, p)
		}
	}
	return nil
}
