package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

// runOnce builds a simulator over the given workload, forces the chosen
// stepper and shard count, runs the configured window and returns the
// serialized summary plus the raw result for field-level comparison and the
// simulator itself for scheduler-counter assertions. shards <= 1 selects the
// sequential stepper.
func runOnce(t *testing.T, cfg config.Config, apps []trace.Profile, dense bool, shards int) ([]byte, *Result, *Simulator) {
	t.Helper()
	cfg.Run.Shards = shards
	s, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	s.SetDenseStepping(dense)
	r := s.Run()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), r, s
}

// expectSame fails the test unless the run labelled name matches the dense
// reference byte for byte, including the raw core and network counters that
// the summary aggregates away.
func expectSame(t *testing.T, name string, refJSON []byte, ref *Result, gotJSON []byte, got *Result) {
	t.Helper()
	if !bytes.Equal(refJSON, gotJSON) {
		t.Fatalf("%s summary differs from dense reference\n--- dense ---\n%s\n--- %s ---\n%s", name, refJSON, name, gotJSON)
	}
	if !reflect.DeepEqual(ref.CoreStats, got.CoreStats) {
		t.Fatalf("%s core stats differ:\ndense %+v\n%s %+v", name, ref.CoreStats, name, got.CoreStats)
	}
	if ref.Net != got.Net {
		t.Fatalf("%s network stats differ:\ndense %+v\n%s %+v", name, ref.Net, name, got.Net)
	}
	expectSameHistograms(t, name, ref, got)
}

// expectSameHistograms compares the per-application latency distributions —
// full bucket contents, not just the means the JSON summary carries — so a
// stepper or checkpoint path that perturbs individual samples cannot hide
// behind aggregate-level agreement.
func expectSameHistograms(t *testing.T, name string, ref, got *Result) {
	t.Helper()
	for i := range ref.Collector.RoundTrip {
		if !reflect.DeepEqual(ref.Collector.RoundTrip[i], got.Collector.RoundTrip[i]) {
			t.Fatalf("%s: tile %d round-trip latency histogram differs from reference", name, i)
		}
		if !reflect.DeepEqual(ref.Collector.SoFar[i], got.Collector.SoFar[i]) {
			t.Fatalf("%s: tile %d so-far delay histogram differs from reference", name, i)
		}
		if !reflect.DeepEqual(ref.Collector.Breakdown[i], got.Collector.Breakdown[i]) {
			t.Fatalf("%s: tile %d per-leg breakdown differs from reference", name, i)
		}
	}
}

// TestEventDenseEquivalence is the scheduler's correctness oracle, now
// three-way: the event-driven stepper AND the sharded parallel stepper (2,
// 3, 4 and 8 workers, work stealing on — 3 pins the non-power-of-two layout
// the contiguous-range partition made legal) must reproduce the dense
// reference cycle for cycle —
// byte-identical summaries and identical core counters (which include the
// stall and outstanding-instruction integrals the closed-form catch-up
// reconstructs) — across workloads exercising idle tiles, hard-stalled
// cores, saturation, both schemes and heterogeneous router clocks. Run
// under -race (make ci), this doubles as the data-race oracle for the
// boundary-queue construction.
func TestEventDenseEquivalence(t *testing.T) {
	base := smallConfig()

	hetero := smallConfig()
	// Tile 0 hosts both a core and a memory controller in smallConfig, so a
	// divisor there exercises router timed wakes on the busiest tile.
	hetero.NoC.ClockDivisors = map[int]int{0: 2, 5: 2, 10: 4}

	schemes := smallConfig().WithSchemes(true, true)
	schemes.S1.UpdatePeriod = 2_000

	// The bench harness's mixed_w1_half_16 shape: the 16-core halved variant
	// of workload 1 occupying every tile of the 16-tile mesh — the moderate-
	// occupancy mix where the event stepper historically regressed.
	w1, err := workload.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := w1.Halve()
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := half.Profiles()
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		cfg  config.Config
		apps []trace.Profile
		// wantTicked, when nonzero, pins the event stepper's executed-cycle
		// count (every shard count must match). On an always-busy workload
		// every cycle must execute; a timed wake silently skipped by wake
		// coalescing would let the quiescence fast-forward jump over due
		// work, and this counter is the direct witness — it under-counts
		// even when the summary happens to agree.
		wantTicked int64
		// allWorkers widens the worker sweep to {2, 3, 4, 8} — 3 pins the
		// non-power-of-two layout the contiguous-range partition made legal,
		// 8 the chunks-per-worker floor. Only the heaviest workloads carry
		// the full sweep; the rest run {2, 4} to keep the raced suite's
		// wall-clock bounded on small hosts (the skewed-hotspot test below
		// covers 8 workers with stealing on and off separately).
		allWorkers bool
	}{
		{"all_idle", base, make([]trace.Profile, base.Mesh.Nodes()), 0, false},
		{"alone_mcf", base, fillApps(base, "mcf", 1), 0, false},
		{"milc_8", base, fillApps(base, "milc", 8), 0, false},
		{"saturated_mcf_16", base, fillApps(base, "mcf", 16), 0, true},
		{"schemes_mcf_12", schemes, fillApps(schemes, "mcf", 12), 0, false},
		{"hetero_clocks_milc_8", hetero, fillApps(hetero, "milc", 8), 0, false},
		{"mixed_w1_half_16", base, mixed, base.Run.WarmupCycles + base.Run.MeasureCycles, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			denseJSON, denseRes, _ := runOnce(t, tc.cfg, tc.apps, true, 1)
			eventJSON, eventRes, eventSim := runOnce(t, tc.cfg, tc.apps, false, 1)
			expectSame(t, "event", denseJSON, denseRes, eventJSON, eventRes)
			if tc.wantTicked != 0 {
				if got := eventSim.DebugTickedCycles(); got != tc.wantTicked {
					t.Errorf("event stepper executed %d cycles, want %d", got, tc.wantTicked)
				}
			}
			workerCounts := []int{2, 4}
			if tc.allWorkers {
				workerCounts = []int{2, 3, 4, 8}
			}
			for _, shards := range workerCounts {
				name := fmt.Sprintf("sharded_%d", shards)
				gotJSON, gotRes, gotSim := runOnce(t, tc.cfg, tc.apps, false, shards)
				expectSame(t, name, denseJSON, denseRes, gotJSON, gotRes)
				if tc.wantTicked != 0 {
					if got := gotSim.DebugTickedCycles(); got != tc.wantTicked {
						t.Errorf("%s executed %d cycles, want %d", name, got, tc.wantTicked)
					}
				}
			}
		})
	}
}

// TestLargeMeshRegression is the regression test for the headline bug: the
// former uint64 active-set masks silently saturated at 64 tiles, so a 16x16
// mesh ran with most of its tiles permanently excluded from event-driven
// stepping and produced wrong results with no error. The widened bitset
// implementation must instead simulate a 256-tile mesh correctly: the
// event-driven and 4-way-sharded runs reproduce the dense reference, and
// tiles beyond index 63 demonstrably make progress.
func TestLargeMeshRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("256-tile equivalence run is slow")
	}
	cfg := smallConfig()
	cfg.Mesh.Width, cfg.Mesh.Height = 16, 16
	cfg.Run.WarmupCycles = 1_000
	cfg.Run.MeasureCycles = 3_000
	apps := make([]trace.Profile, cfg.Mesh.Nodes())
	p := trace.MustLookup("mcf")
	// Activity on both sides of the old 64-tile truncation boundary.
	for _, tile := range []int{0, 20, 63, 64, 100, 200, 255} {
		apps[tile] = p
	}
	denseJSON, denseRes, _ := runOnce(t, cfg, apps, true, 1)
	eventJSON, eventRes, _ := runOnce(t, cfg, apps, false, 1)
	expectSame(t, "event", denseJSON, denseRes, eventJSON, eventRes)
	shardJSON, shardRes, _ := runOnce(t, cfg, apps, false, 4)
	expectSame(t, "sharded_4", denseJSON, denseRes, shardJSON, shardRes)
	for _, tile := range []int{64, 100, 200, 255} {
		if eventRes.CoreStats[tile].Retired == 0 {
			t.Errorf("tile %d retired nothing under event stepping: the active set is truncated", tile)
		}
	}
}

// TestDenseEnvForcesReference covers the process-wide escape hatch used to
// re-verify results without code changes.
func TestDenseEnvForcesReference(t *testing.T) {
	t.Setenv(denseStepEnv, "1")
	cfg := smallConfig()
	s, err := New(cfg, fillApps(cfg, "milc", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !s.dense {
		t.Fatal("NOCMEM_DENSE_STEP=1 did not select the dense stepper")
	}
	s.Step(1_000)
	if s.DebugTickedCycles() != 0 {
		t.Fatal("dense stepper went through the event-driven cycle counter")
	}
}

// TestEventFastForwardsIdle proves the quiescence fast-forward actually
// skips work: an all-idle system only executes the cycles on which a memory
// controller samples idleness (every 100 cycles) or refreshes, a tiny
// fraction of simulated time.
func TestEventFastForwardsIdle(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg, make([]trace.Profile, cfg.Mesh.Nodes()))
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 1_000_000
	s.Step(cycles)
	if s.Now() != cycles {
		t.Fatalf("Now = %d after Step(%d)", s.Now(), cycles)
	}
	if got := s.DebugTickedCycles(); got > cycles/20 {
		t.Fatalf("executed %d of %d cycles; fast-forward is not engaging", got, cycles)
	}
}

// drainSource is a finite synthetic application: count memory accesses
// (every fourth a store) striding whole L1 sets apart to force misses,
// evictions and writebacks, then non-memory instructions forever. Used to
// prove the system runs completely dry — and that no wakeup was lost, since
// a stranded message would stay parked in a queue QuiesceCheck inspects.
type drainSource struct {
	left   int
	addr   uint64
	stride uint64
}

func (d *drainSource) Next() trace.Instr {
	if d.left <= 0 {
		return trace.Instr{}
	}
	d.left--
	a := d.addr
	d.addr += d.stride
	return trace.Instr{IsMem: true, IsStore: d.left%4 == 0, Addr: a}
}

func (d *drainSource) PrewarmLines() (hot, warm []uint64) { return nil, nil }

func TestQuiesceAfterDrain(t *testing.T) {
	cfg := smallConfig()
	nodes := cfg.Mesh.Nodes()
	srcs := make([]trace.AppSource, nodes)
	apps := make([]trace.Profile, nodes)
	srcs[0] = &drainSource{left: 2_000, stride: 64 * 512}
	apps[0] = trace.Profile{Name: "drain"}
	srcs[5] = &drainSource{left: 1_000, addr: 1 << 30, stride: 64 * 512}
	apps[5] = trace.Profile{Name: "drain"}
	s, err := NewFromSources(cfg, srcs, apps)
	if err != nil {
		t.Fatal(err)
	}
	s.resetStats() // the collector only counts inside a measurement window
	s.Step(2_000_000)
	if err := s.QuiesceCheck(); err != nil {
		t.Fatal(err)
	}
	// The event scheduler must also reach its fixed point: no active bit or
	// router wake may leak once everything is drained.
	if err := s.net.DebugLeaks(); err != nil {
		t.Fatal(err)
	}
	r := s.results()
	if r.Collector.OffChip[0] == 0 || r.Collector.OffChip[5] == 0 {
		t.Fatalf("drain sources completed no off-chip accesses: %d / %d",
			r.Collector.OffChip[0], r.Collector.OffChip[5])
	}
}

// hotspotSource issues an endless stream of memory accesses whose stride (64
// lines x 512) pins every request to DRAM controller 0 and L2 bank 0 — both
// resident at tile 0's mesh corner. With several of these running, the
// corner quadrant carries nearly all simulation work while the far quadrants
// idle: the load shape where the old rectangular shard split degenerated to
// one busy worker, and the one most sensitive to partition placement and
// steal ordering.
type hotspotSource struct {
	addr uint64
}

func (h *hotspotSource) Next() trace.Instr {
	a := h.addr
	h.addr += 64 * 512
	return trace.Instr{IsMem: true, IsStore: h.addr%5 == 0, Addr: a}
}

func (h *hotspotSource) PrewarmLines() (hot, warm []uint64) { return nil, nil }

// skewedWorkload puts hotspot sources on a quarter of the tiles, spread over
// the whole mesh, all hammering the controller-0 corner.
func skewedWorkload(cfg config.Config) ([]trace.Profile, func() []trace.AppSource) {
	nodes := cfg.Mesh.Nodes()
	apps := make([]trace.Profile, nodes)
	var tiles []int
	for i := 0; i < nodes; i += 4 {
		apps[i] = trace.Profile{Name: "hotspot"}
		tiles = append(tiles, i)
	}
	srcs := func() []trace.AppSource {
		out := make([]trace.AppSource, nodes)
		for j, tile := range tiles {
			out[tile] = &hotspotSource{addr: uint64(j+1) << 30}
		}
		return out
	}
	return apps, srcs
}

// TestSkewedHotspotEquivalence pins the sharded stepper on the skewed load:
// every worker count (1, 2, 4, 8), with work stealing enabled and disabled,
// must reproduce the dense reference byte for byte even though nearly all
// work lands in one corner of the mesh. Under -race (make ci) this is also
// the data-race oracle for the stealing fast path: stolen chunks of the hot
// quadrant execute on whichever worker claims them while the cold quadrants'
// owners go idle and steal.
func TestSkewedHotspotEquivalence(t *testing.T) {
	cfg := smallConfig()
	// Seven runs of this workload; a tighter window than smallConfig's keeps
	// the raced suite's wall-clock bounded without losing coverage — the
	// hotspot saturates the corner within a few hundred cycles.
	cfg.Run.WarmupCycles, cfg.Run.MeasureCycles = 2_000, 8_000
	apps, srcs := skewedWorkload(cfg)

	run := func(dense bool, shards int, noSteal bool) ([]byte, *Result) {
		t.Helper()
		c := cfg
		c.Run.Shards = shards
		c.Run.NoSteal = noSteal
		s, err := NewFromSources(c, srcs(), apps)
		if err != nil {
			t.Fatal(err)
		}
		s.SetDenseStepping(dense)
		r := s.Run()
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), r
	}

	denseJSON, denseRes := run(true, 1, false)
	eventJSON, eventRes := run(false, 1, false)
	expectSame(t, "event", denseJSON, denseRes, eventJSON, eventRes)
	for _, workers := range []int{2, 4, 8} {
		for _, noSteal := range []bool{false, true} {
			name := fmt.Sprintf("sharded_%d_steal_%v", workers, !noSteal)
			gotJSON, gotRes := run(false, workers, noSteal)
			expectSame(t, name, denseJSON, denseRes, gotJSON, gotRes)
		}
	}
}
