// Package sim wires the substrates into the full target system of Figure 1:
// one out-of-order core, private L1 and shared S-NUCA L2 bank per tile, a
// mesh NoC connecting the tiles, and memory controllers on the corners. It
// drives the five-leg memory transaction lifecycle of Figure 2 and collects
// the measurements behind every figure in the paper.
package sim

import (
	"nocmem/internal/noc"
	"nocmem/internal/stats"
)

// msgKind identifies the role of a network message in the memory protocol.
type msgKind uint8

const (
	msgReqL1toL2  msgKind = iota // path 1: demand request to the L2 bank
	msgWBL1toL2                  // L1 dirty eviction
	msgReqL2toMC                 // path 2: off-chip demand request
	msgWBL2toMC                  // L2 dirty eviction (DRAM write)
	msgRespMCtoL2                // path 4: memory data response
	msgRespL2toL1                // path 5: data response to the core
	msgInvL2toL1                 // back-invalidation (inclusive L2 evicted the line)
)

func (k msgKind) String() string {
	switch k {
	case msgReqL1toL2:
		return "req-l1-l2"
	case msgWBL1toL2:
		return "wb-l1-l2"
	case msgReqL2toMC:
		return "req-l2-mc"
	case msgWBL2toMC:
		return "wb-l2-mc"
	case msgRespMCtoL2:
		return "resp-mc-l2"
	case msgRespL2toL1:
		return "resp-l2-l1"
	case msgInvL2toL1:
		return "inv-l2-l1"
	}
	return "?"
}

// message is the payload carried by every network packet.
type message struct {
	kind msgKind
	txn  *Txn   // nil for writebacks
	line uint64 // line-aligned address
}

// Txn is one demand memory transaction: an L1 miss and everything that
// happens until the line is back in the L1. The timestamps give the per-leg
// delays of Figure 4; their differences always telescope to Done-Birth.
type Txn struct {
	ID    uint64
	Core  int // requesting tile
	Line  uint64
	Store bool

	Birth    int64 // L1 miss detected
	ReqAtL2  int64 // request delivered at the L2 bank tile (end of leg 1)
	ReqAtMC  int64 // request delivered at the memory controller (end of leg 2)
	MemDone  int64 // DRAM service complete (end of leg 3)
	RespAtL2 int64 // response delivered back at the L2 bank (end of leg 4)
	Done     int64 // line filled into L1 (end of leg 5)

	// AgeAtL2 snapshots the request packet's so-far delay on arrival at
	// the L2 bank, so the bank can extend it with its local holding time
	// (the distributed age mechanism of Equation 1).
	AgeAtL2 int64

	// OffChip is set when the transaction missed in L2.
	OffChip bool

	// SoFarAtMC is the so-far delay observed right after DRAM service,
	// i.e. the value Scheme-1 compares against the threshold (Figure 9).
	SoFarAtMC int64

	// RespPriority is the network priority Scheme-1 assigned to the
	// response.
	RespPriority noc.Priority
}

// Total returns the end-to-end latency. Valid once Done is set.
func (t *Txn) Total() int64 { return t.Done - t.Birth }

// Legs returns the five path delays of Figure 2/4 for an off-chip
// transaction. They sum exactly to Total.
func (t *Txn) Legs() [stats.NumLegs]int64 {
	return [stats.NumLegs]int64{
		stats.LegL1ToL2: t.ReqAtL2 - t.Birth,
		stats.LegL2ToMC: t.ReqAtMC - t.ReqAtL2,
		stats.LegMemory: t.MemDone - t.ReqAtMC,
		stats.LegMCToL2: t.RespAtL2 - t.MemDone,
		stats.LegL2ToL1: t.Done - t.RespAtL2,
	}
}
