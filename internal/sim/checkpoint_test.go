package sim

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/snapshot"
	"nocmem/internal/trace"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden checkpoint under testdata")

// takeSnapshot runs the warmup under cfg with the given stepper, writing a
// checkpoint at Run.CheckpointAt, and returns the snapshot bytes plus the
// straight-through result of completing the same run.
func takeSnapshot(t *testing.T, cfg config.Config, apps []trace.Profile, dense bool, shards int) ([]byte, []byte, *Result) {
	t.Helper()
	cfg.Run.Shards = shards
	s, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	s.SetDenseStepping(dense)
	var snap bytes.Buffer
	res, err := s.RunWithCheckpoint(&snap)
	if err != nil {
		t.Fatal(err)
	}
	var j bytes.Buffer
	if err := res.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	return snap.Bytes(), j.Bytes(), res
}

// resumeRun restores the snapshot under cfg and completes the run.
func resumeRun(t *testing.T, cfg config.Config, apps []trace.Profile, dense bool, shards int, snap []byte) ([]byte, *Result) {
	t.Helper()
	cfg.Run.Shards = shards
	cfg.Run.ResumeFrom = cfg.Run.CheckpointAt
	s, err := Restore(cfg, apps, bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	s.SetDenseStepping(dense)
	res := s.Run()
	var j bytes.Buffer
	if err := res.WriteJSON(&j); err != nil {
		t.Fatal(err)
	}
	return j.Bytes(), res
}

// TestCheckpointForkEquivalence is the tentpole's gate: a run that
// checkpoints at the warmup boundary and a run that restores from that
// checkpoint must produce byte-identical statistics — summaries, raw core
// and network counters, and full per-application latency histograms — under
// every stepper (dense, event-driven, sharded with 2 and 4 workers).
func TestCheckpointForkEquivalence(t *testing.T) {
	cfg := smallConfig()
	cfg.Run.CheckpointAt = cfg.Run.WarmupCycles
	apps := fillApps(cfg, "milc", 6)

	modes := []struct {
		name   string
		dense  bool
		shards int
	}{
		{"dense", true, 1},
		{"event", false, 1},
		{"sharded_2", false, 2},
		{"sharded_4", false, 4},
	}
	for _, m := range modes {
		m := m
		t.Run(m.name, func(t *testing.T) {
			t.Parallel()
			snap, wantJSON, want := takeSnapshot(t, cfg, apps, m.dense, m.shards)
			if len(snap) == 0 {
				t.Fatal("no checkpoint written")
			}
			gotJSON, got := resumeRun(t, cfg, apps, m.dense, m.shards, snap)
			expectSame(t, m.name+"_resumed", wantJSON, want, gotJSON, got)
		})
	}
}

// TestCheckpointPartitionAgnostic pins the property the forkrun cache's key
// relies on: snapshots carry no stepping layout, so an image taken under one
// worker count restores under any other — and the resumed run still
// reproduces the producer's straight-through result byte for byte. One warm
// image therefore serves the whole worker-count sweep.
func TestCheckpointPartitionAgnostic(t *testing.T) {
	cfg := smallConfig()
	cfg.Run.CheckpointAt = cfg.Run.WarmupCycles
	apps := fillApps(cfg, "milc", 6)

	// The oracle: the sequential producer's complete run.
	seqSnap, wantJSON, want := takeSnapshot(t, cfg, apps, false, 1)

	for _, m := range []struct {
		name    string
		shards  int
		noSteal bool
	}{
		{"resume_2_workers", 2, false},
		{"resume_3_workers", 3, false},
		{"resume_4_workers", 4, false},
		{"resume_8_workers_nosteal", 8, true},
	} {
		m := m
		t.Run(m.name, func(t *testing.T) {
			c := cfg
			c.Run.NoSteal = m.noSteal
			gotJSON, got := resumeRun(t, c, apps, false, m.shards, seqSnap)
			expectSame(t, m.name, wantJSON, want, gotJSON, got)
		})
	}

	// And the reverse direction: a sharded producer's image resumes
	// sequentially into the same pinned result.
	t.Run("sharded_snapshot_sequential_resume", func(t *testing.T) {
		shSnap, shJSON, shRes := takeSnapshot(t, cfg, apps, false, 4)
		expectSame(t, "sharded_producer", wantJSON, want, shJSON, shRes)
		gotJSON, got := resumeRun(t, cfg, apps, false, 1, shSnap)
		expectSame(t, "sequential_resume", wantJSON, want, gotJSON, got)
	})
}

// TestCheckpointMidMeasurementFork covers the other checkpoint placement: a
// snapshot taken inside the measurement window carries the partially-filled
// collectors, and resuming completes the window byte-identically.
func TestCheckpointMidMeasurementFork(t *testing.T) {
	cfg := smallConfig()
	cfg.Run.CheckpointAt = cfg.Run.WarmupCycles + cfg.Run.MeasureCycles/2
	apps := fillApps(cfg, "mcf", 4)
	snap, wantJSON, want := takeSnapshot(t, cfg, apps, false, 1)
	gotJSON, got := resumeRun(t, cfg, apps, false, 1, snap)
	expectSame(t, "mid_measurement_resumed", wantJSON, want, gotJSON, got)
}

// TestCheckpointForksAcrossSchemes exercises the policy-leniency path the
// experiment runner relies on: a warmup snapshot taken under the baseline
// restores into Scheme-1+2 and application-aware measurement configurations
// (the schemes start cold), so one warmup serves every policy variant.
func TestCheckpointForksAcrossSchemes(t *testing.T) {
	base := smallConfig()
	base.Run.CheckpointAt = base.Run.WarmupCycles
	apps := fillApps(base, "mcf", 6)
	snap, _, _ := takeSnapshot(t, base, apps, false, 1)

	schemes := base.WithSchemes(true, true)
	schemes.S1.UpdatePeriod = 2_000
	appAware := base
	appAware.AppAwareNet = true

	for name, cfg := range map[string]config.Config{"schemes": schemes, "app_aware": appAware} {
		_, res := resumeRun(t, cfg, apps, false, 1, snap)
		active := 0
		for _, tile := range res.ActiveTiles() {
			if res.CoreStats[tile].Retired > 0 {
				active++
			}
		}
		if active == 0 {
			t.Fatalf("%s: restored fork retired nothing", name)
		}
		if name == "schemes" && res.S1Checked == 0 {
			t.Fatalf("schemes: Scheme-1 never classified a response after forking")
		}
	}
}

// TestCheckpointRoundTrip asserts the format's determinism directly:
// serialize, restore, serialize again — the two images must be identical
// byte for byte, as must a re-serialization of the original simulator
// (the encoder may not mutate what it walks).
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := smallConfig()
	apps := fillApps(cfg, "mcf", 5)
	s, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(7_000) // enough to have packets, MSHRs and DRAM queues in flight

	var first, again bytes.Buffer
	if err := s.Checkpoint(&first); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("re-encoding the same simulator produced different bytes")
	}

	restored, err := Restore(cfg, apps, bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := restored.Checkpoint(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("round trip is not byte-stable: %d vs %d bytes", first.Len(), second.Len())
	}
}

// goldenConfig pins the configuration of the checked-in golden checkpoint.
// internal/snapshot's fuzz target mirrors it; keep the two in sync.
func goldenConfig() (config.Config, []trace.Profile) {
	cfg := config.Baseline16()
	// Shrunken caches keep the checked-in image (and the fuzz corpus seeded
	// from it) small; the encoding walk they exercise is identical.
	cfg.L1.SizeBytes = 8 << 10
	cfg.L2.SizeBytes = 64 << 10
	cfg.Run.WarmupCycles = 3_000
	cfg.Run.MeasureCycles = 4_000
	cfg.Run.CheckpointAt = 3_000
	apps := make([]trace.Profile, cfg.Mesh.Nodes())
	p := trace.MustLookup("milc")
	for _, tile := range []int{0, 3, 9, 14} {
		apps[tile] = p
	}
	return cfg, apps
}

// TestCheckpointGolden is the cross-version regression gate: a pinned
// checkpoint file under testdata must keep restoring into a simulator that
// completes the run with exactly the pinned statistics. It fails loudly
// when the format changes without a version bump (silent corruption) or
// with one (stale golden file), and tells the developer what to do.
//
// Regenerate both files after a deliberate format change with:
//
//	go test ./internal/sim -run TestCheckpointGolden -update
func TestCheckpointGolden(t *testing.T) {
	cfg, apps := goldenConfig()
	snapPath := filepath.Join("testdata", "golden.snap")
	jsonPath := filepath.Join("testdata", "golden.json")

	if *updateGolden {
		snap, resJSON, _ := takeSnapshot(t, cfg, apps, false, 1)
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(snapPath, snap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonPath, resJSON, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s (%d bytes) and %s", snapPath, len(snap), jsonPath)
		return
	}

	snap, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("missing golden checkpoint: %v — generate it with: go test ./internal/sim -run TestCheckpointGolden -update", err)
	}
	wantJSON, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := resumeRun(t, cfg, apps, false, 1, snap)
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("restoring the golden checkpoint no longer reproduces the pinned results.\n"+
			"If you changed the snapshot encoding, bump snapshot.Version (currently %d) and regenerate with:\n"+
			"  go test ./internal/sim -run TestCheckpointGolden -update\n--- want ---\n%s\n--- got ---\n%s",
			snapshot.Version, wantJSON, gotJSON)
	}
}

// TestRestoreErrors is the table-driven gate on Restore's validation: every
// mismatch between the snapshot and the restoring configuration — and every
// form of byte-level corruption — must surface as an error, never a panic
// or a silently half-restored simulator.
func TestRestoreErrors(t *testing.T) {
	cfg := smallConfig()
	apps := fillApps(cfg, "milc", 4)
	s, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(6_000)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	cases := []struct {
		name    string
		cfg     func() config.Config
		apps    func() []trace.Profile
		data    func() []byte
		wantSub string
	}{
		{
			name: "structural_mismatch",
			cfg: func() config.Config {
				c := config.Baseline32()
				c.Run = cfg.Run
				return c
			},
			apps:    func() []trace.Profile { return fillApps(config.Baseline32(), "milc", 4) },
			wantSub: "incompatible configuration",
		},
		{
			name: "seed_mismatch",
			cfg:  func() config.Config { c := cfg; c.Run.Seed = 99; return c },
			// A different seed is a different machine: the generators replay
			// a different stream, so the structural key must reject it.
			wantSub: "incompatible configuration",
		},
		{
			name:    "application_placement_mismatch",
			apps:    func() []trace.Profile { return fillApps(cfg, "mcf", 4) },
			wantSub: "in the snapshot",
		},
		{
			name:    "resume_cycle_mismatch",
			cfg:     func() config.Config { c := cfg; c.Run.ResumeFrom = 123; return c },
			wantSub: "resumes from cycle 123",
		},
		{
			name:    "bad_magic",
			data:    func() []byte { d := append([]byte(nil), snap...); d[0] ^= 0xff; return d },
			wantSub: "bad magic",
		},
		{
			name: "future_version",
			data: func() []byte {
				d := append([]byte(nil), snap...)
				d[8], d[9], d[10], d[11] = 0xff, 0xff, 0xff, 0xff
				return d
			},
			wantSub: "regenerate the checkpoint",
		},
		{
			name:    "truncated",
			data:    func() []byte { return snap[:len(snap)/2] },
			wantSub: "",
		},
		{
			name:    "trailing_garbage",
			data:    func() []byte { return append(append([]byte(nil), snap...), 0xA5) },
			wantSub: "trailing",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c, a, d := cfg, apps, snap
			if tc.cfg != nil {
				c = tc.cfg()
			}
			if tc.apps != nil {
				a = tc.apps()
			}
			if tc.data != nil {
				d = tc.data()
			}
			_, err := Restore(c, a, bytes.NewReader(d))
			if err == nil {
				t.Fatal("Restore accepted an invalid snapshot")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestRestoreNeverPanicsOnPrefixes walks every header-region truncation
// point and a sweep of body truncations: all must fail cleanly with
// snapshot.ErrFormat, proving the sticky-reader discipline holds end to
// end (the fuzz target in internal/snapshot extends this to arbitrary
// mutations).
func TestRestoreNeverPanicsOnPrefixes(t *testing.T) {
	cfg := smallConfig()
	apps := fillApps(cfg, "milc", 3)
	s, err := New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(5_000)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()
	cuts := []int{0, 1, 7, 8, 11, 12, 20, 50}
	for n := 100; n < len(snap); n += len(snap) / 37 {
		cuts = append(cuts, n)
	}
	for _, n := range cuts {
		if n >= len(snap) {
			continue
		}
		_, err := Restore(cfg, apps, bytes.NewReader(snap[:n]))
		if err == nil {
			t.Fatalf("Restore accepted a %d-byte prefix of a %d-byte snapshot", n, len(snap))
		}
		if !errors.Is(err, snapshot.ErrFormat) {
			t.Fatalf("prefix %d: error %v is not tagged snapshot.ErrFormat", n, err)
		}
	}
}

// TestRunWithCheckpointPlacement pins the checkpoint-cycle semantics Run
// and the runner depend on: the snapshot records exactly CheckpointAt as
// its cycle, and a boundary snapshot is taken before the statistics reset.
func TestRunWithCheckpointPlacement(t *testing.T) {
	for _, ck := range []int64{2_000, 5_000, 9_000} {
		cfg := smallConfig()
		cfg.Run.WarmupCycles = 5_000
		cfg.Run.MeasureCycles = 6_000
		cfg.Run.CheckpointAt = ck
		apps := fillApps(cfg, "milc", 2)
		snap, _, _ := takeSnapshot(t, cfg, apps, false, 1)
		cfg.Run.ResumeFrom = ck
		s, err := Restore(cfg, apps, bytes.NewReader(snap))
		if err != nil {
			t.Fatalf("CheckpointAt=%d: %v", ck, err)
		}
		if s.Now() != ck {
			t.Fatalf("CheckpointAt=%d: snapshot restored at cycle %d", ck, s.Now())
		}
	}
}
