package sim

import (
	"fmt"
	"io"
	"sort"

	"nocmem/internal/cache"
	"nocmem/internal/config"
	"nocmem/internal/core"
	"nocmem/internal/noc"
	"nocmem/internal/snapshot"
	"nocmem/internal/trace"
)

// Checkpoint serializes the complete simulator state to w, so a later
// Restore continues the run byte-identically to never having stopped.
//
// The walk is strictly deterministic: nodes, controllers and routers in
// ascending index order, maps in sorted key order, and shared pointers
// (transactions, packets) interned in first-encounter order. Per-shard
// accumulators (collectors, network stats) are encoded merged — only their
// sums are observable — which makes snapshots partition-agnostic: an image
// taken under any worker count or chunk layout restores into any other
// (results are partition-independent, and Restore re-derives all scheduler
// state via activateAll).
//
// The only legal checkpoint boundary is between Step calls: the encoder
// fails if any cross-shard boundary queue still holds traffic.
//
// Not captured, by design: free lists and scratch buffers (pure capacity),
// event-scheduler active sets and wake heaps (Restore re-activates every
// component; spurious ticks are no-ops), and PRNG internals (the trace
// generators are deterministic in (profile, core, seed), so only the issue
// count is stored and replayed).
func (s *Simulator) Checkpoint(wr io.Writer) error {
	w := snapshot.NewWriter(wr)
	w.String(s.cfg.SnapshotKey())
	// Historical shard-count field, kept so the format (and the pinned
	// golden image) stays stable. Always 1: the stepping partition is not
	// simulator state — snapshots restore under any worker count.
	w.Int(1)
	w.Len(len(s.apps))
	for _, a := range s.apps {
		w.String(a.Name)
	}
	w.I64(s.now)
	w.I64(s.ticked)

	e := &encoder{w: w, pktIdx: make(map[*noc.Packet]uint32), txnIdx: make(map[*Txn]uint32)}
	for _, n := range s.nodes {
		n.encode(e)
	}
	for _, mc := range s.mcs {
		mc.ctl.Encode(w, e.mcPayload)
	}
	s.net.EncodeState(w, e.pkt)

	w.Bool(s.pol.S1 != nil)
	if s.pol.S1 != nil {
		s.pol.S1.Encode(w)
	}
	w.Bool(s.pol.S2 != nil)
	if s.pol.S2 != nil {
		s.pol.S2.Encode(w)
	}

	encodeCollector(w, s.collector())
	w.Len(len(s.idleSeries))
	for _, se := range s.idleSeries {
		se.Encode(w)
	}
	return w.Err()
}

// Restore builds a simulator from cfg and apps exactly as New does, then
// overlays the state read from rd. The snapshot must have been taken under
// a structurally compatible configuration (same SnapshotKey — geometry,
// timing, seed) and the same application placement; the stepping layout
// (Run.Shards, NoSteal) is free to differ — snapshots are partition-
// agnostic. The prioritization schemes and the memory scheduling policy may
// differ:
// a baseline warmup snapshot restores into a scheme-enabled measurement
// configuration, with the scheme state starting cold.
//
// If cfg.Run.ResumeFrom is non-zero it must equal the cycle the snapshot
// was taken at.
func Restore(cfg config.Config, apps []trace.Profile, rd io.Reader) (*Simulator, error) {
	s, err := New(cfg, apps)
	if err != nil {
		return nil, err
	}
	if err := s.restore(rd); err != nil {
		return nil, err
	}
	return s, nil
}

// RestoreFromSources is Restore over explicit instruction sources (e.g.
// recorded trace files), mirroring NewFromSources.
func RestoreFromSources(cfg config.Config, srcs []trace.AppSource, apps []trace.Profile, rd io.Reader) (*Simulator, error) {
	s, err := NewFromSources(cfg, srcs, apps)
	if err != nil {
		return nil, err
	}
	if err := s.restore(rd); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Simulator) restore(rd io.Reader) error {
	r, err := snapshot.NewReader(rd)
	if err != nil {
		return err
	}
	key := r.String()
	if r.Err() == nil && key != s.cfg.SnapshotKey() {
		return fmt.Errorf("%w: snapshot was taken under an incompatible configuration", snapshot.ErrFormat)
	}
	// The legacy shard-count field is no longer matched against the
	// restoring configuration — the stepping partition is not simulator
	// state — but an implausible value still means corruption.
	shards := r.Int()
	if r.Err() == nil && (shards < 1 || shards > config.MaxMeshTiles) {
		return fmt.Errorf("%w: implausible shard count %d", snapshot.ErrFormat, shards)
	}
	napps := r.Len(4)
	if r.Err() == nil && napps != len(s.apps) {
		return fmt.Errorf("%w: snapshot has %d application slots, configuration has %d", snapshot.ErrFormat, napps, len(s.apps))
	}
	for i := 0; i < napps && r.Err() == nil; i++ {
		name := r.String()
		if r.Err() == nil && name != s.apps[i].Name {
			return fmt.Errorf("%w: tile %d ran %q in the snapshot, %q in this configuration", snapshot.ErrFormat, i, name, s.apps[i].Name)
		}
	}
	now := r.I64()
	ticked := r.I64()
	if r.Err() == nil && (now < 0 || ticked < 0 || ticked > now) {
		return fmt.Errorf("%w: implausible cycle counters (now=%d ticked=%d)", snapshot.ErrFormat, now, ticked)
	}
	// A snapshot is only restorable into a window it lies inside: resuming
	// exists to complete the configured run. The check also caps the trace
	// replay (generators advance by issue count, bounded per cycle), so a
	// corrupted cycle counter cannot drive a near-endless replay loop.
	if total := s.cfg.Run.WarmupCycles + s.cfg.Run.MeasureCycles; r.Err() == nil && now > total {
		return fmt.Errorf("%w: snapshot cycle %d lies past the configured %d-cycle run window", snapshot.ErrFormat, now, total)
	}
	if rf := s.cfg.Run.ResumeFrom; r.Err() == nil && rf != 0 && rf != now {
		return fmt.Errorf("%w: configuration resumes from cycle %d but the snapshot was taken at cycle %d", snapshot.ErrFormat, rf, now)
	}
	if r.Err() != nil {
		return r.Err()
	}
	s.now = now
	s.ticked = ticked

	d := &decoder{r: r, s: s}
	for _, n := range s.nodes {
		n.decode(d)
		if r.Err() != nil {
			return r.Err()
		}
	}
	for _, mc := range s.mcs {
		mc.ctl.Decode(r, func() any { return d.mcPayload(mc.tile) })
		if r.Err() != nil {
			return r.Err()
		}
	}
	s.net.DecodeState(r, d.pkt)
	if r.Err() != nil {
		return r.Err()
	}

	if r.Bool() { // Scheme-1 present in the snapshot
		if s.pol.S1 != nil {
			s.pol.S1.Decode(r)
		} else {
			core.SkipScheme1(r)
		}
	}
	if r.Bool() { // Scheme-2 present in the snapshot
		if s.pol.S2 != nil {
			s.pol.S2.Decode(r)
		} else {
			core.SkipScheme2(r)
		}
	}

	col := newCollector(len(s.nodes))
	decodeCollector(r, col)
	if r.Err() != nil {
		return r.Err()
	}
	s.shards[0].col = col
	for _, sh := range s.shards[1:] {
		sh.col = newCollector(len(s.nodes))
		sh.col.measuring = col.measuring
	}

	nse := r.Len(8)
	if r.Err() == nil && nse != len(s.idleSeries) {
		return fmt.Errorf("%w: %d idle-series streams for %d controllers", snapshot.ErrFormat, nse, len(s.idleSeries))
	}
	for _, se := range s.idleSeries {
		// Decoded in place: the controllers' sampling closures capture
		// these exact Series objects.
		se.Decode(r)
	}
	if r.Err() != nil {
		return r.Err()
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes after the checkpoint image", snapshot.ErrFormat, r.Remaining())
	}
	// Re-arm the scheduler for the restored state: re-derive the network's
	// mode-dependent sets, mark every component active (spurious ticks are
	// no-ops; the sets shrink back on their own) and recompute the policy
	// timer. This makes snapshots stepper-agnostic: a dense-mode snapshot
	// restores into an event-driven run and vice versa.
	s.SetDenseStepping(s.dense)
	s.activateAll()
	return nil
}

// RunWithCheckpoint executes the configured warmup and measurement window
// like Run, additionally writing one checkpoint to sink when it is non-nil
// and Run.CheckpointAt names a cycle inside the remaining window. On a
// simulator positioned past cycle 0 (a Restore), the already-elapsed part
// of the window is skipped, so restore-and-run continues exactly where the
// snapshot producer stopped.
//
// A checkpoint at the warmup boundary is taken before the statistics reset,
// so resuming from it replays the reset — byte-identical to the
// straight-through run.
func (s *Simulator) RunWithCheckpoint(sink io.Writer) (*Result, error) {
	warm := s.cfg.Run.WarmupCycles
	total := warm + s.cfg.Run.MeasureCycles
	ck := s.cfg.Run.CheckpointAt
	start := s.now
	doCk := sink != nil && ck > start && ck <= total
	stepTo := func(target int64) {
		if target > s.now {
			s.Step(target - s.now)
		}
	}
	if doCk && ck <= warm {
		stepTo(ck)
		if err := s.Checkpoint(sink); err != nil {
			return nil, err
		}
	}
	if warm >= start {
		stepTo(warm)
		s.resetStats()
	}
	if doCk && ck > warm {
		stepTo(ck)
		if err := s.Checkpoint(sink); err != nil {
			return nil, err
		}
	}
	stepTo(total)
	return s.results(), nil
}

// encoder interns shared pointers while walking the state: the first
// encounter of a transaction or packet writes its 1-based index followed by
// the full body; later references write the index alone; nil writes 0.
type encoder struct {
	w      *snapshot.Writer
	pktIdx map[*noc.Packet]uint32
	txnIdx map[*Txn]uint32
}

func (e *encoder) txn(t *Txn) {
	if t == nil {
		e.w.U32(0)
		return
	}
	if idx, ok := e.txnIdx[t]; ok {
		e.w.U32(idx)
		return
	}
	idx := uint32(len(e.txnIdx) + 1)
	e.txnIdx[t] = idx
	e.w.U32(idx)
	e.w.U64(t.ID)
	e.w.Int(t.Core)
	e.w.U64(t.Line)
	e.w.Bool(t.Store)
	e.w.I64(t.Birth)
	e.w.I64(t.ReqAtL2)
	e.w.I64(t.ReqAtMC)
	e.w.I64(t.MemDone)
	e.w.I64(t.RespAtL2)
	e.w.I64(t.Done)
	e.w.I64(t.AgeAtL2)
	e.w.Bool(t.OffChip)
	e.w.I64(t.SoFarAtMC)
	e.w.U8(uint8(t.RespPriority))
}

func (e *encoder) pkt(p *noc.Packet) {
	if p == nil {
		e.w.U32(0)
		return
	}
	if idx, ok := e.pktIdx[p]; ok {
		e.w.U32(idx)
		return
	}
	idx := uint32(len(e.pktIdx) + 1)
	e.pktIdx[p] = idx
	e.w.U32(idx)
	noc.EncodePacketBody(e.w, p, e.payload)
}

// payload writes a packet's protocol message.
func (e *encoder) payload(a any) {
	if a == nil {
		e.w.U8(0)
		return
	}
	m, ok := a.(*message)
	if !ok {
		e.w.Fail("unsupported packet payload %T", a)
		return
	}
	e.w.U8(1)
	e.w.U8(uint8(m.kind))
	e.txn(m.txn)
	e.w.U64(m.line)
}

// mcPayload writes a DRAM request's payload.
func (e *encoder) mcPayload(a any) {
	if a == nil {
		e.w.U8(0)
		return
	}
	p, ok := a.(*mcPayload)
	if !ok {
		e.w.Fail("unsupported DRAM request payload %T", a)
		return
	}
	e.w.U8(1)
	e.txn(p.txn)
	e.w.I64(p.age)
	e.w.I64(p.arrival)
	e.w.Int(p.respDst)
}

// decoder mirrors encoder: index 0 is nil, an index equal to the table
// length plus one introduces a new body, anything else must already be in
// the table.
type decoder struct {
	r    *snapshot.Reader
	s    *Simulator
	pkts []*noc.Packet
	txns []*Txn
}

func (d *decoder) txn() *Txn {
	idx := d.r.U32()
	if d.r.Err() != nil || idx == 0 {
		return nil
	}
	if int(idx) <= len(d.txns) {
		return d.txns[idx-1]
	}
	if int(idx) != len(d.txns)+1 {
		d.r.Fail("transaction reference %d out of intern order", idx)
		return nil
	}
	t := &Txn{}
	d.txns = append(d.txns, t)
	t.ID = d.r.U64()
	t.Core = d.r.Int()
	t.Line = d.r.U64()
	t.Store = d.r.Bool()
	t.Birth = d.r.I64()
	t.ReqAtL2 = d.r.I64()
	t.ReqAtMC = d.r.I64()
	t.MemDone = d.r.I64()
	t.RespAtL2 = d.r.I64()
	t.Done = d.r.I64()
	t.AgeAtL2 = d.r.I64()
	t.OffChip = d.r.Bool()
	t.SoFarAtMC = d.r.I64()
	t.RespPriority = noc.Priority(d.r.U8())
	if d.r.Err() == nil && (t.Core < 0 || t.Core >= len(d.s.nodes) || t.RespPriority > noc.High) {
		d.r.Fail("transaction %d has invalid core %d or priority", t.ID, t.Core)
	}
	return t
}

func (d *decoder) pkt() *noc.Packet {
	idx := d.r.U32()
	if d.r.Err() != nil || idx == 0 {
		return nil
	}
	if int(idx) <= len(d.pkts) {
		return d.pkts[idx-1]
	}
	if int(idx) != len(d.pkts)+1 {
		d.r.Fail("packet reference %d out of intern order", idx)
		return nil
	}
	d.pkts = append(d.pkts, nil)
	slot := len(d.pkts) - 1
	p := noc.DecodePacketBody(d.r, len(d.s.nodes), d.payload)
	d.pkts[slot] = p
	return p
}

func (d *decoder) payload() any {
	switch d.r.U8() {
	case 0:
		return nil
	case 1:
		k := d.r.U8()
		if d.r.Err() != nil {
			return nil
		}
		if k > uint8(msgInvL2toL1) {
			d.r.Fail("unknown message kind %d", k)
			return nil
		}
		m := &message{kind: msgKind(k)}
		m.txn = d.txn()
		m.line = d.r.U64()
		return m
	default:
		d.r.Fail("unknown payload tag")
		return nil
	}
}

func (d *decoder) mcPayload(mcTile int) any {
	switch d.r.U8() {
	case 0:
		return nil
	case 1:
		p := &mcPayload{}
		p.txn = d.txn()
		p.age = d.r.I64()
		p.arrival = d.r.I64()
		p.respDst = d.r.Int()
		if d.r.Err() == nil && (p.respDst < 0 || p.respDst >= len(d.s.nodes)) {
			d.r.Fail("DRAM response destination %d out of range at tile %d", p.respDst, mcTile)
		}
		return p
	default:
		d.r.Fail("unknown payload tag")
		return nil
	}
}

// encode walks one tile in the canonical order decode mirrors.
func (n *node) encode(e *encoder) {
	w := e.w
	w.U64(n.txnSeq)
	w.Bool(n.core != nil)
	if n.core != nil {
		n.core.Encode(w)
		switch src := n.core.Source().(type) {
		case *trace.Generator:
			w.U8(1)
			w.U64(src.Issued())
		case *trace.FileTrace:
			pos, loops := src.Progress()
			w.U8(2)
			w.Int(pos)
			w.I64(loops)
		default:
			w.Fail("tile %d runs an unsupported instruction source %T", n.id, src)
		}
	}
	n.l1.Encode(w)
	n.l2.Encode(w)
	cache.EncodeMSHRs(w, n.l1m, func(wt int32) { w.I64(int64(wt)) })
	cache.EncodeMSHRs(w, n.l2m, e.txn)

	if n.dir != nil {
		lines := make([]uint64, 0, len(n.dir))
		for l := range n.dir {
			lines = append(lines, l)
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		w.Len(len(lines))
		for _, l := range lines {
			w.U64(l)
			w.U64(n.dir[l])
		}
	} else {
		lines := make([]uint64, 0, len(n.dirWide))
		for l := range n.dirWide {
			lines = append(lines, l)
		}
		sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
		w.Len(len(lines))
		for _, l := range lines {
			w.U64(l)
			for _, word := range n.dirWide[l] {
				w.U64(word)
			}
		}
	}

	w.Len(len(n.inbox))
	for _, it := range n.inbox {
		e.pkt(it.pkt)
		w.I64(it.at)
	}
	w.Len(len(n.l2Queue))
	for _, it := range n.l2Queue {
		e.pkt(it.pkt)
		w.I64(it.at)
	}
	w.Len(len(n.l2Busy))
	for _, j := range n.l2Busy {
		e.pkt(j.it.pkt)
		w.I64(j.it.at)
		w.I64(j.done)
	}
	w.Len(len(n.delayed))
	for _, a := range n.delayed {
		w.I64(a.at)
		w.Int(int(a.slot))
		e.txn(a.txn)
		w.U64(a.line)
	}
	w.I64(n.lastCoreTick)
}

// decode restores one tile, validating every index and cross-reference the
// running simulator would otherwise trust blindly.
func (n *node) decode(d *decoder) {
	r := d.r
	s := n.s
	n.txnSeq = r.U64()
	hasCore := r.Bool()
	if r.Err() != nil {
		return
	}
	if hasCore != (n.core != nil) {
		r.Fail("tile %d application placement mismatch", n.id)
		return
	}
	if n.core != nil {
		n.core.Decode(r)
		switch r.U8() {
		case 1:
			g, ok := n.core.Source().(*trace.Generator)
			if !ok {
				r.Fail("tile %d: snapshot expects a synthetic generator, simulator has %T", n.id, n.core.Source())
				return
			}
			issued := r.U64()
			if r.Err() != nil {
				return
			}
			// The replay bound doubles as a hang guard: the core fetches at
			// most Width instructions per cycle, so any larger count is
			// corruption and must not drive a near-endless Advance loop.
			limit := uint64(d.s.now+1)*uint64(s.cfg.CPU.Width) + uint64(s.cfg.CPU.WindowSize)
			if issued < g.Issued() || issued > limit {
				r.Fail("tile %d: trace cursor %d outside [%d,%d]", n.id, issued, g.Issued(), limit)
				return
			}
			g.Advance(issued - g.Issued())
		case 2:
			ft, ok := n.core.Source().(*trace.FileTrace)
			if !ok {
				r.Fail("tile %d: snapshot expects a trace file, simulator has %T", n.id, n.core.Source())
				return
			}
			pos := r.Int()
			loops := r.I64()
			if r.Err() != nil {
				return
			}
			if err := ft.SetProgress(pos, loops); err != nil {
				r.Fail("tile %d: %v", n.id, err)
				return
			}
		default:
			if r.Err() == nil {
				r.Fail("tile %d: unknown instruction source tag", n.id)
			}
			return
		}
	}
	n.l1.Decode(r)
	n.l2.Decode(r)
	cache.DecodeMSHRs(r, n.l1m, func() int32 {
		v := r.I64()
		if r.Err() == nil && v != int64(noWaiter) && (v < 0 || v >= int64(s.cfg.CPU.WindowSize) || n.core == nil) {
			r.Fail("tile %d: L1 MSHR waiter slot %d invalid", n.id, v)
		}
		return int32(v)
	})
	cache.DecodeMSHRs(r, n.l2m, func() *Txn {
		t := d.txn()
		if r.Err() == nil && t == nil {
			r.Fail("tile %d: nil transaction waiting on an L2 MSHR", n.id)
		}
		return t
	})
	if r.Err() != nil {
		return
	}

	nodes := len(s.nodes)
	if n.dir != nil {
		nd := r.Len(16)
		if r.Err() != nil {
			return
		}
		n.dir = make(map[uint64]uint64, nd)
		for i := 0; i < nd; i++ {
			line := r.U64()
			mask := r.U64()
			if r.Err() != nil {
				return
			}
			if mask == 0 || (nodes < 64 && mask>>uint(nodes) != 0) {
				r.Fail("tile %d: directory mask %#x invalid for %d tiles", n.id, mask, nodes)
				return
			}
			n.dir[line] = mask
		}
	} else {
		words := (nodes + 63) / 64
		nd := r.Len(8 * (1 + words))
		if r.Err() != nil {
			return
		}
		n.dirWide = make(map[uint64][]uint64, nd)
		n.dirFree = nil
		for i := 0; i < nd; i++ {
			line := r.U64()
			mask := make([]uint64, words)
			zero := true
			for wi := range mask {
				mask[wi] = r.U64()
				if mask[wi] != 0 {
					zero = false
				}
			}
			if r.Err() != nil {
				return
			}
			if zero {
				r.Fail("tile %d: empty wide directory mask", n.id)
				return
			}
			n.dirWide[line] = mask
		}
	}

	readItem := func(what string) (inItem, bool) {
		p := d.pkt()
		at := r.I64()
		if r.Err() != nil {
			return inItem{}, false
		}
		if p == nil {
			r.Fail("tile %d: nil packet in %s", n.id, what)
			return inItem{}, false
		}
		if _, ok := p.Payload.(*message); !ok {
			r.Fail("tile %d: packet %d in %s carries no protocol message", n.id, p.ID, what)
			return inItem{}, false
		}
		return inItem{pkt: p, at: at}, true
	}
	ni := r.Len(12)
	if r.Err() != nil {
		return
	}
	n.inbox = n.inbox[:0]
	for i := 0; i < ni; i++ {
		it, ok := readItem("inbox")
		if !ok {
			return
		}
		n.inbox = append(n.inbox, it)
	}
	nq := r.Len(12)
	if r.Err() != nil {
		return
	}
	n.l2Queue = n.l2Queue[:0]
	for i := 0; i < nq; i++ {
		it, ok := readItem("L2 queue")
		if !ok {
			return
		}
		n.l2Queue = append(n.l2Queue, it)
	}
	nb := r.Len(20)
	if r.Err() != nil {
		return
	}
	n.l2Busy = n.l2Busy[:0]
	for i := 0; i < nb; i++ {
		it, ok := readItem("L2 pipeline")
		if !ok {
			return
		}
		done := r.I64()
		if r.Err() != nil {
			return
		}
		n.l2Busy = append(n.l2Busy, l2Job{it: it, done: done})
	}
	na := r.Len(28)
	if r.Err() != nil {
		return
	}
	n.delayed = n.delayed[:0]
	for i := 0; i < na; i++ {
		var a action
		a.at = r.I64()
		a.slot = int32(r.Int())
		a.txn = d.txn()
		a.line = r.U64()
		if r.Err() != nil {
			return
		}
		if a.txn == nil && (n.core == nil || a.slot < 0 || int(a.slot) >= s.cfg.CPU.WindowSize) {
			r.Fail("tile %d: delayed completion for invalid ROB slot %d", n.id, a.slot)
			return
		}
		n.delayed = append(n.delayed, a)
	}
	n.lastCoreTick = r.I64()
	if r.Err() == nil && n.lastCoreTick < -1 {
		r.Fail("tile %d: lastCoreTick %d below -1", n.id, n.lastCoreTick)
	}
}

func encodeCollector(w *snapshot.Writer, c *Collector) {
	w.Bool(c.measuring)
	w.Len(len(c.RoundTrip))
	for i := range c.RoundTrip {
		c.RoundTrip[i].Encode(w)
		c.SoFar[i].Encode(w)
		c.Breakdown[i].Encode(w)
		w.I64(c.OffChip[i])
		w.I64(c.L2Hits[i])
		c.AvgDelay[i].Encode(w)
	}
	c.RetHigh.Encode(w)
	c.RetNormal.Encode(w)
	w.I64(c.Invalidations)
}

func decodeCollector(r *snapshot.Reader, c *Collector) {
	c.measuring = r.Bool()
	nt := r.Len(1)
	if r.Err() != nil {
		return
	}
	if nt != len(c.RoundTrip) {
		r.Fail("collector covers %d tiles, configuration has %d", nt, len(c.RoundTrip))
		return
	}
	for i := range c.RoundTrip {
		c.RoundTrip[i].Decode(r)
		c.SoFar[i].Decode(r)
		c.Breakdown[i].Decode(r)
		c.OffChip[i] = r.I64()
		c.L2Hits[i] = r.I64()
		c.AvgDelay[i].Decode(r)
		if r.Err() != nil {
			return
		}
	}
	c.RetHigh.Decode(r)
	c.RetNormal.Decode(r)
	c.Invalidations = r.I64()
}
