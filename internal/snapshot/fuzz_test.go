// Fuzzing lives in an external test package so it can drive the real
// consumer of this format — sim.Restore — without an import cycle: the sim
// package imports snapshot, so the fuzz harness for the format exercises
// the full decode path from here.
package snapshot_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/sim"
	"nocmem/internal/trace"
)

// fuzzConfig mirrors goldenConfig in internal/sim/checkpoint_test.go — the
// configuration the checked-in golden checkpoint was taken under. Keep the
// two in sync, or the seed corpus entry degenerates into an instant header
// rejection and the fuzzer never reaches the interesting decode paths.
func fuzzConfig() (config.Config, []trace.Profile) {
	cfg := config.Baseline16()
	cfg.L1.SizeBytes = 8 << 10
	cfg.L2.SizeBytes = 64 << 10
	cfg.Run.WarmupCycles = 3_000
	cfg.Run.MeasureCycles = 4_000
	cfg.Run.CheckpointAt = 3_000
	apps := make([]trace.Profile, cfg.Mesh.Nodes())
	p := trace.MustLookup("milc")
	for _, tile := range []int{0, 3, 9, 14} {
		apps[tile] = p
	}
	return cfg, apps
}

// FuzzRestore feeds arbitrary bytes — seeded with the real golden
// checkpoint, so mutations explore the deep decode paths — into
// sim.Restore. The contract under fuzzing: corrupted, truncated or
// adversarial input must come back as an error. It must never panic, hang,
// or hand back a silently half-restored simulator: on a nil error the
// restored instance is stepped to prove it is actually runnable.
func FuzzRestore(f *testing.F) {
	golden, err := os.ReadFile(filepath.Join("..", "sim", "testdata", "golden.snap"))
	if err != nil {
		f.Fatalf("reading seed corpus: %v (regenerate with: go test ./internal/sim -run TestCheckpointGolden -update)", err)
	}
	f.Add(golden)
	f.Add(golden[:len(golden)/3])
	f.Add([]byte("NOCSNAP1\x01\x00\x00\x00"))
	f.Add([]byte{})

	cfg, apps := fuzzConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := sim.Restore(cfg, apps, bytes.NewReader(data))
		if err != nil {
			return
		}
		// A snapshot that decodes fully must yield a working simulator.
		s.Step(3)
	})
}
