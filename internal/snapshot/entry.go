package snapshot

import (
	"bytes"
	"fmt"
	"hash/crc64"
	"io"
)

// Store-entry container: the on-disk framing of the simulation service's
// content-addressed store (internal/simd). An entry wraps an opaque payload
// (a result summary or a warm checkpoint image) together with the full cache
// key it was stored under and a CRC-64 of both, inside the same
// magic+version header as a checkpoint stream. The key lets a reader verify
// that a content-addressed filename (a hash of the key) really holds the
// entry it looked up, and the checksum turns bit rot and torn writes into a
// clean decode error instead of a poisoned cache — DecodeEntry never
// panics, whatever the input.

var entryCRCTable = crc64.MakeTable(crc64.ECMA)

// entryCRC covers the key and the payload, so neither can be swapped or
// corrupted independently.
func entryCRC(key string, payload []byte) uint64 {
	h := crc64.New(entryCRCTable)
	io.WriteString(h, key)
	h.Write(payload)
	return h.Sum64()
}

// Blob writes a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) {
	w.Len(len(b))
	w.write(b)
}

// Blob reads a length-prefixed byte slice.
func (r *Reader) Blob() []byte {
	n := r.Len(1)
	if r.err != nil {
		return nil
	}
	b := make([]byte, n)
	r.bytes(b)
	return b
}

// EncodeEntry frames payload under key as one store entry.
func EncodeEntry(key string, payload []byte) ([]byte, error) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.String(key)
	w.Blob(payload)
	w.U64(entryCRC(key, payload))
	if err := w.Err(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeEntry parses and verifies one store entry, returning the key it was
// stored under and its payload. Every failure mode — truncation, trailing
// garbage, bit flips anywhere in the frame — yields an error wrapping
// ErrFormat via the sticky-error reader.
func DecodeEntry(data []byte) (key string, payload []byte, err error) {
	r, err := NewReaderBytes(data)
	if err != nil {
		return "", nil, err
	}
	key = r.String()
	payload = r.Blob()
	sum := r.U64()
	if err := r.Err(); err != nil {
		return "", nil, err
	}
	if n := r.Remaining(); n != 0 {
		return "", nil, fmt.Errorf("%w: %d trailing bytes after store entry", ErrFormat, n)
	}
	if sum != entryCRC(key, payload) {
		return "", nil, fmt.Errorf("%w: store entry checksum mismatch (bit rot or torn write)", ErrFormat)
	}
	return key, payload, nil
}
