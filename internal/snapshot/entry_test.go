package snapshot

import (
	"bytes"
	"errors"
	"testing"
)

func TestEntryRoundTrip(t *testing.T) {
	key := "1,2;cfg|workload-7"
	payload := []byte("the payload bytes \x00\xff")
	enc, err := EncodeEntry(key, payload)
	if err != nil {
		t.Fatal(err)
	}
	gotKey, gotPayload, err := DecodeEntry(enc)
	if err != nil {
		t.Fatal(err)
	}
	if gotKey != key {
		t.Errorf("key %q, want %q", gotKey, key)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("payload %q, want %q", gotPayload, payload)
	}

	// Determinism: same inputs, same bytes.
	enc2, err := EncodeEntry(key, payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("EncodeEntry is not deterministic")
	}
}

func TestEntryEmptyPayload(t *testing.T) {
	enc, err := EncodeEntry("k", nil)
	if err != nil {
		t.Fatal(err)
	}
	key, payload, err := DecodeEntry(enc)
	if err != nil {
		t.Fatal(err)
	}
	if key != "k" || len(payload) != 0 {
		t.Errorf("got (%q, %q)", key, payload)
	}
}

// TestEntryCorruption flips, truncates and extends an entry and requires a
// clean ErrFormat every time — the eviction contract of the on-disk store.
func TestEntryCorruption(t *testing.T) {
	enc, err := EncodeEntry("some-key", []byte("some payload worth protecting"))
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"empty":            {},
		"not a checkpoint": []byte("definitely not a store entry"),
		"truncated header": enc[:4],
		"truncated body":   enc[:len(enc)-9],
		"trailing garbage": append(append([]byte{}, enc...), 'x'),
	}
	for i := 0; i < len(enc); i += 7 {
		b := append([]byte{}, enc...)
		b[i] ^= 0x40
		cases["bit flip at "+string(rune('0'+i%10))+"/"+string(rune('0'+i/10%10))] = b
	}
	for name, data := range cases {
		if bytes.Equal(data, enc) {
			continue
		}
		_, _, err := DecodeEntry(data)
		if err == nil {
			t.Errorf("%s: corrupted entry decoded without error", name)
		} else if !errors.Is(err, ErrFormat) {
			t.Errorf("%s: error %v does not wrap ErrFormat", name, err)
		}
	}
}
