// Package snapshot provides the low-level primitives of the simulator's
// checkpoint format: a versioned, deterministic little-endian binary
// encoding with sticky-error writers and bounded, fuzz-safe readers.
//
// The format is deliberately dumb: fixed-width integers, length-prefixed
// slices, and nothing self-describing. Determinism is a format requirement,
// not an accident — the same simulator state must always encode to the same
// bytes (maps are written in sorted key order, shared pointers are interned
// in first-encounter order), because the round-trip test asserts
// serialize→restore→serialize byte-stability and the runner keys warmup
// snapshots by content-derived cache keys.
package snapshot

import (
	"errors"
	"fmt"
	"io"
	"math"
)

// Magic identifies a checkpoint stream. It is followed by a little-endian
// uint32 format version.
const Magic = "NOCSNAP1"

// Version is the checkpoint format version this binary reads and writes.
// Bump it on ANY change to the encoding walk, then regenerate the golden
// file under internal/sim/testdata (see TestCheckpointGolden).
//
// Version 2: snapshots became partition-agnostic. The header's structural
// key no longer encodes the stepping layout (worker count, stealing mode),
// and the legacy shard-count field is pinned to 1, so one image restores
// under any worker count.
const Version = 2

// ErrFormat tags every decode error produced by this package.
var ErrFormat = errors.New("snapshot: invalid checkpoint")

// Writer serializes primitive values with a sticky error. All methods are
// no-ops after the first write failure.
type Writer struct {
	w   io.Writer
	buf [8]byte
	err error
}

// NewWriter wraps w and emits the magic and version header.
func NewWriter(w io.Writer) *Writer {
	sw := &Writer{w: w}
	sw.write([]byte(Magic))
	sw.U32(Version)
	return sw
}

// Err returns the first write error, if any.
func (w *Writer) Err() error { return w.err }

// Fail records an application-level encoding error.
func (w *Writer) Fail(format string, args ...any) {
	if w.err == nil {
		w.err = fmt.Errorf("snapshot: encode: "+format, args...)
	}
}

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.write([]byte{v}) }

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U32 writes a little-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf[0] = byte(v)
	w.buf[1] = byte(v >> 8)
	w.buf[2] = byte(v >> 16)
	w.buf[3] = byte(v >> 24)
	w.write(w.buf[:4])
}

// U64 writes a little-endian uint64.
func (w *Writer) U64(v uint64) {
	for i := 0; i < 8; i++ {
		w.buf[i] = byte(v >> (8 * i))
	}
	w.write(w.buf[:8])
}

// I64 writes an int64 as its two's-complement uint64 image.
func (w *Writer) I64(v int64) { w.U64(uint64(v)) }

// Int writes an int as an int64.
func (w *Writer) Int(v int) { w.I64(int64(v)) }

// F64 writes a float64 via its IEEE-754 bit image.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Len writes a collection length.
func (w *Writer) Len(n int) {
	if n < 0 || n > math.MaxUint32 {
		w.Fail("length %d out of range", n)
		return
	}
	w.U32(uint32(n))
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Len(len(s))
	w.write([]byte(s))
}

// I64s writes a length-prefixed int64 slice.
func (w *Writer) I64s(vs []int64) {
	w.Len(len(vs))
	for _, v := range vs {
		w.I64(v)
	}
}

// F64s writes a length-prefixed float64 slice.
func (w *Writer) F64s(vs []float64) {
	w.Len(len(vs))
	for _, v := range vs {
		w.F64(v)
	}
}

// Reader decodes a checkpoint stream with a sticky error. It buffers the
// whole input up front so every length prefix can be validated against the
// bytes actually remaining — corrupted or truncated input fails cleanly
// instead of provoking huge allocations or panics.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader consumes r fully and validates the magic and version header.
func NewReader(r io.Reader) (*Reader, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	return NewReaderBytes(data)
}

// NewReaderBytes validates the header of an in-memory checkpoint image.
func NewReaderBytes(data []byte) (*Reader, error) {
	sr := &Reader{data: data}
	magic := make([]byte, len(Magic))
	sr.bytes(magic)
	if sr.err != nil || string(magic) != Magic {
		return nil, fmt.Errorf("%w: bad magic (not a checkpoint file)", ErrFormat)
	}
	if v := sr.U32(); sr.err != nil || v != Version {
		return nil, fmt.Errorf("%w: format version %d, but this binary reads version %d — regenerate the checkpoint with the current binary, or bump snapshot.Version after a deliberate format change", ErrFormat, v, Version)
	}
	return sr, nil
}

// Err returns the first decode error, if any, wrapped with ErrFormat.
func (r *Reader) Err() error { return r.err }

// Fail records an application-level decode error.
func (r *Reader) Fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s (at offset %d)", ErrFormat, fmt.Sprintf(format, args...), r.off)
	}
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.data) - r.off }

func (r *Reader) bytes(dst []byte) {
	if r.err != nil {
		return
	}
	if r.off+len(dst) > len(r.data) {
		r.Fail("truncated: need %d bytes, have %d", len(dst), len(r.data)-r.off)
		return
	}
	copy(dst, r.data[r.off:])
	r.off += len(dst)
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	var b [1]byte
	r.bytes(b[:])
	return b[0]
}

// Bool reads a bool; any byte other than 0 or 1 is an error.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.Fail("invalid bool byte")
		return false
	}
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	var b [4]byte
	r.bytes(b[:])
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	var b [8]byte
	r.bytes(b[:])
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64-encoded int, failing if it overflows the platform int.
func (r *Reader) Int() int {
	v := r.I64()
	if int64(int(v)) != v {
		r.Fail("int %d overflows", v)
		return 0
	}
	return int(v)
}

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Len reads a collection length and validates it against the remaining
// input, assuming each element occupies at least elemSize bytes.
func (r *Reader) Len(elemSize int) int {
	n := int(r.U32())
	if elemSize < 1 {
		elemSize = 1
	}
	if r.err == nil && n > r.Remaining()/elemSize {
		r.Fail("implausible length %d (only %d bytes left)", n, r.Remaining())
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Len(1)
	if r.err != nil {
		return ""
	}
	b := make([]byte, n)
	r.bytes(b)
	return string(b)
}

// I64s reads a length-prefixed int64 slice.
func (r *Reader) I64s() []int64 {
	n := r.Len(8)
	if r.err != nil {
		return nil
	}
	vs := make([]int64, n)
	for i := range vs {
		vs[i] = r.I64()
	}
	return vs
}

// F64s reads a length-prefixed float64 slice.
func (r *Reader) F64s() []float64 {
	n := r.Len(8)
	if r.err != nil {
		return nil
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = r.F64()
	}
	return vs
}
