package svg

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

// wellFormed parses the output as XML to catch structural mistakes.
func wellFormed(t *testing.T, b []byte) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(b))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				return
			}
			t.Fatalf("invalid XML: %v\n%s", err, b)
		}
	}
}

func TestChartRender(t *testing.T) {
	var buf bytes.Buffer
	c := Chart{
		Title:  "CDF <base> & s1",
		XLabel: "delay",
		YLabel: "fraction",
		Series: []Series{
			{Name: "base", X: []float64{0, 100, 200}, Y: []float64{0, 0.5, 1}},
			{Name: "s1", X: []float64{0, 100, 200}, Y: []float64{0, 0.7, 1}, Dash: true},
		},
	}
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	out := buf.String()
	if got := strings.Count(out, "<polyline"); got != 2 {
		t.Errorf("%d polylines, want 2", got)
	}
	if !strings.Contains(out, "stroke-dasharray") {
		t.Error("dashed series not dashed")
	}
	if !strings.Contains(out, "&lt;base&gt; &amp;") {
		t.Error("title not escaped")
	}
}

func TestChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (Chart{}).Render(&buf); err == nil {
		t.Error("empty chart accepted")
	}
	bad := Chart{Series: []Series{{Name: "x", X: []float64{1}, Y: []float64{1, 2}}}}
	if err := bad.Render(&buf); err == nil {
		t.Error("ragged series accepted")
	}
	empty := Chart{Series: []Series{{Name: "x"}}}
	if err := empty.Render(&buf); err == nil {
		t.Error("series with no points accepted")
	}
}

func TestBarChartRender(t *testing.T) {
	var buf bytes.Buffer
	c := BarChart{
		Title:    "speedups",
		YLabel:   "normalized WS",
		Labels:   []string{"w-7", "w-8"},
		Series:   []string{"scheme-1", "scheme-1+2"},
		Values:   [][]float64{{1.002, 1.007}, {1.001, 1.010}},
		Baseline: 1.0,
	}
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	out := buf.String()
	if got := strings.Count(out, "<rect"); got < 4+2 { // 4 bars + bg + legend swatches
		t.Errorf("only %d rects", got)
	}
	if !strings.Contains(out, "stroke-dasharray") {
		t.Error("baseline rule missing")
	}
}

func TestBarChartErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (BarChart{}).Render(&buf); err == nil {
		t.Error("empty bar chart accepted")
	}
	bad := BarChart{Labels: []string{"a"}, Series: []string{"x", "y"}, Values: [][]float64{{1}}}
	if err := bad.Render(&buf); err == nil {
		t.Error("ragged group accepted")
	}
}

func TestHeatmapRender(t *testing.T) {
	var buf bytes.Buffer
	c := Heatmap{
		Title: "link load",
		Grid:  [][]float64{{0, 0.5}, {1.0, 0.25}},
	}
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	wellFormed(t, buf.Bytes())
	if got := strings.Count(buf.String(), "<rect"); got != 4+1 { // 4 cells + bg
		t.Errorf("%d rects, want 5", got)
	}
}

func TestHeatmapErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (Heatmap{}).Render(&buf); err == nil {
		t.Error("empty heatmap accepted")
	}
	if err := (Heatmap{Grid: [][]float64{{1}, {1, 2}}}).Render(&buf); err == nil {
		t.Error("ragged heatmap accepted")
	}
	if err := (Heatmap{Grid: [][]float64{{-1}}}).Render(&buf); err == nil {
		t.Error("negative heatmap value accepted")
	}
}
