// Package svg renders the experiment data as standalone SVG figures using
// only the standard library: line charts (CDF/PDF distributions), grouped
// bar charts (speedups, idleness) and a mesh heatmap (link utilization).
// The output favours the plain look of conference-paper figures.
package svg

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// palette cycles through distinguishable stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// Series is one named line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	Dash bool // render dashed (e.g. the "before" curve)
}

// Chart is a 2D line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // pixels; default 640
	Height int // pixels; default 400
	Series []Series
}

type frame struct {
	w, h                   float64
	left, right, top, bot  float64
	xmin, xmax, ymin, ymax float64
}

func (f *frame) x(v float64) float64 {
	if f.xmax == f.xmin {
		return f.left
	}
	return f.left + (v-f.xmin)/(f.xmax-f.xmin)*(f.w-f.left-f.right)
}

func (f *frame) y(v float64) float64 {
	if f.ymax == f.ymin {
		return f.h - f.bot
	}
	return f.h - f.bot - (v-f.ymin)/(f.ymax-f.ymin)*(f.h-f.top-f.bot)
}

// Render writes the chart as a standalone SVG document.
func (c Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("svg: chart %q has no series", c.Title)
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 400
	}
	f := frame{w: float64(width), h: float64(height), left: 60, right: 16, top: 28, bot: 44}
	f.xmin, f.xmax = math.Inf(1), math.Inf(-1)
	f.ymin, f.ymax = math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("svg: series %q has %d x for %d y", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			f.xmin = math.Min(f.xmin, s.X[i])
			f.xmax = math.Max(f.xmax, s.X[i])
			f.ymin = math.Min(f.ymin, s.Y[i])
			f.ymax = math.Max(f.ymax, s.Y[i])
		}
	}
	if math.IsInf(f.xmin, 1) {
		return fmt.Errorf("svg: chart %q has empty series", c.Title)
	}
	if f.ymin > 0 && f.ymin < f.ymax/2 {
		f.ymin = 0 // anchor at zero unless the data is far from it
	}

	var b strings.Builder
	header(&b, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" text-anchor="middle" font-size="14">%s</text>`+"\n", width/2, esc(c.Title))
	axes(&b, &f, c.XLabel, c.YLabel)
	for i, s := range c.Series {
		color := palette[i%len(palette)]
		var pts strings.Builder
		for j := range s.X {
			fmt.Fprintf(&pts, "%.1f,%.1f ", f.x(s.X[j]), f.y(s.Y[j]))
		}
		dash := ""
		if s.Dash {
			dash = ` stroke-dasharray="6,3"`
		}
		fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5"%s points="%s"/>`+"\n",
			color, dash, strings.TrimSpace(pts.String()))
		// Legend entry.
		ly := 34 + 16*i
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"%s/>`+"\n",
			width-150, ly, width-126, ly, color, dash)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", width-120, ly+4, esc(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// BarChart is a grouped bar chart: one group per label, one bar per series.
type BarChart struct {
	Title    string
	YLabel   string
	Labels   []string
	Series   []string    // bar names within a group
	Values   [][]float64 // [group][series]
	Baseline float64     // horizontal rule (e.g. 1.0), 0 = none
	Width    int
	Height   int
}

// Render writes the bar chart as a standalone SVG document.
func (c BarChart) Render(w io.Writer) error {
	if len(c.Labels) != len(c.Values) {
		return fmt.Errorf("svg: %d labels for %d groups", len(c.Labels), len(c.Values))
	}
	if len(c.Labels) == 0 {
		return fmt.Errorf("svg: empty bar chart %q", c.Title)
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 360
	}
	f := frame{w: float64(width), h: float64(height), left: 60, right: 16, top: 28, bot: 60}
	f.ymin, f.ymax = math.Inf(1), math.Inf(-1)
	for gi, g := range c.Values {
		if len(g) != len(c.Series) {
			return fmt.Errorf("svg: group %d has %d values for %d series", gi, len(g), len(c.Series))
		}
		for _, v := range g {
			f.ymin = math.Min(f.ymin, v)
			f.ymax = math.Max(f.ymax, v)
		}
	}
	if c.Baseline != 0 {
		f.ymin = math.Min(f.ymin, c.Baseline)
		f.ymax = math.Max(f.ymax, c.Baseline)
	}
	span := f.ymax - f.ymin
	if span == 0 {
		span = 1
	}
	f.ymin -= 0.05 * span
	f.ymax += 0.05 * span
	if f.ymin > 0 && f.ymax > 2*span {
		// Values cluster far from zero (e.g. normalized speedups ~1.0):
		// keep the zoomed range rather than anchoring at 0.
	} else if f.ymin > 0 {
		f.ymin = 0
	}

	var b strings.Builder
	header(&b, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" text-anchor="middle" font-size="14">%s</text>`+"\n", width/2, esc(c.Title))
	axes(&b, &f, "", c.YLabel)

	groupW := (f.w - f.left - f.right) / float64(len(c.Labels))
	barW := groupW * 0.8 / float64(len(c.Series))
	for gi, g := range c.Values {
		gx := f.left + groupW*float64(gi) + groupW*0.1
		for si, v := range g {
			x := gx + barW*float64(si)
			y0, y1 := f.y(math.Max(f.ymin, 0)), f.y(v)
			if y1 > y0 {
				y0, y1 = y1, y0
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y1, barW*0.92, y0-y1, palette[si%len(palette)])
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="10">%s</text>`+"\n",
			gx+groupW*0.4, f.h-f.bot+14, esc(c.Labels[gi]))
	}
	if c.Baseline != 0 {
		y := f.y(c.Baseline)
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#333" stroke-dasharray="4,3"/>`+"\n",
			f.left, y, f.w-f.right, y)
	}
	for si, name := range c.Series {
		ly := 34 + 16*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="12" height="10" fill="%s"/>`+"\n",
			width-150, ly-8, palette[si%len(palette)])
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n", width-132, ly, esc(name))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// Heatmap renders a W x H grid of values (e.g. per-tile link load) with a
// white-to-red ramp and per-cell annotations.
type Heatmap struct {
	Title  string
	Grid   [][]float64 // [row][col]
	Width  int
	Height int
}

// Render writes the heatmap as a standalone SVG document.
func (c Heatmap) Render(w io.Writer) error {
	if len(c.Grid) == 0 || len(c.Grid[0]) == 0 {
		return fmt.Errorf("svg: empty heatmap %q", c.Title)
	}
	rows, cols := len(c.Grid), len(c.Grid[0])
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 80*cols + 40
	}
	if height <= 0 {
		height = 80*rows + 60
	}
	var max float64
	for _, row := range c.Grid {
		if len(row) != cols {
			return fmt.Errorf("svg: ragged heatmap rows")
		}
		for _, v := range row {
			if v < 0 {
				return fmt.Errorf("svg: negative heatmap value %v", v)
			}
			max = math.Max(max, v)
		}
	}
	if max == 0 {
		max = 1
	}
	cellW := float64(width-40) / float64(cols)
	cellH := float64(height-60) / float64(rows)

	var b strings.Builder
	header(&b, width, height)
	fmt.Fprintf(&b, `<text x="%d" y="18" text-anchor="middle" font-size="14">%s</text>`+"\n", width/2, esc(c.Title))
	for r, row := range c.Grid {
		for cIdx, v := range row {
			x := 20 + cellW*float64(cIdx)
			y := 30 + cellH*float64(r)
			heat := v / max
			red := 255
			gb := int(255 * (1 - heat))
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="rgb(%d,%d,%d)" stroke="#999"/>`+"\n",
				x, y, cellW, cellH, red, gb, gb)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="10">%.2f</text>`+"\n",
				x+cellW/2, y+cellH/2+4, v)
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func header(b *strings.Builder, w, h int) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="Helvetica,Arial,sans-serif">`+"\n", w, h, w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
}

// axes draws the plot frame, tick labels and axis titles.
func axes(b *strings.Builder, f *frame, xlabel, ylabel string) {
	fmt.Fprintf(b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="none" stroke="#333"/>`+"\n",
		f.left, f.top, f.w-f.left-f.right, f.h-f.top-f.bot)
	for i := 0; i <= 4; i++ {
		fy := f.ymin + (f.ymax-f.ymin)*float64(i)/4
		y := f.y(fy)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#ddd"/>`+"\n", f.left, y, f.w-f.right, y)
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="end" font-size="10">%s</text>`+"\n", f.left-4, y+3, fmtNum(fy))
		if f.xmax > f.xmin {
			fx := f.xmin + (f.xmax-f.xmin)*float64(i)/4
			x := f.x(fx)
			fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="10">%s</text>`+"\n", x, f.h-f.bot+14, fmtNum(fx))
		}
	}
	if xlabel != "" {
		fmt.Fprintf(b, `<text x="%.1f" y="%.1f" text-anchor="middle" font-size="12">%s</text>`+"\n",
			(f.left+f.w-f.right)/2, f.h-8, esc(xlabel))
	}
	if ylabel != "" {
		fmt.Fprintf(b, `<text x="14" y="%.1f" text-anchor="middle" font-size="12" transform="rotate(-90 14 %.1f)">%s</text>`+"\n",
			(f.top+f.h-f.bot)/2, (f.top+f.h-f.bot)/2, esc(ylabel))
	}
}

func fmtNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
