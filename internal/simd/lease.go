package simd

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"time"

	"nocmem/internal/exp"
)

// The coordinator's lease table: the heart of distributed sweep execution.
//
// Every simulation point of a distributed job that is not already in the
// store becomes one distPoint, keyed by its exp.RunKey. Workers poll for
// batches of pending points; each grant carries a TTL, and a point whose
// lease expires without a completion goes back on the queue for the next
// polling worker. Completions are accepted idempotently: the first valid
// completion for a key is merged into the store and fulfills every job slot
// waiting on the key; later completions (a slow worker finishing after its
// lease was re-issued, a duplicated RPC) are discarded after a byte-equality
// check against the merged result. Because every execution path computes a
// deterministic function of the key, re-leasing, duplication and worker
// death can change *who* computes a point and *how often*, but never *what*
// bytes are merged — the table only has to pick the first completion, not
// reconcile divergent ones.
//
// Failures reported by workers (a simulation error) re-lease the point up to
// maxFailures times before the point — and with it every waiting job slot —
// fails for good. Expiries do not count against that budget: a slow or dead
// worker is a scheduling event, not evidence the point itself is poisoned.
//
// Expiry is reaped lazily: every lease, completion and stats call first
// sweeps for overdue leases. Workers poll continuously, so a dead worker's
// points return to the queue within one TTL of real traffic with no
// background goroutine to leak.

type distState int

const (
	distPending distState = iota // on the queue, waiting for a worker
	distLeased                   // handed to a worker, deadline armed
	distDone                     // merged (or failed); retained briefly for duplicate detection
)

// distPoint is one config point moving through the lease table.
type distPoint struct {
	spec    RunSpec
	label   string
	key     string
	state   distState
	worker  string
	leaseID int64
	// deadline is the lease expiry (distLeased) — after it passes the point
	// is re-queued for another worker.
	deadline time.Time
	failures int
	failed   bool
	doneAt   time.Time
	// fulfill delivers the point's result to every job slot waiting on the
	// key (multiple jobs, or one job listing the key twice, share one
	// execution).
	fulfill []func(PointResult)
}

// workerInfo is one registered worker's registry entry.
type workerInfo struct {
	name      string
	lastSeen  time.Time
	granted   int64
	completed int64
}

// leaseTable coordinates workers over the pending points. Safe for
// concurrent use; fulfillment callbacks and store writes run outside the
// table lock.
type leaseTable struct {
	ttl         time.Duration
	maxFailures int
	batch       int
	// stats receives lease/relay provenance (exp.Stats counters).
	stats *exp.Runner
	// save merges an accepted summary into the content-addressed store.
	save func(key string, summary []byte)
	// lookup re-reads a merged result for duplicate byte-checking.
	lookup func(key string) ([]byte, bool)
	logf   func(format string, args ...any)

	mu         sync.Mutex
	points     map[string]*distPoint
	queue      []*distPoint
	workers    map[string]*workerInfo
	leaseSeq   int64
	workerSeq  int64
	mismatches int64
	closed     bool
}

func newLeaseTable(ttl time.Duration, batch int, stats *exp.Runner, save func(string, []byte), lookup func(string) ([]byte, bool), logf func(string, ...any)) *leaseTable {
	if ttl <= 0 {
		ttl = 2 * time.Minute
	}
	if batch <= 0 {
		batch = 4
	}
	return &leaseTable{
		ttl:         ttl,
		maxFailures: 3,
		batch:       batch,
		stats:       stats,
		save:        save,
		lookup:      lookup,
		logf:        logf,
		points:      make(map[string]*distPoint),
		workers:     make(map[string]*workerInfo),
	}
}

// register records a worker and hands back its unique id.
func (t *leaseTable) register(name string, now time.Time) string {
	if name == "" {
		name = "worker"
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.workerSeq++
	id := fmt.Sprintf("%s#%d", name, t.workerSeq)
	t.workers[id] = &workerInfo{name: name, lastSeen: now}
	return id
}

// touchLocked updates (auto-creating after a coordinator restart) a worker's
// registry entry. Caller holds t.mu.
func (t *leaseTable) touchLocked(id string, now time.Time) *workerInfo {
	wi := t.workers[id]
	if wi == nil {
		wi = &workerInfo{name: id, lastSeen: now}
		t.workers[id] = wi
	}
	wi.lastSeen = now
	return wi
}

// reapLocked requeues expired leases and drops long-done points. Caller
// holds t.mu.
func (t *leaseTable) reapLocked(now time.Time) {
	var expired, relayed int64
	for key, p := range t.points {
		switch p.state {
		case distLeased:
			if p.deadline.Before(now) {
				t.logf("lease: point %s expired on worker %s, re-leasing", p.label, p.worker)
				p.state = distPending
				p.worker = ""
				t.queue = append(t.queue, p)
				expired++
				relayed++
			}
		case distDone:
			// Done points linger only to classify late duplicates; the
			// store answers future jobs. 10 TTLs is far past any straggler.
			if now.Sub(p.doneAt) > 10*t.ttl {
				delete(t.points, key)
			}
		}
	}
	if expired > 0 {
		t.stats.AddLeaseStats(0, expired, relayed, 0, 0)
	}
}

// enqueue adds one point (or attaches to an already-queued identical key)
// and registers the callback that will receive its result.
func (t *leaseTable) enqueue(rp ResolvedSpec, fulfill func(PointResult)) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		fulfill(PointResult{Key: rp.Key, Label: rp.Label, Err: "coordinator aborted"})
		return
	}
	if p, ok := t.points[rp.Key]; ok && p.state != distDone {
		p.fulfill = append(p.fulfill, fulfill)
		t.mu.Unlock()
		return
	}
	p := &distPoint{spec: rp.Spec, label: rp.Label, key: rp.Key, state: distPending, fulfill: []func(PointResult){fulfill}}
	t.points[rp.Key] = p
	t.queue = append(t.queue, p)
	t.mu.Unlock()
}

// grant hands up to max pending points to a worker.
func (t *leaseTable) grant(worker string, max int, now time.Time) []Lease {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.touchLocked(worker, now)
	t.reapLocked(now)
	if t.closed {
		return nil
	}
	if max <= 0 || max > t.batch {
		max = t.batch
	}
	var out []Lease
	for len(out) < max && len(t.queue) > 0 {
		p := t.queue[0]
		t.queue = t.queue[1:]
		if p.state != distPending {
			continue // completed (or re-leased) while queued under an older entry
		}
		t.leaseSeq++
		p.state = distLeased
		p.worker = worker
		p.leaseID = t.leaseSeq
		p.deadline = now.Add(t.ttl)
		t.workers[worker].granted++
		out = append(out, Lease{ID: p.leaseID, Key: p.key, Spec: p.spec})
	}
	if len(out) > 0 {
		t.stats.AddLeaseStats(int64(len(out)), 0, 0, 0, 0)
	}
	return out
}

// complete merges one completion report. Idempotent: completions for
// already-done (or unknown) keys are classified as duplicates, byte-checked,
// and discarded.
func (t *leaseTable) complete(worker string, leaseID int64, key string, summary []byte, errMsg string, now time.Time) string {
	t.mu.Lock()
	wi := t.touchLocked(worker, now)
	t.reapLocked(now)
	p, ok := t.points[key]
	if !ok || p.state == distDone {
		mergedOK := ok && !p.failed
		t.mu.Unlock()
		t.stats.AddLeaseStats(0, 0, 0, 0, 1)
		if mergedOK && errMsg == "" {
			// A real duplicate of a merged result: the bytes must match the
			// merged ones — any divergence means an execution path lost
			// determinism, which must be loud, never silent.
			if merged, found := t.lookup(key); found && !bytes.Equal(merged, summary) {
				t.mu.Lock()
				t.mismatches++
				t.mu.Unlock()
				t.logf("lease: DUPLICATE MISMATCH for %s from worker %s: %d vs %d merged bytes", key, worker, len(summary), len(merged))
			}
		}
		return CompleteDuplicate
	}

	if errMsg != "" {
		p.failures++
		if p.failures >= t.maxFailures {
			p.state = distDone
			p.failed = true
			p.doneAt = now
			fulfills := p.fulfill
			p.fulfill = nil
			t.mu.Unlock()
			t.logf("lease: point %s failed for good after %d attempts: %s", p.label, p.failures, errMsg)
			pr := PointResult{Key: key, Label: p.label, Err: fmt.Sprintf("worker %s (attempt %d/%d): %s", worker, p.failures, t.maxFailures, errMsg)}
			for _, cb := range fulfills {
				cb(pr)
			}
			return CompleteFailed
		}
		if p.state == distLeased {
			p.state = distPending
			p.worker = ""
			t.queue = append(t.queue, p)
		}
		failures := p.failures
		t.mu.Unlock()
		t.stats.AddLeaseStats(0, 0, 1, 0, 0)
		t.logf("lease: point %s failed on worker %s (attempt %d/%d), re-leasing: %s", p.label, worker, failures, t.maxFailures, errMsg)
		return CompleteRetry
	}

	if p.state == distLeased && p.leaseID != leaseID {
		t.logf("lease: stale completion for %s (lease %d, current %d) — accepted, results are deterministic", p.label, leaseID, p.leaseID)
	}
	p.state = distDone
	p.doneAt = now
	fulfills := p.fulfill
	p.fulfill = nil
	wi.completed++
	t.mu.Unlock()

	// Merge outside the lock: the store write is file I/O, and duplicate
	// saves of the same key write identical bytes (atomic rename race).
	t.save(key, summary)
	t.stats.AddLeaseStats(0, 0, 0, 1, 0)
	pr := PointResult{Key: key, Label: p.label, Source: SourceWorker, Worker: worker, Summary: summary}
	for _, cb := range fulfills {
		cb(pr)
	}
	return CompleteAccepted
}

// abort fails every unfinished point (the daemon is being killed); late
// completions from workers then classify as duplicates.
func (t *leaseTable) abort() {
	t.mu.Lock()
	t.closed = true
	var pending []*distPoint
	for _, p := range t.points {
		if p.state != distDone {
			p.state = distDone
			p.failed = true
			p.doneAt = time.Now()
			pending = append(pending, p)
		}
	}
	t.mu.Unlock()
	for _, p := range pending {
		pr := PointResult{Key: p.key, Label: p.label, Err: "aborted before completion"}
		for _, cb := range p.fulfill {
			cb(pr)
		}
		p.fulfill = nil
	}
}

// snapshot renders the /statsz coordinator section.
func (t *leaseTable) snapshot(now time.Time) *DistSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reapLocked(now)
	ds := &DistSnapshot{Mismatches: t.mismatches}
	outstanding := make(map[string]int)
	for _, p := range t.points {
		switch p.state {
		case distPending:
			ds.Pending++
		case distLeased:
			ds.Leased++
			outstanding[p.worker]++
		}
	}
	for id, wi := range t.workers {
		ds.Workers = append(ds.Workers, WorkerStats{
			ID:          id,
			Granted:     wi.granted,
			Completed:   wi.completed,
			Outstanding: outstanding[id],
		})
	}
	sort.Slice(ds.Workers, func(i, j int) bool { return ds.Workers[i].ID < ds.Workers[j].ID })
	return ds
}
