package simd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"nocmem/internal/exp"
	"nocmem/internal/par"
)

// Options configures a Server. The zero value is not usable: StoreDir is
// required.
type Options struct {
	// StoreDir roots the on-disk result/checkpoint store.
	StoreDir string
	// Parallelism bounds concurrently executing simulations (0 =
	// GOMAXPROCS), shared across all jobs and clients.
	Parallelism int
	// ShareWarmup turns on warmup forking (see internal/forkrun): one
	// golden warm checkpoint per compatible group, persisted in the store
	// so it survives restarts. The daemon defaults this on.
	ShareWarmup bool
	// Logf receives server diagnostics; nil silences them.
	Logf func(format string, args ...any)

	// Distributed runs the server as a sweep coordinator: simulation points
	// of submitted jobs are leased to joined workers (POST /dist/lease)
	// instead of executing locally. Estimates and store hits still answer
	// locally — they are cheaper than a network round trip. A coordinator
	// with no joined workers holds jobs until one joins.
	Distributed bool
	// LeaseTTL bounds how long a worker may sit on a leased point before
	// the coordinator re-leases it to another worker (0 = 2 minutes).
	LeaseTTL time.Duration
	// LeaseBatch caps how many points one /dist/lease call may grant
	// (0 = 4).
	LeaseBatch int

	// JobTTL bounds how long a terminal job's in-memory record (events +
	// per-point results) outlives its completion once a client has fetched
	// it (0 = 15 minutes). Jobs nobody ever polled after completion are
	// retained 10x longer, then dropped too — results stay fetchable
	// forever via GET /results/{key}; only the job's event log expires.
	JobTTL time.Duration
}

// Server owns the job registry, the worker pool (via exp.Runner's semaphore)
// and the store. Create with New, expose with Handler, stop with Drain.
type Server struct {
	opts   Options
	store  *Store
	runner *exp.Runner
	mux    *http.ServeMux
	// leases is the distributed-sweep coordinator state; nil unless
	// Options.Distributed.
	leases *leaseTable

	// ctx is cancelled by Abort: queued points then fail fast instead of
	// starting new simulations (a drain still waits for running ones —
	// simulations are synchronous and cannot be interrupted mid-cycle).
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*job
	seq  int

	jobWG    sync.WaitGroup
	draining atomic.Bool

	jobsTotal, pointsTotal, inflight atomic.Int64
}

// job is one accepted run/sweep request working through its points.
type job struct {
	id string

	mu      sync.Mutex
	status  string
	events  []Event
	results []PointResult
	// doneAt and fetched drive the terminal-job GC: a job is collectible
	// once it reached a terminal status, a client fetched it afterwards,
	// and Options.JobTTL has passed since completion.
	doneAt  time.Time
	fetched bool
}

func (j *job) logf(format string, args ...any) {
	j.mu.Lock()
	j.events = append(j.events, Event{Seq: len(j.events), Msg: fmt.Sprintf(format, args...)})
	j.mu.Unlock()
}

func (j *job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// snapshot renders the polling view: events past cursor, plus a copy of the
// per-point results filled in so far. A cursor beyond the current end of the
// event log is an error — it can only come from a confused client (or a
// cursor meant for a different job), and silently returning an empty
// snapshot with a stale NextCursor would mask that forever.
func (j *job) snapshot(cursor int) (*JobStatus, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if cursor > len(j.events) {
		return nil, fmt.Errorf("cursor %d beyond end of event log (%d events)", cursor, len(j.events))
	}
	js := &JobStatus{ID: j.id, Status: j.status, NextCursor: len(j.events)}
	if cursor < len(j.events) {
		js.Events = append(js.Events, j.events[cursor:]...)
	}
	js.Results = append(js.Results, j.results...)
	if j.status == StatusDone || j.status == StatusFailed {
		j.fetched = true
	}
	return js, nil
}

// New opens the store and builds a server. The runner's fork cache is wired
// to the store, so warm checkpoints persist across daemon restarts.
func New(opts Options) (*Server, error) {
	if opts.StoreDir == "" {
		return nil, fmt.Errorf("simd: Options.StoreDir is required")
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.JobTTL <= 0 {
		opts.JobTTL = 15 * time.Minute
	}
	store, err := OpenStore(opts.StoreDir, opts.Logf)
	if err != nil {
		return nil, err
	}
	runner := exp.NewRunner(exp.Options{
		Parallelism: opts.Parallelism,
		ShareWarmup: opts.ShareWarmup,
	})
	runner.SetSnapshotStore(store)
	runner.SetProgress(opts.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:   opts,
		store:  store,
		runner: runner,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
	}
	if opts.Distributed {
		s.leases = newLeaseTable(opts.LeaseTTL, opts.LeaseBatch, runner,
			store.SaveResult, store.LoadResult, opts.Logf)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	s.mux.HandleFunc("POST /dist/register", s.handleRegister)
	s.mux.HandleFunc("POST /dist/lease", s.handleLease)
	s.mux.HandleFunc("POST /dist/complete", s.handleComplete)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the server's on-disk store (tests inspect its counters).
func (s *Server) Store() *Store { return s.store }

// Stats assembles the /statsz snapshot.
func (s *Server) Stats() StatsSnapshot {
	s.mu.Lock()
	retained := int64(len(s.jobs))
	s.mu.Unlock()
	ss := StatsSnapshot{
		Jobs:         s.jobsTotal.Load(),
		Points:       s.pointsTotal.Load(),
		InflightJobs: s.inflight.Load(),
		RetainedJobs: retained,
		Draining:     s.draining.Load(),
		Store:        s.store.Stats(),
		Runner:       s.runner.Stats(),
	}
	if s.leases != nil {
		ss.Dist = s.leases.snapshot(time.Now())
	}
	return ss
}

// Drain stops accepting new jobs and waits for the in-flight ones —
// everything already accepted runs to completion and lands in the store.
// Returns ctx's error if the deadline expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("simd: drain: %w", ctx.Err())
	}
}

// Abort simulates a kill: new jobs are refused and queued points of running
// jobs fail fast instead of starting. Points whose simulation is already
// executing still complete (a cycle loop cannot be interrupted), so callers
// wanting a quiet process should Drain afterwards. On a coordinator, every
// unfinished leased point fails too; completions still in flight from
// workers are then absorbed as duplicates.
func (s *Server) Abort() {
	s.draining.Store(true)
	s.cancel()
	if s.leases != nil {
		s.leases.abort()
	}
}

// --- HTTP plumbing ---

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// gcJobs drops terminal job records past their retention: JobTTL after
// completion once fetched, 10x that if nobody ever polled the finished job.
// Called opportunistically from the request handlers — a daemon nobody
// talks to holds no growing state, so it needs no background sweeper.
func (s *Server) gcJobs(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, j := range s.jobs {
		j.mu.Lock()
		terminal := j.status == StatusDone || j.status == StatusFailed
		doneAt, fetched := j.doneAt, j.fetched
		j.mu.Unlock()
		if !terminal {
			continue
		}
		ttl := s.opts.JobTTL
		if !fetched {
			ttl *= 10
		}
		if now.Sub(doneAt) > ttl {
			delete(s.jobs, id)
		}
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	s.gcJobs(time.Now())
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining, not accepting jobs")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "no points in request")
		return
	}
	points := make([]ResolvedSpec, len(req.Points))
	keys := make([]string, len(req.Points))
	for i, sp := range req.Points {
		rp, err := ResolveSpec(sp)
		if err != nil {
			httpError(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
		points[i], keys[i] = rp, rp.Key
	}

	s.mu.Lock()
	s.seq++
	j := &job{id: "j" + strconv.Itoa(s.seq), status: StatusQueued, results: make([]PointResult, len(points))}
	s.jobs[j.id] = j
	s.mu.Unlock()

	s.jobsTotal.Add(1)
	s.pointsTotal.Add(int64(len(points)))
	s.inflight.Add(1)
	s.jobWG.Add(1)
	j.logf("accepted: %d point(s)", len(points))
	go s.runJob(j, points)

	writeJSON(w, SubmitResponse{ID: j.id, Keys: keys})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.gcJobs(time.Now())
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	cursor := 0
	if q := r.URL.Query().Get("cursor"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			httpError(w, http.StatusBadRequest, "malformed cursor %q: want a non-negative integer", q)
			return
		}
		cursor = v
	}
	js, err := j.snapshot(cursor)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, js)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	payload, ok := s.store.LoadResult(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no stored result for key %q", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// --- Distributed-sweep endpoints (coordinator mode) ---

// requireCoordinator gates the /dist endpoints.
func (s *Server) requireCoordinator(w http.ResponseWriter) bool {
	if s.leases == nil {
		httpError(w, http.StatusConflict, "not a coordinator (start nocsimd with -coordinator)")
		return false
	}
	return true
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	id := s.leases.register(req.Name, time.Now())
	s.opts.Logf("worker %s registered", id)
	writeJSON(w, RegisterResponse{
		WorkerID:   id,
		LeaseTTLMS: s.leases.ttl.Milliseconds(),
		PollMS:     idlePollHint(s.leases.ttl).Milliseconds(),
	})
}

// idlePollHint picks the empty-grant polling interval: fast enough that an
// expired lease is picked up well within a TTL, slow enough not to hammer
// the coordinator.
func idlePollHint(ttl time.Duration) time.Duration {
	hint := ttl / 20
	if hint < 25*time.Millisecond {
		hint = 25 * time.Millisecond
	}
	if hint > time.Second {
		hint = time.Second
	}
	return hint
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, "lease request names no worker")
		return
	}
	leases := s.leases.grant(req.Worker, req.Max, time.Now())
	resp := LeaseResponse{Leases: leases}
	if len(leases) == 0 {
		resp.RetryMS = idlePollHint(s.leases.ttl).Milliseconds()
	}
	writeJSON(w, resp)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	if !s.requireCoordinator(w) {
		return
	}
	var req CompleteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Worker == "" || req.Key == "" {
		httpError(w, http.StatusBadRequest, "completion names no worker or no key")
		return
	}
	if req.Err == "" && len(req.Summary) == 0 {
		httpError(w, http.StatusBadRequest, "completion carries neither a summary nor an error")
		return
	}
	status := s.leases.complete(req.Worker, req.LeaseID, req.Key, req.Summary, req.Err, time.Now())
	writeJSON(w, CompleteResponse{Status: status})
}

// --- Job execution ---

// runJob drives one job's points. Locally they run over the shared worker
// pool; on a coordinator the simulation points are leased to workers
// instead. Either way results land at fixed indices, so a job's result order
// is independent of scheduling, worker count, and completion order.
func (s *Server) runJob(j *job, points []ResolvedSpec) {
	defer s.jobWG.Done()
	defer s.inflight.Add(-1)
	j.setStatus(StatusRunning)
	if s.leases != nil {
		s.runJobDistributed(j, points)
	} else {
		g := par.NewGroup(s.runner.Parallelism())
		for i, rp := range points {
			g.Go(func() error {
				s.runPoint(j, i, len(points), rp)
				return nil
			})
		}
		g.Wait()
	}
	status := StatusDone
	j.mu.Lock()
	for _, pr := range j.results {
		if pr.Err != "" {
			status = StatusFailed
			break
		}
	}
	j.status = status
	j.doneAt = time.Now()
	j.events = append(j.events, Event{Seq: len(j.events), Msg: status})
	j.mu.Unlock()
}

// runJobDistributed routes one job's points on a coordinator: estimates and
// store hits answer locally, everything else goes through the lease table
// and comes back from whichever worker completes it first.
func (s *Server) runJobDistributed(j *job, points []ResolvedSpec) {
	total := len(points)
	var wg sync.WaitGroup
	for i, rp := range points {
		if rp.Estimate {
			s.runPoint(j, i, total, rp)
			continue
		}
		if data, ok := s.store.LoadResult(rp.Key); ok {
			j.setResult(i, PointResult{Key: rp.Key, Label: rp.Label, Source: SourceStore, Summary: data})
			j.logf("point %d/%d %s: %s", i+1, total, rp.Label, SourceStore)
			continue
		}
		start := time.Now()
		wg.Add(1)
		s.leases.enqueue(rp, func(pr PointResult) {
			j.setResult(i, pr)
			if pr.Err != "" {
				j.logf("point %d/%d %s: error: %s", i+1, total, rp.Label, pr.Err)
			} else {
				j.logf("point %d/%d %s: %s(%s) in %s", i+1, total, rp.Label, pr.Source, pr.Worker,
					time.Since(start).Round(time.Millisecond))
			}
			wg.Done()
		})
	}
	wg.Wait()
}

// setResult publishes one point's outcome.
func (j *job) setResult(idx int, pr PointResult) {
	j.mu.Lock()
	j.results[idx] = pr
	j.mu.Unlock()
}

func (s *Server) runPoint(j *job, idx, total int, rp ResolvedSpec) {
	start := time.Now()
	pr := PointResult{Key: rp.Key, Label: rp.Label}
	defer func() {
		j.setResult(idx, pr)
		if pr.Err != "" {
			j.logf("point %d/%d %s: error: %s", idx+1, total, rp.Label, pr.Err)
		} else {
			j.logf("point %d/%d %s: %s in %s", idx+1, total, rp.Label, pr.Source,
				time.Since(start).Round(time.Millisecond))
		}
	}()

	if rp.Estimate {
		data, err := ExecuteSpec(s.runner, rp)
		if err != nil {
			pr.Err = err.Error()
			return
		}
		pr.Source, pr.Summary = SourceEstimate, data
		return
	}

	// Disk first: a key simulated in any previous life of this store is
	// served without touching the runner.
	if data, ok := s.store.LoadResult(rp.Key); ok {
		pr.Source, pr.Summary = SourceStore, data
		return
	}
	if err := s.ctx.Err(); err != nil {
		pr.Err = "aborted before start"
		return
	}
	// The runner's singleflight coalesces concurrent identical requests
	// (same key, any client) onto one execution; both requesters then
	// persist identical bytes, so the double SaveResult is a harmless
	// rename race.
	data, err := ExecuteSpec(s.runner, rp)
	if err != nil {
		pr.Err = err.Error()
		return
	}
	s.store.SaveResult(rp.Key, data)
	pr.Source, pr.Summary = SourceSim, data
}
