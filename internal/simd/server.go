package simd

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"nocmem/internal/analytic"
	"nocmem/internal/config"
	"nocmem/internal/exp"
	"nocmem/internal/par"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

// Options configures a Server. The zero value is not usable: StoreDir is
// required.
type Options struct {
	// StoreDir roots the on-disk result/checkpoint store.
	StoreDir string
	// Parallelism bounds concurrently executing simulations (0 =
	// GOMAXPROCS), shared across all jobs and clients.
	Parallelism int
	// ShareWarmup turns on warmup forking (see internal/forkrun): one
	// golden warm checkpoint per compatible group, persisted in the store
	// so it survives restarts. The daemon defaults this on.
	ShareWarmup bool
	// Logf receives server diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Server owns the job registry, the worker pool (via exp.Runner's semaphore)
// and the store. Create with New, expose with Handler, stop with Drain.
type Server struct {
	opts   Options
	store  *Store
	runner *exp.Runner
	mux    *http.ServeMux

	// ctx is cancelled by Abort: queued points then fail fast instead of
	// starting new simulations (a drain still waits for running ones —
	// simulations are synchronous and cannot be interrupted mid-cycle).
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	jobs map[string]*job
	seq  int

	jobWG    sync.WaitGroup
	draining atomic.Bool

	jobsTotal, pointsTotal, inflight atomic.Int64
}

// job is one accepted run/sweep request working through its points.
type job struct {
	id string

	mu      sync.Mutex
	status  string
	events  []Event
	results []PointResult
}

func (j *job) logf(format string, args ...any) {
	j.mu.Lock()
	j.events = append(j.events, Event{Seq: len(j.events), Msg: fmt.Sprintf(format, args...)})
	j.mu.Unlock()
}

func (j *job) setStatus(s string) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// snapshot renders the polling view: events past cursor, plus a copy of the
// per-point results filled in so far.
func (j *job) snapshot(cursor int) *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	js := &JobStatus{ID: j.id, Status: j.status, NextCursor: len(j.events)}
	if cursor < 0 {
		cursor = 0
	}
	if cursor < len(j.events) {
		js.Events = append(js.Events, j.events[cursor:]...)
	}
	js.Results = append(js.Results, j.results...)
	return js
}

// resolvedPoint is a RunSpec after validation: profiles looked up, label and
// store key fixed.
type resolvedPoint struct {
	cfg      config.Config
	apps     []trace.Profile
	label    string
	key      string
	estimate bool
}

// New opens the store and builds a server. The runner's fork cache is wired
// to the store, so warm checkpoints persist across daemon restarts.
func New(opts Options) (*Server, error) {
	if opts.StoreDir == "" {
		return nil, fmt.Errorf("simd: Options.StoreDir is required")
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	store, err := OpenStore(opts.StoreDir, opts.Logf)
	if err != nil {
		return nil, err
	}
	runner := exp.NewRunner(exp.Options{
		Parallelism: opts.Parallelism,
		ShareWarmup: opts.ShareWarmup,
	})
	runner.SetSnapshotStore(store)
	runner.SetProgress(opts.Logf)
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:   opts,
		store:  store,
		runner: runner,
		ctx:    ctx,
		cancel: cancel,
		jobs:   make(map[string]*job),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /run", s.handleRun)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /results/{key}", s.handleResult)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /statsz", s.handleStats)
	return s, nil
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store returns the server's on-disk store (tests inspect its counters).
func (s *Server) Store() *Store { return s.store }

// Stats assembles the /statsz snapshot.
func (s *Server) Stats() StatsSnapshot {
	return StatsSnapshot{
		Jobs:         s.jobsTotal.Load(),
		Points:       s.pointsTotal.Load(),
		InflightJobs: s.inflight.Load(),
		Draining:     s.draining.Load(),
		Store:        s.store.Stats(),
		Runner:       s.runner.Stats(),
	}
}

// Drain stops accepting new jobs and waits for the in-flight ones —
// everything already accepted runs to completion and lands in the store.
// Returns ctx's error if the deadline expires first.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.jobWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("simd: drain: %w", ctx.Err())
	}
}

// Abort simulates a kill: new jobs are refused and queued points of running
// jobs fail fast instead of starting. Points whose simulation is already
// executing still complete (a cycle loop cannot be interrupted), so callers
// wanting a quiet process should Drain afterwards.
func (s *Server) Abort() {
	s.draining.Store(true)
	s.cancel()
}

// --- HTTP plumbing ---

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// resolve validates one spec and fixes its label and store key.
func (s *Server) resolve(sp RunSpec) (resolvedPoint, error) {
	var rp resolvedPoint
	rp.cfg, rp.estimate = sp.Config, sp.Estimate
	if err := rp.cfg.Validate(); err != nil {
		return rp, err
	}
	switch {
	case sp.Workload > 0 && len(sp.Apps) > 0:
		return rp, fmt.Errorf("point names both a workload and an explicit app list")
	case sp.Workload > 0:
		wl, err := workload.Get(sp.Workload)
		if err != nil {
			return rp, err
		}
		if rp.apps, err = wl.Profiles(); err != nil {
			return rp, err
		}
		rp.label = wl.Name()
	case len(sp.Apps) > 0:
		for _, name := range sp.Apps {
			p, err := trace.Lookup(name)
			if err != nil {
				return rp, err
			}
			rp.apps = append(rp.apps, p)
		}
		rp.label = "apps:" + strings.Join(sp.Apps, "+")
	default:
		return rp, fmt.Errorf("point names neither a workload nor an app list")
	}
	if len(rp.apps) > rp.cfg.Mesh.Nodes() {
		return rp, fmt.Errorf("%d applications for %d tiles", len(rp.apps), rp.cfg.Mesh.Nodes())
	}
	rp.key = exp.RunKey(rp.cfg, rp.label)
	if rp.estimate {
		rp.key = "estimate|" + rp.key
	}
	return rp, nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining, not accepting jobs")
		return
	}
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if len(req.Points) == 0 {
		httpError(w, http.StatusBadRequest, "no points in request")
		return
	}
	points := make([]resolvedPoint, len(req.Points))
	keys := make([]string, len(req.Points))
	for i, sp := range req.Points {
		rp, err := s.resolve(sp)
		if err != nil {
			httpError(w, http.StatusBadRequest, "point %d: %v", i, err)
			return
		}
		points[i], keys[i] = rp, rp.key
	}

	s.mu.Lock()
	s.seq++
	j := &job{id: "j" + strconv.Itoa(s.seq), status: StatusQueued, results: make([]PointResult, len(points))}
	s.jobs[j.id] = j
	s.mu.Unlock()

	s.jobsTotal.Add(1)
	s.pointsTotal.Add(int64(len(points)))
	s.inflight.Add(1)
	s.jobWG.Add(1)
	j.logf("accepted: %d point(s)", len(points))
	go s.runJob(j, points)

	writeJSON(w, SubmitResponse{ID: j.id, Keys: keys})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.mu.Unlock()
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	cursor, _ := strconv.Atoi(r.URL.Query().Get("cursor"))
	writeJSON(w, j.snapshot(cursor))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	payload, ok := s.store.LoadResult(key)
	if !ok {
		httpError(w, http.StatusNotFound, "no stored result for key %q", key)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// --- Job execution ---

// runJob drives one job's points over the shared worker pool. Points run
// concurrently (bounded by the runner's semaphore and by the pool group),
// but results land at fixed indices, so a job's result order is independent
// of scheduling.
func (s *Server) runJob(j *job, points []resolvedPoint) {
	defer s.jobWG.Done()
	defer s.inflight.Add(-1)
	j.setStatus(StatusRunning)
	g := par.NewGroup(s.runner.Parallelism())
	for i, rp := range points {
		g.Go(func() error {
			s.runPoint(j, i, len(points), rp)
			return nil
		})
	}
	g.Wait()
	status := StatusDone
	j.mu.Lock()
	for _, pr := range j.results {
		if pr.Err != "" {
			status = StatusFailed
			break
		}
	}
	j.status = status
	j.events = append(j.events, Event{Seq: len(j.events), Msg: status})
	j.mu.Unlock()
}

// setResult publishes one point's outcome.
func (j *job) setResult(idx int, pr PointResult) {
	j.mu.Lock()
	j.results[idx] = pr
	j.mu.Unlock()
}

func (s *Server) runPoint(j *job, idx, total int, rp resolvedPoint) {
	start := time.Now()
	pr := PointResult{Key: rp.key, Label: rp.label}
	defer func() {
		j.setResult(idx, pr)
		if pr.Err != "" {
			j.logf("point %d/%d %s: error: %s", idx+1, total, rp.label, pr.Err)
		} else {
			j.logf("point %d/%d %s: %s in %s", idx+1, total, rp.label, pr.Source,
				time.Since(start).Round(time.Millisecond))
		}
	}()

	if rp.estimate {
		padded := make([]trace.Profile, rp.cfg.Mesh.Nodes())
		copy(padded, rp.apps)
		est, err := analytic.Predict(rp.cfg, padded)
		if err != nil {
			pr.Err = err.Error()
			return
		}
		data, err := json.Marshal(est.Summary())
		if err != nil {
			pr.Err = err.Error()
			return
		}
		pr.Source, pr.Summary = SourceEstimate, data
		return
	}

	// Disk first: a key simulated in any previous life of this store is
	// served without touching the runner.
	if data, ok := s.store.LoadResult(rp.key); ok {
		pr.Source, pr.Summary = SourceStore, data
		return
	}
	if err := s.ctx.Err(); err != nil {
		pr.Err = "aborted before start"
		return
	}
	// The runner's singleflight coalesces concurrent identical requests
	// (same key, any client) onto one execution; both requesters then
	// persist identical bytes, so the double SaveResult is a harmless
	// rename race.
	res, err := s.runner.RunConfig(rp.cfg, rp.apps, rp.label)
	if err != nil {
		pr.Err = err.Error()
		return
	}
	data, err := json.Marshal(res.Summary())
	if err != nil {
		pr.Err = err.Error()
		return
	}
	s.store.SaveResult(rp.key, data)
	pr.Source, pr.Summary = SourceSim, data
}
