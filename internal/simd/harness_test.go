// Multi-client tester harness for the simulation daemon, in the
// config-object idiom of the distributed-systems rigs this package's issue
// names as exemplar: one harness object owns the in-process daemon (on a
// temp or caller-pinned store), a fleet of clients, and begin()/end()
// bookkeeping (wall time, goroutine watermark, stats deltas); tests drive
// concurrent clients through overlapping run/sweep grids and assert the
// daemon's three contracts from the outside:
//
//  1. byte-identical results vs a direct exp.Runner execution,
//  2. exactly-once simulation per unique config key, however many clients
//     race on it (observed via /statsz),
//  3. clean shutdown: drain leaves no goroutines behind.
package simd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"nocmem/internal/config"
	"nocmem/internal/exp"
	"nocmem/internal/simd"
	"nocmem/internal/simdclient"
	"nocmem/internal/trace"
)

// testCfg is the harness's base configuration: the 16-core baseline with
// windows short enough that a policy grid stays in test-suite territory.
func testCfg() config.Config {
	cfg := config.Baseline16()
	cfg.Run.WarmupCycles = 3_000
	cfg.Run.MeasureCycles = 6_000
	cfg.S1.UpdatePeriod = 1_500
	return cfg
}

// testApps is the placement every harness grid runs: explicit app lists,
// exercising the daemon's "apps" addressing mode.
var testApps = []string{"mcf", "lbm", "milc"}

// appsLabel mirrors the server's label for an explicit app list, so direct
// runs key identically.
func appsLabel(apps []string) string {
	label := "apps:"
	for i, a := range apps {
		if i > 0 {
			label += "+"
		}
		label += a
	}
	return label
}

// policyGrid is the canonical overlapping sweep: the policy cross product on
// one substrate, all sharing a single warmup snapshot group.
func policyGrid() []simd.RunSpec {
	var points []simd.RunSpec
	for _, s := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
		points = append(points, simd.RunSpec{Config: testCfg().WithSchemes(s[0], s[1]), Apps: testApps})
	}
	return points
}

// harness owns one in-process daemon and n clients.
type harness struct {
	t   *testing.T
	dir string // store directory, stable across restart()

	srv     *simd.Server
	ts      *httptest.Server
	clients []*simdclient.Client

	// begin()/end() statistics
	t0     time.Time // time at which begin() was called
	g0     int       // goroutines at makeHarness, the leak baseline
	desc   string
	parall int

	// coordinator-mode knobs (zero values boot a plain daemon)
	distributed bool
	leaseTTL    time.Duration
	jobTTL      time.Duration

	// stopWorkers cancels every worker started with startWorker; workerWG
	// waits for their loops to return.
	stopWorkers context.CancelFunc
	workerCtx   context.Context
	workerWG    sync.WaitGroup
}

// makeHarness boots a daemon on dir (t.TempDir() if empty) and connects n
// clients. parallelism bounds the daemon's worker pool (0 = all CPUs).
func makeHarness(t *testing.T, n int, dir string, parallelism int) *harness {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	h := &harness{t: t, dir: dir, g0: runtime.NumGoroutine(), parall: parallelism}
	h.boot(n)
	return h
}

// makeDistHarness boots a coordinator daemon (Options.Distributed) with the
// given lease TTL and connects n clients. Join workers with startWorker.
func makeDistHarness(t *testing.T, n int, leaseTTL time.Duration) *harness {
	t.Helper()
	h := &harness{
		t: t, dir: t.TempDir(), g0: runtime.NumGoroutine(),
		distributed: true, leaseTTL: leaseTTL,
	}
	h.boot(n)
	return h
}

// startWorker joins one in-process worker loop to the coordinator. All
// workers stop (and are waited for) in end()/shutdown.
func (h *harness) startWorker(name string, parallelism int) {
	h.t.Helper()
	if h.workerCtx == nil {
		h.workerCtx, h.stopWorkers = context.WithCancel(context.Background())
	}
	c := simdclient.New(h.ts.URL)
	h.workerWG.Add(1)
	go func() {
		defer h.workerWG.Done()
		defer c.Close()
		simdclient.RunWorker(h.workerCtx, c, simdclient.WorkerOptions{
			Name:        name,
			Parallelism: parallelism,
			ShareWarmup: true,
			Logf: func(format string, args ...any) {
				h.t.Logf(name+": "+format, args...)
			},
		})
	}()
}

// boot starts (or restarts) the daemon and clients on h.dir.
func (h *harness) boot(n int) {
	h.t.Helper()
	srv, err := simd.New(simd.Options{
		StoreDir:    h.dir,
		Parallelism: h.parall,
		ShareWarmup: true,
		Logf:        h.t.Logf,
		Distributed: h.distributed,
		LeaseTTL:    h.leaseTTL,
		JobTTL:      h.jobTTL,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.srv = srv
	h.ts = httptest.NewServer(srv.Handler())
	h.clients = nil
	for i := 0; i < n; i++ {
		c := simdclient.New(h.ts.URL)
		c.Poll = 2 * time.Millisecond
		h.clients = append(h.clients, c)
	}
}

func (h *harness) begin(desc string) {
	h.desc = desc
	h.t0 = time.Now()
	h.t.Logf("%s ...", desc)
}

// end drains the daemon, closes everything, verifies no goroutines leaked,
// and prints the run's stats line.
func (h *harness) end() {
	h.t.Helper()
	st := h.stats()
	h.shutdown()
	h.checkLeaks()
	h.t.Logf("  ... %s passed — %.1fs, %d jobs, %d points, %d simulated, %d store hits, %d warmups",
		h.desc, time.Since(h.t0).Seconds(), st.Jobs, st.Points,
		st.Runner.Executed, st.Store.ResultHits, st.Runner.Warmups)
}

// shutdown gracefully drains and closes daemon + clients.
func (h *harness) shutdown() {
	h.t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := h.srv.Drain(ctx); err != nil {
		h.t.Fatal(err)
	}
	h.close()
}

// kill simulates a crash: abort the daemon (queued points fail fast), wait
// out the already-executing simulation, and drop the process state. Only
// what reached the store survives.
func (h *harness) kill() {
	h.t.Helper()
	h.srv.Abort()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := h.srv.Drain(ctx); err != nil {
		h.t.Fatal(err)
	}
	h.close()
}

func (h *harness) close() {
	if h.stopWorkers != nil {
		h.stopWorkers()
		h.workerWG.Wait()
		h.workerCtx, h.stopWorkers = nil, nil
	}
	for _, c := range h.clients {
		c.Close()
	}
	h.ts.Close()
}

// restart gracefully drains the daemon, then boots a fresh one on the same
// store directory — the fresh process has empty in-memory caches, so
// whatever it serves without simulating came from disk.
func (h *harness) restart() {
	h.t.Helper()
	n := len(h.clients)
	h.shutdown()
	h.boot(n)
}

// restartAfterKill reboots on the same store after kill().
func (h *harness) restartAfterKill() {
	h.t.Helper()
	h.boot(1)
}

func (h *harness) stats() simd.StatsSnapshot {
	h.t.Helper()
	st, err := h.clients[0].Stats(context.Background())
	if err != nil {
		h.t.Fatal(err)
	}
	return st
}

// checkLeaks polls for the goroutine count to return to the baseline.
func (h *harness) checkLeaks() {
	h.t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= h.g0+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			h.t.Fatalf("goroutine leak after shutdown: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), h.g0, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// run submits points through client ci and waits; fails the test on any
// point error.
func (h *harness) run(ci int, points []simd.RunSpec) *simd.JobStatus {
	h.t.Helper()
	js, err := h.clients[ci].Run(context.Background(), simd.RunRequest{Points: points})
	if err != nil {
		h.t.Fatal(err)
	}
	if e := js.Err(); e != "" {
		h.t.Fatalf("job %s failed: %s", js.ID, e)
	}
	return js
}

// directRunner executes the same grids outside the daemon — the ground
// truth for byte-identical comparison. Same ShareWarmup mode, so forked
// daemon runs compare against forked direct runs.
type directRunner struct {
	r *exp.Runner
}

func newDirect() *directRunner {
	return &directRunner{r: exp.NewRunner(exp.Options{ShareWarmup: true})}
}

// summary runs one spec directly and returns its canonical summary bytes.
func (d *directRunner) summary(t *testing.T, sp simd.RunSpec) []byte {
	t.Helper()
	var profiles []trace.Profile
	for _, name := range sp.Apps {
		profiles = append(profiles, trace.MustLookup(name))
	}
	res, err := d.r.RunConfig(sp.Config, profiles, appsLabel(sp.Apps))
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res.Summary())
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestHarnessConcurrentClients is the headline rig: N clients concurrently
// submit overlapping run and sweep grids; every unique config key must
// simulate exactly once, every client must read byte-identical results, and
// shutdown must be clean.
func TestHarnessConcurrentClients(t *testing.T) {
	const nclients = 4
	h := makeHarness(t, nclients, "", 0)
	h.begin(fmt.Sprintf("%d clients racing on one overlapping policy grid", nclients))

	grid := policyGrid()
	var (
		mu      sync.Mutex
		byKey   = map[string][]json.RawMessage{}
		wg      sync.WaitGroup
		errOnce sync.Once
		failure error
	)
	for ci := 0; ci < nclients; ci++ {
		// Client ci submits the full grid as one sweep AND each point as an
		// individual run, so identical keys arrive both batched and single,
		// from every client at once.
		wg.Add(1)
		go func() {
			defer wg.Done()
			jobs := [][]simd.RunSpec{grid}
			for _, p := range grid {
				jobs = append(jobs, []simd.RunSpec{p})
			}
			for _, points := range jobs {
				js, err := h.clients[ci].Run(context.Background(), simd.RunRequest{Points: points})
				if err == nil && js.Err() != "" {
					err = fmt.Errorf("job %s: %s", js.ID, js.Err())
				}
				if err != nil {
					errOnce.Do(func() { failure = err })
					return
				}
				mu.Lock()
				for _, pr := range js.Results {
					byKey[pr.Key] = append(byKey[pr.Key], pr.Summary)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if failure != nil {
		t.Fatal(failure)
	}

	if len(byKey) != len(grid) {
		t.Fatalf("%d unique keys observed, want %d", len(byKey), len(grid))
	}
	// Every response for a key — whichever client, batched or single,
	// simulated or store-served — is byte-identical, and matches a direct
	// runner execution.
	direct := newDirect()
	for i, sp := range grid {
		key := exp.RunKey(sp.Config, appsLabel(sp.Apps))
		got := byKey[key]
		if len(got) != 2*nclients {
			t.Fatalf("key %d served %d times, want %d", i, len(got), 2*nclients)
		}
		want := direct.summary(t, sp)
		for _, g := range got {
			if !bytes.Equal(g, want) {
				t.Errorf("grid point %d: daemon summary differs from direct runner\ndaemon: %s\ndirect: %s", i, g, want)
				break
			}
		}
	}

	st := h.stats()
	if st.Runner.Executed != int64(len(grid)) {
		t.Errorf("executed %d simulations for %d unique keys — singleflight failed", st.Runner.Executed, len(grid))
	}
	if st.Runner.Warmups != 1 {
		t.Errorf("executed %d warmups, want 1 (policy grid shares one snapshot group)", st.Runner.Warmups)
	}
	if total := 2 * nclients * len(grid); int(st.Points) != total {
		t.Errorf("served %d points, want %d", st.Points, total)
	}
	if st.InflightJobs != 0 {
		t.Errorf("%d jobs still inflight after all clients returned", st.InflightJobs)
	}
	h.end()
}

// TestHarnessRestartServesFromStore: a daemon restarted on the same store
// serves a previously-completed sweep entirely from disk — zero simulations,
// zero warmup cycles — with byte-identical results.
func TestHarnessRestartServesFromStore(t *testing.T) {
	h := makeHarness(t, 1, "", 0)
	h.begin("identical sweep across a daemon restart")

	grid := policyGrid()
	first := h.run(0, grid)
	if st := h.stats(); st.Runner.Executed != int64(len(grid)) {
		t.Fatalf("first sweep executed %d sims, want %d", st.Runner.Executed, len(grid))
	}

	h.restart()

	second := h.run(0, grid)
	for i := range grid {
		if second.Results[i].Source != simd.SourceStore {
			t.Errorf("point %d source %q after restart, want %q", i, second.Results[i].Source, simd.SourceStore)
		}
		if !bytes.Equal(first.Results[i].Summary, second.Results[i].Summary) {
			t.Errorf("point %d: result differs across restart", i)
		}
	}
	st := h.stats()
	if st.Runner.Executed != 0 {
		t.Errorf("restarted daemon executed %d sims for a completed sweep, want 0", st.Runner.Executed)
	}
	if st.Runner.Warmups != 0 {
		t.Errorf("restarted daemon executed %d warmups, want 0", st.Runner.Warmups)
	}
	if st.Store.ResultHits < int64(len(grid)) {
		t.Errorf("store served %d hits, want >= %d", st.Store.ResultHits, len(grid))
	}
	h.end()
}

// TestHarnessWarmCheckpointReuseAcrossRestart: fresh measurement configs
// submitted after a restart fork from the golden warm checkpoint persisted
// by the previous daemon life — simulations run, but zero warmup cycles
// execute, observed via /statsz.
func TestHarnessWarmCheckpointReuseAcrossRestart(t *testing.T) {
	h := makeHarness(t, 1, "", 0)
	h.begin("warm-checkpoint reuse across a daemon restart")

	h.run(0, policyGrid())
	if st := h.stats(); st.Runner.Warmups != 1 {
		t.Fatalf("first grid executed %d warmups, want 1", st.Runner.Warmups)
	}

	h.restart()

	// New keys (threshold factors never run before), same snapshot group.
	var fresh []simd.RunSpec
	for _, f := range []float64{0.9, 1.3} {
		cfg := testCfg().WithSchemes(true, false)
		cfg.S1.ThresholdFactor = f
		fresh = append(fresh, simd.RunSpec{Config: cfg, Apps: testApps})
	}
	js := h.run(0, fresh)
	for i := range fresh {
		if js.Results[i].Source != simd.SourceSim {
			t.Errorf("fresh point %d source %q, want %q (keys were never simulated)", i, js.Results[i].Source, simd.SourceSim)
		}
	}
	st := h.stats()
	if st.Runner.Executed != int64(len(fresh)) {
		t.Errorf("executed %d sims, want %d", st.Runner.Executed, len(fresh))
	}
	if st.Runner.Warmups != 0 {
		t.Errorf("executed %d warmup windows, want 0 — the golden checkpoint should have come from disk", st.Runner.Warmups)
	}
	if st.Runner.SnapshotDiskHits != 1 {
		t.Errorf("%d snapshot disk hits, want 1", st.Runner.SnapshotDiskHits)
	}
	if st.Runner.Forked != int64(len(fresh)) {
		t.Errorf("forked %d runs from the warm image, want %d", st.Runner.Forked, len(fresh))
	}

	// And the forked-from-disk results equal direct forked execution.
	direct := newDirect()
	for i, sp := range fresh {
		if want := direct.summary(t, sp); !bytes.Equal(js.Results[i].Summary, want) {
			t.Errorf("fresh point %d: daemon summary differs from direct runner", i)
		}
	}
	h.end()
}
