// Regression tests for the daemon's request-surface bugfixes: strict cursor
// validation on GET /jobs/{id}, and the terminal-job GC that keeps the
// in-memory jobs map bounded under churn.
package simd_test

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"nocmem/internal/simd"
)

// estimatePoint is an instant, simulation-free point for request-surface
// tests: the closed-form model answers in microseconds.
func estimatePoint() simd.RunSpec {
	return simd.RunSpec{Config: testCfg(), Apps: testApps, Estimate: true}
}

// TestCursorValidation: malformed and out-of-range cursors are 400s, not
// silently-zero polls; valid cursors (including the exact end of the event
// log) still work.
func TestCursorValidation(t *testing.T) {
	h := makeHarness(t, 1, "", 0)
	h.begin("malformed and out-of-range cursors rejected with 400")
	ctx := context.Background()

	js := h.run(0, []simd.RunSpec{estimatePoint()})
	for _, q := range []string{"abc", "-1", "1.5", "1e3", "0x10", "%20"} {
		resp, err := http.Get(h.ts.URL + "/jobs/" + js.ID + "?cursor=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("cursor %q: status %d, want %d", q, resp.StatusCode, http.StatusBadRequest)
		}
	}

	// A cursor past the end of the event log can only come from a confused
	// client; it must be an error, not an empty success.
	if _, err := h.clients[0].Job(ctx, js.ID, js.NextCursor+50); err == nil {
		t.Error("cursor beyond the event log accepted, want 400")
	} else if !strings.Contains(err.Error(), "beyond end") {
		t.Errorf("beyond-end cursor error %q, want a 'beyond end' explanation", err)
	}

	// Cursor == len(events) is the normal "no new events" poll.
	tail, err := h.clients[0].Job(ctx, js.ID, js.NextCursor)
	if err != nil {
		t.Fatalf("cursor at exact end rejected: %v", err)
	}
	if len(tail.Events) != 0 {
		t.Errorf("poll at end returned %d events, want 0", len(tail.Events))
	}
	h.end()
}

// TestTerminalJobGC: churning many short jobs through the daemon leaves the
// in-memory jobs map bounded — fetched terminal jobs are collected after the
// TTL, unfetched ones are retained 10x longer — and /statsz reports the
// retained count accurately while the lifetime totals keep growing.
func TestTerminalJobGC(t *testing.T) {
	const ttl = 40 * time.Millisecond
	h := &harness{t: t, dir: t.TempDir(), g0: runtime.NumGoroutine(), jobTTL: ttl}
	h.boot(1)
	h.begin(fmt.Sprintf("job map bounded under churn (ttl %s)", ttl))
	ctx := context.Background()

	const churn = 30
	var firstID string
	for i := 0; i < churn; i++ {
		js := h.run(0, []simd.RunSpec{estimatePoint()}) // Run waits: fetched after terminal
		if i == 0 {
			firstID = js.ID
		}
	}
	time.Sleep(2 * ttl)

	// Any request sweeps the map; the fetched terminal jobs are gone.
	if _, err := h.clients[0].Job(ctx, firstID, 0); err == nil {
		t.Errorf("job %s still fetchable %s after completion, want collected", firstID, 2*ttl)
	} else if !strings.Contains(err.Error(), "no such job") {
		t.Errorf("collected job error %q, want 'no such job'", err)
	}
	st := h.stats()
	if st.Jobs != churn {
		t.Errorf("lifetime job counter %d, want %d (GC must not rewind totals)", st.Jobs, churn)
	}
	if st.RetainedJobs > 2 {
		t.Errorf("%d job records retained after churn + TTL, want <= 2", st.RetainedJobs)
	}

	// An unfetched terminal job survives the fetched TTL...
	sub, err := h.clients[0].Submit(ctx, simd.RunRequest{Points: []simd.RunSpec{estimatePoint()}})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * ttl) // done long ago, never polled since
	js, err := h.clients[0].Job(ctx, sub.ID, 0)
	if err != nil {
		t.Fatalf("unfetched terminal job collected after 1x TTL: %v", err)
	}
	if !js.Done() {
		t.Fatalf("estimate job still %q after %s", js.Status, 3*ttl)
	}
	// ...and that poll marked it fetched, so now the normal TTL applies.
	time.Sleep(2 * ttl)
	if _, err := h.clients[0].Job(ctx, sub.ID, 0); err == nil {
		t.Error("fetched terminal job still alive after TTL, want collected")
	}
	h.end()
}
