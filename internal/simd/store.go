package simd

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"nocmem/internal/snapshot"
)

// Store is the daemon's on-disk content-addressed store. Two namespaces
// share one directory:
//
//	<dir>/results/<sha256(key)>.res — result summaries, keyed by the run
//	    key (config.Config.Key() + "|" + placement label, see exp.RunKey)
//	<dir>/snaps/<sha256(key)>.snap  — golden warm checkpoints, keyed by
//	    forkrun.Key (config.SnapshotKey() + warmup + placement), so one
//	    warm image serves the whole policy cross product of its group
//
// Every file is a snapshot.EncodeEntry frame: the full key (verified on
// load, so a hash collision or a misplaced file reads as a miss, not as a
// wrong answer) plus a CRC-64 over key and payload. A file that fails to
// decode is evicted on the spot and reported as a miss — corruption costs a
// re-run, never a panic or a poisoned cache. Writes go through a temp file
// and an atomic rename, so a crash mid-write leaves either the old entry or
// none.
//
// A Store is safe for concurrent use: entry files are immutable once
// renamed into place, and concurrent saves of the same key write identical
// bytes (results and checkpoints are deterministic functions of the key).
type Store struct {
	dir  string
	logf func(format string, args ...any)

	resultHits, resultMisses atomic.Int64
	snapHits, snapMisses     atomic.Int64
	evictions                atomic.Int64
}

// OpenStore opens (creating if needed) a store rooted at dir. logf receives
// best-effort I/O diagnostics; nil silences them.
func OpenStore(dir string, logf func(format string, args ...any)) (*Store, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	for _, sub := range []string{"results", "snaps"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("simd: opening store: %w", err)
		}
	}
	return &Store{dir: dir, logf: logf}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Stats returns the store's traffic counters.
func (st *Store) Stats() StoreStats {
	return StoreStats{
		ResultHits:   st.resultHits.Load(),
		ResultMisses: st.resultMisses.Load(),
		SnapHits:     st.snapHits.Load(),
		SnapMisses:   st.snapMisses.Load(),
		Evictions:    st.evictions.Load(),
	}
}

func hashKey(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

func (st *Store) resultPath(key string) string {
	return filepath.Join(st.dir, "results", hashKey(key)+".res")
}

func (st *Store) snapPath(key string) string {
	return filepath.Join(st.dir, "snaps", hashKey(key)+".snap")
}

// load reads and verifies one entry file. Absent files are silent misses;
// present-but-invalid files (truncated, bit-flipped, or holding a different
// key) are evicted and logged.
func (st *Store) load(path, key string) ([]byte, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	storedKey, payload, err := snapshot.DecodeEntry(data)
	if err == nil && storedKey == key {
		return payload, true
	}
	if err != nil {
		st.logf("store: evicting corrupt entry %s: %v", filepath.Base(path), err)
	} else {
		st.logf("store: evicting %s: holds key %q, wanted %q", filepath.Base(path), storedKey, key)
	}
	if rmErr := os.Remove(path); rmErr != nil && !os.IsNotExist(rmErr) {
		st.logf("store: evicting %s: %v", filepath.Base(path), rmErr)
	}
	st.evictions.Add(1)
	return nil, false
}

// save atomically writes one entry file. Best-effort: persistence failures
// are logged, not surfaced — the in-memory result is still correct.
func (st *Store) save(path, key string, payload []byte) {
	data, err := snapshot.EncodeEntry(key, payload)
	if err != nil {
		st.logf("store: encoding %s: %v", filepath.Base(path), err)
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		st.logf("store: writing %s: %v", filepath.Base(path), err)
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		os.Remove(tmp.Name())
		st.logf("store: writing %s: %v", filepath.Base(path), werr)
	}
}

// LoadResult returns the stored summary JSON for a run key.
func (st *Store) LoadResult(key string) ([]byte, bool) {
	payload, ok := st.load(st.resultPath(key), key)
	if ok {
		st.resultHits.Add(1)
	} else {
		st.resultMisses.Add(1)
	}
	return payload, ok
}

// SaveResult persists the summary JSON of a completed run.
func (st *Store) SaveResult(key string, summary []byte) {
	st.save(st.resultPath(key), key, summary)
}

// LoadSnapshot, SaveSnapshot and DeleteSnapshot implement
// forkrun.SnapshotStore over the snaps/ namespace.
func (st *Store) LoadSnapshot(key string) ([]byte, bool) {
	img, ok := st.load(st.snapPath(key), key)
	if ok {
		st.snapHits.Add(1)
	} else {
		st.snapMisses.Add(1)
	}
	return img, ok
}

// SaveSnapshot persists one warm checkpoint image.
func (st *Store) SaveSnapshot(key string, img []byte) {
	st.save(st.snapPath(key), key, img)
}

// DeleteSnapshot ejects one warm checkpoint (forkrun calls this when a
// store image fails to restore).
func (st *Store) DeleteSnapshot(key string) {
	if err := os.Remove(st.snapPath(key)); err != nil && !os.IsNotExist(err) {
		st.logf("store: deleting snapshot: %v", err)
	}
}
