// Unreliable-network harness: workers talk to the coordinator through a
// transport that drops requests before send, drops responses after the
// server processed them (the idempotency killer), duplicates RPCs, and
// injects delays — and one worker is killed mid-sweep on top. The merged
// output must still be byte-identical to a direct single-process run.
package simd_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"

	"nocmem/internal/simd"
	"nocmem/internal/simdclient"
)

// flakyTransport wraps a real transport with seeded fault injection.
type flakyTransport struct {
	base *http.Transport

	mu  sync.Mutex
	rng *rand.Rand

	droppedBefore, droppedAfter, duplicated, delayed int
}

func newFlaky(seed int64) *flakyTransport {
	return &flakyTransport{base: &http.Transport{}, rng: rand.New(rand.NewSource(seed))}
}

func (f *flakyTransport) CloseIdleConnections() { f.base.CloseIdleConnections() }

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	roll := f.rng.Float64()
	delay := time.Duration(f.rng.Intn(4)+1) * time.Millisecond
	f.mu.Unlock()

	send := func(r *http.Request) (*http.Response, error) { return f.base.RoundTrip(r) }
	discard := func(resp *http.Response, err error) {
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}
	switch {
	case roll < 0.10: // dropped before the server saw it
		f.count(&f.droppedBefore)
		return nil, fmt.Errorf("flaky: request dropped before send")
	case roll < 0.20: // server processed it; the client never hears back
		f.count(&f.droppedAfter)
		discard(send(req))
		return nil, fmt.Errorf("flaky: response dropped after send")
	case roll < 0.30: // delivered twice; the client reads the second answer
		f.count(&f.duplicated)
		if clone := cloneRequest(req); clone != nil {
			discard(send(clone))
		}
		return send(req)
	case roll < 0.40: // delayed
		f.count(&f.delayed)
		time.Sleep(delay)
	}
	return send(req)
}

func (f *flakyTransport) count(c *int) {
	f.mu.Lock()
	*c++
	f.mu.Unlock()
}

// cloneRequest copies a request with a replayable body (nil if the body
// cannot be replayed — then the duplicate is skipped).
func cloneRequest(req *http.Request) *http.Request {
	clone := req.Clone(req.Context())
	if req.Body == nil {
		return clone
	}
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	clone.Body = body
	return clone
}

// TestUnreliableNetworkAndWorkerDeath: two workers on flaky transports plus
// a third killed while holding leases. The sweep must complete with output
// byte-identical to a direct run, zero duplicate byte mismatches, and at
// least one lease recovered by expiry.
func TestUnreliableNetworkAndWorkerDeath(t *testing.T) {
	h := makeDistHarness(t, 1, 300*time.Millisecond)
	h.begin("flaky worker RPCs + mid-sweep worker kill")
	ctx := context.Background()
	c := h.clients[0]

	// Workers are managed locally (not via startWorker): the victim needs
	// its own cancel, and the flaky pair needs injected transports.
	workerCtx, stopWorkers := context.WithCancel(context.Background())
	victimCtx, killVictim := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var flakies []*flakyTransport
	bootWorker := func(wctx context.Context, name string, seed int64, batch int) {
		wc := simdclient.New(h.ts.URL)
		ft := newFlaky(seed)
		wc.SetTransport(ft)
		flakies = append(flakies, ft)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer wc.Close()
			simdclient.RunWorker(wctx, wc, simdclient.WorkerOptions{
				Name: name, Parallelism: 1, MaxBatch: batch, ShareWarmup: true,
				Logf: func(format string, args ...any) { h.t.Logf(name+": "+format, args...) },
			})
		}()
	}
	bootWorker(workerCtx, "flaky0", 101, 1)
	bootWorker(workerCtx, "flaky1", 202, 1)
	// The victim hoards two leases at parallelism 1, so killing it while
	// Outstanding >= 2 strands at least one lease only expiry can recover.
	bootWorker(victimCtx, "victim", 303, 2)
	defer func() {
		stopWorkers()
		killVictim()
		wg.Wait()
	}()

	grid := policyGrid()
	for _, f := range []float64{0.8, 1.1, 1.3} {
		cfg := testCfg().WithSchemes(true, true)
		cfg.S1.ThresholdFactor = f
		grid = append(grid, simd.RunSpec{Config: cfg, Apps: testApps})
	}
	sub, err := c.Submit(ctx, simd.RunRequest{Points: grid})
	if err != nil {
		t.Fatal(err)
	}

	// Kill the victim once it holds two unfinished leases.
	killed := false
	for deadline := time.Now().Add(30 * time.Second); !killed; {
		st, err := c.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range st.Dist.Workers {
			if w.Outstanding >= 2 {
				killVictim()
				killed = true
				t.Logf("killed %s while it held %d leases", w.ID, w.Outstanding)
				break
			}
		}
		if !killed {
			if time.Now().After(deadline) {
				t.Fatal("victim never held 2 leases")
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	js, err := c.Wait(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := js.Err(); e != "" {
		t.Fatalf("sweep failed under fault injection: %s", e)
	}

	direct := newDirect()
	for i, sp := range grid {
		if want := direct.summary(t, sp); !bytes.Equal(js.Results[i].Summary, want) {
			t.Errorf("point %d: merged bytes differ from direct execution", i)
		}
	}
	st := h.stats()
	if st.Dist.Mismatches != 0 {
		t.Errorf("%d duplicate byte mismatches under fault injection, want 0", st.Dist.Mismatches)
	}
	if st.Runner.LeasesExpired < 1 {
		t.Errorf("no lease expired despite killing a worker holding 2 leases")
	}
	var before, after, dup, delayed int
	for _, f := range flakies {
		f.mu.Lock()
		before += f.droppedBefore
		after += f.droppedAfter
		dup += f.duplicated
		delayed += f.delayed
		f.mu.Unlock()
	}
	t.Logf("injected faults: %d dropped before send, %d responses dropped, %d duplicated, %d delayed (%d duplicate completions absorbed)",
		before, after, dup, delayed, st.Runner.DuplicateCompletions)
	if before+after+dup+delayed == 0 {
		t.Error("fault injection never fired — the harness tested nothing")
	}
	// Stop the survivors before end()'s goroutine-leak check (the deferred
	// stop above stays as a safety net for early t.Fatal exits).
	stopWorkers()
	wg.Wait()
	h.end()
}
