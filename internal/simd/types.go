// Package simd implements the simulation-as-a-service daemon behind
// cmd/nocsimd: an HTTP/JSON server that accepts run and sweep requests,
// coalesces concurrent identical requests across clients by
// config.Config.Key(), executes them through the shared exp.Runner +
// forkrun machinery, and backs both result summaries and golden warm
// checkpoints with an on-disk content-addressed store, so dedup and warm
// images survive restarts.
//
// Wire protocol (all JSON):
//
//	POST /run            {"points": [RunSpec, ...]} -> SubmitResponse
//	GET  /jobs/{id}?cursor=N                        -> JobStatus
//	GET  /results/{key}  (key path-escaped)         -> stored summary JSON
//	GET  /healthz                                   -> {"status": "ok"}
//	GET  /statsz                                    -> StatsSnapshot
//
// A single run is a one-point sweep; nothing distinguishes them beyond the
// length of Points. Errors come back as {"error": "..."} with a 4xx/5xx
// status.
package simd

import (
	"encoding/json"

	"nocmem/internal/config"
	"nocmem/internal/exp"
)

// RunSpec is one requested simulation (or estimate): a complete
// configuration plus the application placement, named either by a Table 2
// workload id or by an explicit per-tile application list. The daemon
// applies no defaults — clients send fully-specified configs (the client
// library starts from Baseline32) — so the config's Key() is the dedup and
// storage key with no server-side rewriting.
type RunSpec struct {
	Config config.Config `json:"config"`
	// Workload selects a Table 2 workload (1-18). Mutually exclusive with
	// Apps.
	Workload int `json:"workload,omitempty"`
	// Apps places the named built-in application profiles on tiles 0..n-1
	// (remaining tiles stay idle).
	Apps []string `json:"apps,omitempty"`
	// Estimate answers from the closed-form analytic model instead of
	// simulating — microseconds instead of minutes, within the model's
	// calibration band only.
	Estimate bool `json:"estimate,omitempty"`
}

// SubmitResponse acknowledges an accepted job.
type SubmitResponse struct {
	ID string `json:"id"`
	// Keys are the store/dedup keys of the submitted points, in order;
	// results can be fetched from GET /results/{key} once the job is done.
	Keys []string `json:"keys"`
}

// RunRequest is the body of POST /run: one or more points forming a job.
type RunRequest struct {
	Points []RunSpec `json:"points"`
}

// Event is one progress line of a job, addressed by a polling cursor.
type Event struct {
	Seq int    `json:"seq"`
	Msg string `json:"msg"`
}

// Result sources.
const (
	SourceSim      = "sim"      // freshly simulated (or coalesced onto an in-flight identical run)
	SourceStore    = "store"    // served from the on-disk result store, no simulation
	SourceEstimate = "estimate" // closed-form analytic model, no simulation
	SourceWorker   = "worker"   // simulated by a remote sweep worker, relayed through a lease
)

// PointResult is the outcome of one point of a job.
type PointResult struct {
	Key    string `json:"key"`
	Label  string `json:"label"`
	Source string `json:"source,omitempty"`
	// Worker names the remote worker whose completion was accepted, when
	// Source is SourceWorker.
	Worker string `json:"worker,omitempty"`
	// Summary is the sim.Summary JSON of the run (or estimate). Byte-for-
	// byte identical to what a direct exp.Runner execution summarizes,
	// which is what the multi-client harness asserts.
	Summary json.RawMessage `json:"summary,omitempty"`
	Err     string          `json:"error,omitempty"`
}

// Job states.
const (
	StatusQueued  = "queued"
	StatusRunning = "running"
	StatusDone    = "done"
	StatusFailed  = "failed" // at least one point errored
)

// JobStatus is the polling view of a job: status, the progress events past
// the requested cursor, and the per-point results populated so far.
type JobStatus struct {
	ID     string  `json:"id"`
	Status string  `json:"status"`
	Events []Event `json:"events"`
	// NextCursor is the cursor to pass on the next poll to see only new
	// events.
	NextCursor int           `json:"next_cursor"`
	Results    []PointResult `json:"results"`
}

// Done reports whether the job reached a terminal state.
func (js *JobStatus) Done() bool {
	return js.Status == StatusDone || js.Status == StatusFailed
}

// Err returns the first point error of a finished job, if any.
func (js *JobStatus) Err() string {
	for _, r := range js.Results {
		if r.Err != "" {
			return r.Err
		}
	}
	return ""
}

// --- Distributed-sweep wire types (coordinator mode) ---
//
// A coordinator (Options.Distributed) leases the simulation points of
// submitted jobs to workers instead of executing them locally:
//
//	POST /dist/register {RegisterRequest}  -> RegisterResponse
//	POST /dist/lease    {LeaseRequest}     -> LeaseResponse
//	POST /dist/complete {CompleteRequest}  -> CompleteResponse
//
// Workers poll /dist/lease for batches of points, execute them with their
// own exp.Runner, and report back through /dist/complete. Leases carry a
// TTL; a point whose lease expires (worker death, partition) is re-leased to
// the next polling worker, and completions are accepted idempotently — the
// first valid completion for a key wins, later ones are counted as
// duplicates and discarded, so the merged output is byte-identical however
// often a point was executed.

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name labels the worker in /statsz (e.g. host-pid); the coordinator
	// derives a unique WorkerID from it.
	Name string `json:"name"`
}

// RegisterResponse acknowledges a worker and hands it its lease parameters.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMS is the coordinator's lease TTL in milliseconds: how long
	// the worker may sit on a leased point before it is re-leased.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// PollMS is the suggested idle polling interval in milliseconds.
	PollMS int64 `json:"poll_ms"`
}

// LeaseRequest asks for a batch of points to execute.
type LeaseRequest struct {
	Worker string `json:"worker"`
	// Max bounds the batch size (the coordinator may cap it further).
	Max int `json:"max"`
}

// Lease is one point handed to a worker.
type Lease struct {
	// ID identifies this grant; completions echo it so the coordinator can
	// tell a timely completion from one that outlived its lease (both are
	// accepted — results are deterministic — but stale ones are logged).
	ID   int64   `json:"id"`
	Key  string  `json:"key"`
	Spec RunSpec `json:"spec"`
}

// LeaseResponse returns the granted batch (possibly empty).
type LeaseResponse struct {
	Leases []Lease `json:"leases,omitempty"`
	// RetryMS suggests when to poll again after an empty grant.
	RetryMS int64 `json:"retry_ms,omitempty"`
}

// CompleteRequest reports one executed point (or its failure).
type CompleteRequest struct {
	Worker  string          `json:"worker"`
	LeaseID int64           `json:"lease_id"`
	Key     string          `json:"key"`
	Summary json.RawMessage `json:"summary,omitempty"`
	Err     string          `json:"error,omitempty"`
}

// Completion statuses.
const (
	CompleteAccepted  = "accepted"  // first valid completion for the key; merged
	CompleteDuplicate = "duplicate" // point already done (or unknown); discarded idempotently
	CompleteRetry     = "retry"     // failure recorded; point re-leased to another worker
	CompleteFailed    = "failed"    // failure recorded; retry budget exhausted, point failed
)

// CompleteResponse acknowledges a completion report.
type CompleteResponse struct {
	Status string `json:"status"`
}

// WorkerStats is one registered worker's lease traffic.
type WorkerStats struct {
	ID        string `json:"id"`
	Granted   int64  `json:"granted"`
	Completed int64  `json:"completed"`
	// Outstanding counts points currently leased to this worker.
	Outstanding int `json:"outstanding"`
}

// DistSnapshot is the coordinator section of /statsz (nil on a
// non-coordinator daemon).
type DistSnapshot struct {
	Workers []WorkerStats `json:"workers"`
	Pending int           `json:"pending"`
	Leased  int           `json:"leased"`
	// Mismatches counts duplicate completions whose bytes differed from the
	// merged result — always zero while every execution path stays
	// deterministic; nonzero announces a broken worker loudly.
	Mismatches int64 `json:"mismatches"`
}

// StoreStats counts on-disk store traffic.
type StoreStats struct {
	ResultHits   int64 `json:"result_hits"`
	ResultMisses int64 `json:"result_misses"`
	SnapHits     int64 `json:"snap_hits"`
	SnapMisses   int64 `json:"snap_misses"`
	// Evictions counts corrupt entries ejected at read time (results and
	// snapshots; forkrun-level restore-failure evictions are counted in
	// Runner.SnapshotEvictions).
	Evictions int64 `json:"evictions"`
}

// StatsSnapshot is the /statsz payload: server-, store- and runner-level
// counters, enough for a client to prove exactly-once execution and warm-
// checkpoint reuse from the outside.
type StatsSnapshot struct {
	Jobs         int64 `json:"jobs"`
	Points       int64 `json:"points"`
	InflightJobs int64 `json:"inflight_jobs"`
	// RetainedJobs counts job records currently held in memory — bounded by
	// the terminal-job GC (Options.JobTTL), unlike Jobs which only grows.
	RetainedJobs int64 `json:"retained_jobs"`
	Draining     bool  `json:"draining"`

	Store  StoreStats `json:"store"`
	Runner exp.Stats  `json:"runner"`

	// Dist is the coordinator's lease-table view; nil unless the daemon
	// runs with Options.Distributed.
	Dist *DistSnapshot `json:"dist,omitempty"`
}
