package simd

import (
	"encoding/json"
	"fmt"
	"strings"

	"nocmem/internal/analytic"
	"nocmem/internal/config"
	"nocmem/internal/exp"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

// ResolvedSpec is a RunSpec after validation: profiles looked up, label and
// store key fixed. Both the daemon's local execution path and the
// distributed-sweep worker loop (internal/simdclient) resolve specs through
// ResolveSpec and execute them through ExecuteSpec, so every path computes
// the same key and the same canonical summary bytes for a given spec.
type ResolvedSpec struct {
	Spec     RunSpec
	Cfg      config.Config
	Apps     []trace.Profile
	Label    string
	Key      string
	Estimate bool
}

// ResolveSpec validates one spec and fixes its label and dedup/store key.
func ResolveSpec(sp RunSpec) (ResolvedSpec, error) {
	rp := ResolvedSpec{Spec: sp, Cfg: sp.Config, Estimate: sp.Estimate}
	if err := rp.Cfg.Validate(); err != nil {
		return rp, err
	}
	switch {
	case sp.Workload > 0 && len(sp.Apps) > 0:
		return rp, fmt.Errorf("point names both a workload and an explicit app list")
	case sp.Workload > 0:
		wl, err := workload.Get(sp.Workload)
		if err != nil {
			return rp, err
		}
		if rp.Apps, err = wl.Profiles(); err != nil {
			return rp, err
		}
		rp.Label = wl.Name()
	case len(sp.Apps) > 0:
		for _, name := range sp.Apps {
			p, err := trace.Lookup(name)
			if err != nil {
				return rp, err
			}
			rp.Apps = append(rp.Apps, p)
		}
		rp.Label = "apps:" + strings.Join(sp.Apps, "+")
	default:
		return rp, fmt.Errorf("point names neither a workload nor an app list")
	}
	if len(rp.Apps) > rp.Cfg.Mesh.Nodes() {
		return rp, fmt.Errorf("%d applications for %d tiles", len(rp.Apps), rp.Cfg.Mesh.Nodes())
	}
	rp.Key = exp.RunKey(rp.Cfg, rp.Label)
	if rp.Estimate {
		rp.Key = "estimate|" + rp.Key
	}
	return rp, nil
}

// ExecuteSpec computes one resolved point on the given runner: the
// closed-form analytic estimate when rp.Estimate is set, a (possibly cached
// or forked) simulation otherwise. Returns the canonical summary JSON —
// the bytes every execution path (local daemon, remote worker, direct
// runner) must agree on for a given key.
func ExecuteSpec(runner *exp.Runner, rp ResolvedSpec) ([]byte, error) {
	if rp.Estimate {
		padded := make([]trace.Profile, rp.Cfg.Mesh.Nodes())
		copy(padded, rp.Apps)
		est, err := analytic.Predict(rp.Cfg, padded)
		if err != nil {
			return nil, err
		}
		return json.Marshal(est.Summary())
	}
	res, err := runner.RunConfig(rp.Cfg, rp.Apps, rp.Label)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res.Summary())
}
