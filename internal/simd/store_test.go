// Crash/restart and corruption tests for the on-disk store: a killed daemon
// loses only what never reached disk, restarts re-serve completed keys
// without re-simulation and re-run in-flight ones to byte-identical results,
// and corrupt store entries — results or golden checkpoints — are evicted
// and recomputed, never panicking and never poisoning a cache.
package simd_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"nocmem/internal/forkrun"
	"nocmem/internal/simd"
	"nocmem/internal/snapshot"
	"nocmem/internal/trace"
)

// thresholdGrid returns n distinct Scheme-1 threshold points sharing one
// warmup snapshot group — a realistic sweep whose points are cheap once the
// group is warm.
func thresholdGrid(n int) []simd.RunSpec {
	var points []simd.RunSpec
	for i := 0; i < n; i++ {
		cfg := testCfg().WithSchemes(true, true)
		cfg.S1.ThresholdFactor = 0.8 + 0.1*float64(i)
		points = append(points, simd.RunSpec{Config: cfg, Apps: testApps})
	}
	return points
}

// TestMidSweepKillAndRestart kills the daemon mid-sweep and restarts it on
// the same store: completed keys must be served from disk without
// re-simulation, in-flight/queued keys must re-run, and every result must be
// byte-identical to a direct runner execution.
func TestMidSweepKillAndRestart(t *testing.T) {
	dir := t.TempDir()
	// Parallelism 1 serializes the points, so the kill lands between them.
	h := makeHarness(t, 1, dir, 1)
	h.begin("kill mid-sweep, restart on the same store")

	grid := thresholdGrid(6)
	sub, err := h.clients[0].Submit(context.Background(), simd.RunRequest{Points: grid})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for at least one result to land on disk, then pull the plug.
	resultsDir := filepath.Join(dir, "results")
	deadline := time.Now().Add(time.Minute)
	for {
		if m, _ := filepath.Glob(filepath.Join(resultsDir, "*.res")); len(m) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no result reached the store within a minute")
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.kill()

	// Which keys survived? (The kill waits out the executing point, so the
	// set on disk is exact, not racy.)
	persisted := map[string]bool{}
	for _, m := range mustGlob(t, filepath.Join(resultsDir, "*.res")) {
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		key, _, err := snapshot.DecodeEntry(data)
		if err != nil {
			t.Fatalf("persisted entry %s is corrupt: %v", filepath.Base(m), err)
		}
		persisted[key] = true
	}
	if len(persisted) == 0 || len(persisted) >= len(grid) {
		t.Fatalf("kill landed badly: %d/%d points persisted (want a strict mid-sweep subset)", len(persisted), len(grid))
	}
	t.Logf("  killed with %d/%d points persisted", len(persisted), len(grid))
	_ = sub

	h.restartAfterKill()
	js := h.run(0, grid)

	direct := newDirect()
	var fromStore, resimulated int
	for i, sp := range grid {
		pr := js.Results[i]
		if persisted[pr.Key] {
			if pr.Source != simd.SourceStore {
				t.Errorf("completed point %d re-ran after restart (source %q)", i, pr.Source)
			}
			fromStore++
		} else {
			if pr.Source != simd.SourceSim {
				t.Errorf("lost point %d not re-simulated after restart (source %q)", i, pr.Source)
			}
			resimulated++
		}
		if want := direct.summary(t, sp); !bytes.Equal(pr.Summary, want) {
			t.Errorf("point %d: post-restart summary differs from direct runner", i)
		}
	}
	st := h.stats()
	if st.Runner.Executed != int64(resimulated) {
		t.Errorf("restarted daemon executed %d sims, want %d (only the lost points)", st.Runner.Executed, resimulated)
	}
	t.Logf("  restart served %d from store, re-simulated %d", fromStore, resimulated)
	h.end()
}

func mustGlob(t *testing.T, pattern string) []string {
	t.Helper()
	m, err := filepath.Glob(pattern)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestCorruptSnapshotEvictedAndRewarmed plants a golden-checkpoint store
// entry whose frame and header are valid but whose body cannot restore —
// the worst corruption the CRC cannot catch at load time (e.g. a stale file
// from a buggy writer). The daemon must evict it and re-execute the warmup,
// not fail the request.
func TestCorruptSnapshotEvictedAndRewarmed(t *testing.T) {
	h := makeHarness(t, 1, "", 1)
	h.begin("poisoned warm checkpoint is evicted and re-warmed")

	grid := policyGrid()[:2]
	// The fork key of the grid's snapshot group: policy-free config prefix
	// plus the padded placement, exactly as exp.Runner hands it to forkrun.
	cfg := grid[0].Config
	padded := make([]trace.Profile, cfg.Mesh.Nodes())
	for i, name := range testApps {
		padded[i] = trace.MustLookup(name)
	}
	key := forkrun.Key(cfg, padded)

	// Valid entry frame, valid checkpoint header, garbage body.
	var img bytes.Buffer
	w := snapshot.NewWriter(&img)
	w.U64(0xdeadbeefdeadbeef)
	w.String("not a simulator state")
	if err := w.Err(); err != nil {
		t.Fatal(err)
	}
	h.srv.Store().SaveSnapshot(key, img.Bytes())

	js := h.run(0, grid)
	direct := newDirect()
	for i, sp := range grid {
		if js.Results[i].Source != simd.SourceSim {
			t.Errorf("point %d source %q, want %q", i, js.Results[i].Source, simd.SourceSim)
		}
		if want := direct.summary(t, sp); !bytes.Equal(js.Results[i].Summary, want) {
			t.Errorf("point %d: summary differs from direct runner after snapshot eviction", i)
		}
	}
	st := h.stats()
	if st.Runner.SnapshotDiskHits != 1 {
		t.Errorf("%d snapshot disk hits, want 1 (the poisoned image)", st.Runner.SnapshotDiskHits)
	}
	if st.Runner.SnapshotEvictions < 1 {
		t.Error("poisoned snapshot was never evicted")
	}
	if st.Runner.Warmups != 1 {
		t.Errorf("executed %d warmups, want 1 (fresh warmup after eviction)", st.Runner.Warmups)
	}
	h.end()
}

// TestTruncatedResultEntryEvicted bit-flips and truncates a persisted
// result entry and requires the restarted daemon to treat it as a miss,
// evict it, and re-simulate — never serve garbage.
func TestTruncatedResultEntryEvicted(t *testing.T) {
	dir := t.TempDir()
	h := makeHarness(t, 1, dir, 0)
	h.begin("corrupt result entries are evicted and re-simulated")

	grid := thresholdGrid(2)
	first := h.run(0, grid)

	files := mustGlob(t, filepath.Join(dir, "results", "*.res"))
	if len(files) != len(grid) {
		t.Fatalf("%d entry files for %d points", len(files), len(grid))
	}
	// Truncate one, bit-flip the other.
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(files[1])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x08
	if err := os.WriteFile(files[1], data, 0o644); err != nil {
		t.Fatal(err)
	}

	h.restart()
	second := h.run(0, grid)
	for i := range grid {
		if second.Results[i].Source != simd.SourceSim {
			t.Errorf("point %d source %q, want %q (its entry was corrupt)", i, second.Results[i].Source, simd.SourceSim)
		}
		if !bytes.Equal(first.Results[i].Summary, second.Results[i].Summary) {
			t.Errorf("point %d: re-simulated result differs from the original", i)
		}
	}
	st := h.stats()
	if st.Store.Evictions < 2 {
		t.Errorf("%d store evictions, want >= 2", st.Store.Evictions)
	}
	h.end()
}

// FuzzStoreRead feeds arbitrary bytes to a store entry file and requires
// error-and-evict: LoadResult never panics, never returns garbage, and a
// rejected entry neither survives on disk nor poisons later reads.
func FuzzStoreRead(f *testing.F) {
	valid, err := snapshot.EncodeEntry("k", []byte(`{"cycles":6000}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte("not an entry at all"))
	f.Add(valid[:len(valid)-3])
	for i := 0; i < len(valid); i += 5 {
		mut := append([]byte{}, valid...)
		mut[i] ^= 0x20
		f.Add(mut)
	}
	other, err := snapshot.EncodeEntry("other-key", []byte(`{"cycles":1}`))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(other)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		st, err := simd.OpenStore(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Learn the entry path for key "k", then overwrite it with fuzz data.
		st.SaveResult("k", []byte("x"))
		files, err := filepath.Glob(filepath.Join(dir, "results", "*.res"))
		if err != nil || len(files) != 1 {
			t.Fatalf("glob: %v (%d files)", err, len(files))
		}
		if err := os.WriteFile(files[0], data, 0o644); err != nil {
			t.Fatal(err)
		}

		payload, ok := st.LoadResult("k")
		if ok {
			// Accepting the bytes is only legal if they really are a valid
			// entry for exactly this key.
			key, want, err := snapshot.DecodeEntry(data)
			if err != nil || key != "k" || !bytes.Equal(payload, want) {
				t.Fatalf("store accepted a corrupt entry (decode err %v, key %q)", err, key)
			}
		} else if _, err := os.Stat(files[0]); !os.IsNotExist(err) {
			t.Fatal("store rejected an entry but did not evict the file")
		}

		// Never poisoned: a fresh save must round-trip regardless.
		st.SaveResult("k", []byte("fresh"))
		if p, ok := st.LoadResult("k"); !ok || string(p) != "fresh" {
			t.Fatalf("store poisoned after corrupt read: ok=%v payload=%q", ok, p)
		}
	})
}
