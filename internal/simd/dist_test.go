// Distributed-sweep coordinator tests: byte-identical merged output across
// worker counts and completion orders, lease expiry and re-lease after
// worker death, idempotent (and loudly byte-checked) duplicate completions,
// and the failure retry budget.
package simd_test

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"nocmem/internal/exp"
	"nocmem/internal/simd"
)

// TestDistributedSweepByteIdentical: three workers race on one policy grid;
// the merged output must be byte-identical to a direct single-process
// execution, the coordinator itself must simulate nothing, and a repeat of
// the sweep must be served from the store without leasing anything.
func TestDistributedSweepByteIdentical(t *testing.T) {
	h := makeDistHarness(t, 1, 0)
	h.begin("3 workers racing on one policy grid, byte-identical merge")
	for i := 0; i < 3; i++ {
		h.startWorker(fmt.Sprintf("w%d", i), 1)
	}

	grid := policyGrid()
	js := h.run(0, grid)
	direct := newDirect()
	for i, sp := range grid {
		pr := js.Results[i]
		if pr.Source != simd.SourceWorker {
			t.Errorf("point %d source %q, want %q", i, pr.Source, simd.SourceWorker)
		}
		if pr.Worker == "" {
			t.Errorf("point %d names no worker", i)
		}
		if want := direct.summary(t, sp); !bytes.Equal(pr.Summary, want) {
			t.Errorf("point %d: merged bytes differ from direct execution", i)
		}
	}

	st := h.stats()
	if st.Runner.Executed != 0 {
		t.Errorf("coordinator executed %d simulations itself, want 0 (workers own execution)", st.Runner.Executed)
	}
	if st.Runner.RemoteCompletions != int64(len(grid)) {
		t.Errorf("%d remote completions, want %d", st.Runner.RemoteCompletions, len(grid))
	}
	if st.Dist == nil {
		t.Fatal("statsz has no dist section on a coordinator")
	}
	if st.Dist.Mismatches != 0 {
		t.Errorf("%d duplicate byte mismatches, want 0", st.Dist.Mismatches)
	}
	if len(st.Dist.Workers) != 3 {
		t.Errorf("%d workers registered, want 3", len(st.Dist.Workers))
	}

	// Re-running the sweep leases nothing: the store answers.
	granted := st.Runner.LeasesGranted
	again := h.run(0, grid)
	for i := range grid {
		if again.Results[i].Source != simd.SourceStore {
			t.Errorf("repeat point %d source %q, want %q", i, again.Results[i].Source, simd.SourceStore)
		}
		if !bytes.Equal(again.Results[i].Summary, js.Results[i].Summary) {
			t.Errorf("repeat point %d: bytes differ from first sweep", i)
		}
	}
	if st2 := h.stats(); st2.Runner.LeasesGranted != granted {
		t.Errorf("repeat sweep granted %d new leases, want 0", st2.Runner.LeasesGranted-granted)
	}
	h.end()
}

// TestLeaseExpiryReLease: a worker registers, takes leases, and dies without
// completing anything. Its points must be re-leased to a live worker after
// the TTL and the sweep must finish with output byte-identical to a direct
// run.
func TestLeaseExpiryReLease(t *testing.T) {
	h := makeDistHarness(t, 1, 200*time.Millisecond)
	h.begin("dead worker's leases expire and re-lease to a survivor")
	ctx := context.Background()
	c := h.clients[0]

	reg, err := c.RegisterWorker(ctx, "zombie")
	if err != nil {
		t.Fatal(err)
	}
	grid := policyGrid()
	sub, err := c.Submit(ctx, simd.RunRequest{Points: grid})
	if err != nil {
		t.Fatal(err)
	}
	// The zombie grabs a batch and then never speaks again.
	var taken int
	for deadline := time.Now().Add(5 * time.Second); taken == 0; {
		lr, err := c.Lease(ctx, reg.WorkerID, 4)
		if err != nil {
			t.Fatal(err)
		}
		taken = len(lr.Leases)
		if taken == 0 {
			if time.Now().After(deadline) {
				t.Fatal("zombie was never granted a lease")
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	t.Logf("zombie holds %d lease(s) and dies", taken)

	h.startWorker("survivor", 2)
	js, err := c.Wait(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := js.Err(); e != "" {
		t.Fatalf("sweep failed: %s", e)
	}

	direct := newDirect()
	for i, sp := range grid {
		if want := direct.summary(t, sp); !bytes.Equal(js.Results[i].Summary, want) {
			t.Errorf("point %d: merged bytes differ from direct execution", i)
		}
		if w := js.Results[i].Worker; !strings.HasPrefix(w, "survivor") {
			t.Errorf("point %d completed by %q, want the survivor", i, w)
		}
	}
	st := h.stats()
	if st.Runner.LeasesExpired < int64(taken) {
		t.Errorf("%d leases expired, want >= %d (everything the zombie held)", st.Runner.LeasesExpired, taken)
	}
	if st.Runner.LeasesRelayed < int64(taken) {
		t.Errorf("%d leases re-leased, want >= %d", st.Runner.LeasesRelayed, taken)
	}
	h.end()
}

// TestDuplicateCompletionIdempotent drives the wire protocol by hand: the
// first completion is merged, an identical duplicate is absorbed silently,
// and a divergent duplicate is absorbed but counted as a mismatch — the
// determinism alarm.
func TestDuplicateCompletionIdempotent(t *testing.T) {
	h := makeDistHarness(t, 1, time.Minute)
	h.begin("duplicate completions absorbed; divergent bytes counted loudly")
	ctx := context.Background()
	c := h.clients[0]

	reg, err := c.RegisterWorker(ctx, "dup")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, simd.RunRequest{Points: policyGrid()[:1]})
	if err != nil {
		t.Fatal(err)
	}
	var lease simd.Lease
	for deadline := time.Now().Add(5 * time.Second); ; {
		lr, err := c.Lease(ctx, reg.WorkerID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(lr.Leases) > 0 {
			lease = lr.Leases[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("never granted a lease")
		}
		time.Sleep(5 * time.Millisecond)
	}

	rp, err := simd.ResolveSpec(lease.Spec)
	if err != nil {
		t.Fatal(err)
	}
	data, err := simd.ExecuteSpec(exp.NewRunner(exp.Options{ShareWarmup: true}), rp)
	if err != nil {
		t.Fatal(err)
	}
	complete := func(payload []byte) string {
		t.Helper()
		status, err := c.Complete(ctx, simd.CompleteRequest{
			Worker: reg.WorkerID, LeaseID: lease.ID, Key: lease.Key, Summary: payload,
		})
		if err != nil {
			t.Fatal(err)
		}
		return status
	}

	if got := complete(data); got != simd.CompleteAccepted {
		t.Fatalf("first completion %q, want %q", got, simd.CompleteAccepted)
	}
	if got := complete(data); got != simd.CompleteDuplicate {
		t.Fatalf("identical duplicate %q, want %q", got, simd.CompleteDuplicate)
	}
	if st := h.stats(); st.Dist.Mismatches != 0 {
		t.Fatalf("identical duplicate counted as mismatch")
	}
	if got := complete([]byte(`{"cycles":1}`)); got != simd.CompleteDuplicate {
		t.Fatalf("divergent duplicate %q, want %q", got, simd.CompleteDuplicate)
	}
	st := h.stats()
	if st.Dist.Mismatches != 1 {
		t.Errorf("%d mismatches after a divergent duplicate, want 1", st.Dist.Mismatches)
	}
	if st.Runner.DuplicateCompletions != 2 {
		t.Errorf("%d duplicate completions counted, want 2", st.Runner.DuplicateCompletions)
	}

	// The job saw exactly the first (correct) bytes.
	js, err := c.Wait(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e := js.Err(); e != "" {
		t.Fatalf("job failed: %s", e)
	}
	if !bytes.Equal(js.Results[0].Summary, data) {
		t.Error("job result differs from the first accepted completion")
	}
	h.end()
}

// TestFailedPointFailsAfterRetryBudget: a point whose execution keeps
// erroring is re-leased up to the failure budget, then fails the job with
// the worker's error attached.
func TestFailedPointFailsAfterRetryBudget(t *testing.T) {
	h := makeDistHarness(t, 1, time.Minute)
	h.begin("erroring point re-leases twice, then fails for good")
	ctx := context.Background()
	c := h.clients[0]

	reg, err := c.RegisterWorker(ctx, "crasher")
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Submit(ctx, simd.RunRequest{Points: policyGrid()[:1]})
	if err != nil {
		t.Fatal(err)
	}
	var statuses []string
	for len(statuses) < 3 {
		lr, err := c.Lease(ctx, reg.WorkerID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(lr.Leases) == 0 {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		status, err := c.Complete(ctx, simd.CompleteRequest{
			Worker: reg.WorkerID, LeaseID: lr.Leases[0].ID, Key: lr.Leases[0].Key,
			Err: "synthetic crash",
		})
		if err != nil {
			t.Fatal(err)
		}
		statuses = append(statuses, status)
	}
	want := []string{simd.CompleteRetry, simd.CompleteRetry, simd.CompleteFailed}
	for i := range want {
		if statuses[i] != want[i] {
			t.Errorf("completion %d status %q, want %q", i, statuses[i], want[i])
		}
	}

	js, err := c.Wait(ctx, sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if js.Status != simd.StatusFailed {
		t.Fatalf("job status %q, want %q", js.Status, simd.StatusFailed)
	}
	if e := js.Err(); !strings.Contains(e, "synthetic crash") || !strings.Contains(e, "attempt 3/3") {
		t.Errorf("job error %q, want the worker error and the exhausted budget", e)
	}
	h.end()
}
