package trace

// Source supplies the instruction stream of one core.
type Source interface {
	Next() Instr
}

// AppSource is a Source that also knows the resident working sets of its
// application, so the simulator can functionally pre-warm the caches.
type AppSource interface {
	Source
	// PrewarmLines returns the line addresses of the L1-resident (hot)
	// and L2-resident (warm) working sets; either may be empty.
	PrewarmLines() (hot, warm []uint64)
}

var (
	_ AppSource = (*Generator)(nil)
	_ AppSource = (*FileTrace)(nil)
)
