package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAllBuiltinProfilesValid(t *testing.T) {
	ps := Profiles()
	if len(ps) < 28 {
		t.Fatalf("only %d profiles; Table 2 needs 28 applications", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, name := range []string{"mcf", "lbm", "GemsFDTD", "dealII", "xalancbmk"} {
		if _, err := Lookup(name); err != nil {
			t.Errorf("lookup %s: %v", name, err)
		}
	}
	if _, err := Lookup("doom3"); err == nil {
		t.Error("unknown application accepted")
	}
}

func TestMemoryIntensityClassification(t *testing.T) {
	intensive := []string{"mcf", "lbm", "milc", "libquantum", "leslie3d", "GemsFDTD", "soplex", "sphinx3", "xalancbmk"}
	nonIntensive := []string{"omnetpp", "perlbench", "astar", "zeusmp", "wrf", "sjeng", "povray", "hmmer",
		"gromacs", "gcc", "gamess", "dealII", "calculix", "bzip2", "bwaves", "namd", "h264ref", "gobmk", "tonto"}
	for _, n := range intensive {
		if !MustLookup(n).MemoryIntensive() {
			t.Errorf("%s should be memory intensive", n)
		}
	}
	for _, n := range nonIntensive {
		if MustLookup(n).MemoryIntensive() {
			t.Errorf("%s should not be memory intensive", n)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	p := MustLookup("milc")
	g1, _ := NewGenerator(p, 3, 64, 42)
	g2, _ := NewGenerator(p, 3, 64, 42)
	for i := 0; i < 10000; i++ {
		if g1.Next() != g2.Next() {
			t.Fatalf("streams diverge at instruction %d", i)
		}
	}
	g3, _ := NewGenerator(p, 4, 64, 42)
	same := true
	g1b, _ := NewGenerator(p, 3, 64, 42)
	for i := 0; i < 100; i++ {
		if g1b.Next() != g3.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different cores produce identical streams")
	}
}

func TestGeneratorRatesMatchProfile(t *testing.T) {
	const n = 400000
	for _, name := range []string{"mcf", "lbm", "gamess"} {
		p := MustLookup(name)
		g, _ := NewGenerator(p, 0, 64, 7)
		var mem, stores, cold, warm, hot int
		coldBase := g.coldBase
		warmBase := g.warmBase
		for i := 0; i < n; i++ {
			in := g.Next()
			if !in.IsMem {
				continue
			}
			mem++
			if in.IsStore {
				stores++
			}
			switch {
			case in.Addr >= coldBase:
				cold++
			case in.Addr >= warmBase:
				warm++
			default:
				hot++
			}
		}
		memFrac := float64(mem) / n
		if math.Abs(memFrac-p.MemFrac) > 0.01 {
			t.Errorf("%s: mem fraction %.3f, want %.3f", name, memFrac, p.MemFrac)
		}
		storeFrac := float64(stores) / float64(mem)
		if math.Abs(storeFrac-p.StoreFrac) > 0.02 {
			t.Errorf("%s: store fraction %.3f, want %.3f", name, storeFrac, p.StoreFrac)
		}
		coldPKI := float64(cold) * 1000 / n
		if math.Abs(coldPKI-p.MPKI) > 0.15*p.MPKI+0.5 {
			t.Errorf("%s: cold accesses per kilo-instr %.2f, want ~%.2f", name, coldPKI, p.MPKI)
		}
		warmPKI := float64(warm) * 1000 / n
		if math.Abs(warmPKI-p.WarmAPKI) > 0.15*p.WarmAPKI+0.5 {
			t.Errorf("%s: warm accesses per kilo-instr %.2f, want ~%.2f", name, warmPKI, p.WarmAPKI)
		}
	}
}

func TestColdLinesNeverReused(t *testing.T) {
	p := MustLookup("lbm")
	g, _ := NewGenerator(p, 0, 64, 3)
	seen := make(map[uint64]bool)
	coldBase := g.coldBase
	for i := 0; i < 2_000_000; i++ {
		in := g.Next()
		if !in.IsMem || in.Addr < coldBase {
			continue
		}
		line := in.Addr &^ 63
		if seen[line] {
			t.Fatalf("cold line %#x reused at instruction %d", line, i)
		}
		seen[line] = true
	}
}

func TestColdStreamRowLocality(t *testing.T) {
	// Consecutive cold lines within a stream are sequential: over a burst
	// of RowBurst lines the stream advances by exactly one line per visit.
	p := MustLookup("libquantum") // RowBurst 512, 4 streams
	g, _ := NewGenerator(p, 0, 64, 3)
	perStream := make(map[int][]uint64)
	for i := 0; len(perStream) < 4 || len(perStream[0]) < 100; i++ {
		in := g.Next()
		if !in.IsMem || in.Addr < g.coldBase {
			continue
		}
		line := (in.Addr - g.coldBase) >> 6
		s := int(line / (coldRegionLines / uint64(p.Streams)))
		perStream[s] = append(perStream[s], line)
		if i > 10_000_000 {
			t.Fatal("streams never filled")
		}
	}
	for s, lines := range perStream {
		sequential := 0
		for i := 1; i < len(lines); i++ {
			if lines[i] == lines[i-1]+1 {
				sequential++
			}
		}
		if frac := float64(sequential) / float64(len(lines)-1); frac < 0.9 {
			t.Errorf("stream %d: only %.0f%% sequential advances", s, frac*100)
		}
	}
}

func TestRegionsDisjointAcrossCores(t *testing.T) {
	p := MustLookup("mcf")
	f := func(a, b uint8) bool {
		ca, cb := int(a)%64, int(b)%64
		if ca == cb {
			return true
		}
		ga, _ := NewGenerator(p, ca, 64, 1)
		gb, _ := NewGenerator(p, cb, 64, 1)
		// The whole per-core region is 1<<36 bytes; all generated
		// addresses stay within it.
		baseA := (uint64(ca) + 1) << 36
		baseB := (uint64(cb) + 1) << 36
		for i := 0; i < 200; i++ {
			ia, ib := ga.Next(), gb.Next()
			if ia.IsMem && (ia.Addr < baseA || ia.Addr >= baseA+(1<<36)) {
				return false
			}
			if ib.IsMem && (ib.Addr < baseB || ib.Addr >= baseB+(1<<36)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPrewarmLinesWithinRegions(t *testing.T) {
	p := MustLookup("soplex")
	g, _ := NewGenerator(p, 2, 64, 9)
	hot, warm := g.PrewarmLines()
	if len(hot) != p.HotLines || len(warm) != p.WarmLines {
		t.Fatalf("prewarm sizes %d/%d, want %d/%d", len(hot), len(warm), p.HotLines, p.WarmLines)
	}
	for _, l := range hot {
		if l < g.hotBase || l >= g.warmBase {
			t.Fatalf("hot line %#x outside the hot region", l)
		}
	}
	for _, l := range warm {
		if l < g.warmBase || l >= g.coldBase {
			t.Fatalf("warm line %#x outside the warm region", l)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	good := MustLookup("mcf")
	bad := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MemFrac = 0 },
		func(p *Profile) { p.MemFrac = 1.2 },
		func(p *Profile) { p.StoreFrac = -0.1 },
		func(p *Profile) { p.MPKI = -1 },
		func(p *Profile) { p.RowBurst = 0 },
		func(p *Profile) { p.Streams = 0 },
		func(p *Profile) { p.HotLines = 0 },
		func(p *Profile) { p.MPKI = 500 }, // exceeds the mem-op budget
	}
	for i, mutate := range bad {
		p := good
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestGeneratorArgValidation(t *testing.T) {
	p := MustLookup("mcf")
	if _, err := NewGenerator(p, -1, 64, 1); err == nil {
		t.Error("negative core accepted")
	}
	if _, err := NewGenerator(p, 0, 63, 1); err == nil {
		t.Error("non-power-of-two line size accepted")
	}
	if _, err := NewGenerator(Profile{}, 0, 64, 1); err == nil {
		t.Error("zero profile accepted")
	}
}
