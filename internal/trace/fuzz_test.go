package trace

import (
	"bytes"
	"testing"
)

// FuzzParse hardens the trace-file parser against corrupt inputs: it must
// either reject them or produce a trace whose replay stays in bounds.
func FuzzParse(f *testing.F) {
	// Seed with a valid small trace and some mutations.
	g, err := NewGenerator(MustLookup("gamess"), 0, 64, 1)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Record(&buf, g, 200); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add(traceMagic[:])

	f.Fuzz(func(t *testing.T, raw []byte) {
		ft, err := Parse(raw)
		if err != nil {
			return
		}
		// Accepted: replay must not panic and must loop coherently.
		n := ft.Records()
		if n <= 0 {
			t.Fatal("accepted trace with no records")
		}
		limit := n
		if limit > 1000 {
			limit = 1000
		}
		for i := int64(0); i < 2*limit; i++ {
			in := ft.Next()
			if !in.IsMem && (in.Addr != 0 || in.IsStore && false) {
				_ = in
			}
		}
	})
}
