package trace

import "fmt"

// Advance replays n instructions and discards them. The generator's stream
// is deterministic in (profile, coreID, seed), so a freshly constructed
// generator advanced by Issued() is byte-for-byte the generator a snapshot
// was taken from — the checkpoint format stores only the issue count
// instead of the PRNG internals.
func (g *Generator) Advance(n uint64) {
	for i := uint64(0); i < n; i++ {
		g.Next()
	}
}

// Progress returns the replay cursor for checkpointing.
func (t *FileTrace) Progress() (pos int, loops int64) { return t.pos, t.loops }

// SetProgress restores the replay cursor. pos must land exactly on a record
// boundary of the capture; anything else is rejected so a corrupted
// checkpoint cannot make Next read past the buffer.
func (t *FileTrace) SetProgress(pos int, loops int64) error {
	if pos < 0 || pos > len(t.data) || loops < 0 {
		return fmt.Errorf("trace: replay cursor %d/%d out of range", pos, loops)
	}
	for p := 0; p < pos; {
		if t.data[p]&flagMem != 0 {
			p += 9
		} else {
			p++
		}
		if p > pos {
			return fmt.Errorf("trace: replay cursor %d inside a record", pos)
		}
	}
	t.pos = pos
	t.loops = loops
	return nil
}
