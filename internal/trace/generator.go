package trace

import (
	"fmt"
	"math/rand"
)

// Instr is one synthetic instruction.
type Instr struct {
	IsMem   bool
	IsStore bool
	Addr    uint64 // byte address; meaningful only when IsMem
}

// Region sizes, in cache lines, of each core's private address space.
// The cold region is large enough that the stream never re-touches a line
// within any realistic simulation length.
const (
	coldRegionLines = 1 << 24 // 1 GiB of 64-byte lines
	maxSkipRows     = 1 << 10 // max random jump between cold bursts, in rows of 128 lines
)

// Generator produces the deterministic instruction stream of one core.
// It is not safe for concurrent use.
type Generator struct {
	p         Profile
	rng       *rand.Rand
	lineBytes uint64

	hotBase  uint64
	warmBase uint64
	coldBase uint64

	cold     []coldStream
	nextCStr int // round-robin cursor over the cold streams

	pCold, pWarm float64

	issued uint64 // total instructions produced
}

// NewGenerator returns a generator for profile p bound to the given core.
// Streams are deterministic in (p, coreID, seed) and each core's addresses
// live in a disjoint region (multiprogrammed workloads share nothing).
func NewGenerator(p Profile, coreID int, lineBytes int, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if coreID < 0 {
		return nil, fmt.Errorf("trace: negative core id %d", coreID)
	}
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		return nil, fmt.Errorf("trace: line size %d must be a power of two", lineBytes)
	}
	base := (uint64(coreID) + 1) << 36
	g := &Generator{
		p:         p,
		rng:       rand.New(rand.NewSource(seed ^ int64(uint64(coreID+1)*0x9e3779b97f4a7c15>>1))),
		lineBytes: uint64(lineBytes),
		pCold:     p.coldProb(),
		pWarm:     p.warmProb(),
	}
	// Randomize the region bases (row-aligned) the way an OS's physical
	// page allocator would: without this, every core's regions start at
	// the same power-of-two boundary and alias onto the same DRAM banks.
	rowLines := uint64(128)
	g.hotBase = base + uint64(g.rng.Int63n(1<<16))*rowLines*g.lineBytes              // within [base, base+512MiB)
	g.warmBase = base + (1 << 30) + uint64(g.rng.Int63n(1<<17))*rowLines*g.lineBytes // within [base+1GiB, base+2GiB)
	g.coldBase = base + (1 << 32)
	g.cold = make([]coldStream, p.Streams)
	for i := range g.cold {
		// Each stream walks its own slice of the cold region.
		span := uint64(coldRegionLines / len(g.cold))
		g.cold[i].lo = uint64(i) * span
		g.cold[i].span = span
		g.cold[i].ptr = g.cold[i].lo + uint64(g.rng.Int63n(int64(span/2)))
	}
	return g, nil
}

// PrewarmLines returns the line addresses of the application's resident
// working sets, for functional cache warming: hot lines belong in the L1
// (and L2), warm lines in the L2. This removes the cold-start transient that
// would otherwise dominate short simulations.
func (g *Generator) PrewarmLines() (hot, warm []uint64) {
	hot = make([]uint64, g.p.HotLines)
	for i := range hot {
		hot[i] = g.hotBase + uint64(i)*g.lineBytes
	}
	warm = make([]uint64, g.p.WarmLines)
	for i := range warm {
		warm[i] = g.warmBase + uint64(i)*g.lineBytes
	}
	return hot, warm
}

// coldStream is one of the application's concurrent streaming walks.
type coldStream struct {
	lo, span  uint64 // line range [lo, lo+span) of the cold region
	ptr       uint64 // current line offset
	burstLeft int
}

// Profile returns the profile the generator was built from.
func (g *Generator) Profile() Profile { return g.p }

// Issued returns the number of instructions generated so far.
func (g *Generator) Issued() uint64 { return g.issued }

// Next produces the next instruction of the stream.
func (g *Generator) Next() Instr {
	g.issued++
	if g.rng.Float64() >= g.p.MemFrac {
		return Instr{}
	}
	in := Instr{IsMem: true, IsStore: g.rng.Float64() < g.p.StoreFrac}
	r := g.rng.Float64()
	switch {
	case r < g.pCold:
		in.Addr = g.nextCold()
	case r < g.pCold+g.pWarm:
		in.Addr = g.warmBase + uint64(g.rng.Intn(g.p.WarmLines))*g.lineBytes
	default:
		in.Addr = g.hotBase + uint64(g.rng.Intn(g.p.HotLines))*g.lineBytes
	}
	// Touch a random word within the line so addresses look realistic
	// without changing cache behaviour.
	in.Addr += uint64(g.rng.Intn(int(g.lineBytes/8))) * 8
	return in
}

// nextCold advances one of the concurrent streaming pointers (round-robin):
// RowBurst consecutive lines, then a random forward jump. Pointers are
// monotonic modulo huge disjoint regions, so lines are effectively never
// reused (pure off-chip misses).
func (g *Generator) nextCold() uint64 {
	st := &g.cold[g.nextCStr]
	g.nextCStr = (g.nextCStr + 1) % len(g.cold)
	if st.burstLeft == 0 {
		skip := uint64(1+g.rng.Intn(maxSkipRows)) * 128 // jump whole rows
		st.ptr = st.lo + (st.ptr-st.lo+skip)%st.span
		st.burstLeft = g.p.RowBurst
	}
	addr := g.coldBase + st.ptr*g.lineBytes
	st.ptr = st.lo + (st.ptr-st.lo+1)%st.span
	st.burstLeft--
	return addr
}
