package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Trace file format (little endian):
//
//	magic   [8]byte  "NOCTRC1\n"
//	nHot    uint32   hot working-set size in lines
//	nWarm   uint32   warm working-set size in lines
//	hot     nHot  x uint64 line addresses
//	warm    nWarm x uint64 line addresses
//	records until EOF:
//	  flags byte     bit0 = memory op, bit1 = store
//	  addr  uint64   present only for memory ops
//
// A FileTrace replays the records in a loop, so a finite capture drives an
// arbitrarily long simulation.
var traceMagic = [8]byte{'N', 'O', 'C', 'T', 'R', 'C', '1', '\n'}

const (
	flagMem   = 1 << 0
	flagStore = 1 << 1
)

// Writer records an instruction stream to a trace file.
type Writer struct {
	w          *bufio.Writer
	headerDone bool
	records    int64
}

// NewWriter wraps w. WriteHeader must be called before the first Write.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

// WriteHeader emits the magic and the prewarm working sets.
func (t *Writer) WriteHeader(hot, warm []uint64) error {
	if t.headerDone {
		return fmt.Errorf("trace: header already written")
	}
	if _, err := t.w.Write(traceMagic[:]); err != nil {
		return err
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], uint32(len(hot)))
	if _, err := t.w.Write(b[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint32(b[:], uint32(len(warm)))
	if _, err := t.w.Write(b[:]); err != nil {
		return err
	}
	var a [8]byte
	for _, lines := range [][]uint64{hot, warm} {
		for _, l := range lines {
			binary.LittleEndian.PutUint64(a[:], l)
			if _, err := t.w.Write(a[:]); err != nil {
				return err
			}
		}
	}
	t.headerDone = true
	return nil
}

// Write appends one instruction record.
func (t *Writer) Write(in Instr) error {
	if !t.headerDone {
		return fmt.Errorf("trace: WriteHeader not called")
	}
	var flags byte
	if in.IsMem {
		flags |= flagMem
	}
	if in.IsStore {
		flags |= flagStore
	}
	if err := t.w.WriteByte(flags); err != nil {
		return err
	}
	if in.IsMem {
		var a [8]byte
		binary.LittleEndian.PutUint64(a[:], in.Addr)
		if _, err := t.w.Write(a[:]); err != nil {
			return err
		}
	}
	t.records++
	return nil
}

// Records returns the number of instruction records written.
func (t *Writer) Records() int64 { return t.records }

// Flush drains buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Record captures n instructions from a source into w.
func Record(w io.Writer, src AppSource, n int64) error {
	tw := NewWriter(w)
	hot, warm := src.PrewarmLines()
	if err := tw.WriteHeader(hot, warm); err != nil {
		return err
	}
	for i := int64(0); i < n; i++ {
		if err := tw.Write(src.Next()); err != nil {
			return err
		}
	}
	return tw.Flush()
}

// FileTrace replays a recorded trace, looping at EOF. It implements
// AppSource. Not safe for concurrent use.
type FileTrace struct {
	name    string
	data    []byte // instruction records (header stripped)
	pos     int
	hot     []uint64
	warm    []uint64
	records int64
	loops   int64
}

// OpenFile memory-maps (reads) a trace file for replay.
func OpenFile(path string) (*FileTrace, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	t.name = path
	return t, nil
}

// Parse decodes an in-memory trace image.
func Parse(raw []byte) (*FileTrace, error) {
	if len(raw) < len(traceMagic)+8 {
		return nil, fmt.Errorf("trace: file too short")
	}
	for i, m := range traceMagic {
		if raw[i] != m {
			return nil, fmt.Errorf("trace: bad magic")
		}
	}
	off := len(traceMagic)
	nHot := int(binary.LittleEndian.Uint32(raw[off:]))
	nWarm := int(binary.LittleEndian.Uint32(raw[off+4:]))
	off += 8
	need := off + 8*(nHot+nWarm)
	if len(raw) < need {
		return nil, fmt.Errorf("trace: truncated prewarm section")
	}
	t := &FileTrace{hot: make([]uint64, nHot), warm: make([]uint64, nWarm)}
	for i := range t.hot {
		t.hot[i] = binary.LittleEndian.Uint64(raw[off:])
		off += 8
	}
	for i := range t.warm {
		t.warm[i] = binary.LittleEndian.Uint64(raw[off:])
		off += 8
	}
	t.data = raw[off:]
	// Validate the record stream and count the records once.
	for p := 0; p < len(t.data); {
		flags := t.data[p]
		p++
		if flags&flagMem != 0 {
			if p+8 > len(t.data) {
				return nil, fmt.Errorf("trace: truncated record at byte %d", p)
			}
			p += 8
		}
		t.records++
	}
	if t.records == 0 {
		return nil, fmt.Errorf("trace: no instruction records")
	}
	return t, nil
}

// Records returns the number of records in one pass of the trace.
func (t *FileTrace) Records() int64 { return t.records }

// Loops returns how many times the trace has wrapped so far.
func (t *FileTrace) Loops() int64 { return t.loops }

// PrewarmLines implements AppSource.
func (t *FileTrace) PrewarmLines() (hot, warm []uint64) { return t.hot, t.warm }

// Next implements Source, looping at the end of the capture.
func (t *FileTrace) Next() Instr {
	if t.pos >= len(t.data) {
		t.pos = 0
		t.loops++
	}
	flags := t.data[t.pos]
	t.pos++
	in := Instr{IsMem: flags&flagMem != 0, IsStore: flags&flagStore != 0}
	if in.IsMem {
		in.Addr = binary.LittleEndian.Uint64(t.data[t.pos:])
		t.pos += 8
	}
	return in
}
