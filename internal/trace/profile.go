// Package trace synthesizes per-application instruction and memory-reference
// streams that stand in for the SPEC CPU2006 binaries used by the paper
// (which are proprietary; see DESIGN.md, substitution table).
//
// Each application is described by a Profile: its off-chip intensity (MPKI),
// how many of its instructions touch memory, how many of those are stores,
// its row-buffer locality (burst length of the streaming component), and its
// working-set sizes. A Generator turns a Profile into a deterministic
// instruction stream whose cache behaviour, when run through the simulated
// L1/L2 hierarchy, lands close to the profile's targets:
//
//   - a hot set small enough to stay L1-resident (L1 hits),
//   - a warm set larger than L1 but L2-resident (L1 misses, L2 hits),
//   - a cold stream that never reuses lines (off-chip misses), advancing
//     sequentially for RowBurst lines before jumping (row-buffer locality).
package trace

import "fmt"

// Profile describes the synthetic memory behaviour of one application.
type Profile struct {
	Name string

	// MPKI is the target off-chip misses per kilo-instruction (the
	// paper's memory-intensity metric).
	MPKI float64

	// WarmAPKI is the target rate of L1-miss/L2-hit accesses per
	// kilo-instruction (on-chip L2 traffic beyond the off-chip misses).
	WarmAPKI float64

	// MemFrac is the fraction of instructions that are loads or stores.
	MemFrac float64

	// StoreFrac is the fraction of memory operations that are stores.
	StoreFrac float64

	// RowBurst is the number of consecutive cache lines a cold stream
	// touches before jumping to a random location. Large values model
	// streaming applications with high row-buffer locality; 1-4 models
	// pointer chasing.
	RowBurst int

	// Streams is the number of concurrent cold streams (distinct arrays
	// being walked). Scientific codes interleave several; pointer chasers
	// effectively have one or two.
	Streams int

	// HotLines and WarmLines size the two resident working sets, in
	// cache lines.
	HotLines  int
	WarmLines int
}

// MemoryIntensive reports whether the paper would classify this application
// as memory intensive (high MPKI).
func (p Profile) MemoryIntensive() bool { return p.MPKI >= 6 }

// Validate reports the first inconsistency in the profile, or nil.
func (p Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("trace: profile has no name")
	case p.MemFrac <= 0 || p.MemFrac >= 1:
		return fmt.Errorf("trace: %s MemFrac %v out of (0,1)", p.Name, p.MemFrac)
	case p.StoreFrac < 0 || p.StoreFrac > 1:
		return fmt.Errorf("trace: %s StoreFrac %v out of [0,1]", p.Name, p.StoreFrac)
	case p.MPKI < 0 || p.WarmAPKI < 0:
		return fmt.Errorf("trace: %s negative access rates", p.Name)
	case p.RowBurst < 1:
		return fmt.Errorf("trace: %s RowBurst %d < 1", p.Name, p.RowBurst)
	case p.Streams < 1:
		return fmt.Errorf("trace: %s Streams %d < 1", p.Name, p.Streams)
	case p.HotLines < 1 || p.WarmLines < 1:
		return fmt.Errorf("trace: %s working sets must be >= 1 line", p.Name)
	}
	if p.coldProb()+p.warmProb() > 1 {
		return fmt.Errorf("trace: %s MPKI %v + WarmAPKI %v exceed the memory-op budget (MemFrac %v)",
			p.Name, p.MPKI, p.WarmAPKI, p.MemFrac)
	}
	return nil
}

// coldProb is the per-memory-op probability of an off-chip (cold) access.
func (p Profile) coldProb() float64 { return p.MPKI / (1000 * p.MemFrac) }

// warmProb is the per-memory-op probability of an L2-hit (warm) access.
func (p Profile) warmProb() float64 { return p.WarmAPKI / (1000 * p.MemFrac) }

// spec2006 holds the synthetic stand-ins for every SPEC CPU2006 application
// named in Table 2 of the paper. MPKI magnitudes follow published
// characterizations (memory-intensive: mcf, lbm, milc, libquantum, leslie3d,
// GemsFDTD, soplex, sphinx3, xalancbmk, omnetpp); the remaining knobs encode
// each application's qualitative behaviour (streaming vs pointer chasing).
var spec2006 = []Profile{
	// Memory intensive.
	{Name: "mcf", MPKI: 39, WarmAPKI: 210, MemFrac: 0.35, StoreFrac: 0.25, RowBurst: 2, Streams: 2, HotLines: 128, WarmLines: 4096},
	{Name: "lbm", MPKI: 30, WarmAPKI: 142, MemFrac: 0.32, StoreFrac: 0.45, RowBurst: 512, Streams: 8, HotLines: 128, WarmLines: 2048},
	{Name: "milc", MPKI: 26, WarmAPKI: 158, MemFrac: 0.32, StoreFrac: 0.30, RowBurst: 64, Streams: 4, HotLines: 128, WarmLines: 3072},
	{Name: "libquantum", MPKI: 26, WarmAPKI: 105, MemFrac: 0.28, StoreFrac: 0.20, RowBurst: 512, Streams: 4, HotLines: 128, WarmLines: 1024},
	{Name: "soplex", MPKI: 25, WarmAPKI: 165, MemFrac: 0.30, StoreFrac: 0.20, RowBurst: 32, Streams: 4, HotLines: 128, WarmLines: 3072},
	{Name: "leslie3d", MPKI: 20, WarmAPKI: 135, MemFrac: 0.30, StoreFrac: 0.30, RowBurst: 256, Streams: 8, HotLines: 128, WarmLines: 2048},
	{Name: "GemsFDTD", MPKI: 18, WarmAPKI: 142, MemFrac: 0.33, StoreFrac: 0.30, RowBurst: 256, Streams: 8, HotLines: 128, WarmLines: 2048},
	{Name: "sphinx3", MPKI: 12, WarmAPKI: 128, MemFrac: 0.30, StoreFrac: 0.15, RowBurst: 64, Streams: 4, HotLines: 128, WarmLines: 3072},
	{Name: "xalancbmk", MPKI: 9, WarmAPKI: 135, MemFrac: 0.30, StoreFrac: 0.25, RowBurst: 4, Streams: 2, HotLines: 192, WarmLines: 4096},
	// omnetpp sits on the intensity border; Table 2's mixed workloads
	// split exactly 16/16 only when it counts as non-intensive.
	{Name: "omnetpp", MPKI: 5.5, WarmAPKI: 120, MemFrac: 0.32, StoreFrac: 0.30, RowBurst: 2, Streams: 2, HotLines: 192, WarmLines: 4096},

	// Memory non-intensive.
	{Name: "zeusmp", MPKI: 4.0, WarmAPKI: 68, MemFrac: 0.30, StoreFrac: 0.30, RowBurst: 128, Streams: 6, HotLines: 256, WarmLines: 2048},
	{Name: "bwaves", MPKI: 4.0, WarmAPKI: 60, MemFrac: 0.30, StoreFrac: 0.25, RowBurst: 256, Streams: 8, HotLines: 256, WarmLines: 1536},
	{Name: "astar", MPKI: 3.0, WarmAPKI: 60, MemFrac: 0.32, StoreFrac: 0.25, RowBurst: 2, Streams: 2, HotLines: 256, WarmLines: 3072},
	{Name: "wrf", MPKI: 3.0, WarmAPKI: 52, MemFrac: 0.30, StoreFrac: 0.30, RowBurst: 128, Streams: 6, HotLines: 256, WarmLines: 1536},
	{Name: "bzip2", MPKI: 2.8, WarmAPKI: 52, MemFrac: 0.30, StoreFrac: 0.30, RowBurst: 16, Streams: 2, HotLines: 256, WarmLines: 2048},
	{Name: "gcc", MPKI: 2.0, WarmAPKI: 52, MemFrac: 0.30, StoreFrac: 0.30, RowBurst: 8, Streams: 2, HotLines: 256, WarmLines: 3072},
	{Name: "dealII", MPKI: 1.5, WarmAPKI: 45, MemFrac: 0.30, StoreFrac: 0.25, RowBurst: 16, Streams: 4, HotLines: 256, WarmLines: 2048},
	{Name: "hmmer", MPKI: 1.2, WarmAPKI: 38, MemFrac: 0.32, StoreFrac: 0.30, RowBurst: 32, Streams: 2, HotLines: 256, WarmLines: 1024},
	{Name: "perlbench", MPKI: 1.0, WarmAPKI: 45, MemFrac: 0.32, StoreFrac: 0.30, RowBurst: 4, Streams: 2, HotLines: 256, WarmLines: 2048},
	{Name: "gobmk", MPKI: 1.0, WarmAPKI: 38, MemFrac: 0.30, StoreFrac: 0.25, RowBurst: 4, Streams: 2, HotLines: 256, WarmLines: 1536},
	{Name: "gromacs", MPKI: 0.9, WarmAPKI: 33, MemFrac: 0.30, StoreFrac: 0.25, RowBurst: 32, Streams: 4, HotLines: 256, WarmLines: 1024},
	{Name: "h264ref", MPKI: 0.8, WarmAPKI: 38, MemFrac: 0.32, StoreFrac: 0.25, RowBurst: 16, Streams: 4, HotLines: 256, WarmLines: 1024},
	{Name: "calculix", MPKI: 0.7, WarmAPKI: 30, MemFrac: 0.30, StoreFrac: 0.25, RowBurst: 32, Streams: 4, HotLines: 256, WarmLines: 1024},
	{Name: "tonto", MPKI: 0.6, WarmAPKI: 30, MemFrac: 0.30, StoreFrac: 0.25, RowBurst: 8, Streams: 2, HotLines: 256, WarmLines: 1024},
	{Name: "sjeng", MPKI: 0.5, WarmAPKI: 27, MemFrac: 0.28, StoreFrac: 0.25, RowBurst: 2, Streams: 2, HotLines: 256, WarmLines: 1536},
	{Name: "namd", MPKI: 0.3, WarmAPKI: 22, MemFrac: 0.30, StoreFrac: 0.25, RowBurst: 16, Streams: 4, HotLines: 256, WarmLines: 768},
	{Name: "povray", MPKI: 0.3, WarmAPKI: 22, MemFrac: 0.30, StoreFrac: 0.20, RowBurst: 4, Streams: 2, HotLines: 256, WarmLines: 768},
	{Name: "gamess", MPKI: 0.2, WarmAPKI: 18, MemFrac: 0.30, StoreFrac: 0.25, RowBurst: 8, Streams: 2, HotLines: 256, WarmLines: 768},
}

var profileByName = func() map[string]Profile {
	m := make(map[string]Profile, len(spec2006))
	for _, p := range spec2006 {
		if err := p.Validate(); err != nil {
			panic(err)
		}
		m[p.Name] = p
	}
	return m
}()

// Lookup returns the built-in profile for a SPEC CPU2006 application name
// as spelled in Table 2 of the paper.
func Lookup(name string) (Profile, error) {
	p, ok := profileByName[name]
	if !ok {
		return Profile{}, fmt.Errorf("trace: no profile for application %q", name)
	}
	return p, nil
}

// MustLookup is Lookup for names known at compile time; it panics on error.
func MustLookup(name string) Profile {
	p, err := Lookup(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Profiles returns all built-in application profiles, memory-intensive
// first, in decreasing MPKI order.
func Profiles() []Profile {
	out := make([]Profile, len(spec2006))
	copy(out, spec2006)
	return out
}
