package trace

import (
	"bytes"
	"testing"
)

func TestTraceRoundTrip(t *testing.T) {
	g, err := NewGenerator(MustLookup("milc"), 2, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	const n = 50_000
	if err := Record(&buf, g, n); err != nil {
		t.Fatal(err)
	}

	ft, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if ft.Records() != n {
		t.Fatalf("parsed %d records, want %d", ft.Records(), n)
	}

	// Replay must match a fresh generator instruction-for-instruction.
	ref, _ := NewGenerator(MustLookup("milc"), 2, 64, 7)
	for i := 0; i < n; i++ {
		want := ref.Next()
		if got := ft.Next(); got != want {
			t.Fatalf("record %d: %+v != %+v", i, got, want)
		}
	}
	// Prewarm sets survive the round trip.
	wantHot, wantWarm := ref.PrewarmLines()
	gotHot, gotWarm := ft.PrewarmLines()
	if len(gotHot) != len(wantHot) || len(gotWarm) != len(wantWarm) {
		t.Fatalf("prewarm sizes %d/%d, want %d/%d", len(gotHot), len(gotWarm), len(wantHot), len(wantWarm))
	}
	for i := range wantHot {
		if gotHot[i] != wantHot[i] {
			t.Fatalf("hot line %d mismatch", i)
		}
	}

	if ft.Loops() != 0 {
		t.Fatalf("premature loop after exactly one pass")
	}
}

func TestTraceLoops(t *testing.T) {
	g, _ := NewGenerator(MustLookup("gamess"), 0, 64, 1)
	var buf bytes.Buffer
	if err := Record(&buf, g, 100); err != nil {
		t.Fatal(err)
	}
	ft, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var firstPass []Instr
	for i := 0; i < 100; i++ {
		firstPass = append(firstPass, ft.Next())
	}
	for i := 0; i < 100; i++ {
		if got := ft.Next(); got != firstPass[i] {
			t.Fatalf("loop replay diverges at %d", i)
		}
	}
	if ft.Loops() != 1 {
		t.Fatalf("loops %d, want 1", ft.Loops())
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("BADMAGIC........................"),
		append(append([]byte{}, traceMagic[:]...), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0), // absurd nHot
	}
	for i, raw := range cases {
		if _, err := Parse(raw); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Header but zero records is also invalid.
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteHeader(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(buf.Bytes()); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestWriterGuards(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Write(Instr{}); err == nil {
		t.Error("write before header accepted")
	}
	if err := w.WriteHeader(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader(nil, nil); err == nil {
		t.Error("double header accepted")
	}
}
