package exp

import (
	"bytes"
	"sync"
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/sim"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

func summaryBytes(t *testing.T, r *sim.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterminismAcrossExecutionModes checks that the same (seed, config,
// workload) yields a byte-identical result summary whether the simulation
// is built and run directly, run through a sequential runner, or run
// through a parallel runner: each simulation is one goroutine over private
// state, so the worker pool must not be observable in the results.
func TestDeterminismAcrossExecutionModes(t *testing.T) {
	opts := tinyOpts()
	w, err := workload.Get(7)
	if err != nil {
		t.Fatal(err)
	}
	apps, err := w.Profiles()
	if err != nil {
		t.Fatal(err)
	}

	cfg := opts.apply(config.Baseline32())
	padded := make([]trace.Profile, cfg.Mesh.Nodes())
	copy(padded, apps)
	s, err := sim.New(cfg, padded)
	if err != nil {
		t.Fatal(err)
	}
	direct := summaryBytes(t, s.Run())

	seqOpts := opts
	seqOpts.Parallelism = 1
	seqRes, err := NewRunner(seqOpts).runWorkload(config.Baseline32(), w)
	if err != nil {
		t.Fatal(err)
	}
	seq := summaryBytes(t, seqRes)

	parOpts := opts
	parOpts.Parallelism = 4
	parRes, err := NewRunner(parOpts).runWorkload(config.Baseline32(), w)
	if err != nil {
		t.Fatal(err)
	}
	par := summaryBytes(t, parRes)

	if !bytes.Equal(direct, seq) {
		t.Errorf("sequential runner summary differs from direct simulation\ndirect: %d bytes\nrunner: %d bytes", len(direct), len(seq))
	}
	if !bytes.Equal(direct, par) {
		t.Errorf("parallel runner summary differs from direct simulation\ndirect: %d bytes\nrunner: %d bytes", len(direct), len(par))
	}
}

// TestRunnerConcurrentFigures generates two figures concurrently on one
// parallel runner — with a progress sink installed — and checks the output
// bytes match a sequential runner's. Under -race this doubles as the data
// race canary for the singleflight cache, the worker pool, and the shared
// progress sink (Fig12 and Fig13 share base runs, so dedup is exercised).
func TestRunnerConcurrentFigures(t *testing.T) {
	cfg := config.Baseline32()

	seq := NewRunner(func() Options { o := tinyOpts(); o.Parallelism = 1; return o }())
	var wantA, wantB bytes.Buffer
	if err := seq.Fig12(&wantA, cfg); err != nil {
		t.Fatal(err)
	}
	if err := seq.Fig13(&wantB, cfg); err != nil {
		t.Fatal(err)
	}

	par := NewRunner(func() Options { o := tinyOpts(); o.Parallelism = 4; return o }())
	par.SetProgress(func(format string, args ...any) {}) // exercise the sink under race
	var gotA, gotB bytes.Buffer
	var wg sync.WaitGroup
	var errA, errB error
	wg.Add(2)
	go func() { defer wg.Done(); errA = par.Fig12(&gotA, cfg) }()
	go func() { defer wg.Done(); errB = par.Fig13(&gotB, cfg) }()
	wg.Wait()
	if errA != nil {
		t.Fatal(errA)
	}
	if errB != nil {
		t.Fatal(errB)
	}

	if gotA.String() != wantA.String() {
		t.Errorf("concurrent Fig12 output differs from sequential:\n--- sequential\n%s--- concurrent\n%s", wantA.String(), gotA.String())
	}
	if gotB.String() != wantB.String() {
		t.Errorf("concurrent Fig13 output differs from sequential:\n--- sequential\n%s--- concurrent\n%s", wantB.String(), gotB.String())
	}
}
