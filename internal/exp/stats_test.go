package exp

import (
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/trace"
)

// statsGrid is an 8-point policy sweep on one substrate: every point differs
// only in policy dimensions (schemes, app-aware baselines, memory scheduler),
// so all 8 share a single warmup snapshot group.
func statsGrid() []config.Config {
	base := config.Baseline16()
	base.Run.WarmupCycles = 2_000
	base.Run.MeasureCycles = 4_000
	base.S1.UpdatePeriod = 1_000

	var grid []config.Config
	for _, s := range [][2]bool{{false, false}, {true, false}, {false, true}, {true, true}} {
		grid = append(grid, base.WithSchemes(s[0], s[1]))
	}
	appNet := base
	appNet.AppAwareNet = true
	appMem := base
	appMem.DRAM.Sched = config.AppAwareMem
	fcfs := base
	fcfs.DRAM.Sched = config.FCFS
	thr := base.WithSchemes(true, true)
	thr.S1.ThresholdFactor = 1.3
	grid = append(grid, appNet, appMem, fcfs, thr)
	return grid
}

// TestStatsPolicySweep pins the provenance counters of an 8-config policy
// sweep with warmup sharing: one warmup window, every measurement run forked
// from it (the issue's floor is forked >= 6), exactly one execution per
// unique key, and a repeat of the grid absorbed entirely by the run cache.
func TestStatsPolicySweep(t *testing.T) {
	grid := statsGrid()
	apps := []trace.Profile{trace.MustLookup("mcf"), trace.MustLookup("lbm")}
	r := NewRunner(Options{ShareWarmup: true})

	runAll := func() {
		t.Helper()
		for _, cfg := range grid {
			if _, err := r.RunConfig(cfg, apps, "mcf+lbm"); err != nil {
				t.Fatal(err)
			}
		}
	}

	runAll()
	st := r.Stats()
	if st.Runs != 8 || st.Executed != 8 || st.CacheHits != 0 {
		t.Errorf("first pass: runs=%d executed=%d hits=%d, want 8/8/0", st.Runs, st.Executed, st.CacheHits)
	}
	if st.Warmups != 1 {
		t.Errorf("first pass executed %d warmups, want 1 (all 8 points share one snapshot group)", st.Warmups)
	}
	if st.Forked < 6 {
		t.Errorf("first pass forked %d runs, want >= 6", st.Forked)
	}
	if st.Forked != st.Executed {
		t.Errorf("forked %d of %d executed runs — some point fell out of the snapshot group", st.Forked, st.Executed)
	}
	// 8 forks draw on one snapshot: the producer's own request plus 7
	// in-memory hits, and nothing from disk (no store is attached).
	if st.SnapshotMemHits != 7 {
		t.Errorf("%d snapshot mem hits, want 7", st.SnapshotMemHits)
	}
	if st.SnapshotDiskHits != 0 || st.SnapshotEvictions != 0 {
		t.Errorf("disk hits %d, evictions %d, want 0/0 (no store attached)", st.SnapshotDiskHits, st.SnapshotEvictions)
	}

	// The identical grid again: all cache, no new work of any kind.
	runAll()
	st2 := r.Stats()
	if st2.Runs != 16 || st2.Executed != 8 || st2.CacheHits != 8 {
		t.Errorf("second pass: runs=%d executed=%d hits=%d, want 16/8/8", st2.Runs, st2.Executed, st2.CacheHits)
	}
	if st2.Warmups != 1 || st2.Forked != st.Forked {
		t.Errorf("second pass did fresh work: warmups=%d forked=%d", st2.Warmups, st2.Forked)
	}
}

// TestStatsColdRunner pins the counters without warmup sharing: every run
// executes cold, so the fork-cache counters all stay zero.
func TestStatsColdRunner(t *testing.T) {
	grid := statsGrid()[:2]
	apps := []trace.Profile{trace.MustLookup("milc")}
	r := NewRunner(Options{})
	for _, cfg := range grid {
		if _, err := r.RunConfig(cfg, apps, "milc"); err != nil {
			t.Fatal(err)
		}
	}
	st := r.Stats()
	if st.Runs != 2 || st.Executed != 2 || st.CacheHits != 0 {
		t.Errorf("runs=%d executed=%d hits=%d, want 2/2/0", st.Runs, st.Executed, st.CacheHits)
	}
	if st.Warmups != 0 || st.Forked != 0 || st.SnapshotMemHits != 0 {
		t.Errorf("cold runner touched the fork cache: %+v", st)
	}
}
