// Package exp regenerates every table and figure of the paper's evaluation
// (Section 4). Each Fig*/Table* function runs the simulations it needs
// (sharing runs and alone-IPC measurements through an in-process cache) and
// writes the same rows/series the paper plots as tab-separated text.
package exp

import (
	"fmt"
	"io"
	"sort"

	"nocmem/internal/config"
	"nocmem/internal/sim"
	"nocmem/internal/stats"
	"nocmem/internal/workload"
)

// weightedSpeedup computes WS for a finished run.
func (r *Runner) weightedSpeedup(cfg config.Config, res *sim.Result) (float64, error) {
	var shared, alone []float64
	for _, tile := range res.ActiveTiles() {
		a, err := r.aloneIPC(cfg, res.Apps[tile])
		if err != nil {
			return 0, err
		}
		shared = append(shared, res.IPC[tile])
		alone = append(alone, a)
	}
	return stats.WeightedSpeedup(shared, alone)
}

// SpeedupRow is one workload's Figure 11 data point.
type SpeedupRow struct {
	Workload workload.Workload
	Base     float64
	NormS1   float64
	NormS1S2 float64
}

// Speedups measures the normalized weighted speedups of the given workloads
// under a configuration (Figure 11 / 15 / 16 / 17 core loop). With
// Parallelism > 1 every run (workload x scheme, plus the alone-IPC runs) is
// prefetched across the worker pool; assembly below is then served from the
// cache, so the rows are identical to a sequential execution.
func (r *Runner) Speedups(cfg config.Config, ws []workload.Workload) ([]SpeedupRow, error) {
	var tasks []func() error
	for _, w := range ws {
		for _, s := range [][2]bool{{false, false}, {true, false}, {true, true}} {
			tasks = append(tasks, r.runTask(cfg.WithSchemes(s[0], s[1]), w))
		}
		alone, err := r.aloneTasks(cfg, w)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, alone...)
	}
	if err := r.prefetch(tasks); err != nil {
		return nil, err
	}

	var rows []SpeedupRow
	for _, w := range ws {
		row := SpeedupRow{Workload: w}
		base, err := r.runWorkload(cfg.WithSchemes(false, false), w)
		if err != nil {
			return nil, err
		}
		if row.Base, err = r.weightedSpeedup(cfg, base); err != nil {
			return nil, err
		}
		s1, err := r.runWorkload(cfg.WithSchemes(true, false), w)
		if err != nil {
			return nil, err
		}
		ws1, err := r.weightedSpeedup(cfg, s1)
		if err != nil {
			return nil, err
		}
		s12, err := r.runWorkload(cfg.WithSchemes(true, true), w)
		if err != nil {
			return nil, err
		}
		ws12, err := r.weightedSpeedup(cfg, s12)
		if err != nil {
			return nil, err
		}
		row.NormS1 = ws1 / row.Base
		row.NormS1S2 = ws12 / row.Base
		rows = append(rows, row)
	}
	return rows, nil
}

// findApp returns the first tile of the run executing the named application.
func findApp(res *sim.Result, name string) (int, error) {
	for _, tile := range res.ActiveTiles() {
		if res.Apps[tile].Name == name {
			return tile, nil
		}
	}
	return 0, fmt.Errorf("exp: no tile runs %s", name)
}

// Table1 prints the baseline configuration.
func Table1(w io.Writer, cfg config.Config) {
	fmt.Fprintf(w, "# Table 1: baseline configuration\n")
	fmt.Fprintf(w, "Processors\t%d out-of-order cores, window %d, LSQ %d, width %d\n",
		cfg.Mesh.Nodes(), cfg.CPU.WindowSize, cfg.CPU.LSQSize, cfg.CPU.Width)
	fmt.Fprintf(w, "NoC\t%dx%d mesh, %d-stage routers, %d-bit flits, %d VCs/port, %d-flit buffers, X-Y routing\n",
		cfg.Mesh.Width, cfg.Mesh.Height, cfg.NoC.Pipeline, cfg.NoC.FlitBits, cfg.NoC.VCsPerPort, cfg.NoC.BufferDepth)
	fmt.Fprintf(w, "L1\t%d KB direct-mapped, %d B lines, %d-cycle\n",
		cfg.L1.SizeBytes>>10, cfg.L1.LineBytes, cfg.L1.Latency)
	fmt.Fprintf(w, "L2\t%d banks x %d KB, %d-way, %d-cycle, S-NUCA line interleaving\n",
		cfg.Mesh.Nodes(), cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.Latency)
	fmt.Fprintf(w, "Memory\t%d controllers x %d banks, bus multiplier %d, tRCD/tRP/tCL %d/%d/%d, burst %d, ctl latency %d, %d B rows\n",
		cfg.DRAM.Controllers, cfg.DRAM.BanksPerCtl, cfg.DRAM.BusMultiplier,
		cfg.DRAM.TActivate, cfg.DRAM.TPrecharge, cfg.DRAM.TCAS, cfg.DRAM.TBurst, cfg.DRAM.CtlLatency, cfg.DRAM.RowBytes)
	fmt.Fprintf(w, "Schemes\tS1 threshold %.1fx avg (push every %d cycles), S2 T=%d th=%d, starvation window %d\n",
		cfg.S1.ThresholdFactor, cfg.S1.UpdatePeriod, cfg.S2.HistoryWindow, cfg.S2.IdleThreshold, cfg.NoC.StarvationWindow)
}

// Table2 prints the 18 workloads.
func Table2(w io.Writer) {
	fmt.Fprintf(w, "# Table 2: multiprogrammed workloads\n")
	for _, wl := range workload.All() {
		fmt.Fprintf(w, "%s\t%s\t", wl.Name(), wl.Category)
		for i, a := range wl.Apps {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s(%d)", a.Name, a.Count)
		}
		fmt.Fprintln(w)
	}
}

// Fig4 prints the per-leg delay breakdown by total-delay range for the first
// milc instance in workload-2 (base system).
func (r *Runner) Fig4(w io.Writer, cfg config.Config) error {
	wl, err := workload.Get(2)
	if err != nil {
		return err
	}
	res, err := r.runWorkload(cfg.WithSchemes(false, false), wl)
	if err != nil {
		return err
	}
	tile, err := findApp(res, "milc")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 4: avg per-leg delays of off-chip accesses by total-delay range (milc, workload-2)\n")
	fmt.Fprintf(w, "range_lo\trange_hi\tcount\tL1toL2\tL2toMem\tMem\tMemtoL2\tL2toL1\n")
	for _, row := range res.Collector.Breakdown[tile].Rows() {
		fmt.Fprintf(w, "%d\t%d\t%d", row.Lo, row.Hi, row.Count)
		for l := stats.Leg(0); l < stats.NumLegs; l++ {
			fmt.Fprintf(w, "\t%.1f", row.Avg[l])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig5 prints the latency distribution of the same milc instance.
func (r *Runner) Fig5(w io.Writer, cfg config.Config) error {
	wl, err := workload.Get(2)
	if err != nil {
		return err
	}
	res, err := r.runWorkload(cfg.WithSchemes(false, false), wl)
	if err != nil {
		return err
	}
	tile, err := findApp(res, "milc")
	if err != nil {
		return err
	}
	h := res.Collector.RoundTrip[tile]
	fmt.Fprintf(w, "# Fig 5: off-chip latency distribution (milc, workload-2); mean=%.0f p90=%d p99=%d\n",
		h.Mean(), h.Percentile(90), h.Percentile(99))
	fmt.Fprintf(w, "delay\tfraction\n")
	for _, p := range h.PDF() {
		if p.Y > 0 {
			fmt.Fprintf(w, "%d\t%.5f\n", p.X, p.Y)
		}
	}
	return nil
}

// Fig6 prints the average idleness of the banks of the first memory
// controller under workload-1 (base system).
func (r *Runner) Fig6(w io.Writer, cfg config.Config) error {
	wl, err := workload.Get(1)
	if err != nil {
		return err
	}
	res, err := r.runWorkload(cfg.WithSchemes(false, false), wl)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 6: average idleness of MC0 banks (workload-1, base)\n")
	fmt.Fprintf(w, "bank\tidleness\n")
	for b, v := range res.BankIdleness[0] {
		fmt.Fprintf(w, "%d\t%.3f\n", b, v)
	}
	return nil
}

// Fig9 prints the round-trip and so-far delay distributions with the
// averages and the Scheme-1 threshold marked (milc, workload-2).
func (r *Runner) Fig9(w io.Writer, cfg config.Config) error {
	wl, err := workload.Get(2)
	if err != nil {
		return err
	}
	res, err := r.runWorkload(cfg.WithSchemes(false, false), wl)
	if err != nil {
		return err
	}
	tile, err := findApp(res, "milc")
	if err != nil {
		return err
	}
	rt, sf := res.Collector.RoundTrip[tile], res.Collector.SoFar[tile]
	fmt.Fprintf(w, "# Fig 9: round-trip vs so-far delay distributions (milc, workload-2)\n")
	fmt.Fprintf(w, "# Delay_avg=%.0f Delay_so_far_avg=%.0f threshold(1.2x)=%.0f\n",
		rt.Mean(), sf.Mean(), 1.2*rt.Mean())
	fmt.Fprintf(w, "delay\tround_trip\tso_far\n")
	pdfRT, pdfSF := rt.PDF(), sf.PDF()
	for i := range pdfRT {
		if pdfRT[i].Y == 0 && pdfSF[i].Y == 0 {
			continue
		}
		fmt.Fprintf(w, "%d\t%.5f\t%.5f\n", pdfRT[i].X, pdfRT[i].Y, pdfSF[i].Y)
	}
	return nil
}

// Fig11 prints the normalized weighted speedups of all 18 workloads on the
// 32-core system (Scheme-1 alone and Scheme-1+2).
func (r *Runner) Fig11(w io.Writer, cfg config.Config, ids []int) error {
	var wls []workload.Workload
	for _, id := range ids {
		wl, err := workload.Get(id)
		if err != nil {
			return err
		}
		wls = append(wls, wl)
	}
	rows, err := r.Speedups(cfg, wls)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 11: normalized weighted speedup, %d-core system\n", cfg.Mesh.Nodes())
	fmt.Fprintf(w, "workload\tcategory\tbase_ws\tscheme1\tscheme1+2\n")
	sums := map[workload.Category][3]float64{}
	counts := map[workload.Category]int{}
	for _, row := range rows {
		fmt.Fprintf(w, "w-%d\t%s\t%.3f\t%.4f\t%.4f\n",
			row.Workload.ID, row.Workload.Category, row.Base, row.NormS1, row.NormS1S2)
		s := sums[row.Workload.Category]
		s[0] += row.Base
		s[1] += row.NormS1
		s[2] += row.NormS1S2
		sums[row.Workload.Category] = s
		counts[row.Workload.Category]++
	}
	cats := make([]workload.Category, 0, len(sums))
	for c := range sums {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool { return cats[i] < cats[j] })
	for _, c := range cats {
		n := float64(counts[c])
		s := sums[c]
		fmt.Fprintf(w, "avg:%s\t\t%.3f\t%.4f\t%.4f\n", c, s[0]/n, s[1]/n, s[2]/n)
	}
	return nil
}

// Fig12 prints the CDFs of the first 8 applications of workload-1 under the
// base system and under Scheme-1, plus the lbm PDF shift (regions 1/2).
func (r *Runner) Fig12(w io.Writer, cfg config.Config) error {
	wl, err := workload.Get(1)
	if err != nil {
		return err
	}
	if err := r.prefetch([]func() error{
		r.runTask(cfg.WithSchemes(false, false), wl),
		r.runTask(cfg.WithSchemes(true, false), wl),
	}); err != nil {
		return err
	}
	base, err := r.runWorkload(cfg.WithSchemes(false, false), wl)
	if err != nil {
		return err
	}
	s1, err := r.runWorkload(cfg.WithSchemes(true, false), wl)
	if err != nil {
		return err
	}
	tiles := base.ActiveTiles()[:8]
	fmt.Fprintf(w, "# Fig 12a/b: off-chip latency CDFs of the first 8 applications of workload-1\n")
	fmt.Fprintf(w, "delay")
	for _, tile := range tiles {
		fmt.Fprintf(w, "\t%s.base\t%s.s1", base.Apps[tile].Name, base.Apps[tile].Name)
	}
	fmt.Fprintln(w)
	cdfs := make([][]stats.Point, 0, 2*len(tiles))
	for _, tile := range tiles {
		cdfs = append(cdfs, base.Collector.RoundTrip[tile].CDF(), s1.Collector.RoundTrip[tile].CDF())
	}
	for i := range cdfs[0] {
		done := true
		for _, c := range cdfs {
			if c[i].Y < 1 {
				done = false
			}
		}
		fmt.Fprintf(w, "%d", cdfs[0][i].X)
		for _, c := range cdfs {
			fmt.Fprintf(w, "\t%.4f", c[i].Y)
		}
		fmt.Fprintln(w)
		if done {
			break
		}
	}

	// The p90 shift the paper highlights, averaged over the 8 apps.
	var p90b, p90s float64
	for _, tile := range tiles {
		p90b += float64(base.Collector.RoundTrip[tile].Percentile(90)) / float64(len(tiles))
		p90s += float64(s1.Collector.RoundTrip[tile].Percentile(90)) / float64(len(tiles))
	}
	fmt.Fprintf(w, "# avg p90: base=%.0f scheme1=%.0f\n", p90b, p90s)

	lbm, err := findApp(base, "lbm")
	if err != nil {
		return err
	}
	hb, hs := base.Collector.RoundTrip[lbm], s1.Collector.RoundTrip[lbm]
	fmt.Fprintf(w, "# Fig 12c: lbm latency PDF before/after Scheme-1; region boundary = 1.2x base mean = %.0f\n", 1.2*hb.Mean())
	fmt.Fprintf(w, "# fraction in region-1 (late): base=%.4f scheme1=%.4f\n",
		hb.FractionAbove(int64(1.2*hb.Mean())), hs.FractionAbove(int64(1.2*hb.Mean())))
	fmt.Fprintf(w, "delay\tbase\tscheme1\n")
	pb, ps := hb.PDF(), hs.PDF()
	for i := range pb {
		if pb[i].Y == 0 && ps[i].Y == 0 {
			continue
		}
		fmt.Fprintf(w, "%d\t%.5f\t%.5f\n", pb[i].X, pb[i].Y, ps[i].Y)
	}
	return nil
}

// Fig13 prints per-bank idleness with and without Scheme-2 (workload-1).
func (r *Runner) Fig13(w io.Writer, cfg config.Config) error {
	wl, err := workload.Get(1)
	if err != nil {
		return err
	}
	if err := r.prefetch([]func() error{
		r.runTask(cfg.WithSchemes(false, false), wl),
		r.runTask(cfg.WithSchemes(false, true), wl),
	}); err != nil {
		return err
	}
	base, err := r.runWorkload(cfg.WithSchemes(false, false), wl)
	if err != nil {
		return err
	}
	s2, err := r.runWorkload(cfg.WithSchemes(false, true), wl)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 13: MC0 bank idleness, default vs Scheme-2 (workload-1)\n")
	fmt.Fprintf(w, "bank\tdefault\tscheme2\n")
	for b := range base.BankIdleness[0] {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", b, base.BankIdleness[0][b], s2.BankIdleness[0][b])
	}
	return nil
}

// Fig14 prints average bank idleness over time, default vs Scheme-2.
func (r *Runner) Fig14(w io.Writer, cfg config.Config) error {
	wl, err := workload.Get(1)
	if err != nil {
		return err
	}
	if err := r.prefetch([]func() error{
		r.runTask(cfg.WithSchemes(false, false), wl),
		r.runTask(cfg.WithSchemes(false, true), wl),
	}); err != nil {
		return err
	}
	base, err := r.runWorkload(cfg.WithSchemes(false, false), wl)
	if err != nil {
		return err
	}
	s2, err := r.runWorkload(cfg.WithSchemes(false, true), wl)
	if err != nil {
		return err
	}
	avgAt := func(res *sim.Result) map[int64]float64 {
		sum := map[int64]float64{}
		n := map[int64]int{}
		for _, series := range res.IdleSeries {
			for _, p := range series.Points() {
				sum[p.Cycle] += p.Avg
				n[p.Cycle]++
			}
		}
		for k := range sum {
			sum[k] /= float64(n[k])
		}
		return sum
	}
	b, s := avgAt(base), avgAt(s2)
	var cycles []int64
	for c := range b {
		cycles = append(cycles, c)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i] < cycles[j] })
	fmt.Fprintf(w, "# Fig 14: average bank idleness over time (workload-1)\n")
	fmt.Fprintf(w, "cycle\tdefault\tscheme2\n")
	for _, c := range cycles {
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\n", c, b[c], s[c])
	}
	return nil
}

// Fig15 prints the 16-core speedups (halved workloads, 4x4 mesh, 2 MCs).
func (r *Runner) Fig15(w io.Writer, ids []int) error {
	cfg := config.Baseline16()
	var wls []workload.Workload
	for _, id := range ids {
		full, err := workload.Get(id)
		if err != nil {
			return err
		}
		half, err := full.Halve()
		if err != nil {
			return err
		}
		wls = append(wls, half)
	}
	rows, err := r.Speedups(cfg, wls)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# Fig 15: normalized weighted speedup, 16-core 4x4 system, halved workloads\n")
	fmt.Fprintf(w, "workload\tcategory\tbase_ws\tscheme1\tscheme1+2\n")
	for _, row := range rows {
		fmt.Fprintf(w, "w-%d\t%s\t%.3f\t%.4f\t%.4f\n",
			row.Workload.ID, row.Workload.Category, row.Base, row.NormS1, row.NormS1S2)
	}
	return nil
}

// Fig16a prints the Scheme-1 threshold sensitivity (workloads 1-6).
func (r *Runner) Fig16a(w io.Writer, cfg config.Config, factors []float64) error {
	var tasks []func() error
	for id := 1; id <= 6; id++ {
		wl, err := workload.Get(id)
		if err != nil {
			return err
		}
		tasks = append(tasks, r.runTask(cfg.WithSchemes(false, false), wl))
		alone, err := r.aloneTasks(cfg, wl)
		if err != nil {
			return err
		}
		tasks = append(tasks, alone...)
		for _, f := range factors {
			c := cfg.WithSchemes(true, false)
			c.S1.ThresholdFactor = f
			tasks = append(tasks, r.runTask(c, wl))
		}
	}
	if err := r.prefetch(tasks); err != nil {
		return err
	}

	fmt.Fprintf(w, "# Fig 16a: Scheme-1 threshold sensitivity (mixed workloads)\n")
	fmt.Fprintf(w, "workload")
	for _, f := range factors {
		fmt.Fprintf(w, "\t%.1fx", f)
	}
	fmt.Fprintln(w)
	for id := 1; id <= 6; id++ {
		wl, err := workload.Get(id)
		if err != nil {
			return err
		}
		base, err := r.runWorkload(cfg.WithSchemes(false, false), wl)
		if err != nil {
			return err
		}
		bws, err := r.weightedSpeedup(cfg, base)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "w-%d", id)
		for _, f := range factors {
			c := cfg.WithSchemes(true, false)
			c.S1.ThresholdFactor = f
			res, err := r.runWorkload(c, wl)
			if err != nil {
				return err
			}
			ws, err := r.weightedSpeedup(cfg, res)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\t%.4f", ws/bws)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig16b prints the Scheme-2 history-length sensitivity (workloads 1-6).
func (r *Runner) Fig16b(w io.Writer, cfg config.Config, windows []int64) error {
	var tasks []func() error
	for id := 1; id <= 6; id++ {
		wl, err := workload.Get(id)
		if err != nil {
			return err
		}
		tasks = append(tasks, r.runTask(cfg.WithSchemes(false, false), wl))
		alone, err := r.aloneTasks(cfg, wl)
		if err != nil {
			return err
		}
		tasks = append(tasks, alone...)
		for _, T := range windows {
			c := cfg.WithSchemes(true, true)
			c.S2.HistoryWindow = T
			tasks = append(tasks, r.runTask(c, wl))
		}
	}
	if err := r.prefetch(tasks); err != nil {
		return err
	}

	fmt.Fprintf(w, "# Fig 16b: Scheme-2 history length T sensitivity (mixed workloads)\n")
	fmt.Fprintf(w, "workload")
	for _, T := range windows {
		fmt.Fprintf(w, "\tT=%d", T)
	}
	fmt.Fprintln(w)
	for id := 1; id <= 6; id++ {
		wl, err := workload.Get(id)
		if err != nil {
			return err
		}
		base, err := r.runWorkload(cfg.WithSchemes(false, false), wl)
		if err != nil {
			return err
		}
		bws, err := r.weightedSpeedup(cfg, base)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "w-%d", id)
		for _, T := range windows {
			c := cfg.WithSchemes(true, true)
			c.S2.HistoryWindow = T
			res, err := r.runWorkload(c, wl)
			if err != nil {
				return err
			}
			ws, err := r.weightedSpeedup(cfg, res)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\t%.4f", ws/bws)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig16c prints the sensitivity to the number of memory controllers.
func (r *Runner) Fig16c(w io.Writer, cfg config.Config) error {
	var tasks []func() error
	for id := 1; id <= 6; id++ {
		wl, err := workload.Get(id)
		if err != nil {
			return err
		}
		for _, mcs := range []int{2, 4} {
			c := cfg
			c.DRAM.Controllers = mcs
			tasks = append(tasks,
				r.runTask(c.WithSchemes(false, false), wl),
				r.runTask(c.WithSchemes(true, true), wl))
			alone, err := r.aloneTasks(c, wl)
			if err != nil {
				return err
			}
			tasks = append(tasks, alone...)
		}
	}
	if err := r.prefetch(tasks); err != nil {
		return err
	}

	fmt.Fprintf(w, "# Fig 16c: 2 vs 4 memory controllers, Scheme-1+2 (mixed workloads)\n")
	fmt.Fprintf(w, "workload\t2mc\t4mc\n")
	for id := 1; id <= 6; id++ {
		wl, err := workload.Get(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "w-%d", id)
		for _, mcs := range []int{2, 4} {
			c := cfg
			c.DRAM.Controllers = mcs
			base, err := r.runWorkload(c.WithSchemes(false, false), wl)
			if err != nil {
				return err
			}
			bws, err := r.weightedSpeedup(c, base)
			if err != nil {
				return err
			}
			res, err := r.runWorkload(c.WithSchemes(true, true), wl)
			if err != nil {
				return err
			}
			ws, err := r.weightedSpeedup(c, res)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\t%.4f", ws/bws)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Fig17 prints the router-pipeline sensitivity (5-stage vs 2-stage).
func (r *Runner) Fig17(w io.Writer, cfg config.Config) error {
	var tasks []func() error
	for id := 1; id <= 6; id++ {
		wl, err := workload.Get(id)
		if err != nil {
			return err
		}
		for _, p := range []config.RouterPipeline{config.Pipeline5, config.Pipeline2} {
			c := cfg
			c.NoC.Pipeline = p
			tasks = append(tasks,
				r.runTask(c.WithSchemes(false, false), wl),
				r.runTask(c.WithSchemes(true, true), wl))
			alone, err := r.aloneTasks(c, wl)
			if err != nil {
				return err
			}
			tasks = append(tasks, alone...)
		}
	}
	if err := r.prefetch(tasks); err != nil {
		return err
	}

	fmt.Fprintf(w, "# Fig 17: 5-stage vs 2-stage router pipelines, Scheme-1+2 (mixed workloads)\n")
	fmt.Fprintf(w, "workload\t5stage\t2stage\n")
	for id := 1; id <= 6; id++ {
		wl, err := workload.Get(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "w-%d", id)
		for _, p := range []config.RouterPipeline{config.Pipeline5, config.Pipeline2} {
			c := cfg
			c.NoC.Pipeline = p
			base, err := r.runWorkload(c.WithSchemes(false, false), wl)
			if err != nil {
				return err
			}
			bws, err := r.weightedSpeedup(c, base)
			if err != nil {
				return err
			}
			res, err := r.runWorkload(c.WithSchemes(true, true), wl)
			if err != nil {
				return err
			}
			ws, err := r.weightedSpeedup(c, res)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\t%.4f", ws/bws)
		}
		fmt.Fprintln(w)
	}
	return nil
}
