package exp

import (
	"bytes"
	"strings"
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/workload"
)

// tinyOpts keeps exp tests fast: the 32-core runs below take ~0.1s each.
func tinyOpts() Options {
	return Options{WarmupCycles: 2_000, MeasureCycles: 15_000, Seed: 1, ThresholdPushPeriod: 2_000}
}

func TestTable1Output(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf, config.Baseline32())
	out := buf.String()
	for _, want := range []string{"32 out-of-order cores", "8x4 mesh", "4 controllers x 16 banks", "S-NUCA"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Output(t *testing.T) {
	var buf bytes.Buffer
	Table2(&buf)
	out := buf.String()
	if got := strings.Count(out, "workload-"); got != 18 {
		t.Errorf("%d workload rows, want 18", got)
	}
	for _, want := range []string{"workload-7\tmem-intensive", "mcf(3), lbm(2)"} {
		if !strings.Contains(out, want) {
			t.Errorf("table 2 missing %q", want)
		}
	}
}

func TestFig4RowsParse(t *testing.T) {
	r := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := r.Fig4(&buf, config.Baseline32()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("fig4 produced only %d lines:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[1], "range_lo\trange_hi") {
		t.Errorf("missing header: %s", lines[1])
	}
	for _, l := range lines[2:] {
		if got := len(strings.Split(l, "\t")); got != 8 {
			t.Errorf("row has %d columns, want 8: %s", got, l)
		}
	}
}

func TestFig6AllBanksReported(t *testing.T) {
	r := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := r.Fig6(&buf, config.Baseline32()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if got := len(lines) - 2; got != 16 { // header lines + 16 banks
		t.Errorf("%d bank rows, want 16", got)
	}
}

func TestSpeedupsRunsCacheAndNormalize(t *testing.T) {
	r := NewRunner(tinyOpts())
	w, err := workload.Get(13)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := r.Speedups(config.Baseline32(), []workload.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	row := rows[0]
	if row.Base <= 0 || row.NormS1 <= 0 || row.NormS1S2 <= 0 {
		t.Errorf("row %+v", row)
	}
	// A second identical request must be served entirely from the cache
	// (same pointer results -> identical values, quickly).
	rows2, err := r.Speedups(config.Baseline32(), []workload.Workload{w})
	if err != nil {
		t.Fatal(err)
	}
	if rows2[0].Base != row.Base || rows2[0].NormS1 != row.NormS1 || rows2[0].NormS1S2 != row.NormS1S2 {
		t.Errorf("cached rerun differs: %+v vs %+v", rows2[0], row)
	}
}

func TestFig16aShape(t *testing.T) {
	// Only exercise the plumbing on a single factor to keep this fast.
	r := NewRunner(tinyOpts())
	var buf bytes.Buffer
	if err := r.Fig16a(&buf, config.Baseline32(), []float64{1.2}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if got := len(lines) - 2; got != 6 { // header + 6 mixed workloads
		t.Errorf("%d workload rows, want 6\n%s", got, buf.String())
	}
}

// TestAllFiguresSmoke drives every figure generator once at miniature scale,
// verifying that each produces parseable, non-empty output.
func TestAllFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure sweep in -short mode")
	}
	r := NewRunner(Options{WarmupCycles: 1_000, MeasureCycles: 8_000, Seed: 1, ThresholdPushPeriod: 2_000})
	cfg := config.Baseline32()
	cases := []struct {
		name string
		run  func(buf *bytes.Buffer) error
	}{
		{"fig5", func(b *bytes.Buffer) error { return r.Fig5(b, cfg) }},
		{"fig9", func(b *bytes.Buffer) error { return r.Fig9(b, cfg) }},
		{"fig11", func(b *bytes.Buffer) error { return r.Fig11(b, cfg, []int{13}) }},
		{"fig12", func(b *bytes.Buffer) error { return r.Fig12(b, cfg) }},
		{"fig13", func(b *bytes.Buffer) error { return r.Fig13(b, cfg) }},
		{"fig14", func(b *bytes.Buffer) error { return r.Fig14(b, cfg) }},
		{"fig15", func(b *bytes.Buffer) error { return r.Fig15(b, []int{13}) }},
		{"fig16b", func(b *bytes.Buffer) error { return r.Fig16b(b, cfg, []int64{2000}) }},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		if err := tc.run(&buf); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
		if len(lines) < 3 {
			t.Errorf("%s produced only %d lines", tc.name, len(lines))
		}
		for _, l := range lines {
			if strings.Contains(l, "NaN") || strings.Contains(l, "Inf") {
				t.Errorf("%s contains invalid numbers: %s", tc.name, l)
			}
		}
	}
}
