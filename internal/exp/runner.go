package exp

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"nocmem/internal/config"
	"nocmem/internal/forkrun"
	"nocmem/internal/par"
	"nocmem/internal/sim"
	"nocmem/internal/trace"
	"nocmem/internal/workload"
)

// Options scales the measurement protocol. The zero value selects the
// defaults (100k warmup, 300k measurement — roughly 100x shorter than the
// paper's windows, see DESIGN.md).
type Options struct {
	WarmupCycles  int64
	MeasureCycles int64
	Seed          int64
	// ThresholdPushPeriod overrides the Scheme-1 update period (scaled
	// from the paper's 1 ms to fit the shorter windows).
	ThresholdPushPeriod int64

	// Parallelism bounds how many simulations the runner executes
	// concurrently. 0 (the default) selects GOMAXPROCS; 1 forces the
	// sequential path. Every simulation is an independent deterministic
	// cycle loop, so results are bit-identical at any setting.
	Parallelism int

	// ShareWarmup amortizes warmup across configurations: the first run of
	// each compatible group (same substrate, placement, warmup length —
	// see internal/forkrun) warms up once under the unprioritized baseline
	// and checkpoints; every run then restores that snapshot and executes
	// only its measurement window. Runs measuring a scheme warm up under
	// the baseline policy instead of their own, so results can differ
	// slightly from cold runs — hence opt-in.
	ShareWarmup bool
}

func (o Options) apply(cfg config.Config) config.Config {
	cfg.Run.WarmupCycles = 100_000
	cfg.Run.MeasureCycles = 300_000
	cfg.S1.UpdatePeriod = 20_000
	if o.WarmupCycles > 0 {
		cfg.Run.WarmupCycles = o.WarmupCycles
	}
	if o.MeasureCycles > 0 {
		cfg.Run.MeasureCycles = o.MeasureCycles
	}
	if o.Seed != 0 {
		cfg.Run.Seed = o.Seed
	}
	if o.ThresholdPushPeriod > 0 {
		cfg.S1.UpdatePeriod = o.ThresholdPushPeriod
	}
	return cfg
}

// Runner executes and caches simulation runs for one Options setting.
//
// Concurrency model: a Runner is safe for concurrent use. Each simulation
// run is keyed by (config, label); the first requester of a key computes it
// and every concurrent or later requester waits for (or reuses) that single
// result — singleflight semantics, so a run shared by several figures is
// executed exactly once even when the figures are generated in parallel.
// Actual simulation execution is gated by a worker semaphore of
// Options.Parallelism slots; the figure helpers prefetch the runs they need
// through that pool before assembling their output sequentially, which
// keeps output bytes identical to a sequential execution.
type Runner struct {
	opts    Options
	workers int
	sem     chan struct{} // bounds concurrently executing simulations

	mu   sync.Mutex
	runs map[string]*runEntry

	// forks holds the warmup snapshots shared across runs when
	// Options.ShareWarmup is set. Its singleflight slots layer under the
	// run cache: the run cache dedups identical (config, label) runs, the
	// fork cache dedups the warmup prefix of distinct runs.
	forks forkrun.Cache

	progMu   sync.Mutex
	progress func(format string, args ...any)

	// Progress, if set, receives one line per fresh simulation run.
	//
	// Deprecated direct assignment: use SetProgress, which may be called
	// at any time; assigning Progress directly is only safe before the
	// first run. Both funnel through one mutex so concurrent runs cannot
	// interleave torn log lines.
	Progress func(format string, args ...any)

	// Cache-provenance counters (see Stats).
	reqs, hits, executed atomic.Int64

	// Lease-provenance counters (see Stats and AddLeaseStats).
	leasesGranted, leasesExpired, leasesRelayed, remoteDone, dupDone atomic.Int64
}

// Stats reports where a Runner's results came from: how many run requests it
// saw, how many simulations it actually executed, how many requests the
// in-memory singleflight cache absorbed, and the warmup-sharing counters of
// the underlying fork cache. Surfaced by the simulation daemon's /statsz
// endpoint and by sweep -v.
type Stats struct {
	// Runs counts run requests, including ones served from the cache.
	Runs int64 `json:"runs"`
	// Executed counts fresh simulations this runner performed.
	Executed int64 `json:"executed"`
	// CacheHits counts requests coalesced onto (or recalled from) an
	// earlier identical run — Runs - Executed, tracked explicitly so a
	// torn read can never fabricate work that did not happen.
	CacheHits int64 `json:"cache_hits"`
	// Forked counts measurement runs forked from a shared warm snapshot
	// (only ever non-zero with Options.ShareWarmup).
	Forked int64 `json:"forked"`
	// Warmups counts warmup windows executed by the fork cache.
	Warmups int64 `json:"warmups"`
	// SnapshotMemHits / SnapshotDiskHits / SnapshotEvictions are the fork
	// cache's snapshot provenance (see forkrun.Stats).
	SnapshotMemHits   int64 `json:"snapshot_mem_hits"`
	SnapshotDiskHits  int64 `json:"snapshot_disk_hits"`
	SnapshotEvictions int64 `json:"snapshot_evictions"`

	// Distributed-sweep lease provenance, populated through AddLeaseStats by
	// the simulation daemon's coordinator (internal/simd); all zero on a
	// purely local runner. LeasesGranted counts points handed to workers
	// (re-grants of the same point included); LeasesExpired counts leases
	// reclaimed after their TTL passed without a completion; LeasesRelayed
	// counts points put back on the queue for another worker (expiry or a
	// reported failure); RemoteCompletions counts results accepted from
	// workers; DuplicateCompletions counts redundant completions for points
	// that had already finished — absorbed idempotently, never re-merged.
	LeasesGranted        int64 `json:"leases_granted,omitempty"`
	LeasesExpired        int64 `json:"leases_expired,omitempty"`
	LeasesRelayed        int64 `json:"leases_relayed,omitempty"`
	RemoteCompletions    int64 `json:"remote_completions,omitempty"`
	DuplicateCompletions int64 `json:"duplicate_completions,omitempty"`
}

// Stats returns the runner's cache-provenance counters.
func (r *Runner) Stats() Stats {
	fs := r.forks.Stats()
	return Stats{
		Runs:                 r.reqs.Load(),
		Executed:             r.executed.Load(),
		CacheHits:            r.hits.Load(),
		Forked:               fs.Forked,
		Warmups:              fs.Warmups,
		SnapshotMemHits:      fs.MemHits,
		SnapshotDiskHits:     fs.DiskHits,
		SnapshotEvictions:    fs.Evictions,
		LeasesGranted:        r.leasesGranted.Load(),
		LeasesExpired:        r.leasesExpired.Load(),
		LeasesRelayed:        r.leasesRelayed.Load(),
		RemoteCompletions:    r.remoteDone.Load(),
		DuplicateCompletions: r.dupDone.Load(),
	}
}

// AddLeaseStats accumulates distributed-sweep lease provenance into the
// runner's Stats. Called by the coordinator's lease table (internal/simd) so
// lease traffic surfaces alongside the execution counters in /statsz and
// sweep -v; a purely local runner never sees a call.
func (r *Runner) AddLeaseStats(granted, expired, relayed, completed, duplicate int64) {
	r.leasesGranted.Add(granted)
	r.leasesExpired.Add(expired)
	r.leasesRelayed.Add(relayed)
	r.remoteDone.Add(completed)
	r.dupDone.Add(duplicate)
}

// SetSnapshotStore backs the runner's warmup-sharing fork cache with a
// persistent snapshot store (the daemon's on-disk store), so warm images
// survive restarts. Call before the first run; only meaningful with
// Options.ShareWarmup.
func (r *Runner) SetSnapshotStore(st forkrun.SnapshotStore) {
	r.forks.SetStore(st)
}

// runEntry is one singleflight cache slot: done is closed when res/err are
// final.
type runEntry struct {
	done chan struct{}
	res  *sim.Result
	err  error
}

// NewRunner returns a runner with an empty cache.
func NewRunner(opts Options) *Runner {
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		opts:    opts,
		workers: workers,
		sem:     make(chan struct{}, workers),
		runs:    make(map[string]*runEntry),
	}
}

// Parallelism returns the effective worker count.
func (r *Runner) Parallelism() int { return r.workers }

// SetProgress installs the progress sink (may be nil to silence).
func (r *Runner) SetProgress(fn func(format string, args ...any)) {
	r.progMu.Lock()
	r.progress = fn
	r.progMu.Unlock()
}

func (r *Runner) logf(format string, args ...any) {
	r.progMu.Lock()
	fn := r.progress
	if fn == nil {
		fn = r.Progress
	}
	if fn != nil {
		fn(format, args...)
	}
	r.progMu.Unlock()
}

// cfgKey returns the cache key of a fully-applied configuration.
func cfgKey(cfg config.Config) string { return cfg.Key() }

// RunKey returns the cache key under which a (config, label) run is
// deduplicated and stored: the config's field-by-field key plus the label
// naming the application placement. The simulation daemon addresses its
// on-disk result store with the same key, so in-memory singleflight and
// on-disk dedup agree about what "the same run" means.
func RunKey(cfg config.Config, label string) string {
	return cfgKey(cfg) + "|" + label
}

// run executes (or recalls, or waits for) a full workload run.
func (r *Runner) run(cfg config.Config, apps []trace.Profile, label string) (*sim.Result, error) {
	return r.runKeyed(r.opts.apply(cfg), apps, label)
}

// RunConfig executes (or recalls) one fully-specified configuration without
// applying the runner's Options defaults: the entry point of the simulation
// daemon, whose clients send complete configs (warmup/measurement windows
// included). The same singleflight cache and worker semaphore as the figure
// helpers apply, so concurrent identical requests — even from different
// clients — execute exactly one simulation.
func (r *Runner) RunConfig(cfg config.Config, apps []trace.Profile, label string) (*sim.Result, error) {
	return r.runKeyed(cfg, apps, label)
}

func (r *Runner) runKeyed(cfg config.Config, apps []trace.Profile, label string) (*sim.Result, error) {
	key := RunKey(cfg, label)
	r.reqs.Add(1)
	r.mu.Lock()
	if e, ok := r.runs[key]; ok {
		r.mu.Unlock()
		<-e.done
		r.hits.Add(1)
		return e.res, e.err
	}
	e := &runEntry{done: make(chan struct{})}
	r.runs[key] = e
	r.mu.Unlock()

	r.executed.Add(1)
	e.res, e.err = r.execute(cfg, apps, label)
	close(e.done)
	return e.res, e.err
}

// execute performs one fresh simulation under the worker semaphore.
func (r *Runner) execute(cfg config.Config, apps []trace.Profile, label string) (*sim.Result, error) {
	r.sem <- struct{}{}
	defer func() { <-r.sem }()
	padded := make([]trace.Profile, cfg.Mesh.Nodes())
	copy(padded, apps)
	r.logf("running %s (mesh %dx%d, S1=%v S2=%v)...",
		label, cfg.Mesh.Width, cfg.Mesh.Height, cfg.S1.Enabled, cfg.S2.Enabled)
	if r.opts.ShareWarmup {
		// A waiter on another run's warmup snapshot parks holding its
		// semaphore slot; the producer holds its own slot, so the wait
		// always resolves — some parallelism is traded for the shared
		// warmup.
		return r.forks.Run(cfg, padded)
	}
	s, err := sim.New(cfg, padded)
	if err != nil {
		return nil, err
	}
	return s.Run(), nil
}

// runWorkload executes a Table 2 workload.
func (r *Runner) runWorkload(cfg config.Config, w workload.Workload) (*sim.Result, error) {
	apps, err := w.Profiles()
	if err != nil {
		return nil, err
	}
	return r.run(cfg, apps, w.Name())
}

// aloneIPC measures (and caches) one application's alone IPC on the
// unprioritized system. The underlying run is deduplicated by the
// singleflight cache, so concurrent callers share one simulation.
func (r *Runner) aloneIPC(cfg config.Config, app trace.Profile) (float64, error) {
	res, err := r.run(cfg.WithSchemes(false, false), []trace.Profile{app}, "alone-"+app.Name)
	if err != nil {
		return 0, err
	}
	ipc := res.IPC[0]
	if ipc <= 0 {
		return 0, fmt.Errorf("exp: alone IPC of %s is %v", app.Name, ipc)
	}
	return ipc, nil
}

// --- Prefetching: the parallel execution engine ---

// prefetch runs the given tasks concurrently on the worker pool and returns
// the first error. With Parallelism <= 1 it is a no-op: the sequential
// assembly code that follows performs exactly the original run sequence.
func (r *Runner) prefetch(tasks []func() error) error {
	if r.workers <= 1 || len(tasks) < 2 {
		return nil
	}
	// The group may admit every task at once: the run semaphore (not the
	// group) bounds how many simulations actually execute, and waiters of
	// deduplicated runs park on a channel without holding a worker slot.
	g := par.NewGroup(len(tasks))
	for _, fn := range tasks {
		g.Go(fn)
	}
	return g.Wait()
}

// runTask returns a prefetch task executing one workload run.
func (r *Runner) runTask(cfg config.Config, w workload.Workload) func() error {
	return func() error {
		_, err := r.runWorkload(cfg, w)
		return err
	}
}

// aloneTasks returns prefetch tasks for the alone runs weightedSpeedup will
// request for this workload under cfg (one per distinct application).
func (r *Runner) aloneTasks(cfg config.Config, w workload.Workload) ([]func() error, error) {
	apps, err := w.Profiles()
	if err != nil {
		return nil, err
	}
	var tasks []func() error
	seen := make(map[string]bool)
	for _, a := range apps {
		if a.Name == "" || seen[a.Name] {
			continue
		}
		seen[a.Name] = true
		app := a
		tasks = append(tasks, func() error {
			_, err := r.aloneIPC(cfg, app)
			return err
		})
	}
	return tasks, nil
}
