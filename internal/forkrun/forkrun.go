// Package forkrun amortizes simulation warmup across configurations.
//
// A parameter sweep runs the same workload under N policy variants; without
// sharing, every variant re-executes an identical (or near-identical) warmup
// before its measurement window. Cache instead executes the warmup once per
// compatible group — under the unprioritized baseline policy, since the
// variants must share one warm state — checkpoints the warmed simulator, and
// restores that snapshot for every variant's measurement run.
//
// Compatibility follows sim.Restore's own rules: a snapshot is keyed by
// config.SnapshotKey (the policy-free configuration prefix), the application
// placement, the warmup length and the shard count. Variants differing only
// in Scheme-1/Scheme-2, the application-aware baselines or the memory
// scheduler share a snapshot; anything touching the substrate (mesh, caches,
// DRAM timing, seed, ...) forms its own group.
//
// The trade-off: a forked run warms up under the baseline policy even when
// it measures a scheme, so its results can differ slightly from a cold run
// whose warmup already had the scheme enabled. Measurement statistics are
// reset at the fork point either way. Callers opt in explicitly (the -fork
// flags of cmd/sweep, cmd/figures and cmd/nocsim).
//
// A Cache may additionally be backed by a persistent SnapshotStore (the
// simulation daemon's on-disk store): warm images then survive process
// restarts, so a freshly started daemon forks measurement runs from
// checkpoints warmed in a previous life instead of re-executing a single
// warmup cycle. A store image that fails to restore is evicted — from memory
// and disk — and the warmup re-executes, so corruption degrades to wasted
// work, never to an error surfaced on a request that a fresh warmup could
// have served.
package forkrun

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"nocmem/internal/config"
	"nocmem/internal/sim"
	"nocmem/internal/snapshot"
	"nocmem/internal/trace"
)

// SnapshotStore persists warm checkpoint images across processes. Save and
// Delete are best-effort (implementations log and continue on I/O failure);
// Load returns ok=false for both absent and unreadable entries.
type SnapshotStore interface {
	LoadSnapshot(key string) (img []byte, ok bool)
	SaveSnapshot(key string, img []byte)
	DeleteSnapshot(key string)
}

// Stats reports where a Cache's snapshots came from — the warmup-provenance
// counters surfaced by the daemon's /statsz and by sweep -v.
type Stats struct {
	// Warmups counts warmup windows actually executed by this process.
	Warmups int64 `json:"warmups"`
	// Forked counts measurement runs forked from a shared warm snapshot.
	Forked int64 `json:"forked"`
	// MemHits counts snapshot requests served by the in-memory cache
	// (i.e. coalesced onto an earlier requester's warmup or load).
	MemHits int64 `json:"mem_hits"`
	// DiskHits counts snapshots resurrected from the persistent store.
	DiskHits int64 `json:"disk_hits"`
	// Evictions counts snapshots ejected as corrupt (header or restore
	// failure of a store image).
	Evictions int64 `json:"evictions"`
}

// entry is one singleflight slot: done is closed when snap/err are final.
type entry struct {
	done      chan struct{}
	snap      []byte
	err       error
	fromStore bool // snap was loaded from the persistent store
}

// Cache memoizes warmed-up checkpoints. The zero value is ready to use; a
// Cache is safe for concurrent use. Concurrent runs needing the same
// snapshot wait for the first requester's warmup instead of repeating it.
type Cache struct {
	mu    sync.Mutex
	snaps map[string]*entry
	store SnapshotStore

	warmups, forked, memHits, diskHits, evictions atomic.Int64
}

// SetStore installs the persistent snapshot store backing this cache. Call
// before the first Run; nil disables persistence.
func (c *Cache) SetStore(st SnapshotStore) {
	c.mu.Lock()
	c.store = st
	c.mu.Unlock()
}

// Stats returns the cache's provenance counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Warmups:   c.warmups.Load(),
		Forked:    c.forked.Load(),
		MemHits:   c.memHits.Load(),
		DiskHits:  c.diskHits.Load(),
		Evictions: c.evictions.Load(),
	}
}

// Key returns the snapshot cache key of cfg's run: everything that
// determines whether two runs may restore the same warmed state. The
// placement is keyed by application name, matching the name check
// sim.Restore performs against the snapshot header. The stepping layout
// (Run.Shards, NoSteal) is deliberately absent: snapshots are
// partition-agnostic, so one warmup image serves every worker count.
func Key(cfg config.Config, apps []trace.Profile) string {
	var b strings.Builder
	b.WriteString(cfg.SnapshotKey())
	fmt.Fprintf(&b, "|w%d", cfg.Run.WarmupCycles)
	for _, a := range apps {
		b.WriteByte('|')
		b.WriteString(a.Name)
	}
	return b.String()
}

// Snapshots reports how many distinct warm snapshots the cache holds in
// memory (executed by this process or resurrected from the store).
func (c *Cache) Snapshots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.snaps)
}

// Run executes cfg's full warmup+measurement window over apps (one profile
// per tile) and returns the measurement results, sharing the warmup with
// every other compatible configuration. Runs with no warmup, or that manage
// checkpoints themselves via Run.CheckpointAt/ResumeFrom, fall back to a
// plain cold run.
func (c *Cache) Run(cfg config.Config, apps []trace.Profile) (*sim.Result, error) {
	if cfg.Run.WarmupCycles <= 0 || cfg.Run.CheckpointAt != 0 || cfg.Run.ResumeFrom != 0 {
		s, err := sim.New(cfg, apps)
		if err != nil {
			return nil, err
		}
		return s.Run(), nil
	}
	for attempt := 0; ; attempt++ {
		snap, fromStore, err := c.snapshot(cfg, apps)
		if err != nil {
			return nil, fmt.Errorf("forkrun: warmup snapshot: %w", err)
		}
		rcfg := cfg
		rcfg.Run.ResumeFrom = cfg.Run.WarmupCycles
		s, err := sim.Restore(rcfg, apps, bytes.NewReader(snap))
		if err != nil {
			// A store image passed the header check but failed the full
			// decode (bit rot past the CRC's reach should be impossible, a
			// stale or foreign file is not): evict it everywhere and retry
			// once with a fresh warmup. A snapshot produced by this process
			// failing to restore is a real bug — surface it.
			if fromStore && attempt == 0 {
				c.evict(cfg, apps)
				continue
			}
			return nil, fmt.Errorf("forkrun: restoring warmup snapshot: %w", err)
		}
		c.forked.Add(1)
		return s.Run(), nil
	}
}

// snapshot returns (producing at most once per key) the warmed checkpoint
// image for cfg's group, reporting whether it came from the persistent
// store.
func (c *Cache) snapshot(cfg config.Config, apps []trace.Profile) ([]byte, bool, error) {
	key := Key(cfg, apps)
	c.mu.Lock()
	if c.snaps == nil {
		c.snaps = make(map[string]*entry)
	}
	if e, ok := c.snaps[key]; ok {
		c.mu.Unlock()
		<-e.done
		c.memHits.Add(1)
		return e.snap, e.fromStore, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.snaps[key] = e
	st := c.store
	c.mu.Unlock()
	defer close(e.done)

	if st != nil {
		if img, ok := st.LoadSnapshot(key); ok {
			// The store already checksummed the entry frame; validating the
			// checkpoint header here additionally rejects images written by
			// a binary with a different snapshot.Version before any run
			// wastes a restore attempt on them.
			if _, err := snapshot.NewReaderBytes(img); err == nil {
				e.snap, e.fromStore = img, true
				c.diskHits.Add(1)
				return e.snap, true, nil
			}
			st.DeleteSnapshot(key)
			c.evictions.Add(1)
		}
	}

	s, err := sim.New(canonical(cfg), apps)
	if err != nil {
		e.err = err
		return nil, false, err
	}
	s.Step(cfg.Run.WarmupCycles)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		e.err = err
		return nil, false, err
	}
	e.snap = buf.Bytes()
	c.warmups.Add(1)
	if st != nil {
		st.SaveSnapshot(key, e.snap)
	}
	return e.snap, false, nil
}

// evict drops a poisoned snapshot from the in-memory cache and the
// persistent store, so the next requester re-executes the warmup.
func (c *Cache) evict(cfg config.Config, apps []trace.Profile) {
	key := Key(cfg, apps)
	c.mu.Lock()
	delete(c.snaps, key)
	st := c.store
	c.mu.Unlock()
	if st != nil {
		st.DeleteSnapshot(key)
	}
	c.evictions.Add(1)
}

// canonical strips every policy dimension sim.Restore tolerates differing
// between the snapshot producer and the restoring run, so one warmed
// snapshot serves the whole policy cross product of its group.
func canonical(cfg config.Config) config.Config {
	cfg = cfg.WithSchemes(false, false)
	cfg.AppAwareNet = false
	cfg.DRAM.Sched = config.FRFCFS
	cfg.Run.CheckpointAt, cfg.Run.ResumeFrom = 0, 0
	return cfg
}
