// Package forkrun amortizes simulation warmup across configurations.
//
// A parameter sweep runs the same workload under N policy variants; without
// sharing, every variant re-executes an identical (or near-identical) warmup
// before its measurement window. Cache instead executes the warmup once per
// compatible group — under the unprioritized baseline policy, since the
// variants must share one warm state — checkpoints the warmed simulator, and
// restores that snapshot for every variant's measurement run.
//
// Compatibility follows sim.Restore's own rules: a snapshot is keyed by
// config.SnapshotKey (the policy-free configuration prefix), the application
// placement, the warmup length and the shard count. Variants differing only
// in Scheme-1/Scheme-2, the application-aware baselines or the memory
// scheduler share a snapshot; anything touching the substrate (mesh, caches,
// DRAM timing, seed, ...) forms its own group.
//
// The trade-off: a forked run warms up under the baseline policy even when
// it measures a scheme, so its results can differ slightly from a cold run
// whose warmup already had the scheme enabled. Measurement statistics are
// reset at the fork point either way. Callers opt in explicitly (the -fork
// flags of cmd/sweep, cmd/figures and cmd/nocsim).
package forkrun

import (
	"bytes"
	"fmt"
	"strings"
	"sync"

	"nocmem/internal/config"
	"nocmem/internal/sim"
	"nocmem/internal/trace"
)

// entry is one singleflight slot: done is closed when snap/err are final.
type entry struct {
	done chan struct{}
	snap []byte
	err  error
}

// Cache memoizes warmed-up checkpoints. The zero value is ready to use; a
// Cache is safe for concurrent use. Concurrent runs needing the same
// snapshot wait for the first requester's warmup instead of repeating it.
type Cache struct {
	mu    sync.Mutex
	snaps map[string]*entry
}

// Key returns the snapshot cache key of cfg's run: everything that
// determines whether two runs may restore the same warmed state. The
// placement is keyed by application name, matching the name check
// sim.Restore performs against the snapshot header. The stepping layout
// (Run.Shards, NoSteal) is deliberately absent: snapshots are
// partition-agnostic, so one warmup image serves every worker count.
func Key(cfg config.Config, apps []trace.Profile) string {
	var b strings.Builder
	b.WriteString(cfg.SnapshotKey())
	fmt.Fprintf(&b, "|w%d", cfg.Run.WarmupCycles)
	for _, a := range apps {
		b.WriteByte('|')
		b.WriteString(a.Name)
	}
	return b.String()
}

// Snapshots reports how many distinct warmup snapshots the cache holds —
// i.e. how many warmups were actually executed.
func (c *Cache) Snapshots() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.snaps)
}

// Run executes cfg's full warmup+measurement window over apps (one profile
// per tile) and returns the measurement results, sharing the warmup with
// every other compatible configuration. Runs with no warmup, or that manage
// checkpoints themselves via Run.CheckpointAt/ResumeFrom, fall back to a
// plain cold run.
func (c *Cache) Run(cfg config.Config, apps []trace.Profile) (*sim.Result, error) {
	if cfg.Run.WarmupCycles <= 0 || cfg.Run.CheckpointAt != 0 || cfg.Run.ResumeFrom != 0 {
		s, err := sim.New(cfg, apps)
		if err != nil {
			return nil, err
		}
		return s.Run(), nil
	}
	snap, err := c.snapshot(cfg, apps)
	if err != nil {
		return nil, fmt.Errorf("forkrun: warmup snapshot: %w", err)
	}
	rcfg := cfg
	rcfg.Run.ResumeFrom = cfg.Run.WarmupCycles
	s, err := sim.Restore(rcfg, apps, bytes.NewReader(snap))
	if err != nil {
		return nil, fmt.Errorf("forkrun: restoring warmup snapshot: %w", err)
	}
	return s.Run(), nil
}

// snapshot returns (producing at most once per key) the warmed checkpoint
// image for cfg's group.
func (c *Cache) snapshot(cfg config.Config, apps []trace.Profile) ([]byte, error) {
	key := Key(cfg, apps)
	c.mu.Lock()
	if c.snaps == nil {
		c.snaps = make(map[string]*entry)
	}
	if e, ok := c.snaps[key]; ok {
		c.mu.Unlock()
		<-e.done
		return e.snap, e.err
	}
	e := &entry{done: make(chan struct{})}
	c.snaps[key] = e
	c.mu.Unlock()
	defer close(e.done)

	s, err := sim.New(canonical(cfg), apps)
	if err != nil {
		e.err = err
		return nil, err
	}
	s.Step(cfg.Run.WarmupCycles)
	var buf bytes.Buffer
	if err := s.Checkpoint(&buf); err != nil {
		e.err = err
		return nil, err
	}
	e.snap = buf.Bytes()
	return e.snap, nil
}

// canonical strips every policy dimension sim.Restore tolerates differing
// between the snapshot producer and the restoring run, so one warmed
// snapshot serves the whole policy cross product of its group.
func canonical(cfg config.Config) config.Config {
	cfg = cfg.WithSchemes(false, false)
	cfg.AppAwareNet = false
	cfg.DRAM.Sched = config.FRFCFS
	cfg.Run.CheckpointAt, cfg.Run.ResumeFrom = 0, 0
	return cfg
}
