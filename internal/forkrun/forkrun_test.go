package forkrun

import (
	"bytes"
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/sim"
	"nocmem/internal/trace"
)

func testConfig() (config.Config, []trace.Profile) {
	cfg := config.Baseline16()
	cfg.Run.WarmupCycles = 4_000
	cfg.Run.MeasureCycles = 8_000
	cfg.S1.UpdatePeriod = 2_000
	apps := make([]trace.Profile, cfg.Mesh.Nodes())
	p := trace.MustLookup("mcf")
	for i := 0; i < 6; i++ {
		apps[i] = p
	}
	return cfg, apps
}

// TestForkedBaselineMatchesCold: for a configuration whose measurement
// policy IS the canonical warmup policy, forking changes nothing — the
// forked run must reproduce the cold run byte for byte. This is the
// correctness anchor of the whole amortization.
func TestForkedBaselineMatchesCold(t *testing.T) {
	cfg, apps := testConfig()
	s, err := sim.New(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	var cold bytes.Buffer
	if err := s.Run().WriteJSON(&cold); err != nil {
		t.Fatal(err)
	}

	var c Cache
	res, err := c.Run(cfg, apps)
	if err != nil {
		t.Fatal(err)
	}
	var forked bytes.Buffer
	if err := res.WriteJSON(&forked); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cold.Bytes(), forked.Bytes()) {
		t.Fatalf("forked baseline run differs from cold run\n--- cold ---\n%s\n--- forked ---\n%s", cold.Bytes(), forked.Bytes())
	}
}

// TestPolicyVariantsShareOneSnapshot: the base/S1/S1+S2 cross product of one
// workload — the shape of every figure sweep — must execute exactly one
// warmup, and each forked variant must still produce a live measurement.
func TestPolicyVariantsShareOneSnapshot(t *testing.T) {
	cfg, apps := testConfig()
	var c Cache
	for _, variant := range []config.Config{
		cfg,
		cfg.WithSchemes(true, false),
		cfg.WithSchemes(true, true),
		func() config.Config { v := cfg; v.AppAwareNet = true; return v }(),
		func() config.Config { v := cfg; v.DRAM.Sched = config.FCFS; return v }(),
	} {
		res, err := c.Run(variant, apps)
		if err != nil {
			t.Fatal(err)
		}
		var retired int64
		for _, cs := range res.CoreStats {
			retired += cs.Retired
		}
		if retired == 0 {
			t.Fatal("forked variant retired nothing during measurement")
		}
	}
	if got := c.Snapshots(); got != 1 {
		t.Fatalf("policy variants produced %d warmup snapshots, want 1 shared", got)
	}
}

// TestSubstrateVariantsDoNotShare: anything sim.Restore would reject —
// different seed, different warmup length — must land in its own snapshot
// group rather than poison a shared one.
func TestSubstrateVariantsDoNotShare(t *testing.T) {
	cfg, apps := testConfig()
	var c Cache
	seed := cfg
	seed.Run.Seed = 99
	shorter := cfg
	shorter.Run.WarmupCycles = 2_000
	for _, variant := range []config.Config{cfg, seed, shorter} {
		if _, err := c.Run(variant, apps); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Snapshots(); got != 3 {
		t.Fatalf("substrate variants produced %d warmup snapshots, want 3 distinct", got)
	}
}
