package noc

// boundaryItem is one unit of cross-shard hand-off produced by a router's
// dispatch: a flit arrival when f is non-nil, a credit return when f is nil.
// port and vc address the destination router's input state; at is the cycle
// the item becomes visible there (arrivals land at now+div+1, credits at
// now+1, so an item queued during cycle c is never consumable before c+1 —
// draining at the end-of-cycle barrier is therefore equivalent to the
// sequential stepper's direct append).
type boundaryItem struct {
	f    *flit
	port int
	vc   int
	at   int64
}

// edgeQueue is the SPSC queue for one directed cross-shard router adjacency:
// written only by the producing router's shard worker during the tick phase,
// drained only by the destination shard's worker after the barrier. Each
// directed mesh link has at most one queue, created in a fixed order (source
// router ascending, then port ascending) so every shard drains its incoming
// queues in the same deterministic sequence regardless of worker timing.
type edgeQueue struct {
	dst   int // destination router id
	items []boundaryItem
}

// push appends one item; producer side only.
func (q *edgeQueue) push(it boundaryItem) { q.items = append(q.items, it) }

// drainWake accumulates the earliest pending deadline for one sleeping
// destination router across a whole DrainShard pass (see netShard.drainMin).
type drainWake struct {
	dst int32
	at  int64
}
