package noc

import (
	"fmt"
	"math"
	"math/bits"

	"nocmem/internal/bitset"
	"nocmem/internal/config"
	"nocmem/internal/timerwheel"
)

// Stats aggregates network-level counters.
type Stats struct {
	Injected     int64
	Delivered    int64
	FlitHops     int64
	LatencySum   int64 // sum of per-packet network latencies
	HighInjected int64
	InFlight     int64
}

func (s *Stats) add(o Stats) {
	s.Injected += o.Injected
	s.Delivered += o.Delivered
	s.FlitHops += o.FlitHops
	s.LatencySum += o.LatencySum
	s.HighInjected += o.HighInjected
	s.InFlight += o.InFlight
}

// AvgLatency returns the mean delivered-packet network latency.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Delivered)
}

// Sink receives reassembled packets at their destination tile. The cycle is
// the tail-flit ejection time; the packet is available to the endpoint from
// that cycle on.
type Sink func(p *Packet, cycle int64)

// Network is a W x H mesh of wormhole VC routers.
type Network struct {
	cfg     config.NoC
	arb     arbPolicy
	w, h    int
	routers []*router
	sinks   []Sink

	// portOf/vcOf decompose a flat per-VC index (port*VCsPerPort+vc) back
	// into its parts; shared by every router's occupancy-bitmap sweep so
	// the hot loop does table lookups instead of divisions.
	portOf, vcOf []int8

	// shards partition the routers for (optionally parallel) stepping; see
	// netShard. There is always at least one shard — New builds a single
	// shard holding every router, SetPartition rebuilds the split.
	shards []*netShard

	// eventDriven switches Tick from the dense sweep over all routers to
	// iterating only the per-shard active sets. A router leaves its set when
	// it has nothing executable next cycle — either drained (no state, no
	// wake) or holding only future-dated work, in which case it parks a
	// timed wake for its exact next deadline (router.nextWake) on its
	// shard's wake heap. It re-enters through wakeAt, called at every point
	// work can appear (Inject, arrival hand-off, credit return, boundary
	// drain), or when its heap wake comes due (TickShard). Spurious wakes
	// are harmless — a ticked router with nothing due changes no state — so
	// the sets and heaps may over-approximate but never under-approximate.
	eventDriven bool
}

// netShard owns a disjoint subset of routers. Everything a router mutates
// while ticking lives either in the router itself or here — active set,
// stats, flit pool — so shard workers never write shared state. The only
// cross-shard traffic is boundary flits and credits, which a dispatching
// router pushes into per-directed-edge SPSC queues (see boundary.go); the
// owning shard drains its incoming queues in fixed order after the tick
// barrier (DrainShard).
type netShard struct {
	id      int
	members []int      // router ids owned, ascending
	active  bitset.Set // global router indices; only members' bits are set
	stats   Stats      // counters for events executed by this shard's routers
	edgesIn []*edgeQueue

	// wakes is the timing wheel of timed router wakes for this shard's
	// members (the value is the router id), mirroring the node/controller
	// wheels in internal/sim. Touched only by the shard's own worker
	// (TickShard drains, TickShard/DrainShard push), so no synchronization
	// is needed. Wakes are never cancelled; a stale one causes a harmless
	// spurious tick at its deadline.
	wakes   *timerwheel.Wheel[int32]
	wakeBuf []timerwheel.Due[int32] // reused PopDue delivery buffer

	// drainMin is DrainShard's per-phase scratch: the minimum pending
	// deadline per sleeping destination router, so a router fed by several
	// boundary queues gets one batched wheel push instead of one per queue.
	// A few entries at most (bounded by the shard's boundary degree), so a
	// linear scan beats a map.
	drainMin []drainWake

	// flitFree recycles flits. A flit born in one shard may die (eject) in
	// another; pools migrate objects freely since recycled flits are zeroed.
	flitFree []*flit
}

func (sh *netShard) getFlit() *flit {
	if l := len(sh.flitFree); l > 0 {
		f := sh.flitFree[l-1]
		sh.flitFree[l-1] = nil
		sh.flitFree = sh.flitFree[:l-1]
		return f
	}
	return &flit{}
}

func (sh *netShard) putFlit(f *flit) {
	*f = flit{}
	sh.flitFree = append(sh.flitFree, f)
}

// New builds the mesh. Sinks default to discarding packets; endpoints
// register theirs with SetSink.
func New(mesh config.Mesh, cfg config.NoC) (*Network, error) {
	full := config.Baseline32()
	full.Mesh, full.NoC = mesh, cfg
	if err := full.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, arb: newArbPolicy(cfg), w: mesh.Width, h: mesh.Height}
	n.routers = make([]*router, mesh.Nodes())
	n.sinks = make([]Sink, mesh.Nodes())
	n.portOf = make([]int8, NumPorts*cfg.VCsPerPort)
	n.vcOf = make([]int8, NumPorts*cfg.VCsPerPort)
	for i := range n.portOf {
		n.portOf[i] = int8(i / cfg.VCsPerPort)
		n.vcOf[i] = int8(i % cfg.VCsPerPort)
	}
	for i := range n.routers {
		r := &router{id: i, x: i % n.w, y: i / n.w, net: n, div: 1}
		if d, ok := cfg.ClockDivisors[i]; ok {
			r.div = int64(d)
		}
		nv := NumPorts * cfg.VCsPerPort
		r.vcs = cfg.VCsPerPort
		r.occOK = nv <= 64
		r.inBuf = make([][]*flit, nv)
		r.inFlags = make([]uint8, nv)
		r.inOutPort = make([]int8, nv)
		r.inOutVC = make([]int32, nv)
		r.inVAAt = make([]int64, nv)
		r.inSAAt = make([]int64, nv)
		r.inAge = make([]int64, nv)
		r.outOwner = make([]*Packet, nv)
		r.outCredits = make([]int32, nv)
		for i := range r.outCredits {
			r.outCredits[i] = int32(cfg.BufferDepth)
		}
		r.inj = make([]injSlot, cfg.VCsPerPort)
		n.routers[i] = r
	}
	for _, r := range n.routers {
		if r.y > 0 {
			r.neighbor[PortNorth] = n.routers[r.id-n.w]
		}
		if r.y < n.h-1 {
			r.neighbor[PortSouth] = n.routers[r.id+n.w]
		}
		if r.x > 0 {
			r.neighbor[PortWest] = n.routers[r.id-1]
		}
		if r.x < n.w-1 {
			r.neighbor[PortEast] = n.routers[r.id+1]
		}
	}
	n.SetPartition(nil)
	return n, nil
}

// SetPartition rebuilds the shard split. shardOf maps router id -> shard
// index (indices must cover 0..max contiguously); nil means one shard owning
// everything. Cross-shard adjacencies get one SPSC edge queue per direction,
// created in fixed (source router ascending, then port ascending) order and
// appended to the destination shard's drain list in that same order, which is
// what makes the boundary merge deterministic regardless of worker timing.
// Accumulated stats and pooled flits are folded into shard 0.
func (n *Network) SetPartition(shardOf []int) {
	if shardOf != nil && len(shardOf) != len(n.routers) {
		panic(fmt.Sprintf("noc: partition over %d routers, mesh has %d", len(shardOf), len(n.routers)))
	}
	// Rebuilding drops the old edge queues, so any parked boundary item
	// would be lost. Legal call sites (construction, the repartition point
	// between cycles) always have them drained; assert it.
	for _, sh := range n.shards {
		for _, q := range sh.edgesIn {
			if len(q.items) != 0 {
				panic(fmt.Sprintf("noc: SetPartition with %d undrained boundary items toward router %d", len(q.items), q.dst))
			}
		}
	}
	k := 1
	for _, s := range shardOf {
		if s < 0 {
			panic(fmt.Sprintf("noc: negative shard index %d", s))
		}
		if s+1 > k {
			k = s + 1
		}
	}
	var carryStats Stats
	var carryFlits []*flit
	for _, sh := range n.shards {
		carryStats.add(sh.stats)
		carryFlits = append(carryFlits, sh.flitFree...)
	}
	shards := make([]*netShard, k)
	for i := range shards {
		shards[i] = &netShard{id: i, active: bitset.New(len(n.routers)), wakes: timerwheel.New[int32]()}
	}
	for id, r := range n.routers {
		s := 0
		if shardOf != nil {
			s = shardOf[id]
		}
		shards[s].members = append(shards[s].members, id)
		r.sh = shards[s]
		r.xqCfg = [NumPorts]*edgeQueue{}
	}
	for _, r := range n.routers {
		for p := PortNorth; p < NumPorts; p++ {
			nb := r.neighbor[p]
			if nb == nil || nb.sh == r.sh {
				continue
			}
			q := &edgeQueue{dst: nb.id}
			r.xqCfg[p] = q
			nb.sh.edgesIn = append(nb.sh.edgesIn, q)
		}
	}
	shards[0].stats = carryStats
	shards[0].flitFree = carryFlits
	n.shards = shards
	n.applyEventMode()
}

// NumShards returns the partition's shard count.
func (n *Network) NumShards() int { return len(n.shards) }

// SetEventDriven switches between the dense Tick (every router, every cycle)
// and active-set ticking. Enabling it marks every router active; the sets
// then shrink as routers drain. Both modes produce identical results; the
// dense sweep is retained as the equivalence reference.
func (n *Network) SetEventDriven(on bool) {
	n.eventDriven = on
	n.applyEventMode()
}

// applyEventMode re-derives the mode-dependent state: per-shard active sets
// and wake heaps (every router active with an empty heap in event mode —
// exact wakes re-derive as the sets shrink — both unused in dense mode) and
// the routers' live boundary queues. Boundary queues are active only in
// event mode with more than one shard — the dense sweep is single-goroutine
// and appends across shards directly — so any parked items are flushed to
// their destinations first.
func (n *Network) applyEventMode() {
	sharded := n.eventDriven && len(n.shards) > 1
	if !sharded {
		for i := range n.shards {
			n.DrainShard(i)
		}
	}
	for _, sh := range n.shards {
		sh.active.Clear()
		sh.wakes.Reset()
		if n.eventDriven {
			for _, id := range sh.members {
				sh.active.Add(id)
			}
		}
	}
	for _, r := range n.routers {
		if sharded {
			r.xq = r.xqCfg
		} else {
			r.xq = [NumPorts]*edgeQueue{}
		}
	}
}

// wakeAt tells the scheduler router id may have executable work at cycle at
// (produced during cycle now): an already-active router needs nothing, a
// sleeping one gets a timed wake on its shard's heap — or immediate
// re-activation when the deadline is effectively next cycle, where a heap
// round trip buys nothing. Only ever called for routers of the shard
// executing the current phase; cross-shard activation happens in DrainShard.
func (n *Network) wakeAt(id int, at, now int64) {
	if !n.eventDriven {
		return
	}
	r := n.routers[id]
	if r.sh.active.Has(id) {
		return
	}
	if at = r.wakeAlign(at); at <= now+1 {
		r.sh.active.Add(id)
	} else {
		r.sh.wakes.Push(at, int32(id))
	}
}

// QuietTarget reports whether every router is quiet at now — all active sets
// empty and no timed wake due — and, when quiet, the earliest pending router
// wake (math.MaxInt64 when none), for the simulator's quiescence
// fast-forward. A due wake (head at <= now) means the cycle must execute so
// TickShard can drain it. Only meaningful in event-driven mode, between
// cycles (after all shards drained).
func (n *Network) QuietTarget(now int64) (next int64, quiet bool) {
	next = math.MaxInt64
	for _, sh := range n.shards {
		if !sh.active.Empty() {
			return 0, false
		}
		if at, ok := sh.wakes.Min(); ok {
			if at <= now {
				return 0, false
			} else if at < next {
				next = at
			}
		}
	}
	return next, true
}

// Nodes returns the number of tiles.
func (n *Network) Nodes() int { return len(n.routers) }

// Width returns the mesh width.
func (n *Network) Width() int { return n.w }

// Height returns the mesh height.
func (n *Network) Height() int { return n.h }

func (n *Network) xOf(node int) int { return node % n.w }
func (n *Network) yOf(node int) int { return node / n.w }

// HopDistance returns the Manhattan distance between two tiles (the number
// of routers a packet traverses is HopDistance+1).
func (n *Network) HopDistance(a, b int) int {
	dx := n.xOf(a) - n.xOf(b)
	if dx < 0 {
		dx = -dx
	}
	dy := n.yOf(a) - n.yOf(b)
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// SetSink registers the delivery callback for a tile.
func (n *Network) SetSink(node int, s Sink) {
	n.sinks[node] = s
}

// Inject offers a packet to its source tile's outbox at the given cycle.
// The packet starts moving through the router on the next network tick.
// Must be called by the goroutine stepping the source tile's shard.
func (n *Network) Inject(p *Packet, now int64) error {
	if err := p.Validate(len(n.routers)); err != nil {
		return err
	}
	r := n.routers[p.Src]
	if p.ID == 0 {
		// Per-router sequence, namespaced by source so IDs stay unique
		// mesh-wide without a shared counter. IDs only label diagnostics;
		// nothing orders or hashes on them.
		r.pktSeq++
		p.ID = uint64(p.Src+1)<<32 | r.pktSeq
	}
	p.InjectedAt = now
	p.EjectedAt = 0
	p.Hops = 0
	p.ejectedFlits = 0
	// The outbox is priority-ordered: endpoints inject expedited messages
	// first (stable within a class, so normal traffic keeps FIFO order).
	r.outbox[p.VNet].push(p)
	r.sh.active.Add(p.Src)
	r.sh.stats.Injected++
	r.sh.stats.InFlight++
	if p.Priority == High {
		r.sh.stats.HighInjected++
	}
	return nil
}

// Tick advances every router (dense mode) or every active router
// (event-driven mode) by one cycle, stepping the shards sequentially.
// Parallel steppers instead call TickShard per worker, barrier, then
// DrainShard per worker — the result is identical by construction.
func (n *Network) Tick(now int64) {
	if !n.eventDriven {
		for _, r := range n.routers {
			r.tick(now)
		}
		return
	}
	for i := range n.shards {
		n.TickShard(i, now)
	}
	for i := range n.shards {
		n.DrainShard(i)
	}
}

// TickShard advances the active routers of one shard by one cycle: due timed
// wakes re-join the active set first (so woken routers tick in the same
// ascending-id order as everyone else), then each active router ticks and is
// retired again if its next executable work lies beyond the next cycle —
// with a heap wake for that exact deadline unless it drained completely.
// Routers activated mid-sweep by an earlier router's dispatch only gained
// future-dated work (arrivals land at now+div+1, credits at now+1), so
// whether the sweep happens to reach them this cycle or not is immaterial —
// their tick would change no state, exactly as in the dense sweep.
func (n *Network) TickShard(shard int, now int64) {
	sh := n.shards[shard]
	sh.wakeBuf = sh.wakes.PopDue(now, sh.wakeBuf[:0])
	for _, d := range sh.wakeBuf {
		sh.active.Add(int(d.Val))
	}
	for wi := range sh.active {
		w := sh.active[wi]
		for w != 0 {
			id := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			r := n.routers[id]
			r.tick(now)
			if at, ok := r.nextWake(now); !ok {
				sh.active.Remove(id)
			} else if at > now+1 {
				sh.active.Remove(id)
				sh.wakes.Push(at, int32(id))
			}
		}
	}
}

// DrainShard moves boundary items queued by neighboring shards' routers into
// this shard's router state. Queues are visited in the fixed order
// SetPartition built, and each queue is FIFO, so the merge is deterministic.
// Every item is future-dated relative to the cycle that produced it, so
// draining between cycles is equivalent to the sequential stepper's direct
// append. A sleeping receiver is woken at the earliest item deadline, not
// immediately: once the first item is processed the router's own nextWake
// covers the rest, so the min suffices and the receiver executes zero ticks
// before its work is due. Wakes are batched across the whole drain — a
// router fed by several boundary queues this phase gets one wheel push at
// the minimum deadline, not one per queue. Must be called by this shard's
// worker, after the barrier that ends the tick phase.
func (n *Network) DrainShard(shard int) {
	sh := n.shards[shard]
	sh.drainMin = sh.drainMin[:0]
	for _, q := range sh.edgesIn {
		if len(q.items) == 0 {
			continue
		}
		r := n.routers[q.dst]
		minAt := int64(math.MaxInt64)
		for _, it := range q.items {
			if it.f != nil {
				r.arrivals[it.port] = append(r.arrivals[it.port], arrival{f: it.f, vc: it.vc, at: it.at})
			} else {
				r.credits = append(r.credits, creditMsg{port: it.port, vc: it.vc, at: it.at})
			}
			if it.at < minAt {
				minAt = it.at
			}
		}
		if n.eventDriven && !sh.active.Has(q.dst) {
			merged := false
			for i := range sh.drainMin {
				if sh.drainMin[i].dst == int32(q.dst) {
					if minAt < sh.drainMin[i].at {
						sh.drainMin[i].at = minAt
					}
					merged = true
					break
				}
			}
			if !merged {
				sh.drainMin = append(sh.drainMin, drainWake{dst: int32(q.dst), at: minAt})
			}
		}
		q.items = q.items[:0]
	}
	for _, dw := range sh.drainMin {
		sh.wakes.Push(n.routers[dw.dst].wakeAlign(dw.at), dw.dst)
	}
}

// complete is called by a router when a packet's tail flit ejects.
func (n *Network) complete(p *Packet, at int64) {
	sh := n.routers[p.Dst].sh
	sh.stats.Delivered++
	sh.stats.InFlight--
	sh.stats.LatencySum += p.NetLatency()
	if s := n.sinks[p.Dst]; s != nil {
		s(p, at)
	}
}

// Stats returns the summed counters. Injections count at the source shard
// and deliveries at the destination shard, so per-shard InFlight values can
// be negative; the sum is exact.
func (n *Network) Stats() Stats {
	var out Stats
	for _, sh := range n.shards {
		out.add(sh.stats)
	}
	return out
}

// ResetStats zeroes the cumulative counters, preserving in-flight tracking.
func (n *Network) ResetStats() {
	for _, sh := range n.shards {
		sh.stats = Stats{InFlight: sh.stats.InFlight}
	}
}

// LinkLoad reports, for every router, the flits forwarded per output port
// since construction (index by the Port* constants; PortLocal counts
// ejections). Dividing by elapsed cycles gives per-link utilization in
// flits/cycle (capacity 1).
func (n *Network) LinkLoad() [][NumPorts]int64 {
	out := make([][NumPorts]int64, len(n.routers))
	for i, r := range n.routers {
		out[i] = r.flitsOut
	}
	return out
}

// MaxLinkLoad returns the largest per-port flit count across all routers,
// excluding local ejections — the hottest mesh link.
func (n *Network) MaxLinkLoad() int64 {
	var m int64
	for _, r := range n.routers {
		for p := PortNorth; p < NumPorts; p++ {
			if r.flitsOut[p] > m {
				m = r.flitsOut[p]
			}
		}
	}
	return m
}

// Quiesce verifies that no packet is buffered, in flight or awaiting
// injection anywhere; used by tests to prove message conservation. The
// predicate is drained() — no router state at all — and the error says which
// category tripped: a router that holds only scheduled credit returns is
// reported as such, distinct from one stranding flits or packets.
func (n *Network) Quiesce() error {
	if inFlight := n.Stats().InFlight; inFlight != 0 {
		return fmt.Errorf("noc: %d packets still in flight", inFlight)
	}
	for _, sh := range n.shards {
		for _, q := range sh.edgesIn {
			if len(q.items) != 0 {
				return fmt.Errorf("noc: %d boundary items undrained toward router %d", len(q.items), q.dst)
			}
		}
	}
	for _, r := range n.routers {
		if r.drained() {
			continue
		}
		if r.buffered == 0 && r.injecting == 0 && r.outboxLen() == 0 && r.pendingArrivals() == 0 {
			return fmt.Errorf("noc: router %d not drained: waiting on %d scheduled credit returns (no flit or packet held)",
				r.id, len(r.credits))
		}
		return fmt.Errorf("noc: router %d not drained (buffered=%d injecting=%d outbox=%d arrivals=%d credits=%d)",
			r.id, r.buffered, r.injecting, r.outboxLen(), r.pendingArrivals(), len(r.credits))
	}
	return nil
}

// DebugLeaks verifies the event scheduler reached its true fixed point after
// a full drain: every router drained, every shard's active set and wake heap
// empty, every boundary queue empty. A leaked wake or active bit would keep
// re-ticking (or re-scheduling) a drained router forever; a missing one
// shows up earlier as stranded work in Quiesce. Stale-but-future wakes are
// legal between cycles, so this is only meaningful after stepping past the
// last pending deadline (each forces one executed cycle that pops it).
func (n *Network) DebugLeaks() error {
	if err := n.Quiesce(); err != nil {
		return err
	}
	for _, sh := range n.shards {
		if k := sh.active.Count(); k != 0 {
			return fmt.Errorf("noc: shard %d holds %d active routers after drain", sh.id, k)
		}
		if k := sh.wakes.Len(); k != 0 {
			at, _ := sh.wakes.Min()
			return fmt.Errorf("noc: shard %d holds %d pending router wakes after drain (earliest at cycle %d)",
				sh.id, k, at)
		}
	}
	return nil
}

// DebugRouterTicks returns how many times router id's tick was invoked and
// how many of those invocations executed the pipeline stages (the rest were
// clock-gated or had nothing due). The split is what the scheduler tests
// pin: executions are identical across dense/event/sharded stepping, while
// calls collapse to the executed set once timed wakes replace busy-ticking.
func (n *Network) DebugRouterTicks(id int) (calls, execs int64) {
	r := n.routers[id]
	return r.tickCalls, r.tickExecs
}
