package noc

import (
	"fmt"
	"math/bits"

	"nocmem/internal/config"
)

// Stats aggregates network-level counters.
type Stats struct {
	Injected     int64
	Delivered    int64
	FlitHops     int64
	LatencySum   int64 // sum of per-packet network latencies
	HighInjected int64
	InFlight     int64
}

// AvgLatency returns the mean delivered-packet network latency.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Delivered)
}

// Sink receives reassembled packets at their destination tile. The cycle is
// the tail-flit ejection time; the packet is available to the endpoint from
// that cycle on.
type Sink func(p *Packet, cycle int64)

// Network is a W x H mesh of wormhole VC routers.
type Network struct {
	cfg     config.NoC
	arb     arbPolicy
	w, h    int
	routers []*router
	sinks   []Sink
	stats   Stats
	pktSeq  uint64

	// eventDriven switches Tick from the dense sweep over all routers to
	// iterating only the active set. active is the bitmask of routers with
	// any work (buffered flits, pending injections, in-flight arrivals or
	// credits); a router leaves the set when idle() and re-enters through
	// wake, which is called at every point work can appear (Inject, arrival
	// hand-off, credit return). Spurious wakes are harmless — a ticked
	// router with nothing due changes no state — so the mask may
	// over-approximate but must never under-approximate.
	eventDriven bool
	active      uint64

	// flitFree recycles flits (a packet's flits die at ejection, one
	// packet's worth per delivery). The network is single-goroutine, so a
	// plain free list suffices and keeps the router tick allocation-free
	// in steady state.
	flitFree []*flit
}

func (n *Network) getFlit() *flit {
	if l := len(n.flitFree); l > 0 {
		f := n.flitFree[l-1]
		n.flitFree[l-1] = nil
		n.flitFree = n.flitFree[:l-1]
		return f
	}
	return &flit{}
}

func (n *Network) putFlit(f *flit) {
	*f = flit{}
	n.flitFree = append(n.flitFree, f)
}

// New builds the mesh. Sinks default to discarding packets; endpoints
// register theirs with SetSink.
func New(mesh config.Mesh, cfg config.NoC) (*Network, error) {
	full := config.Baseline32()
	full.Mesh, full.NoC = mesh, cfg
	if err := full.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, arb: newArbPolicy(cfg), w: mesh.Width, h: mesh.Height}
	n.routers = make([]*router, mesh.Nodes())
	n.sinks = make([]Sink, mesh.Nodes())
	for i := range n.routers {
		r := &router{id: i, x: i % n.w, y: i / n.w, net: n, div: 1}
		if d, ok := cfg.ClockDivisors[i]; ok {
			r.div = int64(d)
		}
		for p := 0; p < NumPorts; p++ {
			r.in[p] = make([]inVC, cfg.VCsPerPort)
			r.out[p] = make([]outVC, cfg.VCsPerPort)
			for vc := range r.out[p] {
				r.out[p][vc].credits = cfg.BufferDepth
			}
		}
		r.inj = make([]injSlot, cfg.VCsPerPort)
		n.routers[i] = r
	}
	for _, r := range n.routers {
		if r.y > 0 {
			r.neighbor[PortNorth] = n.routers[r.id-n.w]
		}
		if r.y < n.h-1 {
			r.neighbor[PortSouth] = n.routers[r.id+n.w]
		}
		if r.x > 0 {
			r.neighbor[PortWest] = n.routers[r.id-1]
		}
		if r.x < n.w-1 {
			r.neighbor[PortEast] = n.routers[r.id+1]
		}
	}
	return n, nil
}

// SetEventDriven switches between the dense Tick (every router, every cycle)
// and active-set ticking. Enabling it marks every router active; the set
// then shrinks as routers drain. Both modes produce identical results; the
// dense sweep is retained as the equivalence reference. Event-driven mode is
// limited to 64 routers (the active-set bitmask width).
func (n *Network) SetEventDriven(on bool) {
	if on && len(n.routers) > 64 {
		panic(fmt.Sprintf("noc: event-driven ticking supports at most 64 routers, got %d", len(n.routers)))
	}
	n.eventDriven = on
	n.active = 0
	if on {
		n.active = allMask(len(n.routers))
	}
}

// allMask returns a bitmask with the low k bits set (k <= 64).
func allMask(k int) uint64 {
	if k >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(k) - 1
}

// wake marks a router as having (possibly future) work.
func (n *Network) wake(id int) {
	n.active |= 1 << uint(id)
}

// RoutersQuiet reports whether the active set is empty, i.e. no flit is
// buffered, injecting, or in flight anywhere. Only meaningful in
// event-driven mode.
func (n *Network) RoutersQuiet() bool { return n.active == 0 }

// Nodes returns the number of tiles.
func (n *Network) Nodes() int { return len(n.routers) }

// Width returns the mesh width.
func (n *Network) Width() int { return n.w }

// Height returns the mesh height.
func (n *Network) Height() int { return n.h }

func (n *Network) xOf(node int) int { return node % n.w }
func (n *Network) yOf(node int) int { return node / n.w }

// HopDistance returns the Manhattan distance between two tiles (the number
// of routers a packet traverses is HopDistance+1).
func (n *Network) HopDistance(a, b int) int {
	dx := n.xOf(a) - n.xOf(b)
	if dx < 0 {
		dx = -dx
	}
	dy := n.yOf(a) - n.yOf(b)
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// SetSink registers the delivery callback for a tile.
func (n *Network) SetSink(node int, s Sink) {
	n.sinks[node] = s
}

// Inject offers a packet to its source tile's outbox at the given cycle.
// The packet starts moving through the router on the next network tick.
func (n *Network) Inject(p *Packet, now int64) error {
	if err := p.Validate(len(n.routers)); err != nil {
		return err
	}
	if p.ID == 0 {
		n.pktSeq++
		p.ID = n.pktSeq
	}
	p.InjectedAt = now
	p.EjectedAt = 0
	p.Hops = 0
	p.ejectedFlits = 0
	r := n.routers[p.Src]
	// The outbox is priority-ordered: endpoints inject expedited messages
	// first (stable within a class, so normal traffic keeps FIFO order).
	r.outbox[p.VNet].push(p)
	n.wake(p.Src)
	n.stats.Injected++
	n.stats.InFlight++
	if p.Priority == High {
		n.stats.HighInjected++
	}
	return nil
}

// Tick advances every router (dense mode) or every active router
// (event-driven mode) by one cycle. Routers activated mid-sweep by an
// earlier router's dispatch only gained future-dated work (arrivals land at
// now+div+1, credits at now+1), so skipping them until the next cycle is
// equivalent to the dense sweep, where their tick this cycle is a no-op.
func (n *Network) Tick(now int64) {
	if !n.eventDriven {
		for _, r := range n.routers {
			r.tick(now)
		}
		return
	}
	for m := n.active; m != 0; {
		i := bits.TrailingZeros64(m)
		m &^= 1 << uint(i)
		r := n.routers[i]
		r.tick(now)
		if r.idle() {
			n.active &^= 1 << uint(i)
		}
	}
}

// complete is called by a router when a packet's tail flit ejects.
func (n *Network) complete(p *Packet, at int64) {
	n.stats.Delivered++
	n.stats.InFlight--
	n.stats.LatencySum += p.NetLatency()
	if s := n.sinks[p.Dst]; s != nil {
		s(p, at)
	}
}

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the cumulative counters, preserving in-flight tracking.
func (n *Network) ResetStats() {
	inFlight := n.stats.InFlight
	n.stats = Stats{InFlight: inFlight}
}

// LinkLoad reports, for every router, the flits forwarded per output port
// since construction (index by the Port* constants; PortLocal counts
// ejections). Dividing by elapsed cycles gives per-link utilization in
// flits/cycle (capacity 1).
func (n *Network) LinkLoad() [][NumPorts]int64 {
	out := make([][NumPorts]int64, len(n.routers))
	for i, r := range n.routers {
		out[i] = r.flitsOut
	}
	return out
}

// MaxLinkLoad returns the largest per-port flit count across all routers,
// excluding local ejections — the hottest mesh link.
func (n *Network) MaxLinkLoad() int64 {
	var m int64
	for _, r := range n.routers {
		for p := PortNorth; p < NumPorts; p++ {
			if r.flitsOut[p] > m {
				m = r.flitsOut[p]
			}
		}
	}
	return m
}

// Quiesce verifies that no packet is buffered, in flight or awaiting
// injection anywhere; used by tests to prove message conservation.
func (n *Network) Quiesce() error {
	if n.stats.InFlight != 0 {
		return fmt.Errorf("noc: %d packets still in flight", n.stats.InFlight)
	}
	for _, r := range n.routers {
		if !r.idle() {
			return fmt.Errorf("noc: router %d not idle (buffered=%d injecting=%d outbox=%d arrivals=%d)",
				r.id, r.buffered, r.injecting, r.outboxLen(), r.pendingArrivals())
		}
	}
	return nil
}
