package noc

import (
	"fmt"

	"nocmem/internal/config"
)

// Stats aggregates network-level counters.
type Stats struct {
	Injected     int64
	Delivered    int64
	FlitHops     int64
	LatencySum   int64 // sum of per-packet network latencies
	HighInjected int64
	InFlight     int64
}

// AvgLatency returns the mean delivered-packet network latency.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Delivered)
}

// Sink receives reassembled packets at their destination tile. The cycle is
// the tail-flit ejection time; the packet is available to the endpoint from
// that cycle on.
type Sink func(p *Packet, cycle int64)

// Network is a W x H mesh of wormhole VC routers.
type Network struct {
	cfg     config.NoC
	arb     arbPolicy
	w, h    int
	routers []*router
	sinks   []Sink
	stats   Stats
	pktSeq  uint64

	// flitFree recycles flits (a packet's flits die at ejection, one
	// packet's worth per delivery). The network is single-goroutine, so a
	// plain free list suffices and keeps the router tick allocation-free
	// in steady state.
	flitFree []*flit
}

func (n *Network) getFlit() *flit {
	if l := len(n.flitFree); l > 0 {
		f := n.flitFree[l-1]
		n.flitFree[l-1] = nil
		n.flitFree = n.flitFree[:l-1]
		return f
	}
	return &flit{}
}

func (n *Network) putFlit(f *flit) {
	*f = flit{}
	n.flitFree = append(n.flitFree, f)
}

// New builds the mesh. Sinks default to discarding packets; endpoints
// register theirs with SetSink.
func New(mesh config.Mesh, cfg config.NoC) (*Network, error) {
	full := config.Baseline32()
	full.Mesh, full.NoC = mesh, cfg
	if err := full.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, arb: newArbPolicy(cfg), w: mesh.Width, h: mesh.Height}
	n.routers = make([]*router, mesh.Nodes())
	n.sinks = make([]Sink, mesh.Nodes())
	for i := range n.routers {
		r := &router{id: i, x: i % n.w, y: i / n.w, net: n, div: 1}
		if d, ok := cfg.ClockDivisors[i]; ok {
			r.div = int64(d)
		}
		for p := 0; p < NumPorts; p++ {
			r.in[p] = make([]inVC, cfg.VCsPerPort)
			r.out[p] = make([]outVC, cfg.VCsPerPort)
			for vc := range r.out[p] {
				r.out[p][vc].credits = cfg.BufferDepth
			}
		}
		r.inj = make([]injSlot, cfg.VCsPerPort)
		n.routers[i] = r
	}
	for _, r := range n.routers {
		if r.y > 0 {
			r.neighbor[PortNorth] = n.routers[r.id-n.w]
		}
		if r.y < n.h-1 {
			r.neighbor[PortSouth] = n.routers[r.id+n.w]
		}
		if r.x > 0 {
			r.neighbor[PortWest] = n.routers[r.id-1]
		}
		if r.x < n.w-1 {
			r.neighbor[PortEast] = n.routers[r.id+1]
		}
	}
	return n, nil
}

// Nodes returns the number of tiles.
func (n *Network) Nodes() int { return len(n.routers) }

// Width returns the mesh width.
func (n *Network) Width() int { return n.w }

// Height returns the mesh height.
func (n *Network) Height() int { return n.h }

func (n *Network) xOf(node int) int { return node % n.w }
func (n *Network) yOf(node int) int { return node / n.w }

// HopDistance returns the Manhattan distance between two tiles (the number
// of routers a packet traverses is HopDistance+1).
func (n *Network) HopDistance(a, b int) int {
	dx := n.xOf(a) - n.xOf(b)
	if dx < 0 {
		dx = -dx
	}
	dy := n.yOf(a) - n.yOf(b)
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// SetSink registers the delivery callback for a tile.
func (n *Network) SetSink(node int, s Sink) {
	n.sinks[node] = s
}

// Inject offers a packet to its source tile's outbox at the given cycle.
// The packet starts moving through the router on the next network tick.
func (n *Network) Inject(p *Packet, now int64) error {
	if err := p.Validate(len(n.routers)); err != nil {
		return err
	}
	if p.ID == 0 {
		n.pktSeq++
		p.ID = n.pktSeq
	}
	p.InjectedAt = now
	p.EjectedAt = 0
	p.Hops = 0
	p.ejectedFlits = 0
	r := n.routers[p.Src]
	// The outbox is priority-ordered: endpoints inject expedited messages
	// first (stable within a class, so normal traffic keeps FIFO order).
	r.outbox[p.VNet].push(p)
	n.stats.Injected++
	n.stats.InFlight++
	if p.Priority == High {
		n.stats.HighInjected++
	}
	return nil
}

// Tick advances every router by one cycle.
func (n *Network) Tick(now int64) {
	for _, r := range n.routers {
		r.tick(now)
	}
}

// complete is called by a router when a packet's tail flit ejects.
func (n *Network) complete(p *Packet, at int64) {
	n.stats.Delivered++
	n.stats.InFlight--
	n.stats.LatencySum += p.NetLatency()
	if s := n.sinks[p.Dst]; s != nil {
		s(p, at)
	}
}

// Stats returns a copy of the counters.
func (n *Network) Stats() Stats { return n.stats }

// ResetStats zeroes the cumulative counters, preserving in-flight tracking.
func (n *Network) ResetStats() {
	inFlight := n.stats.InFlight
	n.stats = Stats{InFlight: inFlight}
}

// LinkLoad reports, for every router, the flits forwarded per output port
// since construction (index by the Port* constants; PortLocal counts
// ejections). Dividing by elapsed cycles gives per-link utilization in
// flits/cycle (capacity 1).
func (n *Network) LinkLoad() [][NumPorts]int64 {
	out := make([][NumPorts]int64, len(n.routers))
	for i, r := range n.routers {
		out[i] = r.flitsOut
	}
	return out
}

// MaxLinkLoad returns the largest per-port flit count across all routers,
// excluding local ejections — the hottest mesh link.
func (n *Network) MaxLinkLoad() int64 {
	var m int64
	for _, r := range n.routers {
		for p := PortNorth; p < NumPorts; p++ {
			if r.flitsOut[p] > m {
				m = r.flitsOut[p]
			}
		}
	}
	return m
}

// Quiesce verifies that no packet is buffered, in flight or awaiting
// injection anywhere; used by tests to prove message conservation.
func (n *Network) Quiesce() error {
	if n.stats.InFlight != 0 {
		return fmt.Errorf("noc: %d packets still in flight", n.stats.InFlight)
	}
	for _, r := range n.routers {
		if !r.idle() {
			return fmt.Errorf("noc: router %d not idle (buffered=%d injecting=%d outbox=%d arrivals=%d)",
				r.id, r.buffered, r.injecting, r.outboxLen(), r.pendingArrivals())
		}
	}
	return nil
}
