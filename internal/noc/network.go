package noc

import (
	"fmt"
	"math/bits"

	"nocmem/internal/bitset"
	"nocmem/internal/config"
)

// Stats aggregates network-level counters.
type Stats struct {
	Injected     int64
	Delivered    int64
	FlitHops     int64
	LatencySum   int64 // sum of per-packet network latencies
	HighInjected int64
	InFlight     int64
}

func (s *Stats) add(o Stats) {
	s.Injected += o.Injected
	s.Delivered += o.Delivered
	s.FlitHops += o.FlitHops
	s.LatencySum += o.LatencySum
	s.HighInjected += o.HighInjected
	s.InFlight += o.InFlight
}

// AvgLatency returns the mean delivered-packet network latency.
func (s Stats) AvgLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Delivered)
}

// Sink receives reassembled packets at their destination tile. The cycle is
// the tail-flit ejection time; the packet is available to the endpoint from
// that cycle on.
type Sink func(p *Packet, cycle int64)

// Network is a W x H mesh of wormhole VC routers.
type Network struct {
	cfg     config.NoC
	arb     arbPolicy
	w, h    int
	routers []*router
	sinks   []Sink

	// shards partition the routers for (optionally parallel) stepping; see
	// netShard. There is always at least one shard — New builds a single
	// shard holding every router, SetPartition rebuilds the split.
	shards []*netShard

	// eventDriven switches Tick from the dense sweep over all routers to
	// iterating only the per-shard active sets. A router leaves its set when
	// idle() and re-enters through wake, which is called at every point work
	// can appear (Inject, arrival hand-off, credit return, boundary drain).
	// Spurious wakes are harmless — a ticked router with nothing due changes
	// no state — so the sets may over-approximate but never under-approximate.
	eventDriven bool
}

// netShard owns a disjoint subset of routers. Everything a router mutates
// while ticking lives either in the router itself or here — active set,
// stats, flit pool — so shard workers never write shared state. The only
// cross-shard traffic is boundary flits and credits, which a dispatching
// router pushes into per-directed-edge SPSC queues (see boundary.go); the
// owning shard drains its incoming queues in fixed order after the tick
// barrier (DrainShard).
type netShard struct {
	id      int
	members []int      // router ids owned, ascending
	active  bitset.Set // global router indices; only members' bits are set
	stats   Stats      // counters for events executed by this shard's routers
	edgesIn []*edgeQueue

	// flitFree recycles flits. A flit born in one shard may die (eject) in
	// another; pools migrate objects freely since recycled flits are zeroed.
	flitFree []*flit
}

func (sh *netShard) getFlit() *flit {
	if l := len(sh.flitFree); l > 0 {
		f := sh.flitFree[l-1]
		sh.flitFree[l-1] = nil
		sh.flitFree = sh.flitFree[:l-1]
		return f
	}
	return &flit{}
}

func (sh *netShard) putFlit(f *flit) {
	*f = flit{}
	sh.flitFree = append(sh.flitFree, f)
}

// New builds the mesh. Sinks default to discarding packets; endpoints
// register theirs with SetSink.
func New(mesh config.Mesh, cfg config.NoC) (*Network, error) {
	full := config.Baseline32()
	full.Mesh, full.NoC = mesh, cfg
	if err := full.Validate(); err != nil {
		return nil, err
	}
	n := &Network{cfg: cfg, arb: newArbPolicy(cfg), w: mesh.Width, h: mesh.Height}
	n.routers = make([]*router, mesh.Nodes())
	n.sinks = make([]Sink, mesh.Nodes())
	for i := range n.routers {
		r := &router{id: i, x: i % n.w, y: i / n.w, net: n, div: 1}
		if d, ok := cfg.ClockDivisors[i]; ok {
			r.div = int64(d)
		}
		for p := 0; p < NumPorts; p++ {
			r.in[p] = make([]inVC, cfg.VCsPerPort)
			r.out[p] = make([]outVC, cfg.VCsPerPort)
			for vc := range r.out[p] {
				r.out[p][vc].credits = cfg.BufferDepth
			}
		}
		r.inj = make([]injSlot, cfg.VCsPerPort)
		n.routers[i] = r
	}
	for _, r := range n.routers {
		if r.y > 0 {
			r.neighbor[PortNorth] = n.routers[r.id-n.w]
		}
		if r.y < n.h-1 {
			r.neighbor[PortSouth] = n.routers[r.id+n.w]
		}
		if r.x > 0 {
			r.neighbor[PortWest] = n.routers[r.id-1]
		}
		if r.x < n.w-1 {
			r.neighbor[PortEast] = n.routers[r.id+1]
		}
	}
	n.SetPartition(nil)
	return n, nil
}

// SetPartition rebuilds the shard split. shardOf maps router id -> shard
// index (indices must cover 0..max contiguously); nil means one shard owning
// everything. Cross-shard adjacencies get one SPSC edge queue per direction,
// created in fixed (source router ascending, then port ascending) order and
// appended to the destination shard's drain list in that same order, which is
// what makes the boundary merge deterministic regardless of worker timing.
// Accumulated stats and pooled flits are folded into shard 0.
func (n *Network) SetPartition(shardOf []int) {
	if shardOf != nil && len(shardOf) != len(n.routers) {
		panic(fmt.Sprintf("noc: partition over %d routers, mesh has %d", len(shardOf), len(n.routers)))
	}
	k := 1
	for _, s := range shardOf {
		if s < 0 {
			panic(fmt.Sprintf("noc: negative shard index %d", s))
		}
		if s+1 > k {
			k = s + 1
		}
	}
	var carryStats Stats
	var carryFlits []*flit
	for _, sh := range n.shards {
		carryStats.add(sh.stats)
		carryFlits = append(carryFlits, sh.flitFree...)
	}
	shards := make([]*netShard, k)
	for i := range shards {
		shards[i] = &netShard{id: i, active: bitset.New(len(n.routers))}
	}
	for id, r := range n.routers {
		s := 0
		if shardOf != nil {
			s = shardOf[id]
		}
		shards[s].members = append(shards[s].members, id)
		r.sh = shards[s]
		r.xqCfg = [NumPorts]*edgeQueue{}
	}
	for _, r := range n.routers {
		for p := PortNorth; p < NumPorts; p++ {
			nb := r.neighbor[p]
			if nb == nil || nb.sh == r.sh {
				continue
			}
			q := &edgeQueue{dst: nb.id}
			r.xqCfg[p] = q
			nb.sh.edgesIn = append(nb.sh.edgesIn, q)
		}
	}
	shards[0].stats = carryStats
	shards[0].flitFree = carryFlits
	n.shards = shards
	n.applyEventMode()
}

// NumShards returns the partition's shard count.
func (n *Network) NumShards() int { return len(n.shards) }

// SetEventDriven switches between the dense Tick (every router, every cycle)
// and active-set ticking. Enabling it marks every router active; the sets
// then shrink as routers drain. Both modes produce identical results; the
// dense sweep is retained as the equivalence reference.
func (n *Network) SetEventDriven(on bool) {
	n.eventDriven = on
	n.applyEventMode()
}

// applyEventMode re-derives the mode-dependent state: per-shard active sets
// (full in event mode, unused in dense mode) and the routers' live boundary
// queues. Boundary queues are active only in event mode with more than one
// shard — the dense sweep is single-goroutine and appends across shards
// directly — so any parked items are flushed to their destinations first.
func (n *Network) applyEventMode() {
	sharded := n.eventDriven && len(n.shards) > 1
	if !sharded {
		for i := range n.shards {
			n.DrainShard(i)
		}
	}
	for _, sh := range n.shards {
		sh.active.Clear()
		if n.eventDriven {
			for _, id := range sh.members {
				sh.active.Add(id)
			}
		}
	}
	for _, r := range n.routers {
		if sharded {
			r.xq = r.xqCfg
		} else {
			r.xq = [NumPorts]*edgeQueue{}
		}
	}
}

// wake marks a router as having (possibly future) work. Only ever called for
// routers of the shard executing the current phase; cross-shard activation
// happens in DrainShard.
func (n *Network) wake(id int) {
	r := n.routers[id]
	r.sh.active.Add(id)
}

// RoutersQuiet reports whether every shard's active set is empty, i.e. no
// flit is buffered, injecting, or in flight anywhere. Only meaningful in
// event-driven mode, between cycles (after all shards drained).
func (n *Network) RoutersQuiet() bool {
	for _, sh := range n.shards {
		if !sh.active.Empty() {
			return false
		}
	}
	return true
}

// Nodes returns the number of tiles.
func (n *Network) Nodes() int { return len(n.routers) }

// Width returns the mesh width.
func (n *Network) Width() int { return n.w }

// Height returns the mesh height.
func (n *Network) Height() int { return n.h }

func (n *Network) xOf(node int) int { return node % n.w }
func (n *Network) yOf(node int) int { return node / n.w }

// HopDistance returns the Manhattan distance between two tiles (the number
// of routers a packet traverses is HopDistance+1).
func (n *Network) HopDistance(a, b int) int {
	dx := n.xOf(a) - n.xOf(b)
	if dx < 0 {
		dx = -dx
	}
	dy := n.yOf(a) - n.yOf(b)
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// SetSink registers the delivery callback for a tile.
func (n *Network) SetSink(node int, s Sink) {
	n.sinks[node] = s
}

// Inject offers a packet to its source tile's outbox at the given cycle.
// The packet starts moving through the router on the next network tick.
// Must be called by the goroutine stepping the source tile's shard.
func (n *Network) Inject(p *Packet, now int64) error {
	if err := p.Validate(len(n.routers)); err != nil {
		return err
	}
	r := n.routers[p.Src]
	if p.ID == 0 {
		// Per-router sequence, namespaced by source so IDs stay unique
		// mesh-wide without a shared counter. IDs only label diagnostics;
		// nothing orders or hashes on them.
		r.pktSeq++
		p.ID = uint64(p.Src+1)<<32 | r.pktSeq
	}
	p.InjectedAt = now
	p.EjectedAt = 0
	p.Hops = 0
	p.ejectedFlits = 0
	// The outbox is priority-ordered: endpoints inject expedited messages
	// first (stable within a class, so normal traffic keeps FIFO order).
	r.outbox[p.VNet].push(p)
	r.sh.active.Add(p.Src)
	r.sh.stats.Injected++
	r.sh.stats.InFlight++
	if p.Priority == High {
		r.sh.stats.HighInjected++
	}
	return nil
}

// Tick advances every router (dense mode) or every active router
// (event-driven mode) by one cycle, stepping the shards sequentially.
// Parallel steppers instead call TickShard per worker, barrier, then
// DrainShard per worker — the result is identical by construction.
func (n *Network) Tick(now int64) {
	if !n.eventDriven {
		for _, r := range n.routers {
			r.tick(now)
		}
		return
	}
	for i := range n.shards {
		n.TickShard(i, now)
	}
	for i := range n.shards {
		n.DrainShard(i)
	}
}

// TickShard advances the active routers of one shard by one cycle. Routers
// activated mid-sweep by an earlier router's dispatch only gained
// future-dated work (arrivals land at now+div+1, credits at now+1), so
// whether the sweep happens to reach them this cycle or not is immaterial —
// their tick would change no state, exactly as in the dense sweep.
func (n *Network) TickShard(shard int, now int64) {
	sh := n.shards[shard]
	for wi := range sh.active {
		w := sh.active[wi]
		for w != 0 {
			id := wi*64 + bits.TrailingZeros64(w)
			w &= w - 1
			r := n.routers[id]
			r.tick(now)
			if r.idle() {
				sh.active.Remove(id)
			}
		}
	}
}

// DrainShard moves boundary items queued by neighboring shards' routers into
// this shard's router state, waking the receivers. Queues are visited in the
// fixed order SetPartition built, and each queue is FIFO, so the merge is
// deterministic. Every item is future-dated relative to the cycle that
// produced it, so draining between cycles is equivalent to the sequential
// stepper's direct append. Must be called by this shard's worker, after the
// barrier that ends the tick phase.
func (n *Network) DrainShard(shard int) {
	sh := n.shards[shard]
	for _, q := range sh.edgesIn {
		if len(q.items) == 0 {
			continue
		}
		r := n.routers[q.dst]
		for _, it := range q.items {
			if it.f != nil {
				r.arrivals[it.port] = append(r.arrivals[it.port], arrival{f: it.f, vc: it.vc, at: it.at})
			} else {
				r.credits = append(r.credits, creditMsg{port: it.port, vc: it.vc, at: it.at})
			}
		}
		sh.active.Add(q.dst)
		q.items = q.items[:0]
	}
}

// complete is called by a router when a packet's tail flit ejects.
func (n *Network) complete(p *Packet, at int64) {
	sh := n.routers[p.Dst].sh
	sh.stats.Delivered++
	sh.stats.InFlight--
	sh.stats.LatencySum += p.NetLatency()
	if s := n.sinks[p.Dst]; s != nil {
		s(p, at)
	}
}

// Stats returns the summed counters. Injections count at the source shard
// and deliveries at the destination shard, so per-shard InFlight values can
// be negative; the sum is exact.
func (n *Network) Stats() Stats {
	var out Stats
	for _, sh := range n.shards {
		out.add(sh.stats)
	}
	return out
}

// ResetStats zeroes the cumulative counters, preserving in-flight tracking.
func (n *Network) ResetStats() {
	for _, sh := range n.shards {
		sh.stats = Stats{InFlight: sh.stats.InFlight}
	}
}

// LinkLoad reports, for every router, the flits forwarded per output port
// since construction (index by the Port* constants; PortLocal counts
// ejections). Dividing by elapsed cycles gives per-link utilization in
// flits/cycle (capacity 1).
func (n *Network) LinkLoad() [][NumPorts]int64 {
	out := make([][NumPorts]int64, len(n.routers))
	for i, r := range n.routers {
		out[i] = r.flitsOut
	}
	return out
}

// MaxLinkLoad returns the largest per-port flit count across all routers,
// excluding local ejections — the hottest mesh link.
func (n *Network) MaxLinkLoad() int64 {
	var m int64
	for _, r := range n.routers {
		for p := PortNorth; p < NumPorts; p++ {
			if r.flitsOut[p] > m {
				m = r.flitsOut[p]
			}
		}
	}
	return m
}

// Quiesce verifies that no packet is buffered, in flight or awaiting
// injection anywhere; used by tests to prove message conservation.
func (n *Network) Quiesce() error {
	if inFlight := n.Stats().InFlight; inFlight != 0 {
		return fmt.Errorf("noc: %d packets still in flight", inFlight)
	}
	for _, sh := range n.shards {
		for _, q := range sh.edgesIn {
			if len(q.items) != 0 {
				return fmt.Errorf("noc: %d boundary items undrained toward router %d", len(q.items), q.dst)
			}
		}
	}
	for _, r := range n.routers {
		if !r.idle() {
			return fmt.Errorf("noc: router %d not idle (buffered=%d injecting=%d outbox=%d arrivals=%d)",
				r.id, r.buffered, r.injecting, r.outboxLen(), r.pendingArrivals())
		}
	}
	return nil
}
