package noc

import (
	"math/rand"
	"strings"
	"testing"
)

// TestDiv2RouterTickCounts is the regression for the div>1 busy-tick bug: a
// div=2 router holding a buffered flit used to stay in the active set and be
// called every cycle forever, with every odd-cycle call skipped by the clock
// gate. With timed wakes the router is called only when it can execute.
// Executed ticks must be identical under dense and event stepping (the
// byte-equivalence invariant restricted to one router), while event-mode
// calls collapse to roughly the executed set.
func TestDiv2RouterTickCounts(t *testing.T) {
	const cycles = 100
	run := func(event bool) (calls, execs int64) {
		cfg := testCfg()
		cfg.ClockDivisors = map[int]int{0: 2}
		n := newTestNet(t, 2, 2, cfg)
		n.SetEventDriven(event)
		// One packet through the slow router: it holds buffered flits for a
		// stretch (every pipeline stage takes 2 cycles) and then sits drained.
		if err := n.Inject(&Packet{Src: 0, Dst: 1, NumFlits: 3, VNet: VNetRequest}, 0); err != nil {
			t.Fatal(err)
		}
		for now := int64(0); now < cycles; now++ {
			n.Tick(now)
		}
		if n.Stats().Delivered != 1 {
			t.Fatalf("event=%v: packet not delivered", event)
		}
		return n.DebugRouterTicks(0)
	}
	dCalls, dExecs := run(false)
	eCalls, eExecs := run(true)
	if dCalls != cycles {
		t.Errorf("dense mode called tick %d times, want every cycle (%d)", dCalls, cycles)
	}
	if dExecs != eExecs {
		t.Errorf("executed ticks diverge: dense %d, event %d", dExecs, eExecs)
	}
	if dExecs >= cycles/2 {
		t.Errorf("div=2 router executed %d of %d cycles; clock gate broken", dExecs, cycles)
	}
	// Event mode may spend a few spurious calls (initial activation, stale
	// wakes) but must not busy-tick: calls track executions, not cycles.
	if slack := eExecs + 8; eCalls > slack {
		t.Errorf("event mode called tick %d times for %d executions (> %d); router busy-ticking",
			eCalls, eExecs, slack)
	}
}

// TestFutureDatedRouterSleeps proves the acceptance property directly: a
// router whose only pending work is a future-dated arrival executes zero
// ticks — in fact receives zero tick calls — between its quiet point and the
// wake cycle. The source router runs at div=4, so the destination's in-flight
// flit is many cycles out: header buffered at 0, VA eligible at 2*4=8, SA at
// 8+4=12, dispatched at 12, arriving at 12+4+1=17 (see the pipeline constants
// in router.go).
func TestFutureDatedRouterSleeps(t *testing.T) {
	cfg := testCfg()
	cfg.ClockDivisors = map[int]int{0: 4}
	n := newTestNet(t, 2, 2, cfg)
	n.SetEventDriven(true)
	var got *Packet
	n.SetSink(1, func(p *Packet, at int64) { got = p })
	if err := n.Inject(&Packet{Src: 0, Dst: 1, NumFlits: 1, VNet: VNetRequest}, 0); err != nil {
		t.Fatal(err)
	}
	n.Tick(0) // initial all-active tick; router 1 is drained and retires
	quietCalls, _ := n.DebugRouterTicks(1)
	const arrivalAt = 17
	for now := int64(1); now < arrivalAt; now++ {
		n.Tick(now)
	}
	if calls, _ := n.DebugRouterTicks(1); calls != quietCalls {
		t.Errorf("sleeping router was called %d times while its only work was future-dated",
			calls-quietCalls)
	}
	runUntil(t, n, arrivalAt, 50, func() bool { return got != nil })
	if _, execs := n.DebugRouterTicks(1); execs == 0 {
		t.Error("destination router never executed; wake lost")
	}
}

// TestRandomScheduleDrainsClean is the fuzz-style leak check: after any
// random injection schedule drains, stats and deliveries are byte-identical
// to the dense reference, every router is drained, and no active bit or
// timed wake is leaked in any shard (DebugLeaks). Runs single-shard and with
// a 2-shard partition so the cross-shard boundary wakes are covered; `make
// ci` races this package, covering the SPSC hand-off.
func TestRandomScheduleDrainsClean(t *testing.T) {
	type outcome struct {
		stats     Stats
		delivered map[uint64]int
	}
	run := func(t *testing.T, seed int64, event bool, shards int) outcome {
		cfg := testCfg()
		cfg.ClockDivisors = map[int]int{0: 2, 5: 3, 10: 4}
		n := newTestNet(t, 4, 4, cfg)
		if shards > 1 {
			shardOf := make([]int, 16)
			for id := range shardOf {
				if id%4 >= 2 { // right half of each row
					shardOf[id] = 1
				}
			}
			n.SetPartition(shardOf)
		}
		n.SetEventDriven(event)
		delivered := make(map[uint64]int)
		for d := 0; d < 16; d++ {
			n.SetSink(d, func(p *Packet, at int64) { delivered[p.ID]++ })
		}
		rng := rand.New(rand.NewSource(seed))
		injected := 0
		now := int64(0)
		for ; now < 60000; now++ {
			if now < 3000 && rng.Float64() < 0.6 {
				p := &Packet{Src: rng.Intn(16), Dst: rng.Intn(16), NumFlits: 1 + rng.Intn(5), VNet: VNet(rng.Intn(2))}
				if rng.Float64() < 0.2 {
					p.Priority = High
				}
				if err := n.Inject(p, now); err != nil {
					t.Fatal(err)
				}
				injected++
			}
			n.Tick(now)
			if now > 3000 && n.Stats().InFlight == 0 {
				break
			}
		}
		if n.Stats().InFlight != 0 {
			t.Fatalf("seed %d event=%v shards=%d: not drained in budget", seed, event, shards)
		}
		// Execute past the last pending deadline (credits land at now+1,
		// wakes at most div+1 out) so stale wakes pop and credits apply.
		for k := int64(1); k <= 10; k++ {
			n.Tick(now + k)
		}
		if event {
			if err := n.DebugLeaks(); err != nil {
				t.Errorf("seed %d shards=%d: %v", seed, shards, err)
			}
		} else if err := n.Quiesce(); err != nil {
			t.Errorf("seed %d dense: %v", seed, err)
		}
		if int64(injected) != n.Stats().Delivered {
			t.Errorf("seed %d event=%v shards=%d: delivered %d of %d",
				seed, event, shards, n.Stats().Delivered, injected)
		}
		return outcome{stats: n.Stats(), delivered: delivered}
	}
	for seed := int64(1); seed <= 4; seed++ {
		ref := run(t, seed, false, 1)
		for _, shards := range []int{1, 2} {
			got := run(t, seed, true, shards)
			if got.stats != ref.stats {
				t.Errorf("seed %d shards=%d: stats %+v, dense %+v", seed, shards, got.stats, ref.stats)
			}
			if len(got.delivered) != len(ref.delivered) {
				t.Errorf("seed %d shards=%d: %d distinct deliveries, dense %d",
					seed, shards, len(got.delivered), len(ref.delivered))
			}
			for id, c := range got.delivered {
				if ref.delivered[id] != c {
					t.Errorf("seed %d shards=%d: packet %d delivered %d times, dense %d",
						seed, shards, id, c, ref.delivered[id])
				}
			}
		}
	}
}

// TestQuiesceReportsCreditCategory pins the categorized drain error: a router
// holding nothing but scheduled credit returns is reported as exactly that,
// not as a generic "not idle".
func TestQuiesceReportsCreditCategory(t *testing.T) {
	n := newTestNet(t, 2, 2, testCfg())
	if err := n.Quiesce(); err != nil {
		t.Fatalf("fresh network not drained: %v", err)
	}
	n.routers[3].credits = append(n.routers[3].credits, creditMsg{port: PortNorth, vc: 0, at: 100})
	err := n.Quiesce()
	if err == nil {
		t.Fatal("pending credit return not reported")
	}
	if !strings.Contains(err.Error(), "credit returns") {
		t.Errorf("error %q does not name the credit category", err)
	}
	n.routers[3].credits = n.routers[3].credits[:0]
	if err := n.Quiesce(); err != nil {
		t.Fatalf("still not drained after clearing: %v", err)
	}
}
