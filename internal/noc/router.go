package noc

import (
	"fmt"
	"math"

	"nocmem/internal/config"
)

// Router ports. Local is the injection/ejection port of the tile.
const (
	PortLocal = iota
	PortNorth
	PortEast
	PortSouth
	PortWest
	NumPorts
)

func portName(p int) string {
	switch p {
	case PortLocal:
		return "local"
	case PortNorth:
		return "north"
	case PortEast:
		return "east"
	case PortSouth:
		return "south"
	case PortWest:
		return "west"
	}
	return "?"
}

func opposite(p int) int {
	switch p {
	case PortNorth:
		return PortSouth
	case PortSouth:
		return PortNorth
	case PortEast:
		return PortWest
	case PortWest:
		return PortEast
	}
	panic(fmt.Sprintf("noc: port %s has no opposite", portName(p)))
}

// Pipeline latencies, in cycles. With the baseline 5-stage pipeline a header
// written into a buffer at cycle t (BW) finishes RC at t+1, so its earliest
// VA is t+2, earliest SA t+3, and it traverses the switch at t+4, reaching
// the next router's buffer at t+5. Pipeline bypassing (and the 2-stage
// router) collapse BW/RC/VA/SA into a single setup stage at cycle t.
const (
	rcDelay5  = 2 // cycles from buffer write until VA eligibility (5-stage)
	stLink    = 2 // switch traversal + link to the next router's buffer
	stEject   = 1 // switch traversal into the local ejection port
	bodyDelay = 1 // buffer-write cycle for body flits (5-stage)
)

// arrival is a flit in flight on a link, due at the given cycle.
type arrival struct {
	f  *flit
	vc int
	at int64
}

// creditMsg is a credit returning upstream, usable at the given cycle.
type creditMsg struct {
	port int
	vc   int
	at   int64
}

// inVC is one input virtual channel: a flit FIFO plus the pipeline state of
// the packet currently at its front.
type inVC struct {
	buf []*flit

	// State of the front packet (reset when its tail departs).
	routed       bool
	adaptive     bool // outPort may be re-chosen until VA succeeds
	outPort      int
	vaDone       bool
	outVC        int
	vaEligibleAt int64
	saEligibleAt int64

	// pktAge is the packet's so-far delay as carried by its header when it
	// reached the front of this VC. Arbitration for the following body and
	// tail flits uses this snapshot — a real switch only knows the age
	// field the header brought past it, not updates the header accrues
	// downstream. The snapshot is also what makes sharded stepping exact:
	// Packet.Age is written by whichever router currently holds the header,
	// and reading it live from another router's arbitration would race
	// across shards (and made the dense sweep's result depend on router id
	// order).
	pktAge int64
}

func (v *inVC) front() *flit {
	if len(v.buf) == 0 {
		return nil
	}
	return v.buf[0]
}

// outVC tracks the allocation and credit state of one downstream VC.
type outVC struct {
	owner   *Packet // packet holding the VC, nil when free
	credits int
}

// injSlot is one in-progress packet injection on a local input VC.
type injSlot struct {
	pkt  *Packet
	next int // next flit sequence number to place
}

// router is one mesh tile's 5-port VC router.
type router struct {
	id   int
	x, y int
	net  *Network
	sh   *netShard // owning shard; all mutable tick state stays shard-local

	// pktSeq numbers packets injected at this router (see Inject).
	pktSeq uint64

	// xq holds, per output port, the boundary queue toward a cross-shard
	// neighbor — non-nil only in sharded event mode. xqCfg is the same set
	// as built by SetPartition; applyEventMode swaps it in and out.
	xq    [NumPorts]*edgeQueue
	xqCfg [NumPorts]*edgeQueue

	// div is the clock divisor: the router advances only on cycles
	// divisible by div, stretching every pipeline stage accordingly.
	div int64

	in  [NumPorts][]inVC
	out [NumPorts][]outVC

	neighbor [NumPorts]*router // per out port; nil at mesh edges and Local

	arrivals [NumPorts][]arrival
	credits  []creditMsg

	outbox [NumVNets]pktQueue
	inj    []injSlot // per local input VC

	buffered  int // flits currently resident in input buffers
	injecting int // local VCs with an active injection

	// flitsOut counts flits forwarded per output port (Local = ejections),
	// for link-utilization reporting.
	flitsOut [NumPorts]int64

	// tickCalls counts invocations of tick; tickExecs counts the subset that
	// passed the clock/idleNow gate and ran the pipeline stages. Debug-only
	// (DebugRouterTicks): the scheduler tests pin these to prove sleeping
	// routers are not busy-ticked.
	tickCalls int64
	tickExecs int64

	// ejPkt locks the local ejection port to one packet from header until
	// tail: the sink reassembles packets, so flits of competing packets are
	// not interleaved into it. (Matches the emergent behavior of age-based
	// arbitration, where a draining packet's accumulated age kept it ahead.)
	ejPkt *Packet

	// Per-tick scratch buffers, reused to keep the hot path allocation-free.
	refsBuf []vcRef
	vaBuf   [NumPorts][]vaReq
}

func (r *router) pendingArrivals() int {
	n := 0
	for p := range r.arrivals {
		n += len(r.arrivals[p])
	}
	return n
}

func (r *router) outboxLen() int {
	n := 0
	for v := range r.outbox {
		n += r.outbox[v].len()
	}
	return n
}

// drained reports whether the router holds no state at all: no buffered or
// injecting flit, no queued packet, no in-flight arrival and no pending
// credit return. This is the message-conservation predicate (Quiesce); a
// router that is merely waiting on future-dated work is NOT drained but may
// still be idleNow.
func (r *router) drained() bool {
	return r.buffered == 0 && r.injecting == 0 && len(r.credits) == 0 &&
		r.outboxLen() == 0 && r.pendingArrivals() == 0
}

// idleNow reports whether the router has nothing executable at cycle now: no
// pipeline work (buffered, injecting or outbox flits) and no credit or
// arrival due by now. Future-dated credits and arrivals leave the router
// un-drained but still idle this cycle — its tick would be a no-op.
func (r *router) idleNow(now int64) bool {
	if r.buffered > 0 || r.injecting > 0 || r.outboxLen() > 0 {
		return false
	}
	for _, c := range r.credits {
		if c.at <= now {
			return false
		}
	}
	for p := range r.arrivals {
		if q := r.arrivals[p]; len(q) > 0 && q[0].at <= now {
			return false
		}
	}
	return true
}

// wakeAlign rounds a wake deadline up to the router's clock grid: a router
// with div > 1 executes only on div-aligned cycles, so a deadline between
// grid points cannot be acted on before the next aligned cycle.
func (r *router) wakeAlign(at int64) int64 {
	if rem := at % r.div; rem != 0 {
		at += r.div - rem
	}
	return at
}

// nextWake returns the earliest future cycle at which the router may have
// executable work, given its state after ticking at now: the next
// div-aligned cycle when pipeline work (buffered, injecting or outbox flits)
// exists, and the div-aligned deadline of the earliest pending credit
// (processCredits) and queued arrival (acceptArrivals). ok is false when the
// router is drained — no state, no wake needed. The per-port arrival queues
// are deadline-sorted (each has a single producer appending nondecreasing
// times, the property acceptArrivals already relies on), so their heads
// suffice; the credit list is small and scanned whole.
func (r *router) nextWake(now int64) (at int64, ok bool) {
	if r.buffered > 0 || r.injecting > 0 || r.outboxLen() > 0 {
		// Nothing can beat the next aligned cycle: every credit/arrival
		// deadline is either already due (clamped up to it) or future-dated
		// and div-aligned (at least it). Skipping the scans keeps retirement
		// O(1) for busy routers — the hot case on loaded meshes.
		return r.wakeAlign(now + 1), true
	}
	at = math.MaxInt64
	for _, c := range r.credits {
		if w := r.wakeAlign(c.at); w < at {
			at = w
		}
	}
	for p := range r.arrivals {
		if q := r.arrivals[p]; len(q) > 0 {
			if w := r.wakeAlign(q[0].at); w < at {
				at = w
			}
		}
	}
	if at == math.MaxInt64 {
		return 0, false
	}
	if at <= now { // a deadline due but unprocessed: run the next aligned cycle
		at = r.wakeAlign(now + 1)
	}
	return at, true
}

// vnetRange returns the VC range [lo, hi) serving the given virtual network.
// The split is exact: config.Validate rejects VCsPerPort values not divisible
// by NumVNets, which would otherwise strand the trailing VCs of every port
// (the integer division below would assign them to no virtual network).
func (r *router) vnetRange(v VNet) (lo, hi int) {
	per := r.net.cfg.VCsPerPort / int(NumVNets)
	lo = int(v) * per
	return lo, lo + per
}

// route computes the X-Y output port toward dst.
func (r *router) route(dst int) int {
	dx := r.net.xOf(dst) - r.x
	dy := r.net.yOf(dst) - r.y
	switch {
	case dx > 0:
		return PortEast
	case dx < 0:
		return PortWest
	case dy > 0:
		return PortSouth
	case dy < 0:
		return PortNorth
	}
	return PortLocal
}

// adaptiveRoute picks an output port under the west-first turn model:
// mandatory west hops first, then the productive direction (east or
// north/south) whose downstream VCs of the packet's class currently have the
// most credits.
func (r *router) adaptiveRoute(dst int, vn VNet) int {
	dx := r.net.xOf(dst) - r.x
	dy := r.net.yOf(dst) - r.y
	if dx == 0 && dy == 0 {
		return PortLocal
	}
	if dx < 0 {
		return PortWest
	}
	var cands [2]int
	n := 0
	if dx > 0 {
		cands[n] = PortEast
		n++
	}
	if dy > 0 {
		cands[n] = PortSouth
		n++
	} else if dy < 0 {
		cands[n] = PortNorth
		n++
	}
	if n == 1 {
		return cands[0]
	}
	// Two productive choices: prefer the port with more free capacity.
	best, bestScore := cands[0], -1
	lo, hi := r.vnetRange(vn)
	for i := 0; i < n; i++ {
		p := cands[i]
		score := 0
		for vc := lo; vc < hi; vc++ {
			score += r.out[p][vc].credits
			if r.out[p][vc].owner == nil {
				score += r.net.cfg.BufferDepth // a free VC outweighs credits
			}
		}
		if score > bestScore {
			best, bestScore = p, score
		}
	}
	return best
}

// onNewFront initializes the pipeline state when a header flit reaches the
// front of a VC.
func (r *router) onNewFront(v *inVC, now int64) {
	f := v.front()
	if f == nil || !f.header() || v.routed {
		return
	}
	v.routed = true
	v.pktAge = f.pkt.Age
	v.adaptive = r.net.cfg.Routing == config.RoutingWestFirst
	if v.adaptive {
		v.outPort = r.adaptiveRoute(f.pkt.Dst, f.pkt.VNet)
	} else {
		v.outPort = r.route(f.pkt.Dst)
	}
	v.vaDone = false
	if r.fastSetup(f.pkt) {
		v.vaEligibleAt = now
	} else {
		v.vaEligibleAt = now + rcDelay5*r.div
	}
}

// fastSetup reports whether the packet's headers may use the single-cycle
// setup stage at this router: always under the 2-stage pipeline, and for
// high-priority packets when pipeline bypassing is enabled.
func (r *router) fastSetup(p *Packet) bool {
	if r.net.cfg.Pipeline == config.Pipeline2 {
		return true
	}
	return r.net.cfg.EnableBypass && p.Priority == High
}

// tick advances the router by one cycle. On a non-divisor cycle, or when
// nothing is executable (idleNow — drained, or all work future-dated), the
// pipeline stages are skipped: the skipped body is a no-op by construction,
// so the dense sweep and the event scheduler stay byte-identical whether or
// not the call happens at all.
func (r *router) tick(now int64) {
	r.tickCalls++
	if now%r.div != 0 || r.idleNow(now) {
		return
	}
	r.tickExecs++
	r.processCredits(now)
	r.acceptArrivals(now)
	r.fillInjections(now)
	refs := r.activeVCs()
	r.allocateVCs(refs, now)
	r.allocateSwitch(refs, now)
}

func (r *router) processCredits(now int64) {
	kept := r.credits[:0]
	for _, c := range r.credits {
		if c.at <= now {
			r.out[c.port][c.vc].credits++
		} else {
			kept = append(kept, c)
		}
	}
	r.credits = kept
}

func (r *router) acceptArrivals(now int64) {
	for p := range r.arrivals {
		q := r.arrivals[p]
		taken := 0
		for taken < len(q) && q[taken].at <= now {
			a := q[taken]
			taken++
			v := &r.in[p][a.vc]
			if len(v.buf) >= r.net.cfg.BufferDepth {
				panic(fmt.Sprintf("noc: router %d port %s vc %d buffer overflow (credit protocol violated)",
					r.id, portName(p), a.vc))
			}
			a.f.routerEntry = now
			v.buf = append(v.buf, a.f)
			r.buffered++
			if len(v.buf) == 1 {
				r.onNewFront(v, now)
			}
		}
		if taken > 0 {
			// Compact in place so the queue keeps its capacity: the
			// neighbor appends here every cycle, and q = q[taken:]
			// would force a fresh allocation on each append cycle.
			rest := copy(q, q[taken:])
			r.arrivals[p] = q[:rest]
		}
	}
}

// fillInjections moves flits from the node's outbox into free local input
// VCs, one flit per VC per cycle. A local VC accepts the next packet as soon
// as the previous packet's flits have all been placed (they may still be
// draining through the buffer), exactly as a link-side VC accepts
// back-to-back packets from its upstream router.
func (r *router) fillInjections(now int64) {
	for vn := VNet(0); vn < NumVNets; vn++ {
		lo, hi := r.vnetRange(vn)
		for vc := lo; vc < hi && r.outbox[vn].len() > 0; vc++ {
			if r.inj[vc].pkt != nil || len(r.in[PortLocal][vc].buf) >= r.net.cfg.BufferDepth {
				continue
			}
			r.inj[vc] = injSlot{pkt: r.outbox[vn].pop()}
			r.injecting++
		}
	}
	// Advance active injections.
	for vc := range r.inj {
		s := &r.inj[vc]
		if s.pkt == nil {
			continue
		}
		v := &r.in[PortLocal][vc]
		if len(v.buf) >= r.net.cfg.BufferDepth {
			continue
		}
		f := r.sh.getFlit()
		*f = flit{pkt: s.pkt, seq: s.next, tail: s.next == s.pkt.NumFlits-1, routerEntry: now}
		if f.header() {
			// The wait for a free VC is part of the source router's
			// residence time and must age the message (Equation 1).
			s.pkt.Age += now - s.pkt.InjectedAt
		}
		v.buf = append(v.buf, f)
		r.buffered++
		if len(v.buf) == 1 {
			r.onNewFront(v, now)
		}
		s.next++
		if s.next == s.pkt.NumFlits {
			*s = injSlot{}
			r.injecting--
		}
	}
}

// vcRef addresses one input VC for arbitration.
type vcRef struct {
	port, vc int
}

func (r *router) vcAt(ref vcRef) *inVC { return &r.in[ref.port][ref.vc] }

// activeVCs lists the input VCs holding at least one flit, reusing the
// router's scratch buffer.
func (r *router) activeVCs() []vcRef {
	refs := r.refsBuf[:0]
	for p := 0; p < NumPorts; p++ {
		for vc := range r.in[p] {
			if len(r.in[p][vc].buf) > 0 {
				refs = append(refs, vcRef{p, vc})
			}
		}
	}
	r.refsBuf = refs
	return refs
}

// vaReq is one VC-allocation request.
type vaReq struct {
	ref vcRef
	c   candidate
}

// allocateVCs runs the VA stage: for each output port, at most one waiting
// header is granted a free output VC per cycle, chosen by the prioritized
// arbitration rule.
func (r *router) allocateVCs(refs []vcRef, now int64) {
	reqs := &r.vaBuf
	for p := range reqs {
		reqs[p] = reqs[p][:0]
	}
	for _, ref := range refs {
		v := r.vcAt(ref)
		f := v.front()
		if !f.header() || !v.routed || v.vaDone || now < v.vaEligibleAt {
			continue
		}
		if v.adaptive {
			// Re-evaluate the adaptive choice against current credit
			// state until VC allocation succeeds.
			v.outPort = r.adaptiveRoute(f.pkt.Dst, f.pkt.VNet)
		}
		reqs[v.outPort] = append(reqs[v.outPort], vaReq{ref, r.makeCandidate(v, f, now, ref.port*64+ref.vc)})
	}
	for p := 0; p < NumPorts; p++ {
		if len(reqs[p]) == 0 {
			continue
		}
		if p == PortLocal {
			// Ejection needs no VC allocation: the sink always accepts.
			for _, q := range reqs[p] {
				r.grantVA(r.vcAt(q.ref), 0, nil, now)
			}
			continue
		}
		for len(reqs[p]) > 0 {
			best := 0
			for i := 1; i < len(reqs[p]); i++ {
				if reqs[p][i].c.beats(reqs[p][best].c, r.net.arb) {
					best = i
				}
			}
			v := r.vcAt(reqs[p][best].ref)
			if free := r.freeOutVC(p, v.front().pkt.VNet); free >= 0 {
				r.grantVA(v, free, &r.out[p][free], now)
			}
			// Whether granted or out of VCs in its class, this
			// requester is finished for the cycle; a requester of the
			// other virtual network may still find a free VC.
			reqs[p] = append(reqs[p][:best], reqs[p][best+1:]...)
		}
	}
}

func (r *router) grantVA(v *inVC, outVCIdx int, slot *outVC, now int64) {
	v.vaDone = true
	v.outVC = outVCIdx
	if slot != nil {
		slot.owner = v.front().pkt
	}
	if r.fastSetup(v.front().pkt) {
		v.saEligibleAt = now // combined setup: SA may happen this cycle
	} else {
		v.saEligibleAt = now + r.div
	}
}

// freeOutVC returns a free output VC index on port p within the vnet class,
// or -1.
func (r *router) freeOutVC(p int, vn VNet) int {
	lo, hi := r.vnetRange(vn)
	for vc := lo; vc < hi; vc++ {
		if r.out[p][vc].owner == nil {
			return vc
		}
	}
	return -1
}

// allocateSwitch runs the two-phase SA stage and dispatches the winners.
func (r *router) allocateSwitch(refs []vcRef, now int64) {
	// Phase 1: one candidate per input port.
	type winner struct {
		ref vcRef
		c   candidate
		ok  bool
	}
	var phase1 [NumPorts]winner
	for _, ref := range refs {
		v := r.vcAt(ref)
		f := v.front()
		if !r.saReady(v, f, now) {
			continue
		}
		c := r.makeCandidate(v, f, now, ref.port*64+ref.vc)
		if w := &phase1[ref.port]; !w.ok || c.beats(w.c, r.net.arb) {
			*w = winner{ref, c, true}
		}
	}
	// Phase 2: one winner per output port.
	var phase2 [NumPorts]winner
	for p := 0; p < NumPorts; p++ {
		w := phase1[p]
		if !w.ok {
			continue
		}
		op := r.vcAt(w.ref).outPort
		if cur := &phase2[op]; !cur.ok || w.c.beats(cur.c, r.net.arb) {
			*cur = w
		}
	}
	for op := 0; op < NumPorts; op++ {
		if phase2[op].ok {
			r.dispatch(phase2[op].ref, now)
		}
	}
}

// saReady reports whether the front flit of v may compete for the switch.
func (r *router) saReady(v *inVC, f *flit, now int64) bool {
	if f.header() {
		if !v.vaDone || now < v.saEligibleAt {
			return false
		}
	} else {
		if !v.vaDone {
			return false
		}
		delay := int64(bodyDelay) * r.div
		if r.net.cfg.Pipeline == config.Pipeline2 {
			delay = 0
		}
		if now < f.routerEntry+delay {
			return false
		}
	}
	if v.outPort == PortLocal {
		// Ejection always has room, but mid-reassembly the port belongs to
		// the packet being ejected.
		return r.ejPkt == nil || r.ejPkt == f.pkt
	}
	return r.out[v.outPort][v.outVC].credits > 0
}

// dispatch moves the front flit of the given VC across the switch.
func (r *router) dispatch(ref vcRef, now int64) {
	v := r.vcAt(ref)
	f := v.buf[0]
	// Shift down instead of reslicing: the buffer is at most BufferDepth
	// deep, and keeping its capacity makes the arrival append above
	// allocation-free in steady state.
	v.buf = v.buf[:copy(v.buf, v.buf[1:])]
	r.buffered--
	pkt := f.pkt

	if f.header() {
		// Equation 1: add the local residence time (through ST) to the
		// message's so-far delay, in common cycles regardless of this
		// router's own frequency.
		pkt.Age += now + r.div - f.routerEntry
		pkt.Hops++
	}

	r.flitsOut[v.outPort]++
	ejected := v.outPort == PortLocal
	if ejected {
		if f.tail {
			r.ejPkt = nil
		} else if f.header() {
			r.ejPkt = pkt
		}
		r.eject(f, now)
	} else {
		slot := &r.out[v.outPort][v.outVC]
		slot.credits--
		// A cross-shard neighbor's state belongs to another worker: hand
		// the flit through the boundary queue instead of appending directly.
		// Same-shard appends keep the direct path — each arrivals[port]
		// queue has a single statically-known producer either way, so FIFO
		// order is preserved.
		if q := r.xq[v.outPort]; q != nil {
			q.push(boundaryItem{f: f, port: opposite(v.outPort), vc: v.outVC, at: now + r.div + 1})
		} else {
			nb := r.neighbor[v.outPort]
			nb.arrivals[opposite(v.outPort)] = append(nb.arrivals[opposite(v.outPort)],
				arrival{f: f, vc: v.outVC, at: now + r.div + 1})
			r.net.wakeAt(nb.id, now+r.div+1, now)
		}
		if f.tail {
			slot.owner = nil
		}
		r.sh.stats.FlitHops++
	}

	// Return a credit upstream for the freed buffer slot. Credit application
	// is commutative (each entry gates on its own at, then increments a
	// counter), so the boundary detour cannot change results.
	if ref.port != PortLocal {
		if q := r.xq[ref.port]; q != nil {
			q.push(boundaryItem{port: opposite(ref.port), vc: ref.vc, at: now + 1})
		} else {
			up := r.neighbor[ref.port]
			up.credits = append(up.credits, creditMsg{port: opposite(ref.port), vc: ref.vc, at: now + 1})
			r.net.wakeAt(up.id, now+1, now)
		}
	}

	if f.tail {
		v.routed = false
		v.vaDone = false
		v.adaptive = false
	}
	if ejected {
		// The flit's life ends at the local sink; recycle it.
		r.sh.putFlit(f)
	}
	if len(v.buf) > 0 {
		r.onNewFront(v, now)
	}
}

// eject delivers a flit to the local sink, completing the packet on its
// tail.
func (r *router) eject(f *flit, now int64) {
	pkt := f.pkt
	at := now + stEject*r.div
	if f.header() {
		pkt.headerEjectAt = at
	}
	pkt.ejectedFlits++
	if pkt.ejectedFlits > pkt.NumFlits {
		panic(fmt.Sprintf("noc: packet %d ejected %d of %d flits", pkt.ID, pkt.ejectedFlits, pkt.NumFlits))
	}
	if f.tail {
		// Count serialization at the destination in the so-far delay.
		pkt.Age += at - pkt.headerEjectAt
		pkt.EjectedAt = at
		r.net.complete(pkt, at)
	}
}
