package noc

import (
	"fmt"
	"math"
	"math/bits"

	"nocmem/internal/config"
)

// Router ports. Local is the injection/ejection port of the tile.
const (
	PortLocal = iota
	PortNorth
	PortEast
	PortSouth
	PortWest
	NumPorts
)

func portName(p int) string {
	switch p {
	case PortLocal:
		return "local"
	case PortNorth:
		return "north"
	case PortEast:
		return "east"
	case PortSouth:
		return "south"
	case PortWest:
		return "west"
	}
	return "?"
}

func opposite(p int) int {
	switch p {
	case PortNorth:
		return PortSouth
	case PortSouth:
		return PortNorth
	case PortEast:
		return PortWest
	case PortWest:
		return PortEast
	}
	panic(fmt.Sprintf("noc: port %s has no opposite", portName(p)))
}

// Pipeline latencies, in cycles. With the baseline 5-stage pipeline a header
// written into a buffer at cycle t (BW) finishes RC at t+1, so its earliest
// VA is t+2, earliest SA t+3, and it traverses the switch at t+4, reaching
// the next router's buffer at t+5. Pipeline bypassing (and the 2-stage
// router) collapse BW/RC/VA/SA into a single setup stage at cycle t.
const (
	rcDelay5  = 2 // cycles from buffer write until VA eligibility (5-stage)
	stLink    = 2 // switch traversal + link to the next router's buffer
	stEject   = 1 // switch traversal into the local ejection port
	bodyDelay = 1 // buffer-write cycle for body flits (5-stage)
)

// arrival is a flit in flight on a link, due at the given cycle.
type arrival struct {
	f  *flit
	vc int
	at int64
}

// creditMsg is a credit returning upstream, usable at the given cycle.
type creditMsg struct {
	port int
	vc   int
	at   int64
}

// Input-VC pipeline flags, stored per VC in router.inFlags.
const (
	vcRouted   = 1 << 0
	vcAdaptive = 1 << 1 // outPort may be re-chosen until VA succeeds
	vcVADone   = 1 << 2
)

// injSlot is one in-progress packet injection on a local input VC.
type injSlot struct {
	pkt  *Packet
	next int // next flit sequence number to place
}

// router is one mesh tile's 5-port VC router.
//
// Per-VC state is laid out struct-of-arrays, indexed port*vcs+vc (see vci):
// the VA/SA arbitration sweeps touch one or two fields of every occupied VC
// each cycle, and parallel dense slices keep those walks cache-linear instead
// of striding over full per-VC structs. The input side carries the pipeline
// state of each VC's front packet; on a tail dispatch only the flag bits are
// cleared, so outPort/outVC and the eligibility/age fields keep their last
// values until the next header overwrites them — checkpoint encoding
// serializes those stale values as-is, and the encoding must stay byte-stable
// across layout changes.
type router struct {
	id   int
	x, y int
	net  *Network
	sh   *netShard // owning shard; all mutable tick state stays shard-local

	// pktSeq numbers packets injected at this router (see Inject).
	pktSeq uint64

	// xq holds, per output port, the boundary queue toward a cross-shard
	// neighbor — non-nil only in sharded event mode. xqCfg is the same set
	// as built by SetPartition; applyEventMode swaps it in and out.
	xq    [NumPorts]*edgeQueue
	xqCfg [NumPorts]*edgeQueue

	// div is the clock divisor: the router advances only on cycles
	// divisible by div, stretching every pipeline stage accordingly.
	div int64

	vcs int // VCs per port; slice lengths below are NumPorts*vcs

	// occ has one bit per input VC, set while its FIFO is non-empty; valid
	// only when occOK (NumPorts*vcs <= 64). The arbitration sweep iterates
	// set bits instead of probing every buffer, so a lightly-loaded router
	// pays O(occupied VCs) rather than O(all VCs) per cycle.
	occ   uint64
	occOK bool

	// Input VCs: the flit FIFO and the front packet's pipeline state.
	inBuf     [][]*flit
	inFlags   []uint8
	inOutPort []int8
	inOutVC   []int32
	inVAAt    []int64 // VA eligibility cycle
	inSAAt    []int64 // SA eligibility cycle

	// inAge is the packet's so-far delay as carried by its header when it
	// reached the front of this VC. Arbitration for the following body and
	// tail flits uses this snapshot — a real switch only knows the age
	// field the header brought past it, not updates the header accrues
	// downstream. The snapshot is also what makes sharded stepping exact:
	// Packet.Age is written by whichever router currently holds the header,
	// and reading it live from another router's arbitration would race
	// across shards (and made the dense sweep's result depend on router id
	// order).
	inAge []int64

	// Output VCs: downstream allocation and credit state.
	outOwner   []*Packet // packet holding the VC, nil when free
	outCredits []int32

	neighbor [NumPorts]*router // per out port; nil at mesh edges and Local

	arrivals [NumPorts][]arrival
	credits  []creditMsg

	outbox [NumVNets]pktQueue
	inj    []injSlot // per local input VC

	buffered  int // flits currently resident in input buffers
	injecting int // local VCs with an active injection

	// flitsOut counts flits forwarded per output port (Local = ejections),
	// for link-utilization reporting.
	flitsOut [NumPorts]int64

	// tickCalls counts invocations of tick; tickExecs counts the subset that
	// passed the clock/idleNow gate and ran the pipeline stages. Debug-only
	// (DebugRouterTicks): the scheduler tests pin these to prove sleeping
	// routers are not busy-ticked.
	tickCalls int64
	tickExecs int64

	// ejPkt locks the local ejection port to one packet from header until
	// tail: the sink reassembles packets, so flits of competing packets are
	// not interleaved into it. (Matches the emergent behavior of age-based
	// arbitration, where a draining packet's accumulated age kept it ahead.)
	ejPkt *Packet

	// Per-tick scratch buffers, reused to keep the hot path allocation-free.
	refsBuf []vcRef
	vaBuf   [NumPorts][]vaReq
}

// vci maps (port, vc) to the flat per-VC index.
func (r *router) vci(p, vc int) int { return p*r.vcs + vc }

// front returns VC i's front flit, or nil when the buffer is empty.
func (r *router) front(i int) *flit {
	if b := r.inBuf[i]; len(b) > 0 {
		return b[0]
	}
	return nil
}

func (r *router) pendingArrivals() int {
	n := 0
	for p := range r.arrivals {
		n += len(r.arrivals[p])
	}
	return n
}

func (r *router) outboxLen() int {
	n := 0
	for v := range r.outbox {
		n += r.outbox[v].len()
	}
	return n
}

// drained reports whether the router holds no state at all: no buffered or
// injecting flit, no queued packet, no in-flight arrival and no pending
// credit return. This is the message-conservation predicate (Quiesce); a
// router that is merely waiting on future-dated work is NOT drained but may
// still be idleNow.
func (r *router) drained() bool {
	return r.buffered == 0 && r.injecting == 0 && len(r.credits) == 0 &&
		r.outboxLen() == 0 && r.pendingArrivals() == 0
}

// idleNow reports whether the router has nothing executable at cycle now: no
// pipeline work (buffered, injecting or outbox flits) and no credit or
// arrival due by now. Future-dated credits and arrivals leave the router
// un-drained but still idle this cycle — its tick would be a no-op.
func (r *router) idleNow(now int64) bool {
	if r.buffered > 0 || r.injecting > 0 || r.outboxLen() > 0 {
		return false
	}
	for _, c := range r.credits {
		if c.at <= now {
			return false
		}
	}
	for p := range r.arrivals {
		if q := r.arrivals[p]; len(q) > 0 && q[0].at <= now {
			return false
		}
	}
	return true
}

// wakeAlign rounds a wake deadline up to the router's clock grid: a router
// with div > 1 executes only on div-aligned cycles, so a deadline between
// grid points cannot be acted on before the next aligned cycle.
func (r *router) wakeAlign(at int64) int64 {
	if rem := at % r.div; rem != 0 {
		at += r.div - rem
	}
	return at
}

// nextWake returns the earliest future cycle at which the router may have
// executable work, given its state after ticking at now: the next
// div-aligned cycle when pipeline work (buffered, injecting or outbox flits)
// exists, and the div-aligned deadline of the earliest pending credit
// (processCredits) and queued arrival (acceptArrivals). ok is false when the
// router is drained — no state, no wake needed. The per-port arrival queues
// are deadline-sorted (each has a single producer appending nondecreasing
// times, the property acceptArrivals already relies on), so their heads
// suffice; the credit list is small and scanned whole.
func (r *router) nextWake(now int64) (at int64, ok bool) {
	if r.buffered > 0 || r.injecting > 0 || r.outboxLen() > 0 {
		// Nothing can beat the next aligned cycle: every credit/arrival
		// deadline is either already due (clamped up to it) or future-dated
		// and div-aligned (at least it). Skipping the scans keeps retirement
		// O(1) for busy routers — the hot case on loaded meshes.
		return r.wakeAlign(now + 1), true
	}
	at = math.MaxInt64
	for _, c := range r.credits {
		if w := r.wakeAlign(c.at); w < at {
			at = w
		}
	}
	for p := range r.arrivals {
		if q := r.arrivals[p]; len(q) > 0 {
			if w := r.wakeAlign(q[0].at); w < at {
				at = w
			}
		}
	}
	if at == math.MaxInt64 {
		return 0, false
	}
	if at <= now { // a deadline due but unprocessed: run the next aligned cycle
		at = r.wakeAlign(now + 1)
	}
	return at, true
}

// vnetRange returns the VC range [lo, hi) serving the given virtual network.
// The split is exact: config.Validate rejects VCsPerPort values not divisible
// by NumVNets, which would otherwise strand the trailing VCs of every port
// (the integer division below would assign them to no virtual network).
func (r *router) vnetRange(v VNet) (lo, hi int) {
	per := r.vcs / int(NumVNets)
	lo = int(v) * per
	return lo, lo + per
}

// route computes the X-Y output port toward dst.
func (r *router) route(dst int) int {
	dx := r.net.xOf(dst) - r.x
	dy := r.net.yOf(dst) - r.y
	switch {
	case dx > 0:
		return PortEast
	case dx < 0:
		return PortWest
	case dy > 0:
		return PortSouth
	case dy < 0:
		return PortNorth
	}
	return PortLocal
}

// adaptiveRoute picks an output port under the west-first turn model:
// mandatory west hops first, then the productive direction (east or
// north/south) whose downstream VCs of the packet's class currently have the
// most credits.
func (r *router) adaptiveRoute(dst int, vn VNet) int {
	dx := r.net.xOf(dst) - r.x
	dy := r.net.yOf(dst) - r.y
	if dx == 0 && dy == 0 {
		return PortLocal
	}
	if dx < 0 {
		return PortWest
	}
	var cands [2]int
	n := 0
	if dx > 0 {
		cands[n] = PortEast
		n++
	}
	if dy > 0 {
		cands[n] = PortSouth
		n++
	} else if dy < 0 {
		cands[n] = PortNorth
		n++
	}
	if n == 1 {
		return cands[0]
	}
	// Two productive choices: prefer the port with more free capacity.
	best, bestScore := cands[0], int32(-1)
	lo, hi := r.vnetRange(vn)
	for i := 0; i < n; i++ {
		p := cands[i]
		base := p * r.vcs
		score := int32(0)
		for vc := lo; vc < hi; vc++ {
			score += r.outCredits[base+vc]
			if r.outOwner[base+vc] == nil {
				score += int32(r.net.cfg.BufferDepth) // a free VC outweighs credits
			}
		}
		if score > bestScore {
			best, bestScore = p, score
		}
	}
	return best
}

// onNewFront initializes the pipeline state when a header flit reaches the
// front of VC i.
func (r *router) onNewFront(i int, now int64) {
	f := r.front(i)
	if f == nil || !f.header() || r.inFlags[i]&vcRouted != 0 {
		return
	}
	flags := r.inFlags[i] | vcRouted
	r.inAge[i] = f.pkt.Age
	if r.net.cfg.Routing == config.RoutingWestFirst {
		flags |= vcAdaptive
		r.inOutPort[i] = int8(r.adaptiveRoute(f.pkt.Dst, f.pkt.VNet))
	} else {
		r.inOutPort[i] = int8(r.route(f.pkt.Dst))
	}
	r.inFlags[i] = flags &^ vcVADone
	if r.fastSetup(f.pkt) {
		r.inVAAt[i] = now
	} else {
		r.inVAAt[i] = now + rcDelay5*r.div
	}
}

// fastSetup reports whether the packet's headers may use the single-cycle
// setup stage at this router: always under the 2-stage pipeline, and for
// high-priority packets when pipeline bypassing is enabled.
func (r *router) fastSetup(p *Packet) bool {
	if r.net.cfg.Pipeline == config.Pipeline2 {
		return true
	}
	return r.net.cfg.EnableBypass && p.Priority == High
}

// tick advances the router by one cycle. On a non-divisor cycle, or when
// nothing is executable (idleNow — drained, or all work future-dated), the
// pipeline stages are skipped: the skipped body is a no-op by construction,
// so the dense sweep and the event scheduler stay byte-identical whether or
// not the call happens at all.
func (r *router) tick(now int64) {
	r.tickCalls++
	if now%r.div != 0 || r.idleNow(now) {
		return
	}
	r.tickExecs++
	r.processCredits(now)
	r.acceptArrivals(now)
	r.fillInjections(now)
	refs := r.activeVCs()
	if len(refs) > 0 {
		r.allocateVCs(refs, now)
		r.allocateSwitch(refs, now)
	}
}

func (r *router) processCredits(now int64) {
	kept := r.credits[:0]
	for _, c := range r.credits {
		if c.at <= now {
			r.outCredits[r.vci(c.port, c.vc)]++
		} else {
			kept = append(kept, c)
		}
	}
	r.credits = kept
}

func (r *router) acceptArrivals(now int64) {
	for p := range r.arrivals {
		q := r.arrivals[p]
		taken := 0
		for taken < len(q) && q[taken].at <= now {
			a := q[taken]
			taken++
			i := r.vci(p, a.vc)
			if len(r.inBuf[i]) >= r.net.cfg.BufferDepth {
				panic(fmt.Sprintf("noc: router %d port %s vc %d buffer overflow (credit protocol violated)",
					r.id, portName(p), a.vc))
			}
			a.f.routerEntry = now
			r.inBuf[i] = append(r.inBuf[i], a.f)
			r.occ |= 1 << uint(i)
			r.buffered++
			if len(r.inBuf[i]) == 1 {
				r.onNewFront(i, now)
			}
		}
		if taken > 0 {
			// Compact in place so the queue keeps its capacity: the
			// neighbor appends here every cycle, and q = q[taken:]
			// would force a fresh allocation on each append cycle.
			rest := copy(q, q[taken:])
			r.arrivals[p] = q[:rest]
		}
	}
}

// fillInjections moves flits from the node's outbox into free local input
// VCs, one flit per VC per cycle. A local VC accepts the next packet as soon
// as the previous packet's flits have all been placed (they may still be
// draining through the buffer), exactly as a link-side VC accepts
// back-to-back packets from its upstream router.
func (r *router) fillInjections(now int64) {
	for vn := VNet(0); vn < NumVNets; vn++ {
		lo, hi := r.vnetRange(vn)
		for vc := lo; vc < hi && r.outbox[vn].len() > 0; vc++ {
			if r.inj[vc].pkt != nil || len(r.inBuf[r.vci(PortLocal, vc)]) >= r.net.cfg.BufferDepth {
				continue
			}
			r.inj[vc] = injSlot{pkt: r.outbox[vn].pop()}
			r.injecting++
		}
	}
	// Advance active injections.
	for vc := range r.inj {
		s := &r.inj[vc]
		if s.pkt == nil {
			continue
		}
		i := r.vci(PortLocal, vc)
		if len(r.inBuf[i]) >= r.net.cfg.BufferDepth {
			continue
		}
		f := r.sh.getFlit()
		*f = flit{pkt: s.pkt, seq: s.next, tail: s.next == s.pkt.NumFlits-1, routerEntry: now}
		if f.header() {
			// The wait for a free VC is part of the source router's
			// residence time and must age the message (Equation 1).
			s.pkt.Age += now - s.pkt.InjectedAt
		}
		r.inBuf[i] = append(r.inBuf[i], f)
		r.occ |= 1 << uint(i)
		r.buffered++
		if len(r.inBuf[i]) == 1 {
			r.onNewFront(i, now)
		}
		s.next++
		if s.next == s.pkt.NumFlits {
			*s = injSlot{}
			r.injecting--
		}
	}
}

// vcRef addresses one input VC for arbitration.
type vcRef struct {
	port, vc int
}

// activeVCs lists the input VCs holding at least one flit, reusing the
// router's scratch buffer. With the occupancy bitmap the walk visits only
// set bits (ascending index — the same (port, vc) lexicographic order the
// slice scan produced); port/vc come from the network's shared index tables
// rather than a divide per VC. The slice-header scan remains as the
// fallback for configurations with more than 64 VCs per router.
func (r *router) activeVCs() []vcRef {
	refs := r.refsBuf[:0]
	if r.occOK {
		for m := r.occ; m != 0; m &= m - 1 {
			i := bits.TrailingZeros64(m)
			refs = append(refs, vcRef{int(r.net.portOf[i]), int(r.net.vcOf[i])})
		}
	} else {
		i := 0
		for p := 0; p < NumPorts; p++ {
			for vc := 0; vc < r.vcs; vc++ {
				if len(r.inBuf[i]) > 0 {
					refs = append(refs, vcRef{p, vc})
				}
				i++
			}
		}
	}
	r.refsBuf = refs
	return refs
}

// vaReq is one VC-allocation request.
type vaReq struct {
	idx int // flat input VC index
	c   candidate
}

// allocateVCs runs the VA stage: for each output port, at most one waiting
// header is granted a free output VC per cycle, chosen by the prioritized
// arbitration rule.
func (r *router) allocateVCs(refs []vcRef, now int64) {
	reqs := &r.vaBuf
	for p := range reqs {
		reqs[p] = reqs[p][:0]
	}
	for _, ref := range refs {
		i := r.vci(ref.port, ref.vc)
		f := r.inBuf[i][0]
		flags := r.inFlags[i]
		if !f.header() || flags&vcRouted == 0 || flags&vcVADone != 0 || now < r.inVAAt[i] {
			continue
		}
		if flags&vcAdaptive != 0 {
			// Re-evaluate the adaptive choice against current credit
			// state until VC allocation succeeds.
			r.inOutPort[i] = int8(r.adaptiveRoute(f.pkt.Dst, f.pkt.VNet))
		}
		op := int(r.inOutPort[i])
		reqs[op] = append(reqs[op], vaReq{i, r.makeCandidate(i, f, now, ref.port*64+ref.vc)})
	}
	for p := 0; p < NumPorts; p++ {
		if len(reqs[p]) == 0 {
			continue
		}
		if p == PortLocal {
			// Ejection needs no VC allocation: the sink always accepts.
			for _, q := range reqs[p] {
				r.grantVA(q.idx, 0, -1, now)
			}
			continue
		}
		for len(reqs[p]) > 0 {
			best := 0
			for i := 1; i < len(reqs[p]); i++ {
				if reqs[p][i].c.beats(reqs[p][best].c, r.net.arb) {
					best = i
				}
			}
			vi := reqs[p][best].idx
			if free := r.freeOutVC(p, r.inBuf[vi][0].pkt.VNet); free >= 0 {
				r.grantVA(vi, free, r.vci(p, free), now)
			}
			// Whether granted or out of VCs in its class, this
			// requester is finished for the cycle; a requester of the
			// other virtual network may still find a free VC.
			reqs[p] = append(reqs[p][:best], reqs[p][best+1:]...)
		}
	}
}

// grantVA records a successful VC allocation for input VC i. slot is the flat
// output VC index taking ownership, or -1 for ejection (no allocation).
func (r *router) grantVA(i, outVCIdx, slot int, now int64) {
	r.inFlags[i] |= vcVADone
	r.inOutVC[i] = int32(outVCIdx)
	if slot >= 0 {
		r.outOwner[slot] = r.inBuf[i][0].pkt
	}
	if r.fastSetup(r.inBuf[i][0].pkt) {
		r.inSAAt[i] = now // combined setup: SA may happen this cycle
	} else {
		r.inSAAt[i] = now + r.div
	}
}

// freeOutVC returns a free output VC index on port p within the vnet class,
// or -1.
func (r *router) freeOutVC(p int, vn VNet) int {
	lo, hi := r.vnetRange(vn)
	base := p * r.vcs
	for vc := lo; vc < hi; vc++ {
		if r.outOwner[base+vc] == nil {
			return vc
		}
	}
	return -1
}

// allocateSwitch runs the two-phase SA stage and dispatches the winners.
func (r *router) allocateSwitch(refs []vcRef, now int64) {
	// Phase 1: one candidate per input port.
	type winner struct {
		ref vcRef
		c   candidate
		ok  bool
	}
	var phase1 [NumPorts]winner
	for _, ref := range refs {
		i := r.vci(ref.port, ref.vc)
		f := r.inBuf[i][0]
		if !r.saReady(i, f, now) {
			continue
		}
		c := r.makeCandidate(i, f, now, ref.port*64+ref.vc)
		if w := &phase1[ref.port]; !w.ok || c.beats(w.c, r.net.arb) {
			*w = winner{ref, c, true}
		}
	}
	// Phase 2: one winner per output port.
	var phase2 [NumPorts]winner
	for p := 0; p < NumPorts; p++ {
		w := phase1[p]
		if !w.ok {
			continue
		}
		op := int(r.inOutPort[r.vci(w.ref.port, w.ref.vc)])
		if cur := &phase2[op]; !cur.ok || w.c.beats(cur.c, r.net.arb) {
			*cur = w
		}
	}
	for op := 0; op < NumPorts; op++ {
		if phase2[op].ok {
			r.dispatch(phase2[op].ref, now)
		}
	}
}

// saReady reports whether the front flit of VC i may compete for the switch.
func (r *router) saReady(i int, f *flit, now int64) bool {
	flags := r.inFlags[i]
	if flags&vcVADone == 0 {
		return false
	}
	if f.header() {
		if now < r.inSAAt[i] {
			return false
		}
	} else {
		delay := int64(bodyDelay) * r.div
		if r.net.cfg.Pipeline == config.Pipeline2 {
			delay = 0
		}
		if now < f.routerEntry+delay {
			return false
		}
	}
	if int(r.inOutPort[i]) == PortLocal {
		// Ejection always has room, but mid-reassembly the port belongs to
		// the packet being ejected.
		return r.ejPkt == nil || r.ejPkt == f.pkt
	}
	return r.outCredits[r.vci(int(r.inOutPort[i]), int(r.inOutVC[i]))] > 0
}

// dispatch moves the front flit of the given VC across the switch.
func (r *router) dispatch(ref vcRef, now int64) {
	i := r.vci(ref.port, ref.vc)
	buf := r.inBuf[i]
	f := buf[0]
	// Shift down instead of reslicing: the buffer is at most BufferDepth
	// deep, and keeping its capacity makes the arrival append above
	// allocation-free in steady state.
	r.inBuf[i] = buf[:copy(buf, buf[1:])]
	if len(r.inBuf[i]) == 0 {
		r.occ &^= 1 << uint(i)
	}
	r.buffered--
	pkt := f.pkt
	outPort := int(r.inOutPort[i])

	if f.header() {
		// Equation 1: add the local residence time (through ST) to the
		// message's so-far delay, in common cycles regardless of this
		// router's own frequency.
		pkt.Age += now + r.div - f.routerEntry
		pkt.Hops++
	}

	r.flitsOut[outPort]++
	ejected := outPort == PortLocal
	if ejected {
		if f.tail {
			r.ejPkt = nil
		} else if f.header() {
			r.ejPkt = pkt
		}
		r.eject(f, now)
	} else {
		outVC := int(r.inOutVC[i])
		slot := r.vci(outPort, outVC)
		r.outCredits[slot]--
		// A cross-shard neighbor's state belongs to another worker: hand
		// the flit through the boundary queue instead of appending directly.
		// Same-shard appends keep the direct path — each arrivals[port]
		// queue has a single statically-known producer either way, so FIFO
		// order is preserved.
		if q := r.xq[outPort]; q != nil {
			q.push(boundaryItem{f: f, port: opposite(outPort), vc: outVC, at: now + r.div + 1})
		} else {
			nb := r.neighbor[outPort]
			nb.arrivals[opposite(outPort)] = append(nb.arrivals[opposite(outPort)],
				arrival{f: f, vc: outVC, at: now + r.div + 1})
			r.net.wakeAt(nb.id, now+r.div+1, now)
		}
		if f.tail {
			r.outOwner[slot] = nil
		}
		r.sh.stats.FlitHops++
	}

	// Return a credit upstream for the freed buffer slot. Credit application
	// is commutative (each entry gates on its own at, then increments a
	// counter), so the boundary detour cannot change results.
	if ref.port != PortLocal {
		if q := r.xq[ref.port]; q != nil {
			q.push(boundaryItem{port: opposite(ref.port), vc: ref.vc, at: now + 1})
		} else {
			up := r.neighbor[ref.port]
			up.credits = append(up.credits, creditMsg{port: opposite(ref.port), vc: ref.vc, at: now + 1})
			r.net.wakeAt(up.id, now+1, now)
		}
	}

	if f.tail {
		// Clear only the flag bits: the routed port/VC and timing fields
		// keep their stale values (and are checkpointed as such) until the
		// next header overwrites them.
		r.inFlags[i] &^= vcRouted | vcVADone | vcAdaptive
	}
	if ejected {
		// The flit's life ends at the local sink; recycle it.
		r.sh.putFlit(f)
	}
	if len(r.inBuf[i]) > 0 {
		r.onNewFront(i, now)
	}
}

// eject delivers a flit to the local sink, completing the packet on its
// tail.
func (r *router) eject(f *flit, now int64) {
	pkt := f.pkt
	at := now + stEject*r.div
	if f.header() {
		pkt.headerEjectAt = at
	}
	pkt.ejectedFlits++
	if pkt.ejectedFlits > pkt.NumFlits {
		panic(fmt.Sprintf("noc: packet %d ejected %d of %d flits", pkt.ID, pkt.ejectedFlits, pkt.NumFlits))
	}
	if f.tail {
		// Count serialization at the destination in the so-far delay.
		pkt.Age += at - pkt.headerEjectAt
		pkt.EjectedAt = at
		r.net.complete(pkt, at)
	}
}
