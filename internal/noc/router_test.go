package noc

import (
	"testing"

	"nocmem/internal/config"
)

// TestCreditBackpressure verifies that a stalled destination VC throttles
// the upstream sender to exactly the buffer depth and that traffic resumes
// when the stall clears. The stall is created by saturating a single flow
// with more flits than one VC's buffering.
func TestCreditBackpressure(t *testing.T) {
	cfg := testCfg()
	cfg.VCsPerPort = 2 // one VC per vnet: a single flow uses a single VC chain
	n := newTestNet(t, 4, 2, cfg)
	delivered := 0
	n.SetSink(3, func(p *Packet, at int64) { delivered++ })

	// Inject a burst of ten 5-flit packets on one flow: 50 flits must
	// squeeze through one VC per hop with 5-flit buffers.
	for i := 0; i < 10; i++ {
		if err := n.Inject(&Packet{Src: 0, Dst: 3, NumFlits: 5, VNet: VNetRequest}, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Count the peak buffered flits at the middle router: never above the
	// per-VC depth times the VC count of the west input port.
	maxBuffered := 0
	for now := int64(0); now < 3000 && delivered < 10; now++ {
		n.Tick(now)
		r := n.routers[1]
		tot := 0
		for vc := 0; vc < r.vcs; vc++ {
			tot += len(r.inBuf[r.vci(PortWest, vc)])
		}
		if tot > maxBuffered {
			maxBuffered = tot
		}
	}
	if delivered != 10 {
		t.Fatalf("delivered %d of 10", delivered)
	}
	if maxBuffered > cfg.BufferDepth*2 {
		t.Errorf("router 1 west port buffered %d flits, credit limit is %d", maxBuffered, cfg.BufferDepth*2)
	}
	if maxBuffered == 0 {
		t.Error("no buffering observed; the test exercised nothing")
	}
}

// TestVCExhaustionBlocksNewPackets verifies that when every output VC of a
// class is held by long packets, further headers wait for a VC (tail
// release) rather than corrupting allocation state.
func TestVCExhaustionBlocksNewPackets(t *testing.T) {
	cfg := testCfg() // 2 VCs per vnet
	n := newTestNet(t, 4, 2, cfg)
	order := []uint64{}
	n.SetSink(3, func(p *Packet, at int64) { order = append(order, p.ID) })
	// Three long packets on the same flow: at most two can hold the two
	// request-class VCs on each link at once.
	for i := 0; i < 3; i++ {
		if err := n.Inject(&Packet{ID: uint64(i + 1), Src: 0, Dst: 3, NumFlits: 8, VNet: VNetRequest}, 0); err != nil {
			t.Fatal(err)
		}
	}
	runUntil(t, n, 0, 3000, func() bool { return len(order) == 3 })
	// All three arrive intact. Packets of one flow may ride different VCs
	// and legally reorder; the endpoint MSHRs tolerate that.
	seen := map[uint64]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("packet %d delivered twice (order %v)", id, order)
		}
		seen[id] = true
	}
	for id := uint64(1); id <= 3; id++ {
		if !seen[id] {
			t.Fatalf("packet %d lost (order %v)", id, order)
		}
	}
	if err := n.Quiesce(); err == nil {
		// Quiesce may still see pending credit returns; settle and recheck.
	} else {
		for k := int64(0); k < 5; k++ {
			n.Tick(3000 + k)
		}
		if err := n.Quiesce(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestEjectionBandwidth verifies the local port delivers at most one flit
// per cycle: two 5-flit packets to the same tile cannot finish closer than
// 5 cycles apart.
func TestEjectionBandwidth(t *testing.T) {
	n := newTestNet(t, 4, 4, testCfg())
	var times []int64
	n.SetSink(5, func(p *Packet, at int64) { times = append(times, at) })
	// Converging flows from two different sources.
	if err := n.Inject(&Packet{Src: 4, Dst: 5, NumFlits: 5, VNet: VNetRequest}, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Inject(&Packet{Src: 6, Dst: 5, NumFlits: 5, VNet: VNetRequest}, 0); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, 0, 500, func() bool { return len(times) == 2 })
	gap := times[1] - times[0]
	if gap < 5 {
		t.Errorf("two 5-flit packets ejected %d cycles apart; local port overdriven", gap)
	}
}

// TestBypassRequiresPriority verifies normal-priority headers never use the
// single-cycle setup under the 5-stage pipeline.
func TestBypassRequiresPriority(t *testing.T) {
	cfg := testCfg()
	n := newTestNet(t, 8, 2, cfg)
	var normal, high *Packet
	n.SetSink(7, func(p *Packet, at int64) {
		if p.Priority == High {
			high = p
		} else {
			normal = p
		}
	})
	if err := n.Inject(&Packet{Src: 0, Dst: 7, NumFlits: 1, VNet: VNetRequest}, 0); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, 0, 200, func() bool { return normal != nil })
	start := normal.EjectedAt + 10
	if err := n.Inject(&Packet{Src: 0, Dst: 7, NumFlits: 1, VNet: VNetRequest, Priority: High}, start); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, start, 200, func() bool { return high != nil })
	normLat := normal.EjectedAt - normal.InjectedAt
	highLat := high.EjectedAt - high.InjectedAt
	if wantNorm := int64(7*5 + 4); normLat != wantNorm {
		t.Errorf("normal latency %d, want %d", normLat, wantNorm)
	}
	if wantHigh := int64(7*2 + 1); highLat != wantHigh {
		t.Errorf("bypassed latency %d, want %d", highLat, wantHigh)
	}
}

// TestBypassDisabled verifies EnableBypass=false makes high-priority
// headers walk the full pipeline (arbitration priority remains).
func TestBypassDisabled(t *testing.T) {
	cfg := testCfg()
	cfg.EnableBypass = false
	n := newTestNet(t, 8, 2, cfg)
	var got *Packet
	n.SetSink(7, func(p *Packet, at int64) { got = p })
	if err := n.Inject(&Packet{Src: 0, Dst: 7, NumFlits: 1, VNet: VNetRequest, Priority: High}, 0); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, 0, 200, func() bool { return got != nil })
	if want := int64(7*5 + 4); got.EjectedAt != want {
		t.Errorf("high-priority latency %d with bypass off, want full-pipeline %d", got.EjectedAt, want)
	}
}

// TestPipelineConstantsSane pins the documented pipeline relationships.
func TestPipelineConstantsSane(t *testing.T) {
	if config.Pipeline5 != 5 || config.Pipeline2 != 2 {
		t.Error("pipeline enum values drifted from their stage counts")
	}
	if opposite(PortNorth) != PortSouth || opposite(PortEast) != PortWest {
		t.Error("port opposites wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("opposite(PortLocal) must panic")
		}
	}()
	opposite(PortLocal)
}
