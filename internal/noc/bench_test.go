package noc

import (
	"testing"

	"nocmem/internal/config"
)

// BenchmarkNetworkTick measures one op = one tick of a loaded 4x8 mesh
// under a steady synthetic offered load (each tile periodically sends a
// single-flit packet to the diagonally opposite tile). In steady state the
// flit and packet free lists should hold allocs/op at ~0.
func BenchmarkNetworkTick(b *testing.B) {
	cfg := config.Baseline32()
	n, err := New(cfg.Mesh, cfg.NoC)
	if err != nil {
		b.Fatal(err)
	}
	var pool PacketPool
	for i := 0; i < n.Nodes(); i++ {
		n.SetSink(i, func(p *Packet, at int64) { pool.Put(p) })
	}
	nodes := n.Nodes()
	inject := func(now int64) {
		for src := 0; src < nodes; src++ {
			if (now+int64(src))%16 != 0 {
				continue
			}
			dst := nodes - 1 - src
			if dst == src {
				dst = (src + 1) % nodes
			}
			p := pool.Get()
			p.Src, p.Dst, p.NumFlits = src, dst, 1
			p.VNet, p.Priority = VNetRequest, Normal
			if src%4 == 0 {
				p.NumFlits = 5 // occasional data-sized packet
				p.VNet = VNetResponse
			}
			if err := n.Inject(p, now); err != nil {
				b.Fatal(err)
			}
		}
	}
	var now int64
	for ; now < 4_000; now++ { // warm up: fill pipelines, grow free lists
		inject(now)
		n.Tick(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inject(now)
		n.Tick(now)
		now++
	}
}
