package noc

import "nocmem/internal/config"

// arbPolicy captures the arbitration rule parameters derived from the
// network configuration.
type arbPolicy struct {
	mode          config.AntiStarvation
	window        int64 // AgeWindow bound
	batchInterval int64 // Batching interval
}

func newArbPolicy(cfg config.NoC) arbPolicy {
	return arbPolicy{mode: cfg.StarvationMode, window: cfg.StarvationWindow, batchInterval: cfg.BatchInterval}
}

// candidate is one arbitration contender: a flit plus its effective age
// (packet so-far delay plus local residence, per Section 3.3: "the routers
// also consider the local delays in addition to the age fields") and, for
// batching mode, the batch its packet was injected in.
type candidate struct {
	f     *flit
	age   int64
	batch int64
	// ord breaks ties deterministically (port/VC index).
	ord int
}

// makeCandidate builds the contender for the front flit of input VC i. The
// so-far delay is the VC's header-carried snapshot (see router.inAge) plus
// the front flit's local residence; no live Packet field is read, so
// arbitration at one router never observes (or races with) header progress
// at another.
func (r *router) makeCandidate(i int, f *flit, now int64, ord int) candidate {
	c := candidate{f: f, age: r.inAge[i] + (now - f.routerEntry), ord: ord}
	if r.net.arb.mode == config.Batching {
		c.batch = f.pkt.InjectedAt / r.net.arb.batchInterval
	}
	return c
}

// beats reports whether candidate a should win arbitration over b.
//
// AgeWindow (the paper's default): a high-priority flit beats a normal one
// unless the normal flit's age exceeds the high-priority flit's age by more
// than the starvation window; within a class, older wins.
//
// Batching: packets of older batches always rank first; priority (then age)
// only breaks ties within a batch.
func (a candidate) beats(b candidate, pol arbPolicy) bool {
	if pol.mode == config.Batching && a.batch != b.batch {
		return a.batch < b.batch
	}
	aHigh := a.f.pkt.Priority == High
	bHigh := b.f.pkt.Priority == High
	if aHigh != bHigh {
		if pol.mode == config.Batching {
			return aHigh // within a batch, priority rules unconditionally
		}
		if aHigh {
			// a keeps its high-priority advantage only while b has
			// not starved past the window.
			return b.age-a.age <= pol.window
		}
		return a.age-b.age > pol.window
	}
	if a.age != b.age {
		return a.age > b.age // oldest first
	}
	return a.ord < b.ord
}

// pickBest returns the index of the winning candidate, or -1 when empty.
func pickBest(cands []candidate, pol arbPolicy) int {
	best := -1
	for i := range cands {
		if best == -1 || cands[i].beats(cands[best], pol) {
			best = i
		}
	}
	return best
}
