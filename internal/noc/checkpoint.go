package noc

import "nocmem/internal/snapshot"

// EncodePacketBody serializes one packet's fields. payload writes the
// opaque Payload handle (the simulator interns its message structs there).
// The caller (the sim checkpoint layer) is responsible for interning: a
// packet referenced from several places must be encoded once and referred
// to by index everywhere else.
func EncodePacketBody(w *snapshot.Writer, p *Packet, payload func(any)) {
	w.U64(p.ID)
	w.Int(p.Src)
	w.Int(p.Dst)
	w.Int(p.NumFlits)
	w.U8(uint8(p.VNet))
	w.U8(uint8(p.Priority))
	w.I64(p.Age)
	w.I64(p.InjectedAt)
	w.I64(p.EjectedAt)
	w.Int(p.Hops)
	w.I64(p.headerEjectAt)
	w.Int(p.ejectedFlits)
	payload(p.Payload)
}

// DecodePacketBody reads one packet's fields into a fresh Packet,
// validating every index against the mesh size.
func DecodePacketBody(r *snapshot.Reader, nodes int, payload func() any) *Packet {
	p := &Packet{}
	p.ID = r.U64()
	p.Src = r.Int()
	p.Dst = r.Int()
	p.NumFlits = r.Int()
	p.VNet = VNet(r.U8())
	p.Priority = Priority(r.U8())
	p.Age = r.I64()
	p.InjectedAt = r.I64()
	p.EjectedAt = r.I64()
	p.Hops = r.Int()
	p.headerEjectAt = r.I64()
	p.ejectedFlits = r.Int()
	p.Payload = payload()
	if r.Err() != nil {
		return p
	}
	if err := p.Validate(nodes); err != nil {
		r.Fail("%v", err)
		return p
	}
	if p.Priority > High || p.Hops < 0 || p.ejectedFlits < 0 || p.ejectedFlits > p.NumFlits {
		r.Fail("packet %d has invalid priority/hops/ejection state", p.ID)
	}
	return p
}

func encodeFlit(w *snapshot.Writer, f *flit, pktRef func(*Packet)) {
	pktRef(f.pkt)
	w.Int(f.seq)
	w.Bool(f.tail)
	w.I64(f.routerEntry)
}

func decodeFlit(r *snapshot.Reader, pktRef func() *Packet) *flit {
	f := &flit{}
	f.pkt = pktRef()
	f.seq = r.Int()
	f.tail = r.Bool()
	f.routerEntry = r.I64()
	if r.Err() != nil {
		return f
	}
	if f.pkt == nil || f.seq < 0 || f.seq >= f.pkt.NumFlits || f.tail != (f.seq == f.pkt.NumFlits-1) {
		r.Fail("flit sequence state inconsistent with its packet")
	}
	return f
}

// EncodeState serializes the network: summed stats and, per router in
// ascending id order, the packet sequence counter, every input VC's buffer
// and pipeline state, output VC ownership and credits, in-flight arrivals
// and credits, outboxes, injection slots, link counters, and the ejection
// lock. pktRef writes one packet reference (interned by the caller).
//
// Boundary queues must be empty — they always are between Step calls, which
// is the only legal checkpoint boundary.
//
// Scheduler state (per-shard active sets and router wake heaps) is
// deliberately NOT serialized: it is an over-approximation of "may have work"
// that restore re-derives by re-arming every router active (sim.Restore calls
// SetDenseStepping, whose event-mode switch runs applyEventMode), after which
// the first executed cycles shrink the sets back via nextWake. Keeping wakes
// out of the snapshot keeps the format stepper-agnostic and byte-stable
// regardless of which stepper produced the checkpoint.
func (n *Network) EncodeState(w *snapshot.Writer, pktRef func(*Packet)) {
	for _, sh := range n.shards {
		for _, q := range sh.edgesIn {
			if len(q.items) != 0 {
				w.Fail("checkpoint mid-cycle: %d boundary items undrained toward router %d", len(q.items), q.dst)
				return
			}
		}
	}
	st := n.Stats()
	w.I64(st.Injected)
	w.I64(st.Delivered)
	w.I64(st.FlitHops)
	w.I64(st.LatencySum)
	w.I64(st.HighInjected)
	w.I64(st.InFlight)
	for _, r := range n.routers {
		w.U64(r.pktSeq)
		for p := 0; p < NumPorts; p++ {
			for vc := 0; vc < r.vcs; vc++ {
				i := r.vci(p, vc)
				w.Len(len(r.inBuf[i]))
				for _, f := range r.inBuf[i] {
					encodeFlit(w, f, pktRef)
				}
				flags := r.inFlags[i]
				w.Bool(flags&vcRouted != 0)
				w.Bool(flags&vcAdaptive != 0)
				w.Int(int(r.inOutPort[i]))
				w.Bool(flags&vcVADone != 0)
				w.Int(int(r.inOutVC[i]))
				w.I64(r.inVAAt[i])
				w.I64(r.inSAAt[i])
				w.I64(r.inAge[i])
			}
			for vc := 0; vc < r.vcs; vc++ {
				i := r.vci(p, vc)
				pktRef(r.outOwner[i])
				w.Int(int(r.outCredits[i]))
			}
			w.Len(len(r.arrivals[p]))
			for _, a := range r.arrivals[p] {
				encodeFlit(w, a.f, pktRef)
				w.Int(a.vc)
				w.I64(a.at)
			}
		}
		w.Len(len(r.credits))
		for _, c := range r.credits {
			w.Int(c.port)
			w.Int(c.vc)
			w.I64(c.at)
		}
		for vn := 0; vn < int(NumVNets); vn++ {
			q := &r.outbox[vn]
			w.Len(q.len())
			for i := q.head; i < len(q.q); i++ {
				pktRef(q.q[i])
			}
		}
		w.Len(len(r.inj))
		for i := range r.inj {
			pktRef(r.inj[i].pkt)
			w.Int(r.inj[i].next)
		}
		for p := 0; p < NumPorts; p++ {
			w.I64(r.flitsOut[p])
		}
		pktRef(r.ejPkt)
	}
}

// DecodeState restores the network in place from a snapshot produced by
// EncodeState. All restored stats land in shard 0 (the per-shard split is
// an implementation detail; only sums are observable). pktRef reads one
// packet reference.
func (n *Network) DecodeState(r *snapshot.Reader, pktRef func() *Packet) {
	var st Stats
	st.Injected = r.I64()
	st.Delivered = r.I64()
	st.FlitHops = r.I64()
	st.LatencySum = r.I64()
	st.HighInjected = r.I64()
	st.InFlight = r.I64()
	if r.Err() != nil {
		return
	}
	for _, sh := range n.shards {
		sh.stats = Stats{}
	}
	n.shards[0].stats = st
	depth := n.cfg.BufferDepth
	vcs := n.cfg.VCsPerPort
	for _, rt := range n.routers {
		rt.pktSeq = r.U64()
		rt.buffered = 0
		rt.injecting = 0
		rt.ejPkt = nil
		rt.occ = 0
		for p := 0; p < NumPorts; p++ {
			for vc := 0; vc < vcs; vc++ {
				vi := rt.vci(p, vc)
				nf := r.Len(1)
				if r.Err() != nil {
					return
				}
				if nf > depth {
					r.Fail("router %d vc buffer of %d flits exceeds depth %d", rt.id, nf, depth)
					return
				}
				rt.inBuf[vi] = rt.inBuf[vi][:0]
				for i := 0; i < nf; i++ {
					f := decodeFlit(r, pktRef)
					if r.Err() != nil {
						return
					}
					rt.inBuf[vi] = append(rt.inBuf[vi], f)
					rt.buffered++
				}
				if nf > 0 {
					rt.occ |= 1 << uint(vi)
				}
				var flags uint8
				if r.Bool() {
					flags |= vcRouted
				}
				if r.Bool() {
					flags |= vcAdaptive
				}
				outPort := r.Int()
				if r.Bool() {
					flags |= vcVADone
				}
				outVC := r.Int()
				rt.inFlags[vi] = flags
				rt.inVAAt[vi] = r.I64()
				rt.inSAAt[vi] = r.I64()
				rt.inAge[vi] = r.I64()
				if r.Err() != nil {
					return
				}
				if outPort < 0 || outPort >= NumPorts || outVC < 0 || outVC >= vcs {
					r.Fail("router %d vc pipeline indices out of range", rt.id)
					return
				}
				rt.inOutPort[vi] = int8(outPort)
				rt.inOutVC[vi] = int32(outVC)
				if flags&(vcRouted|vcVADone) != 0 && outPort != PortLocal && rt.neighbor[outPort] == nil {
					r.Fail("router %d routed toward a missing neighbor", rt.id)
					return
				}
			}
			for vc := 0; vc < vcs; vc++ {
				vi := rt.vci(p, vc)
				rt.outOwner[vi] = pktRef()
				c := r.Int()
				if r.Err() != nil {
					return
				}
				if c < 0 || c > depth {
					r.Fail("router %d credit count %d outside [0,%d]", rt.id, c, depth)
					return
				}
				rt.outCredits[vi] = int32(c)
			}
			na := r.Len(8)
			if r.Err() != nil {
				return
			}
			rt.arrivals[p] = rt.arrivals[p][:0]
			for i := 0; i < na; i++ {
				f := decodeFlit(r, pktRef)
				vc := r.Int()
				at := r.I64()
				if r.Err() != nil {
					return
				}
				if vc < 0 || vc >= vcs {
					r.Fail("arrival vc %d out of range", vc)
					return
				}
				rt.arrivals[p] = append(rt.arrivals[p], arrival{f: f, vc: vc, at: at})
			}
		}
		nc := r.Len(8)
		if r.Err() != nil {
			return
		}
		rt.credits = rt.credits[:0]
		for i := 0; i < nc; i++ {
			port := r.Int()
			vc := r.Int()
			at := r.I64()
			if r.Err() != nil {
				return
			}
			if port < 0 || port >= NumPorts || vc < 0 || vc >= vcs {
				r.Fail("credit indices out of range")
				return
			}
			rt.credits = append(rt.credits, creditMsg{port: port, vc: vc, at: at})
		}
		for vn := 0; vn < int(NumVNets); vn++ {
			nq := r.Len(4)
			if r.Err() != nil {
				return
			}
			q := &rt.outbox[vn]
			q.q = q.q[:0]
			q.head = 0
			for i := 0; i < nq; i++ {
				p := pktRef()
				if r.Err() != nil {
					return
				}
				if p == nil {
					r.Fail("nil packet in outbox")
					return
				}
				q.q = append(q.q, p)
			}
		}
		ni := r.Len(4)
		if r.Err() != nil {
			return
		}
		if ni != len(rt.inj) {
			r.Fail("router %d has %d injection slots, snapshot %d", rt.id, len(rt.inj), ni)
			return
		}
		for i := range rt.inj {
			pkt := pktRef()
			next := r.Int()
			if r.Err() != nil {
				return
			}
			if pkt != nil && (next < 0 || next > pkt.NumFlits) {
				r.Fail("injection cursor %d outside packet", next)
				return
			}
			rt.inj[i] = injSlot{pkt: pkt, next: next}
			if pkt != nil {
				rt.injecting++
			}
		}
		for p := 0; p < NumPorts; p++ {
			rt.flitsOut[p] = r.I64()
		}
		rt.ejPkt = pktRef()
		if r.Err() != nil {
			return
		}
	}
}
