// Package noc implements the on-chip network: a 2D mesh of wormhole-switched
// virtual-channel routers with credit-based flow control, X-Y routing, a
// five-stage router pipeline (BW, RC, VA, SA, ST), and the paper's two
// network-prioritization hooks:
//
//   - priority-aware VC and switch arbitration with an age-based
//     anti-starvation rule (Section 3.3), and
//   - pipeline bypassing, which lets high-priority header flits collapse
//     BW/RC/VA/SA into a single setup stage (Figure 10).
//
// Messages carry an age field ("so-far delay") that every router increments
// with the message's local residence time (Equation 1); no global clock is
// required by the mechanism.
package noc

import (
	"fmt"

	"nocmem/internal/config"
)

// Priority is a packet's network priority class.
type Priority uint8

const (
	// Normal is the default priority.
	Normal Priority = iota
	// High marks packets expedited by Scheme-1 or Scheme-2: they win VC
	// and switch arbitration (subject to anti-starvation) and may bypass
	// the router pipeline.
	High
)

// String implements fmt.Stringer.
func (p Priority) String() string {
	if p == High {
		return "high"
	}
	return "normal"
}

// VNet is a virtual network. Requests and responses travel on disjoint VC
// classes so the request-response protocol cannot deadlock the network.
type VNet uint8

const (
	// VNetRequest carries L1->L2 requests, L2->MC requests and writebacks.
	VNetRequest VNet = iota
	// VNetResponse carries data responses (MC->L2, L2->L1).
	VNetResponse
	// NumVNets is the number of virtual networks.
	NumVNets
)

// config.Validate enforces VCsPerPort % config.NumVNets == 0 on behalf of
// vnetRange's even split; fail the build if the two constants ever diverge.
var _ = [1]struct{}{}[NumVNets-config.NumVNets]

// Packet is one network message. A packet is split into NumFlits flits at
// injection and reassembled at ejection (wormhole switching).
type Packet struct {
	ID       uint64
	Src, Dst int // tile indices
	NumFlits int
	VNet     VNet
	Priority Priority

	// Age is the message's so-far delay in cycles. The caller seeds it
	// with the delay accumulated before injection (e.g. a response
	// inherits its request's age plus the memory delay); every router
	// adds its local residence time as the message passes through.
	Age int64

	// Payload is an opaque handle owned by the endpoints.
	Payload any

	// Measurement fields, maintained by the network.
	InjectedAt int64 // cycle the packet was offered to the source node
	EjectedAt  int64 // cycle the tail flit left the destination router
	Hops       int   // routers traversed

	headerEjectAt int64
	ejectedFlits  int
}

// NetLatency returns the packet's total network latency including source
// queueing and serialization. Valid only after delivery.
func (p *Packet) NetLatency() int64 { return p.EjectedAt - p.InjectedAt }

// Validate reports structural problems in a packet about to be injected.
func (p *Packet) Validate(nodes int) error {
	switch {
	case p.NumFlits < 1:
		return fmt.Errorf("noc: packet %d has %d flits", p.ID, p.NumFlits)
	case p.Src < 0 || p.Src >= nodes:
		return fmt.Errorf("noc: packet %d source %d out of range", p.ID, p.Src)
	case p.Dst < 0 || p.Dst >= nodes:
		return fmt.Errorf("noc: packet %d destination %d out of range", p.ID, p.Dst)
	case p.VNet >= NumVNets:
		return fmt.Errorf("noc: packet %d on unknown vnet %d", p.ID, p.VNet)
	case p.Age < 0:
		return fmt.Errorf("noc: packet %d negative age %d", p.ID, p.Age)
	}
	return nil
}

// PacketPool is a free list of Packets for allocation-free steady-state
// simulation. It is NOT safe for concurrent use: each simulation instance
// owns its pool and runs on a single goroutine (see docs/ARCHITECTURE.md,
// "Concurrency model"), so no locking is needed on the hot path.
type PacketPool struct {
	free []*Packet
}

// Get returns a zeroed packet, reusing a retired one when available.
func (pp *PacketPool) Get() *Packet {
	if n := len(pp.free); n > 0 {
		p := pp.free[n-1]
		pp.free[n-1] = nil
		pp.free = pp.free[:n-1]
		return p
	}
	return &Packet{}
}

// Absorb moves every pooled packet from other into pp, leaving other
// empty; used when a partition rebuild folds old shards' pools together.
func (pp *PacketPool) Absorb(other *PacketPool) {
	pp.free = append(pp.free, other.free...)
	other.free = nil
}

// Put retires a packet. The caller must not retain references: every field
// (including Payload) is cleared.
func (pp *PacketPool) Put(p *Packet) {
	if p == nil {
		return
	}
	*p = Packet{}
	pp.free = append(pp.free, p)
}

// pktQueue is a FIFO of packets with O(1) amortized pop that keeps its
// backing array, so a router outbox stops allocating once it reaches its
// steady-state depth. Inject's priority insertion operates on the live
// window q[head:].
type pktQueue struct {
	q    []*Packet
	head int
}

func (pq *pktQueue) len() int { return len(pq.q) - pq.head }

func (pq *pktQueue) front() *Packet { return pq.q[pq.head] }

func (pq *pktQueue) pop() *Packet {
	p := pq.q[pq.head]
	pq.q[pq.head] = nil
	pq.head++
	if pq.head == len(pq.q) {
		pq.q = pq.q[:0]
		pq.head = 0
	}
	return p
}

// push appends p, placing high-priority packets ahead of every queued
// normal-priority packet (stable within each class, preserving FIFO order).
func (pq *pktQueue) push(p *Packet) {
	if p.Priority == High {
		i := len(pq.q)
		for i > pq.head && pq.q[i-1].Priority != High {
			i--
		}
		pq.q = append(pq.q, nil)
		copy(pq.q[i+1:], pq.q[i:])
		pq.q[i] = p
		return
	}
	pq.q = append(pq.q, p)
}

// flit is one flow-control unit of a packet.
type flit struct {
	pkt  *Packet
	seq  int // 0 = header
	tail bool

	// routerEntry is the cycle this flit entered the current router's
	// buffer; the difference at departure is the local residence time
	// added to the packet age (header flits) and the local component of
	// the arbitration age.
	routerEntry int64
}

func (f *flit) header() bool { return f.seq == 0 }
