package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nocmem/internal/config"
)

func testCfg() config.NoC {
	c := config.Baseline32().NoC
	return c
}

func newTestNet(t *testing.T, w, h int, cfg config.NoC) *Network {
	t.Helper()
	n, err := New(config.Mesh{Width: w, Height: h}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// runUntil ticks the network until the condition holds or the cycle budget
// is exhausted.
func runUntil(t *testing.T, n *Network, start, budget int64, cond func() bool) int64 {
	t.Helper()
	now := start
	for ; now < start+budget; now++ {
		n.Tick(now)
		if cond() {
			return now
		}
	}
	t.Fatalf("condition not reached within %d cycles (delivered=%d inflight=%d)",
		budget, n.Stats().Delivered, n.Stats().InFlight)
	return now
}

func TestSinglePacketLatency5Stage(t *testing.T) {
	// A 1-flit packet over d links through d+1 five-stage routers: each
	// router adds 5 cycles (BW..ST+link), and the final ejection adds 4+1.
	cases := []struct {
		src, dst int
		want     int64 // ejection cycle when injected at cycle 0
	}{
		{0, 1, 0 + 5 + 4},    // 1 link
		{0, 7, 7*5 + 4},      // 7 links straight east
		{0, 31, (7+3)*5 + 4}, // full diagonal: 10 links
		{5, 5, 4},            // self: single router traversal
		{31, 0, (7+3)*5*1 /* symmetric */ + 4},
	}
	for _, tc := range cases {
		n := newTestNet(t, 8, 4, testCfg())
		var got *Packet
		n.SetSink(tc.dst, func(p *Packet, at int64) { got = p })
		p := &Packet{Src: tc.src, Dst: tc.dst, NumFlits: 1, VNet: VNetRequest}
		if err := n.Inject(p, 0); err != nil {
			t.Fatal(err)
		}
		runUntil(t, n, 0, 200, func() bool { return got != nil })
		if got.EjectedAt != tc.want {
			t.Errorf("src=%d dst=%d: ejected at %d, want %d", tc.src, tc.dst, got.EjectedAt, tc.want)
		}
		if wantHops := n.HopDistance(tc.src, tc.dst) + 1; got.Hops != wantHops {
			t.Errorf("src=%d dst=%d: %d hops, want %d", tc.src, tc.dst, got.Hops, wantHops)
		}
	}
}

func TestHighPriorityBypassLatency(t *testing.T) {
	// With pipeline bypassing a high-priority header does setup+ST per
	// router: 2 cycles per hop plus 1 ejection cycle.
	n := newTestNet(t, 8, 4, testCfg())
	var got *Packet
	n.SetSink(31, func(p *Packet, at int64) { got = p })
	p := &Packet{Src: 0, Dst: 31, NumFlits: 1, VNet: VNetResponse, Priority: High}
	if err := n.Inject(p, 0); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, 0, 200, func() bool { return got != nil })
	want := int64(10*2 + 1) // 10 links, final router 1 eject cycle after setup
	if got.EjectedAt != want {
		t.Errorf("bypassed packet ejected at %d, want %d", got.EjectedAt, want)
	}
}

func TestTwoStagePipelineLatency(t *testing.T) {
	cfg := testCfg()
	cfg.Pipeline = config.Pipeline2
	n := newTestNet(t, 8, 4, cfg)
	var got *Packet
	n.SetSink(31, func(p *Packet, at int64) { got = p })
	p := &Packet{Src: 0, Dst: 31, NumFlits: 1, VNet: VNetRequest}
	if err := n.Inject(p, 0); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, 0, 200, func() bool { return got != nil })
	want := int64(10*2 + 1)
	if got.EjectedAt != want {
		t.Errorf("2-stage packet ejected at %d, want %d", got.EjectedAt, want)
	}
}

func TestMultiFlitSerialization(t *testing.T) {
	// A k-flit packet's tail ejects k-1 cycles after a 1-flit packet's.
	lat := func(flits int) int64 {
		n := newTestNet(t, 8, 4, testCfg())
		var got *Packet
		n.SetSink(3, func(p *Packet, at int64) { got = p })
		if err := n.Inject(&Packet{Src: 0, Dst: 3, NumFlits: flits, VNet: VNetRequest}, 0); err != nil {
			t.Fatal(err)
		}
		runUntil(t, n, 0, 200, func() bool { return got != nil })
		return got.EjectedAt
	}
	l1, l5 := lat(1), lat(5)
	if l5 != l1+4 {
		t.Errorf("5-flit latency %d, want 1-flit %d + 4", l5, l1)
	}
}

func TestWormholeFlowIntegrity(t *testing.T) {
	// Eight same-priority packets injected back-to-back on one flow all
	// arrive exactly once. (Strict flow FIFO is NOT guaranteed: packets
	// may ride different VCs; the protocol layer coalesces per line.)
	n := newTestNet(t, 8, 4, testCfg())
	var order []uint64
	n.SetSink(31, func(p *Packet, at int64) { order = append(order, p.ID) })
	for i := 0; i < 8; i++ {
		if err := n.Inject(&Packet{ID: uint64(i + 1), Src: 0, Dst: 31, NumFlits: 5, VNet: VNetRequest}, 0); err != nil {
			t.Fatal(err)
		}
	}
	runUntil(t, n, 0, 2000, func() bool { return len(order) == 8 })
	seen := map[uint64]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("duplicate delivery in %v", order)
		}
		seen[id] = true
	}
	if len(seen) != 8 {
		t.Fatalf("lost packets: %v", order)
	}
}

func TestAgeApproximatesElapsedTime(t *testing.T) {
	// The distributed age accumulation (Equation 1) must track the true
	// elapsed time closely: only link-traversal cycles are uncounted.
	n := newTestNet(t, 8, 4, testCfg())
	var got *Packet
	n.SetSink(31, func(p *Packet, at int64) { got = p })
	if err := n.Inject(&Packet{Src: 0, Dst: 31, NumFlits: 5, VNet: VNetRequest}, 0); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, 0, 500, func() bool { return got != nil })
	elapsed := got.EjectedAt - got.InjectedAt
	slack := int64(got.Hops) + 2
	if got.Age > elapsed || got.Age < elapsed-slack {
		t.Errorf("age %d outside [%d, %d] (elapsed %d, hops %d)",
			got.Age, elapsed-slack, elapsed, elapsed, got.Hops)
	}
}

func TestAgeAccumulationUnderLoad(t *testing.T) {
	// Even with queueing, age must stay within hops+outbox slack of the
	// true elapsed time for every delivered packet.
	n := newTestNet(t, 4, 4, testCfg())
	rng := rand.New(rand.NewSource(7))
	type rec struct{ age, elapsed, hops int64 }
	var recs []rec
	for d := 0; d < 16; d++ {
		d := d
		n.SetSink(d, func(p *Packet, at int64) {
			recs = append(recs, rec{p.Age, p.EjectedAt - p.InjectedAt, int64(p.Hops)})
		})
	}
	injected := 0
	for now := int64(0); now < 3000; now++ {
		if now < 1000 {
			for i := 0; i < 2; i++ {
				p := &Packet{Src: rng.Intn(16), Dst: rng.Intn(16), NumFlits: 1 + rng.Intn(5), VNet: VNet(rng.Intn(2))}
				if err := n.Inject(p, now); err != nil {
					t.Fatal(err)
				}
				injected++
			}
		}
		n.Tick(now)
	}
	if len(recs) != injected {
		t.Fatalf("delivered %d of %d packets", len(recs), injected)
	}
	for _, r := range recs {
		if r.age > r.elapsed || r.age < r.elapsed-r.hops-2 {
			t.Fatalf("age %d vs elapsed %d (hops %d) out of tolerance", r.age, r.elapsed, r.hops)
		}
	}
}

func TestConservationRandomTraffic(t *testing.T) {
	// Every injected packet is delivered exactly once and the network
	// quiesces with credits restored.
	cfg := testCfg()
	n := newTestNet(t, 8, 4, cfg)
	delivered := make(map[uint64]int)
	for d := 0; d < 32; d++ {
		n.SetSink(d, func(p *Packet, at int64) { delivered[p.ID]++ })
	}
	rng := rand.New(rand.NewSource(42))
	injected := 0
	for now := int64(0); now < 20000; now++ {
		if now < 5000 && rng.Float64() < 0.8 {
			p := &Packet{Src: rng.Intn(32), Dst: rng.Intn(32), NumFlits: 1 + rng.Intn(5), VNet: VNet(rng.Intn(2))}
			if rng.Float64() < 0.2 {
				p.Priority = High
			}
			if err := n.Inject(p, now); err != nil {
				t.Fatal(err)
			}
			injected++
		}
		n.Tick(now)
		if now > 5000 && n.Stats().InFlight == 0 {
			// A few extra ticks let in-flight credit returns settle.
			for k := int64(1); k <= 3; k++ {
				n.Tick(now + k)
			}
			break
		}
	}
	if got := n.Stats().Delivered; got != int64(injected) {
		t.Fatalf("delivered %d of %d", got, injected)
	}
	for id, c := range delivered {
		if c != 1 {
			t.Fatalf("packet %d delivered %d times", id, c)
		}
	}
	if err := n.Quiesce(); err != nil {
		t.Fatal(err)
	}
	// Credits must be fully restored on every output VC.
	for _, r := range n.routers {
		for p := 0; p < NumPorts; p++ {
			for vc := 0; vc < r.vcs; vc++ {
				i := r.vci(p, vc)
				if r.outCredits[i] != int32(cfg.BufferDepth) {
					t.Fatalf("router %d port %d vc %d has %d credits, want %d",
						r.id, p, vc, r.outCredits[i], cfg.BufferDepth)
				}
				if r.outOwner[i] != nil {
					t.Fatalf("router %d port %d vc %d still owned after quiesce", r.id, p, vc)
				}
			}
		}
	}
}

func TestHighPriorityWinsUnderContention(t *testing.T) {
	// Many flows cross a congested region; high-priority packets should
	// see lower average latency than normal ones on the same flow mix.
	n := newTestNet(t, 8, 4, testCfg())
	var sumHigh, nHigh, sumNorm, nNorm int64
	for d := 0; d < 32; d++ {
		n.SetSink(d, func(p *Packet, at int64) {
			if p.Priority == High {
				sumHigh += p.NetLatency()
				nHigh++
			} else {
				sumNorm += p.NetLatency()
				nNorm++
			}
		})
	}
	rng := rand.New(rand.NewSource(3))
	for now := int64(0); now < 30000; now++ {
		if now < 15000 {
			// Heavy east-west traffic through the central columns.
			p := &Packet{Src: rng.Intn(4) * 8, Dst: rng.Intn(4)*8 + 7, NumFlits: 5, VNet: VNetResponse}
			if rng.Float64() < 0.15 {
				p.Priority = High
			}
			if err := n.Inject(p, now); err != nil {
				t.Fatal(err)
			}
		}
		n.Tick(now)
		if now > 15000 && n.Stats().InFlight == 0 {
			break
		}
	}
	if nHigh == 0 || nNorm == 0 {
		t.Fatal("expected both priority classes to be delivered")
	}
	avgHigh := float64(sumHigh) / float64(nHigh)
	avgNorm := float64(sumNorm) / float64(nNorm)
	if avgHigh >= avgNorm {
		t.Errorf("high-priority avg latency %.1f >= normal %.1f; prioritization ineffective", avgHigh, avgNorm)
	}
}

func TestInjectValidation(t *testing.T) {
	n := newTestNet(t, 4, 4, testCfg())
	bad := []*Packet{
		{Src: -1, Dst: 0, NumFlits: 1},
		{Src: 0, Dst: 16, NumFlits: 1},
		{Src: 0, Dst: 1, NumFlits: 0},
		{Src: 0, Dst: 1, NumFlits: 1, VNet: NumVNets},
		{Src: 0, Dst: 1, NumFlits: 1, Age: -5},
	}
	for i, p := range bad {
		if err := n.Inject(p, 0); err == nil {
			t.Errorf("case %d: bad packet accepted", i)
		}
	}
}

func TestHopDistanceProperty(t *testing.T) {
	n := newTestNet(t, 8, 4, testCfg())
	f := func(a, b uint8) bool {
		x, y := int(a)%32, int(b)%32
		d := n.HopDistance(x, y)
		return d == n.HopDistance(y, x) && d >= 0 && d <= 7+3 && (d == 0) == (x == y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuiesceDetectsInFlight(t *testing.T) {
	n := newTestNet(t, 4, 4, testCfg())
	if err := n.Inject(&Packet{Src: 0, Dst: 15, NumFlits: 3, VNet: VNetRequest}, 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Quiesce(); err == nil {
		t.Fatal("quiesce should report the undelivered packet")
	}
}

func TestLinkLoadAccounting(t *testing.T) {
	n := newTestNet(t, 4, 4, testCfg())
	var done bool
	n.SetSink(3, func(p *Packet, at int64) { done = true })
	// A 5-flit packet straight east over 3 links crosses 3 east ports
	// and ejects 5 flits at the destination.
	if err := n.Inject(&Packet{Src: 0, Dst: 3, NumFlits: 5, VNet: VNetRequest}, 0); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, 0, 300, func() bool { return done })
	load := n.LinkLoad()
	for _, tile := range []int{0, 1, 2} {
		if load[tile][PortEast] != 5 {
			t.Errorf("tile %d east port forwarded %d flits, want 5", tile, load[tile][PortEast])
		}
	}
	if load[3][PortLocal] != 5 {
		t.Errorf("tile 3 ejected %d flits, want 5", load[3][PortLocal])
	}
	if got := n.MaxLinkLoad(); got != 5 {
		t.Errorf("max link load %d, want 5", got)
	}
}

func TestWestFirstDeliversAllTraffic(t *testing.T) {
	cfg := testCfg()
	cfg.Routing = config.RoutingWestFirst
	n := newTestNet(t, 8, 4, cfg)
	delivered := 0
	for d := 0; d < 32; d++ {
		n.SetSink(d, func(p *Packet, at int64) { delivered++ })
	}
	rng := rand.New(rand.NewSource(11))
	injected := 0
	for now := int64(0); now < 40000; now++ {
		if now < 8000 && rng.Float64() < 0.9 {
			p := &Packet{Src: rng.Intn(32), Dst: rng.Intn(32), NumFlits: 1 + rng.Intn(5), VNet: VNet(rng.Intn(2))}
			if rng.Float64() < 0.2 {
				p.Priority = High
			}
			if err := n.Inject(p, now); err != nil {
				t.Fatal(err)
			}
			injected++
		}
		n.Tick(now)
		if now > 8000 && n.Stats().InFlight == 0 {
			break
		}
	}
	if delivered != injected {
		t.Fatalf("west-first delivered %d of %d (deadlock or loss)", delivered, injected)
	}
}

func TestWestFirstUsesBothMinimalPaths(t *testing.T) {
	// Eastbound traffic with a vertical component should spread across
	// east and north/south links when congested; under X-Y the first hop
	// is always east.
	run := func(algo config.RoutingAlgo) (eastFirstHop, southFirstHop int64) {
		cfg := testCfg()
		cfg.Routing = algo
		n := newTestNet(t, 8, 4, cfg)
		for now := int64(0); now < 3000; now++ {
			if now < 1500 {
				// Saturating flow from tile 0 to tile 31 (east+south).
				_ = n.Inject(&Packet{Src: 0, Dst: 31, NumFlits: 5, VNet: VNetRequest}, now)
			}
			n.Tick(now)
		}
		load := n.LinkLoad()
		return load[0][PortEast], load[0][PortSouth]
	}
	xe, xs := run(config.RoutingXY)
	if xs != 0 {
		t.Fatalf("X-Y sent %d flits south from the source", xs)
	}
	if xe == 0 {
		t.Fatal("X-Y sent nothing east")
	}
	we, ws := run(config.RoutingWestFirst)
	if ws == 0 {
		t.Errorf("west-first never used the southern minimal path (east=%d south=%d)", we, ws)
	}
}

func TestWestFirstMandatoryWestHops(t *testing.T) {
	// A westbound packet must head west immediately (no adaptivity), or
	// the turn model would be violated.
	cfg := testCfg()
	cfg.Routing = config.RoutingWestFirst
	n := newTestNet(t, 8, 4, cfg)
	var got *Packet
	n.SetSink(24, func(p *Packet, at int64) { got = p })
	if err := n.Inject(&Packet{Src: 7, Dst: 24, NumFlits: 1, VNet: VNetRequest}, 0); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, 0, 300, func() bool { return got != nil })
	load := n.LinkLoad()
	if load[7][PortSouth] != 0 {
		t.Error("westbound packet turned south before completing west hops")
	}
	if load[7][PortWest] != 1 {
		t.Errorf("source west link carried %d flits, want 1", load[7][PortWest])
	}
	if wantHops := n.HopDistance(7, 24) + 1; got.Hops != wantHops {
		t.Errorf("%d hops, want minimal %d", got.Hops, wantHops)
	}
}

func TestHeterogeneousRouterFrequencies(t *testing.T) {
	// A half-speed router on the path stretches the packet's latency, and
	// the distributed age (Equation 1) still tracks true elapsed time.
	lat := func(divs map[int]int) (int64, *Packet) {
		cfg := testCfg()
		cfg.ClockDivisors = divs
		n := newTestNet(t, 8, 4, cfg)
		var got *Packet
		n.SetSink(7, func(p *Packet, at int64) { got = p })
		if err := n.Inject(&Packet{Src: 0, Dst: 7, NumFlits: 1, VNet: VNetRequest}, 0); err != nil {
			t.Fatal(err)
		}
		runUntil(t, n, 0, 500, func() bool { return got != nil })
		return got.EjectedAt, got
	}
	fast, _ := lat(nil)
	slow, p := lat(map[int]int{3: 4}) // router 3 at quarter speed
	if slow <= fast {
		t.Fatalf("slow-router path latency %d not above full-speed %d", slow, fast)
	}
	elapsed := p.EjectedAt - p.InjectedAt
	slack := int64(p.Hops) + 2
	if p.Age > elapsed || p.Age < elapsed-slack {
		t.Errorf("heterogeneous age %d outside [%d, %d]", p.Age, elapsed-slack, elapsed)
	}
}

func TestHeterogeneousConservation(t *testing.T) {
	cfg := testCfg()
	cfg.ClockDivisors = map[int]int{0: 2, 5: 3, 10: 4}
	n := newTestNet(t, 4, 4, cfg)
	delivered := 0
	for d := 0; d < 16; d++ {
		n.SetSink(d, func(p *Packet, at int64) { delivered++ })
	}
	rng := rand.New(rand.NewSource(21))
	injected := 0
	for now := int64(0); now < 60000; now++ {
		if now < 6000 && rng.Float64() < 0.5 {
			p := &Packet{Src: rng.Intn(16), Dst: rng.Intn(16), NumFlits: 1 + rng.Intn(5), VNet: VNet(rng.Intn(2))}
			if err := n.Inject(p, now); err != nil {
				t.Fatal(err)
			}
			injected++
		}
		n.Tick(now)
		if now > 6000 && n.Stats().InFlight == 0 {
			break
		}
	}
	if delivered != injected {
		t.Fatalf("delivered %d of %d with slow routers", delivered, injected)
	}
}

func TestVNetIsolation(t *testing.T) {
	// Request packets may only ever occupy request-class VCs, and response
	// packets response-class VCs, at every router — the protocol-deadlock
	// guarantee rests on this.
	n := newTestNet(t, 4, 4, testCfg())
	rng := rand.New(rand.NewSource(13))
	for now := int64(0); now < 5000; now++ {
		if now < 2500 && rng.Float64() < 0.7 {
			vn := VNet(rng.Intn(2))
			p := &Packet{Src: rng.Intn(16), Dst: rng.Intn(16), NumFlits: 1 + rng.Intn(5), VNet: vn}
			if err := n.Inject(p, now); err != nil {
				t.Fatal(err)
			}
		}
		n.Tick(now)
		if now%37 != 0 {
			continue
		}
		for _, r := range n.routers {
			for port := 0; port < NumPorts; port++ {
				for vc := 0; vc < r.vcs; vc++ {
					for _, f := range r.inBuf[r.vci(port, vc)] {
						lo, hi := r.vnetRange(f.pkt.VNet)
						if vc < lo || vc >= hi {
							t.Fatalf("cycle %d: %v packet in VC %d of router %d (class range [%d,%d))",
								now, f.pkt.VNet, vc, r.id, lo, hi)
						}
					}
				}
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	n := newTestNet(t, 4, 4, testCfg())
	done := false
	n.SetSink(15, func(p *Packet, at int64) { done = true })
	if err := n.Inject(&Packet{Src: 0, Dst: 15, NumFlits: 3, VNet: VNetResponse, Priority: High}, 0); err != nil {
		t.Fatal(err)
	}
	runUntil(t, n, 0, 300, func() bool { return done })
	st := n.Stats()
	if st.Injected != 1 || st.Delivered != 1 || st.HighInjected != 1 || st.InFlight != 0 {
		t.Errorf("stats %+v", st)
	}
	if st.AvgLatency() <= 0 {
		t.Error("avg latency not recorded")
	}
	// Flit-hops: 3 flits over 6 links (the ejection is not a link hop).
	if want := int64(3 * 6); st.FlitHops != want {
		t.Errorf("flit-hops %d, want %d", st.FlitHops, want)
	}
	n.ResetStats()
	if got := n.Stats(); got.Delivered != 0 || got.Injected != 0 {
		t.Error("reset failed")
	}
}
