package noc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"nocmem/internal/config"
)

func cand(pri Priority, age int64, ord int) candidate {
	return candidate{f: &flit{pkt: &Packet{Priority: pri, Age: age}, routerEntry: 0}, age: age, ord: ord}
}

func agePol(window int64) arbPolicy { return arbPolicy{window: window} }

func TestArbitrationRule(t *testing.T) {
	pol := agePol(1000)
	cases := []struct {
		name string
		a, b candidate
		want bool // a beats b
	}{
		{"high beats normal", cand(High, 10, 0), cand(Normal, 10, 1), true},
		{"normal loses to high", cand(Normal, 10, 0), cand(High, 10, 1), false},
		{"older normal wins within class", cand(Normal, 50, 1), cand(Normal, 10, 0), true},
		{"older high wins within class", cand(High, 50, 1), cand(High, 10, 0), true},
		{"tie broken by ord", cand(Normal, 10, 0), cand(Normal, 10, 1), true},
		{"starved normal beats high", cand(Normal, 1500, 1), cand(High, 100, 0), true},
		{"high keeps advantage within window", cand(High, 100, 0), cand(Normal, 1099, 1), true},
		{"high loses exactly past window", cand(High, 100, 0), cand(Normal, 1101, 1), false},
	}
	for _, tc := range cases {
		if got := tc.a.beats(tc.b, pol); got != tc.want {
			t.Errorf("%s: beats=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestArbitrationAsymmetry(t *testing.T) {
	// For any pair of distinct candidates, exactly one direction wins
	// (a strict total order between two contenders).
	f := func(aHigh, bHigh bool, aAge, bAge uint16) bool {
		pa, pb := Normal, Normal
		if aHigh {
			pa = High
		}
		if bHigh {
			pb = High
		}
		a := cand(pa, int64(aAge), 0)
		b := cand(pb, int64(bAge), 1)
		return a.beats(b, agePol(1000)) != b.beats(a, agePol(1000))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPickBest(t *testing.T) {
	cands := []candidate{
		cand(Normal, 500, 0),
		cand(High, 50, 1),
		cand(Normal, 400, 2),
		cand(High, 90, 3),
	}
	if got := pickBest(cands, agePol(1000)); got != 3 {
		t.Errorf("pickBest = %d, want 3 (oldest high-priority)", got)
	}
	if got := pickBest(nil, agePol(1000)); got != -1 {
		t.Errorf("pickBest(empty) = %d, want -1", got)
	}
	// With a starved normal candidate past the window, it must win.
	cands = append(cands, cand(Normal, 1200, 4))
	if got := pickBest(cands, agePol(1000)); got != 4 {
		t.Errorf("pickBest = %d, want 4 (starved normal)", got)
	}
}

func TestPriorityString(t *testing.T) {
	if Normal.String() != "normal" || High.String() != "high" {
		t.Error("priority string labels wrong")
	}
}

func batchCand(pri Priority, age, batch int64, ord int) candidate {
	c := cand(pri, age, ord)
	c.batch = batch
	return c
}

func TestBatchingArbitration(t *testing.T) {
	pol := arbPolicy{mode: config.Batching, batchInterval: 1000}
	cases := []struct {
		name string
		a, b candidate
		want bool
	}{
		{"older batch beats high priority", batchCand(Normal, 10, 0, 0), batchCand(High, 999, 1, 1), true},
		{"newer batch loses", batchCand(High, 999, 2, 0), batchCand(Normal, 10, 1, 1), false},
		{"priority rules within a batch", batchCand(High, 5, 3, 1), batchCand(Normal, 900, 3, 0), true},
		{"age breaks priority ties within a batch", batchCand(Normal, 50, 3, 1), batchCand(Normal, 10, 3, 0), true},
	}
	for _, tc := range cases {
		if got := tc.a.beats(tc.b, pol); got != tc.want {
			t.Errorf("%s: beats=%v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestBatchingNetworkDeliversEverything(t *testing.T) {
	cfg := testCfg()
	cfg.StarvationMode = config.Batching
	cfg.BatchInterval = 500
	n := newTestNet(t, 4, 4, cfg)
	var delivered int
	for d := 0; d < 16; d++ {
		n.SetSink(d, func(p *Packet, at int64) { delivered++ })
	}
	rng := rand.New(rand.NewSource(5))
	injected := 0
	for now := int64(0); now < 20000; now++ {
		if now < 4000 && rng.Float64() < 0.6 {
			p := &Packet{Src: rng.Intn(16), Dst: rng.Intn(16), NumFlits: 1 + rng.Intn(5), VNet: VNet(rng.Intn(2))}
			if rng.Float64() < 0.3 {
				p.Priority = High
			}
			if err := n.Inject(p, now); err != nil {
				t.Fatal(err)
			}
			injected++
		}
		n.Tick(now)
		if now > 4000 && n.Stats().InFlight == 0 {
			break
		}
	}
	if delivered != injected {
		t.Fatalf("delivered %d of %d under batching arbitration", delivered, injected)
	}
}
