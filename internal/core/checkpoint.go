package core

import "nocmem/internal/snapshot"

// Encode serializes the Scheme-1 state: per-application delay averages, the
// thresholds last pushed to the controllers, the next push cycle, and the
// tagging counters.
func (s *Scheme1) Encode(w *snapshot.Writer) {
	w.I64s(s.sum)
	w.I64s(s.n)
	w.I64s(s.published)
	w.I64(s.nextPush)
	w.I64(s.Tagged)
	w.I64(s.Checked)
}

// Decode restores the Scheme-1 state in place.
func (s *Scheme1) Decode(r *snapshot.Reader) {
	sum := r.I64s()
	n := r.I64s()
	published := r.I64s()
	if r.Err() != nil {
		return
	}
	if len(sum) != len(s.sum) || len(n) != len(s.n) || len(published) != len(s.published) {
		r.Fail("scheme-1 core count mismatch: snapshot %d, config %d", len(sum), len(s.sum))
		return
	}
	copy(s.sum, sum)
	copy(s.n, n)
	copy(s.published, published)
	s.nextPush = r.I64()
	s.Tagged = r.I64()
	s.Checked = r.I64()
}

// SkipScheme1 consumes an encoded Scheme-1 image without applying it, for
// restoring a snapshot into a configuration that has the scheme disabled.
func SkipScheme1(r *snapshot.Reader) {
	r.I64s()
	r.I64s()
	r.I64s()
	r.I64()
	r.I64()
	r.I64()
}

// Encode serializes the Scheme-2 state: every node's Bank History Table
// (timestamp rings and cursors) plus the tagging counters.
func (s *Scheme2) Encode(w *snapshot.Writer) {
	w.Len(len(s.tables))
	for _, t := range s.tables {
		w.Len(len(t.stamps))
		w.Int(t.th)
		for b := range t.stamps {
			for _, v := range t.stamps[b] {
				w.I64(v)
			}
			w.Int(t.pos[b])
		}
	}
	w.I64(s.Tagged)
	w.I64(s.Checked)
}

// Decode restores the Scheme-2 state in place.
func (s *Scheme2) Decode(r *snapshot.Reader) {
	n := r.Len(1)
	if r.Err() != nil {
		return
	}
	if n != len(s.tables) {
		r.Fail("scheme-2 node count mismatch: snapshot %d, config %d", n, len(s.tables))
		return
	}
	for _, t := range s.tables {
		banks := r.Len(1)
		th := r.Int()
		if r.Err() != nil {
			return
		}
		if banks != len(t.stamps) || th != t.th {
			r.Fail("bank-history shape mismatch: snapshot %dx%d, config %dx%d",
				banks, th, len(t.stamps), t.th)
			return
		}
		for b := range t.stamps {
			for i := range t.stamps[b] {
				t.stamps[b][i] = r.I64()
			}
			pos := r.Int()
			if r.Err() != nil {
				return
			}
			if pos < 0 || pos >= t.th {
				r.Fail("bank-history cursor %d outside [0,%d)", pos, t.th)
				return
			}
			t.pos[b] = pos
		}
	}
	s.Tagged = r.I64()
	s.Checked = r.I64()
}

// SkipScheme2 consumes an encoded Scheme-2 image without applying it.
func SkipScheme2(r *snapshot.Reader) {
	n := r.Len(1)
	for i := 0; i < n && r.Err() == nil; i++ {
		banks := r.Len(1)
		th := r.Int()
		if r.Err() != nil || th < 0 || th > r.Remaining()/8 {
			r.Fail("implausible bank-history shape")
			return
		}
		for b := 0; b < banks && r.Err() == nil; b++ {
			for j := 0; j < th; j++ {
				r.I64()
			}
			r.Int()
		}
	}
	r.I64()
	r.I64()
}
