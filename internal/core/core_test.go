package core

import (
	"testing"
	"testing/quick"

	"nocmem/internal/config"
	"nocmem/internal/noc"
)

func s1cfg() config.Scheme1 {
	c := config.Baseline32().S1
	c.Enabled = true
	return c
}

func TestScheme1ThresholdLifecycle(t *testing.T) {
	cfg := s1cfg()
	cfg.UpdatePeriod = 100
	cfg.InitialThreshold = 500
	s := NewScheme1(cfg, 4)

	// Before any completion, the seed threshold applies.
	if got := s.Threshold(0); got != 500 {
		t.Fatalf("initial threshold %d", got)
	}
	if s.Classify(0, 501) != noc.High || s.Classify(0, 499) != noc.Normal {
		t.Fatal("seed threshold not enforced")
	}

	// Completions move the core-side average, but the MC-visible
	// threshold changes only at the next periodic push.
	s.RecordRoundTrip(0, 1000)
	s.RecordRoundTrip(0, 2000)
	if got := s.Average(0); got != 1500 {
		t.Fatalf("average %.0f", got)
	}
	if got := s.Threshold(0); got != 500 {
		t.Fatalf("threshold updated before the push: %d", got)
	}
	s.Tick(50) // before the period: no push
	if got := s.Threshold(0); got != 500 {
		t.Fatalf("premature push: %d", got)
	}
	s.Tick(100)
	want := int64(cfg.ThresholdFactor * 1500)
	if got := s.Threshold(0); got != want {
		t.Fatalf("threshold %d after push, want %d", got, want)
	}

	// Other cores keep their seed until they complete something.
	if got := s.Threshold(1); got != 500 {
		t.Fatalf("idle core threshold %d", got)
	}
}

func TestScheme1ClassifyCounts(t *testing.T) {
	cfg := s1cfg()
	s := NewScheme1(cfg, 1)
	s.RecordRoundTrip(0, 100)
	s.Tick(cfg.UpdatePeriod)
	late, onTime := 0, 0
	for age := int64(0); age < 300; age += 10 {
		if s.Classify(0, age) == noc.High {
			late++
		} else {
			onTime++
		}
	}
	if late == 0 || onTime == 0 {
		t.Fatalf("classification not selective: late=%d onTime=%d", late, onTime)
	}
	if s.Checked != int64(late+onTime) || s.Tagged != int64(late) {
		t.Fatalf("counters checked=%d tagged=%d", s.Checked, s.Tagged)
	}
}

func TestScheme1NegativeDelayClamped(t *testing.T) {
	s := NewScheme1(s1cfg(), 1)
	s.RecordRoundTrip(0, -50)
	if s.Average(0) != 0 {
		t.Errorf("negative delay polluted the average: %.1f", s.Average(0))
	}
}

func TestBankHistoryWindow(t *testing.T) {
	h := NewBankHistory(4, 100, 1)
	if !h.Idle(2, 0) {
		t.Fatal("untouched bank should look idle")
	}
	h.Record(2, 10)
	if h.Idle(2, 50) {
		t.Fatal("recently used bank should look busy")
	}
	if !h.Idle(2, 111) {
		t.Fatal("bank should look idle after the window expires")
	}
	if !h.Idle(3, 50) {
		t.Fatal("other banks unaffected")
	}
}

func TestBankHistoryThreshold(t *testing.T) {
	h := NewBankHistory(2, 100, 3)
	// With th=3, up to two recent sends still count as idle.
	h.Record(0, 10)
	h.Record(0, 11)
	if !h.Idle(0, 20) {
		t.Fatal("two sends under th=3 should still be idle")
	}
	h.Record(0, 12)
	if h.Idle(0, 20) {
		t.Fatal("three recent sends must not be idle")
	}
	// The ring keeps only the newest th stamps.
	if h.Idle(0, 105) != false {
		t.Fatal("stamps at 11 and 12 are still within the window at 105")
	}
	if !h.Idle(0, 150) {
		t.Fatal("all stamps expired")
	}
}

func TestBankHistoryProperty(t *testing.T) {
	// After recording at time x, the bank is non-idle (th=1) for exactly
	// window cycles.
	f := func(at uint16, delta uint16) bool {
		h := NewBankHistory(1, 1000, 1)
		h.Record(0, int64(at))
		now := int64(at) + int64(delta)
		return h.Idle(0, now) == (int64(delta) >= 1000)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBankHistoryWindowBoundary(t *testing.T) {
	// Pins the window down as the half-open interval (now-T, now] at the
	// paper's T=2000: a stamp counts as recent iff now-t < T, so a request
	// sent exactly T cycles ago has just aged out. A drift to <= or to a
	// closed interval silently shifts every Scheme-2 tagging decision.
	const T = 2000
	cases := []struct {
		name  string
		stamp int64 // record time
		now   int64 // query time
		idle  bool
	}{
		{"same cycle", 5000, 5000, false},
		{"one cycle old", 5000, 5001, false},
		{"last cycle inside window", 5000, 5000 + T - 1, false},
		{"exactly T cycles old ages out", 5000, 5000 + T, true},
		{"T+1 cycles old", 5000, 5000 + T + 1, true},
		{"stamp at cycle zero, now T-1", 0, T - 1, false},
		{"stamp at cycle zero, now T", 0, T, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := NewBankHistory(1, T, 1)
			h.Record(0, tc.stamp)
			if got := h.Idle(0, tc.now); got != tc.idle {
				t.Fatalf("Idle(stamp=%d, now=%d) = %v, want %v", tc.stamp, tc.now, got, tc.idle)
			}
		})
	}
}

func TestScheme2ClassifyRecords(t *testing.T) {
	cfg := config.Baseline32().S2
	cfg.Enabled = true
	cfg.HistoryWindow = 100
	s := NewScheme2(cfg, 2, 8)
	if s.Classify(0, 3, 10) != noc.High {
		t.Fatal("first request to an idle bank should be tagged")
	}
	if s.Classify(0, 3, 20) != noc.Normal {
		t.Fatal("second request within the window must not be tagged")
	}
	// Histories are per node: node 1 has not touched bank 3.
	if s.Classify(1, 3, 20) != noc.High {
		t.Fatal("per-node history leaked across nodes")
	}
	if s.Checked != 3 || s.Tagged != 2 {
		t.Fatalf("counters checked=%d tagged=%d", s.Checked, s.Tagged)
	}
}

func TestPolicyDisabled(t *testing.T) {
	cfg := config.Baseline32() // both schemes off
	p := NewPolicy(cfg)
	if p.S1 != nil || p.S2 != nil {
		t.Fatal("schemes instantiated while disabled")
	}
	if p.RequestPriority(0, 0, 0, 0) != noc.Normal {
		t.Fatal("baseline request priority must be normal")
	}
	if p.ResponsePriority(0, 1<<30) != noc.Normal {
		t.Fatal("baseline response priority must be normal")
	}
	p.RoundTripDone(0, 100) // must not panic
	p.Tick(0)
}

func TestPolicyEnabled(t *testing.T) {
	cfg := config.Baseline32().WithSchemes(true, true)
	p := NewPolicy(cfg)
	if p.S1 == nil || p.S2 == nil {
		t.Fatal("schemes missing")
	}
	if p.RequestPriority(0, 5, 0, 100) != noc.High {
		t.Fatal("scheme-2 hook inactive")
	}
	p.RoundTripDone(3, 100)
	p.Tick(cfg.S1.UpdatePeriod)
	if p.ResponsePriority(3, 1<<20) != noc.High {
		t.Fatal("scheme-1 hook inactive")
	}
}

func TestAppAwareRanking(t *testing.T) {
	mpki := []float64{40, 2, 30, 1, 0, 0}
	active := []bool{true, true, true, true, false, false}
	a := NewAppAware(mpki, active)
	// Median of {1,2,30,40} -> 30; apps strictly below it are prioritized.
	if a.Priority(1) != noc.High || a.Priority(3) != noc.High {
		t.Error("low-intensity applications not prioritized")
	}
	if a.Priority(0) != noc.Normal || a.Priority(2) != noc.Normal {
		t.Error("high-intensity applications prioritized")
	}
	if a.Priority(4) != noc.Normal || a.Priority(5) != noc.Normal {
		t.Error("idle tiles prioritized")
	}
	if a.HighCount() != 2 {
		t.Errorf("high count %d, want 2", a.HighCount())
	}
	if a.Priority(-1) != noc.Normal || a.Priority(99) != noc.Normal {
		t.Error("out-of-range core ids must be normal")
	}
	var nilAware *AppAware
	if nilAware.Priority(0) != noc.Normal {
		t.Error("nil AppAware must be normal")
	}
}

func TestPolicyAppAwareComposition(t *testing.T) {
	cfg := config.Baseline32()
	p := NewPolicy(cfg)
	p.App = NewAppAware([]float64{1, 40}, []bool{true, true})
	if p.BasePriority(0) != noc.High || p.BasePriority(1) != noc.Normal {
		t.Fatal("base priorities wrong")
	}
	// Without schemes, requests/responses inherit the base priority.
	if p.RequestPriority(5, 3, 0, 100) != noc.High {
		t.Error("app-aware request priority lost")
	}
	if p.ResponsePriority(1, 0) != noc.Normal {
		t.Error("intensive app's response should stay normal")
	}
}
