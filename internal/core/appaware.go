package core

import (
	"sort"

	"nocmem/internal/noc"
)

// AppAware is the application-aware network prioritization baseline the
// paper contrasts with (Section 2.3, citing Das et al.): applications are
// ranked by memory intensity and ALL packets of the less-intensive half are
// prioritized in the network, on the rationale that each of their few
// off-chip requests is likely a bottleneck. Unlike Scheme-1/2 it is
// oblivious to the latency each individual message has actually accumulated
// and to the momentary bank load.
type AppAware struct {
	pri []noc.Priority
}

// NewAppAware ranks the applications by the given memory intensities
// (misses per kilo-instruction; 0 or NaN-free for idle tiles, which are
// ignored). Applications strictly below the median intensity of the active
// ones get high priority.
func NewAppAware(mpki []float64, active []bool) *AppAware {
	a := &AppAware{pri: make([]noc.Priority, len(mpki))}
	var vals []float64
	for i, on := range active {
		if on {
			vals = append(vals, mpki[i])
		}
	}
	if len(vals) == 0 {
		return a
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	for i, on := range active {
		if on && mpki[i] < median {
			a.pri[i] = noc.High
		}
	}
	return a
}

// Priority returns the static network priority of every packet belonging to
// the given application.
func (a *AppAware) Priority(coreID int) noc.Priority {
	if a == nil || coreID < 0 || coreID >= len(a.pri) {
		return noc.Normal
	}
	return a.pri[coreID]
}

// HighCount returns the number of prioritized applications.
func (a *AppAware) HighCount() int {
	n := 0
	for _, p := range a.pri {
		if p == noc.High {
			n++
		}
	}
	return n
}
