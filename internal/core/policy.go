package core

import (
	"math"

	"nocmem/internal/config"
	"nocmem/internal/noc"
)

// Policy bundles the enabled schemes behind the three hooks the simulator
// calls. A zero Policy (both schemes nil) is the unprioritized baseline.
type Policy struct {
	S1  *Scheme1
	S2  *Scheme2
	App *AppAware // comparison baseline; nil unless enabled
}

// NewPolicy constructs the policy selected by the configuration.
func NewPolicy(cfg config.Config) *Policy {
	p := &Policy{}
	if cfg.S1.Enabled {
		p.S1 = NewScheme1(cfg.S1, cfg.Mesh.Nodes())
	}
	if cfg.S2.Enabled {
		p.S2 = NewScheme2(cfg.S2, cfg.Mesh.Nodes(), cfg.DRAM.Controllers*cfg.DRAM.BanksPerCtl)
	}
	return p
}

// BasePriority returns the static priority of an application's packets
// under the application-aware baseline (Normal when it is disabled).
func (p *Policy) BasePriority(coreID int) noc.Priority {
	return p.App.Priority(coreID)
}

func maxPri(a, b noc.Priority) noc.Priority {
	if a == noc.High || b == noc.High {
		return noc.High
	}
	return noc.Normal
}

// RequestPriority classifies an off-chip request injected at node toward the
// given global DRAM bank for the given application (Scheme-2 hook plus the
// application-aware baseline; the L2 bank calls this on a miss).
func (p *Policy) RequestPriority(node, bank, coreID int, now int64) noc.Priority {
	pri := p.BasePriority(coreID)
	if p.S2 != nil {
		pri = maxPri(pri, p.S2.Classify(node, bank, now))
	}
	return pri
}

// ResponsePriority classifies a memory response about to be injected by a
// controller, given the owning application and the message's so-far delay
// (Scheme-1 hook plus the application-aware baseline).
func (p *Policy) ResponsePriority(coreID int, soFarAge int64) noc.Priority {
	pri := p.BasePriority(coreID)
	if p.S1 != nil {
		pri = maxPri(pri, p.S1.Classify(coreID, soFarAge))
	}
	return pri
}

// RoundTripDone feeds a completed off-chip access's end-to-end delay back to
// the core-side average (Scheme-1 hook).
func (p *Policy) RoundTripDone(coreID int, delay int64) {
	if p.S1 != nil {
		p.S1.RecordRoundTrip(coreID, delay)
	}
}

// Tick advances time-driven state (threshold pushes).
func (p *Policy) Tick(now int64) {
	if p.S1 != nil {
		p.S1.Tick(now)
	}
}

// NextWake returns the next cycle at which Tick has any effect — the next
// Scheme-1 threshold push, or never. Calling Tick only at that cycle is
// equivalent to calling it every cycle.
func (p *Policy) NextWake() int64 {
	if p.S1 != nil {
		return p.S1.NextPush()
	}
	return math.MaxInt64
}
