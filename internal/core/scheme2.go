package core

import (
	"fmt"

	"nocmem/internal/config"
	"nocmem/internal/noc"
)

// BankHistory is one node's Bank History Table: for every (controller, bank)
// pair it remembers the timestamps of the last th off-chip requests the node
// sent there, enough to answer "did I send fewer than th requests to this
// bank in the last T cycles?".
type BankHistory struct {
	window int64
	th     int
	stamps [][]int64 // [bank][th] ring of send times, -1 = never
	pos    []int
}

// NewBankHistory builds a table over the given number of global banks.
func NewBankHistory(banks int, window int64, th int) *BankHistory {
	if banks < 1 || window <= 0 || th < 1 {
		panic(fmt.Sprintf("core: bad bank history shape banks=%d window=%d th=%d", banks, window, th))
	}
	h := &BankHistory{window: window, th: th, stamps: make([][]int64, banks), pos: make([]int, banks)}
	backing := make([]int64, banks*th)
	for i := range backing {
		backing[i] = -1
	}
	for b := range h.stamps {
		h.stamps[b] = backing[b*th : (b+1)*th : (b+1)*th]
	}
	return h
}

// Record notes that a request to the given bank was sent at the given cycle.
func (h *BankHistory) Record(bank int, now int64) {
	h.stamps[bank][h.pos[bank]] = now
	h.pos[bank] = (h.pos[bank] + 1) % h.th
}

// Idle reports whether fewer than th requests were sent to the bank within
// the last window cycles — the node's local estimate that the bank is idle.
func (h *BankHistory) Idle(bank int, now int64) bool {
	recent := 0
	for _, t := range h.stamps[bank] {
		if t >= 0 && now-t < h.window {
			recent++
		}
	}
	return recent < h.th
}

// Scheme2 is the request-message bank-load balancer: one BankHistory per
// node, consulted when an L2 miss generates an off-chip request.
type Scheme2 struct {
	cfg    config.Scheme2
	tables []*BankHistory

	Tagged  int64
	Checked int64
}

// NewScheme2 builds the balancer for the given node and global-bank counts.
func NewScheme2(cfg config.Scheme2, nodes, banks int) *Scheme2 {
	s := &Scheme2{cfg: cfg, tables: make([]*BankHistory, nodes)}
	for i := range s.tables {
		s.tables[i] = NewBankHistory(banks, cfg.HistoryWindow, cfg.IdleThreshold)
	}
	return s
}

// Classify decides the priority of an off-chip request injected at the given
// node toward the given global bank, and records the send in the node's
// table.
func (s *Scheme2) Classify(node, bank int, now int64) noc.Priority {
	s.Checked++
	t := s.tables[node]
	idle := t.Idle(bank, now)
	t.Record(bank, now)
	if idle {
		s.Tagged++
		return noc.High
	}
	return noc.Normal
}
