package core

import (
	"fmt"
	"sync/atomic"

	"nocmem/internal/config"
	"nocmem/internal/noc"
)

// BankHistory is one node's Bank History Table: for every (controller, bank)
// pair it remembers the timestamps of the last th off-chip requests the node
// sent there, enough to answer "did I send fewer than th requests to this
// bank in the last T cycles?".
type BankHistory struct {
	window int64
	th     int
	stamps [][]int64 // [bank][th] ring of send times, -1 = never
	pos    []int
}

// NewBankHistory builds a table over the given number of global banks.
func NewBankHistory(banks int, window int64, th int) *BankHistory {
	if banks < 1 || window <= 0 || th < 1 {
		panic(fmt.Sprintf("core: bad bank history shape banks=%d window=%d th=%d", banks, window, th))
	}
	h := &BankHistory{window: window, th: th, stamps: make([][]int64, banks), pos: make([]int, banks)}
	backing := make([]int64, banks*th)
	for i := range backing {
		backing[i] = -1
	}
	for b := range h.stamps {
		h.stamps[b] = backing[b*th : (b+1)*th : (b+1)*th]
	}
	return h
}

// Record notes that a request to the given bank was sent at the given cycle.
func (h *BankHistory) Record(bank int, now int64) {
	h.stamps[bank][h.pos[bank]] = now
	h.pos[bank] = (h.pos[bank] + 1) % h.th
}

// Idle reports whether fewer than th requests were sent to the bank within
// the last window cycles — the node's local estimate that the bank is idle.
//
// The window is pinned as the half-open interval (now-window, now]: a stamp
// counts as recent iff now-t < window, so a request sent exactly window
// cycles ago has just aged out. Tests lock this boundary down at the
// paper's T=2000; changing it silently shifts every Scheme-2 tagging
// decision.
func (h *BankHistory) Idle(bank int, now int64) bool {
	recent := 0
	for _, t := range h.stamps[bank] {
		if t >= 0 && now-t < h.window {
			recent++
		}
	}
	return recent < h.th
}

// Scheme2 is the request-message bank-load balancer: one BankHistory per
// node, consulted when an L2 miss generates an off-chip request.
type Scheme2 struct {
	cfg    config.Scheme2
	tables []*BankHistory

	Tagged  int64
	Checked int64
}

// NewScheme2 builds the balancer for the given node and global-bank counts.
func NewScheme2(cfg config.Scheme2, nodes, banks int) *Scheme2 {
	s := &Scheme2{cfg: cfg, tables: make([]*BankHistory, nodes)}
	for i := range s.tables {
		s.tables[i] = NewBankHistory(banks, cfg.HistoryWindow, cfg.IdleThreshold)
	}
	return s
}

// Classify decides the priority of an off-chip request injected at the given
// node toward the given global bank, and records the send in the node's
// table.
//
// Under sharded stepping Classify runs concurrently from the shard workers,
// always with node = the injecting L2 tile, so each table is only touched by
// its owning shard; the counters are commutative tallies kept atomic, making
// the totals independent of shard count.
func (s *Scheme2) Classify(node, bank int, now int64) noc.Priority {
	atomic.AddInt64(&s.Checked, 1)
	t := s.tables[node]
	idle := t.Idle(bank, now)
	t.Record(bank, now)
	if idle {
		atomic.AddInt64(&s.Tagged, 1)
		return noc.High
	}
	return noc.Normal
}
