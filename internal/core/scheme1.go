// Package core implements the paper's primary contribution: the two
// cooperative network-prioritization schemes.
//
// Scheme-1 (latency balancing, Section 3.1) tags memory *response* messages
// whose so-far delay, observed right after DRAM service, exceeds a
// per-application threshold. The threshold is derived from the application's
// dynamic average round-trip latency (default 1.2x) measured at the core and
// pushed to the memory controllers periodically.
//
// Scheme-2 (bank-load balancing, Section 3.2) tags memory *request* messages
// destined for DRAM banks that look idle from the sending node's local
// vantage point: a per-node Bank History Table counts the requests the node
// sent to each bank within the last T cycles, and a bank with fewer than th
// recent requests is presumed idle.
package core

import (
	"fmt"
	"sync/atomic"

	"nocmem/internal/config"
	"nocmem/internal/noc"
)

// Scheme1 is the response-message latency balancer.
type Scheme1 struct {
	cfg config.Scheme1

	// Core-side state: per-application cumulative average of completed
	// off-chip round-trip delays.
	sum []int64
	n   []int64
	// MC-side state: the last thresholds pushed by the cores. Stale
	// between pushes, exactly like the paper's periodic (per-ms) updates.
	published []int64

	nextPush int64

	// Counters.
	Tagged  int64 // responses marked High
	Checked int64 // responses classified
}

// NewScheme1 builds the balancer for the given number of applications.
func NewScheme1(cfg config.Scheme1, numCores int) *Scheme1 {
	if numCores < 1 {
		panic(fmt.Sprintf("core: scheme-1 over %d cores", numCores))
	}
	s := &Scheme1{
		cfg:       cfg,
		sum:       make([]int64, numCores),
		n:         make([]int64, numCores),
		published: make([]int64, numCores),
		nextPush:  cfg.UpdatePeriod,
	}
	for i := range s.published {
		s.published[i] = cfg.InitialThreshold
	}
	return s
}

// RecordRoundTrip is called at the core when an off-chip access completes,
// with its total end-to-end delay. This updates the core-local average; the
// memory controllers only see it at the next periodic push.
func (s *Scheme1) RecordRoundTrip(coreID int, delay int64) {
	if delay < 0 {
		delay = 0
	}
	s.sum[coreID] += delay
	s.n[coreID]++
}

// Average returns the application's current average round-trip delay as
// maintained at the core (0 until the first completion).
func (s *Scheme1) Average(coreID int) float64 {
	if s.n[coreID] == 0 {
		return 0
	}
	return float64(s.sum[coreID]) / float64(s.n[coreID])
}

// Tick pushes fresh thresholds to the memory controllers when the update
// period elapses. The push messages themselves are a few bytes per core and
// are prioritized in the network (Section 3.1); their bandwidth is treated
// as negligible here.
func (s *Scheme1) Tick(now int64) {
	if now < s.nextPush {
		return
	}
	s.nextPush = now + s.cfg.UpdatePeriod
	for i := range s.published {
		if s.n[i] == 0 {
			continue // keep the seed threshold until data exists
		}
		s.published[i] = int64(s.cfg.ThresholdFactor * s.Average(i))
	}
}

// NextPush returns the cycle of the next periodic threshold push; Tick is a
// no-op on every earlier cycle.
func (s *Scheme1) NextPush() int64 { return s.nextPush }

// Threshold returns the lateness threshold currently visible at the MCs for
// the given application.
func (s *Scheme1) Threshold(coreID int) int64 { return s.published[coreID] }

// Classify decides the network priority of a response message about to be
// injected by a memory controller, given the message's so-far delay (which
// at that point includes the memory queueing and service time).
//
// Under sharded stepping Classify runs concurrently from the shard workers
// (one per memory-controller-owning shard). published is only written in the
// serial section (Tick) and the counters are plain commutative tallies, so
// atomic increments are the only synchronization needed and the totals are
// independent of shard count.
func (s *Scheme1) Classify(coreID int, soFarAge int64) noc.Priority {
	atomic.AddInt64(&s.Checked, 1)
	if soFarAge > s.published[coreID] {
		atomic.AddInt64(&s.Tagged, 1)
		return noc.High
	}
	return noc.Normal
}
