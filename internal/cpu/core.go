// Package cpu models the out-of-order cores of the target system
// (Section 2.3): a fixed-size instruction window (ROB) filled at a given
// width, in-order commit, and memory-level parallelism bounded by the LSQ
// size and the L1 MSHRs. A load that completes late blocks the window head
// and stalls the application — precisely the bottleneck behaviour the
// paper's Scheme-1 targets.
package cpu

import (
	"fmt"
	"math"

	"nocmem/internal/config"
	"nocmem/internal/trace"
)

// IssueFunc sends one memory access into the memory hierarchy. slot is the
// ROB slot the access occupies; the hierarchy must call Complete(slot, cycle)
// exactly once, at the cycle the access's data is available. Carrying the
// slot as plain data (rather than a completion closure) keeps in-flight
// accesses serializable for checkpointing. The return value is false when
// the hierarchy cannot accept the access this cycle (e.g. all L1 MSHRs
// busy); the core then stalls and retries.
type IssueFunc func(addr uint64, isWrite bool, slot int) bool

type robEntry struct {
	isMem  bool
	done   bool
	doneAt int64
}

// Stats counts core events within the current measurement window.
type Stats struct {
	Cycles       int64
	Retired      int64
	MemRetired   int64
	FetchStalls  int64 // cycles fetch was blocked (window/LSQ/MSHR full)
	WindowStalls int64 // cycles commit was blocked by an unfinished head
	OutstandSum  int64 // sum over cycles of in-flight memory instructions
}

// IPC returns retired instructions per cycle in the window.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MLP returns the time-weighted average number of in-flight memory
// instructions (the memory-level parallelism of Section 2.3).
func (s Stats) MLP() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.OutstandSum) / float64(s.Cycles)
}

// Core is one simulated out-of-order core. Not safe for concurrent use.
type Core struct {
	id    int
	cfg   config.CPU
	src   trace.Source
	issue IssueFunc

	rob   []robEntry
	head  int
	count int

	memInFlight int

	pending    trace.Instr
	hasPending bool

	stats Stats
}

// New builds a core running the given instruction stream.
func New(id int, cfg config.CPU, src trace.Source, issue IssueFunc) *Core {
	if src == nil || issue == nil {
		panic(fmt.Sprintf("cpu: core %d missing instruction source or issue path", id))
	}
	return &Core{id: id, cfg: cfg, src: src, issue: issue, rob: make([]robEntry, cfg.WindowSize)}
}

// ID returns the core's tile index.
func (c *Core) ID() int { return c.id }

// Complete marks the in-flight memory access in the given ROB slot done at
// cycle. A slot holds at most one in-flight access (it is reused only after
// commit, which requires done), so a slot is never completed twice.
func (c *Core) Complete(slot int, cycle int64) {
	e := &c.rob[slot]
	e.done = true
	e.doneAt = cycle
	c.memInFlight--
}

// Tick advances the core one cycle: commit in order, then fetch/issue.
func (c *Core) Tick(now int64) {
	c.stats.Cycles++
	c.stats.OutstandSum += int64(c.memInFlight)
	c.commit(now)
	c.fetch(now)
}

func (c *Core) commit(now int64) {
	for i := 0; i < c.cfg.Width && c.count > 0; i++ {
		e := &c.rob[c.head]
		if !e.done || now < e.doneAt {
			if c.count == c.cfg.WindowSize {
				c.stats.WindowStalls++
			}
			return
		}
		if e.isMem {
			c.stats.MemRetired++
		}
		c.head = (c.head + 1) % len(c.rob)
		c.count--
		c.stats.Retired++
	}
}

func (c *Core) fetch(now int64) {
	for i := 0; i < c.cfg.Width; i++ {
		if c.count == c.cfg.WindowSize {
			c.stats.FetchStalls++
			return
		}
		if !c.hasPending {
			c.pending = c.src.Next()
			c.hasPending = true
		}
		in := c.pending
		slot := (c.head + c.count) % len(c.rob)
		if !in.IsMem {
			c.rob[slot] = robEntry{done: true, doneAt: now + c.cfg.NonMemLat}
			c.count++
			c.hasPending = false
			continue
		}
		if c.memInFlight >= c.cfg.LSQSize {
			c.stats.FetchStalls++
			return
		}
		e := &c.rob[slot]
		*e = robEntry{isMem: true} // written before issue so a same-cycle completion is kept
		accepted := c.issue(in.Addr, in.IsStore, slot)
		if !accepted {
			c.stats.FetchStalls++
			return
		}
		c.count++
		c.memInFlight++
		c.hasPending = false
	}
}

// SleepUntil reports whether the core is hard-stalled — instruction window
// full with an uncommittable head — which is the only state in which its
// per-cycle effects are closed-form (see CatchUpStall) and the simulator may
// elide its ticks. The returned cycle is when the head becomes committable;
// math.MaxInt64 means the head awaits a memory completion, which arrives
// through the owning tile and re-activates the core before it matters.
func (c *Core) SleepUntil(now int64) (wake int64, ok bool) {
	if c.count != c.cfg.WindowSize {
		return 0, false
	}
	e := &c.rob[c.head]
	if !e.done {
		return math.MaxInt64, true
	}
	if e.doneAt <= now {
		return 0, false
	}
	return e.doneAt, true
}

// CatchUpStall accounts k elided ticks during which the core was provably
// hard-stalled (SleepUntil returned ok and no completion fired): each such
// cycle the dense loop would add exactly one window stall, one fetch stall,
// and memInFlight to the outstanding-instruction integral, and nothing else.
func (c *Core) CatchUpStall(k int64) {
	c.stats.Cycles += k
	c.stats.OutstandSum += k * int64(c.memInFlight)
	c.stats.WindowStalls += k
	c.stats.FetchStalls += k
}

// Outstanding returns the number of in-flight memory instructions.
func (c *Core) Outstanding() int { return c.memInFlight }

// WindowOccupancy returns the number of instructions in the ROB.
func (c *Core) WindowOccupancy() int { return c.count }

// Stats returns a copy of the window counters.
func (c *Core) Stats() Stats { return c.stats }

// ResetStats zeroes the counters at the warmup/measurement boundary.
func (c *Core) ResetStats() { c.stats = Stats{} }
