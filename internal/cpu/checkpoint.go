package cpu

import (
	"nocmem/internal/snapshot"
	"nocmem/internal/trace"
)

// Source returns the core's instruction source, so the checkpoint layer can
// serialize the stream position alongside the architectural state.
func (c *Core) Source() trace.Source { return c.src }

// Encode serializes the core's architectural state: the ROB image, commit
// cursor, in-flight memory count, the fetched-but-unissued instruction, and
// the window counters.
func (c *Core) Encode(w *snapshot.Writer) {
	w.Len(len(c.rob))
	for i := range c.rob {
		e := &c.rob[i]
		w.Bool(e.isMem)
		w.Bool(e.done)
		w.I64(e.doneAt)
	}
	w.Int(c.head)
	w.Int(c.count)
	w.Int(c.memInFlight)
	w.Bool(c.hasPending)
	w.Bool(c.pending.IsMem)
	w.Bool(c.pending.IsStore)
	w.U64(c.pending.Addr)
	w.I64(c.stats.Cycles)
	w.I64(c.stats.Retired)
	w.I64(c.stats.MemRetired)
	w.I64(c.stats.FetchStalls)
	w.I64(c.stats.WindowStalls)
	w.I64(c.stats.OutstandSum)
}

// Decode restores the core's state in place.
func (c *Core) Decode(r *snapshot.Reader) {
	n := r.Len(10)
	if r.Err() != nil {
		return
	}
	if n != len(c.rob) {
		r.Fail("ROB size mismatch: snapshot %d, config %d", n, len(c.rob))
		return
	}
	for i := range c.rob {
		e := &c.rob[i]
		e.isMem = r.Bool()
		e.done = r.Bool()
		e.doneAt = r.I64()
	}
	c.head = r.Int()
	c.count = r.Int()
	c.memInFlight = r.Int()
	c.hasPending = r.Bool()
	c.pending.IsMem = r.Bool()
	c.pending.IsStore = r.Bool()
	c.pending.Addr = r.U64()
	c.stats.Cycles = r.I64()
	c.stats.Retired = r.I64()
	c.stats.MemRetired = r.I64()
	c.stats.FetchStalls = r.I64()
	c.stats.WindowStalls = r.I64()
	c.stats.OutstandSum = r.I64()
	if r.Err() != nil {
		return
	}
	if c.head < 0 || c.head >= len(c.rob) || c.count < 0 || c.count > len(c.rob) {
		r.Fail("ROB cursor out of range: head %d count %d of %d", c.head, c.count, len(c.rob))
		return
	}
	if c.memInFlight < 0 || c.memInFlight > c.cfg.LSQSize {
		r.Fail("in-flight memory count %d outside LSQ [0,%d]", c.memInFlight, c.cfg.LSQSize)
	}
}
