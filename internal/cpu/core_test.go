package cpu

import (
	"testing"

	"nocmem/internal/config"
	"nocmem/internal/trace"
)

func testCPU() config.CPU {
	return config.Baseline32().CPU
}

// genFor builds a generator with the given profile tweaks.
func genFor(t *testing.T, p trace.Profile) *trace.Generator {
	t.Helper()
	g, err := trace.NewGenerator(p, 0, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// pureCompute is a profile whose stream is (almost) free of memory ops.
func pureCompute(t *testing.T) *trace.Generator {
	p := trace.MustLookup("gamess")
	p.MemFrac = 0.000001
	p.MPKI = 0
	p.WarmAPKI = 0
	return genFor(t, p)
}

func TestPureComputeIPCEqualsWidth(t *testing.T) {
	cfg := testCPU()
	c := New(0, cfg, pureCompute(t), func(addr uint64, w bool, slot int) bool {
		t.Fatal("no memory access expected")
		return false
	})
	for now := int64(0); now < 1000; now++ {
		c.Tick(now)
	}
	ipc := c.Stats().IPC()
	if ipc < float64(cfg.Width)*0.95 {
		t.Errorf("compute-only IPC %.2f, want ~%d", ipc, cfg.Width)
	}
}

// memSim is an IssueFunc provider that completes loads after a fixed
// latency, tracked on a simple (cycle, ROB slot) event list.
type memSim struct {
	c       *Core
	now     int64
	latency int64
	pending []struct {
		at   int64
		slot int
	}
	issued int
}

func (m *memSim) issue(addr uint64, isWrite bool, slot int) bool {
	m.issued++
	m.pending = append(m.pending, struct {
		at   int64
		slot int
	}{m.now + m.latency, slot})
	return true
}

func (m *memSim) tick(now int64) {
	m.now = now
	kept := m.pending[:0]
	for _, p := range m.pending {
		if p.at <= now {
			m.c.Complete(p.slot, now)
		} else {
			kept = append(kept, p)
		}
	}
	m.pending = kept
}

// allMem is a profile where every instruction is a load.
func allMem(t *testing.T) *trace.Generator {
	p := trace.MustLookup("mcf")
	p.MemFrac = 0.999999
	p.StoreFrac = 0
	return genFor(t, p)
}

func TestMemoryLatencyBoundsIPC(t *testing.T) {
	cfg := testCPU()
	ms := &memSim{latency: 200}
	c := New(0, cfg, allMem(t), ms.issue)
	ms.c = c
	for now := int64(0); now < 10000; now++ {
		ms.tick(now)
		c.Tick(now)
	}
	// All instructions are loads: throughput is bounded by
	// LSQSize in-flight loads finishing every 200 cycles.
	maxIPC := float64(cfg.LSQSize) / 200
	ipc := c.Stats().IPC()
	if ipc > maxIPC*1.05 {
		t.Errorf("IPC %.3f exceeds the LSQ/latency bound %.3f", ipc, maxIPC)
	}
	if ipc < maxIPC*0.7 {
		t.Errorf("IPC %.3f far below the achievable bound %.3f", ipc, maxIPC)
	}
}

func TestLSQBoundsOutstanding(t *testing.T) {
	cfg := testCPU()
	ms := &memSim{latency: 100000} // never completes within the test
	c := New(0, cfg, allMem(t), ms.issue)
	ms.c = c
	for now := int64(0); now < 1000; now++ {
		ms.tick(now)
		c.Tick(now)
		if c.Outstanding() > cfg.LSQSize {
			t.Fatalf("outstanding %d exceeds LSQ %d", c.Outstanding(), cfg.LSQSize)
		}
	}
	if c.Outstanding() != cfg.LSQSize {
		t.Errorf("outstanding %d, want LSQ-full %d", c.Outstanding(), cfg.LSQSize)
	}
	if c.WindowOccupancy() > cfg.WindowSize {
		t.Errorf("window occupancy %d exceeds %d", c.WindowOccupancy(), cfg.WindowSize)
	}
}

func TestWindowBlocksOnUnfinishedHead(t *testing.T) {
	cfg := testCPU()
	cfg.LSQSize = cfg.WindowSize // isolate the window limit
	ms := &memSim{latency: 100000}
	c := New(0, cfg, allMem(t), ms.issue)
	ms.c = c
	for now := int64(0); now < 1000; now++ {
		ms.tick(now)
		c.Tick(now)
	}
	if got := c.Stats().Retired; got != 0 {
		t.Errorf("retired %d instructions with no completions", got)
	}
	if c.WindowOccupancy() != cfg.WindowSize {
		t.Errorf("window %d, want full %d", c.WindowOccupancy(), cfg.WindowSize)
	}
	if c.Stats().WindowStalls == 0 {
		t.Error("no window stalls recorded")
	}
}

func TestIssueRejectionRetriesSameInstruction(t *testing.T) {
	cfg := testCPU()
	reject := true
	issued := 0
	var c *Core
	c = New(0, cfg, allMem(t), func(addr uint64, w bool, slot int) bool {
		if reject {
			return false
		}
		issued++
		c.Complete(slot, 0)
		return true
	})
	for now := int64(0); now < 10; now++ {
		c.Tick(now)
	}
	if issued != 0 {
		t.Fatal("instructions issued while hierarchy rejects")
	}
	stallsBefore := c.Stats().FetchStalls
	if stallsBefore == 0 {
		t.Fatal("no fetch stalls recorded during rejection")
	}
	reject = false
	for now := int64(10); now < 20; now++ {
		c.Tick(now)
	}
	if issued == 0 {
		t.Fatal("no instructions issued after acceptance")
	}
}

func TestCompletionsExactlyOnce(t *testing.T) {
	cfg := testCPU()
	ms := &memSim{latency: 50}
	c := New(0, cfg, allMem(t), ms.issue)
	ms.c = c
	for now := int64(0); now < 5000; now++ {
		ms.tick(now)
		c.Tick(now)
	}
	if c.Outstanding() < 0 {
		t.Fatal("outstanding went negative: double completion")
	}
	st := c.Stats()
	if st.MemRetired == 0 || st.MemRetired > st.Retired {
		t.Errorf("mem retired %d of %d", st.MemRetired, st.Retired)
	}
}

func TestResetStats(t *testing.T) {
	cfg := testCPU()
	c := New(0, cfg, pureCompute(t), func(uint64, bool, int) bool { return true })
	for now := int64(0); now < 100; now++ {
		c.Tick(now)
	}
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("stats not zeroed")
	}
	if c.ID() != 0 {
		t.Fatal("id changed")
	}
}

func TestMLPStat(t *testing.T) {
	cfg := testCPU()
	ms := &memSim{latency: 100}
	c := New(0, cfg, allMem(t), ms.issue)
	ms.c = c
	for now := int64(0); now < 5000; now++ {
		ms.tick(now)
		c.Tick(now)
	}
	mlp := c.Stats().MLP()
	if mlp <= 1 || mlp > float64(cfg.LSQSize) {
		t.Errorf("MLP %.2f out of (1, %d]", mlp, cfg.LSQSize)
	}
	var zero Stats
	if zero.MLP() != 0 {
		t.Error("zero stats MLP must be 0")
	}
}
