package cache

import "fmt"

// SNUCA is the static NUCA mapping of Kim et al. used by the paper: each
// cache-line-sized unit of memory is statically mapped to one L2 bank by its
// address, interleaving consecutive lines across the banks.
type SNUCA struct {
	lineShift uint
	banks     uint64
}

// NewSNUCA returns a mapper over the given number of banks (one per tile;
// must be a power of two) with the given line size.
func NewSNUCA(banks, lineBytes int) SNUCA {
	if banks <= 0 || banks&(banks-1) != 0 {
		panic(fmt.Sprintf("cache: S-NUCA bank count %d must be a power of two", banks))
	}
	if lineBytes <= 0 || lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("cache: S-NUCA line size %d must be a power of two", lineBytes))
	}
	return SNUCA{lineShift: log2(uint64(lineBytes)), banks: uint64(banks)}
}

// Bank returns the L2 bank (tile index) holding addr.
func (s SNUCA) Bank(addr uint64) int {
	return int((addr >> s.lineShift) % s.banks)
}

// Banks returns the number of banks.
func (s SNUCA) Banks() int { return int(s.banks) }

// Local converts a global address to the bank-local address used to index
// the owning bank's storage. Because consecutive lines interleave across the
// banks, the low line-number bits within one bank are constant; indexing the
// bank with the raw address would leave all but 1/banks of its sets unused.
func (s SNUCA) Local(addr uint64) uint64 {
	off := addr & ((1 << s.lineShift) - 1)
	return ((addr >> s.lineShift) / s.banks << s.lineShift) | off
}

// Global reverses Local for a line that lives in the given bank.
func (s SNUCA) Global(local uint64, bank int) uint64 {
	off := local & ((1 << s.lineShift) - 1)
	return ((local>>s.lineShift)*s.banks+uint64(bank))<<s.lineShift | off
}
