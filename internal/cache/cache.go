// Package cache implements the on-chip cache substrate: a generic
// set-associative write-back cache with LRU replacement, MSHRs with miss
// coalescing, and the S-NUCA bank mapping used by the shared L2.
package cache

import "fmt"

// Stats counts cache events since construction.
type Stats struct {
	Hits       int64
	Misses     int64
	Fills      int64
	Evictions  int64
	Writebacks int64 // dirty evictions
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Cache is a set-associative write-back cache. It tracks tags only (no
// data), which is all a performance model needs. Not safe for concurrent
// use.
type Cache struct {
	sets      [][]line
	lineShift uint
	setMask   uint64
	tick      uint64
	lip       bool
	stats     Stats
}

// New constructs a cache. Size, line size and way count must describe a
// power-of-two number of sets; it panics otherwise (configurations are
// validated up front by the config package).
func New(sizeBytes, lineBytes, ways int) *Cache {
	if sizeBytes <= 0 || lineBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("cache: bad shape size=%d line=%d ways=%d", sizeBytes, lineBytes, ways))
	}
	nsets := sizeBytes / (lineBytes * ways)
	if nsets <= 0 || nsets&(nsets-1) != 0 || lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("cache: non-power-of-two geometry sets=%d line=%d", nsets, lineBytes))
	}
	c := &Cache{
		sets:      make([][]line, nsets),
		lineShift: log2(uint64(lineBytes)),
		setMask:   uint64(nsets) - 1,
	}
	backing := make([]line, nsets*ways)
	for i := range c.sets {
		c.sets[i] = backing[i*ways : (i+1)*ways : (i+1)*ways]
	}
	return c
}

func log2(v uint64) uint {
	var s uint
	for v > 1 {
		v >>= 1
		s++
	}
	return s
}

// SetLIPInsertion switches the replacement policy to LRU-Insertion (LIP):
// newly filled lines enter at the LRU position and are promoted to MRU only
// on a subsequent hit, so no-reuse streaming fills churn through one way of
// a set instead of flushing the reused working set. Used by the shared L2.
func (c *Cache) SetLIPInsertion(on bool) { c.lip = on }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr &^ ((1 << c.lineShift) - 1) }

func (c *Cache) index(addr uint64) (setIdx uint64, tag uint64) {
	lineNum := addr >> c.lineShift
	return lineNum & c.setMask, lineNum >> log2(c.setMask+1)
}

// Access looks up addr, updating LRU state and the hit/miss counters.
// On a write hit the line is marked dirty. Returns whether it hit.
func (c *Cache) Access(addr uint64, isWrite bool) bool {
	set, tag := c.index(addr)
	c.tick++
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.used = c.tick
			if isWrite {
				l.dirty = true
			}
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// WritebackHit marks the line containing addr dirty if present, without
// promoting its replacement state: a writeback is not a demand reuse, so it
// must not keep a dead line alive. Returns whether the line was present.
func (c *Cache) WritebackHit(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			l.dirty = true
			c.stats.Hits++
			return true
		}
	}
	c.stats.Misses++
	return false
}

// Contains probes for addr without disturbing LRU state or counters.
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}

// Victim describes a line displaced by a Fill.
type Victim struct {
	Addr  uint64
	Dirty bool
}

// Fill installs the line containing addr (marking it dirty if requested) and
// returns the evicted victim, if any. Filling an already-present line only
// refreshes its LRU position (and dirtiness).
func (c *Cache) Fill(addr uint64, dirty bool) (Victim, bool) {
	set, tag := c.index(addr)
	c.tick++
	ways := c.sets[set]
	// Already present (e.g. a second fill racing a prefetch): refresh.
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].used = c.tick
			ways[i].dirty = ways[i].dirty || dirty
			return Victim{}, false
		}
	}
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	var ev Victim
	evicted := ways[victim].valid
	if evicted {
		ev = Victim{Addr: c.addrOf(set, ways[victim].tag), Dirty: ways[victim].dirty}
		c.stats.Evictions++
		if ev.Dirty {
			c.stats.Writebacks++
		}
	}
	used := c.tick
	if c.lip {
		used = 0 // LRU insertion: next victim unless re-referenced
	}
	ways[victim] = line{tag: tag, valid: true, dirty: dirty, used: used}
	c.stats.Fills++
	return ev, evicted
}

// Invalidate drops the line containing addr if present, returning whether it
// was dirty.
func (c *Cache) Invalidate(addr uint64) (wasDirty bool) {
	set, tag := c.index(addr)
	for i := range c.sets[set] {
		l := &c.sets[set][i]
		if l.valid && l.tag == tag {
			wasDirty = l.dirty
			*l = line{}
			return wasDirty
		}
	}
	return false
}

func (c *Cache) addrOf(set, tag uint64) uint64 {
	return (tag<<log2(c.setMask+1) | set) << c.lineShift
}

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the event counters (used at the warmup/measurement
// boundary).
func (c *Cache) ResetStats() { c.stats = Stats{} }
