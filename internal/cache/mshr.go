package cache

import "fmt"

// MSHR is one miss-status holding register: an outstanding line fetch plus
// every access coalesced onto it. The waiter type W is plain data (the L1
// tables carry ROB slot indices, the L2 tables carry transaction pointers),
// which keeps outstanding misses serializable for checkpointing.
type MSHR[W any] struct {
	LineAddr uint64
	Dirty    bool // a store is among the waiters; fill installs dirty
	Waiters  []W  // per-access tokens, completed together on fill
}

// MSHRTable tracks outstanding misses with coalescing. The zero value is
// unusable; construct with NewMSHRTable.
type MSHRTable[W any] struct {
	cap     int
	entries map[uint64]*MSHR[W]
	// free recycles completed entries (and their Waiters backing arrays) so
	// steady-state miss traffic allocates nothing. Not safe for concurrent
	// use, like the table itself.
	free []*MSHR[W]
}

// NewMSHRTable returns a table with capacity for n outstanding lines.
func NewMSHRTable[W any](n int) *MSHRTable[W] {
	if n < 1 {
		panic(fmt.Sprintf("cache: MSHR capacity %d", n))
	}
	return &MSHRTable[W]{cap: n, entries: make(map[uint64]*MSHR[W], n)}
}

// Allocate registers a miss on lineAddr carrying the given waiter token.
// primary is true when this miss must actually fetch the line (first miss);
// a secondary miss coalesces onto the in-flight fetch. ok is false when the
// table is full and the miss cannot be accepted this cycle.
func (t *MSHRTable[W]) Allocate(lineAddr uint64, isWrite bool, waiter W) (primary, ok bool) {
	if m, exists := t.entries[lineAddr]; exists {
		m.Waiters = append(m.Waiters, waiter)
		m.Dirty = m.Dirty || isWrite
		return false, true
	}
	if len(t.entries) >= t.cap {
		return false, false
	}
	var m *MSHR[W]
	if l := len(t.free); l > 0 {
		m = t.free[l-1]
		t.free[l-1] = nil
		t.free = t.free[:l-1]
		m.LineAddr, m.Dirty = lineAddr, isWrite
		m.Waiters = append(m.Waiters, waiter)
	} else {
		m = &MSHR[W]{LineAddr: lineAddr, Dirty: isWrite, Waiters: []W{waiter}}
	}
	t.entries[lineAddr] = m
	return true, true
}

// Complete removes and returns the entry for lineAddr; ok is false when no
// miss was outstanding for that line.
func (t *MSHRTable[W]) Complete(lineAddr uint64) (*MSHR[W], bool) {
	m, exists := t.entries[lineAddr]
	if !exists {
		return nil, false
	}
	delete(t.entries, lineAddr)
	return m, true
}

// Release returns a completed entry to the table's free list. The caller
// must be done with m and its Waiters; releasing an entry still in the
// table, or twice, corrupts the free list.
func (t *MSHRTable[W]) Release(m *MSHR[W]) {
	clear(m.Waiters)
	m.Waiters = m.Waiters[:0]
	m.LineAddr, m.Dirty = 0, false
	t.free = append(t.free, m)
}

// Pending reports whether a fetch of lineAddr is in flight.
func (t *MSHRTable[W]) Pending(lineAddr uint64) bool {
	_, exists := t.entries[lineAddr]
	return exists
}

// Len returns the number of outstanding lines.
func (t *MSHRTable[W]) Len() int { return len(t.entries) }

// Cap returns the table capacity.
func (t *MSHRTable[W]) Cap() int { return t.cap }

// Full reports whether no further primary miss can be accepted.
func (t *MSHRTable[W]) Full() bool { return len(t.entries) >= t.cap }

// Lines returns the outstanding line addresses in unspecified order; the
// checkpoint layer sorts them to make encoding deterministic.
func (t *MSHRTable[W]) Lines() []uint64 {
	lines := make([]uint64, 0, len(t.entries))
	for l := range t.entries {
		lines = append(lines, l)
	}
	return lines
}

// Entry returns the live entry for lineAddr without removing it, for
// checkpoint encoding.
func (t *MSHRTable[W]) Entry(lineAddr uint64) (*MSHR[W], bool) {
	m, exists := t.entries[lineAddr]
	return m, exists
}

// Reset drops every outstanding entry, returning the table to its
// post-construction state; the checkpoint layer rebuilds entries from a
// snapshot afterwards via Allocate.
func (t *MSHRTable[W]) Reset() {
	for line, m := range t.entries {
		delete(t.entries, line)
		t.Release(m)
	}
}
