package cache

import "fmt"

// MSHR is one miss-status holding register: an outstanding line fetch plus
// every access coalesced onto it.
type MSHR struct {
	LineAddr uint64
	Dirty    bool  // a store is among the waiters; fill installs dirty
	Waiters  []any // opaque per-access tokens, completed together on fill
}

// MSHRTable tracks outstanding misses with coalescing. The zero value is
// unusable; construct with NewMSHRTable.
type MSHRTable struct {
	cap     int
	entries map[uint64]*MSHR
	// free recycles completed entries (and their Waiters backing arrays) so
	// steady-state miss traffic allocates nothing. Not safe for concurrent
	// use, like the table itself.
	free []*MSHR
}

// NewMSHRTable returns a table with capacity for n outstanding lines.
func NewMSHRTable(n int) *MSHRTable {
	if n < 1 {
		panic(fmt.Sprintf("cache: MSHR capacity %d", n))
	}
	return &MSHRTable{cap: n, entries: make(map[uint64]*MSHR, n)}
}

// Allocate registers a miss on lineAddr carrying the given waiter token.
// primary is true when this miss must actually fetch the line (first miss);
// a secondary miss coalesces onto the in-flight fetch. ok is false when the
// table is full and the miss cannot be accepted this cycle.
func (t *MSHRTable) Allocate(lineAddr uint64, isWrite bool, waiter any) (primary, ok bool) {
	if m, exists := t.entries[lineAddr]; exists {
		m.Waiters = append(m.Waiters, waiter)
		m.Dirty = m.Dirty || isWrite
		return false, true
	}
	if len(t.entries) >= t.cap {
		return false, false
	}
	var m *MSHR
	if l := len(t.free); l > 0 {
		m = t.free[l-1]
		t.free[l-1] = nil
		t.free = t.free[:l-1]
		m.LineAddr, m.Dirty = lineAddr, isWrite
		m.Waiters = append(m.Waiters, waiter)
	} else {
		m = &MSHR{LineAddr: lineAddr, Dirty: isWrite, Waiters: []any{waiter}}
	}
	t.entries[lineAddr] = m
	return true, true
}

// Complete removes and returns the entry for lineAddr; ok is false when no
// miss was outstanding for that line.
func (t *MSHRTable) Complete(lineAddr uint64) (*MSHR, bool) {
	m, exists := t.entries[lineAddr]
	if !exists {
		return nil, false
	}
	delete(t.entries, lineAddr)
	return m, true
}

// Release returns a completed entry to the table's free list. The caller
// must be done with m and its Waiters; releasing an entry still in the
// table, or twice, corrupts the free list.
func (t *MSHRTable) Release(m *MSHR) {
	for i := range m.Waiters {
		m.Waiters[i] = nil
	}
	m.Waiters = m.Waiters[:0]
	m.LineAddr, m.Dirty = 0, false
	t.free = append(t.free, m)
}

// Pending reports whether a fetch of lineAddr is in flight.
func (t *MSHRTable) Pending(lineAddr uint64) bool {
	_, exists := t.entries[lineAddr]
	return exists
}

// Len returns the number of outstanding lines.
func (t *MSHRTable) Len() int { return len(t.entries) }

// Cap returns the table capacity.
func (t *MSHRTable) Cap() int { return t.cap }

// Full reports whether no further primary miss can be accepted.
func (t *MSHRTable) Full() bool { return len(t.entries) >= t.cap }
