package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestFillThenContainsProperty: any just-filled line is present, and Access
// on it hits.
func TestFillThenContainsProperty(t *testing.T) {
	c := New(16<<10, 64, 4)
	f := func(a uint32, dirty bool) bool {
		addr := uint64(a)
		c.Fill(addr, dirty)
		return c.Contains(addr) && c.Access(addr, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestLineAddrProperty: LineAddr is idempotent, aligned, and preserves
// membership of the line.
func TestLineAddrProperty(t *testing.T) {
	c := New(16<<10, 64, 4)
	f := func(a uint32) bool {
		addr := uint64(a)
		l := c.LineAddr(addr)
		return l%64 == 0 && c.LineAddr(l) == l && l <= addr && addr-l < 64
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestMSHRConservationProperty: across any sequence of allocations and
// completions, every completed entry returns exactly the waiters that were
// coalesced onto it, and occupancy never exceeds the capacity.
func TestMSHRConservationProperty(t *testing.T) {
	f := func(ops []uint8, capSel uint8) bool {
		capacity := int(capSel%8) + 1
		m := NewMSHRTable[int](capacity)
		expect := map[uint64]int{} // line -> waiters coalesced
		for i, op := range ops {
			line := uint64(op%16) * 64
			if op < 200 { // allocate
				_, ok := m.Allocate(line, op%2 == 0, i)
				if ok {
					expect[line]++
				} else if _, pending := expect[line]; pending {
					return false // coalescing onto a pending line must succeed
				}
			} else { // complete
				e, ok := m.Complete(line)
				want, pending := expect[line]
				if ok != pending {
					return false
				}
				if ok {
					if len(e.Waiters) != want {
						return false
					}
					delete(expect, line)
				}
			}
			if m.Len() > capacity || m.Len() != len(expect) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestLRUNeverEvictsMRUProperty: the line touched most recently is never the
// one evicted by the next fill.
func TestLRUNeverEvictsMRUProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := New(8*64, 64, 8) // one set
	resident := []uint64{}
	for i := 0; i < 5000; i++ {
		addr := uint64(rng.Intn(32)) << 20
		if len(resident) > 0 && rng.Intn(2) == 0 {
			mru := resident[rng.Intn(len(resident))]
			if !c.Access(mru, false) {
				continue
			}
			v, evicted := c.Fill(addr, false)
			if evicted && v.Addr == mru {
				t.Fatalf("evicted the MRU line %#x", mru)
			}
		} else {
			c.Fill(addr, false)
		}
		if !contains(resident, addr) {
			resident = append(resident, addr)
		}
		// Trim the tracking list to lines that are actually present.
		kept := resident[:0]
		for _, a := range resident {
			if c.Contains(a) {
				kept = append(kept, a)
			}
		}
		resident = kept
	}
}

func contains(s []uint64, v uint64) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
