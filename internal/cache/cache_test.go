package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicHitMiss(t *testing.T) {
	c := New(1024, 64, 2) // 8 sets, 2 ways
	addr := uint64(0x1000)
	if c.Access(addr, false) {
		t.Fatal("hit in empty cache")
	}
	c.Fill(addr, false)
	if !c.Access(addr, false) {
		t.Fatal("miss after fill")
	}
	if !c.Access(addr+63, false) {
		t.Fatal("miss within the same line")
	}
	if c.Access(addr+64, false) {
		t.Fatal("hit on the neighbouring line")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(2*64, 64, 2) // one set, 2 ways
	a, b, d := uint64(0), uint64(1<<20), uint64(2<<20)
	c.Fill(a, false)
	c.Fill(b, false)
	c.Access(a, false) // a is now MRU
	v, evicted := c.Fill(d, false)
	if !evicted || v.Addr != b {
		t.Fatalf("evicted %+v, want line b (LRU)", v)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("wrong post-eviction contents")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := New(2*64, 64, 2)
	a, b, d := uint64(0), uint64(1<<20), uint64(2<<20)
	c.Fill(a, false)
	c.Access(a, true) // dirty a
	c.Fill(b, false)
	c.Access(b, false)
	v, evicted := c.Fill(d, false)
	if !evicted || v.Addr != a || !v.Dirty {
		t.Fatalf("evicted %+v, want dirty line a", v)
	}
	if got := c.Stats().Writebacks; got != 1 {
		t.Errorf("writebacks %d, want 1", got)
	}
}

func TestFillExistingRefreshes(t *testing.T) {
	c := New(2*64, 64, 2)
	a := uint64(0)
	c.Fill(a, false)
	if _, evicted := c.Fill(a, true); evicted {
		t.Fatal("refilling a present line must not evict")
	}
	// The refill marked it dirty.
	b, d := uint64(1<<20), uint64(2<<20)
	c.Fill(b, false)
	c.Access(b, false)
	if v, _ := c.Fill(d, false); !v.Dirty || v.Addr != a {
		t.Fatalf("evicted %+v, want dirty a", v)
	}
}

func TestInvalidate(t *testing.T) {
	c := New(1024, 64, 2)
	a := uint64(0x40)
	c.Fill(a, true)
	if !c.Invalidate(a) {
		t.Fatal("invalidate should report dirty")
	}
	if c.Contains(a) {
		t.Fatal("line survived invalidation")
	}
	if c.Invalidate(a) {
		t.Fatal("second invalidate found the line")
	}
}

func TestLIPStreamingResistance(t *testing.T) {
	c := New(8*64, 64, 8) // one set, 8 ways
	c.SetLIPInsertion(true)
	// Install and promote a 7-line working set.
	for i := uint64(0); i < 7; i++ {
		addr := i << 20
		c.Fill(addr, false)
		c.Access(addr, false)
	}
	// Stream 100 no-reuse lines through: with LIP they churn one way.
	for i := uint64(100); i < 200; i++ {
		c.Fill(i<<20, false)
	}
	for i := uint64(0); i < 7; i++ {
		if !c.Contains(i << 20) {
			t.Fatalf("working-set line %d flushed by the stream", i)
		}
	}
}

func TestLRUWithoutLIPIsFlushedByStream(t *testing.T) {
	c := New(8*64, 64, 8)
	for i := uint64(0); i < 7; i++ {
		c.Fill(i<<20, false)
		c.Access(i<<20, false)
	}
	for i := uint64(100); i < 200; i++ {
		c.Fill(i<<20, false)
	}
	survivors := 0
	for i := uint64(0); i < 7; i++ {
		if c.Contains(i << 20) {
			survivors++
		}
	}
	if survivors != 0 {
		t.Fatalf("%d working-set lines survived a long stream under plain LRU", survivors)
	}
}

func TestWritebackHitDoesNotPromote(t *testing.T) {
	c := New(2*64, 64, 2)
	c.SetLIPInsertion(true)
	warm := uint64(1 << 20)
	c.Fill(warm, false)
	c.Access(warm, false) // promoted
	cold := uint64(2 << 20)
	c.Fill(cold, false) // LIP: inserted at LRU
	if !c.WritebackHit(cold) {
		t.Fatal("writeback missed a present line")
	}
	// A new fill must evict the cold line despite its recent writeback.
	v, evicted := c.Fill(3<<20, false)
	if !evicted || v.Addr != cold {
		t.Fatalf("evicted %+v, want the written-back cold line", v)
	}
	if !v.Dirty {
		t.Error("writeback should have marked the line dirty")
	}
}

func TestVictimSameSetProperty(t *testing.T) {
	c := New(32<<10, 64, 4)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1<<22)) &^ 63
		v, evicted := c.Fill(addr, rng.Intn(2) == 0)
		if evicted {
			// Victim must map to the same set as the new line.
			if (v.Addr>>6)&127 != (addr>>6)&127 {
				t.Fatalf("victim %#x not in the set of %#x", v.Addr, addr)
			}
			if c.Contains(v.Addr) {
				t.Fatalf("victim %#x still present", v.Addr)
			}
		}
		if !c.Contains(addr) {
			t.Fatalf("filled %#x absent", addr)
		}
	}
}

func TestMSHRCoalescing(t *testing.T) {
	m := NewMSHRTable[string](2)
	p1, ok := m.Allocate(0x100, false, "a")
	if !p1 || !ok {
		t.Fatal("first allocation should be a primary miss")
	}
	p2, ok := m.Allocate(0x100, true, "b")
	if p2 || !ok {
		t.Fatal("second allocation should coalesce")
	}
	if !m.Pending(0x100) || m.Len() != 1 {
		t.Fatal("pending state wrong")
	}
	e, ok := m.Complete(0x100)
	if !ok || len(e.Waiters) != 2 || !e.Dirty {
		t.Fatalf("completed entry %+v", e)
	}
	if _, ok := m.Complete(0x100); ok {
		t.Fatal("double completion")
	}
}

func TestMSHRCapacity(t *testing.T) {
	m := NewMSHRTable[int](2)
	m.Allocate(0x100, false, 0)
	m.Allocate(0x200, false, 0)
	if !m.Full() {
		t.Fatal("table should be full")
	}
	if _, ok := m.Allocate(0x300, false, 0); ok {
		t.Fatal("allocation beyond capacity accepted")
	}
	// Coalescing is still allowed when full.
	if _, ok := m.Allocate(0x200, false, 0); !ok {
		t.Fatal("coalescing rejected while full")
	}
	if m.Cap() != 2 {
		t.Fatalf("cap %d", m.Cap())
	}
}

func TestSNUCABankMapping(t *testing.T) {
	s := NewSNUCA(32, 64)
	if s.Banks() != 32 {
		t.Fatalf("banks %d", s.Banks())
	}
	for i := uint64(0); i < 64; i++ {
		if got, want := s.Bank(i*64), int(i%32); got != want {
			t.Fatalf("line %d bank %d, want %d", i, got, want)
		}
	}
}

func TestSNUCALocalGlobalRoundTrip(t *testing.T) {
	s := NewSNUCA(32, 64)
	f := func(a uint32) bool {
		addr := uint64(a)
		bank := s.Bank(addr)
		return s.Global(s.Local(addr), bank) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSNUCALocalDensity(t *testing.T) {
	// Bank-local line numbers of a bank's lines must be consecutive:
	// line k*banks+b maps to local line k.
	s := NewSNUCA(32, 64)
	for k := uint64(0); k < 100; k++ {
		addr := (k*32 + 5) * 64 // lines of bank 5
		if got := s.Local(addr) >> 6; got != k {
			t.Fatalf("local line %d, want %d", got, k)
		}
	}
}

func TestCacheStatsReset(t *testing.T) {
	c := New(1024, 64, 2)
	c.Access(0, false)
	c.ResetStats()
	if c.Stats() != (Stats{}) {
		t.Fatal("stats not zeroed")
	}
}
