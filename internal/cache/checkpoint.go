package cache

import (
	"sort"

	"nocmem/internal/snapshot"
)

// Encode serializes the cache contents: LRU clock, every way of every set,
// and the event counters. Geometry (set/way counts) is derived from the
// configuration but encoded too, so Decode can reject a snapshot taken
// under a different cache shape.
func (c *Cache) Encode(w *snapshot.Writer) {
	w.U64(c.tick)
	w.Len(len(c.sets))
	if len(c.sets) == 0 {
		return
	}
	w.Len(len(c.sets[0]))
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			w.U64(l.tag)
			w.Bool(l.valid)
			w.Bool(l.dirty)
			w.U64(l.used)
		}
	}
	st := c.stats
	w.I64(st.Hits)
	w.I64(st.Misses)
	w.I64(st.Fills)
	w.I64(st.Evictions)
	w.I64(st.Writebacks)
}

// Decode restores the cache contents in place.
func (c *Cache) Decode(r *snapshot.Reader) {
	tick := r.U64()
	nsets := r.Len(1)
	if r.Err() != nil {
		return
	}
	if nsets != len(c.sets) {
		r.Fail("cache set count mismatch: snapshot %d, config %d", nsets, len(c.sets))
		return
	}
	if nsets == 0 {
		c.tick = tick
		return
	}
	ways := r.Len(1)
	if r.Err() != nil {
		return
	}
	if ways != len(c.sets[0]) {
		r.Fail("cache way count mismatch: snapshot %d, config %d", ways, len(c.sets[0]))
		return
	}
	c.tick = tick
	for _, set := range c.sets {
		for i := range set {
			l := &set[i]
			l.tag = r.U64()
			l.valid = r.Bool()
			l.dirty = r.Bool()
			l.used = r.U64()
		}
	}
	c.stats.Hits = r.I64()
	c.stats.Misses = r.I64()
	c.stats.Fills = r.I64()
	c.stats.Evictions = r.I64()
	c.stats.Writebacks = r.I64()
}

// EncodeMSHRs serializes the outstanding misses of a table in ascending
// line-address order (the map itself has no stable order). enc writes one
// waiter token.
func EncodeMSHRs[W any](w *snapshot.Writer, t *MSHRTable[W], enc func(W)) {
	lines := t.Lines()
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.Len(len(lines))
	for _, line := range lines {
		m, _ := t.Entry(line)
		w.U64(m.LineAddr)
		w.Bool(m.Dirty)
		w.Len(len(m.Waiters))
		for _, wt := range m.Waiters {
			enc(wt)
		}
	}
}

// DecodeMSHRs drops the table's current entries and rebuilds them from the
// snapshot. dec reads one waiter token.
func DecodeMSHRs[W any](r *snapshot.Reader, t *MSHRTable[W], dec func() W) {
	t.Reset()
	n := r.Len(8)
	if r.Err() != nil {
		return
	}
	if n > t.Cap() {
		r.Fail("%d MSHR entries exceed capacity %d", n, t.Cap())
		return
	}
	for i := 0; i < n; i++ {
		line := r.U64()
		dirty := r.Bool()
		nw := r.Len(1)
		if r.Err() != nil {
			return
		}
		if nw < 1 {
			r.Fail("MSHR entry for line %#x has no waiters", line)
			return
		}
		for j := 0; j < nw; j++ {
			wt := dec()
			if r.Err() != nil {
				return
			}
			primary, ok := t.Allocate(line, dirty && j == 0, wt)
			if !ok || (primary != (j == 0)) {
				r.Fail("duplicate or unallocatable MSHR line %#x", line)
				return
			}
		}
	}
}
