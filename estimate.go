package nocmem

import (
	"fmt"

	"nocmem/internal/analytic"
	"nocmem/internal/sim"
	"nocmem/internal/stats"
)

// Estimate is the closed-form prediction of one configuration produced by the
// analytic model (internal/analytic): per-app IPC and per-leg latencies,
// memory-controller queueing, and network latency, all without simulating a
// single cycle.
type Estimate = analytic.Estimate

// EstimateReport is the outcome of one model-vs-simulator cross-check.
type EstimateReport = analytic.Report

// Summary is the JSON-friendly digest of a run (simulated or estimated).
type Summary = sim.Summary

// Divergence bands for CrossCheckRun: the model holds EstimateCalibratedBand
// per leg on the golden scenarios; EstimateOracleBand is the looser tripwire
// used to spot simulator bugs rather than model error.
const (
	EstimateCalibratedBand = analytic.CalibratedBand
	EstimateOracleBand     = analytic.OracleBand
)

// EstimateApps predicts an explicit application placement (padded with idle
// tiles) in closed form.
func EstimateApps(cfg Config, apps []Profile) (*Estimate, error) {
	nodes := cfg.Mesh.Nodes()
	if len(apps) > nodes {
		return nil, fmt.Errorf("nocmem: %d applications for %d tiles", len(apps), nodes)
	}
	padded := make([]Profile, nodes)
	copy(padded, apps)
	return analytic.Predict(cfg, padded)
}

// EstimateWorkload predicts one workload on cfg in closed form.
func EstimateWorkload(cfg Config, w Workload) (*Estimate, error) {
	apps, err := w.Profiles()
	if err != nil {
		return nil, err
	}
	return EstimateApps(cfg, apps)
}

// EstimatedAloneIPC predicts the application's IPC when it runs alone on the
// unprioritized system — the closed-form counterpart of AloneIPC.
func EstimatedAloneIPC(cfg Config, app Profile) (float64, error) {
	e, err := EstimateApps(cfg.WithSchemes(false, false), []Profile{app})
	if err != nil {
		return 0, err
	}
	if len(e.Apps) == 0 || e.Apps[0].IPC <= 0 {
		return 0, fmt.Errorf("nocmem: estimated alone IPC of %s is not positive", app.Name)
	}
	return e.Apps[0].IPC, nil
}

// EstimatedWeightedSpeedup predicts WS = sum IPC_shared/IPC_alone for an
// application placement, with both numerator and denominator from the
// analytic model (consistent estimates divide out the model's bias).
func EstimatedWeightedSpeedup(cfg Config, apps []Profile) (float64, error) {
	e, err := EstimateApps(cfg, apps)
	if err != nil {
		return 0, err
	}
	var shared, alone []float64
	i := 0
	for _, p := range apps {
		if p.Name == "" {
			continue
		}
		a, err := EstimatedAloneIPC(cfg, p)
		if err != nil {
			return 0, err
		}
		shared = append(shared, e.Apps[i].IPC)
		alone = append(alone, a)
		i++
	}
	return stats.WeightedSpeedup(shared, alone)
}

// CrossCheckRun is the divergence oracle: it predicts the run's configuration
// with the analytic model and compares the prediction against the simulated
// result, flagging per-leg divergence beyond band and structural anomalies
// (tiles the model expects to make progress but the simulator reports as
// silent). Use EstimateOracleBand to hunt simulator bugs,
// EstimateCalibratedBand to gate model accuracy.
func CrossCheckRun(cfg Config, apps []Profile, r *Result, band float64) (*EstimateReport, error) {
	nodes := cfg.Mesh.Nodes()
	if len(apps) > nodes {
		return nil, fmt.Errorf("nocmem: %d applications for %d tiles", len(apps), nodes)
	}
	padded := make([]Profile, nodes)
	copy(padded, apps)
	return analytic.CrossCheck(cfg, padded, r.Summary(), band)
}
