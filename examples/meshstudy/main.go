// Mesh study: how the schemes' benefit scales with the network, and what
// they do to fairness. The paper argues (Figures 11 vs 15) that larger
// meshes give the network a bigger share of the round trip and therefore
// more for prioritization to recover; this example measures a
// memory-intensive mix on a 4x4/2-MC and a 4x8/4-MC system and also reports
// the fairness metrics the paper does not show.
package main

import (
	"fmt"
	"log"

	"nocmem"
)

func main() {
	w, err := nocmem.GetWorkload(8) // memory intensive
	if err != nil {
		log.Fatal(err)
	}

	type system struct {
		name string
		cfg  nocmem.Config
		load func() (nocmem.Workload, error)
	}
	systems := []system{
		{"16-core 4x4, 2 MCs", nocmem.Baseline16(), w.Halve},
		{"32-core 4x8, 4 MCs", nocmem.Baseline32(), func() (nocmem.Workload, error) { return w, nil }},
	}

	for _, sys := range systems {
		cfg := sys.cfg
		cfg.Run.WarmupCycles = 50_000
		cfg.Run.MeasureCycles = 200_000
		cfg.S1.UpdatePeriod = 10_000
		wl, err := sys.load()
		if err != nil {
			log.Fatal(err)
		}
		row, err := nocmem.SpeedupFor(cfg, wl)
		if err != nil {
			log.Fatal(err)
		}
		baseUnfair, baseHarm, err := nocmem.Fairness(cfg, row.Base)
		if err != nil {
			log.Fatal(err)
		}
		s12Unfair, s12Harm, err := nocmem.Fairness(cfg, row.S1S2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s):\n", sys.name, wl.Name())
		fmt.Printf("  normalized WS:   scheme-1 %.4f, scheme-1+2 %.4f\n", row.NormS1, row.NormS1S2)
		fmt.Printf("  max slowdown:    base %.2f -> scheme-1+2 %.2f (lower is fairer)\n", baseUnfair, s12Unfair)
		fmt.Printf("  harmonic speedup: base %.4f -> scheme-1+2 %.4f\n", baseHarm, s12Harm)
		fmt.Printf("  avg net latency: base %.1f -> scheme-1+2 %.1f cycles\n\n",
			row.Base.Net.AvgLatency(), row.S1S2.Net.AvgLatency())
	}
}
