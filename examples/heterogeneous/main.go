// Heterogeneous NoC: Equation 1 of the paper deliberately normalizes each
// router's local residence time by its own frequency, so the age mechanism
// works when routers run at different clocks (e.g. under DVFS). This example
// slows a column of routers to one third speed, shows the latency damage,
// and measures how much of it the prioritization schemes win back.
package main

import (
	"fmt"
	"log"

	"nocmem"
)

func main() {
	w, err := nocmem.GetWorkload(8) // memory intensive
	if err != nil {
		log.Fatal(err)
	}

	base := nocmem.Baseline32()
	base.Run.WarmupCycles = 50_000
	base.Run.MeasureCycles = 200_000
	base.S1.UpdatePeriod = 10_000

	slow := base
	// Routers of column x=4 (tiles 4, 12, 20, 28) run at f/3: a slow
	// vertical stripe through the middle of the 8x4 mesh.
	slow.NoC.ClockDivisors = map[int]int{4: 3, 12: 3, 20: 3, 28: 3}

	for _, sys := range []struct {
		name string
		cfg  nocmem.Config
	}{
		{"homogeneous mesh", base},
		{"slow center column (f/3)", slow},
	} {
		res, err := nocmem.RunWorkload(sys.cfg, w)
		if err != nil {
			log.Fatal(err)
		}
		ws, err := nocmem.WeightedSpeedup(sys.cfg, res)
		if err != nil {
			log.Fatal(err)
		}
		s12, err := nocmem.RunWorkload(sys.cfg.WithSchemes(true, true), w)
		if err != nil {
			log.Fatal(err)
		}
		ws12, err := nocmem.WeightedSpeedup(sys.cfg, s12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", sys.name)
		fmt.Printf("  avg network latency: %.1f cycles (base) / %.1f (scheme-1+2)\n",
			res.Net.AvgLatency(), s12.Net.AvgLatency())
		fmt.Printf("  weighted speedup:    %.3f -> %.3f with schemes (%.4fx)\n\n",
			ws, ws12, ws12/ws)
	}
}
