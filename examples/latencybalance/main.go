// Latency balancing (Scheme-1) in depth: reproduce the Figure 12 experiment
// on one workload — per-application latency CDFs move left and the late tail
// (region 1) shrinks when late responses are expedited in the network.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"nocmem"
)

func main() {
	cfg := nocmem.Baseline32()
	cfg.Run.WarmupCycles = 50_000
	cfg.Run.MeasureCycles = 200_000
	cfg.S1.UpdatePeriod = 10_000

	w, err := nocmem.GetWorkload(1) // the mixed workload of Figure 12
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %s under base and Scheme-1...\n\n", w.Name())
	base, err := nocmem.RunWorkload(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	s1, err := nocmem.RunWorkload(cfg.WithSchemes(true, false), w)
	if err != nil {
		log.Fatal(err)
	}

	// Per-application latency percentiles, before and after: the paper's
	// point is that p90+ shifts left while the mean barely moves.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "app\tmean\tmean(S1)\tp90\tp90(S1)\tp99\tp99(S1)\tlate%%\tlate%%(S1)\n")
	tiles := base.ActiveTiles()[:8] // the 8 applications Figure 12 plots
	for _, tile := range tiles {
		hb := base.Collector.RoundTrip[tile]
		hs := s1.Collector.RoundTrip[tile]
		if hb.Count() == 0 || hs.Count() == 0 {
			continue
		}
		// "Late" = beyond the Scheme-1 threshold (1.2x the average).
		cut := int64(1.2 * hb.Mean())
		fmt.Fprintf(tw, "%s\t%.0f\t%.0f\t%d\t%d\t%d\t%d\t%.1f\t%.1f\n",
			base.Apps[tile].Name, hb.Mean(), hs.Mean(),
			hb.Percentile(90), hs.Percentile(90),
			hb.Percentile(99), hs.Percentile(99),
			100*hb.FractionAbove(cut), 100*hs.FractionAbove(cut))
	}
	tw.Flush()

	// The distributed age mechanism: each response's so-far delay is
	// compared at the memory controller against the per-app threshold
	// that the core pushed most recently.
	fmt.Printf("\nper-application thresholds visible at the MCs (cycles):\n  ")
	for i, tile := range tiles {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Printf("%s=%d", s1.Apps[tile].Name, s1.S1Thresholds[tile])
	}
	fmt.Println()

	fmt.Printf("\ntagged %d/%d responses; expedited return path %.0f vs %.0f cycles\n",
		s1.S1Tagged, s1.S1Checked, s1.Collector.RetHigh.Mean(), s1.Collector.RetNormal.Mean())
}
