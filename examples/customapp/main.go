// Custom applications: define your own synthetic memory-behaviour profiles
// instead of the built-in SPEC CPU2006 stand-ins, place them on specific
// tiles, and study how a latency-sensitive application suffers next to
// streaming neighbours — and how much the prioritization schemes help it.
package main

import (
	"fmt"
	"log"

	"nocmem"
)

func main() {
	cfg := nocmem.Baseline32()
	cfg.Run.WarmupCycles = 50_000
	cfg.Run.MeasureCycles = 150_000
	cfg.S1.UpdatePeriod = 10_000

	// A pointer-chasing, latency-sensitive application: modest miss rate,
	// no spatial locality (RowBurst 1), a single dependent stream.
	victim := nocmem.Profile{
		Name:      "pointer-chaser",
		MPKI:      12,
		WarmAPKI:  90,
		MemFrac:   0.33,
		StoreFrac: 0.10,
		RowBurst:  1,
		Streams:   1,
		HotLines:  128,
		WarmLines: 2048,
	}
	// An aggressive streaming application with high row locality.
	stream := nocmem.Profile{
		Name:      "streamer",
		MPKI:      35,
		WarmAPKI:  60,
		MemFrac:   0.30,
		StoreFrac: 0.40,
		RowBurst:  512,
		Streams:   8,
		HotLines:  128,
		WarmLines: 1024,
	}

	// One victim in the mesh center, streamers everywhere else.
	apps := make([]nocmem.Profile, cfg.Mesh.Nodes())
	victimTile := 11 // (x=3, y=1): central, far from every MC corner
	for i := range apps {
		apps[i] = stream
	}
	apps[victimTile] = victim

	fmt.Println("pointer-chaser on tile 11 surrounded by 31 streamers")
	aloneIPC, err := nocmem.AloneIPC(cfg, victim)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("victim IPC alone: %.3f\n\n", aloneIPC)

	for _, variant := range []struct {
		name   string
		s1, s2 bool
	}{
		{"base", false, false},
		{"scheme-1", true, false},
		{"scheme-1+2", true, true},
	} {
		res, err := nocmem.RunApps(cfg.WithSchemes(variant.s1, variant.s2), apps)
		if err != nil {
			log.Fatal(err)
		}
		h := res.Collector.RoundTrip[victimTile]
		fmt.Printf("%-11s victim IPC %.3f (%.0f%% of alone)  latency mean %.0f p99 %d\n",
			variant.name, res.IPC[victimTile], 100*res.IPC[victimTile]/aloneIPC,
			h.Mean(), h.Percentile(99))
	}
}
