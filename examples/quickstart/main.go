// Quickstart: run one memory-intensive workload from the paper's Table 2 on
// the baseline 32-core system and compare the unprioritized network against
// Scheme-1 and Scheme-1+2.
package main

import (
	"fmt"
	"log"

	"nocmem"
)

func main() {
	// The paper's Table 1 system: 4x8 mesh, 32 OoO cores, S-NUCA L2,
	// 4 DDR-800 memory controllers at the corners. Windows are scaled
	// down here so the example finishes in under a minute.
	cfg := nocmem.Baseline32()
	cfg.Run.WarmupCycles = 50_000
	cfg.Run.MeasureCycles = 150_000
	cfg.S1.UpdatePeriod = 10_000

	// Workload-7: 32 memory-intensive SPEC CPU2006 applications.
	w, err := nocmem.GetWorkload(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running %s (%s) three times: base, Scheme-1, Scheme-1+2...\n", w.Name(), w.Category)

	row, err := nocmem.SpeedupFor(cfg, w)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nweighted speedup (higher is better):\n")
	fmt.Printf("  base        %.3f  (1.0000)\n", row.BaseWS)
	fmt.Printf("  scheme-1    %.3f  (%.4f)\n", row.S1WS, row.NormS1)
	fmt.Printf("  scheme-1+2  %.3f  (%.4f)\n", row.S1S2WS, row.NormS1S2)

	// Scheme-1 tags responses whose so-far delay exceeds 1.2x the
	// application's average round trip; the tagged ones return faster.
	s1 := row.S1
	fmt.Printf("\nscheme-1 tagged %.1f%% of memory responses as late\n",
		100*float64(s1.S1Tagged)/float64(s1.S1Checked+1))
	fmt.Printf("  tagged return path: %.0f cycles avg\n", s1.Collector.RetHigh.Mean())
	fmt.Printf("  normal return path: %.0f cycles avg\n", s1.Collector.RetNormal.Mean())
}
