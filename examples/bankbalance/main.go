// Bank-load balancing (Scheme-2) in depth: reproduce the Figure 13/14
// experiment — per-node bank history tables expedite requests headed for
// idle DRAM banks, reducing bank idleness and queue imbalance.
package main

import (
	"fmt"
	"log"
	"strings"

	"nocmem"
)

func main() {
	cfg := nocmem.Baseline32()
	cfg.Run.WarmupCycles = 50_000
	cfg.Run.MeasureCycles = 200_000

	w, err := nocmem.GetWorkload(1)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("running %s with and without Scheme-2...\n\n", w.Name())
	base, err := nocmem.RunWorkload(cfg, w)
	if err != nil {
		log.Fatal(err)
	}
	s2, err := nocmem.RunWorkload(cfg.WithSchemes(false, true), w)
	if err != nil {
		log.Fatal(err)
	}

	// Figure 13: idleness of each bank of the first memory controller.
	fmt.Println("MC0 bank idleness (fraction of samples with an empty queue):")
	fmt.Println("bank:     " + header(len(base.BankIdleness[0])))
	fmt.Println("default:  " + row(base.BankIdleness[0]))
	fmt.Println("scheme-2: " + row(s2.BankIdleness[0]))

	avg := func(r *nocmem.Result) float64 {
		var sum float64
		var n int
		for _, banks := range r.BankIdleness {
			for _, v := range banks {
				sum += v
				n++
			}
		}
		return sum / float64(n)
	}
	fmt.Printf("\naverage idleness across all %d banks: default %.3f -> scheme-2 %.3f\n",
		len(base.BankIdleness)*len(base.BankIdleness[0]), avg(base), avg(s2))

	// Figure 14: idleness over time (interval averages of MC0).
	fmt.Println("\nMC0 average idleness over time:")
	fmt.Println("cycle     default  scheme-2")
	pts, pts2 := base.IdleSeries[0].Points(), s2.IdleSeries[0].Points()
	for i := range pts {
		if i >= len(pts2) {
			break
		}
		fmt.Printf("%-9d %.3f    %.3f\n", pts[i].Cycle, pts[i].Avg, pts2[i].Avg)
	}

	fmt.Printf("\nscheme-2 tagged %d of %d off-chip requests (%.1f%%) as idle-bank bound\n",
		s2.S2Tagged, s2.S2Checked, 100*float64(s2.S2Tagged)/float64(s2.S2Checked+1))
}

func header(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%5d ", i)
	}
	return b.String()
}

func row(vs []float64) string {
	var b strings.Builder
	for _, v := range vs {
		fmt.Fprintf(&b, "%5.2f ", v)
	}
	return b.String()
}
